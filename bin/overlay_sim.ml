(* overlay_sim: command-line driver for every scenario in the library.

   The subcommand list below is the single source for both the cmdliner
   group and the unknown-subcommand diagnostic, so the usage text can
   never drift from the commands that actually exist. *)

let subcommand_index =
  [
    ("sample", "run a node sampling primitive (Section 3)");
    ("churn", "drive the churn-resistant expander network (Section 4)");
    ("dos", "drive the DoS-resistant hypercube network (Section 5)");
    ("stabilize", "repair a corrupted topology via detect-and-repair \
                   reconfiguration");
    ("churndos", "drive the combined churn + DoS network (Section 6)");
    ("groupsim", "replay the Section 5 group machinery message-by-message \
                  (Lemmas 14/15)");
    ("anonymize", "issue anonymous requests through the relay overlay \
                   (Section 7.1)");
    ("dht", "run a read/write batch against the robust DHT (Section 7.2)");
    ("workload", "run an open/closed-loop request workload against the DHT \
                  / pub-sub stack under reconfiguration, DoS, churn, and \
                  faults (Section 7)");
    ("chord", "run the Chord backend: ring maintenance + probe lookups \
               under churn, faults, and the stale-view adversary");
    ("social", "run the Reddit-style social application: five traffic \
                classes with per-class SLOs over the pub-sub / DHT stack, \
                with repost fan-out and online/offline sessions");
    ("sweep", "run a declarative experiment grid (checkpointed, resumable, \
               domain-parallel)");
  ]

let subcommand_doc name = List.assoc name subcommand_index

open Cmdliner

let seed_arg =
  let doc = "PRNG seed (runs are deterministic given the seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let n_arg default =
  let doc = "Number of nodes." in
  Arg.(value & opt int default & info [ "n"; "nodes" ] ~docv:"N" ~doc)

let rng_of_seed seed = Prng.Stream.of_seed (Int64.of_int seed)

(* --verbose turns on the Logs debug tracing the networks emit at epoch and
   window boundaries. *)
let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let verbose_term =
  Term.(
    const setup_logs
    $ Arg.(value & flag & info [ "verbose" ] ~doc:"Enable debug tracing."))

let json_term =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:"Also print a one-line machine-readable JSON summary.")

(* The run-shape flags shared by the driver subcommands — -n, --seed,
   --faults SPEC, --retry R, --trace FILE — funnel through a single
   Simnet.Scenario.of_args call, so their parsing, validation, and error
   wording live in one place instead of being duplicated per subcommand.
   All default off, leaving the paper's fault-free behaviour — and the
   golden CLI outputs — untouched. *)
let scenario_term ?(with_faults = true) ?(with_retry = true) ~default_n () =
  let trace_arg =
    let doc =
      "Write structured trace events to $(docv) as JSONL (CSV if the name \
       ends in .csv, compact binary if it ends in .bin).  See \
       docs/observability.md for the schema."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let trace_format_arg =
    let doc =
      "Trace sink format: $(b,jsonl), $(b,csv) or $(b,bin) (default: by \
       the --trace path suffix).  Binary traces decode back to the exact \
       JSONL bytes via trace_check --export-jsonl."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-format" ] ~docv:"FORMAT" ~doc)
  in
  let faults_arg =
    let doc =
      "Inject deterministic faults, e.g. \
       $(b,drop=0.05,dup=0.01,delay=2,crash=3).  Comma-separated KEY=VALUE \
       pairs; keys: drop, dup, delayp, delay, reorder, crash, crashround, \
       recover, seed.  Same seed and spec reproduce the run byte for byte.  \
       See docs/fault_model.md."
    in
    if with_faults then
      Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
    else Term.const None
  in
  let retry_arg =
    let doc =
      "Give the protocol drivers a recovery budget of $(docv) retries with \
       escalating provisioning (0, the default, reproduces the paper's \
       fault-free drivers)."
    in
    if with_retry then
      Arg.(value & opt int 0 & info [ "retry" ] ~docv:"R" ~doc)
    else Term.const 0
  in
  let domains_arg =
    let doc =
      "Worker domains for intra-round engine parallelism and parallel \
       schedule generation (0 = runtime default, honoring \
       $(b,OVERLAY_DOMAINS)).  Results are byte-identical for every value."
    in
    Arg.(value & opt int 0 & info [ "domains" ] ~docv:"D" ~doc)
  in
  Term.(
    const (fun n seed faults retry domains trace trace_format ->
        let add key v kvs =
          match v with Some v -> (key, v) :: kvs | None -> kvs
        in
        let kvs =
          [
            ("n", string_of_int n);
            ("seed", string_of_int seed);
            ("retry", string_of_int retry);
            ("domains", string_of_int domains);
          ]
          |> add "faults" faults |> add "trace" trace
          |> add "trace-format" trace_format
        in
        match Simnet.Scenario.of_args kvs with
        | Ok sc -> sc
        | Error e ->
            Printf.eprintf "%s\n" e;
            Stdlib.exit 2)
    $ n_arg default_n $ seed_arg $ faults_arg $ retry_arg $ domains_arg
    $ trace_arg $ trace_format_arg)

(* A fault-plan field the driver cannot honor raises Invalid_argument
   (see docs/fault_model.md); surface it as a clean CLI error instead of
   an uncaught exception. *)
let or_usage_error f =
  try f ()
  with Invalid_argument msg ->
    Printf.eprintf "%s\n" msg;
    Stdlib.exit 2

(* Scenario.retry is a plain budget; the Section 3/4 drivers want it as a
   Retry.policy with escalating provisioning. *)
let retry_policy (sc : Simnet.Scenario.t) =
  if sc.Simnet.Scenario.retry = 0 then Core.Retry.fixed
  else Core.Retry.make ~max_retries:sc.Simnet.Scenario.retry ()

(* Scenario.domains = 0 means "runtime default"; drivers take an option. *)
let domains_opt (sc : Simnet.Scenario.t) =
  if sc.Simnet.Scenario.domains <= 0 then None
  else Some sc.Simnet.Scenario.domains

(* ---------- sample ---------- *)

let sample_cmd =
  let topology_arg =
    let doc = "Topology: hgraph or hypercube." in
    Arg.(value & opt string "hgraph" & info [ "topology" ] ~docv:"T" ~doc)
  in
  let plain_arg =
    let doc = "Use the plain random-walk baseline instead of rapid sampling." in
    Arg.(value & flag & info [ "plain" ] ~doc)
  in
  let c_arg =
    let doc = "Schedule constant c (samples per node = c log2 n)." in
    Arg.(value & opt float 2.0 & info [ "c" ] ~docv:"C" ~doc)
  in
  let eps_arg =
    let doc = "Schedule slack eps in (0, 1]." in
    Arg.(value & opt float 0.5 & info [ "eps" ] ~docv:"EPS" ~doc)
  in
  let run sc topology plain c eps json () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let retry = retry_policy sc in
    let rng = Simnet.Scenario.rng sc in
    let result =
      match topology with
      | "hgraph" ->
          let g = Topology.Hgraph.random (Prng.Stream.split rng) ~n ~d:8 in
          if plain then
            Core.Rapid_hgraph.run_plain ~trace ~k:4
              ~rng:(Prng.Stream.split rng) g
          else
            Core.Rapid_hgraph.run ~eps ~c ~trace ~retry
              ~rng:(Prng.Stream.split rng) g
      | "hypercube" ->
          let d = Core.Params.log2i_ceil n in
          let cube = Topology.Hypercube.create d in
          if plain then
            Core.Rapid_hypercube.run_plain ~trace ~k:4
              ~rng:(Prng.Stream.split rng) cube
          else
            Core.Rapid_hypercube.run ~eps ~c ~trace ~retry
              ~rng:(Prng.Stream.split rng) cube
      | other ->
          Printf.eprintf "unknown topology %S (hgraph|hypercube)\n" other;
          exit 2
    in
    Simnet.Trace.close trace;
    let actual_n =
      if topology = "hypercube" then 1 lsl Core.Params.log2i_ceil n else n
    in
    Printf.printf "topology:        %s over %d nodes\n" topology actual_n;
    Printf.printf "mode:            %s\n"
      (if plain then "plain random walks" else "rapid (pointer doubling)");
    Printf.printf "rounds:          %d\n" result.Core.Sampling_result.rounds;
    Printf.printf "walk length:     %d\n" result.Core.Sampling_result.walk_length;
    Printf.printf "samples/node:    %d\n"
      (Core.Sampling_result.samples_per_node result);
    Printf.printf "underflows:      %d\n" result.Core.Sampling_result.underflows;
    if Core.Retry.enabled retry then
      Printf.printf "retries:         %d (%d escalated)\n"
        result.Core.Sampling_result.retries
        result.Core.Sampling_result.escalations;
    Printf.printf "max work/round:  %d bits\n"
      result.Core.Sampling_result.max_round_node_bits;
    let counts = Array.make actual_n 0 in
    Array.iter
      (Array.iter (fun v -> counts.(v) <- counts.(v) + 1))
      result.Core.Sampling_result.samples;
    Printf.printf "uniformity:      chi2 p = %.3f, TV = %.4f (floor %.4f)\n"
      (Stats.Chi_square.test_uniform counts)
      (Stats.Distance.tv_counts_uniform counts)
      (Stats.Distance.expected_tv_noise_floor
         ~samples:(Array.fold_left ( + ) 0 counts)
         ~cells:actual_n);
    if json then begin
      Printf.printf
        {|{"cmd":"sample","topology":"%s","n":%d,"plain":%b,"rounds":%d,"walk_length":%d,"samples_per_node":%d,"underflows":%d,"retries":%d,"escalations":%d,"max_round_node_bits":%d}|}
        topology actual_n plain result.Core.Sampling_result.rounds
        result.Core.Sampling_result.walk_length
        (Core.Sampling_result.samples_per_node result)
        result.Core.Sampling_result.underflows
        result.Core.Sampling_result.retries
        result.Core.Sampling_result.escalations
        result.Core.Sampling_result.max_round_node_bits;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "sample" ~doc:(subcommand_doc "sample"))
    Term.(
      const run
      $ scenario_term ~with_faults:false ~default_n:1024 ()
      $ topology_arg $ plain_arg $ c_arg $ eps_arg $ json_term $ verbose_term)

(* ---------- churn ---------- *)

let strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> Core.Churn_adversary.to_string st = s)
        Core.Churn_adversary.all
    with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown churn strategy %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Core.Churn_adversary.to_string s))

let churn_cmd =
  let epochs_arg =
    Arg.(value & opt int 10 & info [ "epochs" ] ~docv:"E" ~doc:"Epochs to run.")
  in
  let leave_arg =
    Arg.(
      value & opt float 0.3
      & info [ "leave-frac" ] ~docv:"F" ~doc:"Fraction leaving per epoch.")
  in
  let join_arg =
    Arg.(
      value & opt float 0.3
      & info [ "join-frac" ] ~docv:"F" ~doc:"Fraction joining per epoch.")
  in
  let strat_arg =
    Arg.(
      value
      & opt strategy_conv Core.Churn_adversary.Random_churn
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Adversary: random, segment, or heavy-introducer.")
  in
  let run sc epochs leave_frac join_frac strategy json () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let rng = Simnet.Scenario.rng sc in
    let net =
      or_usage_error (fun () ->
          Core.Churn_network.create ~trace ?faults:sc.Simnet.Scenario.faults
            ~retry:(retry_policy sc) ?domains:(domains_opt sc)
            ~rng:(Prng.Stream.split rng) ~n ())
    in
    Printf.printf "%-6s %-8s %-8s %-7s %-7s %-10s %-6s %s\n" "epoch" "before"
      "after" "left" "joined" "rounds" "valid" "connected";
    let ok = ref 0 and total_rounds = ref 0 in
    let tot_retries = ref 0
    and tot_reply_retries = ref 0
    and tot_stale = ref 0
    and min_reach = ref 1.0 in
    for e = 1 to epochs do
      let plan =
        Core.Churn_adversary.plan ~trace strategy ~rng:(Prng.Stream.split rng)
          ~graph:(Core.Churn_network.graph net) ~leave_frac ~join_frac
      in
      let r =
        Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
          ~join_introducers:plan.Core.Churn_adversary.join_introducers
      in
      if r.Core.Churn_network.valid && r.Core.Churn_network.connected then
        incr ok;
      total_rounds := !total_rounds + r.Core.Churn_network.rounds;
      tot_retries := !tot_retries + r.Core.Churn_network.sampling_retries;
      tot_reply_retries := !tot_reply_retries + r.Core.Churn_network.reply_retries;
      tot_stale := !tot_stale + r.Core.Churn_network.stale_pointers;
      min_reach := Float.min !min_reach r.Core.Churn_network.reachable_fraction;
      Printf.printf "%-6d %-8d %-8d %-7d %-7d %-10d %-6b %b\n" e
        r.Core.Churn_network.n_before r.Core.Churn_network.n_after
        r.Core.Churn_network.left r.Core.Churn_network.joined
        r.Core.Churn_network.rounds r.Core.Churn_network.valid
        r.Core.Churn_network.connected
    done;
    if Simnet.Scenario.fault_model_active sc then
      Printf.printf
        "faults: sampling retries=%d reply retries=%d stale pointers=%d min \
         reachable=%.3f\n"
        !tot_retries !tot_reply_retries !tot_stale !min_reach;
    Simnet.Trace.close trace;
    if json then begin
      Printf.printf
        {|{"cmd":"churn","epochs":%d,"epochs_ok":%d,"rounds":%d,"final_n":%d,"sampling_retries":%d,"reply_retries":%d,"stale_pointers":%d,"min_reachable_fraction":%.4f}|}
        epochs !ok !total_rounds
        (Core.Churn_network.size net)
        !tot_retries !tot_reply_retries !tot_stale !min_reach;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "churn" ~doc:(subcommand_doc "churn"))
    Term.(
      const run
      $ scenario_term ~default_n:1024 ()
      $ epochs_arg $ leave_arg $ join_arg $ strat_arg $ json_term
      $ verbose_term)

(* ---------- dos ---------- *)

let dos_strategy_conv =
  let parse s =
    match
      List.find_opt
        (fun st -> Core.Dos_adversary.to_string st = s)
        Core.Dos_adversary.all
    with
    | Some st -> Ok st
    | None -> Error (`Msg (Printf.sprintf "unknown DoS strategy %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Core.Dos_adversary.to_string s))

let frac_arg =
  Arg.(
    value & opt float 0.25
    & info [ "frac" ] ~docv:"F" ~doc:"Fraction of nodes blocked per round.")

let lateness_arg =
  Arg.(
    value & opt int (-1)
    & info [ "lateness" ] ~docv:"L"
        ~doc:
          "Adversary lateness in rounds (default: one reconfiguration \
           period).")

let staleness_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "staleness" ] ~docv:"DIST"
        ~doc:
          "Draw the adversary's lateness per round instead of fixing it: \
           $(b,3) (fixed), $(b,0.25) (expected lateness, floor plus \
           Bernoulli on the fraction) or $(b,1..4) (uniform).  Overrides \
           --lateness.")

let parse_staleness = function
  | None -> None
  | Some s -> (
      match Simnet.Snapshots.staleness_of_string s with
      | Ok d -> Some d
      | Error e ->
          Printf.eprintf "%s\n" e;
          Stdlib.exit 2)

let dos_cmd =
  let windows_arg =
    Arg.(
      value & opt int 6 & info [ "windows" ] ~docv:"W" ~doc:"Windows to run.")
  in
  let strat_arg =
    Arg.(
      value
      & opt dos_strategy_conv Core.Dos_adversary.Group_kill
      & info [ "strategy" ] ~docv:"S"
          ~doc:"Adversary: random, group-kill, or isolate.")
  in
  let run sc windows frac lateness staleness strategy json () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let rng = Simnet.Scenario.rng sc in
    let net =
      or_usage_error (fun () ->
          Core.Dos_network.create ~c:2.0 ~trace
            ?faults:sc.Simnet.Scenario.faults ~retry:(retry_policy sc)
            ?domains:(domains_opt sc) ~rng:(Prng.Stream.split rng) ~n ())
    in
    let p = Core.Dos_network.period net in
    let lateness = if lateness < 0 then p else lateness in
    let staleness = parse_staleness staleness in
    let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
    let adv =
      Core.Dos_adversary.create ~trace ?staleness strategy
        ~rng:(Prng.Stream.split rng) ~lateness ~frac
    in
    Printf.printf
      "n=%d, %d supernodes, period=%d rounds, adversary=%s lateness=%s \
       frac=%.2f\n\n"
      n
      (Core.Dos_network.supernode_count net)
      p
      (Core.Dos_adversary.to_string strategy)
      (match staleness with
      | None -> string_of_int lateness
      | Some d -> Simnet.Snapshots.staleness_to_string d)
      frac;
    Printf.printf "%-7s %-15s %-13s %s\n" "window" "starved rounds"
      "disconnected" "reconfigured";
    let tot_starved = ref 0 and tot_disc = ref 0 and reconf_ok = ref 0 in
    let tot_fallbacks = ref 0
    and tot_retries = ref 0
    and last_boost = ref 1.0 in
    for w = 1 to windows do
      let starved = ref 0 and disconnected = ref 0 in
      for _ = 1 to p do
        Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
        let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
        let r = Core.Dos_network.run_round net ~blocked in
        if r.Core.Dos_network.starved_groups > 0 then incr starved;
        if not r.Core.Dos_network.connected then incr disconnected
      done;
      let reconf =
        match Core.Dos_network.last_window net with
        | Some lw ->
            tot_fallbacks := !tot_fallbacks + lw.Core.Dos_network.sampling_fallbacks;
            tot_retries := !tot_retries + lw.Core.Dos_network.sampling_retries;
            last_boost := lw.Core.Dos_network.c_multiplier;
            lw.Core.Dos_network.reconfigured
        | None -> false
      in
      tot_starved := !tot_starved + !starved;
      tot_disc := !tot_disc + !disconnected;
      if reconf then incr reconf_ok;
      Printf.printf "%-7d %-15s %-13s %b\n" w
        (Printf.sprintf "%d/%d" !starved p)
        (Printf.sprintf "%d/%d" !disconnected p)
        reconf
    done;
    if Simnet.Scenario.fault_model_active sc then
      Printf.printf
        "faults: sampling retries=%d fallback draws=%d c multiplier=%.2f\n"
        !tot_retries !tot_fallbacks !last_boost;
    Simnet.Trace.close trace;
    if json then begin
      Printf.printf
        {|{"cmd":"dos","windows":%d,"rounds":%d,"starved_rounds":%d,"disconnected_rounds":%d,"reconfigured_windows":%d,"sampling_retries":%d,"sampling_fallbacks":%d,"c_multiplier":%.4f}|}
        windows (windows * p) !tot_starved !tot_disc !reconf_ok !tot_retries
        !tot_fallbacks !last_boost;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "dos" ~doc:(subcommand_doc "dos"))
    Term.(
      const run
      $ scenario_term ~default_n:4096 ()
      $ windows_arg $ frac_arg $ lateness_arg $ staleness_arg $ strat_arg
      $ json_term $ verbose_term)

(* ---------- stabilize ---------- *)

let stabilize_cmd =
  let corruption_arg =
    Arg.(
      value
      & opt string "class=split"
      & info [ "corruption" ] ~docv:"SPEC"
          ~doc:
            "Corrupted initial topology, e.g. \
             $(b,class=branch,severity=0.3,seed=7).  Comma-separated \
             KEY=VALUE pairs; classes: branch, split, range, crosslink, \
             partition, stale.  See docs/fault_model.md.")
  in
  let mode_arg =
    Arg.(
      value & opt string "repair"
      & info [ "mode" ] ~docv:"M"
          ~doc:
            "$(b,repair) runs detect-and-repair epochs; $(b,static) only \
             detects (the baseline that never converges).")
  in
  let epochs_arg =
    Arg.(
      value & opt int 16
      & info [ "epochs" ] ~docv:"E" ~doc:"Detect-and-repair epoch budget.")
  in
  let run sc corruption mode epochs json () =
    let sc =
      match Simnet.Scenario.of_args ~base:sc [ ("corruption", corruption) ] with
      | Ok sc -> sc
      | Error e ->
          Printf.eprintf "%s\n" e;
          Stdlib.exit 2
    in
    let corruption = Option.get sc.Simnet.Scenario.corruption in
    let mode =
      match Core.Stabilize.mode_of_string mode with
      | Ok m -> m
      | Error e ->
          Printf.eprintf "%s\n" e;
          Stdlib.exit 2
    in
    let trace = Simnet.Scenario.trace_sink sc in
    let r =
      or_usage_error (fun () ->
          Core.Stabilize.run ~trace ~mode ~max_epochs:epochs
            ~retry:(retry_policy sc) ?faults:sc.Simnet.Scenario.faults
            ?domains:(domains_opt sc) ~corruption
            ~rng:(Simnet.Scenario.rng sc)
            ~n:sc.Simnet.Scenario.n ~d:sc.Simnet.Scenario.d ())
    in
    Simnet.Trace.close trace;
    Printf.printf "stabilize: n=%d d=%d corruption=%s mode=%s\n\n"
      sc.Simnet.Scenario.n sc.Simnet.Scenario.d
      (Simnet.Corruption.to_spec corruption)
      (Core.Stabilize.mode_to_string mode);
    let row k v = Printf.printf "%-18s %s\n" k v in
    row "converged" (string_of_bool r.Core.Stabilize.converged);
    row "epochs" (string_of_int r.Core.Stabilize.epochs);
    row "rounds" (string_of_int r.Core.Stabilize.rounds);
    row "bits" (string_of_int r.Core.Stabilize.bits);
    row "initial violations" (string_of_int r.Core.Stabilize.initial_violations);
    row "residual" (string_of_int (List.length r.Core.Stabilize.residual));
    row "patches" (string_of_int r.Core.Stabilize.patches);
    row "splices" (string_of_int r.Core.Stabilize.splices);
    row "reconfigs" (string_of_int r.Core.Stabilize.reconfigs);
    row "retries" (string_of_int r.Core.Stabilize.retries);
    (* cap the residual listing: the count is in the row above, the first
       few examples are what a human needs *)
    List.iteri
      (fun i v ->
        if i < 6 then row "  violation" (Simnet.Invariants.describe v))
      r.Core.Stabilize.residual;
    (let extra = List.length r.Core.Stabilize.residual - 6 in
     if extra > 0 then row "  violation" (Printf.sprintf "... and %d more" extra));
    if json then begin
      Printf.printf
        {|{"cmd":"stabilize","class":"%s","severity":%s,"mode":"%s","converged":%b,"epochs":%d,"rounds":%d,"bits":%d,"initial_violations":%d,"residual":%d,"patches":%d,"splices":%d,"reconfigs":%d,"retries":%d}|}
        (Simnet.Corruption.class_to_string corruption.Simnet.Corruption.cls)
        (Stats.Float_text.json_repr corruption.Simnet.Corruption.severity)
        (Core.Stabilize.mode_to_string mode)
        r.Core.Stabilize.converged r.Core.Stabilize.epochs
        r.Core.Stabilize.rounds r.Core.Stabilize.bits
        r.Core.Stabilize.initial_violations
        (List.length r.Core.Stabilize.residual)
        r.Core.Stabilize.patches r.Core.Stabilize.splices
        r.Core.Stabilize.reconfigs r.Core.Stabilize.retries;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "stabilize" ~doc:(subcommand_doc "stabilize"))
    Term.(
      const run
      $ scenario_term ~default_n:64 ()
      $ corruption_arg $ mode_arg $ epochs_arg $ json_term $ verbose_term)

(* ---------- churndos ---------- *)

let churndos_cmd =
  let windows_arg =
    Arg.(
      value & opt int 10 & info [ "windows" ] ~docv:"W" ~doc:"Windows to run.")
  in
  let gamma_arg =
    Arg.(
      value & opt float 1.5
      & info [ "gamma" ] ~docv:"G"
          ~doc:"Per-window churn factor (grow then shrink alternately).")
  in
  let run sc windows gamma frac lateness () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let rng = Simnet.Scenario.rng sc in
    let net =
      or_usage_error (fun () ->
          Core.Churndos_network.create ~trace
            ?faults:sc.Simnet.Scenario.faults ?domains:(domains_opt sc)
            ~rng:(Prng.Stream.split rng) ~n ())
    in
    let lateness =
      if lateness < 0 then 2 * Core.Churndos_network.period net else lateness
    in
    let cube = Topology.Hypercube.create 12 in
    let adv =
      Core.Dos_adversary.create Core.Dos_adversary.Group_kill
        ~rng:(Prng.Stream.split rng) ~lateness ~frac
    in
    let blocked_for_round ~round:_ ~group_of ~n =
      Core.Dos_adversary.observe adv ~group_of;
      Core.Dos_adversary.blocked_set adv ~cube ~n
    in
    Printf.printf "%-7s %-8s %-8s %-9s %-7s %-11s %-8s %s\n" "window" "before"
      "after" "starved" "spread" "supernodes" "dims" "reconfigured";
    for w = 1 to windows do
      let cur = Core.Churndos_network.n net in
      let joins, leave_frac =
        if w mod 2 = 1 then
          (int_of_float ((gamma -. 1.0) *. float_of_int cur), 0.0)
        else (0, 1.0 -. (1.0 /. gamma))
      in
      let r =
        Core.Churndos_network.run_window net ~blocked_for_round ~joins
          ~leave_frac
      in
      Printf.printf "%-7d %-8d %-8d %-9d %-7d %-11d [%d..%d] %b\n" w
        r.Core.Churndos_network.n_before r.Core.Churndos_network.n_after
        r.Core.Churndos_network.starved_rounds
        r.Core.Churndos_network.dim_spread r.Core.Churndos_network.supernodes
        r.Core.Churndos_network.min_dim r.Core.Churndos_network.max_dim
        r.Core.Churndos_network.reconfigured
    done;
    Simnet.Trace.close trace
  in
  Cmd.v
    (Cmd.info "churndos" ~doc:(subcommand_doc "churndos"))
    Term.(
      const run
      $ scenario_term ~with_retry:false ~default_n:4096 ()
      $ windows_arg $ gamma_arg $ frac_arg $ lateness_arg $ verbose_term)

(* ---------- groupsim ---------- *)

let groupsim_cmd =
  let run sc frac kill_group json () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let retry = retry_policy sc in
    let faults = sc.Simnet.Scenario.faults in
    let rng = Simnet.Scenario.rng sc in
    let d = Core.Params.dos_dimension ~c:2.0 ~n in
    let cube = Topology.Hypercube.create d in
    let supernodes = Topology.Hypercube.node_count cube in
    let group_of =
      Array.init n (fun _ -> Prng.Stream.int rng supernodes)
    in
    let proto =
      Core.Supernode_sampling.protocol ~c:2.0 ~trace
        ~fallback:(Core.Retry.enabled retry) ~cube ()
    in
    let gs =
      Core.Group_sim.create ~trace ?faults ?domains:(domains_opt sc)
        ~rng:(Prng.Stream.split rng) ~n ~group_of proto
    in
    let arng = Prng.Stream.split rng in
    Printf.printf
      "message-level group simulation: %d nodes, %d supernodes, %d network \
       rounds\n"
      n supernodes
      (Core.Group_sim.network_rounds_total gs);
    Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round ->
        let b = Array.make n false in
        if frac > 0.0 then
          Array.iter
            (fun v -> b.(v) <- true)
            (Prng.Stream.sample_distinct arng n
               ~k:(int_of_float (frac *. float_of_int n)));
        if kill_group >= 0 && round < 3 then
          Array.iteri (fun v g -> if g = kill_group then b.(v) <- true) group_of;
        b);
    let lost = Core.Group_sim.lost_groups gs in
    Printf.printf "lost groups:   [%s]\n"
      (String.concat "; " (List.map string_of_int lost));
    let counts = Array.make supernodes 0 in
    for x = 0 to supernodes - 1 do
      match Core.Group_sim.state_of gs x with
      | None -> ()
      | Some st ->
          Array.iter
            (fun v -> counts.(v) <- counts.(v) + 1)
            (Core.Supernode_sampling.samples st)
    done;
    if List.length lost < supernodes then
      Printf.printf "sample chi2 p: %.3f\n" (Stats.Chi_square.test_uniform counts);
    let m = Core.Group_sim.metrics gs in
    Printf.printf "messages:      %d\nmax work:      %d bits/node/round\n"
      (Simnet.Metrics.total_msgs m)
      (Simnet.Metrics.max_node_bits_ever m);
    if Simnet.Scenario.fault_model_active sc then begin
      let underflows = ref 0 and fallbacks = ref 0 in
      for x = 0 to supernodes - 1 do
        match Core.Group_sim.state_of gs x with
        | None -> ()
        | Some st ->
            underflows := !underflows + Core.Supernode_sampling.underflows st;
            fallbacks := !fallbacks + Core.Supernode_sampling.fallbacks st
      done;
      Printf.printf "faults:        underflows=%d fallback draws=%d\n"
        !underflows !fallbacks
    end;
    Simnet.Trace.close trace;
    if json then begin
      Printf.printf
        {|{"cmd":"groupsim","n":%d,"supernodes":%d,"net_rounds":%d,"lost_groups":%d,"messages":%d,"max_node_bits":%d}|}
        n supernodes
        (Core.Group_sim.network_rounds_total gs)
        (List.length lost)
        (Simnet.Metrics.total_msgs m)
        (Simnet.Metrics.max_node_bits_ever m);
      print_newline ()
    end
  in
  let kill_arg =
    Arg.(
      value & opt int (-1)
      & info [ "kill-group" ] ~docv:"G"
          ~doc:"Block every member of group G for the first simulation step.")
  in
  Cmd.v
    (Cmd.info "groupsim" ~doc:(subcommand_doc "groupsim"))
    Term.(
      const run
      $ scenario_term ~default_n:2048 ()
      $ frac_arg $ kill_arg $ json_term $ verbose_term)

(* ---------- anonymize ---------- *)

let anonymize_cmd =
  let requests_arg =
    Arg.(
      value & opt int 1000
      & info [ "requests" ] ~docv:"R" ~doc:"Requests to issue.")
  in
  let run n requests frac seed () =
    let rng = rng_of_seed seed in
    let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split rng) ~n () in
    let anon = Apps.Anonymizer.create ~net ~rng:(Prng.Stream.split rng) in
    let blocked = Array.make n false in
    if frac > 0.0 then
      Array.iter
        (fun v -> blocked.(v) <- true)
        (Prng.Stream.sample_distinct (Prng.Stream.split rng) n
           ~k:(int_of_float (frac *. float_of_int n)));
    let delivered = ref 0 in
    let exits = Array.make (Core.Dos_network.supernode_count net) 0 in
    for _ = 1 to requests do
      let r = Apps.Anonymizer.request anon ~blocked in
      if r.Apps.Anonymizer.delivered then begin
        incr delivered;
        match r.Apps.Anonymizer.exit_group with
        | Some g -> exits.(g) <- exits.(g) + 1
        | None -> ()
      end
    done;
    Printf.printf "delivered:      %d/%d\n" !delivered requests;
    Printf.printf "exit entropy:   %.4f of maximum\n"
      (Stats.Entropy.normalized_of_counts exits);
    Printf.printf "rounds/request: 4\n"
  in
  Cmd.v
    (Cmd.info "anonymize" ~doc:(subcommand_doc "anonymize"))
    Term.(const run $ n_arg 4096 $ requests_arg $ frac_arg $ seed_arg $ verbose_term)

(* ---------- dht ---------- *)

let dht_cmd =
  let ops_arg =
    Arg.(
      value & opt int 1000
      & info [ "ops" ] ~docv:"OPS" ~doc:"Write+read pairs to execute.")
  in
  let k_arg =
    Arg.(value & opt int 4 & info [ "k" ] ~docv:"K" ~doc:"Hypercube arity.")
  in
  let run n ops k frac seed () =
    let rng = rng_of_seed seed in
    let dht = Apps.Robust_dht.create ~k ~rng:(Prng.Stream.split rng) ~n () in
    let blocked = Array.make n false in
    if frac > 0.0 then
      Array.iter
        (fun v -> blocked.(v) <- true)
        (Prng.Stream.sample_distinct (Prng.Stream.split rng) n
           ~k:(int_of_float (frac *. float_of_int n)));
    let op_list =
      List.concat_map
        (fun i ->
          [ Apps.Robust_dht.Write (i, string_of_int i); Apps.Robust_dht.Read i ])
        (List.init ops (fun i -> i))
    in
    let b = Apps.Robust_dht.execute_batch dht ~blocked op_list in
    Printf.printf "supernodes:     %d (k=%d, d=%d)\n"
      (Apps.Robust_dht.supernode_count dht)
      k
      (Apps.Robust_dht.dimension dht);
    Printf.printf "served:         %d\n" b.Apps.Robust_dht.served;
    Printf.printf "failed:         %d\n" b.Apps.Robust_dht.failed;
    Printf.printf "max hops:       %d\n" b.Apps.Robust_dht.max_hops;
    Printf.printf "max group load: %d\n" b.Apps.Robust_dht.max_group_load
  in
  Cmd.v
    (Cmd.info "dht" ~doc:(subcommand_doc "dht"))
    Term.(const run $ n_arg 2048 $ ops_arg $ k_arg $ frac_arg $ seed_arg $ verbose_term)

(* ---------- workload ---------- *)

let workload_cmd =
  let arrivals_conv =
    let parse s =
      match Workload.Spec.parse_arrivals s with
      | Ok a -> Ok a
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun fmt a ->
          Format.pp_print_string fmt (Workload.Spec.arrivals_to_string a) )
  in
  let mix_conv =
    let parse s =
      match Workload.Spec.parse_mix s with
      | Ok m -> Ok m
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun fmt m -> Format.pp_print_string fmt (Workload.Spec.mix_to_string m)
      )
  in
  let attack_conv =
    let parse s =
      match Workload.Attack.parse_strategy s with
      | Ok a -> Ok a
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun fmt a ->
          Format.pp_print_string fmt (Workload.Attack.strategy_to_string a) )
  in
  let rounds_arg =
    Arg.(
      value & opt int 48 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to simulate.")
  in
  let clients_arg =
    Arg.(
      value & opt int 64 & info [ "clients" ] ~docv:"C" ~doc:"Workload clients.")
  in
  let arrivals_arg =
    Arg.(
      value
      & opt arrivals_conv (Workload.Spec.Open_loop { rate = 0.25 })
      & info [ "arrivals" ] ~docv:"A"
          ~doc:
            "Arrival discipline: $(b,open:RATE) (Poisson arrivals per client \
             per round) or $(b,closed:THINK) (one outstanding request per \
             client, THINK idle rounds between completions).")
  in
  let mix_arg =
    Arg.(
      value
      & opt mix_conv
          { Workload.Spec.read = 0.7; write = 0.2; publish = 0.1 }
      & info [ "mix" ] ~docv:"MIX"
          ~doc:
            "Request mix as $(b,read=W,write=W,publish=W) (weights are \
             normalized).")
  in
  let keys_arg =
    Arg.(
      value & opt int 256 & info [ "keys" ] ~docv:"K" ~doc:"Distinct keys.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S"
          ~doc:
            "Zipf popularity exponent; 0 selects uniform key popularity.")
  in
  let slo_arg =
    Arg.(
      value & opt int 8
      & info [ "slo" ] ~docv:"L" ~doc:"Latency SLO in rounds.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 16
      & info [ "timeout" ] ~docv:"T"
          ~doc:"Rounds after arrival before a request is abandoned.")
  in
  let attack_arg =
    Arg.(
      value
      & opt attack_conv Workload.Attack.No_attack
      & info [ "attack" ] ~docv:"S"
          ~doc:"Adversary: none, random, or group-kill.")
  in
  let wfrac_arg =
    Arg.(
      value & opt float 0.1
      & info [ "frac" ] ~docv:"F"
          ~doc:"Fraction of servers the adversary blocks per round.")
  in
  let churn_arg =
    Arg.(
      value & opt float 0.0
      & info [ "churn" ] ~docv:"F"
          ~doc:"Fraction of servers churned out per epoch (0 = no churn).")
  in
  let churn_epoch_arg =
    Arg.(
      value & opt int 8
      & info [ "churn-epoch" ] ~docv:"E" ~doc:"Churn epoch length in rounds.")
  in
  let static_arg =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Never reconfigure (the static baseline the paper's networks are \
             measured against).")
  in
  let period_arg =
    Arg.(
      value & opt int 8
      & info [ "period" ] ~docv:"P" ~doc:"Reconfiguration period in rounds.")
  in
  let backend_arg =
    Arg.(
      value & opt string "reconfig"
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Overlay backend serving the requests: $(b,reconfig) (the \
             paper's reconfigurable supernode DHT) or $(b,chord) \
             (iterative Chord lookups under the same request plane).")
  in
  let chord_knob_arg name doc =
    Arg.(value & opt int (-1) & info [ name ] ~docv:"K" ~doc)
  in
  let chord_fingers_arg =
    chord_knob_arg "chord-fingers"
      "Chord finger-table length (-1 = the id-space width m)."
  in
  let chord_succs_arg =
    chord_knob_arg "chord-succs"
      "Chord successor-list length (-1 = the backend default)."
  in
  let chord_period_arg =
    chord_knob_arg "chord-period"
      "Chord maintenance period in rounds (-1 = the --period value)."
  in
  let run sc rounds clients arrivals mix keys zipf slo timeout attack frac
      lateness churn churn_epoch static period backend chord_fingers
      chord_succs chord_period json () =
    let n = sc.Simnet.Scenario.n in
    let trace = Simnet.Scenario.trace_sink sc in
    let faults = sc.Simnet.Scenario.faults in
    let wretry = sc.Simnet.Scenario.retry in
    let seed = sc.Simnet.Scenario.seed in
    let popularity =
      if zipf <= 0.0 then Workload.Spec.Uniform else Workload.Spec.Zipf zipf
    in
    let spec =
      Workload.Spec.make ~clients ~rounds ~keys ~arrivals ~mix ~popularity ~slo
        ~timeout ()
    in
    let backend =
      match backend with
      | "reconfig" -> Workload.Driver.Robust
      | "chord" ->
          let knob v = if v = -1 then None else Some v in
          Workload.Driver.Chord
            {
              Workload.Driver.fingers = knob chord_fingers;
              succs = knob chord_succs;
              period = knob chord_period;
            }
      | other ->
          Printf.eprintf "unknown backend %S (reconfig|chord)\n" other;
          Stdlib.exit 2
    in
    let cfg =
      Workload.Driver.config
        ~mode:(if static then Workload.Driver.Static else Workload.Driver.Reconfig)
        ~period ~backend ~attack ~frac
        ?lateness:(if lateness < 0 then None else Some lateness)
        ?churn:
          (if churn > 0.0 then
             Some { Workload.Driver.frac = churn; epoch = churn_epoch }
           else None)
        ?faults ~retries:wretry
        ?domains:(domains_opt sc)
        spec
    in
    let report =
      or_usage_error (fun () ->
          Workload.Driver.run ~trace ~seed:(Int64.of_int seed) ~n cfg)
    in
    Simnet.Trace.close trace;
    (* only the chord backend prints an extra line, so the reconfig
       goldens stay byte-identical *)
    (match backend with
    | Workload.Driver.Robust -> ()
    | Workload.Driver.Chord _ -> Printf.printf "backend: chord\n");
    Printf.printf "workload: %s, mix %s, %d keys (%s)\n"
      (Workload.Spec.arrivals_to_string arrivals)
      (Workload.Spec.mix_to_string mix)
      keys
      (match popularity with
      | Workload.Spec.Uniform -> "uniform"
      | Workload.Spec.Zipf s -> Printf.sprintf "zipf %.2f" s);
    Printf.printf
      "n=%d mode=%s period=%d attack=%s frac=%.2f lateness=%d churn=%.2f \
       retry=%d\n\n"
      n
      (if static then "static" else "reconfig")
      period
      (Workload.Attack.strategy_to_string attack)
      frac cfg.Workload.Driver.lateness churn wretry;
    List.iter print_endline (Workload.Driver.table_lines report);
    Printf.printf "\nhop messages:   %d\n" report.Workload.Driver.hop_msgs;
    Printf.printf "max group load: %d\n" report.Workload.Driver.max_group_load;
    if json then begin
      let t = report.Workload.Driver.total in
      Printf.printf
        {|{"cmd":"workload","n":%d,"issued":%d,"ok":%d,"goodput":%.4f,"p50":%d,"p90":%d,"p99":%d,"slo_miss":%d,"timeout":%d,"failed":%d,"max_hops":%d,"hop_msgs":%d,"max_group_load":%d}|}
        n t.Workload.Driver.issued t.Workload.Driver.ok
        (Workload.Driver.goodput t)
        (Workload.Driver.percentile t 0.50)
        (Workload.Driver.percentile t 0.90)
        (Workload.Driver.percentile t 0.99)
        t.Workload.Driver.slo_miss t.Workload.Driver.timed_out
        t.Workload.Driver.failed t.Workload.Driver.max_hops
        report.Workload.Driver.hop_msgs report.Workload.Driver.max_group_load;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "workload" ~doc:(subcommand_doc "workload"))
    Term.(
      const run
      $ scenario_term ~default_n:1024 ()
      $ rounds_arg $ clients_arg $ arrivals_arg $ mix_arg $ keys_arg
      $ zipf_arg $ slo_arg $ timeout_arg $ attack_arg $ wfrac_arg
      $ lateness_arg $ churn_arg $ churn_epoch_arg $ static_arg $ period_arg
      $ backend_arg $ chord_fingers_arg $ chord_succs_arg $ chord_period_arg
      $ json_term $ verbose_term)

(* ---------- social ---------- *)

let social_cmd =
  let attack_conv =
    let parse s =
      match Workload.Attack.parse_strategy s with
      | Ok a -> Ok a
      | Error e -> Error (`Msg e)
    in
    Arg.conv
      ( parse,
        fun fmt a ->
          Format.pp_print_string fmt (Workload.Attack.strategy_to_string a) )
  in
  let users_arg =
    Arg.(
      value & opt int 64 & info [ "users" ] ~docv:"U" ~doc:"Application users.")
  in
  let topics_arg =
    Arg.(
      value & opt int 16
      & info [ "topics" ] ~docv:"T" ~doc:"Subreddit-like topics.")
  in
  let rounds_arg =
    Arg.(
      value & opt int 48 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to simulate.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.25
      & info [ "rate" ] ~docv:"RATE"
          ~doc:"Mean new requests per online user per round (Poisson).")
  in
  let fanout_arg =
    Arg.(
      value & opt int 2
      & info [ "fanout" ] ~docv:"F"
          ~doc:"Follower-feed publishes triggered per post (the repost \
                fan-out).")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Topic popularity exponent (s > 0).")
  in
  let session_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "session" ] ~docv:"ONLINE:EPOCH"
          ~doc:
            "User session cycle: every EPOCH rounds a fresh 1-ONLINE \
             fraction of users goes offline, and the same fraction of \
             servers churns out (default: everyone always online).")
  in
  let attack_arg =
    Arg.(
      value
      & opt attack_conv Workload.Attack.No_attack
      & info [ "attack" ] ~docv:"S"
          ~doc:"Adversary: none, random, or group-kill.")
  in
  let sfrac_arg =
    Arg.(
      value & opt float 0.1
      & info [ "frac" ] ~docv:"F"
          ~doc:"Fraction of servers the adversary blocks per round.")
  in
  let static_arg =
    Arg.(
      value & flag
      & info [ "static" ]
          ~doc:
            "Never reconfigure (the static baseline the paper's networks are \
             measured against).")
  in
  let period_arg =
    Arg.(
      value & opt int 8
      & info [ "period" ] ~docv:"P" ~doc:"Reconfiguration period in rounds.")
  in
  let backend_arg =
    Arg.(
      value & opt string "reconfig"
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Overlay backend serving the requests: $(b,reconfig) or \
             $(b,chord).")
  in
  let chord_knob_arg name doc =
    Arg.(value & opt int (-1) & info [ name ] ~docv:"K" ~doc)
  in
  let chord_fingers_arg =
    chord_knob_arg "chord-fingers"
      "Chord finger-table length (-1 = the id-space width m)."
  in
  let chord_succs_arg =
    chord_knob_arg "chord-succs"
      "Chord successor-list length (-1 = the backend default)."
  in
  let chord_period_arg =
    chord_knob_arg "chord-period"
      "Chord maintenance period in rounds (-1 = the --period value)."
  in
  let run sc users topics rounds rate fanout zipf session attack frac lateness
      staleness static period backend chord_fingers chord_succs chord_period
      json () =
    let n = sc.Simnet.Scenario.n in
    let seed = sc.Simnet.Scenario.seed in
    let trace = Simnet.Scenario.trace_sink sc in
    (* the session flag reuses the scenario key's parser (and its error
       wording) so CLI and sweep specs cannot drift *)
    let session =
      match session with
      | None -> None
      | Some s -> (
          match Simnet.Scenario.of_args [ ("session", s) ] with
          | Ok sc' -> sc'.Simnet.Scenario.session
          | Error e ->
              Printf.eprintf "%s\n" e;
              Stdlib.exit 2)
    in
    let app =
      or_usage_error (fun () ->
          Apps.Social.config ~users ~topics ~rounds ~rate ~fanout ~zipf
            ?session ())
    in
    let backend =
      match backend with
      | "reconfig" -> Workload.Driver.Robust
      | "chord" ->
          let knob v = if v = -1 then None else Some v in
          Workload.Driver.Chord
            {
              Workload.Driver.fingers = knob chord_fingers;
              succs = knob chord_succs;
              period = knob chord_period;
            }
      | other ->
          Printf.eprintf "unknown backend %S (reconfig|chord)\n" other;
          Stdlib.exit 2
    in
    let cfg =
      or_usage_error (fun () ->
          Workload.Social.config
            ~mode:
              (if static then Workload.Driver.Static
               else Workload.Driver.Reconfig)
            ~period ~backend ~attack ~frac
            ?lateness:(if lateness < 0 then None else Some lateness)
            ?staleness:(parse_staleness staleness)
            ?faults:sc.Simnet.Scenario.faults
            ?domains:(domains_opt sc)
            app)
    in
    let report =
      or_usage_error (fun () ->
          Workload.Social.run ~trace ~seed:(Int64.of_int seed) ~n cfg)
    in
    Simnet.Trace.close trace;
    (match backend with
    | Workload.Driver.Robust -> ()
    | Workload.Driver.Chord _ -> Printf.printf "backend: chord\n");
    Printf.printf
      "social: %d users, %d topics, fanout %d, rate %.2f, zipf %.2f, \
       session %s\n"
      users topics fanout rate zipf
      (match session with
      | None -> "-"
      | Some (online, epoch) -> Printf.sprintf "%g:%d" online epoch);
    Printf.printf "n=%d mode=%s period=%d attack=%s frac=%.2f lateness=%d\n\n"
      n
      (if static then "static" else "reconfig")
      period
      (Workload.Attack.strategy_to_string attack)
      frac cfg.Workload.Social.lateness;
    List.iter print_endline (Workload.Social.table_lines report);
    Printf.printf "\nhop messages:   %d\n" report.Workload.Social.hop_msgs;
    Printf.printf "max group load: %d\n" report.Workload.Social.max_group_load;
    if json then begin
      let cls c =
        Printf.sprintf
          {|"%s":{"issued":%d,"ok":%d,"goodput":%.4f,"p99":%d,"slo_miss":%d}|}
          c.Workload.Driver.cls c.Workload.Driver.issued c.Workload.Driver.ok
          (Workload.Driver.goodput c)
          (Workload.Driver.percentile c 0.99)
          c.Workload.Driver.slo_miss
      in
      Printf.printf {|{"cmd":"social","n":%d,%s,%s}|} n
        (String.concat ","
           (List.map cls report.Workload.Social.classes))
        (cls report.Workload.Social.total);
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "social" ~doc:(subcommand_doc "social"))
    Term.(
      const run
      $ scenario_term ~default_n:1024 ()
      $ users_arg $ topics_arg $ rounds_arg $ rate_arg $ fanout_arg
      $ zipf_arg $ session_arg $ attack_arg $ sfrac_arg $ lateness_arg
      $ staleness_arg $ static_arg $ period_arg $ backend_arg
      $ chord_fingers_arg $ chord_succs_arg $ chord_period_arg
      $ json_term $ verbose_term)

(* ---------- chord ---------- *)

let chord_cmd =
  let rounds_arg =
    Arg.(
      value & opt int 64 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to simulate.")
  in
  let keys_arg =
    Arg.(
      value & opt int 256 & info [ "keys" ] ~docv:"K" ~doc:"Distinct keys.")
  in
  let lookups_arg =
    Arg.(
      value & opt int 8
      & info [ "lookups" ] ~docv:"L" ~doc:"Probe lookups per round.")
  in
  let zipf_arg =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S"
          ~doc:"Zipf popularity exponent; 0 selects uniform key popularity.")
  in
  let attack_arg =
    Arg.(
      value & opt string "none"
      & info [ "attack" ] ~docv:"S"
          ~doc:
            "Adversary: $(b,none), $(b,random), or $(b,succ-kill) (the \
             stale-view successor-list attack; $(b,group-kill) is accepted \
             as an alias so one spec drives both backends).")
  in
  let cfrac_arg =
    Arg.(
      value & opt float 0.1
      & info [ "frac" ] ~docv:"F"
          ~doc:"Fraction of nodes the adversary blocks per round.")
  in
  let churn_arg =
    Arg.(
      value & opt float 0.0
      & info [ "churn" ] ~docv:"F"
          ~doc:"Fraction of nodes churned out per epoch (0 = no churn).")
  in
  let churn_epoch_arg =
    Arg.(
      value & opt int 8
      & info [ "churn-epoch" ] ~docv:"E" ~doc:"Churn epoch length in rounds.")
  in
  let fingers_arg =
    Arg.(
      value & opt int (-1)
      & info [ "fingers" ] ~docv:"NF"
          ~doc:"Finger-table length (-1 = the id-space width m).")
  in
  let succs_arg =
    Arg.(
      value & opt int (-1)
      & info [ "succs" ] ~docv:"R"
          ~doc:"Successor-list length (-1 = max 2 (log2 n)).")
  in
  let period_arg =
    Arg.(
      value & opt int (-1)
      & info [ "period" ] ~docv:"P"
          ~doc:"Maintenance period in rounds (-1 = 8).")
  in
  let run sc rounds keys lookups zipf attack frac lateness staleness churn
      churn_epoch fingers succs period json () =
    let strategy =
      match Chord.Adversary.parse_strategy attack with
      | Ok s -> s
      | Error e ->
          Printf.eprintf "%s\n" e;
          Stdlib.exit 2
    in
    let cfg =
      or_usage_error (fun () ->
          Chord.Sim.config ~rounds ~fingers ~succs ~period ~keys ~lookups ~zipf
            ~strategy ~frac ~lateness
            ?staleness:(parse_staleness staleness)
            ?churn:(if churn > 0.0 then Some (churn, churn_epoch) else None)
            ?faults:sc.Simnet.Scenario.faults ~retries:sc.Simnet.Scenario.retry
            ~n:sc.Simnet.Scenario.n ())
    in
    let trace = Simnet.Scenario.trace_sink sc in
    let r =
      or_usage_error (fun () ->
          Chord.Sim.run ~trace ?domains:(domains_opt sc)
            ~seed:(Int64.of_int sc.Simnet.Scenario.seed)
            cfg)
    in
    Simnet.Trace.close trace;
    List.iter print_endline (Chord.Sim.summary_lines r);
    if json then begin
      Printf.printf
        {|{"cmd":"chord","n":%d,"m":%d,"issued":%d,"ok":%d,"goodput":%.4f,"p50":%d,"p99":%d,"max_hops":%d,"timeouts":%d,"lookup_msgs":%d,"maint_msgs":%d,"total_bits":%d,"succ_ok":%.4f,"connected":%b,"members":%d}|}
        cfg.Chord.Sim.n r.Chord.Sim.m r.Chord.Sim.issued r.Chord.Sim.ok
        (Chord.Sim.goodput r)
        (Chord.Sim.percentile r 0.50)
        (Chord.Sim.percentile r 0.99)
        r.Chord.Sim.max_hops r.Chord.Sim.lookup_timeouts
        r.Chord.Sim.lookup_msgs r.Chord.Sim.maint.Chord.Net.msgs
        r.Chord.Sim.total_bits r.Chord.Sim.succ_ok r.Chord.Sim.connected
        r.Chord.Sim.members;
      print_newline ()
    end
  in
  Cmd.v
    (Cmd.info "chord" ~doc:(subcommand_doc "chord"))
    Term.(
      const run
      $ scenario_term ~default_n:256 ()
      $ rounds_arg $ keys_arg $ lookups_arg $ zipf_arg $ attack_arg
      $ cfrac_arg $ lateness_arg $ staleness_arg $ churn_arg $ churn_epoch_arg
      $ fingers_arg $ succs_arg $ period_arg $ json_term $ verbose_term)

(* ---------- sweep ---------- *)

(* Per-cell runners for `overlay_sim sweep`.  Each runner is a pure
   function of its cell: scenario fields come from the cell scenario,
   free-axis knobs from the cell bindings, randomness from the cell's
   (sweep-name, cell-id)-derived stream — so results are independent of
   sharding, domain count, and which other cells exist. *)

let sweep_float_binding cell key ~default =
  if List.mem_assoc key cell.Sweep.Grid.bindings then
    Sweep.Grid.float_binding cell key
  else default

let sweep_run_sample ~trace (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let rng = Sweep.Grid.cell_rng cell in
  let c = sweep_float_binding cell "c" ~default:2.0 in
  let g =
    Topology.Hgraph.random (Prng.Stream.split rng) ~n:sc.Simnet.Scenario.n
      ~d:sc.Simnet.Scenario.d
  in
  let r =
    Core.Rapid_hgraph.run ~c ~trace ~retry:(retry_policy sc)
      ~rng:(Prng.Stream.split rng) g
  in
  [
    ("rounds", Simnet.Trace.Int r.Core.Sampling_result.rounds);
    ( "samples_per_node",
      Simnet.Trace.Int (Core.Sampling_result.samples_per_node r) );
    ("underflows", Simnet.Trace.Int r.Core.Sampling_result.underflows);
    ( "max_node_bits",
      Simnet.Trace.Int r.Core.Sampling_result.max_round_node_bits );
  ]

let sweep_run_churn ~trace (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let rng = Sweep.Grid.cell_rng cell in
  let epochs =
    if sc.Simnet.Scenario.rounds < 0 then 4 else sc.Simnet.Scenario.rounds
  in
  let leave_frac = sweep_float_binding cell "leave" ~default:0.3 in
  let join_frac = sweep_float_binding cell "join" ~default:0.3 in
  let net =
    Core.Churn_network.create ?faults:sc.Simnet.Scenario.faults ~trace
      ~retry:(retry_policy sc) ?domains:(domains_opt sc)
      ~rng:(Prng.Stream.split rng) ~n:sc.Simnet.Scenario.n ()
  in
  let ok = ref 0 and rounds = ref 0 in
  for _ = 1 to epochs do
    let plan =
      Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
        ~rng:(Prng.Stream.split rng)
        ~graph:(Core.Churn_network.graph net) ~leave_frac ~join_frac
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    if r.Core.Churn_network.valid && r.Core.Churn_network.connected then
      incr ok;
    rounds := !rounds + r.Core.Churn_network.rounds
  done;
  [
    ("epochs", Simnet.Trace.Int epochs);
    ("epochs_ok", Simnet.Trace.Int !ok);
    ("rounds", Simnet.Trace.Int !rounds);
    ("final_n", Simnet.Trace.Int (Core.Churn_network.size net));
  ]

let sweep_run_stabilize ~trace (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let rng = Sweep.Grid.cell_rng cell in
  let corruption =
    match sc.Simnet.Scenario.corruption with
    | Some c -> c
    | None -> Simnet.Corruption.make Simnet.Corruption.Split
  in
  let mode =
    if List.mem_assoc "mode" cell.Sweep.Grid.bindings then
      match Core.Stabilize.mode_of_string (Sweep.Grid.binding cell "mode") with
      | Ok m -> m
      | Error e -> invalid_arg e
    else Core.Stabilize.Repair
  in
  let max_epochs =
    if sc.Simnet.Scenario.rounds < 0 then 16 else sc.Simnet.Scenario.rounds
  in
  let r =
    Core.Stabilize.run ~trace ~mode ~max_epochs ~retry:(retry_policy sc)
      ?faults:sc.Simnet.Scenario.faults ?domains:(domains_opt sc) ~corruption
      ~rng:(Prng.Stream.split rng) ~n:sc.Simnet.Scenario.n
      ~d:sc.Simnet.Scenario.d ()
  in
  [
    ("converged", Simnet.Trace.Bool r.Core.Stabilize.converged);
    ("epochs", Simnet.Trace.Int r.Core.Stabilize.epochs);
    ("rounds", Simnet.Trace.Int r.Core.Stabilize.rounds);
    ("bits", Simnet.Trace.Int r.Core.Stabilize.bits);
    ("residual", Simnet.Trace.Int (List.length r.Core.Stabilize.residual));
    ("patches", Simnet.Trace.Int r.Core.Stabilize.patches);
    ("splices", Simnet.Trace.Int r.Core.Stabilize.splices);
  ]

let sweep_run_chord ~trace (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let strategy =
    match sc.Simnet.Scenario.adversary with
    | None -> Chord.Adversary.No_attack
    | Some s -> (
        match Chord.Adversary.parse_strategy s with
        | Ok st -> st
        | Error e -> invalid_arg e)
  in
  let rounds =
    if sc.Simnet.Scenario.rounds < 0 then 32 else sc.Simnet.Scenario.rounds
  in
  let churn = sweep_float_binding cell "churn" ~default:0.0 in
  let churn_epoch =
    if List.mem_assoc "churn-epoch" cell.Sweep.Grid.bindings then
      Sweep.Grid.int_binding cell "churn-epoch"
    else 8
  in
  let cfg =
    Chord.Sim.config ~rounds ?fingers:sc.Simnet.Scenario.chord_fingers
      ?succs:sc.Simnet.Scenario.chord_succs
      ?period:sc.Simnet.Scenario.chord_period ~strategy
      ~frac:sc.Simnet.Scenario.frac ~lateness:sc.Simnet.Scenario.lateness
      ?staleness:sc.Simnet.Scenario.staleness
      ?churn:(if churn > 0.0 then Some (churn, churn_epoch) else None)
      ?faults:sc.Simnet.Scenario.faults ~retries:sc.Simnet.Scenario.retry
      ~n:sc.Simnet.Scenario.n ()
  in
  let r =
    Chord.Sim.run ~trace ?domains:(domains_opt sc) ~seed:cell.Sweep.Grid.seed
      cfg
  in
  [
    ("goodput", Simnet.Trace.Float (Chord.Sim.goodput r));
    ("p50", Simnet.Trace.Int (Chord.Sim.percentile r 0.50));
    ("p99", Simnet.Trace.Int (Chord.Sim.percentile r 0.99));
    ("max_hops", Simnet.Trace.Int r.Chord.Sim.max_hops);
    ("maint_msgs", Simnet.Trace.Int r.Chord.Sim.maint.Chord.Net.msgs);
    ("total_bits", Simnet.Trace.Int r.Chord.Sim.total_bits);
    ("succ_ok", Simnet.Trace.Float r.Chord.Sim.succ_ok);
    ("connected", Simnet.Trace.Bool r.Chord.Sim.connected);
    ("members", Simnet.Trace.Int r.Chord.Sim.members);
  ]

(* The social application through the sweep engine.  The scenario keys
   app/topics/fanout/session drive the application shape; backend= picks
   reconfig, static (the no-reshuffle ablation on the robust DHT) or
   chord.  Free axes: var:users, var:rate, var:period. *)
let sweep_run_social ~trace (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  (match sc.Simnet.Scenario.app with
  | None | Some "social" -> ()
  | Some other ->
      invalid_arg (Printf.sprintf "run=social cannot serve app=%s" other));
  let attack =
    match sc.Simnet.Scenario.adversary with
    | None -> Workload.Attack.No_attack
    | Some s -> (
        match Workload.Attack.parse_strategy s with
        | Ok a -> a
        | Error e -> invalid_arg e)
  in
  let rounds =
    if sc.Simnet.Scenario.rounds < 0 then 48 else sc.Simnet.Scenario.rounds
  in
  let users =
    if List.mem_assoc "users" cell.Sweep.Grid.bindings then
      Sweep.Grid.int_binding cell "users"
    else 64
  in
  let rate = sweep_float_binding cell "rate" ~default:0.25 in
  let period =
    if List.mem_assoc "period" cell.Sweep.Grid.bindings then
      Sweep.Grid.int_binding cell "period"
    else 8
  in
  let app =
    Apps.Social.config ~users ~rounds ~rate
      ?topics:sc.Simnet.Scenario.topics ?fanout:sc.Simnet.Scenario.fanout
      ?session:sc.Simnet.Scenario.session ()
  in
  let mode, backend =
    match sc.Simnet.Scenario.backend with
    | Some "chord" ->
        ( Workload.Driver.Reconfig,
          Workload.Driver.Chord
            {
              Workload.Driver.fingers = sc.Simnet.Scenario.chord_fingers;
              succs = sc.Simnet.Scenario.chord_succs;
              period = sc.Simnet.Scenario.chord_period;
            } )
    | Some "static" -> (Workload.Driver.Static, Workload.Driver.Robust)
    | _ -> (Workload.Driver.Reconfig, Workload.Driver.Robust)
  in
  let cfg =
    Workload.Social.config ~mode ~period ~backend ~attack
      ~frac:sc.Simnet.Scenario.frac
      ?lateness:
        (if sc.Simnet.Scenario.lateness < 0 then None
         else Some sc.Simnet.Scenario.lateness)
      ?staleness:sc.Simnet.Scenario.staleness
      ?faults:sc.Simnet.Scenario.faults
      ?domains:(domains_opt sc) app
  in
  let r =
    Workload.Social.run ~trace ~seed:cell.Sweep.Grid.seed
      ~n:sc.Simnet.Scenario.n cfg
  in
  let per_class c =
    [
      ( c.Workload.Driver.cls ^ "_goodput",
        Simnet.Trace.Float (Workload.Driver.goodput c) );
      ( c.Workload.Driver.cls ^ "_p99",
        Simnet.Trace.Int (Workload.Driver.percentile c 0.99) );
    ]
  in
  List.concat_map per_class r.Workload.Social.classes
  @ [
      ( "goodput",
        Simnet.Trace.Float (Workload.Driver.goodput r.Workload.Social.total) );
      ("slo_miss", Simnet.Trace.Int r.Workload.Social.total.Workload.Driver.slo_miss);
      ("hop_msgs", Simnet.Trace.Int r.Workload.Social.hop_msgs);
      ("total_bits", Simnet.Trace.Int r.Workload.Social.total_bits);
    ]

let sweep_runner = function
  | "sample" -> sweep_run_sample
  | "churn" -> sweep_run_churn
  | "stabilize" -> sweep_run_stabilize
  | "chord" -> sweep_run_chord
  | "social" -> sweep_run_social
  | other ->
      Printf.eprintf
        "unknown sweep runner %S (sample|churn|stabilize|chord|social)\n"
        other;
      exit 2

let sweep_value_string = function
  | Simnet.Trace.Int i -> string_of_int i
  | Simnet.Trace.Bool b -> string_of_bool b
  | Simnet.Trace.String s -> s
  | Simnet.Trace.Float f -> Stats.Float_text.repr f

(* Cell table: one row per cell, one column per payload key, widths fit
   the data.  Cached/fresh status is deliberately not printed — stdout
   must be identical between a fresh run and a resumed one. *)
let sweep_print_table (outcomes : Sweep.Exec.record Sweep.Exec.outcome list) =
  let keys =
    match outcomes with
    | [] -> []
    | o :: _ -> List.map fst o.Sweep.Exec.value
  in
  let rows =
    List.map
      (fun (o : _ Sweep.Exec.outcome) ->
        ( o.Sweep.Exec.cell.Sweep.Grid.id,
          List.map
            (fun k ->
              match List.assoc_opt k o.Sweep.Exec.value with
              | Some v -> sweep_value_string v
              | None -> "-")
            keys ))
      outcomes
  in
  let width header col =
    List.fold_left
      (fun w s -> max w (String.length s))
      (String.length header) col
  in
  let cell_w = width "cell" (List.map fst rows) in
  let col_ws =
    List.mapi (fun i k -> width k (List.map (fun (_, vs) -> List.nth vs i) rows))
      keys
  in
  let pad_left w s = String.make (w - String.length s) ' ' ^ s in
  let pad_right w s = s ^ String.make (w - String.length s) ' ' in
  Printf.printf "%s" (pad_right cell_w "cell");
  List.iter2 (fun k w -> Printf.printf "  %s" (pad_left w k)) keys col_ws;
  print_newline ();
  List.iter
    (fun (id, vs) ->
      Printf.printf "%s" (pad_right cell_w id);
      List.iter2 (fun v w -> Printf.printf "  %s" (pad_left w v)) vs col_ws;
      print_newline ())
    rows

let sweep_cmd =
  let spec_arg =
    let doc =
      "Grid spec string, e.g. \
       $(b,sweep=demo;run=sample;axis:n=64|128;var:c=1.5|2).  Segments \
       separated by ';': $(b,sweep=NAME) names the sweep, $(b,run=R) picks \
       the per-cell runner (sample|churn), $(b,axis:KEY=v1|v2|...) adds a \
       scenario axis, $(b,var:KEY=v1|v2|...) a free axis the runner reads, \
       and any other KEY=VALUE sets the base scenario.  See docs/sweeps.md."
    in
    Arg.(value & opt (some string) None & info [ "spec" ] ~docv:"SPEC" ~doc)
  in
  let file_arg =
    let doc =
      "Read the grid spec from $(docv) (same syntax; newlines also \
       separate segments, '#' starts a comment)."
    in
    Arg.(value & opt (some string) None & info [ "file" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Stream one JSONL record per completed cell to $(docv); rerunning \
       with the same file skips recorded cells and resumes to a \
       byte-identical artifact."
    in
    Arg.(
      value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains (0 = runtime default, honours OVERLAY_DOMAINS); \
       results and artifacts are identical for every value."
    in
    Arg.(value & opt int 0 & info [ "domains" ] ~docv:"D" ~doc)
  in
  let trace_arg =
    let doc =
      "Write per-cell progress events to $(docv) as JSONL (CSV if the \
       name ends in .csv, compact binary if it ends in .bin)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let cell_traces_arg =
    let doc =
      "Write one compact binary trace per freshly computed cell under \
       directory $(docv) (created if missing); checkpoint records \
       reference each cell's file under the reserved 'trace' key.  \
       Decode with trace_check --export-jsonl."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "cell-traces" ] ~docv:"DIR" ~doc)
  in
  let run spec file checkpoint domains trace_path cell_traces json () =
    let parsed =
      match (spec, file) with
      | Some s, None -> Sweep.Spec.parse s
      | None, Some f -> Sweep.Spec.load f
      | Some _, Some _ -> Error "pass --spec or --file, not both"
      | None, None -> Error "pass --spec STRING or --file FILE"
    in
    let parsed =
      Result.bind parsed (fun sp ->
          Result.map (fun cells -> (sp, cells)) (Sweep.Spec.cells sp))
    in
    match parsed with
    | Error e ->
        Printf.eprintf "%s\n" e;
        exit 2
    | Ok (sp, cells) ->
        let runner = sweep_runner sp.Sweep.Spec.run in
        let trace =
          match trace_path with
          | None -> Simnet.Trace.null
          | Some p -> Simnet.Trace.open_file p
        in
        let outcomes =
          or_usage_error (fun () ->
              Sweep.Exec.run
                ?domains:(if domains <= 0 then None else Some domains)
                ?checkpoint ~trace ?cell_traces ~sweep:sp.Sweep.Spec.name
                ~codec:Sweep.Exec.record_codec cells runner)
        in
        Simnet.Trace.close trace;
        Printf.printf "sweep %s: %d cells (run=%s)\n\n" sp.Sweep.Spec.name
          (List.length outcomes) sp.Sweep.Spec.run;
        sweep_print_table outcomes;
        if json then
          List.iter
            (fun (o : _ Sweep.Exec.outcome) ->
              print_endline
                (Simnet.Trace.jsonl_of_pairs
                   (("cell", Simnet.Trace.String o.Sweep.Exec.cell.Sweep.Grid.id)
                   :: o.Sweep.Exec.value)))
            outcomes
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:(subcommand_doc "sweep"))
    Term.(
      const run $ spec_arg $ file_arg $ checkpoint_arg $ domains_arg
      $ trace_arg $ cell_traces_arg $ json_term $ verbose_term)

let () =
  (* An unknown subcommand gets a deterministic exit-2 diagnostic listing
     every subcommand with its one-liner (cmdliner's own error goes to a
     pager-formatted usage block with a different exit code). *)
  (match Array.to_list Sys.argv with
  | _ :: arg :: _
    when String.length arg > 0
         && arg.[0] <> '-'
         && arg <> "help"
         && not (List.mem_assoc arg subcommand_index) ->
      Printf.eprintf "overlay_sim: unknown subcommand %S\n\nSubcommands:\n" arg;
      List.iter
        (fun (name, doc) -> Printf.eprintf "  %-9s  %s\n" name doc)
        subcommand_index;
      Stdlib.exit 2
  | _ -> ());
  let doc =
    "churn- and DoS-resistant overlay networks based on network \
     reconfiguration (SPAA 2016)"
  in
  let info = Cmd.info "overlay_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            sample_cmd; churn_cmd; dos_cmd; stabilize_cmd; churndos_cmd;
            groupsim_cmd; anonymize_cmd; dht_cmd; workload_cmd; chord_cmd;
            social_cmd; sweep_cmd;
          ]))
