(* Throughput regression gate over BENCH_engine.json.

   Usage: bench_gate BASELINE FRESH [--n N] [--domains D] [--min-ratio R]

   Reads the curve entries of both files, picks the (n, domains) point
   (default n=65536, domains=1 — the mid-size single-domain point, the
   least noisy on shared CI runners), and fails (exit 1) when the fresh
   msgs_per_sec falls below min-ratio (default 0.8) of the committed
   baseline.  The JSON is the bench's own fixed-shape output, so a
   hand-rolled scanner is enough; a malformed or incomplete file is a
   hard error (exit 2), never a silent pass. *)

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let die fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt

(* Find `"key":<number>` starting at [from]; returns (value, end position). *)
let number_field s ~from key =
  let probe = Printf.sprintf "\"%s\":" key in
  let plen = String.length probe in
  let limit = String.length s - plen in
  let rec find i =
    if i > limit then None
    else if String.sub s i plen = probe then Some (i + plen)
    else find (i + 1)
  in
  match find from with
  | None -> None
  | Some start ->
      let stop = ref start in
      let is_num c =
        (c >= '0' && c <= '9') || c = '.' || c = '-' || c = 'e' || c = '+'
      in
      while !stop < String.length s && is_num s.[!stop] do
        incr stop
      done;
      Some (float_of_string (String.sub s start (!stop - start)), !stop)

(* The msgs_per_sec of the curve entry with this (n, domains).  Entries
   are flat objects in a fixed key order (n, domains, rounds,
   msgs_per_sec, ...), so scanning n-fields and checking the following
   domains-field is faithful.  The pre-sweep format had no domains field;
   treat those entries as domains=1 so the gate still reads old
   baselines. *)
let curve_rate json ~n ~domains =
  let rec scan from =
    match number_field json ~from "n" with
    | None -> None
    | Some (nv, after_n) ->
        let dv, after =
          match number_field json ~from:after_n "domains" with
          | Some (d, p) -> (int_of_float d, p)
          | None -> (1, after_n)
        in
        if int_of_float nv = n && dv = domains then
          match number_field json ~from:after "msgs_per_sec" with
          | Some (r, _) -> Some r
          | None -> None
        else scan after_n
  in
  (* skip the top-level "n" of the mailbox A/B header *)
  match number_field json ~from:0 "n" with
  | None -> None
  | Some (_, after_header) -> scan after_header

let () =
  let baseline = ref None and fresh = ref None in
  let n = ref 65536 and domains = ref 1 and min_ratio = ref 0.8 in
  let rec parse = function
    | [] -> ()
    | "--n" :: v :: rest ->
        n := int_of_string v;
        parse rest
    | "--domains" :: v :: rest ->
        domains := int_of_string v;
        parse rest
    | "--min-ratio" :: v :: rest ->
        min_ratio := float_of_string v;
        parse rest
    | path :: rest ->
        (if !baseline = None then baseline := Some path
         else if !fresh = None then fresh := Some path
         else die "bench_gate: unexpected argument %s" path);
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let baseline, fresh =
    match (!baseline, !fresh) with
    | Some b, Some f -> (b, f)
    | _ ->
        die
          "usage: bench_gate BASELINE FRESH [--n N] [--domains D] \
           [--min-ratio R]"
  in
  let rate_of label path =
    match curve_rate (read_file path) ~n:!n ~domains:!domains with
    | Some r -> r
    | None ->
        die "bench_gate: no curve entry n=%d domains=%d in %s (%s)" !n
          !domains path label
  in
  let base = rate_of "baseline" baseline in
  let now = rate_of "fresh" fresh in
  let ratio = now /. base in
  Printf.printf
    "bench_gate: n=%d domains=%d baseline=%.0f fresh=%.0f ratio=%.3f \
     (floor %.2f)\n"
    !n !domains base now ratio !min_ratio;
  if ratio < !min_ratio then begin
    Printf.eprintf
      "bench_gate: FAIL — msgs/sec regressed below %.0f%% of the committed \
       baseline\n"
      (100.0 *. !min_ratio);
    exit 1
  end
