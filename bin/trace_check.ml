(* trace_check: validate a JSONL trace produced with --trace.

   Reads FILE, parses every line with Simnet.Trace.parse_jsonl_line, and
   reports per-event-kind counts.  Exits non-zero if the file is empty,
   any line fails to parse, or no events of the required kind are
   present — "round" by default; pass --require KIND for traces that
   legitimately carry no rounds, e.g. --require progress for the
   progress-only streams a sweep emits.  The smoke check used by
   `make trace-smoke` and `make sweep-smoke`. *)

let () =
  let usage () =
    prerr_endline "usage: trace_check [--require KIND] FILE.jsonl";
    exit 2
  in
  let require, path =
    match Sys.argv with
    | [| _; path |] -> ("round", path)
    | [| _; "--require"; kind; path |] -> (kind, path)
    | _ -> usage ()
  in
  let ic =
    try open_in path
    with Sys_error msg ->
      Printf.eprintf "trace_check: %s\n" msg;
      exit 2
  in
  let lines = ref 0 and bad = ref 0 in
  let counts = Hashtbl.create 8 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         match Simnet.Trace.parse_jsonl_line line with
         | None ->
             incr bad;
             if !bad <= 5 then
               Printf.eprintf "trace_check: unparseable line %d: %s\n" !lines
                 line
         | Some fields ->
             let kind =
               match List.assoc_opt "ev" fields with
               | Some (Simnet.Trace.String s) -> s
               | _ -> "<missing ev>"
             in
             Hashtbl.replace counts kind
               (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
       end
     done
   with End_of_file -> ());
  close_in ic;
  let required =
    Option.value ~default:0 (Hashtbl.find_opt counts require)
  in
  Printf.printf "%s: %d lines" path !lines;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf ", %s=%d" k v);
  print_newline ();
  if !lines = 0 then begin
    prerr_endline "trace_check: FAIL - empty trace";
    exit 1
  end;
  if !bad > 0 then begin
    Printf.eprintf "trace_check: FAIL - %d unparseable lines\n" !bad;
    exit 1
  end;
  if required = 0 then begin
    Printf.eprintf "trace_check: FAIL - no %s events\n" require;
    exit 1
  end;
  print_endline "trace_check: OK"
