(* trace_check: validate a trace produced with --trace.

   Reads FILE — sniffing the binary magic to pick the decoder — and
   reports per-event-kind counts.  JSONL traces are parsed line by line
   with Simnet.Trace.parse_jsonl_line; binary traces are decoded with
   Simnet.Trace.fold_binary_file.  Exits non-zero if the file is empty,
   any line/record fails to decode, or no events of the required kind
   are present — "round" by default; pass --require KIND for traces that
   legitimately carry no rounds, e.g. --require progress for the
   progress-only streams a sweep emits.  A --require argument that is
   not one of the seven event kinds matches span/note *names* instead
   (e.g. --require converged for a stabilize run), with a trailing `*'
   matching any suffix (--require 'repair/*').  The printed summary
   always stays kind-based.

   --export-jsonl OUT decodes a binary trace and writes the exact JSONL
   bytes the text sink would have produced for the same events (the
   export-equivalence property test/cram/trace_bin.t pins by md5).
   The smoke check used by `make trace-smoke`, `make sweep-smoke` and
   `make trace-bench-smoke`. *)

let () =
  let usage () =
    prerr_endline
      "usage: trace_check [--require KIND] [--export-jsonl OUT] FILE";
    exit 2
  in
  let require = ref "round" and export = ref None and path = ref None in
  let rec parse_args = function
    | [] -> ()
    | "--require" :: kind :: rest ->
        require := kind;
        parse_args rest
    | "--export-jsonl" :: out :: rest ->
        export := Some out;
        parse_args rest
    | p :: rest when !path = None && String.length p > 0 && p.[0] <> '-' ->
        path := Some p;
        parse_args rest
    | _ -> usage ()
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let path = match !path with Some p -> p | None -> usage () in
  if not (Sys.file_exists path) then begin
    Printf.eprintf "trace_check: %s: No such file or directory\n" path;
    exit 2
  end;
  let counts = Hashtbl.create 8 in
  let count kind =
    Hashtbl.replace counts kind
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind))
  in
  (* Span/note names are tallied separately so name-based --require never
     changes the printed (kind-based) summary. *)
  let name_counts = Hashtbl.create 8 in
  let count_name = function
    | None -> ()
    | Some name ->
        Hashtbl.replace name_counts name
          (1 + Option.value ~default:0 (Hashtbl.find_opt name_counts name))
  in
  let events = ref 0 and bad = ref 0 in
  let binary = Simnet.Trace.is_binary_file path in
  if binary then begin
    let out =
      Option.map
        (fun out ->
          try open_out out
          with Sys_error msg ->
            Printf.eprintf "trace_check: %s\n" msg;
            exit 2)
        !export
    in
    (try
       Simnet.Trace.fold_binary_file path ~init:() ~f:(fun () ev ->
           incr events;
           count (Simnet.Trace.kind_of_event ev);
           count_name
             (match ev with
             | Simnet.Trace.Span { name; _ } | Simnet.Trace.Note { name; _ }
               ->
                 Some name
             | _ -> None);
           Option.iter
             (fun oc ->
               output_string oc (Simnet.Trace.jsonl_of_event ev);
               output_char oc '\n')
             out)
     with Failure msg ->
       Printf.eprintf "trace_check: FAIL - %s\n" msg;
       exit 1);
    Option.iter close_out out
  end
  else begin
    (match !export with
    | Some _ ->
        Printf.eprintf
          "trace_check: --export-jsonl expects a binary trace, and %s is not \
           one\n"
          path;
        exit 2
    | None -> ());
    let ic =
      try open_in path
      with Sys_error msg ->
        Printf.eprintf "trace_check: %s\n" msg;
        exit 2
    in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           incr events;
           match Simnet.Trace.parse_jsonl_line line with
           | None ->
               incr bad;
               if !bad <= 5 then
                 Printf.eprintf "trace_check: unparseable line %d: %s\n"
                   !events line
           | Some fields ->
               let kind =
                 match List.assoc_opt "ev" fields with
                 | Some (Simnet.Trace.String s) -> s
                 | _ -> "<missing ev>"
               in
               count kind;
               if kind = "span" || kind = "note" then
                 count_name
                   (match List.assoc_opt "name" fields with
                   | Some (Simnet.Trace.String s) -> Some s
                   | _ -> None)
         end
       done
     with End_of_file -> ());
    close_in ic
  end;
  let kinds =
    [ "round"; "span"; "adversary"; "note"; "fault"; "request"; "progress" ]
  in
  let required =
    if List.mem !require kinds then
      Option.value ~default:0 (Hashtbl.find_opt counts !require)
    else begin
      let r = !require in
      let rl = String.length r in
      let matches name =
        if rl > 0 && r.[rl - 1] = '*' then
          String.length name >= rl - 1
          && String.sub name 0 (rl - 1) = String.sub r 0 (rl - 1)
        else name = r
      in
      Hashtbl.fold
        (fun name c acc -> if matches name then acc + c else acc)
        name_counts 0
    end
  in
  Printf.printf "%s: %d %s" path !events (if binary then "events" else "lines");
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
  |> List.sort compare
  |> List.iter (fun (k, v) -> Printf.printf ", %s=%d" k v);
  print_newline ();
  if !events = 0 then begin
    prerr_endline "trace_check: FAIL - empty trace";
    exit 1
  end;
  if !bad > 0 then begin
    Printf.eprintf "trace_check: FAIL - %d unparseable lines\n" !bad;
    exit 1
  end;
  if required = 0 then begin
    Printf.eprintf "trace_check: FAIL - no %s events\n" !require;
    exit 1
  end;
  print_endline "trace_check: OK"
