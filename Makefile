# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench micro examples doc clean check

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sampling_anatomy.exe
	dune exec examples/churn_survival.exe
	dune exec examples/dos_defense.exe
	dune exec examples/anonymizer_demo.exe
	dune exec examples/dht_pubsub_demo.exe

doc:
	dune build @doc

# The full release gate: build everything, run every test, regenerate
# every experiment table.
check: build test bench

clean:
	dune clean
