# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench micro examples doc clean check trace-smoke

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sampling_anatomy.exe
	dune exec examples/churn_survival.exe
	dune exec examples/dos_defense.exe
	dune exec examples/anonymizer_demo.exe
	dune exec examples/dht_pubsub_demo.exe

doc:
	dune build @doc

# Run a small traced experiment and validate the JSONL trace it produces
# (see docs/observability.md for the schema).
trace-smoke:
	dune build bench/main.exe bin/trace_check.exe
	cd /tmp && dune exec --root $(CURDIR) bench/main.exe -- \
	  --trace /tmp/overlay_trace.jsonl e1 > /dev/null
	dune exec bin/trace_check.exe -- /tmp/overlay_trace.jsonl

# The full release gate: build everything, run every test, regenerate
# every experiment table.
check: build test bench

clean:
	dune clean
