# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench micro examples doc clean check trace-smoke fault-smoke workload-smoke sweep-smoke stabilize-smoke chord-smoke social-smoke bench-engine trace-bench-smoke smoke

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe -- all

micro:
	dune exec bench/main.exe -- micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/sampling_anatomy.exe
	dune exec examples/churn_survival.exe
	dune exec examples/dos_defense.exe
	dune exec examples/anonymizer_demo.exe
	dune exec examples/dht_pubsub_demo.exe

doc:
	dune build @doc

# Run a small traced experiment and validate the JSONL trace it produces
# (see docs/observability.md for the schema).
trace-smoke:
	dune build bench/main.exe bin/trace_check.exe
	cd /tmp && dune exec --root $(CURDIR) bench/main.exe -- \
	  --trace /tmp/overlay_trace.jsonl e1 > /dev/null
	dune exec bin/trace_check.exe -- /tmp/overlay_trace.jsonl

# Run a traced churn scenario under the fault model (see
# docs/fault_model.md) and validate the trace.  FAULT_DROP is the
# per-message drop rate; at 0 the plan is inert and the run is fault-free.
FAULT_DROP ?= 0.1
fault-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe
	dune exec bin/overlay_sim.exe -- churn -n 256 --epochs 3 \
	  --faults drop=$(FAULT_DROP),dup=0.01,delay=2,crash=2 --retry 3 \
	  --trace /tmp/overlay_fault_trace.jsonl > /dev/null
	dune exec bin/trace_check.exe -- /tmp/overlay_fault_trace.jsonl

# Run a traced workload (group-kill DoS + message drops + retries) and
# validate the trace (see docs/workloads.md).  WORKLOAD_DROP is the
# per-attempt message drop rate; at 0 the fault plan is inert and the run
# is byte-identical to a fault-free one.
WORKLOAD_DROP ?= 0.05
workload-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe
	dune exec bin/overlay_sim.exe -- workload -n 256 --rounds 30 --clients 32 \
	  --attack group-kill --frac 0.2 --faults drop=$(WORKLOAD_DROP) --retry 3 \
	  --trace /tmp/overlay_workload_trace.jsonl > /dev/null
	dune exec bin/trace_check.exe -- /tmp/overlay_workload_trace.jsonl

# Run a small sweep grid twice through its checkpoint (once fresh, once
# resumed from a truncated file) and check both artifacts are
# byte-identical and the progress trace validates (see docs/sweeps.md).
SWEEP_SPEC ?= sweep=smoke;run=sample;axis:n=64|128;var:c=1.5|2
sweep-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe
	rm -f /tmp/overlay_sweep.jsonl /tmp/overlay_sweep_cut.jsonl
	dune exec bin/overlay_sim.exe -- sweep --spec '$(SWEEP_SPEC)' \
	  --checkpoint /tmp/overlay_sweep.jsonl \
	  --trace /tmp/overlay_sweep_trace.jsonl > /dev/null
	head -n 2 /tmp/overlay_sweep.jsonl > /tmp/overlay_sweep_cut.jsonl
	printf '{"torn' >> /tmp/overlay_sweep_cut.jsonl
	dune exec bin/overlay_sim.exe -- sweep --spec '$(SWEEP_SPEC)' \
	  --checkpoint /tmp/overlay_sweep_cut.jsonl --domains 4 > /dev/null
	cmp /tmp/overlay_sweep.jsonl /tmp/overlay_sweep_cut.jsonl
	dune exec bin/trace_check.exe -- --require progress \
	  /tmp/overlay_sweep_trace.jsonl

# Run a small corrupted-topology repair twice with the same seed, check
# the traces are byte-identical and the converged note was emitted, then
# regenerate the self-stabilization experiments (writes BENCH_e17.json
# and BENCH_e18.json to the repository root; see docs/fault_model.md for
# the corruption spec grammar).
STABILIZE_SPEC ?= class=split,severity=0.5
stabilize-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe bench/main.exe
	dune exec bin/overlay_sim.exe -- stabilize -n 128 \
	  --corruption '$(STABILIZE_SPEC)' \
	  --trace /tmp/overlay_stab_a.jsonl > /dev/null
	dune exec bin/overlay_sim.exe -- stabilize -n 128 \
	  --corruption '$(STABILIZE_SPEC)' \
	  --trace /tmp/overlay_stab_b.jsonl > /dev/null
	cmp /tmp/overlay_stab_a.jsonl /tmp/overlay_stab_b.jsonl
	dune exec bin/trace_check.exe -- --require converged \
	  /tmp/overlay_stab_a.jsonl
	dune exec bin/trace_check.exe -- --require 'repair/*' \
	  /tmp/overlay_stab_a.jsonl
	dune exec bench/main.exe -- e17 e18 > /dev/null

# Run the Chord backend twice with the same seed under churn, faults and
# the stale-view successor-list attack, check the traces are
# byte-identical and the staggered maintenance spans were emitted, then
# regenerate the head-to-head comparison experiment (writes
# BENCH_e19.json to the repository root; see docs/chord.md).
CHORD_SPEC ?= --n 256 --rounds 32 --attack succ-kill --frac 0.2 --churn 0.1 --faults drop=0.02,seed=5 --retry 3
chord-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe bench/main.exe
	dune exec bin/overlay_sim.exe -- chord $(CHORD_SPEC) \
	  --trace /tmp/overlay_chord_a.jsonl > /dev/null
	dune exec bin/overlay_sim.exe -- chord $(CHORD_SPEC) \
	  --trace /tmp/overlay_chord_b.jsonl > /dev/null
	cmp /tmp/overlay_chord_a.jsonl /tmp/overlay_chord_b.jsonl
	dune exec bin/trace_check.exe -- --require chord/maintain \
	  /tmp/overlay_chord_a.jsonl
	dune exec bench/main.exe -- e19 > /dev/null

# Run the Reddit-style social application twice with the same seed —
# sessions, hot-key group-kill and faults all active — check the traces
# are byte-identical and the social/* span family was emitted, then
# regenerate the per-class SLO experiment (writes BENCH_e20.json to the
# repository root; see docs/workloads.md).
SOCIAL_SPEC ?= --n 256 --users 32 --rounds 32 --session 0.85:8 --attack group-kill --frac 0.2 --faults drop=0.02,seed=5
social-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe bench/main.exe
	dune exec bin/overlay_sim.exe -- social $(SOCIAL_SPEC) \
	  --trace /tmp/overlay_social_a.jsonl > /dev/null
	dune exec bin/overlay_sim.exe -- social $(SOCIAL_SPEC) \
	  --trace /tmp/overlay_social_b.jsonl > /dev/null
	cmp /tmp/overlay_social_a.jsonl /tmp/overlay_social_b.jsonl
	dune exec bin/trace_check.exe -- --require 'social/*' \
	  /tmp/overlay_social_a.jsonl
	dune exec bench/main.exe -- e20 > /dev/null

# Engine micro-benchmark: the mailbox A/B (flat buffers vs the seed's
# lists) plus the sharded-engine scaling curve (n up to 10^6, worker
# domains swept over 1/2/4/8 with a cross-domain checksum).  Writes
# BENCH_engine.json to the repository root, then gates on it: the fresh
# n=65536 domains=1 msgs/sec must stay within 80% of the committed
# baseline (bin/bench_gate), so an engine-core regression fails CI
# instead of silently shipping a slower curve.
bench-engine:
	dune build bench/main.exe bin/bench_gate.exe
	cp BENCH_engine.json /tmp/overlay_bench_engine_baseline.json
	dune exec bench/main.exe -- engine
	dune exec bin/bench_gate.exe -- \
	  /tmp/overlay_bench_engine_baseline.json BENCH_engine.json \
	  --n 65536 --domains 1 --min-ratio 0.8

# Binary trace sink end to end: run the same seeded workload through the
# JSONL and binary sinks, check the binary file decodes and its JSONL
# export is byte-identical to the text sink, then run the trace
# micro-benchmark (writes BENCH_trace.json, fails under 5x compression).
trace-bench-smoke:
	dune build bin/overlay_sim.exe bin/trace_check.exe bench/main.exe
	dune exec bin/overlay_sim.exe -- workload -n 256 --rounds 30 --clients 32 \
	  --seed 11 --trace /tmp/overlay_tb.jsonl > /dev/null
	dune exec bin/overlay_sim.exe -- workload -n 256 --rounds 30 --clients 32 \
	  --seed 11 --trace /tmp/overlay_tb.bin > /dev/null
	dune exec bin/trace_check.exe -- --require request \
	  --export-jsonl /tmp/overlay_tb_export.jsonl /tmp/overlay_tb.bin
	cmp /tmp/overlay_tb_export.jsonl /tmp/overlay_tb.jsonl
	dune exec bench/main.exe -- trace

# All the fast health checks in one target: traced-run validation, the
# fault model under churn, the workload driver under attack, sweep
# checkpoint/resume identity, corrupted-topology repair, the Chord
# backend head-to-head, the social application's per-class SLOs, and the
# engine and trace-sink micro-benchmarks.
smoke: trace-smoke fault-smoke workload-smoke sweep-smoke stabilize-smoke chord-smoke social-smoke bench-engine trace-bench-smoke

# The full release gate: build everything, run every test, regenerate
# every experiment table.
check: build test bench

clean:
	dune clean
