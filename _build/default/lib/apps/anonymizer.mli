(** Robust anonymous routing (Section 7.1).

    The servers form the DoS-resistant hypercube network of Section 5.  For
    every server v, its destination group D(v) is the representative group
    of v's own supernode minus v; since the reconfiguration assigns servers
    to supernodes uniformly at random, a message relayed through D(v) exits
    at a server that is uniform with respect to anything an
    Omega(log log n)-late attacker knows.

    A request makes four logical hops (user -> entry server -> D(v) ->
    destination user, and the reply back), so it costs O(1) rounds.  We
    evaluate a request against one blocked-set snapshot: real attacks change
    on the reconfiguration timescale, far slower than a four-round
    request. *)

type t

val create : net:Core.Dos_network.t -> rng:Prng.Stream.t -> t
(** Wraps a DoS network whose nodes act as the servers. *)

type result = {
  delivered : bool;
  exit_server : int option;
      (** one of the relays that forwarded to the destination (None if the
          request died); the adversary-visible "exit point" *)
  exit_group : int option;
  relays_used : int;  (** non-blocked members of D(v) that relayed *)
  rounds : int;  (** logical communication rounds consumed, 4 or fewer *)
}

val request : t -> blocked:bool array -> result
(** One anonymous request from a fresh user: the user contacts a uniformly
    random non-blocked entry server; the request succeeds if at least one
    member of the entry's destination group is non-blocked to relay the
    message out and the reply back. *)

val request_via : t -> blocked:bool array -> entry:int -> result
(** Same with an explicit entry server (which may be blocked — the request
    then fails immediately, rounds = 1). *)
