type t = { net : Core.Dos_network.t; rng : Prng.Stream.t }

type result = {
  delivered : bool;
  exit_server : int option;
  exit_group : int option;
  relays_used : int;
  rounds : int;
}

let create ~net ~rng = { net; rng }

let failed rounds =
  { delivered = false; exit_server = None; exit_group = None; relays_used = 0; rounds }

let request_via t ~blocked ~entry =
  let n = Core.Dos_network.n t.net in
  if Array.length blocked <> n then
    invalid_arg "Anonymizer.request_via: blocked size mismatch";
  if entry < 0 || entry >= n then invalid_arg "Anonymizer.request_via: bad entry";
  if blocked.(entry) then failed 1
  else begin
    let group_of = Core.Dos_network.group_of t.net in
    let x = group_of.(entry) in
    let members = Core.Dos_network.group_members t.net x in
    let relays =
      Array.of_list
        (Array.to_list members
        |> List.filter (fun v -> v <> entry && not blocked.(v)))
    in
    if Array.length relays = 0 then failed 2
    else begin
      (* All non-blocked members of D(v) forward to the destination and
         carry the reply back; the adversary-visible exit point is any one
         of them. *)
      let exit = relays.(Prng.Stream.int t.rng (Array.length relays)) in
      {
        delivered = true;
        exit_server = Some exit;
        exit_group = Some x;
        relays_used = Array.length relays;
        rounds = 4;
      }
    end
  end

let request t ~blocked =
  let n = Core.Dos_network.n t.net in
  (* The user contacts some currently non-blocked server (the paper assumes
     it can); if everything is blocked the request cannot even enter. *)
  let non_blocked = ref 0 in
  Array.iter (fun b -> if not b then incr non_blocked) blocked;
  if !non_blocked = 0 then failed 0
  else begin
    let rec pick () =
      let v = Prng.Stream.int t.rng n in
      if blocked.(v) then pick () else v
    in
    request_via t ~blocked ~entry:(pick ())
  end
