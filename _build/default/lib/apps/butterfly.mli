(** Keyed aggregation over the k-ary hypercube of groups — the
    Ranade-style combining step Section 7.3 uses to count publications:
    "for any set of publications ... first the keys of the publications are
    aggregated to determine the number of publications for each used key
    [in] O(log n / log log n) [rounds] in the k-ary hypercube".

    Every supernode starts with a bag of (key, count) contributions.  The
    aggregation runs d phases, one per cube dimension: in phase i each
    supernode forwards every contribution whose destination differs in
    digit i to the neighbor with that digit corrected, and merges
    contributions to the same key into one (the combining that keeps hot
    keys from melting their destination).  After d phases each contribution
    sits, fully combined, at [dest_of_key key].

    Messages count supernode-to-supernode transfers; in the network each
    costs one group-to-group fan-out, so [max_phase_load] is the per-group
    congestion bound the paper's O(log^3 n) argument needs. *)

type stats = {
  phases : int;  (** = d, the cube dimension *)
  messages : int;  (** contribution transfers summed over all phases *)
  combines : int;  (** merges of same-key contributions (the savings) *)
  max_phase_load : int;
      (** max over (phase, supernode) of contributions received — the
          congestion hot-spot *)
}

val aggregate :
  cube:Topology.Kary_hypercube.t ->
  dest_of_key:(int -> int) ->
  contributions:(int * int) list array ->
  (int, int) Hashtbl.t array * stats
(** [aggregate ~cube ~dest_of_key ~contributions] with [contributions.(x)]
    the (key, count) pairs initially held by supernode [x]; returns per
    supernode the aggregated totals of the keys it owns (tables are empty
    for supernodes that own no contributed key).  Raises [Invalid_argument]
    if the contributions array does not match the cube or a destination is
    out of range. *)

val naive_max_load :
  cube:Topology.Kary_hypercube.t ->
  dest_of_key:(int -> int) ->
  contributions:(int * int) list array ->
  int
(** Congestion of the do-nothing alternative: every contribution routed
    individually, so the owner of a hot key receives one message per
    contribution.  Reported for comparison tables (ablation: combining
    off). *)
