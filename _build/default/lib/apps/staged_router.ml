module Kary = Topology.Kary_hypercube

type stats = {
  stages : int;
  total_messages : int;
  combined : int;
  max_stage_load : int;
  service_rounds : int;
  failed : int;
}

(* A message is one key plus the request ids riding on it. *)
type msg = { key : int; rids : int list }

let combine_at buffers combined x =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun m ->
      match Hashtbl.find_opt tbl m.key with
      | Some existing ->
          Hashtbl.replace tbl m.key { key = m.key; rids = m.rids @ existing.rids };
          incr combined
      | None -> Hashtbl.add tbl m.key m)
    buffers.(x);
  buffers.(x) <- Hashtbl.fold (fun _ m acc -> m :: acc) tbl []

let run ~dht ~blocked ~keys ~combine =
  let cube = Robust_dht.cube dht in
  let supernodes = Kary.node_count cube in
  let d = Kary.d cube in
  let group_of = Robust_dht.group_of dht in
  let buffers = Array.make supernodes [] in
  let results = Array.make (Array.length keys) None in
  let failed = ref 0 in
  let combined = ref 0 in
  (* Entry placement. *)
  Array.iteri
    (fun rid key ->
      match Robust_dht.random_entry dht ~blocked with
      | None -> incr failed
      | Some entry ->
          let x = group_of.(entry) in
          buffers.(x) <- { key; rids = [ rid ] } :: buffers.(x))
    keys;
  if combine then
    for x = 0 to supernodes - 1 do
      combine_at buffers combined x
    done;
  let occupied x =
    Array.exists (fun v -> not blocked.(v)) (Robust_dht.group_members dht x)
  in
  let total_messages = ref 0 and max_stage_load = ref 0 in
  let service_rounds = ref 0 in
  for stage = 0 to d - 1 do
    let incoming = Array.make supernodes [] in
    let loads = Array.make supernodes 0 in
    Array.iteri
      (fun x msgs ->
        let staying = ref [] in
        List.iter
          (fun m ->
            let dest = Robust_dht.supernode_of_key dht m.key in
            let want = Kary.coord cube dest stage in
            if Kary.coord cube x stage = want then staying := m :: !staying
            else begin
              let next = Kary.with_coord cube x stage want in
              if occupied next then begin
                incoming.(next) <- m :: incoming.(next);
                loads.(next) <- loads.(next) + 1;
                incr total_messages
              end
              else failed := !failed + List.length m.rids
            end)
          msgs;
        buffers.(x) <- !staying)
      buffers;
    Array.iteri
      (fun x msgs -> buffers.(x) <- msgs @ buffers.(x))
      incoming;
    if combine then
      for x = 0 to supernodes - 1 do
        combine_at buffers combined x
      done;
    let stage_max = Array.fold_left max 0 loads in
    if stage_max > !max_stage_load then max_stage_load := stage_max;
    service_rounds := !service_rounds + max 1 stage_max
  done;
  (* Delivery: every surviving message sits at its key's owner. *)
  Array.iteri
    (fun x msgs ->
      List.iter
        (fun m ->
          assert (Robust_dht.supernode_of_key dht m.key = x);
          let value = Robust_dht.peek dht m.key in
          List.iter (fun rid -> results.(rid) <- value) m.rids)
        msgs)
    buffers;
  ( results,
    {
      stages = d;
      total_messages = !total_messages;
      combined = !combined;
      max_stage_load = !max_stage_load;
      service_rounds = !service_rounds;
      failed = !failed;
    } )

let read_batch ~dht ~blocked ~keys = run ~dht ~blocked ~keys ~combine:true

let naive_service_rounds ~dht ~keys =
  let blocked = Array.make (Robust_dht.n dht) false in
  let _, stats = run ~dht ~blocked ~keys ~combine:false in
  stats.service_rounds
