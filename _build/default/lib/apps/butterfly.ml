module Kary = Topology.Kary_hypercube

type stats = {
  phases : int;
  messages : int;
  combines : int;
  max_phase_load : int;
}

(* Per-supernode working buffer: key -> accumulated count.  Merging on
   arrival is the combining step. *)
let add_contribution buffers combines x key count =
  let tbl = buffers.(x) in
  match Hashtbl.find_opt tbl key with
  | Some existing ->
      Hashtbl.replace tbl key (existing + count);
      incr combines
  | None -> Hashtbl.add tbl key count

let aggregate ~cube ~dest_of_key ~contributions =
  let supernodes = Kary.node_count cube in
  if Array.length contributions <> supernodes then
    invalid_arg "Butterfly.aggregate: contributions size mismatch";
  let d = Kary.d cube in
  let buffers = Array.init supernodes (fun _ -> Hashtbl.create 8) in
  let combines = ref 0 in
  Array.iteri
    (fun x entries ->
      List.iter
        (fun (key, count) ->
          let dest = dest_of_key key in
          if dest < 0 || dest >= supernodes then
            invalid_arg "Butterfly.aggregate: destination out of range";
          if count <> 0 then add_contribution buffers combines x key count)
        entries)
    contributions;
  let messages = ref 0 and max_phase_load = ref 0 in
  for phase = 0 to d - 1 do
    (* Collect all transfers of this phase first (synchronous round), then
       deliver, so combining happens on arrival exactly once per phase. *)
    let outgoing = Array.init supernodes (fun _ -> []) in
    Array.iteri
      (fun x tbl ->
        let moving = ref [] in
        Hashtbl.iter
          (fun key count ->
            let dest = dest_of_key key in
            let want = Kary.coord cube dest phase in
            if Kary.coord cube x phase <> want then
              moving := (key, count, Kary.with_coord cube x phase want) :: !moving)
          tbl;
        List.iter
          (fun (key, count, next) ->
            Hashtbl.remove tbl key;
            outgoing.(next) <- (key, count) :: outgoing.(next))
          !moving)
      buffers;
    let loads = Array.make supernodes 0 in
    Array.iteri
      (fun x entries ->
        List.iter
          (fun (key, count) ->
            incr messages;
            loads.(x) <- loads.(x) + 1;
            add_contribution buffers combines x key count)
          entries)
      outgoing;
    Array.iter (fun l -> if l > !max_phase_load then max_phase_load := l) loads
  done;
  (* Invariant: everything now sits at its destination. *)
  Array.iteri
    (fun x tbl ->
      Hashtbl.iter
        (fun key _ ->
          if dest_of_key key <> x then
            invalid_arg "Butterfly.aggregate: routing invariant violated")
        tbl)
    buffers;
  ( buffers,
    {
      phases = d;
      messages = !messages;
      combines = !combines;
      max_phase_load = !max_phase_load;
    } )

let naive_max_load ~cube ~dest_of_key ~contributions =
  let supernodes = Kary.node_count cube in
  let loads = Array.make supernodes 0 in
  Array.iteri
    (fun x entries ->
      List.iter
        (fun (key, count) ->
          if count <> 0 then begin
            let dest = dest_of_key key in
            (* a contribution already at its destination is not a message *)
            if dest <> x then loads.(dest) <- loads.(dest) + 1
          end)
        entries)
    contributions;
  Array.fold_left max 0 loads
