lib/apps/butterfly.ml: Array Hashtbl List Topology
