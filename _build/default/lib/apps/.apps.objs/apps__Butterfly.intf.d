lib/apps/butterfly.mli: Hashtbl Topology
