lib/apps/robust_dht.mli: Prng Topology
