lib/apps/robust_dht.ml: Array Core Float Hashtbl Int64 List Prng Topology
