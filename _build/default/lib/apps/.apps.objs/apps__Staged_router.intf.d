lib/apps/staged_router.mli: Robust_dht
