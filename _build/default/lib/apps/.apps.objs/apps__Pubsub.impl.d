lib/apps/pubsub.ml: Array Butterfly Hashtbl List Option Robust_dht Staged_router
