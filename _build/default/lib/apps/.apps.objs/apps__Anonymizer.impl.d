lib/apps/anonymizer.ml: Array Core List Prng
