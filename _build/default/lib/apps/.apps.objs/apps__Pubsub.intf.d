lib/apps/pubsub.mli: Butterfly Robust_dht Staged_router
