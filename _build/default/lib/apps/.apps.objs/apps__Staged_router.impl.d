lib/apps/staged_router.ml: Array Hashtbl List Robust_dht Topology
