lib/apps/anonymizer.mli: Core Prng
