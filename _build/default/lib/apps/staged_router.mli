(** Lockstep batch routing over the k-ary hypercube of groups — the
    butterfly emulation Section 7.2 needs "for the routing of messages",
    with Ranade-style read combining.

    A batch of read requests is routed in d synchronized stages, stage i
    correcting coordinate i (the fixed dimension order is what makes the
    unrolled communication pattern a d-dimensional k-ary butterfly).  When
    two requests for the same key meet at a supernode they merge into one
    message and fan back out on the reply path, so a key requested by
    everyone loads its owner with at most (k-1) d messages instead of one
    per requester.

    [service_rounds] is the store-and-forward completion time under the
    one-message-per-group-per-round discipline: the sum over stages of the
    busiest group's queue — the quantity Theorem 8's O(log^3 n) bound is
    about. *)

type stats = {
  stages : int;  (** = d *)
  total_messages : int;  (** stage transfers after combining *)
  combined : int;  (** request merges *)
  max_stage_load : int;  (** max messages one group handles in one stage *)
  service_rounds : int;  (** sum over stages of the max group load *)
  failed : int;  (** requests that hit a starved group *)
}

val read_batch :
  dht:Robust_dht.t ->
  blocked:bool array ->
  keys:int array ->
  string option array * stats
(** [read_batch ~dht ~blocked ~keys] serves one read per entry of [keys],
    each entering at a uniformly random non-blocked server.  Result [i] is
    the value stored under [keys.(i)] ([None] for absent keys or failed
    requests — inspect [stats.failed] to distinguish). *)

val naive_service_rounds :
  dht:Robust_dht.t -> keys:int array -> int
(** Completion time of the same batch without combining (every request an
    independent message): sum over stages of the busiest group's queue.
    For comparison tables. *)
