(** Distances between probability distributions, used to quantify how close
    the sampling primitives come to the uniform distribution (Lemma 2 /
    Theorem 3 of the paper). *)

val total_variation : float array -> float array -> float
(** [total_variation p q] = (1/2) sum_i |p_i - q_i|.  Arrays must have equal
    length. *)

val tv_from_uniform : float array -> float
(** Total variation distance from the uniform distribution over the same
    support size. *)

val tv_counts_uniform : int array -> float
(** Same, starting from raw counts (normalized internally).  Returns 0 for an
    all-zero array. *)

val l2 : float array -> float array -> float
(** Euclidean distance between distributions. *)

val kl_divergence : float array -> float array -> float
(** [kl_divergence p q] = sum p_i log2 (p_i / q_i), with 0 log 0 = 0.
    Infinite if p puts mass where q does not. *)

val expected_tv_noise_floor : samples:int -> cells:int -> float
(** Expected total-variation distance between the *empirical* distribution of
    [samples] i.i.d. uniform draws over [cells] values and the true uniform
    distribution: approximately sqrt(cells / (2 pi samples)).  Used to judge
    whether a measured TV is at the statistical noise floor. *)
