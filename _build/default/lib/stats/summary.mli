(** Named-metric accumulation: a small registry of {!Moments} keyed by
    string, so experiment drivers can record many metrics without plumbing
    accumulators everywhere. *)

type t

val create : unit -> t
val observe : t -> string -> float -> unit
val observe_int : t -> string -> int -> unit
val get : t -> string -> Moments.t option
val mean : t -> string -> float
(** Mean of a metric; 0 if never observed. *)

val max : t -> string -> float
(** Max of a metric; [neg_infinity] if never observed. *)

val names : t -> string list
(** Sorted metric names. *)

val pp : Format.formatter -> t -> unit
(** One line per metric: name, count, mean, stddev, min, max. *)
