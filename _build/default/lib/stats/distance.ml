let check_same_length p q name =
  if Array.length p <> Array.length q then
    invalid_arg (name ^ ": length mismatch")

let total_variation p q =
  check_same_length p q "Distance.total_variation";
  let acc = ref 0.0 in
  for i = 0 to Array.length p - 1 do
    acc := !acc +. abs_float (p.(i) -. q.(i))
  done;
  0.5 *. !acc

let tv_from_uniform p =
  let n = Array.length p in
  if n = 0 then invalid_arg "Distance.tv_from_uniform: empty";
  let u = 1.0 /. float_of_int n in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. abs_float (p.(i) -. u)
  done;
  0.5 *. !acc

let tv_counts_uniform counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else
    let tf = float_of_int total in
    tv_from_uniform (Array.map (fun c -> float_of_int c /. tf) counts)

let l2 p q =
  check_same_length p q "Distance.l2";
  let acc = ref 0.0 in
  for i = 0 to Array.length p - 1 do
    let d = p.(i) -. q.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let kl_divergence p q =
  check_same_length p q "Distance.kl_divergence";
  let acc = ref 0.0 in
  for i = 0 to Array.length p - 1 do
    if p.(i) > 0.0 then
      if q.(i) <= 0.0 then acc := infinity
      else acc := !acc +. (p.(i) *. (Float.log (p.(i) /. q.(i)) /. Float.log 2.0))
  done;
  !acc

let expected_tv_noise_floor ~samples ~cells =
  (* For k samples over m uniform cells, E|emp_i - 1/m| ~ sqrt(2/(pi k m)) per
     cell (normal approximation), so TV ~ (m/2) sqrt(2/(pi k m))
     = sqrt(m / (2 pi k)). *)
  sqrt (float_of_int cells /. (2.0 *. Float.pi *. float_of_int samples))
