let log2 x = Float.log x /. Float.log 2.0

let of_probabilities p =
  let acc = ref 0.0 in
  Array.iter (fun pi -> if pi > 0.0 then acc := !acc -. (pi *. log2 pi)) p;
  !acc

let of_counts counts =
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else
    let tf = float_of_int total in
    of_probabilities (Array.map (fun c -> float_of_int c /. tf) counts)

let max_entropy n =
  if n <= 0 then invalid_arg "Entropy.max_entropy: n <= 0";
  log2 (float_of_int n)

let normalized_of_counts counts =
  let n = Array.length counts in
  if n <= 1 then 1.0
  else of_counts counts /. max_entropy n
