(** Least-squares fits used to classify empirical growth rates.  The paper's
    headline claim is that rapid sampling runs in Theta(log log n) rounds
    where plain walks need Theta(log n); we decide which model fits a
    measured (n, rounds) series better. *)

type line = { slope : float; intercept : float; r2 : float }

val linear : (float * float) array -> line
(** Ordinary least squares y = a x + b.  Requires >= 2 points with
    non-constant x. *)

val against_log : (float * float) array -> line
(** Fit y against log2 x. *)

val against_loglog : (float * float) array -> line
(** Fit y against log2 log2 x (requires x > 2). *)

type growth = Constant | Log_log | Log | Polynomial

val classify_growth : (float * float) array -> growth
(** Heuristic: picks the model with the best R^2 among constant / loglog /
    log / linear fits of y vs transformed x.  Input x values must be > 2 and
    increasing. *)

val growth_to_string : growth -> string
