(* Regularized incomplete gamma via series / continued fraction; standard
   Numerical-Recipes-style implementation, accurate to ~1e-12 for the df
   ranges used here. *)

let max_iter = 1000
let eps = 3e-14
let fpmin = 1e-300

let gamma_ln x =
  (* Lanczos approximation. *)
  let cof =
    [| 76.18009172947146; -86.50532032941677; 24.01409824083091;
       -1.231739572450155; 0.1208650973866179e-2; -0.5395239384953e-5 |]
  in
  let y = ref x in
  let tmp = x +. 5.5 in
  let tmp = tmp -. ((x +. 0.5) *. log tmp) in
  let ser = ref 1.000000000190015 in
  for j = 0 to 5 do
    y := !y +. 1.0;
    ser := !ser +. (cof.(j) /. !y)
  done;
  -.tmp +. log (2.5066282746310005 *. !ser /. x)

let gser ~a ~x =
  (* Series representation, good for x < a + 1. *)
  let ap = ref a in
  let sum = ref (1.0 /. a) in
  let del = ref !sum in
  let continue = ref true in
  let iter = ref 0 in
  while !continue && !iter < max_iter do
    incr iter;
    ap := !ap +. 1.0;
    del := !del *. x /. !ap;
    sum := !sum +. !del;
    if abs_float !del < abs_float !sum *. eps then continue := false
  done;
  !sum *. exp ((-.x) +. (a *. log x) -. gamma_ln a)

let gcf ~a ~x =
  (* Continued fraction for Q(a,x), good for x >= a + 1. *)
  let b = ref (x +. 1.0 -. a) in
  let c = ref (1.0 /. fpmin) in
  let d = ref (1.0 /. !b) in
  let h = ref !d in
  let i = ref 1 in
  let continue = ref true in
  while !continue && !i < max_iter do
    let an = -.float_of_int !i *. (float_of_int !i -. a) in
    b := !b +. 2.0;
    d := (an *. !d) +. !b;
    if abs_float !d < fpmin then d := fpmin;
    c := !b +. (an /. !c);
    if abs_float !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if abs_float (del -. 1.0) < eps then continue := false;
    incr i
  done;
  exp ((-.x) +. (a *. log x) -. gamma_ln a) *. !h

let gammp ~a ~x =
  if x < 0.0 || a <= 0.0 then invalid_arg "Chi_square.gammp";
  if x = 0.0 then 0.0
  else if x < a +. 1.0 then gser ~a ~x
  else 1.0 -. gcf ~a ~x

let cdf ~df x =
  if df <= 0 then invalid_arg "Chi_square.cdf: df <= 0";
  if x <= 0.0 then 0.0 else gammp ~a:(float_of_int df /. 2.0) ~x:(x /. 2.0)

let p_value ~df stat = 1.0 -. cdf ~df stat

let statistic ~observed ~expected =
  if Array.length observed <> Array.length expected then
    invalid_arg "Chi_square.statistic: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to Array.length observed - 1 do
    let o = float_of_int observed.(i) and e = expected.(i) in
    if e > 0.0 then begin
      let d = o -. e in
      acc := !acc +. (d *. d /. e)
    end
    else if o > 0.0 then acc := infinity
  done;
  !acc

let statistic_uniform observed =
  let cells = Array.length observed in
  if cells = 0 then invalid_arg "Chi_square.statistic_uniform: empty";
  let total = Array.fold_left ( + ) 0 observed in
  let e = float_of_int total /. float_of_int cells in
  statistic ~observed ~expected:(Array.make cells e)

let test_uniform observed =
  let cells = Array.length observed in
  if cells < 2 then invalid_arg "Chi_square.test_uniform: need >= 2 cells";
  p_value ~df:(cells - 1) (statistic_uniform observed)
