type t = {
  title : string;
  columns : string array;
  mutable rows : string array list; (* reversed *)
  mutable notes : string list; (* reversed *)
}

let create ~title ~columns =
  { title; columns = Array.of_list columns; rows = []; notes = [] }

let add_row t cells =
  let n = Array.length t.columns in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than columns";
  let row = Array.make n "" in
  List.iteri (fun i c -> row.(i) <- c) cells;
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let note t s = t.notes <- s :: t.notes

let pp fmt t =
  let rows = List.rev t.rows in
  let ncols = Array.length t.columns in
  let widths = Array.map String.length t.columns in
  List.iter
    (fun row ->
      Array.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    rows;
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let rule () =
    for i = 0 to ncols - 1 do
      Format.fprintf fmt "+%s" (String.make (widths.(i) + 2) '-')
    done;
    Format.fprintf fmt "+@."
  in
  let print_cells cells =
    Array.iteri
      (fun i c -> Format.fprintf fmt "| %s " (pad c widths.(i)))
      cells;
    Format.fprintf fmt "|@."
  in
  Format.fprintf fmt "@.== %s ==@." t.title;
  rule ();
  print_cells t.columns;
  rule ();
  List.iter print_cells rows;
  rule ();
  List.iter (fun n -> Format.fprintf fmt "  note: %s@." n) (List.rev t.notes)

let print t = pp Format.std_formatter t

let cell_int = string_of_int
let cell_float ?(decimals = 3) x = Printf.sprintf "%.*f" decimals x
let cell_bool b = if b then "yes" else "no"
let cell_pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
