(** Shannon entropy of empirical distributions, used for the anonymity
    metric of the anonymizer application (Section 7.1): the exit-node
    distribution of an anonymous routing scheme should have entropy close to
    log2 of the support size. *)

val of_probabilities : float array -> float
(** Entropy in bits, with 0 log 0 = 0. *)

val of_counts : int array -> float
(** Entropy of the normalized counts; 0 for an all-zero array. *)

val max_entropy : int -> float
(** [max_entropy n] = log2 n, the entropy of the uniform distribution over
    [n] outcomes. *)

val normalized_of_counts : int array -> float
(** Entropy divided by the maximum achievable over the same support; in
    [0, 1], where 1 means perfectly uniform. *)
