(** Pearson chi-square goodness-of-fit test, used to test the uniformity
    claims of the sampling primitives (Theorem 3) and of cycle
    reconfiguration (Lemma 10). *)

val statistic : observed:int array -> expected:float array -> float
(** Pearson X^2 = sum (O_i - E_i)^2 / E_i.  Cells with expected count 0 and
    observed count 0 are skipped; expected 0 with observed > 0 yields
    [infinity]. *)

val statistic_uniform : int array -> float
(** X^2 against the uniform distribution with the same total count. *)

val cdf : df:int -> float -> float
(** [cdf ~df x] is P(X <= x) for a chi-square distribution with [df] degrees
    of freedom, computed via the regularized lower incomplete gamma
    function. *)

val p_value : df:int -> float -> float
(** Upper-tail p-value: P(X >= statistic). *)

val test_uniform : int array -> float
(** [test_uniform counts] is the p-value of the hypothesis that [counts] are
    draws from the uniform distribution over the cells (df = cells - 1).
    Small p-values (< 0.01) reject uniformity. *)

val gammp : a:float -> x:float -> float
(** Regularized lower incomplete gamma P(a, x); exposed for testing. *)
