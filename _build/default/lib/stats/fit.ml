type line = { slope : float; intercept : float; r2 : float }

let log2 x = Float.log x /. Float.log 2.0

let linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Fit.linear: need >= 2 points";
  let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and sxy = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      sxy := !sxy +. (x *. y))
    points;
  let nf = float_of_int n in
  let denom = (nf *. !sxx) -. (!sx *. !sx) in
  if abs_float denom < 1e-12 then invalid_arg "Fit.linear: constant x";
  let slope = ((nf *. !sxy) -. (!sx *. !sy)) /. denom in
  let intercept = (!sy -. (slope *. !sx)) /. nf in
  let mean_y = !sy /. nf in
  let ss_tot = ref 0.0 and ss_res = ref 0.0 in
  Array.iter
    (fun (x, y) ->
      let pred = (slope *. x) +. intercept in
      ss_tot := !ss_tot +. ((y -. mean_y) ** 2.0);
      ss_res := !ss_res +. ((y -. pred) ** 2.0))
    points;
  let r2 = if !ss_tot < 1e-12 then 1.0 else 1.0 -. (!ss_res /. !ss_tot) in
  { slope; intercept; r2 }

let transform f points = Array.map (fun (x, y) -> (f x, y)) points

let against_log points = linear (transform log2 points)
let against_loglog points = linear (transform (fun x -> log2 (log2 x)) points)

type growth = Constant | Log_log | Log | Polynomial

let growth_to_string = function
  | Constant -> "O(1)"
  | Log_log -> "O(log log n)"
  | Log -> "O(log n)"
  | Polynomial -> "poly(n)"

let classify_growth points =
  if Array.length points < 3 then
    invalid_arg "Fit.classify_growth: need >= 3 points";
  Array.iter
    (fun (x, _) ->
      if x <= 2.0 then invalid_arg "Fit.classify_growth: x must be > 2")
    points;
  let ys = Array.map snd points in
  let y_lo = Array.fold_left Float.min infinity ys in
  let y_hi = Array.fold_left Float.max neg_infinity ys in
  (* Nearly flat series: constant. *)
  if y_hi -. y_lo <= 0.05 *. Float.max 1.0 (abs_float y_hi) then Constant
  else begin
    (* Compare explanatory power of the three transforms.  A model only
       counts if its slope is meaningfully positive. *)
    let candidates =
      [
        (Log_log, against_loglog points);
        (Log, against_log points);
        (Polynomial, linear points);
      ]
    in
    let valid = List.filter (fun (_, l) -> l.slope > 0.0) candidates in
    match valid with
    | [] -> Constant
    | _ ->
        let best =
          List.fold_left
            (fun (bg, bl) (g, l) -> if l.r2 > bl.r2 then (g, l) else (bg, bl))
            (List.hd valid) (List.tl valid)
        in
        fst best
  end
