lib/stats/entropy.mli:
