lib/stats/fit.mli:
