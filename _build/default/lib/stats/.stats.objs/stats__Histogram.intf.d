lib/stats/histogram.mli:
