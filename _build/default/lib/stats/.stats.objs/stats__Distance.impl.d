lib/stats/distance.ml: Array Float
