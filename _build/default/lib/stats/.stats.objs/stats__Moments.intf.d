lib/stats/moments.mli:
