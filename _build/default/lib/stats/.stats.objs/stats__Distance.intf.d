lib/stats/distance.mli:
