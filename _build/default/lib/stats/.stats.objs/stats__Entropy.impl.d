lib/stats/entropy.ml: Array Float
