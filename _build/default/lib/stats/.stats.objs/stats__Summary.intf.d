lib/stats/summary.mli: Format Moments
