lib/stats/summary.ml: Format Hashtbl List Moments String
