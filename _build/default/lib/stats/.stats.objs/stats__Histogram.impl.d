lib/stats/histogram.ml: Array Stdlib
