(** Plain-text table rendering for the benchmark harness: every experiment
    prints its results as one of these tables. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Rows may be added with fewer cells than columns; missing cells render
    empty.  Extra cells raise [Invalid_argument]. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells, convenient for numeric rows:
    [add_rowf t "%d|%.2f|%s" n x label]. *)

val note : t -> string -> unit
(** Attach a free-form footnote printed under the table. *)

val pp : Format.formatter -> t -> unit
val print : t -> unit
(** [pp]/[print] render the title, an aligned grid, and the notes. *)

val cell_int : int -> string
val cell_float : ?decimals:int -> float -> string
val cell_bool : bool -> string
val cell_pct : float -> string
(** Formatting helpers for uniform numeric cells; [cell_pct 0.5] is
    ["50.0%"]. *)
