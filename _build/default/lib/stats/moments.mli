(** Online (streaming) first and second moments using Welford's algorithm,
    numerically stable for long runs. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Feed one observation. *)

val add_int : t -> int -> unit

val count : t -> int
val mean : t -> float
(** Mean of the observations so far; 0 if none. *)

val variance : t -> float
(** Unbiased sample variance; 0 with fewer than two observations. *)

val stddev : t -> float
val min : t -> float
(** Smallest observation; [infinity] if none. *)

val max : t -> float
(** Largest observation; [neg_infinity] if none. *)

val total : t -> float
(** Sum of observations. *)

val merge : t -> t -> t
(** Combine two accumulators as if all observations were fed to one. *)
