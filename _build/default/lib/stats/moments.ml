type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity; sum = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x;
  t.sum <- t.sum +. x

let add_int t x = add t (float_of_int x)

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi
let total t = t.sum

let merge a b =
  if a.n = 0 then
    { n = b.n; mean = b.mean; m2 = b.m2; lo = b.lo; hi = b.hi; sum = b.sum }
  else if b.n = 0 then
    { n = a.n; mean = a.mean; m2 = a.m2; lo = a.lo; hi = a.hi; sum = a.sum }
  else begin
    let n = a.n + b.n in
    let delta = b.mean -. a.mean in
    let nf = float_of_int n in
    let mean = a.mean +. (delta *. float_of_int b.n /. nf) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. nf)
    in
    {
      n;
      mean;
      m2;
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
      sum = a.sum +. b.sum;
    }
  end
