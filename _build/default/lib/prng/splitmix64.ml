type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let mix x =
  let x = Int64.(mul (logxor x (shift_right_logical x 30)) 0xBF58476D1CE4E5B9L) in
  let x = Int64.(mul (logxor x (shift_right_logical x 27)) 0x94D049BB133111EBL) in
  Int64.(logxor x (shift_right_logical x 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state
