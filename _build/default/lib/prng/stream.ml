type t = {
  gen : Xoshiro256.t;
  (* Source of child seeds; kept separate from [gen] so that drawing random
     values and splitting never interleave state. *)
  splitter : Splitmix64.t;
}

let default_seed = 0x5EED_0CA1_2016_DA7AL

let of_seed seed =
  {
    gen = Xoshiro256.of_seed seed;
    splitter = Splitmix64.create (Splitmix64.mix (Int64.lognot seed));
  }

let create ?(seed = default_seed) () = of_seed seed

let split t = of_seed (Splitmix64.next t.splitter)

let split_n t k = Array.init k (fun _ -> split t)

let bits64 t = Xoshiro256.next t.gen

(* Lemire-style bounded sampling with rejection: exactly uniform. *)
let int t bound =
  if bound <= 0 then invalid_arg "Stream.int: bound <= 0";
  let b = Int64.of_int bound in
  (* Draw 63 nonnegative bits and reject the final partial block. *)
  let rec go () =
    let r = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem r b in
    (* Reject if r falls in the final incomplete block of size (2^63 mod b). *)
    if Int64.sub r v > Int64.sub Int64.max_int (Int64.sub b 1L) then go ()
    else Int64.to_int v
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Stream.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits mapped to [0,1), scaled. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r *. 0x1p-53)

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t 1.0 < p

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle_in_place t a;
  a

let sample_distinct t n ~k =
  if k < 0 || k > n then invalid_arg "Stream.sample_distinct";
  if 3 * k >= n then begin
    (* Dense case: partial Fisher–Yates. *)
    let a = Array.init n (fun i -> i) in
    for i = 0 to k - 1 do
      let j = int_in t i (n - 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: rejection into a hash table. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let choose t a =
  if Array.length a = 0 then invalid_arg "Stream.choose: empty array";
  a.(int t (Array.length a))
