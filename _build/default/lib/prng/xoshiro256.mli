(** xoshiro256**: the main PRNG engine.  Fast, 256 bits of state, passes
    BigCrush; period 2^256 - 1.  Reference: Blackman & Vigna, "Scrambled
    linear pseudorandom number generators", ACM TOMS 2021. *)

type t
(** Mutable generator state. *)

val of_seed : int64 -> t
(** [of_seed s] expands the 64-bit seed [s] into a full 256-bit state using
    SplitMix64, as recommended by the xoshiro authors. *)

val of_state : int64 -> int64 -> int64 -> int64 -> t
(** [of_state a b c d] builds a generator from an explicit state.  At least
    one word must be non-zero. Raises [Invalid_argument] otherwise. *)

val copy : t -> t
(** Independent deep copy: the copy and the original produce the same
    subsequent stream but do not share state. *)

val next : t -> int64
(** Next 64 random bits. *)

val jump : t -> unit
(** [jump t] advances [t] by 2^128 steps.  Starting from a shared state and
    jumping k times yields 2^128-spaced, effectively independent streams. *)
