(** SplitMix64: a tiny, fast 64-bit PRNG used here exclusively to expand a
    user seed into the larger state of {!Xoshiro256} and to derive
    statistically independent child seeds.  Reference: Steele, Lea, Flood,
    "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] initializes a generator from an arbitrary 64-bit seed. *)

val next : t -> int64
(** [next t] advances the state and returns the next 64-bit output. *)

val mix : int64 -> int64
(** [mix x] is the stateless finalizer: a bijective avalanche function on
    64-bit values.  Useful for hashing small integers into seeds. *)
