let geometric s p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p out of (0,1]";
  if p = 1. then 0
  else
    (* Inversion: floor(log(U) / log(1-p)) with U uniform on (0,1). *)
    let u = 1.0 -. Stream.float s 1.0 in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let binomial s ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n < 0";
  if p <= 0. then 0
  else if p >= 1. then n
  else begin
    let count = ref 0 in
    for _ = 1 to n do
      if Stream.bernoulli s p then incr count
    done;
    !count
  end

let poisson s lambda =
  if lambda < 0. then invalid_arg "Dist.poisson: lambda < 0";
  let l = exp (-.lambda) in
  let rec go k p =
    let p = p *. (1.0 -. Stream.float s 1.0) in
    if p <= l then k else go (k + 1) p
  in
  go 0 1.0

(* The weight-table cache is shared; guard it for use from multiple
   domains (the experiment harness runs independent cells in parallel). *)
let zipf_cache : (int * float, float array) Hashtbl.t = Hashtbl.create 8
let zipf_mutex = Mutex.create ()

let zipf st ~n ~s =
  if n <= 0 then invalid_arg "Dist.zipf: n <= 0";
  (* Binary search over cumulative weights, cached per (n, s) so repeated
     draws cost O(log n) each. *)
  let table =
    let key = (n, s) in
    Mutex.lock zipf_mutex;
    let t =
      match Hashtbl.find_opt zipf_cache key with
      | Some t -> t
      | None ->
          let cum = Array.make n 0.0 in
          let acc = ref 0.0 in
          for i = 0 to n - 1 do
            acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
            cum.(i) <- !acc
          done;
          Hashtbl.add zipf_cache key cum;
          cum
    in
    Mutex.unlock zipf_mutex;
    t
  in
  let total = table.(n - 1) in
  let u = Stream.float st total in
  (* Smallest index with cum.(i) > u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if table.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo + 1

let categorical s w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0. then invalid_arg "Dist.categorical: non-positive total";
  let u = Stream.float s total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if u < acc then i else go (i + 1) acc
  in
  go 0 0.0
