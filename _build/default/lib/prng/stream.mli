(** Deterministic random streams.

    A {!t} is a mutable source of randomness.  Streams are cheap to create
    and can be {!split} into statistically independent children, which is how
    every simulated node, adversary, and experiment trial gets its own
    reproducible randomness: the whole repository never touches the global
    [Random] state. *)

type t

val create : ?seed:int64 -> unit -> t
(** Fresh root stream.  Default seed is a fixed constant so that runs are
    reproducible unless the caller opts out. *)

val of_seed : int64 -> t
(** Root stream from an explicit seed. *)

val split : t -> t
(** [split t] derives a child stream.  The child's future output is
    independent of the parent's (they are keyed by distinct SplitMix64
    outputs), and splitting advances the parent so successive splits give
    distinct children. *)

val split_n : t -> int -> t array
(** [split_n t k] derives [k] children at once. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform on [0, bound).  Raises [Invalid_argument] if
    [bound <= 0].  Uses rejection sampling, so the result is exactly
    uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform on the inclusive range [lo, hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform on [0, bound). *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle_in_place : t -> 'a array -> unit
(** Uniform Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)

val sample_distinct : t -> int -> k:int -> int array
(** [sample_distinct t n ~k] draws [k] distinct values uniformly from
    [0, n).  Raises [Invalid_argument] if [k > n] or [k < 0]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  Raises [Invalid_argument] on an
    empty array. *)
