lib/prng/dist.mli: Stream
