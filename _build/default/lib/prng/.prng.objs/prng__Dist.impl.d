lib/prng/dist.ml: Array Float Hashtbl Mutex Stream
