lib/prng/stream.mli:
