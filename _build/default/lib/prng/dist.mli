(** Non-uniform distributions on top of {!Stream}, used by workload
    generators (churn schedules, request traces). *)

val geometric : Stream.t -> float -> int
(** [geometric s p] is the number of failures before the first success of a
    Bernoulli(p) sequence; support [0, 1, 2, ...].  Requires [0 < p <= 1]. *)

val binomial : Stream.t -> n:int -> p:float -> int
(** [binomial s ~n ~p] draws from Bin(n, p) by inversion for small means and
    by summing Bernoulli trials otherwise.  Exact distribution. *)

val poisson : Stream.t -> float -> int
(** [poisson s lambda] draws from Poisson(lambda) (Knuth's method; intended
    for moderate lambda). *)

val zipf : Stream.t -> n:int -> s:float -> int
(** [zipf st ~n ~s] draws a rank in [1, n] with probability proportional to
    [1 / rank^s]; used for skewed key popularity in DHT workloads. *)

val categorical : Stream.t -> float array -> int
(** [categorical s w] draws index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with a positive sum. *)
