let log2f x = Float.log x /. Float.log 2.0

let log2i_ceil n =
  if n < 1 then invalid_arg "Params.log2i_ceil: n < 1";
  let rec go bits cap = if cap >= n then bits else go (bits + 1) (cap * 2) in
  go 0 1

let walk_length ~alpha ~d ~n =
  if d < 5 then invalid_arg "Params.walk_length: d < 5";
  if n < 2 then invalid_arg "Params.walk_length: n < 2";
  if alpha <= 0.0 then invalid_arg "Params.walk_length: alpha <= 0";
  let base = float_of_int d /. 4.0 in
  let len = 2.0 *. alpha *. (log2f (float_of_int n) /. log2f base) in
  max 1 (int_of_float (Float.ceil len))

let iterations_hgraph ~alpha ~d ~n = log2i_ceil (walk_length ~alpha ~d ~n)

let check_eps eps =
  if eps <= 0.0 || eps > 1.0 then invalid_arg "Params: eps must be in (0, 1]"

let schedule growth ~c ~n ~iters =
  if c <= 0.0 then invalid_arg "Params.schedule: c <= 0";
  if iters < 0 then invalid_arg "Params.schedule: negative iterations";
  let logn = Float.max 1.0 (log2f (float_of_int n)) in
  Array.init (iters + 1) (fun i ->
      let m = (growth ** float_of_int (iters - i)) *. c *. logn in
      max 1 (int_of_float (Float.ceil m)))

let schedule_hgraph ~eps ~c ~n ~t =
  check_eps eps;
  schedule (2.0 +. eps) ~c ~n ~iters:t

let iterations_hypercube ~d =
  if d < 1 then invalid_arg "Params.iterations_hypercube: d < 1";
  log2i_ceil d

let schedule_hypercube ~eps ~c ~n ~iters =
  check_eps eps;
  schedule (1.0 +. eps) ~c ~n ~iters

let dos_dimension ~c ~n =
  if c <= 0.0 then invalid_arg "Params.dos_dimension: c <= 0";
  if n < 2 then invalid_arg "Params.dos_dimension: n < 2";
  let target = float_of_int n /. (c *. Float.max 1.0 (log2f (float_of_int n))) in
  let rec go d = if float_of_int (1 lsl (d + 1)) <= target then go (d + 1) else d in
  max 1 (go 0)

let loglog_estimate ~n =
  if n < 2 then invalid_arg "Params.loglog_estimate: n < 2";
  log2i_ceil (max 2 (log2i_ceil n))
