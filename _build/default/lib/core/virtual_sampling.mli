(** The Section 6 weighted sampling primitive as a {!Group_sim} protocol.

    {!Rapid_weighted} realizes the 2^(-d(x)) weights by running Algorithm 2
    on the virtual full cube that the variable-dimension supernodes (the
    {!Split_merge} leaves) cover.  This module makes that executable at
    message level: each leaf's group simulates {e all} of the leaf's
    virtual labels at once — the protocol state is the vector of
    per-virtual-label Algorithm-2 states, and inter-leaf messages carry
    their virtual source and destination so the wrapper can demultiplex.
    Lemma 18 bounds the dimension spread by 2, so a group simulates at most
    4 virtual labels: constant overhead, exactly as in the abstract
    realization. *)

type state
type msg

val protocol :
  ?eps:float ->
  ?c:float ->
  tree:'a Split_merge.t ->
  unit ->
  (state, msg) Group_sim.protocol
(** The leaf/supernode indices used by {!Group_sim} are the dense indices
    of [Split_merge.leaves tree] (sorted by (dim, bits)); the tree must
    cover the namespace.  Raises [Invalid_argument] otherwise. *)

val samples : state -> int array
(** Dense leaf indices sampled by this leaf, pooled over all of its virtual
    labels; each entry is distributed with probability 2^(-d(leaf)).  Call
    on a final state. *)

val underflows : state -> int
