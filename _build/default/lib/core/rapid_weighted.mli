(** The weighted sampling primitive of Section 6: "we modify the rapid node
    sampling primitive for hypercubes such that each supernode x is chosen
    with probability 2^(-d(x))".

    Realization: let D be the maximum dimension among the current supernodes
    (the leaves of the {!Split_merge} tree).  The leaves partition the full
    D-dimensional hypercube — a leaf of dimension d(x) covers
    2^(D - d(x)) virtual labels (at most 4, since Lemma 18 keeps the
    dimension spread <= 2).  Run Algorithm 2 on that virtual cube, with
    each leaf simulating all of its virtual labels; a uniform virtual label
    maps to its covering leaf with probability exactly 2^(-d(x)).  This is
    a constant-factor overhead over the fixed-dimension primitive and needs
    no new machinery. *)

type result = {
  leaves : Split_merge.label array;
      (** the dense leaf index used by [pools]; sorted by (dim, bits) *)
  pools : int array array;
      (** [pools.(i)] = dense leaf indices sampled by leaf [i], each drawn
          independently with the 2^(-d) weights, in uniformly random
          order *)
  virtual_dim : int;  (** D *)
  rounds : int;  (** communication rounds of the underlying primitive *)
  underflows : int;
}

val run :
  ?eps:float ->
  ?c:float ->
  rng:Prng.Stream.t ->
  'a Split_merge.t ->
  result
(** Defaults [eps = 0.5], [c = 2.0].  Each leaf receives at least
    ceil(c log2 2^D) = c D samples (more for leaves of dimension < D).
    Raises [Invalid_argument] if the tree does not cover the namespace. *)
