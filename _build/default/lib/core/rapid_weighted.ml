module Sm = Split_merge

type result = {
  leaves : Sm.label array;
  pools : int array array;
  virtual_dim : int;
  rounds : int;
  underflows : int;
}

let run ?(eps = 0.5) ?(c = 2.0) ~rng tree =
  if not (Sm.covers tree) then
    invalid_arg "Rapid_weighted.run: tree does not cover the namespace";
  let leaves = Array.of_list (List.map fst (Sm.leaves tree)) in
  let d_max = Sm.max_dim tree in
  (* Dense index of the covering leaf for every virtual label. *)
  let cube = Topology.Hypercube.create d_max in
  let virtuals = Topology.Hypercube.node_count cube in
  let leaf_of = Array.make virtuals (-1) in
  Array.iteri
    (fun i (l : Sm.label) ->
      let tail = d_max - l.Sm.dim in
      for suffix = 0 to (1 lsl tail) - 1 do
        let b = l.Sm.bits lor (suffix lsl l.Sm.dim) in
        if leaf_of.(b) >= 0 then
          invalid_arg "Rapid_weighted.run: overlapping leaves";
        leaf_of.(b) <- i
      done)
    leaves;
  (* Algorithm 2 over the virtual cube; every virtual label's samples map
     to covering leaves and accumulate at the simulating leaf. *)
  let sampling = Rapid_hypercube.run ~eps ~c ~rng cube in
  let pools =
    Array.map
      (fun _ -> Topology.Intvec.create ())
      leaves
  in
  Array.iteri
    (fun virtual_node samples ->
      let owner = leaf_of.(virtual_node) in
      Array.iter
        (fun b -> Topology.Intvec.push pools.(owner) leaf_of.(b))
        samples)
    sampling.Sampling_result.samples;
  let pools =
    Array.map
      (fun vec ->
        let a = Topology.Intvec.to_array vec in
        Prng.Stream.shuffle_in_place rng a;
        a)
      pools
  in
  {
    leaves;
    pools;
    virtual_dim = d_max;
    rounds = sampling.Sampling_result.rounds;
    underflows = sampling.Sampling_result.underflows;
  }
