type t = Topology.Intvec.t

let create ?capacity () = Topology.Intvec.create ?capacity ()
let size = Topology.Intvec.length
let is_empty t = size t = 0
let add = Topology.Intvec.push

let extract_random t rng =
  let len = size t in
  if len = 0 then None
  else begin
    let i = Prng.Stream.int rng len in
    let v = Topology.Intvec.get t i in
    (* Swap-remove: move the last element into slot i. *)
    let last = Topology.Intvec.get t (len - 1) in
    Topology.Intvec.set t i last;
    Topology.Intvec.truncate_last t;
    Some v
  end

let peek_random t rng =
  let len = size t in
  if len = 0 then None else Some (Topology.Intvec.get t (Prng.Stream.int rng len))

let clear = Topology.Intvec.clear
let to_array = Topology.Intvec.to_array
let of_array = Topology.Intvec.of_array
let iter = Topology.Intvec.iter
