type label = { bits : int; dim : int }

let check_label l name =
  if l.dim < 0 || l.dim > 60 then invalid_arg ("Split_merge." ^ name ^ ": bad dim");
  if l.bits land lnot ((1 lsl l.dim) - 1) <> 0 then
    invalid_arg ("Split_merge." ^ name ^ ": bits exceed dim")

let child0 l =
  check_label l "child0";
  { bits = l.bits; dim = l.dim + 1 }

let child1 l =
  check_label l "child1";
  { bits = l.bits lor (1 lsl l.dim); dim = l.dim + 1 }

let parent l =
  check_label l "parent";
  if l.dim = 0 then invalid_arg "Split_merge.parent: root";
  { bits = l.bits land ((1 lsl (l.dim - 1)) - 1); dim = l.dim - 1 }

let sibling l =
  check_label l "sibling";
  if l.dim = 0 then invalid_arg "Split_merge.sibling: root";
  { bits = l.bits lxor (1 lsl (l.dim - 1)); dim = l.dim }

let is_prefix a b =
  a.dim <= b.dim && b.bits land ((1 lsl a.dim) - 1) = a.bits

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let connected x y =
  let short = min x.dim y.dim in
  let mask = (1 lsl short) - 1 in
  is_power_of_two ((x.bits land mask) lxor (y.bits land mask))

type 'a t = { table : (int * int, 'a) Hashtbl.t }

let key l = (l.bits, l.dim)

let create () = { table = Hashtbl.create 64 }

let mem t l = Hashtbl.mem t.table (key l)
let find t l = Hashtbl.find_opt t.table (key l)

let conflicts t l =
  (* Any existing leaf that is a prefix or an extension of l. *)
  let bad = ref false in
  Hashtbl.iter
    (fun (bits, dim) _ ->
      let other = { bits; dim } in
      if is_prefix other l || is_prefix l other then bad := true)
    t.table;
  !bad

let add_leaf t l v =
  check_label l "add_leaf";
  if conflicts t l then invalid_arg "Split_merge.add_leaf: conflicting leaf";
  Hashtbl.replace t.table (key l) v

let remove_leaf t l =
  if not (mem t l) then invalid_arg "Split_merge.remove_leaf: no such leaf";
  Hashtbl.remove t.table (key l)

let leaf_count t = Hashtbl.length t.table

let leaves t =
  Hashtbl.fold (fun (bits, dim) v acc -> ({ bits; dim }, v) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> compare (a.dim, a.bits) (b.dim, b.bits))

let iter f t = Hashtbl.iter (fun (bits, dim) v -> f { bits; dim } v) t.table

let split t l f =
  match find t l with
  | None -> invalid_arg "Split_merge.split: not a leaf"
  | Some v ->
      let v0, v1 = f v in
      Hashtbl.remove t.table (key l);
      Hashtbl.replace t.table (key (child0 l)) v0;
      Hashtbl.replace t.table (key (child1 l)) v1

let rec force_leaf t l f =
  (* Make [l] a leaf by merging everything below it. *)
  if not (mem t l) then begin
    let c0 = child0 l and c1 = child1 l in
    force_leaf t c0 f;
    force_leaf t c1 f;
    let v0 = Hashtbl.find t.table (key c0) in
    let v1 = Hashtbl.find t.table (key c1) in
    Hashtbl.remove t.table (key c0);
    Hashtbl.remove t.table (key c1);
    Hashtbl.replace t.table (key l) (f v0 v1)
  end

let merge t l f =
  if not (mem t l) then invalid_arg "Split_merge.merge: not a leaf";
  if l.dim = 0 then invalid_arg "Split_merge.merge: root leaf";
  let sib = sibling l in
  force_leaf t sib f;
  let p = parent l in
  let vl = Hashtbl.find t.table (key l) in
  let vs = Hashtbl.find t.table (key sib) in
  Hashtbl.remove t.table (key l);
  Hashtbl.remove t.table (key sib);
  let lo, hi = if l.bits <= sib.bits then (vl, vs) else (vs, vl) in
  Hashtbl.replace t.table (key p) (f lo hi)

let max_dim t =
  Hashtbl.fold (fun (_, dim) _ acc -> max acc dim) t.table 0

let min_dim t =
  Hashtbl.fold (fun (_, dim) _ acc -> min acc dim) t.table max_int

let sample t rng =
  if leaf_count t = 0 then invalid_arg "Split_merge.sample: empty tree";
  let deepest = max_dim t in
  let bits = ref 0 in
  let result = ref None in
  (try
     for dim = 0 to deepest do
       if Hashtbl.mem t.table (!bits, dim) then begin
         result := Some { bits = !bits; dim };
         raise Exit
       end;
       if Prng.Stream.bool rng then bits := !bits lor (1 lsl dim)
     done
   with Exit -> ());
  match !result with
  | Some l -> l
  | None -> invalid_arg "Split_merge.sample: leaves do not cover the namespace"

let covers t =
  (* The probabilities 2^-dim of the leaves must sum to 1; prefix-freeness
     is maintained by construction, so the sum test suffices. *)
  let scale = 60 in
  let total =
    Hashtbl.fold
      (fun (_, dim) _ acc -> acc + (1 lsl (scale - dim)))
      t.table 0
  in
  total = 1 lsl scale
