(** Variable-dimension supernodes for the churn-resistant extension of the
    DoS network (Section 6).

    Supernodes are labels over binary strings: a supernode x = (b_1 ... b_l)
    has dimension d(x) = l.  The current supernodes always form the leaf set
    of a binary tree (a prefix-free covering of {0,1}^inf), so sampling a
    supernode with probability 2^(-d(x)) is just following fresh random bits
    from the root.  Splitting x replaces it by its two children (appending a
    0/1 bit); merging replaces x and its sibling by their parent; if the
    sibling was itself split, the subtree below it is first forced to merge
    (exactly the rule in the paper).

    Labels are encoded as ints with b_i at bit position i-1, paired with
    their length. *)

type label = { bits : int; dim : int }

val child0 : label -> label
val child1 : label -> label
val parent : label -> label
(** Raises [Invalid_argument] at dimension 0. *)

val sibling : label -> label
val is_prefix : label -> label -> bool
(** [is_prefix a b]: a's bits are the first bits of b (a.dim <= b.dim). *)

val connected : label -> label -> bool
(** Section 6's rule: with d(x) <= d(y), the first d(x) bits of the labels
    differ in exactly one coordinate. *)

type 'a t
(** A leaf tree whose leaves carry values of type ['a]. *)

val create : unit -> 'a t
(** A tree with the single leaf of dimension 0 is not representable (the
    paper's networks always have dimension >= 1); [create] returns an empty
    tree to be filled with [add_leaf]. *)

val add_leaf : 'a t -> label -> 'a -> unit
(** Raises [Invalid_argument] if the label conflicts with an existing leaf
    (equal, prefix, or extension). *)

val mem : 'a t -> label -> bool
val find : 'a t -> label -> 'a option
val remove_leaf : 'a t -> label -> unit
val leaf_count : 'a t -> int
val leaves : 'a t -> (label * 'a) list
(** Sorted by (dim, bits) for determinism. *)

val iter : (label -> 'a -> unit) -> 'a t -> unit

val split : 'a t -> label -> ('a -> 'a * 'a) -> unit
(** [split t x f] replaces leaf [x] by its children, dividing its value with
    [f].  Raises [Invalid_argument] if [x] is not a leaf. *)

val merge : 'a t -> label -> ('a -> 'a -> 'a) -> unit
(** [merge t x f] merges leaf [x] with its sibling into their parent,
    force-merging the sibling's subtree first if necessary; values combine
    with [f] (first argument is the lower-labelled side).  Raises
    [Invalid_argument] if [x] is not a leaf or has dimension 0. *)

val sample : 'a t -> Prng.Stream.t -> label
(** The unique leaf that is a prefix of an infinite uniform bit string —
    i.e. leaf x with probability 2^(-d(x)).  Raises [Invalid_argument] on an
    empty or non-covering tree. *)

val max_dim : 'a t -> int
val min_dim : 'a t -> int
val covers : 'a t -> bool
(** The leaves partition the full binary namespace (total probability 1). *)
