(** Rapid node sampling on the k-ary hypercube — the extension Section 7.2
    calls "straightforward": Algorithm 2 never uses the binary alphabet,
    only the per-coordinate randomization and the segment-doubling merge, so
    it generalizes verbatim to labels over {0, ..., k-1}^d.

    Node u keeps one multiset per coordinate; bucket j starts with m_0
    copies of "u with digit j redrawn uniformly from {0..k-1}" (the one-step
    walk along dimension j, staying put with probability 1/k).  Iteration i
    composes segments exactly as in the binary primitive; after
    ceil(log2 d) iterations the coordinate-0 bucket holds exactly uniform
    samples over the k^d nodes.

    This is what makes the robust DHT's reconfiguration principled: the
    groups of the k-ary supernode cube can rebuild themselves with the same
    O(log log n)-round machinery as the Section 5 network. *)

val run :
  ?eps:float ->
  ?c:float ->
  rng:Prng.Stream.t ->
  Topology.Kary_hypercube.t ->
  Sampling_result.t
(** Defaults [eps = 0.5], [c = 2.0], as in {!Rapid_hypercube.run};
    [rounds = 2 ceil(log2 d)]; [walk_length] reports [d]. *)

val run_plain :
  k:int -> rng:Prng.Stream.t -> Topology.Kary_hypercube.t -> Sampling_result.t
(** Baseline d-round token walk: in round i the holder redraws digit i
    uniformly (forwarding the token to the corresponding neighbor unless the
    digit is unchanged); one final round reports endpoints. *)
