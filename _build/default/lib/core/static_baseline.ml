type t = {
  mutable edges : (int * int) list;  (** join edges, newest first *)
  base : Topology.Graph.t;  (** the initial H-graph's edges *)
  mutable alive : bool array;
  mutable nodes : int;
}

let create ?(d = 8) ~rng ~n () =
  let g = Topology.Hgraph.random rng ~n ~d in
  {
    edges = [];
    base = Topology.Hgraph.to_graph g;
    alive = Array.make n true;
    nodes = n;
  }

let node_count t = t.nodes

let alive_count t =
  let c = ref 0 in
  for v = 0 to t.nodes - 1 do
    if t.alive.(v) then incr c
  done;
  !c

let is_alive t v = v >= 0 && v < t.nodes && t.alive.(v)

let alive_positions t =
  let out = Topology.Intvec.create () in
  for v = 0 to t.nodes - 1 do
    if t.alive.(v) then Topology.Intvec.push out v
  done;
  Topology.Intvec.to_array out

let ensure_capacity t needed =
  let cap = Array.length t.alive in
  if needed > cap then begin
    let alive = Array.make (max needed (2 * cap)) false in
    Array.blit t.alive 0 alive 0 t.nodes;
    t.alive <- alive
  end

let apply t ~leaves ~join_introducers =
  Array.iter
    (fun v -> if v >= 0 && v < t.nodes then t.alive.(v) <- false)
    leaves;
  Array.iter
    (fun intro ->
      if not (is_alive t intro) then
        invalid_arg "Static_baseline.apply: dead introducer";
      ensure_capacity t (t.nodes + 1);
      let fresh = t.nodes in
      t.nodes <- t.nodes + 1;
      t.alive.(fresh) <- true;
      t.edges <- (fresh, intro) :: t.edges)
    join_introducers

let current_graph t =
  let g = Topology.Graph.create ~n:t.nodes in
  Array.iter
    (fun (u, v) -> Topology.Graph.add_edge g u v)
    (Topology.Graph.edges t.base);
  List.iter (fun (u, v) -> Topology.Graph.add_edge g u v) t.edges;
  g

let is_connected t =
  Topology.Bfs.is_connected ~alive:(fun v -> t.alive.(v)) (current_graph t)

let largest_component_fraction t =
  let alive = alive_count t in
  if alive = 0 then 0.0
  else
    match Topology.Bfs.components ~alive:(fun v -> t.alive.(v)) (current_graph t) with
    | [] -> 0.0
    | largest :: _ -> float_of_int (Array.length largest) /. float_of_int alive
