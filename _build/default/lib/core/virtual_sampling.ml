module Sm = Split_merge

type state = {
  owned : int array;  (** virtual labels this leaf covers *)
  vstates : Supernode_sampling.state array;  (** aligned with [owned] *)
  leaf_of : int array;  (** virtual label -> dense leaf index (shared) *)
}

type msg = {
  vsrc : int;
  vdst : int;
  payload : Supernode_sampling.msg;
}

let samples st =
  Array.concat
    (Array.to_list
       (Array.map
          (fun vst ->
            Array.map (fun b -> st.leaf_of.(b)) (Supernode_sampling.samples vst))
          st.vstates))

let underflows st =
  Array.fold_left
    (fun acc vst -> acc + Supernode_sampling.underflows vst)
    0 st.vstates

let protocol ?(eps = 0.5) ?(c = 2.0) ~tree () =
  if not (Sm.covers tree) then
    invalid_arg "Virtual_sampling.protocol: tree does not cover the namespace";
  let leaves = Array.of_list (List.map fst (Sm.leaves tree)) in
  let d_max = Sm.max_dim tree in
  let cube = Topology.Hypercube.create d_max in
  let virtuals = Topology.Hypercube.node_count cube in
  let leaf_of = Array.make virtuals (-1) in
  let owned_of =
    Array.mapi
      (fun i (l : Sm.label) ->
        let tail = d_max - l.Sm.dim in
        Array.init (1 lsl tail) (fun suffix ->
            let b = l.Sm.bits lor (suffix lsl l.Sm.dim) in
            leaf_of.(b) <- i;
            b))
      leaves
  in
  let base = Supernode_sampling.protocol ~eps ~c ~cube () in
  let init ~supernode ~rng =
    {
      owned = owned_of.(supernode);
      vstates =
        Array.map
          (fun vl -> base.Group_sim.init ~supernode:vl ~rng)
          owned_of.(supernode);
      leaf_of;
    }
  in
  let step ~supernode:_ ~step_index st ~inbox ~rng =
    let out = ref [] in
    let vstates =
      Array.mapi
        (fun i vl ->
          let sub_inbox =
            List.filter_map
              (fun (_, m) ->
                if m.vdst = vl then Some (m.vsrc, m.payload) else None)
              inbox
          in
          let vst', outs =
            base.Group_sim.step ~supernode:vl ~step_index st.vstates.(i)
              ~inbox:sub_inbox ~rng
          in
          List.iter
            (fun (dst_vl, payload) ->
              out := (leaf_of.(dst_vl), { vsrc = vl; vdst = dst_vl; payload }) :: !out)
            outs;
          vst')
        st.owned
    in
    ({ st with vstates }, List.rev !out)
  in
  let vid_bits = Simnet.Msg_size.id_bits (max 2 virtuals) in
  {
    Group_sim.init;
    step;
    steps = base.Group_sim.steps;
    state_bits =
      (fun st ->
        Array.fold_left
          (fun acc vst -> acc + base.Group_sim.state_bits vst)
          Simnet.Msg_size.header_bits st.vstates);
    msg_bits =
      (fun m -> base.Group_sim.msg_bits m.payload + (2 * vid_bits));
  }
