(** The multiset M of node ids used by the sampling primitives (Section 3):
    O(1) insertion and O(1) uniform extraction ("choose and remove v in M
    uniformly at random"), implemented as an array with swap-removal. *)

type t

val create : ?capacity:int -> unit -> t
val size : t -> int
val is_empty : t -> bool
val add : t -> int -> unit

val extract_random : t -> Prng.Stream.t -> int option
(** Remove and return a uniformly random element; [None] when empty (the
    caller records this as an algorithm-failure event, cf. Lemma 7). *)

val peek_random : t -> Prng.Stream.t -> int option
(** Uniformly random element without removal. *)

val clear : t -> unit
val to_array : t -> int array
val of_array : int array -> t
val iter : (int -> unit) -> t -> unit
