(** Parameter derivations shared by the sampling primitives and networks.

    Notation from the paper: walks of length t = ceil(2 alpha log_{d/4} n)
    mix on a random H-graph of degree d (Lemma 2); pointer doubling builds
    them in T = ceil(log2 t) iterations (Section 3.1); the multiset sizes
    follow the schedules of Lemma 7 (H-graphs) and Lemma 9 (hypercube). *)

val log2f : float -> float
val log2i_ceil : int -> int
(** ceil(log2 n) for n >= 1. *)

val walk_length : alpha:float -> d:int -> n:int -> int
(** ceil(2 alpha log_{d/4} n); requires d >= 5 (so the base d/4 > 1) and
    n >= 2. *)

val iterations_hgraph : alpha:float -> d:int -> n:int -> int
(** T = ceil(log2 (walk_length)): number of doubling iterations so the
    generated walks have length 2^T >= walk_length. *)

val schedule_hgraph : eps:float -> c:float -> n:int -> t:int -> int array
(** Lemma 7 schedule [m_0; ...; m_T] with m_i = ceil((2+eps)^(T-i) c log2 n);
    requires 0 < eps <= 1. *)

val iterations_hypercube : d:int -> int
(** ceil(log2 d): doubling iterations to randomize all d coordinates. *)

val schedule_hypercube : eps:float -> c:float -> n:int -> iters:int -> int array
(** Lemma 9 schedule with m_i = ceil((1+eps)^(iters-i) c log2 n). *)

val dos_dimension : c:float -> n:int -> int
(** Section 5: the largest d with 2^d <= n / (c log2 n) (at least 1). *)

val loglog_estimate : n:int -> int
(** The upper bound k on log log n that nodes are assumed to know
    (Section 4): ceil(log2 (ceil (log2 n))). *)
