(** Ablation A2: a *static* H-graph subjected to the same churn stream, with
    no reconfiguration.  Leavers vanish immediately (their edges die with
    them); joiners attach to their introducer by a single edge, as a naive
    overlay would.  Used as the baseline in experiment E7: under constant
    adversarial churn this network fragments while the reconfigured network
    of {!Churn_network} does not. *)

type t

val create : ?d:int -> rng:Prng.Stream.t -> n:int -> unit -> t
val alive_count : t -> int
val node_count : t -> int
(** All nodes ever, dead or alive. *)

val is_alive : t -> int -> bool
val alive_positions : t -> int array

val apply :
  t -> leaves:int array -> join_introducers:int array -> unit
(** [leaves] are node indices to kill (dead ones ignored); each entry of
    [join_introducers] creates a fresh node linked to that (alive)
    introducer.  Raises [Invalid_argument] for a dead introducer. *)

val is_connected : t -> bool
(** Connectivity of the subgraph induced by the alive nodes. *)

val largest_component_fraction : t -> float
(** Size of the largest alive component over the number of alive nodes;
    1.0 when connected, 0 when nobody is alive. *)
