lib/core/supernode_sampling.mli: Group_sim Topology
