lib/core/multiset.mli: Prng
