lib/core/dos_network.mli: Prng
