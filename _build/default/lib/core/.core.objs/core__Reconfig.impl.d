lib/core/reconfig.ml: Array Params Printf Prng Simnet
