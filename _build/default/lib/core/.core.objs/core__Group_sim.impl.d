lib/core/group_sim.ml: Array Hashtbl List Option Printf Prng Simnet Topology
