lib/core/group_sim.mli: Prng Simnet
