lib/core/churndos_network.mli: Prng Split_merge
