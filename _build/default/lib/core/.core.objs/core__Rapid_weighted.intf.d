lib/core/rapid_weighted.mli: Prng Split_merge
