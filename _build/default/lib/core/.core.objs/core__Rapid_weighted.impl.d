lib/core/rapid_weighted.ml: Array List Prng Rapid_hypercube Sampling_result Split_merge Topology
