lib/core/dos_adversary.ml: Array Float Prng Simnet Topology
