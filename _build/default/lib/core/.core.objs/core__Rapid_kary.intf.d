lib/core/rapid_kary.mli: Prng Sampling_result Topology
