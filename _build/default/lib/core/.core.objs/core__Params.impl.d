lib/core/params.ml: Array Float
