lib/core/static_baseline.mli: Prng
