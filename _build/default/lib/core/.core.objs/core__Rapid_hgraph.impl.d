lib/core/rapid_hgraph.ml: Array List Multiset Params Prng Sampling_result Simnet Topology
