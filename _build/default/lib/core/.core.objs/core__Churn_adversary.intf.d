lib/core/churn_adversary.mli: Prng Topology
