lib/core/params.mli:
