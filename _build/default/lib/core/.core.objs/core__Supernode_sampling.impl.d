lib/core/supernode_sampling.ml: Array Group_sim Hashtbl List Multiset Option Params Prng Simnet Topology
