lib/core/churn_adversary.ml: Array Hashtbl Option Prng Topology
