lib/core/rapid_kary.ml: Array List Multiset Params Prng Sampling_result Simnet Topology
