lib/core/rapid_hypercube.ml: Array List Multiset Params Prng Sampling_result Simnet Topology
