lib/core/virtual_sampling.mli: Group_sim Split_merge
