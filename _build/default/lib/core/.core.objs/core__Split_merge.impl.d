lib/core/split_merge.ml: Hashtbl List Prng
