lib/core/dos_network.ml: Array Float Group_sim Logs Params Prng Queue Rapid_hypercube Sampling_result Supernode_sampling Topology
