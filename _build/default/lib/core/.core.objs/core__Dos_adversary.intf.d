lib/core/dos_adversary.mli: Prng Topology
