lib/core/reconfig.mli: Prng
