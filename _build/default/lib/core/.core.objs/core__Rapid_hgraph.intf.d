lib/core/rapid_hgraph.mli: Prng Sampling_result Topology
