lib/core/rapid_hypercube.mli: Prng Sampling_result Topology
