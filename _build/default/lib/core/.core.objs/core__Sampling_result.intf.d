lib/core/sampling_result.mli:
