lib/core/churn_network.mli: Prng Topology
