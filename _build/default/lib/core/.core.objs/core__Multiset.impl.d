lib/core/multiset.ml: Prng Topology
