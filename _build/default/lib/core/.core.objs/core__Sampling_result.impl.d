lib/core/sampling_result.ml: Array
