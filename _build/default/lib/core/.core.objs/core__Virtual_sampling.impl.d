lib/core/virtual_sampling.ml: Array Group_sim List Simnet Split_merge Supernode_sampling Topology
