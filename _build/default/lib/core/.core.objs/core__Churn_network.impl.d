lib/core/churn_network.ml: Array Float List Logs Params Prng Rapid_hgraph Reconfig Sampling_result Topology
