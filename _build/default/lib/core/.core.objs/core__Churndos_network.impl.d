lib/core/churndos_network.ml: Array Float List Logs Params Prng Queue Rapid_weighted Split_merge Topology
