lib/core/static_baseline.ml: Array List Topology
