lib/core/split_merge.mli: Prng
