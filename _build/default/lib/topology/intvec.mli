(** Growable integer vectors (OCaml 5.1 predates [Dynarray]); the building
    block for adjacency lists and mailboxes. *)

type t

val create : ?capacity:int -> unit -> t
val length : t -> int
val push : t -> int -> unit
val get : t -> int -> int
(** Raises [Invalid_argument] when out of bounds. *)

val set : t -> int -> int -> unit
val clear : t -> unit
(** Drops all elements, keeps capacity. *)

val truncate_last : t -> unit
(** Drop the last element.  Raises [Invalid_argument] if empty. *)

val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
val to_array : t -> int array
val of_array : int array -> t
val exists : (int -> bool) -> t -> bool
val unsafe_get : t -> int -> int
