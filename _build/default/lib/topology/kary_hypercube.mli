(** The d-dimensional k-ary hypercube of Definition 1 (Section 7.2):
    V = {0, ..., k-1}^d, with an edge iff the labels differ in exactly one
    coordinate.  Degree (k-1) d, diameter d, k^d nodes.  Nodes are encoded
    as base-k integers, digit [i] being coordinate [i]. *)

type t

val create : k:int -> d:int -> t
(** Requires [k >= 2], [d >= 1], and [k^d <= 2^26]. *)

val k : t -> int
val d : t -> int
val node_count : t -> int

val coord : t -> int -> int -> int
(** [coord t v i] is coordinate [i] (0-based digit) of node [v]. *)

val with_coord : t -> int -> int -> int -> int
(** [with_coord t v i c] replaces coordinate [i] of [v] by [c]. *)

val of_coords : t -> int array -> int
val to_coords : t -> int -> int array

val degree : t -> int
val neighbors : t -> int -> int array
val distance : t -> int -> int -> int
(** Number of coordinates in which the labels differ. *)

val to_graph : t -> Graph.t
val random_node : t -> Prng.Stream.t -> int
