(** Spectral estimates for regular (multi)graphs.

    Corollary 1 of the paper states that a random H-graph has all non-trivial
    adjacency eigenvalues bounded by 2 sqrt(d) w.h.p., which is what makes
    its random walks rapidly mixing.  We verify this empirically with power
    iteration on the adjacency operator deflated against the all-ones
    vector (the top eigenvector of a connected regular graph). *)

val second_eigenvalue : ?iterations:int -> Graph.t -> Prng.Stream.t -> float
(** Estimate of |lambda_2| of the adjacency matrix of a regular graph.
    Raises [Invalid_argument] if the graph is not regular. *)

val expansion_ok : ?slack:float -> Graph.t -> Prng.Stream.t -> bool
(** True when the estimated |lambda_2| <= 2 sqrt(d) * (1 + slack) (default
    slack 5%), i.e. the graph has the expansion required by Lemma 2. *)
