lib/topology/union_find.mli:
