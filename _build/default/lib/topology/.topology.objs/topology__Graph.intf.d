lib/topology/graph.mli:
