lib/topology/kary_hypercube.ml: Array Graph Prng
