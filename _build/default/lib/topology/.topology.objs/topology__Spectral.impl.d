lib/topology/spectral.ml: Array Graph Prng
