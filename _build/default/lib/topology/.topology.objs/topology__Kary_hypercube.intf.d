lib/topology/kary_hypercube.mli: Graph Prng
