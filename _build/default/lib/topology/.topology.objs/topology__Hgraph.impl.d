lib/topology/hgraph.ml: Array Graph Prng
