lib/topology/hypercube.ml: Array Graph Prng
