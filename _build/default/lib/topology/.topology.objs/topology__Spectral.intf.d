lib/topology/spectral.mli: Graph Prng
