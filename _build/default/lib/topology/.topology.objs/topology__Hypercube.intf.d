lib/topology/hypercube.mli: Graph Prng
