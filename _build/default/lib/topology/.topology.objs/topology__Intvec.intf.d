lib/topology/intvec.mli:
