lib/topology/bfs.mli: Graph Prng
