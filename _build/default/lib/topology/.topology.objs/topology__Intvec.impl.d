lib/topology/intvec.ml: Array
