lib/topology/bfs.ml: Array Graph Intvec List Prng Queue
