lib/topology/hgraph.mli: Graph Prng
