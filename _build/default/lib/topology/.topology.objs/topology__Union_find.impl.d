lib/topology/union_find.ml: Array Hashtbl
