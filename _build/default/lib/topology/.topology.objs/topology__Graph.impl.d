lib/topology/graph.ml: Array Intvec List
