type t = { parent : int array; rank : int array; mutable count : int }

let create n =
  if n <= 0 then invalid_arg "Union_find.create: n <= 0";
  { parent = Array.init n (fun i -> i); rank = Array.make n 0; count = n }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    t.count <- t.count - 1;
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end
  end

let same t a b = find t a = find t b

let component_count t = t.count

let component_count_among t elems =
  let roots = Hashtbl.create 16 in
  Array.iter (fun e -> Hashtbl.replace roots (find t e) ()) elems;
  Hashtbl.length roots
