type t = { adj : Intvec.t array; mutable edge_count : int }

let create ~n =
  if n <= 0 then invalid_arg "Graph.create: n <= 0";
  { adj = Array.init n (fun _ -> Intvec.create ()); edge_count = 0 }

let n t = Array.length t.adj

let check_node t v name =
  if v < 0 || v >= n t then invalid_arg ("Graph." ^ name ^ ": node out of range")

let add_edge t u v =
  check_node t u "add_edge";
  check_node t v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  Intvec.push t.adj.(u) v;
  Intvec.push t.adj.(v) u;
  t.edge_count <- t.edge_count + 1

let degree t v =
  check_node t v "degree";
  Intvec.length t.adj.(v)

let edge_count t = t.edge_count

let iter_neighbors t v f =
  check_node t v "iter_neighbors";
  Intvec.iter f t.adj.(v)

let neighbors t v =
  check_node t v "neighbors";
  Intvec.to_array t.adj.(v)

let fold_neighbors t v f init =
  check_node t v "fold_neighbors";
  Intvec.fold f init t.adj.(v)

let is_regular t =
  let nn = n t in
  if nn = 0 then None
  else begin
    let d = degree t 0 in
    let ok = ref true in
    for v = 1 to nn - 1 do
      if degree t v <> d then ok := false
    done;
    if !ok then Some d else None
  end

let has_edge t u v =
  check_node t u "has_edge";
  check_node t v "has_edge";
  Intvec.exists (fun w -> w = v) t.adj.(u)

let induced_mask t ~keep =
  let g = create ~n:(n t) in
  for u = 0 to n t - 1 do
    if keep u then
      iter_neighbors t u (fun v ->
          (* Visit each undirected edge once: from its smaller endpoint. *)
          if u < v && keep v then add_edge g u v)
  done;
  g

let of_edges ~n:nn edges =
  let g = create ~n:nn in
  Array.iter (fun (u, v) -> add_edge g u v) edges;
  g

let edges t =
  let out = ref [] in
  let count = ref 0 in
  for u = 0 to n t - 1 do
    iter_neighbors t u (fun v ->
        if u < v then begin
          out := (u, v) :: !out;
          incr count
        end)
  done;
  (* Parallel edges appear once per multiplicity from the smaller endpoint;
     edges within equal endpoints are impossible (no self-loops). *)
  Array.of_list (List.rev !out)
