type t = { k : int; d : int; count : int; pow : int array }

let create ~k ~d =
  if k < 2 then invalid_arg "Kary_hypercube.create: k < 2";
  if d < 1 then invalid_arg "Kary_hypercube.create: d < 1";
  let pow = Array.make (d + 1) 1 in
  for i = 1 to d do
    pow.(i) <- pow.(i - 1) * k;
    if pow.(i) > 1 lsl 26 then
      invalid_arg "Kary_hypercube.create: too many nodes"
  done;
  { k; d; count = pow.(d); pow }

let k t = t.k
let d t = t.d
let node_count t = t.count

let check t v name =
  if v < 0 || v >= t.count then
    invalid_arg ("Kary_hypercube." ^ name ^ ": bad node")

let coord t v i =
  check t v "coord";
  if i < 0 || i >= t.d then invalid_arg "Kary_hypercube.coord: bad index";
  v / t.pow.(i) mod t.k

let with_coord t v i c =
  check t v "with_coord";
  if i < 0 || i >= t.d then invalid_arg "Kary_hypercube.with_coord: bad index";
  if c < 0 || c >= t.k then invalid_arg "Kary_hypercube.with_coord: bad digit";
  let old = v / t.pow.(i) mod t.k in
  v + ((c - old) * t.pow.(i))

let of_coords t coords =
  if Array.length coords <> t.d then
    invalid_arg "Kary_hypercube.of_coords: wrong arity";
  Array.iteri
    (fun _ c ->
      if c < 0 || c >= t.k then invalid_arg "Kary_hypercube.of_coords: bad digit")
    coords;
  let v = ref 0 in
  for i = t.d - 1 downto 0 do
    v := (!v * t.k) + coords.(i)
  done;
  !v

let to_coords t v =
  check t v "to_coords";
  Array.init t.d (fun i -> v / t.pow.(i) mod t.k)

let degree t = (t.k - 1) * t.d

let neighbors t v =
  check t v "neighbors";
  let out = Array.make (degree t) 0 in
  let idx = ref 0 in
  for i = 0 to t.d - 1 do
    let own = v / t.pow.(i) mod t.k in
    for c = 0 to t.k - 1 do
      if c <> own then begin
        out.(!idx) <- v + ((c - own) * t.pow.(i));
        incr idx
      end
    done
  done;
  out

let distance t a b =
  check t a "distance";
  check t b "distance";
  let diff = ref 0 in
  for i = 0 to t.d - 1 do
    if a / t.pow.(i) mod t.k <> b / t.pow.(i) mod t.k then incr diff
  done;
  !diff

let to_graph t =
  let g = Graph.create ~n:t.count in
  for v = 0 to t.count - 1 do
    Array.iter (fun w -> if v < w then Graph.add_edge g v w) (neighbors t v)
  done;
  g

let random_node t rng = Prng.Stream.int rng t.count
