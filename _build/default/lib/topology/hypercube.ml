type t = { d : int }

let create d =
  if d <= 0 || d > 26 then invalid_arg "Hypercube.create: need 0 < d <= 26";
  { d }

let dimension t = t.d
let node_count t = 1 lsl t.d

let contains t v = v >= 0 && v < node_count t

let check t v name =
  if not (contains t v) then invalid_arg ("Hypercube." ^ name ^ ": bad node")

let flip t v i =
  check t v "flip";
  if i < 0 || i >= t.d then invalid_arg "Hypercube.flip: bad dimension";
  v lxor (1 lsl i)

let neighbors t v =
  check t v "neighbors";
  Array.init t.d (fun i -> v lxor (1 lsl i))

let hamming a b =
  let x = a lxor b in
  let rec count x acc = if x = 0 then acc else count (x lsr 1) (acc + (x land 1)) in
  count x 0

let to_graph t =
  let g = Graph.create ~n:(node_count t) in
  for v = 0 to node_count t - 1 do
    for i = 0 to t.d - 1 do
      let w = v lxor (1 lsl i) in
      if v < w then Graph.add_edge g v w
    done
  done;
  g

let random_node t rng = Prng.Stream.int rng (node_count t)

let walk_step t rng v ~dim =
  check t v "walk_step";
  if Prng.Stream.bool rng then v else flip t v dim
