let always_alive _ = true

let distances ?(alive = always_alive) g src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  if src < 0 || src >= n then invalid_arg "Bfs.distances: src out of range";
  if alive src then begin
    let queue = Queue.create () in
    dist.(src) <- 0;
    Queue.push src queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.iter_neighbors g u (fun v ->
          if dist.(v) < 0 && alive v then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v queue
          end)
    done
  end;
  dist

let first_alive alive n =
  let rec go i = if i >= n then None else if alive i then Some i else go (i + 1) in
  go 0

let is_connected ?(alive = always_alive) g =
  let n = Graph.n g in
  match first_alive alive n with
  | None -> true
  | Some src ->
      let dist = distances ~alive g src in
      let ok = ref true in
      for v = 0 to n - 1 do
        if alive v && dist.(v) < 0 then ok := false
      done;
      !ok

let components ?(alive = always_alive) g =
  let n = Graph.n g in
  let seen = Array.make n false in
  let comps = ref [] in
  for src = 0 to n - 1 do
    if alive src && not seen.(src) then begin
      let members = Intvec.create () in
      let queue = Queue.create () in
      seen.(src) <- true;
      Queue.push src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Intvec.push members u;
        Graph.iter_neighbors g u (fun v ->
            if alive v && not seen.(v) then begin
              seen.(v) <- true;
              Queue.push v queue
            end)
      done;
      comps := Intvec.to_array members :: !comps
    end
  done;
  List.sort (fun a b -> compare (Array.length b) (Array.length a)) !comps

let component_count ?(alive = always_alive) g =
  List.length (components ~alive g)

let eccentricity g src =
  let dist = distances g src in
  let ecc = ref 0 in
  (try
     Array.iter
       (fun d ->
         if d < 0 then begin
           ecc := -1;
           raise Exit
         end
         else if d > !ecc then ecc := d)
       dist
   with Exit -> ());
  !ecc

let diameter_exact g =
  let n = Graph.n g in
  let diam = ref 0 in
  (try
     for v = 0 to n - 1 do
       let e = eccentricity g v in
       if e < 0 then begin
         diam := -1;
         raise Exit
       end;
       if e > !diam then diam := e
     done
   with Exit -> ());
  !diam

let diameter_double_sweep g rng =
  let n = Graph.n g in
  let best = ref 0 in
  (try
     for _ = 1 to 4 do
       let src = Prng.Stream.int rng n in
       let d1 = distances g src in
       (* Farthest node from src. *)
       let far = ref src and fard = ref 0 in
       Array.iteri
         (fun v d ->
           if d < 0 then raise Exit;
           if d > !fard then begin
             fard := d;
             far := v
           end)
         d1;
       let d2 = distances g !far in
       Array.iter
         (fun d ->
           if d < 0 then raise Exit;
           if d > !best then best := d)
         d2
     done
   with Exit -> best := -1);
  !best
