(** Breadth-first search utilities: connectivity (optionally restricted to a
    surviving subset of nodes), components, distances, and diameter. *)

val distances : ?alive:(int -> bool) -> Graph.t -> int -> int array
(** [distances g src] gives hop counts from [src]; unreachable (or dead)
    nodes get [-1].  When [alive] is supplied, the search is confined to the
    induced subgraph on alive nodes; if [src] itself is dead, everything is
    [-1]. *)

val is_connected : ?alive:(int -> bool) -> Graph.t -> bool
(** Whole graph connected (restricted to alive nodes).  A graph with zero
    alive nodes counts as connected (vacuously), matching the paper's "the
    network restricted to its non-blocked nodes is connected". *)

val components : ?alive:(int -> bool) -> Graph.t -> int array list
(** The alive vertex sets of the connected components, largest first. *)

val component_count : ?alive:(int -> bool) -> Graph.t -> int

val eccentricity : Graph.t -> int -> int
(** Greatest finite distance from the node; [-1] if some node is
    unreachable. *)

val diameter_exact : Graph.t -> int
(** Exact diameter by all-pairs BFS; O(n (n + m)), intended for n up to a
    few thousand.  Returns [-1] when disconnected. *)

val diameter_double_sweep : Graph.t -> Prng.Stream.t -> int
(** Lower bound on the diameter from a few BFS double sweeps; cheap and
    usually tight on expanders.  Returns [-1] when disconnected. *)
