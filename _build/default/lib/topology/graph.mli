(** Compact mutable undirected multigraph over nodes [0 .. n-1].

    This is the common currency of the repository: topology generators
    produce one, and the analysis routines (connectivity, diameter, spectral
    gap) consume one.  Parallel edges are kept (the paper's H-graphs are
    multigraphs); self-loops are rejected. *)

type t

val create : n:int -> t
val n : t -> int
val add_edge : t -> int -> int -> unit
(** Adds an undirected edge; parallel edges accumulate.  Raises
    [Invalid_argument] on out-of-range endpoints or self-loops. *)

val degree : t -> int -> int
val edge_count : t -> int
(** Number of undirected edges (parallel edges counted separately). *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Visits each incident edge's far endpoint; a parallel edge is visited as
    many times as its multiplicity. *)

val neighbors : t -> int -> int array
val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val is_regular : t -> int option
(** [Some d] if every node has degree [d]. *)

val has_edge : t -> int -> int -> bool

val induced_mask : t -> keep:(int -> bool) -> t
(** Subgraph on the same vertex set keeping only edges between kept nodes
    (dropped nodes become isolated).  Used for "network restricted to its
    non-blocked nodes". *)

val of_edges : n:int -> (int * int) array -> t
val edges : t -> (int * int) array
(** Each undirected edge once, with smaller endpoint first; parallel edges
    repeated. *)
