(** The d-dimensional binary hypercube: nodes are the integers
    [0 .. 2^d - 1] read as bit vectors; two nodes are adjacent iff they
    differ in exactly one bit (Section 2.2 of the paper).

    Bit numbering: dimension [i] (0-based, [0 <= i < d]) is bit [i] of the
    integer label.  The paper indexes coordinates from 1; our APIs are
    0-based throughout and the experiments account for the shift. *)

type t

val create : int -> t
(** [create d] for [0 < d <= 26] (2^26 nodes is far beyond any experiment
    here). *)

val dimension : t -> int
val node_count : t -> int
val flip : t -> int -> int -> int
(** [flip t v i] = the neighbor of [v] across dimension [i]. *)

val neighbors : t -> int -> int array
val hamming : int -> int -> int
(** Hamming distance between two labels (graph distance in the cube). *)

val to_graph : t -> Graph.t
val contains : t -> int -> bool

val random_node : t -> Prng.Stream.t -> int

val walk_step : t -> Prng.Stream.t -> int -> dim:int -> int
(** One step of the paper's d-round sampling walk (Section 2.3): with
    probability 1/2 stay, otherwise cross dimension [dim]. *)
