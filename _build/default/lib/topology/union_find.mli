(** Disjoint-set forest with union by rank and path compression; used as an
    independent oracle to cross-check BFS connectivity results in tests and
    as the fast path for "is the surviving network connected?" checks. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> unit
val same : t -> int -> int -> bool
val component_count : t -> int
(** Number of disjoint sets over the whole universe. *)

val component_count_among : t -> int array -> int
(** Number of distinct sets represented among the given elements. *)
