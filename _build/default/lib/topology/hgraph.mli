(** H-graphs (Section 2.2): undirected multigraphs whose edge set is the
    union of d/2 oriented Hamilton cycles over the node set, for an even
    constant degree d >= 8.  A uniformly random member of H_n is obtained by
    drawing the cycles independently and uniformly at random.

    Each cycle keeps its orientation: every node knows its predecessor and
    successor in every cycle, which Algorithm 3 (network reconfiguration)
    relies on. *)

type t

val random : Prng.Stream.t -> n:int -> d:int -> t
(** Uniformly random H-graph.  Requires [n >= 3] and even [d >= 2] (the
    paper wants d >= 8 for its constants; smaller d is allowed here for
    tests). *)

val of_cycles : int array array -> t
(** [of_cycles succs] builds an H-graph from explicit successor arrays, one
    per cycle; [succs.(c).(v)] is the successor of [v] in cycle [c].  Raises
    [Invalid_argument] unless every array describes a single Hamilton cycle
    over the same node set. *)

val n : t -> int
val degree : t -> int
(** d = 2 * number of cycles. *)

val cycles : t -> int
(** Number of Hamilton cycles, d/2. *)

val succ : t -> cycle:int -> int -> int
val pred : t -> cycle:int -> int -> int

val succ_array : t -> cycle:int -> int array
(** Copy of a cycle's successor table. *)

val random_neighbor : t -> Prng.Stream.t -> int -> int
(** Uniform step of the simple random walk: choose one of the d incident
    edges (cycle x direction) uniformly and return its far endpoint. *)

val walk : t -> Prng.Stream.t -> start:int -> length:int -> int
(** End node of a simple random walk. *)

val to_graph : t -> Graph.t
(** The underlying undirected multigraph (2 parallel edges arise where two
    cycles share an edge or where n = 2 would degenerate — excluded by
    [n >= 3]). *)

val is_hamilton_cycle : int array -> bool
(** Whether a successor array describes one cycle through all nodes. *)
