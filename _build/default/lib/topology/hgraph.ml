type t = {
  n : int;
  succ : int array array; (* succ.(c).(v) *)
  pred : int array array;
}

let is_hamilton_cycle succ =
  let n = Array.length succ in
  n >= 3
  && Array.for_all (fun v -> v >= 0 && v < n) succ
  &&
  (* Follow the cycle from 0; it must return to 0 after exactly n steps
     having visited every node once. *)
  let seen = Array.make n false in
  let rec go v steps =
    if seen.(v) then v = 0 && steps = n
    else begin
      seen.(v) <- true;
      go succ.(v) (steps + 1)
    end
  in
  go 0 0

let pred_of_succ succ =
  let n = Array.length succ in
  let pred = Array.make n 0 in
  Array.iteri (fun v s -> pred.(s) <- v) succ;
  pred

let of_cycles succs =
  let k = Array.length succs in
  if k = 0 then invalid_arg "Hgraph.of_cycles: no cycles";
  let n = Array.length succs.(0) in
  Array.iter
    (fun s ->
      if Array.length s <> n then
        invalid_arg "Hgraph.of_cycles: cycles over different node sets";
      if not (is_hamilton_cycle s) then
        invalid_arg "Hgraph.of_cycles: not a Hamilton cycle")
    succs;
  {
    n;
    succ = Array.map Array.copy succs;
    pred = Array.map pred_of_succ succs;
  }

let random_cycle rng n =
  let p = Prng.Stream.permutation rng n in
  let succ = Array.make n 0 in
  for i = 0 to n - 1 do
    succ.(p.(i)) <- p.((i + 1) mod n)
  done;
  succ

let random rng ~n ~d =
  if n < 3 then invalid_arg "Hgraph.random: n < 3";
  if d < 2 || d mod 2 <> 0 then invalid_arg "Hgraph.random: d must be even >= 2";
  let k = d / 2 in
  let succ = Array.init k (fun _ -> random_cycle rng n) in
  { n; succ; pred = Array.map pred_of_succ succ }

let n t = t.n
let cycles t = Array.length t.succ
let degree t = 2 * cycles t

let check_cycle t c =
  if c < 0 || c >= cycles t then invalid_arg "Hgraph: bad cycle index"

let check_node t v = if v < 0 || v >= t.n then invalid_arg "Hgraph: bad node"

let succ t ~cycle v =
  check_cycle t cycle;
  check_node t v;
  t.succ.(cycle).(v)

let pred t ~cycle v =
  check_cycle t cycle;
  check_node t v;
  t.pred.(cycle).(v)

let succ_array t ~cycle =
  check_cycle t cycle;
  Array.copy t.succ.(cycle)

let random_neighbor t rng v =
  check_node t v;
  let d = degree t in
  let e = Prng.Stream.int rng d in
  let c = e / 2 in
  if e land 1 = 0 then t.succ.(c).(v) else t.pred.(c).(v)

let walk t rng ~start ~length =
  check_node t start;
  let v = ref start in
  for _ = 1 to length do
    v := random_neighbor t rng !v
  done;
  !v

let to_graph t =
  let g = Graph.create ~n:t.n in
  Array.iter
    (fun succ -> Array.iteri (fun v s -> Graph.add_edge g v s) succ)
    t.succ;
  g
