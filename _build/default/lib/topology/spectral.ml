let apply_adjacency g x y =
  let n = Graph.n g in
  Array.fill y 0 n 0.0;
  for u = 0 to n - 1 do
    let xu = x.(u) in
    Graph.iter_neighbors g u (fun v -> y.(v) <- y.(v) +. xu)
  done

let deflate_ones x =
  let n = Array.length x in
  let mean = Array.fold_left ( +. ) 0.0 x /. float_of_int n in
  for i = 0 to n - 1 do
    x.(i) <- x.(i) -. mean
  done

let norm x = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x)

let second_eigenvalue ?(iterations = 100) g rng =
  (match Graph.is_regular g with
  | Some _ -> ()
  | None -> invalid_arg "Spectral.second_eigenvalue: graph not regular");
  let n = Graph.n g in
  let x = Array.init n (fun _ -> Prng.Stream.float rng 2.0 -. 1.0) in
  let y = Array.make n 0.0 in
  deflate_ones x;
  let nx = norm x in
  if nx = 0.0 then 0.0
  else begin
    Array.iteri (fun i v -> x.(i) <- v /. nx) x;
    let lambda = ref 0.0 in
    for _ = 1 to iterations do
      apply_adjacency g x y;
      deflate_ones y;
      let ny = norm y in
      if ny > 0.0 then begin
        lambda := ny;
        for i = 0 to n - 1 do
          x.(i) <- y.(i) /. ny
        done
      end
      else lambda := 0.0
    done;
    !lambda
  end

let expansion_ok ?(slack = 0.05) g rng =
  match Graph.is_regular g with
  | None -> false
  | Some d ->
      let l2 = second_eigenvalue g rng in
      l2 <= 2.0 *. sqrt (float_of_int d) *. (1.0 +. slack)
