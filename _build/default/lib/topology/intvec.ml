type t = { mutable data : int array; mutable len : int }

let create ?(capacity = 8) () =
  { data = Array.make (max capacity 1) 0; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (2 * cap) 0 in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let check t i name =
  if i < 0 || i >= t.len then invalid_arg ("Intvec." ^ name ^ ": out of bounds")

let get t i =
  check t i "get";
  t.data.(i)

let unsafe_get t i = Array.unsafe_get t.data i

let set t i x =
  check t i "set";
  t.data.(i) <- x

let clear t = t.len <- 0

let truncate_last t =
  if t.len = 0 then invalid_arg "Intvec.truncate_last: empty";
  t.len <- t.len - 1

let iter f t =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (Array.unsafe_get t.data i)
  done;
  !acc

let to_array t = Array.sub t.data 0 t.len

let of_array a = { data = (if Array.length a = 0 then Array.make 1 0 else Array.copy a); len = Array.length a }

let exists p t =
  let rec go i = i < t.len && (p (Array.unsafe_get t.data i) || go (i + 1)) in
  go 0
