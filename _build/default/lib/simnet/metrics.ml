type round_summary = {
  round : int;
  msgs : int;
  bits : int;
  max_node_bits : int;
  max_node_msgs : int;
}

type t = {
  node_bits : int array;
  node_msgs : int array;
  mutable touched : int list; (* nodes with non-zero counters this round *)
  mutable round : int;
  mutable total_msgs : int;
  mutable total_bits : int;
  mutable max_node_bits_ever : int;
  mutable max_node_msgs_ever : int;
  mutable history : round_summary list; (* newest first *)
  mutable cur_msgs : int;
  mutable cur_bits : int;
}

let create ~n =
  if n <= 0 then invalid_arg "Metrics.create: n <= 0";
  {
    node_bits = Array.make n 0;
    node_msgs = Array.make n 0;
    touched = [];
    round = 0;
    total_msgs = 0;
    total_bits = 0;
    max_node_bits_ever = 0;
    max_node_msgs_ever = 0;
    history = [];
    cur_msgs = 0;
    cur_bits = 0;
  }

let touch t node =
  if t.node_bits.(node) = 0 && t.node_msgs.(node) = 0 then
    t.touched <- node :: t.touched

let on_send t ~node ~bits =
  touch t node;
  t.node_bits.(node) <- t.node_bits.(node) + bits;
  t.node_msgs.(node) <- t.node_msgs.(node) + 1;
  t.cur_bits <- t.cur_bits + bits

let on_recv t ~node ~bits =
  touch t node;
  t.node_bits.(node) <- t.node_bits.(node) + bits;
  t.node_msgs.(node) <- t.node_msgs.(node) + 1;
  t.cur_bits <- t.cur_bits + bits;
  t.cur_msgs <- t.cur_msgs + 1

let finish_round t =
  let max_bits = ref 0 and max_msgs = ref 0 in
  List.iter
    (fun node ->
      if t.node_bits.(node) > !max_bits then max_bits := t.node_bits.(node);
      if t.node_msgs.(node) > !max_msgs then max_msgs := t.node_msgs.(node);
      t.node_bits.(node) <- 0;
      t.node_msgs.(node) <- 0)
    t.touched;
  t.touched <- [];
  let summary =
    {
      round = t.round;
      msgs = t.cur_msgs;
      bits = t.cur_bits;
      max_node_bits = !max_bits;
      max_node_msgs = !max_msgs;
    }
  in
  t.total_msgs <- t.total_msgs + t.cur_msgs;
  t.total_bits <- t.total_bits + t.cur_bits;
  if !max_bits > t.max_node_bits_ever then t.max_node_bits_ever <- !max_bits;
  if !max_msgs > t.max_node_msgs_ever then t.max_node_msgs_ever <- !max_msgs;
  t.history <- summary :: t.history;
  t.round <- t.round + 1;
  t.cur_msgs <- 0;
  t.cur_bits <- 0;
  summary

let rounds t = t.round
let total_msgs t = t.total_msgs
let total_bits t = t.total_bits
let max_node_bits_ever t = t.max_node_bits_ever
let max_node_msgs_ever t = t.max_node_msgs_ever
let history t = List.rev t.history
