let id_bits n =
  if n <= 0 then invalid_arg "Msg_size.id_bits: n <= 0";
  let rec go bits cap = if cap >= n then bits else go (bits + 1) (cap * 2) in
  go 1 2

let header_bits = 16

let ids_msg ~id_bits ~count =
  if count < 0 then invalid_arg "Msg_size.ids_msg: negative count";
  header_bits + (id_bits * count)
