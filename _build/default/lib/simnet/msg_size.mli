(** Communication-work accounting (Section 1.1: the communication work of a
    node is the total number of bits it sends and receives in a round).

    Identifiers have size O(log n); we charge exactly [id_bits n] bits per
    node id carried in a message plus a small constant header per message. *)

val id_bits : int -> int
(** [id_bits n] = bits needed for an id in a system of [n] nodes:
    ceil(log2 n), at least 1. *)

val header_bits : int
(** Fixed per-message framing cost (message type tag etc.). *)

val ids_msg : id_bits:int -> count:int -> int
(** Cost in bits of a message carrying [count] node ids. *)
