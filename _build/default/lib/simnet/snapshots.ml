type 'a t = {
  lateness : int;
  (* Ring of the last [lateness + 1] snapshots; older ones can never be the
     newest-visible again but [view_at] may still want a small window, so we
     keep exactly lateness + 1. *)
  mutable ring : 'a option array;
  mutable count : int;
}

let create ~lateness =
  if lateness < 0 then invalid_arg "Snapshots.create: negative lateness";
  { lateness; ring = Array.make (lateness + 1) None; count = 0 }

let lateness t = t.lateness

let push t snap =
  t.ring.(t.count mod Array.length t.ring) <- Some snap;
  t.count <- t.count + 1

let pushed t = t.count

let view_at t r =
  if r < 0 || r >= t.count then None
  else if
    (* Visible iff at least [lateness] rounds old relative to the current
       round (count - 1). *)
    t.count - 1 - r < t.lateness
  then None
  else if t.count - r > Array.length t.ring then None
  else t.ring.(r mod Array.length t.ring)

let view t =
  let r = t.count - 1 - t.lateness in
  if r < 0 then None else view_at t r
