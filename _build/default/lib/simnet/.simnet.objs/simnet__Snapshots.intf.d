lib/simnet/snapshots.mli:
