lib/simnet/metrics.ml: Array List
