lib/simnet/engine.mli: Metrics
