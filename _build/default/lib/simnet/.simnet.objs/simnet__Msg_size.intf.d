lib/simnet/msg_size.mli:
