lib/simnet/msg_size.ml:
