lib/simnet/engine.ml: Array List Metrics
