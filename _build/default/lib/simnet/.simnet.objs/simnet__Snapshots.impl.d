lib/simnet/snapshots.ml: Array
