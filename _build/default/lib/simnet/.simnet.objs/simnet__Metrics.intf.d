lib/simnet/metrics.mli:
