(** Delayed observation for t-late adversaries (Section 1.1): the adversary
    may only use topological information that is at least [lateness] rounds
    old.  The simulation pushes one topology snapshot per round; [view]
    returns the newest snapshot old enough for the adversary to see. *)

type 'a t

val create : lateness:int -> 'a t
(** [lateness = 0] models the 0-late (fully informed) adversary. *)

val lateness : 'a t -> int

val push : 'a t -> 'a -> unit
(** Record the snapshot for the next round (first push = round 0). *)

val pushed : 'a t -> int
(** Number of snapshots recorded so far. *)

val view : 'a t -> 'a option
(** Newest snapshot that is at least [lateness] rounds old, i.e. if [k]
    snapshots have been pushed (rounds [0..k-1], current round [k-1]), the
    snapshot of round [k - 1 - lateness]; [None] while no snapshot is old
    enough. *)

val view_at : 'a t -> int -> 'a option
(** [view_at t r] is the snapshot of round [r] if the adversary may see it
    (i.e. it is old enough) and it is still retained. *)
