(** Per-round communication metrics for a simulated network.

    Tracks, for the current round, the number of messages and bits each node
    has sent and received; [finish_round] folds these into running summaries
    and resets the per-node counters.  The headline quantity is
    [max_node_bits]: the worst per-node communication work in any round,
    which the paper requires to stay polylogarithmic. *)

type t

type round_summary = {
  round : int;
  msgs : int;  (** messages delivered this round *)
  bits : int;  (** bits sent + received this round, summed over nodes *)
  max_node_bits : int;  (** max over nodes of (sent + received bits) *)
  max_node_msgs : int;  (** max over nodes of (sent + received messages) *)
}

val create : n:int -> t
val on_send : t -> node:int -> bits:int -> unit
val on_recv : t -> node:int -> bits:int -> unit

val finish_round : t -> round_summary
(** Summarize and reset the per-node counters; rounds number from 0. *)

val rounds : t -> int
val total_msgs : t -> int
val total_bits : t -> int
val max_node_bits_ever : t -> int
(** Max per-node per-round communication work seen over the whole run. *)

val max_node_msgs_ever : t -> int
val history : t -> round_summary list
(** Oldest first. *)
