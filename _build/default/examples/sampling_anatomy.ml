(* A guided tour of the rapid node sampling primitive (Algorithm 1): what
   the multiset schedule looks like, how the walk length doubles per
   iteration, and why the result costs exponentially fewer rounds than
   plain random walks.

   Run with:  dune exec examples/sampling_anatomy.exe *)

let () =
  let n = 4096 and d = 8 in
  let alpha = 1.0 and eps = 0.5 and c = 2.0 in
  Printf.printf "network: H-graph, n = %d, degree d = %d\n\n" n d;

  (* The walk length Lemma 2 demands for mixing, and the doubling budget
     that reaches it. *)
  let len = Core.Params.walk_length ~alpha ~d ~n in
  let t = Core.Params.iterations_hgraph ~alpha ~d ~n in
  Printf.printf
    "Lemma 2 wants walks of length 2 alpha log_(d/4) n = %d;\n\
     pointer doubling reaches length 2^T with T = ceil(log2 %d) = %d\n\n"
    len len t;

  (* The m_i schedule of Lemma 7: each iteration hands out m_i requests
     from a multiset of m_(i-1) elements; the slack (2+eps)^(T-i) is what
     absorbs the binomially distributed request load. *)
  let schedule = Core.Params.schedule_hgraph ~eps ~c ~n ~t in
  Printf.printf "the multiset schedule m_i = ceil((2+eps)^(T-i) c log2 n):\n";
  Array.iteri
    (fun i m ->
      Printf.printf "  after iteration %d: |M| = %-6d (walks of length %d)\n" i
        m (1 lsl i))
    schedule;
  Printf.printf "\n";

  (* Run it and watch the numbers come out as promised. *)
  let rng = Prng.Stream.of_seed 1234L in
  let g = Topology.Hgraph.random (Prng.Stream.split rng) ~n ~d in
  let r = Core.Rapid_hgraph.run ~eps ~c ~alpha ~rng:(Prng.Stream.split rng) g in
  Printf.printf
    "measured: %d communication rounds (2 per iteration), %d samples/node,\n\
     %d underflows, max %d bits of per-node work in any round\n\n"
    r.Core.Sampling_result.rounds
    (Core.Sampling_result.samples_per_node r)
    r.Core.Sampling_result.underflows r.Core.Sampling_result.max_round_node_bits;

  (* The same walks done naively. *)
  let p = Core.Rapid_hgraph.run_plain ~alpha ~k:4 ~rng:(Prng.Stream.split rng) g in
  Printf.printf
    "plain random walks of the same length: %d rounds - the gap is the \n\
     paper's exponential improvement (%d = O(log log n) vs %d = O(log n)).\n\n"
    p.Core.Sampling_result.rounds r.Core.Sampling_result.rounds
    p.Core.Sampling_result.rounds;

  (* And the message-level execution agrees with the array implementation. *)
  let e = Core.Rapid_hgraph.run_on_engine ~eps ~c ~alpha ~rng:(Prng.Stream.split rng) g in
  Printf.printf
    "the same algorithm run message-by-message on the synchronous engine:\n\
     %d rounds, %d samples/node - identical semantics, every request and\n\
     response a real delivered message.\n"
    e.Core.Sampling_result.rounds
    (Core.Sampling_result.samples_per_node e)
