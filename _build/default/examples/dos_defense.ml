(* Scenario: a service overlay under a sustained denial-of-service attack.

   The attacker can block a quarter of all servers every round and knows
   the full topology — but only with a delay.  We run the same group-kill
   attack twice: once fully informed (0-late) and once delayed by one
   reconfiguration period (= Theta(log log n) rounds).  The Section 5
   network shrugs off the delayed attacker and dies instantly to the
   informed one: the entire value of constant reconfiguration in one plot.

   Run with:  dune exec examples/dos_defense.exe *)

let n = 4096
let frac = 0.25

let run ~lateness ~windows =
  let s = Prng.Stream.of_seed 13L in
  let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n () in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s) ~lateness ~frac
  in
  let p = Core.Dos_network.period net in
  Printf.printf
    "attacker lateness %d rounds (reconfiguration period is %d):\n" lateness p;
  for w = 1 to windows do
    let starved = ref 0 and disconnected = ref 0 and min_avail = ref max_int in
    for _ = 1 to p do
      Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
      let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
      let r = Core.Dos_network.run_round net ~blocked in
      if r.Core.Dos_network.starved_groups > 0 then incr starved;
      if not r.Core.Dos_network.connected then incr disconnected;
      min_avail := min !min_avail r.Core.Dos_network.min_group_available
    done;
    Printf.printf
      "  window %2d: starved rounds %2d/%2d, disconnected %2d/%2d, weakest \
       group had %d available members%s\n"
      w !starved p !disconnected p
      (if !min_avail = max_int then 0 else !min_avail)
      (match Core.Dos_network.last_window net with
      | Some lw when lw.Core.Dos_network.window = w - 1 ->
          if lw.Core.Dos_network.reconfigured then " -> groups reshuffled"
          else " -> RECONFIGURATION FAILED"
      | _ -> "")
  done;
  print_newline ()

let () =
  Printf.printf
    "DoS defense: n = %d servers, attacker blocks %.0f%% of them every round\n\n"
    n (100. *. frac);
  run ~lateness:0 ~windows:4;
  run ~lateness:20 ~windows:4;
  print_endline
    "A 0-late attacker sees today's groups and suffocates them outright; an\n\
     attacker delayed past one reconfiguration period only ever sees groups\n\
     that no longer exist, so every group keeps available members and the\n\
     non-blocked nodes stay connected (Theorem 6)."
