(* Scenario: a Tor-style relay network that keeps its anonymity guarantees
   while under attack (Section 7.1).

   Users hand their requests to any reachable server; the server fans the
   message out to its destination group D(v), whose members relay it to the
   recipient and carry the reply back.  Because the groups are re-drawn
   uniformly at random every Theta(log log n) rounds, an attacker watching
   (stale) topology cannot predict which servers will act as the exit
   relays for anybody.

   Run with:  dune exec examples/anonymizer_demo.exe *)

let n = 4096
let requests = 5000

let () =
  let s = Prng.Stream.of_seed 99L in
  let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n () in
  let anon = Apps.Anonymizer.create ~net ~rng:(Prng.Stream.split s) in
  Printf.printf
    "anonymizer: %d relay servers in %d groups over a %d-dimensional \
     hypercube\n\n"
    n
    (Core.Dos_network.supernode_count net)
    (Core.Dos_network.dimension net);
  List.iter
    (fun frac ->
      let blocked = Array.make n false in
      if frac > 0.0 then
        Array.iter
          (fun v -> blocked.(v) <- true)
          (Prng.Stream.sample_distinct s n
             ~k:(int_of_float (frac *. float_of_int n)));
      let delivered = ref 0 in
      let exits = Array.make (Core.Dos_network.supernode_count net) 0 in
      let relays = Stats.Moments.create () in
      for _ = 1 to requests do
        let r = Apps.Anonymizer.request anon ~blocked in
        if r.Apps.Anonymizer.delivered then begin
          incr delivered;
          Stats.Moments.add_int relays r.Apps.Anonymizer.relays_used;
          match r.Apps.Anonymizer.exit_group with
          | Some g -> exits.(g) <- exits.(g) + 1
          | None -> ()
        end
      done;
      Printf.printf
        "blocking %4.0f%% of servers: %d/%d delivered in 4 rounds each; \
         exit-group entropy %.4f of maximum; %.1f relays/request\n"
        (100. *. frac) !delivered requests
        (Stats.Entropy.normalized_of_counts exits)
        (Stats.Moments.mean relays))
    [ 0.0; 0.25; 0.4 ];
  print_newline ();
  print_endline
    "Every request exits through a group chosen uniformly at random w.r.t.\n\
     anything the attacker can observe, and redundancy inside the group\n\
     keeps delivery reliable even with 40% of all relays blocked\n\
     (Corollary 2)."
