examples/sampling_anatomy.mli:
