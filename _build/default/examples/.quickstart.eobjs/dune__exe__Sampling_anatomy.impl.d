examples/sampling_anatomy.ml: Array Core Printf Prng Topology
