examples/quickstart.mli:
