examples/quickstart.ml: Array Core Printf Prng Stats Topology
