examples/dht_pubsub_demo.mli:
