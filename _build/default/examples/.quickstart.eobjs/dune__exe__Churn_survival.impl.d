examples/churn_survival.ml: Array Core Printf Prng
