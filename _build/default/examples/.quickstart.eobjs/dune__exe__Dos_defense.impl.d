examples/dos_defense.ml: Core Printf Prng Topology
