examples/anonymizer_demo.mli:
