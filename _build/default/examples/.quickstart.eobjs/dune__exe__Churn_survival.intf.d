examples/churn_survival.mli:
