examples/anonymizer_demo.ml: Apps Array Core List Printf Prng Stats
