examples/dht_pubsub_demo.ml: Apps Array List Option Printf Prng
