(* Quickstart: build a random H-graph overlay, let every node sample peers
   with the rapid node sampling primitive (Algorithm 1), and rebuild the
   whole topology with Algorithm 3 — the two core operations everything
   else in this library composes.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let rng = Prng.Stream.of_seed 42L in

  (* 1. A uniformly random H-graph: 1000 nodes, degree 8 (four oriented
     Hamilton cycles).  This is the expander the paper's Section 4 network
     lives on. *)
  let n = 1000 in
  let g = Topology.Hgraph.random (Prng.Stream.split rng) ~n ~d:8 in
  Printf.printf "H-graph: %d nodes, degree %d, %d Hamilton cycles\n" n
    (Topology.Hgraph.degree g) (Topology.Hgraph.cycles g);

  (* 2. Rapid node sampling: every node obtains ~c log2 n almost-uniform
     peer samples in O(log log n) communication rounds. *)
  let r = Core.Rapid_hgraph.run ~rng:(Prng.Stream.split rng) g in
  Printf.printf
    "rapid sampling: %d rounds (walk length %d), >= %d samples/node, max \
     per-node work %d bits/round\n"
    r.Core.Sampling_result.rounds r.Core.Sampling_result.walk_length
    (Core.Sampling_result.samples_per_node r)
    r.Core.Sampling_result.max_round_node_bits;

  (* Compare with the plain random-walk baseline the paper improves on. *)
  let p = Core.Rapid_hgraph.run_plain ~k:4 ~rng:(Prng.Stream.split rng) g in
  Printf.printf "plain walks:    %d rounds for the same walk length class\n"
    p.Core.Sampling_result.rounds;

  (* 3. Check the samples really are uniform. *)
  let counts = Array.make n 0 in
  Array.iter
    (Array.iter (fun v -> counts.(v) <- counts.(v) + 1))
    r.Core.Sampling_result.samples;
  Printf.printf "uniformity: chi-square p = %.3f (TV %.4f, noise floor %.4f)\n"
    (Stats.Chi_square.test_uniform counts)
    (Stats.Distance.tv_counts_uniform counts)
    (Stats.Distance.expected_tv_noise_floor
       ~samples:(Array.fold_left ( + ) 0 counts)
       ~cells:n);

  (* 4. One full network reconfiguration epoch (Algorithm 3 on every
     cycle): the topology is replaced by a fresh uniformly random H-graph,
     integrating two joiners and dropping three leavers on the way. *)
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split rng) ~n () in
  let report =
    Core.Churn_network.epoch net ~leaves:[| 7; 8; 9 |]
      ~join_introducers:[| 0; 1 |]
  in
  Printf.printf
    "reconfiguration: %d -> %d nodes in %d rounds; valid=%b connected=%b\n"
    report.Core.Churn_network.n_before report.Core.Churn_network.n_after
    report.Core.Churn_network.rounds report.Core.Churn_network.valid
    report.Core.Churn_network.connected
