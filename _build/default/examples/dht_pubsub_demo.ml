(* Scenario: a robust key-value store and a news feed on top of it
   (Sections 7.2 and 7.3).

   Keys hash to supernodes of a k-ary hypercube; each supernode's data is
   replicated across its whole representative group, and requests route by
   correcting one coordinate per hop.  Because data is keyed to supernodes
   — not to servers — the continuous reconfiguration that defeats DoS
   attacks never has to move a single byte between supernodes.

   Run with:  dune exec examples/dht_pubsub_demo.exe *)

let () =
  let s = Prng.Stream.of_seed 2718L in
  let n = 2048 in
  let dht = Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s) ~n () in
  Printf.printf
    "robust DHT: %d servers, %d supernodes (k=%d, d=%d), ~%d replicas/key\n\n"
    n
    (Apps.Robust_dht.supernode_count dht)
    (Apps.Robust_dht.k dht) (Apps.Robust_dht.dimension dht)
    (n / Apps.Robust_dht.supernode_count dht);

  (* Block 5% of servers at random. *)
  let blocked = Array.make n false in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Prng.Stream.sample_distinct s n ~k:(n / 20));

  (* Store a user table. *)
  let users = [ "ada"; "grace"; "edsger"; "barbara"; "donald" ] in
  List.iteri
    (fun i name ->
      let r =
        Apps.Robust_dht.execute dht ~blocked
          (Apps.Robust_dht.Write (1000 + i, name))
      in
      Printf.printf "put user[%d] = %-8s  (routed in %d hops)\n" i name
        r.Apps.Robust_dht.hops)
    users;

  (* Reconfigure — the anti-DoS reshuffle — and read everything back. *)
  Apps.Robust_dht.reshuffle dht;
  print_endline "\n... network reconfigured (all groups reshuffled) ...\n";
  List.iteri
    (fun i expected ->
      let r =
        Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read (1000 + i))
      in
      Printf.printf "get user[%d] -> %-8s %s\n" i
        (Option.value ~default:"MISSING" r.Apps.Robust_dht.value)
        (if r.Apps.Robust_dht.value = Some expected then "ok" else "WRONG"))
    users;

  (* A news feed on the pub-sub layer. *)
  let ps = Apps.Pubsub.create ~dht in
  let topic = 7 in
  print_endline "\nnews feed (pub-sub topic 7):";
  let headlines =
    [
      "overlay reconfigures itself";
      "adversary blocks 25% of nodes, nothing happens";
      "pointer doubling considered helpful";
    ]
  in
  List.iter
    (fun h ->
      match Apps.Pubsub.publish ps ~blocked ~topic ~payload:h with
      | Some seq -> Printf.printf "  published #%d: %s\n" seq h
      | None -> print_endline "  publish FAILED")
    headlines;
  (match Apps.Pubsub.fetch_since ps ~blocked ~topic ~since:1 with
  | Some msgs ->
      print_endline "  subscriber catching up from #1:";
      List.iter (Printf.printf "    -> %s\n") msgs
  | None -> print_endline "  fetch FAILED");
  print_endline
    "\nAll operations keep working across reconfigurations and blocked\n\
     servers: replication lives inside groups, routing detours around\n\
     starved groups, and publication counters make delivery exactly-once\n\
     and ordered (Theorem 8)."
