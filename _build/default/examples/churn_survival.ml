(* Scenario: a file-sharing swarm with brutal membership turnover.

   Every epoch an omniscient adversary forces 40% of the peers out and
   introduces 45% new ones (churn rate ~2 in the paper's terms, i.e. the
   membership can halve or double) — the regime the intro motivates with
   peer-to-peer systems.  The reconfigured overlay (Section 4) survives
   every epoch; for contrast we feed the same stream to a static overlay
   where leavers vanish and joiners hang off a single edge, and watch it
   fragment.

   Run with:  dune exec examples/churn_survival.exe *)

let epochs = 12
let n0 = 800

let () =
  let rng = Prng.Stream.of_seed 7L in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split rng) ~n:n0 () in
  let baseline = Core.Static_baseline.create ~rng:(Prng.Stream.split rng) ~n:n0 () in
  let s = Prng.Stream.split rng in
  Printf.printf "%-6s %-22s %-30s %s\n" "epoch" "reconfigured overlay"
    "static overlay" "";
  Printf.printf "%-6s %-22s %-30s\n" "" "size    ok   rounds" "alive  connected  giant";
  let baseline_alive_join b rng count =
    let alive = Core.Static_baseline.alive_positions b in
    Array.init count (fun _ ->
        alive.(Prng.Stream.int rng (Array.length alive)))
  in
  for e = 1 to epochs do
    (* The adversary plans against the *current* reconfigured topology. *)
    let plan =
      Core.Churn_adversary.plan Core.Churn_adversary.Random_churn
        ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net) ~leave_frac:0.40 ~join_frac:0.45
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    (* The static overlay gets a stream of the same volume. *)
    let alive = Core.Static_baseline.alive_positions baseline in
    let n_alive = Array.length alive in
    let leave_count = min (n_alive - 4) (int_of_float (0.40 *. float_of_int n_alive)) in
    let kill_idx = Prng.Stream.sample_distinct s n_alive ~k:leave_count in
    let kill = Array.map (fun i -> alive.(i)) kill_idx in
    Core.Static_baseline.apply baseline ~leaves:kill ~join_introducers:[||];
    let joins =
      baseline_alive_join baseline s (int_of_float (0.45 *. float_of_int n_alive))
    in
    Core.Static_baseline.apply baseline ~leaves:[||] ~join_introducers:joins;
    Printf.printf "%-6d %-7d %-5b %-8d %-7d %-10b %.1f%%\n" e
      r.Core.Churn_network.n_after
      (r.Core.Churn_network.valid && r.Core.Churn_network.connected)
      r.Core.Churn_network.rounds
      (Core.Static_baseline.alive_count baseline)
      (Core.Static_baseline.is_connected baseline)
      (100.0 *. Core.Static_baseline.largest_component_fraction baseline)
  done;
  print_newline ();
  print_endline
    "The reconfigured overlay re-draws its whole topology every O(log log n)\n\
     rounds, so every epoch ends with a fresh connected expander over exactly\n\
     the surviving + joining peers (Theorem 5).  The static overlay loses\n\
     whole branches whenever an introducer dies.";
  print_endline
    "(Joiners in the static overlay attach by one edge - the strategy JXTA-\n\
     style systems use between refreshes.)"
