bench/exp_reconfig.ml: Array Buffer Core Exp_util Hashtbl List Option Parallel Printf Prng Seq Stats
