bench/main.ml: Array Exp_apps Exp_dos Exp_expansion Exp_groupsim Exp_reconfig Exp_sampling List Micro Printf Sys Unix
