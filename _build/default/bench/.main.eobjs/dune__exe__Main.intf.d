bench/main.mli:
