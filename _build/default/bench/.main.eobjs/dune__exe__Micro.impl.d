bench/micro.ml: Analyze Apps Array Bechamel Bechamel_notty Benchmark Core Instance Lazy List Measure Notty_unix Prng Staged Test Time Toolkit Topology Unix
