bench/exp_util.ml: Array Hashtbl Int64 List Prng Stats
