bench/exp_sampling.ml: Array Core Exp_util List Parallel Printf Prng Stats Topology
