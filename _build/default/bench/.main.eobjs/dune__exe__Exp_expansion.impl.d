bench/exp_expansion.ml: Core Exp_util Printf Prng Stats Topology
