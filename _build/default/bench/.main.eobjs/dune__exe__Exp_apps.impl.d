bench/exp_apps.ml: Apps Array Core Exp_util Float List Printf Prng Simnet Stats Topology
