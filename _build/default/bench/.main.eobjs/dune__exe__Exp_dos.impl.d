bench/exp_dos.ml: Array Core Exp_util List Printf Prng Stats Topology
