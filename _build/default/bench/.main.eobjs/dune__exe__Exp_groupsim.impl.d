bench/exp_groupsim.ml: Array Core Exp_util List Parallel Printf Prng Simnet Stats Topology
