(* Shared helpers for the experiment harness. *)

let master_seed = 0x2016_5AAAL

let seed_for label trial =
  (* Derive a stable seed per (experiment, trial). *)
  let h = Hashtbl.hash (label, trial) in
  Prng.Splitmix64.mix (Int64.add master_seed (Int64.of_int h))

let rng_for label trial = Prng.Stream.of_seed (seed_for label trial)

let ns_pow2 lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let mean_of_int_list l =
  if l = [] then 0.0
  else
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let max_of_int_list l = List.fold_left max min_int l

let pct x = Stats.Table.cell_pct x
let flt ?decimals x = Stats.Table.cell_float ?decimals x
let int_c = Stats.Table.cell_int
let bool_c = Stats.Table.cell_bool

let growth_of_series series =
  Stats.Fit.growth_to_string (Stats.Fit.classify_growth (Array.of_list series))
