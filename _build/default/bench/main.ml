(* Benchmark harness entry point.

   Usage:  dune exec bench/main.exe [-- e1 e2 ... | all | micro]

   Each `eK` regenerates the table of experiment K from the experiment
   index in DESIGN.md (the paper has no tables of its own; each experiment
   reproduces the quantitative content of a theorem or lemma).  `all` runs
   every table; `micro` runs the Bechamel wall-clock benches. *)

let experiments =
  [
    ("e1", "Thm 2: rapid sampling rounds/work on H-graphs", Exp_sampling.e1);
    ("e2", "Thm 3: rapid sampling rounds/work on the hypercube", Exp_sampling.e2);
    ("e3", "Lemmas 2/3: sampling distribution vs uniform", Exp_sampling.e3);
    ("e4", "Lemmas 7/9: schedule-constant failure threshold", Exp_sampling.e4);
    ("e5", "Lemmas 11-13: reconfiguration internals vs n", Exp_reconfig.e5);
    ("e6", "Lemma 10: uniformity over Hamilton cycles", Exp_reconfig.e6);
    ("e7", "Thm 5: connectivity under adversarial churn", Exp_reconfig.e7);
    ("e8", "Lemmas 16/17: group concentration under attack", Exp_dos.e8);
    ("e9", "Thm 6: survival vs adversary lateness", Exp_dos.e9);
    ("e10", "Thm 7 / Lemma 18: combined churn + DoS", Exp_dos.e10);
    ("e11", "Cor 2: robust anonymous routing", Exp_apps.e11);
    ("e12", "Thm 8: robust DHT and pub-sub", Exp_apps.e12);
    ("e13", "Lemmas 14/15: message-level group simulation", Exp_groupsim.e13);
    ("e14", "Cor 1: expansion preserved across reconfigurations", Exp_expansion.e14);
  ]

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, descr, f) ->
      Printf.printf "\n[%s] %s\n%!" name descr;
      let t0 = Unix.gettimeofday () in
      f ();
      Printf.printf "  (%s took %.1fs)\n%!" name (Unix.gettimeofday () -. t0)
  | None ->
      Printf.eprintf "unknown experiment %S\n" name;
      exit 2

let usage () =
  print_endline
    "usage: main.exe [e1 .. e14 | all | micro]   (default: all)";
  print_endline "experiments:";
  List.iter
    (fun (n, descr, _) -> Printf.printf "  %-4s %s\n" n descr)
    experiments

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  match args with
  | [] | [ "all" ] ->
      List.iter (fun (n, _, _) -> run_one n) experiments;
      print_endline "\nAll experiment tables regenerated.";
      print_endline "Run with `micro` for the Bechamel wall-clock benches."
  | [ "micro" ] -> Micro.run ()
  | [ "help" ] | [ "--help" ] | [ "-h" ] -> usage ()
  | names -> List.iter run_one names
