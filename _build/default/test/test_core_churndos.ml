(* Tests for Section 6: the split/merge supernode tree and the combined
   churn+DoS network (Lemma 18 / Theorem 7 invariants). *)

module Sm = Core.Split_merge

let lbl bits dim = { Sm.bits; dim }

(* ---------- labels ---------- *)

let test_label_children_parent () =
  let x = lbl 0b101 3 in
  Alcotest.(check bool) "child0" true (Sm.child0 x = lbl 0b0101 4);
  Alcotest.(check bool) "child1" true (Sm.child1 x = lbl 0b1101 4);
  Alcotest.(check bool) "parent" true (Sm.parent (Sm.child0 x) = x);
  Alcotest.(check bool) "parent of child1" true (Sm.parent (Sm.child1 x) = x);
  Alcotest.(check bool) "sibling" true
    (Sm.sibling (Sm.child0 x) = Sm.child1 x)

let test_label_prefix () =
  Alcotest.(check bool) "prefix" true (Sm.is_prefix (lbl 0b01 2) (lbl 0b1101 4));
  Alcotest.(check bool) "not prefix" false
    (Sm.is_prefix (lbl 0b10 2) (lbl 0b1101 4));
  Alcotest.(check bool) "self prefix" true (Sm.is_prefix (lbl 0b1 1) (lbl 0b1 1))

let test_label_connected () =
  (* Equal-dimension labels: standard hypercube adjacency. *)
  Alcotest.(check bool) "hamming 1" true (Sm.connected (lbl 0b000 3) (lbl 0b001 3));
  Alcotest.(check bool) "hamming 2" false (Sm.connected (lbl 0b000 3) (lbl 0b011 3));
  (* Mixed dimensions: compare on the shorter prefix. *)
  Alcotest.(check bool) "short vs long" true
    (Sm.connected (lbl 0b01 2) (lbl 0b1101 4) = Sm.connected (lbl 0b1101 4) (lbl 0b01 2));
  Alcotest.(check bool) "prefix-different-in-one" true
    (Sm.connected (lbl 0b00 2) (lbl 0b1101 4)
    = (Topology.Hypercube.hamming 0b00 (0b1101 land 0b11) = 1))

let test_label_guards () =
  Alcotest.check_raises "root has no parent"
    (Invalid_argument "Split_merge.parent: root") (fun () ->
      ignore (Sm.parent (lbl 0 0)));
  Alcotest.check_raises "bits exceed dim"
    (Invalid_argument "Split_merge.child0: bits exceed dim") (fun () ->
      ignore (Sm.child0 (lbl 0b100 2)))

(* ---------- leaf tree ---------- *)

let tree_of dims_bits =
  let t = Sm.create () in
  List.iter (fun (bits, dim, v) -> Sm.add_leaf t (lbl bits dim) v) dims_bits;
  t

let test_tree_add_conflicts () =
  let t = tree_of [ (0b0, 1, "a") ] in
  Alcotest.check_raises "prefix conflict"
    (Invalid_argument "Split_merge.add_leaf: conflicting leaf") (fun () ->
      Sm.add_leaf t (lbl 0b00 2) "b");
  Alcotest.check_raises "equal conflict"
    (Invalid_argument "Split_merge.add_leaf: conflicting leaf") (fun () ->
      Sm.add_leaf t (lbl 0b0 1) "b")

let test_tree_split_merge_roundtrip () =
  let t = tree_of [ (0b0, 1, 10); (0b1, 1, 20) ] in
  Sm.split t (lbl 0b0 1) (fun v -> (v + 1, v + 2));
  Alcotest.(check int) "three leaves" 3 (Sm.leaf_count t);
  Alcotest.(check (option int)) "child0 value" (Some 11) (Sm.find t (lbl 0b00 2));
  Alcotest.(check (option int)) "child1 value" (Some 12) (Sm.find t (lbl 0b10 2));
  Alcotest.(check bool) "covers" true (Sm.covers t);
  Sm.merge t (lbl 0b00 2) ( + );
  Alcotest.(check int) "back to two" 2 (Sm.leaf_count t);
  Alcotest.(check (option int)) "merged value" (Some 23) (Sm.find t (lbl 0b0 1));
  Alcotest.(check bool) "still covers" true (Sm.covers t)

let test_tree_force_merge () =
  (* Merging x whose sibling was split forces the sibling subtree together
     first, exactly the paper's rule. *)
  let t = tree_of [ (0b0, 1, 1); (0b1, 1, 2) ] in
  Sm.split t (lbl 0b1 1) (fun v -> (v, v + 10));
  Sm.split t (lbl 0b01 2) (fun v -> (v, v + 100));
  (* leaves now: 0 (d1), 11 (d2), 001(d3 bits 0b001? careful) ... *)
  Alcotest.(check int) "four leaves" 4 (Sm.leaf_count t);
  (* merge leaf 0 (dim 1): sibling is the whole subtree under 1 *)
  Sm.merge t (lbl 0b0 1) ( + );
  Alcotest.(check int) "one leaf at root" 1 (Sm.leaf_count t);
  Alcotest.(check (option int)) "all values combined" (Some (1 + 2 + 12 + 102))
    (Sm.find t (lbl 0 0))

let test_tree_sample_weights () =
  (* leaves: 0 (dim 1, prob 1/2), 01 (dim 2, prob 1/4), 11 (dim 2, 1/4) *)
  let t = tree_of [ (0b0, 1, ()); (0b01, 2, ()); (0b11, 2, ()) ] in
  Alcotest.(check bool) "covers" true (Sm.covers t);
  let r = Prng.Stream.of_seed 77L in
  let c0 = ref 0 and c01 = ref 0 and c11 = ref 0 in
  let trials = 40_000 in
  for _ = 1 to trials do
    let l = Sm.sample t r in
    if l = lbl 0b0 1 then incr c0
    else if l = lbl 0b01 2 then incr c01
    else if l = lbl 0b11 2 then incr c11
    else Alcotest.fail "sampled a non-leaf"
  done;
  let near x target =
    abs_float ((float_of_int x /. float_of_int trials) -. target) < 0.02
  in
  Alcotest.(check bool) "P(dim1 leaf) = 1/2" true (near !c0 0.5);
  Alcotest.(check bool) "P(01) = 1/4" true (near !c01 0.25);
  Alcotest.(check bool) "P(11) = 1/4" true (near !c11 0.25)

let test_tree_covers_detects_gap () =
  let t = tree_of [ (0b0, 1, ()) ] in
  Alcotest.(check bool) "half the namespace missing" false (Sm.covers t)

let test_tree_min_max_dim () =
  let t = tree_of [ (0b0, 1, ()); (0b01, 2, ()); (0b11, 2, ()) ] in
  Alcotest.(check int) "min dim" 1 (Sm.min_dim t);
  Alcotest.(check int) "max dim" 2 (Sm.max_dim t)

(* ---------- weighted sampling primitive (Section 6) ---------- *)

let test_weighted_primitive_distribution () =
  (* Leaves of dimensions 1, 2, 2 must be sampled with probabilities
     1/2, 1/4, 1/4 by the virtual-cube construction. *)
  let t = tree_of [ (0b0, 1, ()); (0b01, 2, ()); (0b11, 2, ()) ] in
  let counts = Array.make 3 0 in
  List.iter
    (fun seed ->
      let rw =
        Core.Rapid_weighted.run ~c:4.0 ~rng:(Prng.Stream.of_seed seed) t
      in
      Alcotest.(check int) "virtual dim = max dim" 2
        rw.Core.Rapid_weighted.virtual_dim;
      Array.iter
        (Array.iter (fun leaf -> counts.(leaf) <- counts.(leaf) + 1))
        rw.Core.Rapid_weighted.pools)
    [ 1L; 2L; 3L; 4L; 5L; 6L; 7L; 8L ];
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  (* dense order is (dim, bits): leaf 0 = dim-1 leaf *)
  let p0 = float_of_int counts.(0) /. total in
  let p1 = float_of_int counts.(1) /. total in
  let p2 = float_of_int counts.(2) /. total in
  Alcotest.(check bool) (Printf.sprintf "P(dim1) = %.3f ~ 0.5" p0) true
    (abs_float (p0 -. 0.5) < 0.05);
  Alcotest.(check bool) (Printf.sprintf "P(01) = %.3f ~ 0.25" p1) true
    (abs_float (p1 -. 0.25) < 0.05);
  Alcotest.(check bool) (Printf.sprintf "P(11) = %.3f ~ 0.25" p2) true
    (abs_float (p2 -. 0.25) < 0.05)

let test_weighted_primitive_uniform_tree () =
  (* On a uniform-dimension tree the weighted primitive degenerates to the
     plain uniform one. *)
  let t = Sm.create () in
  for bits = 0 to 15 do
    Sm.add_leaf t (lbl bits 4) ()
  done;
  let counts = Array.make 16 0 in
  List.iter
    (fun seed ->
      let rw = Core.Rapid_weighted.run ~c:4.0 ~rng:(Prng.Stream.of_seed seed) t in
      Array.iter
        (Array.iter (fun leaf -> counts.(leaf) <- counts.(leaf) + 1))
        rw.Core.Rapid_weighted.pools)
    [ 11L; 12L; 13L ];
  Alcotest.(check bool) "uniform over equal-dim leaves" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_weighted_primitive_guards () =
  let t = tree_of [ (0b0, 1, ()) ] in
  Alcotest.check_raises "non-covering tree rejected"
    (Invalid_argument "Rapid_weighted.run: tree does not cover the namespace")
    (fun () ->
      ignore (Core.Rapid_weighted.run ~rng:(Prng.Stream.of_seed 1L) t))

(* ---------- churn+DoS network ---------- *)

let no_attack ~round:_ ~group_of ~n:_ = Array.make (Array.length group_of) false

let make_net ?(seed = 0xCD05L) n =
  let s = Prng.Stream.of_seed seed in
  Core.Churndos_network.create ~rng:(Prng.Stream.split s) ~n ()

let check_report ?(allow_starve = false) r =
  if not allow_starve then begin
    Alcotest.(check int) "no starvation" 0 r.Core.Churndos_network.starved_rounds;
    Alcotest.(check bool) "reconfigured" true r.Core.Churndos_network.reconfigured
  end;
  Alcotest.(check int) "never disconnected" 0
    r.Core.Churndos_network.disconnected_rounds;
  (* Lemma 18 invariants *)
  Alcotest.(check bool)
    (Printf.sprintf "dim spread %d <= 2" r.Core.Churndos_network.dim_spread)
    true
    (r.Core.Churndos_network.dim_spread <= 2);
  Alcotest.(check int) "Equation (1) holds" 0 r.Core.Churndos_network.eq1_violations

let test_initial_invariants () =
  let net = make_net 4096 in
  let dims = Core.Churndos_network.dims net in
  let mn = Array.fold_left min max_int dims
  and mx = Array.fold_left max 0 dims in
  Alcotest.(check bool) "spread <= 2" true (mx - mn <= 2);
  (* Lemma 18's absolute bounds: 0.5 log n < d(x) < log n + 2 *)
  Alcotest.(check bool) "0.5 log n < min dim" true (float_of_int mn > 0.5 *. 12.0 /. 2.0);
  Alcotest.(check bool) "max dim < log n + 2" true (mx < 14)

let test_steady_windows () =
  let net = make_net 2048 in
  for _ = 1 to 4 do
    let r =
      Core.Churndos_network.run_window net ~blocked_for_round:no_attack ~joins:0
        ~leave_frac:0.0
    in
    check_report r;
    Alcotest.(check int) "size stable" 2048 r.Core.Churndos_network.n_after
  done

let test_growth_triggers_splits () =
  let net = make_net 1024 in
  let sn_before = Core.Churndos_network.supernode_count net in
  let total_splits = ref 0 in
  for _ = 1 to 4 do
    let n = Core.Churndos_network.n net in
    let r =
      Core.Churndos_network.run_window net ~blocked_for_round:no_attack
        ~joins:n ~leave_frac:0.0
    in
    check_report r;
    total_splits := !total_splits + r.Core.Churndos_network.splits
  done;
  Alcotest.(check bool) "16x growth" true (Core.Churndos_network.n net >= 16_000);
  Alcotest.(check bool) "supernodes multiplied" true
    (Core.Churndos_network.supernode_count net > 4 * sn_before);
  Alcotest.(check bool) "splits happened" true (!total_splits > 0)

let test_shrink_triggers_merges () =
  let net = make_net 8192 in
  let sn_before = Core.Churndos_network.supernode_count net in
  let total_merges = ref 0 in
  for _ = 1 to 4 do
    let r =
      Core.Churndos_network.run_window net ~blocked_for_round:no_attack ~joins:0
        ~leave_frac:0.5
    in
    check_report r;
    total_merges := !total_merges + r.Core.Churndos_network.merges
  done;
  Alcotest.(check bool) "shrunk" true (Core.Churndos_network.n net < 1024);
  Alcotest.(check bool) "supernodes reduced" true
    (Core.Churndos_network.supernode_count net < sn_before / 4);
  Alcotest.(check bool) "merges happened" true (!total_merges > 0)

let test_combined_attack_and_churn () =
  let s = Prng.Stream.of_seed 0xABCL in
  let net = Core.Churndos_network.create ~rng:(Prng.Stream.split s) ~n:4096 () in
  let cube = Topology.Hypercube.create 10 in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s)
      ~lateness:(2 * Core.Churndos_network.period net)
      ~frac:0.25
  in
  let blocked_for_round ~round:_ ~group_of ~n =
    Core.Dos_adversary.observe adv ~group_of;
    Core.Dos_adversary.blocked_set adv ~cube ~n
  in
  let grow = ref true in
  for _ = 1 to 6 do
    let n = Core.Churndos_network.n net in
    let joins = if !grow then n / 3 else 0 in
    let leave_frac = if !grow then 0.0 else 0.25 in
    grow := not !grow;
    let r =
      Core.Churndos_network.run_window net ~blocked_for_round ~joins ~leave_frac
    in
    check_report r
  done

let test_starved_window_reported () =
  let net = make_net 1024 in
  (* block everyone in group 0 every round *)
  let blocked_for_round ~round:_ ~group_of ~n =
    let blocked = Array.make n false in
    Array.iteri (fun v g -> if g = 0 then blocked.(v) <- true) group_of;
    blocked
  in
  let r =
    Core.Churndos_network.run_window net ~blocked_for_round ~joins:50
      ~leave_frac:0.1
  in
  Alcotest.(check bool) "starvation detected" true
    (r.Core.Churndos_network.starved_rounds > 0);
  Alcotest.(check bool) "window not reconfigured" false
    r.Core.Churndos_network.reconfigured;
  Alcotest.(check int) "joiners not integrated" 0 r.Core.Churndos_network.joined;
  Alcotest.(check bool) "leavers still left" true
    (r.Core.Churndos_network.left > 0)

(* ---------- properties ---------- *)

let qcheck_tree_split_preserves_cover =
  QCheck.Test.make ~name:"random splits/merges preserve coverage" ~count:50
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, ops) ->
      let r = Prng.Stream.of_seed seed in
      let t = Sm.create () in
      Sm.add_leaf t (lbl 0 1) 0;
      Sm.add_leaf t (lbl 1 1) 0;
      for _ = 1 to ops do
        let ls = Sm.leaves t in
        let l, _ = List.nth ls (Prng.Stream.int r (List.length ls)) in
        if Prng.Stream.bool r && l.Sm.dim < 20 then
          Sm.split t l (fun v -> (v, v))
        else if l.Sm.dim > 1 then Sm.merge t l ( + )
      done;
      Sm.covers t)

let qcheck_windows_keep_lemma18 =
  QCheck.Test.make ~name:"windows maintain Lemma 18 invariants" ~count:5
    QCheck.(pair int64 (int_range 512 2048))
    (fun (seed, n) ->
      let s = Prng.Stream.of_seed seed in
      let net = Core.Churndos_network.create ~rng:(Prng.Stream.split s) ~n () in
      let ok = ref true in
      for i = 0 to 2 do
        let joins = if i mod 2 = 0 then Core.Churndos_network.n net / 4 else 0 in
        let leave_frac = if i mod 2 = 0 then 0.0 else 0.2 in
        let r =
          Core.Churndos_network.run_window net
            ~blocked_for_round:(fun ~round:_ ~group_of ~n:_ ->
              Array.make (Array.length group_of) false)
            ~joins ~leave_frac
        in
        if
          r.Core.Churndos_network.dim_spread > 2
          || r.Core.Churndos_network.eq1_violations > 0
          || not r.Core.Churndos_network.reconfigured
        then ok := false
      done;
      !ok)

let () =
  Alcotest.run "core-churndos"
    [
      ( "labels",
        [
          Alcotest.test_case "children/parent" `Quick test_label_children_parent;
          Alcotest.test_case "prefix" `Quick test_label_prefix;
          Alcotest.test_case "connected" `Quick test_label_connected;
          Alcotest.test_case "guards" `Quick test_label_guards;
        ] );
      ( "leaf-tree",
        [
          Alcotest.test_case "conflicts" `Quick test_tree_add_conflicts;
          Alcotest.test_case "split/merge roundtrip" `Quick
            test_tree_split_merge_roundtrip;
          Alcotest.test_case "force merge" `Quick test_tree_force_merge;
          Alcotest.test_case "sample weights" `Slow test_tree_sample_weights;
          Alcotest.test_case "coverage gap" `Quick test_tree_covers_detects_gap;
          Alcotest.test_case "min/max dim" `Quick test_tree_min_max_dim;
        ] );
      ( "weighted-primitive",
        [
          Alcotest.test_case "2^-d distribution" `Slow
            test_weighted_primitive_distribution;
          Alcotest.test_case "uniform tree degenerates" `Slow
            test_weighted_primitive_uniform_tree;
          Alcotest.test_case "guards" `Quick test_weighted_primitive_guards;
        ] );
      ( "network",
        [
          Alcotest.test_case "initial invariants" `Quick test_initial_invariants;
          Alcotest.test_case "steady windows" `Quick test_steady_windows;
          Alcotest.test_case "growth splits" `Slow test_growth_triggers_splits;
          Alcotest.test_case "shrink merges" `Slow test_shrink_triggers_merges;
          Alcotest.test_case "combined attack + churn (Thm 7)" `Slow
            test_combined_attack_and_churn;
          Alcotest.test_case "starved window reported" `Quick
            test_starved_window_reported;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ qcheck_tree_split_preserves_cover; qcheck_windows_keep_lemma18 ] );
    ]
