(* Tests for the PRNG substrate: determinism, splitting, distribution
   sanity, and the exactness properties the samplers rely on. *)

let stream () = Prng.Stream.of_seed 12345L

let test_splitmix_deterministic () =
  let a = Prng.Splitmix64.create 99L and b = Prng.Splitmix64.create 99L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Splitmix64.next a)
      (Prng.Splitmix64.next b)
  done

let test_splitmix_mix_bijective_sample () =
  (* mix is a bijection; distinct inputs give distinct outputs (spot check
     over a contiguous range). *)
  let seen = Hashtbl.create 1024 in
  for i = 0 to 1023 do
    let v = Prng.Splitmix64.mix (Int64.of_int i) in
    Alcotest.(check bool) "no collision" false (Hashtbl.mem seen v);
    Hashtbl.add seen v ()
  done

let test_xoshiro_known_nonzero () =
  let g = Prng.Xoshiro256.of_seed 0L in
  let all_zero = ref true in
  for _ = 1 to 10 do
    if Prng.Xoshiro256.next g <> 0L then all_zero := false
  done;
  Alcotest.(check bool) "produces non-zero output" false !all_zero

let test_xoshiro_copy_independent () =
  let g = Prng.Xoshiro256.of_seed 7L in
  ignore (Prng.Xoshiro256.next g);
  let h = Prng.Xoshiro256.copy g in
  let a = Prng.Xoshiro256.next g in
  let b = Prng.Xoshiro256.next h in
  Alcotest.(check int64) "copy continues identically" a b;
  (* advancing one must not affect the other *)
  ignore (Prng.Xoshiro256.next g);
  let c = Prng.Xoshiro256.next g and d = Prng.Xoshiro256.next h in
  Alcotest.(check bool) "streams diverge after different consumption" true
    (c <> d || a <> b)

let test_xoshiro_jump_changes_stream () =
  let g = Prng.Xoshiro256.of_seed 7L in
  let h = Prng.Xoshiro256.copy g in
  Prng.Xoshiro256.jump h;
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Xoshiro256.next g = Prng.Xoshiro256.next h then incr same
  done;
  Alcotest.(check bool) "jumped stream differs" true (!same < 4)

let test_xoshiro_zero_state_rejected () =
  Alcotest.check_raises "all-zero state"
    (Invalid_argument "Xoshiro256.of_state: all-zero state") (fun () ->
      ignore (Prng.Xoshiro256.of_state 0L 0L 0L 0L))

let test_stream_determinism () =
  let a = stream () and b = stream () in
  for _ = 1 to 200 do
    Alcotest.(check int) "same ints" (Prng.Stream.int a 1000)
      (Prng.Stream.int b 1000)
  done

let test_split_independence () =
  (* children from successive splits must differ from each other and from
     the parent stream *)
  let s = stream () in
  let c1 = Prng.Stream.split s and c2 = Prng.Stream.split s in
  let seq st = Array.init 32 (fun _ -> Prng.Stream.bits64 st) in
  let s1 = seq c1 and s2 = seq c2 and s0 = seq s in
  Alcotest.(check bool) "children differ" true (s1 <> s2);
  Alcotest.(check bool) "child differs from parent" true (s1 <> s0 && s2 <> s0)

let test_split_n () =
  let s = stream () in
  let kids = Prng.Stream.split_n s 5 in
  Alcotest.(check int) "five children" 5 (Array.length kids);
  let firsts = Array.map Prng.Stream.bits64 kids in
  let distinct = Hashtbl.create 8 in
  Array.iter (fun v -> Hashtbl.replace distinct v ()) firsts;
  Alcotest.(check int) "distinct first outputs" 5 (Hashtbl.length distinct)

let test_int_bounds () =
  let s = stream () in
  for _ = 1 to 10000 do
    let v = Prng.Stream.int s 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound" (Invalid_argument "Stream.int: bound <= 0")
    (fun () -> ignore (Prng.Stream.int s 0))

let test_int_uniform_chi2 () =
  let s = stream () in
  let counts = Array.make 10 0 in
  for _ = 1 to 100_000 do
    let v = Prng.Stream.int s 10 in
    counts.(v) <- counts.(v) + 1
  done;
  let p = Stats.Chi_square.test_uniform counts in
  Alcotest.(check bool) "uniform (p > 0.001)" true (p > 0.001)

let test_int_in () =
  let s = stream () in
  for _ = 1 to 1000 do
    let v = Prng.Stream.int_in s (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_float_range () =
  let s = stream () in
  for _ = 1 to 1000 do
    let v = Prng.Stream.float s 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_bernoulli_extremes () =
  let s = stream () in
  Alcotest.(check bool) "p=0 never" false (Prng.Stream.bernoulli s 0.0);
  Alcotest.(check bool) "p=1 always" true (Prng.Stream.bernoulli s 1.0)

let test_bernoulli_rate () =
  let s = stream () in
  let hits = ref 0 in
  for _ = 1 to 100_000 do
    if Prng.Stream.bernoulli s 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. 100_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (abs_float (rate -. 0.3) < 0.01)

let test_permutation_valid () =
  let s = stream () in
  let p = Prng.Stream.permutation s 100 in
  let seen = Array.make 100 false in
  Array.iter (fun v -> seen.(v) <- true) p;
  Alcotest.(check bool) "is a permutation" true (Array.for_all Fun.id seen)

let test_permutation_uniform () =
  (* All 6 permutations of 3 elements appear with equal frequency. *)
  let s = stream () in
  let counts = Hashtbl.create 6 in
  for _ = 1 to 60_000 do
    let p = Prng.Stream.permutation s 3 in
    let key = (100 * p.(0)) + (10 * p.(1)) + p.(2) in
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all 6 permutations occur" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "balanced" true (abs (c - 10_000) < 600))
    counts

let test_sample_distinct () =
  let s = stream () in
  for _ = 1 to 100 do
    let a = Prng.Stream.sample_distinct s 50 ~k:10 in
    Alcotest.(check int) "k elements" 10 (Array.length a);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        Alcotest.(check bool) "in range" true (v >= 0 && v < 50);
        Alcotest.(check bool) "distinct" false (Hashtbl.mem seen v);
        Hashtbl.add seen v ())
      a
  done;
  (* dense path *)
  let full = Prng.Stream.sample_distinct s 10 ~k:10 in
  let seen = Array.make 10 false in
  Array.iter (fun v -> seen.(v) <- true) full;
  Alcotest.(check bool) "k = n is a permutation" true (Array.for_all Fun.id seen);
  Alcotest.check_raises "k > n" (Invalid_argument "Stream.sample_distinct")
    (fun () -> ignore (Prng.Stream.sample_distinct s 3 ~k:4))

let test_choose () =
  let s = stream () in
  let a = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "element of array" true
      (Array.mem (Prng.Stream.choose s a) a)
  done

let test_dist_geometric () =
  let s = stream () in
  Alcotest.(check int) "p=1 is 0" 0 (Prng.Dist.geometric s 1.0);
  let acc = ref 0.0 in
  let trials = 50_000 in
  for _ = 1 to trials do
    acc := !acc +. float_of_int (Prng.Dist.geometric s 0.25)
  done;
  let mean = !acc /. float_of_int trials in
  (* E = (1-p)/p = 3 *)
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_dist_binomial () =
  let s = stream () in
  Alcotest.(check int) "p=0" 0 (Prng.Dist.binomial s ~n:100 ~p:0.0);
  Alcotest.(check int) "p=1" 100 (Prng.Dist.binomial s ~n:100 ~p:1.0);
  let acc = ref 0 in
  for _ = 1 to 10_000 do
    acc := !acc + Prng.Dist.binomial s ~n:20 ~p:0.5
  done;
  let mean = float_of_int !acc /. 10_000.0 in
  Alcotest.(check bool) "mean near 10" true (abs_float (mean -. 10.0) < 0.2)

let test_dist_poisson () =
  let s = stream () in
  let acc = ref 0 in
  for _ = 1 to 20_000 do
    acc := !acc + Prng.Dist.poisson s 4.0
  done;
  let mean = float_of_int !acc /. 20_000.0 in
  Alcotest.(check bool) "mean near 4" true (abs_float (mean -. 4.0) < 0.15)

let test_dist_zipf () =
  let s = stream () in
  let counts = Array.make 11 0 in
  for _ = 1 to 50_000 do
    let r = Prng.Dist.zipf s ~n:10 ~s:1.0 in
    Alcotest.(check bool) "rank in [1,10]" true (r >= 1 && r <= 10);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 most popular" true
    (counts.(1) > counts.(2) && counts.(2) > counts.(5))

let test_dist_categorical () =
  let s = stream () in
  let w = [| 0.0; 3.0; 1.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 40_000 do
    let i = Prng.Dist.categorical s w in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero-weight cell empty" 0 counts.(0);
  let ratio = float_of_int counts.(1) /. float_of_int counts.(2) in
  Alcotest.(check bool) "3:1 ratio" true (abs_float (ratio -. 3.0) < 0.3)

(* ---------- statistical quality of the raw generator ---------- *)

let test_monobit () =
  (* NIST-style frequency test: the number of set bits in 10^6 output bits
     should be within ~4 sigma of half. *)
  let g = Prng.Xoshiro256.of_seed 0xB17L in
  let words = 15_625 (* x 64 bits = 1e6 bits *) in
  let ones = ref 0 in
  for _ = 1 to words do
    let x = ref (Prng.Xoshiro256.next g) in
    while !x <> 0L do
      if Int64.logand !x 1L = 1L then incr ones;
      x := Int64.shift_right_logical !x 1
    done
  done;
  let n = words * 64 in
  let dev =
    abs_float (float_of_int !ones -. (float_of_int n /. 2.0))
    /. sqrt (float_of_int n /. 4.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "monobit deviation %.2f sigma" dev)
    true (dev < 4.0)

let test_runs () =
  (* Runs test on the low bit: the count of 01/10 transitions should be
     near half the sequence length. *)
  let g = Prng.Xoshiro256.of_seed 0x12345L in
  let n = 200_000 in
  let prev = ref (Int64.logand (Prng.Xoshiro256.next g) 1L) in
  let transitions = ref 0 in
  for _ = 2 to n do
    let b = Int64.logand (Prng.Xoshiro256.next g) 1L in
    if b <> !prev then incr transitions;
    prev := b
  done;
  let expected = float_of_int (n - 1) /. 2.0 in
  let dev =
    abs_float (float_of_int !transitions -. expected)
    /. sqrt (float_of_int (n - 1) /. 4.0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "runs deviation %.2f sigma" dev)
    true (dev < 4.0)

let test_serial_correlation () =
  (* Lag-1 correlation of consecutive outputs mapped to [0,1). *)
  let s = Prng.Stream.of_seed 0x5E1AL in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Prng.Stream.float s 1.0) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 2 do
    num := !num +. ((xs.(i) -. mean) *. (xs.(i + 1) -. mean))
  done;
  Array.iter (fun x -> den := !den +. ((x -. mean) ** 2.0)) xs;
  let rho = !num /. !den in
  Alcotest.(check bool)
    (Printf.sprintf "lag-1 correlation %.4f" rho)
    true
    (abs_float rho < 0.02)

let test_split_streams_uncorrelated () =
  (* Sibling streams must not track each other: correlate their outputs. *)
  let parent = Prng.Stream.of_seed 0xFA111L in
  let a = Prng.Stream.split parent and b = Prng.Stream.split parent in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Prng.Stream.float a 1.0) in
  let ys = Array.init n (fun _ -> Prng.Stream.float b 1.0) in
  let mx = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let my = Array.fold_left ( +. ) 0.0 ys /. float_of_int n in
  let num = ref 0.0 and dx = ref 0.0 and dy = ref 0.0 in
  for i = 0 to n - 1 do
    num := !num +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    dx := !dx +. ((xs.(i) -. mx) ** 2.0);
    dy := !dy +. ((ys.(i) -. my) ** 2.0)
  done;
  let rho = !num /. sqrt (!dx *. !dy) in
  Alcotest.(check bool)
    (Printf.sprintf "sibling correlation %.4f" rho)
    true
    (abs_float rho < 0.02)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Stream.int always in [0, bound)" ~count:500
    QCheck.(pair int64 (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let s = Prng.Stream.of_seed seed in
      let v = Prng.Stream.int s bound in
      v >= 0 && v < bound)

let qcheck_permutation_is_bijection =
  QCheck.Test.make ~name:"permutation is a bijection" ~count:200
    QCheck.(pair int64 (int_range 1 200))
    (fun (seed, n) ->
      let s = Prng.Stream.of_seed seed in
      let p = Prng.Stream.permutation s n in
      let seen = Array.make n false in
      Array.iter (fun v -> seen.(v) <- true) p;
      Array.for_all Fun.id seen)

let qcheck_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair int64 (list small_int))
    (fun (seed, l) ->
      let s = Prng.Stream.of_seed seed in
      let a = Array.of_list l in
      let b = Array.copy a in
      Prng.Stream.shuffle_in_place s b;
      List.sort compare (Array.to_list a) = List.sort compare (Array.to_list b))

let qcheck_sample_distinct_distinct =
  QCheck.Test.make ~name:"sample_distinct yields distinct in-range values"
    ~count:300
    QCheck.(triple int64 (int_range 1 500) (int_range 0 100))
    (fun (seed, n, kraw) ->
      let k = min kraw n in
      let s = Prng.Stream.of_seed seed in
      let a = Prng.Stream.sample_distinct s n ~k in
      let seen = Hashtbl.create 16 in
      Array.for_all
        (fun v ->
          let fresh = not (Hashtbl.mem seen v) in
          Hashtbl.add seen v ();
          fresh && v >= 0 && v < n)
        a)

let () =
  Alcotest.run "prng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "mix collision-free sample" `Quick
            test_splitmix_mix_bijective_sample;
        ] );
      ( "xoshiro256",
        [
          Alcotest.test_case "nonzero output" `Quick test_xoshiro_known_nonzero;
          Alcotest.test_case "copy independence" `Quick
            test_xoshiro_copy_independent;
          Alcotest.test_case "jump changes stream" `Quick
            test_xoshiro_jump_changes_stream;
          Alcotest.test_case "zero state rejected" `Quick
            test_xoshiro_zero_state_rejected;
        ] );
      ( "stream",
        [
          Alcotest.test_case "determinism" `Quick test_stream_determinism;
          Alcotest.test_case "split independence" `Quick test_split_independence;
          Alcotest.test_case "split_n" `Quick test_split_n;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int uniform" `Slow test_int_uniform_chi2;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Slow test_bernoulli_rate;
          Alcotest.test_case "permutation valid" `Quick test_permutation_valid;
          Alcotest.test_case "permutation uniform" `Slow test_permutation_uniform;
          Alcotest.test_case "sample_distinct" `Quick test_sample_distinct;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "dist",
        [
          Alcotest.test_case "geometric" `Slow test_dist_geometric;
          Alcotest.test_case "binomial" `Slow test_dist_binomial;
          Alcotest.test_case "poisson" `Slow test_dist_poisson;
          Alcotest.test_case "zipf" `Slow test_dist_zipf;
          Alcotest.test_case "categorical" `Slow test_dist_categorical;
        ] );
      ( "quality",
        [
          Alcotest.test_case "monobit frequency" `Slow test_monobit;
          Alcotest.test_case "runs" `Slow test_runs;
          Alcotest.test_case "serial correlation" `Slow test_serial_correlation;
          Alcotest.test_case "split streams uncorrelated" `Slow
            test_split_streams_uncorrelated;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_int_in_range;
            qcheck_permutation_is_bijection;
            qcheck_shuffle_preserves_multiset;
            qcheck_sample_distinct_distinct;
          ] );
    ]
