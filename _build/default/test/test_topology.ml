(* Tests for the graph/topology substrate. *)

let rng () = Testutil.rng ()

(* ---------- Intvec ---------- *)

let test_intvec_basics () =
  let v = Topology.Intvec.create () in
  Alcotest.(check int) "empty" 0 (Topology.Intvec.length v);
  for i = 0 to 99 do
    Topology.Intvec.push v (i * 2)
  done;
  Alcotest.(check int) "length" 100 (Topology.Intvec.length v);
  Alcotest.(check int) "get" 84 (Topology.Intvec.get v 42);
  Topology.Intvec.set v 42 7;
  Alcotest.(check int) "set" 7 (Topology.Intvec.get v 42);
  Topology.Intvec.truncate_last v;
  Alcotest.(check int) "truncate" 99 (Topology.Intvec.length v);
  let sum = Topology.Intvec.fold (fun a x -> a + x) 0 v in
  Alcotest.(check bool) "fold sums" true (sum > 0);
  Topology.Intvec.clear v;
  Alcotest.(check int) "clear" 0 (Topology.Intvec.length v)

let test_intvec_bounds () =
  let v = Topology.Intvec.of_array [| 1; 2 |] in
  Alcotest.check_raises "get oob" (Invalid_argument "Intvec.get: out of bounds")
    (fun () -> ignore (Topology.Intvec.get v 2));
  Alcotest.check_raises "truncate empty"
    (Invalid_argument "Intvec.truncate_last: empty") (fun () ->
      let e = Topology.Intvec.create () in
      Topology.Intvec.truncate_last e)

(* ---------- Graph ---------- *)

let test_graph_basics () =
  let g = Topology.Graph.create ~n:4 in
  Topology.Graph.add_edge g 0 1;
  Topology.Graph.add_edge g 1 2;
  Topology.Graph.add_edge g 0 1;
  (* parallel edge *)
  Alcotest.(check int) "n" 4 (Topology.Graph.n g);
  Alcotest.(check int) "edges" 3 (Topology.Graph.edge_count g);
  Alcotest.(check int) "deg 1 with parallel" 3 (Topology.Graph.degree g 1);
  Alcotest.(check int) "deg isolated" 0 (Topology.Graph.degree g 3);
  Alcotest.(check bool) "has edge" true (Topology.Graph.has_edge g 0 1);
  Alcotest.(check bool) "no edge" false (Topology.Graph.has_edge g 0 3)

let test_graph_guards () =
  let g = Topology.Graph.create ~n:3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> Topology.Graph.add_edge g 1 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Graph.add_edge: node out of range") (fun () ->
      Topology.Graph.add_edge g 0 5)

let test_graph_regular () =
  let g = Topology.Graph.create ~n:3 in
  Topology.Graph.add_edge g 0 1;
  Topology.Graph.add_edge g 1 2;
  Topology.Graph.add_edge g 2 0;
  Alcotest.(check (option int)) "2-regular" (Some 2) (Topology.Graph.is_regular g);
  Topology.Graph.add_edge g 0 1;
  Alcotest.(check (option int)) "irregular" None (Topology.Graph.is_regular g)

let test_graph_induced_mask () =
  let g = Topology.Graph.create ~n:4 in
  Topology.Graph.add_edge g 0 1;
  Topology.Graph.add_edge g 1 2;
  Topology.Graph.add_edge g 2 3;
  let sub = Topology.Graph.induced_mask g ~keep:(fun v -> v <> 1) in
  Alcotest.(check int) "only edge 2-3 kept" 1 (Topology.Graph.edge_count sub);
  Alcotest.(check bool) "2-3 present" true (Topology.Graph.has_edge sub 2 3)

let test_graph_edges_roundtrip () =
  let edges = [| (0, 1); (1, 2); (0, 2); (0, 1) |] in
  let g = Topology.Graph.of_edges ~n:3 edges in
  let back = Topology.Graph.edges g in
  Alcotest.(check int) "edge multiset size" 4 (Array.length back);
  let norm a = List.sort compare (Array.to_list a) in
  Alcotest.(check bool) "same multiset" true (norm edges = norm back)

(* ---------- Union-find ---------- *)

let test_union_find () =
  let u = Topology.Union_find.create 6 in
  Alcotest.(check int) "initial components" 6 (Topology.Union_find.component_count u);
  Topology.Union_find.union u 0 1;
  Topology.Union_find.union u 1 2;
  Topology.Union_find.union u 3 4;
  Alcotest.(check int) "after unions" 3 (Topology.Union_find.component_count u);
  Alcotest.(check bool) "same" true (Topology.Union_find.same u 0 2);
  Alcotest.(check bool) "not same" false (Topology.Union_find.same u 2 3);
  Alcotest.(check int) "among subset" 2
    (Topology.Union_find.component_count_among u [| 0; 2; 3 |])

(* ---------- BFS ---------- *)

let path_graph n =
  let g = Topology.Graph.create ~n in
  for i = 0 to n - 2 do
    Topology.Graph.add_edge g i (i + 1)
  done;
  g

let test_bfs_distances () =
  let g = path_graph 5 in
  let d = Topology.Bfs.distances g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_distances_masked () =
  let g = path_graph 5 in
  let d = Topology.Bfs.distances ~alive:(fun v -> v <> 2) g 0 in
  Alcotest.(check int) "cut off" (-1) d.(3);
  Alcotest.(check int) "before cut" 1 d.(1)

let test_bfs_connectivity () =
  let g = path_graph 5 in
  Alcotest.(check bool) "path connected" true (Topology.Bfs.is_connected g);
  Alcotest.(check bool) "masked disconnected" false
    (Topology.Bfs.is_connected ~alive:(fun v -> v <> 2) g);
  Alcotest.(check bool) "vacuous" true
    (Topology.Bfs.is_connected ~alive:(fun _ -> false) g)

let test_bfs_components () =
  let g = path_graph 6 in
  let comps = Topology.Bfs.components ~alive:(fun v -> v <> 2) g in
  Alcotest.(check int) "two components" 2 (List.length comps);
  Alcotest.(check int) "largest first" 3 (Array.length (List.hd comps))

let test_bfs_diameter () =
  let g = path_graph 7 in
  Alcotest.(check int) "path diameter" 6 (Topology.Bfs.diameter_exact g);
  Alcotest.(check int) "double sweep exact on a path" 6
    (Topology.Bfs.diameter_double_sweep g (rng ()));
  let disconnected = Topology.Graph.create ~n:3 in
  Topology.Graph.add_edge disconnected 0 1;
  Alcotest.(check int) "disconnected" (-1) (Topology.Bfs.diameter_exact disconnected)

let test_bfs_union_find_agree () =
  (* Random graphs: BFS component count equals union-find component count. *)
  let r = rng () in
  for _ = 1 to 20 do
    let n = 2 + Prng.Stream.int r 50 in
    let g = Topology.Graph.create ~n in
    let u = Topology.Union_find.create n in
    for _ = 1 to Prng.Stream.int r (3 * n) do
      let a = Prng.Stream.int r n and b = Prng.Stream.int r n in
      if a <> b then begin
        Topology.Graph.add_edge g a b;
        Topology.Union_find.union u a b
      end
    done;
    Alcotest.(check int) "component counts agree"
      (Topology.Union_find.component_count u)
      (Topology.Bfs.component_count g)
  done

(* ---------- Hypercube ---------- *)

let test_hypercube_basics () =
  let h = Topology.Hypercube.create 4 in
  Alcotest.(check int) "node count" 16 (Topology.Hypercube.node_count h);
  Alcotest.(check int) "flip" 0b1010 (Topology.Hypercube.flip h 0b0010 3);
  Alcotest.(check int) "hamming" 2 (Topology.Hypercube.hamming 0b1010 0b0110);
  let ns = Topology.Hypercube.neighbors h 0 in
  Alcotest.(check int) "degree" 4 (Array.length ns);
  Array.iter
    (fun w -> Alcotest.(check int) "neighbors at distance 1" 1
        (Topology.Hypercube.hamming 0 w))
    ns

let test_hypercube_graph () =
  let h = Topology.Hypercube.create 5 in
  let g = Topology.Hypercube.to_graph h in
  Alcotest.(check (option int)) "5-regular" (Some 5) (Topology.Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Topology.Bfs.is_connected g);
  Alcotest.(check int) "diameter = d" 5 (Topology.Bfs.diameter_exact g)

let test_hypercube_walk_uniform () =
  (* The d-round walk of Section 2.3 ends at a uniform node. *)
  let h = Topology.Hypercube.create 6 in
  let r = rng () in
  let counts = Array.make 64 0 in
  for _ = 1 to 64_000 do
    let v = ref 0 in
    for dim = 0 to 5 do
      v := Topology.Hypercube.walk_step h r !v ~dim
    done;
    counts.(!v) <- counts.(!v) + 1
  done;
  Alcotest.(check bool) "endpoint uniform" true
    (Stats.Chi_square.test_uniform counts > 0.001)

(* ---------- k-ary hypercube ---------- *)

let test_kary_coords_roundtrip () =
  let c = Topology.Kary_hypercube.create ~k:3 ~d:4 in
  for v = 0 to Topology.Kary_hypercube.node_count c - 1 do
    let coords = Topology.Kary_hypercube.to_coords c v in
    Alcotest.(check int) "roundtrip" v (Topology.Kary_hypercube.of_coords c coords)
  done

let test_kary_structure () =
  let c = Topology.Kary_hypercube.create ~k:3 ~d:3 in
  Alcotest.(check int) "node count" 27 (Topology.Kary_hypercube.node_count c);
  Alcotest.(check int) "degree" 6 (Topology.Kary_hypercube.degree c);
  let g = Topology.Kary_hypercube.to_graph c in
  Alcotest.(check (option int)) "regular" (Some 6) (Topology.Graph.is_regular g);
  Alcotest.(check bool) "connected" true (Topology.Bfs.is_connected g);
  Alcotest.(check int) "diameter = d" 3 (Topology.Bfs.diameter_exact g)

let test_kary_neighbors_distance () =
  let c = Topology.Kary_hypercube.create ~k:4 ~d:3 in
  let v = 37 in
  Array.iter
    (fun w ->
      Alcotest.(check int) "neighbor at distance 1" 1
        (Topology.Kary_hypercube.distance c v w))
    (Topology.Kary_hypercube.neighbors c v)

let test_kary_with_coord () =
  let c = Topology.Kary_hypercube.create ~k:5 ~d:3 in
  let v = Topology.Kary_hypercube.of_coords c [| 1; 2; 3 |] in
  let w = Topology.Kary_hypercube.with_coord c v 1 4 in
  Alcotest.(check (array int)) "coordinate replaced" [| 1; 4; 3 |]
    (Topology.Kary_hypercube.to_coords c w)

(* ---------- H-graphs ---------- *)

let test_hamilton_cycle_check () =
  Alcotest.(check bool) "valid cycle" true
    (Topology.Hgraph.is_hamilton_cycle [| 1; 2; 3; 4; 0 |]);
  Alcotest.(check bool) "two small cycles" false
    (Topology.Hgraph.is_hamilton_cycle [| 1; 0; 3; 2 |]);
  Alcotest.(check bool) "fixed point" false
    (Topology.Hgraph.is_hamilton_cycle [| 0; 2; 1 |])

let test_hgraph_random_valid () =
  let g = Topology.Hgraph.random (rng ()) ~n:50 ~d:8 in
  Alcotest.(check int) "n" 50 (Topology.Hgraph.n g);
  Alcotest.(check int) "degree" 8 (Topology.Hgraph.degree g);
  Alcotest.(check int) "cycles" 4 (Topology.Hgraph.cycles g);
  for c = 0 to 3 do
    Alcotest.(check bool) "each cycle hamiltonian" true
      (Topology.Hgraph.is_hamilton_cycle (Topology.Hgraph.succ_array g ~cycle:c))
  done

let test_hgraph_succ_pred_inverse () =
  let g = Topology.Hgraph.random (rng ()) ~n:30 ~d:6 in
  for c = 0 to 2 do
    for v = 0 to 29 do
      let s = Topology.Hgraph.succ g ~cycle:c v in
      Alcotest.(check int) "pred of succ" v (Topology.Hgraph.pred g ~cycle:c s)
    done
  done

let test_hgraph_to_graph_regular_connected () =
  let g = Topology.Hgraph.random (rng ()) ~n:100 ~d:8 in
  let gr = Topology.Hgraph.to_graph g in
  Alcotest.(check (option int)) "8-regular" (Some 8) (Topology.Graph.is_regular gr);
  Alcotest.(check bool) "connected" true (Topology.Bfs.is_connected gr)

let test_hgraph_of_cycles_validation () =
  Alcotest.check_raises "invalid cycle rejected"
    (Invalid_argument "Hgraph.of_cycles: not a Hamilton cycle") (fun () ->
      ignore (Topology.Hgraph.of_cycles [| [| 1; 0; 3; 2 |] |]))

let test_hgraph_expander () =
  (* Corollary 1: random H-graphs have |lambda_2| <= 2 sqrt(d), w.h.p. *)
  let g = Topology.Hgraph.random (rng ()) ~n:400 ~d:8 in
  let gr = Topology.Hgraph.to_graph g in
  Alcotest.(check bool) "spectral expansion" true
    (Topology.Spectral.expansion_ok gr (rng ()))

let test_hgraph_diameter_logarithmic () =
  let g = Topology.Hgraph.random (rng ()) ~n:512 ~d:8 in
  let gr = Topology.Hgraph.to_graph g in
  let diam = Topology.Bfs.diameter_double_sweep gr (rng ()) in
  (* log2 512 = 9; an expander of degree 8 has diameter close to log_7 n;
     allow generous slack but catch polynomially long diameters. *)
  Alcotest.(check bool) "diameter O(log n)" true (diam > 0 && diam <= 12)

let test_hgraph_random_cycle_uniform () =
  (* The generator must draw each directed Hamilton cycle uniformly: on 4
     nodes there are 3! = 6, distinguishable by the tour from node 0. *)
  let r = rng () in
  let counts = Hashtbl.create 6 in
  let trials = 30_000 in
  for _ = 1 to trials do
    let g = Topology.Hgraph.random r ~n:4 ~d:2 in
    let succ = Topology.Hgraph.succ_array g ~cycle:0 in
    let key = (100 * succ.(0)) + (10 * succ.(succ.(0))) + succ.(succ.(succ.(0))) in
    Hashtbl.replace counts key
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  done;
  Alcotest.(check int) "all 6 cycles drawn" 6 (Hashtbl.length counts);
  let observed = Array.of_seq (Seq.map snd (Hashtbl.to_seq counts)) in
  Alcotest.(check bool) "uniform over cycles" true
    (Stats.Chi_square.test_uniform observed > 0.001)

let test_hgraph_random_neighbor_uniform () =
  (* random_neighbor must weight each incident edge (cycle x direction)
     equally — the regularity the stationary distribution relies on. *)
  let r = rng () in
  let g = Topology.Hgraph.random r ~n:50 ~d:8 in
  let v = 7 in
  let counts = Hashtbl.create 8 in
  let trials = 80_000 in
  for _ = 1 to trials do
    let w = Topology.Hgraph.random_neighbor g r v in
    Hashtbl.replace counts w
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts w))
  done;
  (* each of the d = 8 edge slots has probability 1/8; parallel edges pool *)
  let expected_slots = Hashtbl.create 8 in
  for c = 0 to Topology.Hgraph.cycles g - 1 do
    List.iter
      (fun w ->
        Hashtbl.replace expected_slots w
          (1 + Option.value ~default:0 (Hashtbl.find_opt expected_slots w)))
      [ Topology.Hgraph.succ g ~cycle:c v; Topology.Hgraph.pred g ~cycle:c v ]
  done;
  Hashtbl.iter
    (fun w slots ->
      let got = Option.value ~default:0 (Hashtbl.find_opt counts w) in
      let expected = float_of_int (trials * slots) /. 8.0 in
      Alcotest.(check bool)
        (Printf.sprintf "neighbor %d frequency %d ~ %.0f" w got expected)
        true
        (abs_float (float_of_int got -. expected) < 5.0 *. sqrt expected))
    expected_slots

(* ---------- Spectral ---------- *)

let test_spectral_cycle () =
  (* The n-cycle's eigenvalues are 2 cos(2 pi k / n).  Use an odd n so the
     graph is not bipartite; the largest non-principal magnitude is then
     |2 cos(2 pi floor(n/2) / n)| = 2 cos(pi / n). *)
  let n = 41 in
  let g = Topology.Graph.create ~n in
  for i = 0 to n - 1 do
    Topology.Graph.add_edge g i ((i + 1) mod n)
  done;
  let l2 = Topology.Spectral.second_eigenvalue ~iterations:500 g (rng ()) in
  let expected = 2.0 *. cos (Float.pi /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "lambda2 %.4f vs %.4f" l2 expected)
    true
    (abs_float (l2 -. expected) < 0.02)

let test_spectral_requires_regular () =
  let g = path_graph 5 in
  Alcotest.check_raises "irregular rejected"
    (Invalid_argument "Spectral.second_eigenvalue: graph not regular") (fun () ->
      ignore (Topology.Spectral.second_eigenvalue g (rng ())))

(* ---------- properties ---------- *)

let qcheck_graph_model =
  (* Model-based fuzz: Graph vs a reference adjacency-matrix multigraph. *)
  QCheck.Test.make ~name:"Graph agrees with an adjacency-matrix model" ~count:100
    QCheck.(pair int64 (int_range 2 15))
    (fun (seed, n) ->
      let r = Prng.Stream.of_seed seed in
      let g = Topology.Graph.create ~n in
      let adj = Array.make_matrix n n 0 in
      for _ = 1 to 4 * n do
        let a = Prng.Stream.int r n and b = Prng.Stream.int r n in
        if a <> b then begin
          Topology.Graph.add_edge g a b;
          adj.(a).(b) <- adj.(a).(b) + 1;
          adj.(b).(a) <- adj.(b).(a) + 1
        end
      done;
      let ok = ref true in
      for v = 0 to n - 1 do
        let deg = Array.fold_left ( + ) 0 adj.(v) in
        if Topology.Graph.degree g v <> deg then ok := false;
        for w = 0 to n - 1 do
          if Topology.Graph.has_edge g v w <> (adj.(v).(w) > 0) then ok := false
        done;
        (* neighbor multiset matches the matrix row *)
        let row = Array.make n 0 in
        Topology.Graph.iter_neighbors g v (fun w -> row.(w) <- row.(w) + 1);
        if row <> adj.(v) then ok := false
      done;
      !ok)

let qcheck_intvec_model =
  (* Model-based fuzz: an Intvec driven by a random op sequence must always
     agree with a plain list reference. *)
  QCheck.Test.make ~name:"Intvec agrees with a list model" ~count:200
    QCheck.(pair int64 (list (int_range 0 3)))
    (fun (seed, ops) ->
      let r = Prng.Stream.of_seed seed in
      let v = Topology.Intvec.create () in
      let model = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | 0 ->
              let x = Prng.Stream.int r 1000 in
              Topology.Intvec.push v x;
              model := !model @ [ x ]
          | 1 ->
              if !model <> [] then begin
                Topology.Intvec.truncate_last v;
                model := List.filteri (fun i _ -> i < List.length !model - 1) !model
              end
          | 2 ->
              if !model <> [] then begin
                let i = Prng.Stream.int r (List.length !model) in
                let x = Prng.Stream.int r 1000 in
                Topology.Intvec.set v i x;
                model := List.mapi (fun j y -> if j = i then x else y) !model
              end
          | _ ->
              if Topology.Intvec.length v <> List.length !model then ok := false;
              if Topology.Intvec.to_array v <> Array.of_list !model then
                ok := false)
        ops;
      !ok && Topology.Intvec.to_array v = Array.of_list !model)

let qcheck_hypercube_flip_involution =
  QCheck.Test.make ~name:"hypercube flip is an involution" ~count:300
    QCheck.(pair (int_range 1 16) (int_range 0 1_000_000))
    (fun (d, vraw) ->
      let h = Topology.Hypercube.create d in
      let v = vraw mod Topology.Hypercube.node_count h in
      let i = vraw mod d in
      Topology.Hypercube.flip h (Topology.Hypercube.flip h v i) i = v)

let qcheck_random_cycle_hamiltonian =
  QCheck.Test.make ~name:"random H-graph cycles are Hamiltonian" ~count:50
    QCheck.(pair int64 (int_range 3 200))
    (fun (seed, n) ->
      let g = Topology.Hgraph.random (Prng.Stream.of_seed seed) ~n ~d:4 in
      Topology.Hgraph.is_hamilton_cycle (Topology.Hgraph.succ_array g ~cycle:0)
      && Topology.Hgraph.is_hamilton_cycle (Topology.Hgraph.succ_array g ~cycle:1))

let qcheck_kary_coords_roundtrip =
  QCheck.Test.make ~name:"k-ary coords roundtrip" ~count:300
    QCheck.(triple (int_range 2 6) (int_range 1 6) (int_range 0 10_000))
    (fun (k, d, vraw) ->
      let c = Topology.Kary_hypercube.create ~k ~d in
      let v = vraw mod Topology.Kary_hypercube.node_count c in
      Topology.Kary_hypercube.of_coords c (Topology.Kary_hypercube.to_coords c v)
      = v)

let qcheck_induced_mask_subset =
  QCheck.Test.make ~name:"induced subgraph has no edges at dropped nodes"
    ~count:100
    QCheck.(pair int64 (int_range 2 60))
    (fun (seed, n) ->
      let r = Prng.Stream.of_seed seed in
      let g = Topology.Graph.create ~n in
      for _ = 1 to 2 * n do
        let a = Prng.Stream.int r n and b = Prng.Stream.int r n in
        if a <> b then Topology.Graph.add_edge g a b
      done;
      let keep v = v mod 2 = 0 in
      let sub = Topology.Graph.induced_mask g ~keep in
      let ok = ref true in
      for v = 0 to n - 1 do
        if not (keep v) && Topology.Graph.degree sub v > 0 then ok := false
      done;
      !ok)

let () =
  Alcotest.run "topology"
    [
      ( "intvec",
        [
          Alcotest.test_case "basics" `Quick test_intvec_basics;
          Alcotest.test_case "bounds" `Quick test_intvec_bounds;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basics" `Quick test_graph_basics;
          Alcotest.test_case "guards" `Quick test_graph_guards;
          Alcotest.test_case "regular" `Quick test_graph_regular;
          Alcotest.test_case "induced mask" `Quick test_graph_induced_mask;
          Alcotest.test_case "edges roundtrip" `Quick test_graph_edges_roundtrip;
        ] );
      ("union-find", [ Alcotest.test_case "basics" `Quick test_union_find ]);
      ( "bfs",
        [
          Alcotest.test_case "distances" `Quick test_bfs_distances;
          Alcotest.test_case "masked distances" `Quick test_bfs_distances_masked;
          Alcotest.test_case "connectivity" `Quick test_bfs_connectivity;
          Alcotest.test_case "components" `Quick test_bfs_components;
          Alcotest.test_case "diameter" `Quick test_bfs_diameter;
          Alcotest.test_case "agrees with union-find" `Quick
            test_bfs_union_find_agree;
        ] );
      ( "hypercube",
        [
          Alcotest.test_case "basics" `Quick test_hypercube_basics;
          Alcotest.test_case "graph structure" `Quick test_hypercube_graph;
          Alcotest.test_case "walk uniform" `Slow test_hypercube_walk_uniform;
        ] );
      ( "kary-hypercube",
        [
          Alcotest.test_case "coords roundtrip" `Quick test_kary_coords_roundtrip;
          Alcotest.test_case "structure" `Quick test_kary_structure;
          Alcotest.test_case "neighbor distances" `Quick
            test_kary_neighbors_distance;
          Alcotest.test_case "with_coord" `Quick test_kary_with_coord;
        ] );
      ( "hgraph",
        [
          Alcotest.test_case "hamilton check" `Quick test_hamilton_cycle_check;
          Alcotest.test_case "random valid" `Quick test_hgraph_random_valid;
          Alcotest.test_case "succ/pred inverse" `Quick
            test_hgraph_succ_pred_inverse;
          Alcotest.test_case "regular + connected" `Quick
            test_hgraph_to_graph_regular_connected;
          Alcotest.test_case "of_cycles validation" `Quick
            test_hgraph_of_cycles_validation;
          Alcotest.test_case "expander (Cor. 1)" `Slow test_hgraph_expander;
          Alcotest.test_case "diameter O(log n)" `Slow
            test_hgraph_diameter_logarithmic;
          Alcotest.test_case "generator uniform over cycles" `Slow
            test_hgraph_random_cycle_uniform;
          Alcotest.test_case "random_neighbor edge-uniform" `Slow
            test_hgraph_random_neighbor_uniform;
        ] );
      ( "spectral",
        [
          Alcotest.test_case "cycle eigenvalue" `Slow test_spectral_cycle;
          Alcotest.test_case "regularity guard" `Quick
            test_spectral_requires_regular;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_graph_model;
            qcheck_intvec_model;
            qcheck_hypercube_flip_involution;
            qcheck_random_cycle_hamiltonian;
            qcheck_kary_coords_roundtrip;
            qcheck_induced_mask_subset;
          ] );
    ]
