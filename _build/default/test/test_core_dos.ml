(* Tests for the Section 5 DoS-resistant network and the DoS adversaries:
   group structure, availability semantics, reconfiguration, the lateness
   crossover of Theorem 6, and group-size concentration (Lemma 16). *)

let make_net ?(c = 2.0) ?(seed = 0xD05L) n =
  let s = Prng.Stream.of_seed seed in
  Core.Dos_network.create ~c ~rng:(Prng.Stream.split s) ~n ()

let no_blocking n = Array.make n false

(* ---------- structure ---------- *)

let test_structure () =
  let net = make_net 4096 in
  let d = Core.Dos_network.dimension net in
  Alcotest.(check int) "supernode count = 2^d" (1 lsl d)
    (Core.Dos_network.supernode_count net);
  Alcotest.(check bool) "2^d <= n / (c log n)" true
    (float_of_int (1 lsl d) <= 4096.0 /. (2.0 *. 12.0));
  Alcotest.(check int) "period = 4 ceil(log2 d) + 4"
    ((4 * Core.Params.log2i_ceil d) + 4)
    (Core.Dos_network.period net)

let test_groups_partition () =
  let net = make_net 1024 in
  let seen = Array.make 1024 0 in
  for x = 0 to Core.Dos_network.supernode_count net - 1 do
    Array.iter
      (fun v -> seen.(v) <- seen.(v) + 1)
      (Core.Dos_network.group_members net x)
  done;
  Array.iteri
    (fun v c ->
      Alcotest.(check int) (Printf.sprintf "node %d in exactly one group" v) 1 c)
    seen;
  let group_of = Core.Dos_network.group_of net in
  Array.iteri
    (fun v x ->
      Alcotest.(check bool) "membership consistent" true
        (Array.mem v (Core.Dos_network.group_members net x)))
    group_of

let test_members_sorted () =
  let net = make_net 1024 in
  for x = 0 to Core.Dos_network.supernode_count net - 1 do
    let m = Core.Dos_network.group_members net x in
    for i = 0 to Array.length m - 2 do
      Alcotest.(check bool) "sorted by id" true (m.(i) < m.(i + 1))
    done
  done

let test_group_sizes_concentrate () =
  (* Lemma 16: group sizes within (1 +- delta) n/N for reasonable delta. *)
  let net = make_net 8192 in
  let supernodes = Core.Dos_network.supernode_count net in
  let mean = float_of_int 8192 /. float_of_int supernodes in
  for x = 0 to supernodes - 1 do
    let size = float_of_int (Array.length (Core.Dos_network.group_members net x)) in
    Alcotest.(check bool)
      (Printf.sprintf "size %.0f within (1 +- 0.75) * %.1f" size mean)
      true
      (size > 0.25 *. mean && size < 1.75 *. mean)
  done

(* ---------- rounds and windows ---------- *)

let test_unattacked_rounds () =
  let net = make_net 1024 in
  let n = Core.Dos_network.n net in
  for _ = 1 to Core.Dos_network.period net do
    let r = Core.Dos_network.run_round net ~blocked:(no_blocking n) in
    Alcotest.(check bool) "connected" true r.Core.Dos_network.connected;
    Alcotest.(check int) "no starvation" 0 r.Core.Dos_network.starved_groups
  done;
  Alcotest.(check int) "one window done" 1 (Core.Dos_network.windows_completed net);
  match Core.Dos_network.last_window net with
  | None -> Alcotest.fail "no window report"
  | Some w ->
      Alcotest.(check bool) "reconfigured" true w.Core.Dos_network.reconfigured;
      Alcotest.(check int) "no failed rounds" 0 w.Core.Dos_network.failed_rounds;
      Alcotest.(check bool) "sane sizes" true
        (w.Core.Dos_network.min_group_size > 0
        && w.Core.Dos_network.max_group_size < 1024)

let test_reconfiguration_changes_groups () =
  let net = make_net 1024 in
  let n = Core.Dos_network.n net in
  let before = Core.Dos_network.group_of net in
  for _ = 1 to Core.Dos_network.period net do
    ignore (Core.Dos_network.run_round net ~blocked:(no_blocking n))
  done;
  let after = Core.Dos_network.group_of net in
  let moved = ref 0 in
  Array.iteri (fun v x -> if after.(v) <> x then incr moved) before;
  (* with N >> 1 supernodes, almost every node moves *)
  Alcotest.(check bool)
    (Printf.sprintf "%d of %d nodes moved" !moved n)
    true
    (!moved > n / 2)

let test_starved_window_not_reconfigured () =
  let net = make_net 1024 in
  let n = Core.Dos_network.n net in
  let before = Core.Dos_network.group_of net in
  (* kill one entire group for the whole window *)
  let victims = Core.Dos_network.group_members net 0 in
  let blocked = Array.make n false in
  Array.iter (fun v -> blocked.(v) <- true) victims;
  for _ = 1 to Core.Dos_network.period net do
    ignore (Core.Dos_network.run_round net ~blocked)
  done;
  (match Core.Dos_network.last_window net with
  | None -> Alcotest.fail "no window report"
  | Some w ->
      Alcotest.(check bool) "window failed" false w.Core.Dos_network.reconfigured;
      Alcotest.(check bool) "failed rounds recorded" true
        (w.Core.Dos_network.failed_rounds > 0));
  Alcotest.(check (array int)) "assignment kept on failure" before
    (Core.Dos_network.group_of net)

let test_availability_needs_two_rounds () =
  (* A node blocked in round i is unavailable in rounds i and i+1. *)
  let net = make_net 1024 in
  let n = Core.Dos_network.n net in
  let victims = Core.Dos_network.group_members net 0 in
  let blocked = Array.make n false in
  Array.iter (fun v -> blocked.(v) <- true) victims;
  (* round 0: group 0 blocked -> unavailable *)
  let r0 = Core.Dos_network.run_round net ~blocked in
  Alcotest.(check bool) "starved while blocked" true
    (r0.Core.Dos_network.starved_groups >= 1);
  (* round 1: unblocked again, but members were blocked in round 0, so the
     group is still unavailable this round *)
  let r1 = Core.Dos_network.run_round net ~blocked:(no_blocking n) in
  Alcotest.(check bool) "still starved one round after unblocking" true
    (r1.Core.Dos_network.starved_groups >= 1);
  (* round 2: fully available again *)
  let r2 = Core.Dos_network.run_round net ~blocked:(no_blocking n) in
  Alcotest.(check int) "recovered" 0 r2.Core.Dos_network.starved_groups

(* ---------- connectivity semantics ---------- *)

let test_disconnect_detection () =
  (* Block everything except one group whose supernode's neighbors are all
     unoccupied: the survivors form one clique, still connected; then keep
     two far-apart groups alive: disconnected. *)
  let net = make_net 1024 in
  let n = Core.Dos_network.n net in
  let d = Core.Dos_network.dimension net in
  let blocked = Array.make n true in
  Array.iter (fun v -> blocked.(v) <- false) (Core.Dos_network.group_members net 0);
  let r = Core.Dos_network.run_round net ~blocked in
  Alcotest.(check bool) "single surviving group is connected" true
    r.Core.Dos_network.connected;
  (* two groups at Hamming distance >= 2: supernodes 0 and 3 (binary 11) *)
  Alcotest.(check bool) "need d >= 2" true (d >= 2);
  let blocked2 = Array.make n true in
  Array.iter (fun v -> blocked2.(v) <- false) (Core.Dos_network.group_members net 0);
  Array.iter (fun v -> blocked2.(v) <- false) (Core.Dos_network.group_members net 3);
  let r2 = Core.Dos_network.run_round net ~blocked:blocked2 in
  Alcotest.(check bool) "far groups disconnected" false r2.Core.Dos_network.connected

let test_connectivity_matches_brute_force () =
  (* The round report's connectivity comes from the occupied-supernode
     quotient; cross-check against the explicit node-level graph (group
     cliques + complete bipartite between neighboring groups) on random
     blocking patterns. *)
  let net = make_net 512 in
  let n = Core.Dos_network.n net in
  let d = Core.Dos_network.dimension net in
  let s = Prng.Stream.of_seed 77L in
  for _trial = 1 to 12 do
    let blocked = Array.make n false in
    let k = Prng.Stream.int s (n / 2) in
    Array.iter
      (fun v -> blocked.(v) <- true)
      (Prng.Stream.sample_distinct s n ~k);
    (* blocking whole groups sometimes, to hit disconnected cases *)
    if Prng.Stream.bool s then begin
      let x = Prng.Stream.int s (Core.Dos_network.supernode_count net) in
      Array.iter (fun v -> blocked.(v) <- true) (Core.Dos_network.group_members net x)
    end;
    let group_of = Core.Dos_network.group_of net in
    (* build the explicit topology restricted to non-blocked nodes *)
    let g = Topology.Graph.create ~n in
    for u = 0 to n - 1 do
      if not blocked.(u) then
        for v = u + 1 to n - 1 do
          if not blocked.(v) then begin
            let gu = group_of.(u) and gv = group_of.(v) in
            if
              gu = gv
              || Topology.Hypercube.hamming gu gv = 1
                 && gu < 1 lsl d && gv < 1 lsl d
            then Topology.Graph.add_edge g u v
          end
        done
    done;
    let brute =
      Topology.Bfs.is_connected ~alive:(fun v -> not blocked.(v)) g
    in
    let quotient = (Core.Dos_network.run_round net ~blocked).Core.Dos_network.connected in
    (* reset availability history so the next trial is independent *)
    ignore (Core.Dos_network.run_round net ~blocked:(Array.make n false));
    Alcotest.(check bool) "quotient matches brute force" brute quotient
  done

(* ---------- adversaries ---------- *)

let test_adversary_budget () =
  let s = Prng.Stream.of_seed 9L in
  let cube = Topology.Hypercube.create 8 in
  List.iter
    (fun strat ->
      let adv =
        Core.Dos_adversary.create strat ~rng:(Prng.Stream.split s) ~lateness:0
          ~frac:0.25
      in
      Core.Dos_adversary.observe adv
        ~group_of:(Array.init 1024 (fun v -> v mod 256));
      let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n:1024 in
      let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked in
      Alcotest.(check int)
        (Core.Dos_adversary.to_string strat ^ " spends exactly its budget")
        256 count)
    Core.Dos_adversary.all

let test_adversary_frac_guard () =
  let s = Prng.Stream.of_seed 9L in
  Alcotest.check_raises "frac >= 1 rejected"
    (Invalid_argument "Dos_adversary.create: frac out of [0, 1)") (fun () ->
      ignore
        (Core.Dos_adversary.create Core.Dos_adversary.Random_blocking ~rng:s
           ~lateness:0 ~frac:1.0))

let test_group_kill_0late_starves () =
  let net = make_net 2048 in
  let n = Core.Dos_network.n net in
  let s = Prng.Stream.of_seed 10L in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s) ~lateness:0 ~frac:0.25
  in
  let starved = ref 0 in
  for _ = 1 to 2 * Core.Dos_network.period net do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if r.Core.Dos_network.starved_groups > 0 then incr starved
  done;
  Alcotest.(check bool)
    (Printf.sprintf "0-late group-kill starves (%d rounds)" !starved)
    true
    (!starved > Core.Dos_network.period net)

let test_group_kill_late_harmless () =
  let net = make_net 2048 in
  let n = Core.Dos_network.n net in
  let p = Core.Dos_network.period net in
  let s = Prng.Stream.of_seed 10L in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s) ~lateness:p ~frac:0.25
  in
  let starved = ref 0 and disconnected = ref 0 in
  for _ = 1 to 6 * p do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if r.Core.Dos_network.starved_groups > 0 then incr starved;
    if not r.Core.Dos_network.connected then incr disconnected
  done;
  Alcotest.(check int) "no starvation when period-late" 0 !starved;
  Alcotest.(check int) "never disconnected" 0 !disconnected

let test_isolate_0late_disconnects () =
  let net = make_net 2048 in
  let n = Core.Dos_network.n net in
  let s = Prng.Stream.of_seed 11L in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Isolate_node
      ~rng:(Prng.Stream.split s) ~lateness:0 ~frac:0.3
  in
  let disconnected = ref 0 in
  for _ = 1 to Core.Dos_network.period net do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if not r.Core.Dos_network.connected then incr disconnected
  done;
  Alcotest.(check bool)
    (Printf.sprintf "0-late isolate disconnects (%d rounds)" !disconnected)
    true
    (!disconnected > 0)

let test_random_blocking_harmless () =
  let net = make_net 2048 in
  let n = Core.Dos_network.n net in
  let s = Prng.Stream.of_seed 12L in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Random_blocking
      ~rng:(Prng.Stream.split s) ~lateness:0 ~frac:0.25
  in
  let bad = ref 0 in
  for _ = 1 to 4 * Core.Dos_network.period net do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if r.Core.Dos_network.starved_groups > 0 || not r.Core.Dos_network.connected
    then incr bad
  done;
  Alcotest.(check int) "random blocking never hurts" 0 !bad

(* ---------- message-level backend ---------- *)

let test_message_level_clean_window () =
  let s = Prng.Stream.of_seed 0xA11L in
  let net =
    Core.Dos_network.create ~c:2.0 ~backend:Core.Dos_network.Message_level
      ~rng:(Prng.Stream.split s) ~n:1024 ()
  in
  let n = Core.Dos_network.n net in
  let before = Core.Dos_network.group_of net in
  for _ = 1 to Core.Dos_network.period net do
    let r = Core.Dos_network.run_round net ~blocked:(Array.make n false) in
    Alcotest.(check int) "no starvation" 0 r.Core.Dos_network.starved_groups
  done;
  (match Core.Dos_network.last_window net with
  | None -> Alcotest.fail "no window"
  | Some w ->
      Alcotest.(check bool) "reconfigured from real messages" true
        w.Core.Dos_network.reconfigured;
      Alcotest.(check bool) "sane group sizes" true
        (w.Core.Dos_network.min_group_size > 0));
  let after = Core.Dos_network.group_of net in
  let moved = ref 0 in
  Array.iteri (fun v x -> if after.(v) <> x then incr moved) before;
  Alcotest.(check bool) "groups reshuffled" true (!moved > n / 2)

let test_message_level_survives_blocking () =
  let s = Prng.Stream.of_seed 0xA12L in
  let net =
    Core.Dos_network.create ~c:2.0 ~backend:Core.Dos_network.Message_level
      ~rng:(Prng.Stream.split s) ~n:1024 ()
  in
  let n = Core.Dos_network.n net in
  let ok_windows = ref 0 in
  for _ = 1 to 3 * Core.Dos_network.period net do
    let blocked = Array.make n false in
    Array.iter
      (fun v -> blocked.(v) <- true)
      (Prng.Stream.sample_distinct s n ~k:(n / 4));
    ignore (Core.Dos_network.run_round net ~blocked)
  done;
  (* all three windows reconfigured despite 25% blocking per round *)
  (match Core.Dos_network.last_window net with
  | Some w when w.Core.Dos_network.reconfigured -> incr ok_windows
  | _ -> ());
  Alcotest.(check int) "windows completed" 3
    (Core.Dos_network.windows_completed net);
  Alcotest.(check bool) "last window reconfigured" true (!ok_windows = 1)

let test_message_level_starved_window_fails () =
  let s = Prng.Stream.of_seed 0xA13L in
  let net =
    Core.Dos_network.create ~c:2.0 ~backend:Core.Dos_network.Message_level
      ~rng:(Prng.Stream.split s) ~n:512 ()
  in
  let n = Core.Dos_network.n net in
  let before = Core.Dos_network.group_of net in
  let victims = Core.Dos_network.group_members net 0 in
  for r = 0 to Core.Dos_network.period net - 1 do
    let blocked = Array.make n false in
    if r < 3 then Array.iter (fun v -> blocked.(v) <- true) victims;
    ignore (Core.Dos_network.run_round net ~blocked)
  done;
  (match Core.Dos_network.last_window net with
  | None -> Alcotest.fail "no window"
  | Some w ->
      Alcotest.(check bool) "window failed (state lost for real)" false
        w.Core.Dos_network.reconfigured);
  Alcotest.(check (array int)) "assignment kept" before
    (Core.Dos_network.group_of net)

let test_message_level_assignment_uniform () =
  (* The new assignment drawn from real message exchanges must concentrate
     like the canonical one (Lemma 16). *)
  let s = Prng.Stream.of_seed 0xA14L in
  let net =
    Core.Dos_network.create ~c:2.0 ~backend:Core.Dos_network.Message_level
      ~rng:(Prng.Stream.split s) ~n:2048 ()
  in
  let n = Core.Dos_network.n net in
  for _ = 1 to Core.Dos_network.period net do
    ignore (Core.Dos_network.run_round net ~blocked:(Array.make n false))
  done;
  let supernodes = Core.Dos_network.supernode_count net in
  let sizes =
    Array.init supernodes (fun x ->
        Array.length (Core.Dos_network.group_members net x))
  in
  let mean = float_of_int n /. float_of_int supernodes in
  Array.iter
    (fun size ->
      Alcotest.(check bool)
        (Printf.sprintf "size %d within (0.25, 1.75) x mean %.1f" size mean)
        true
        (float_of_int size > 0.25 *. mean && float_of_int size < 1.75 *. mean))
    sizes

(* ---------- properties ---------- *)

let qcheck_reconfigured_groups_still_partition =
  QCheck.Test.make ~name:"groups remain a partition across windows" ~count:5
    QCheck.(int64)
    (fun seed ->
      let s = Prng.Stream.of_seed seed in
      let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n:512 () in
      let n = Core.Dos_network.n net in
      for _ = 1 to 2 * Core.Dos_network.period net do
        ignore (Core.Dos_network.run_round net ~blocked:(Array.make n false))
      done;
      let seen = Array.make n 0 in
      for x = 0 to Core.Dos_network.supernode_count net - 1 do
        Array.iter
          (fun v -> seen.(v) <- seen.(v) + 1)
          (Core.Dos_network.group_members net x)
      done;
      Array.for_all (fun c -> c = 1) seen)

let qcheck_blocked_set_within_budget =
  QCheck.Test.make ~name:"adversary never exceeds its budget" ~count:50
    QCheck.(triple int64 (int_range 0 2) (float_range 0.0 0.45))
    (fun (seed, strat_i, frac) ->
      let s = Prng.Stream.of_seed seed in
      let cube = Topology.Hypercube.create 6 in
      let adv =
        Core.Dos_adversary.create
          (List.nth Core.Dos_adversary.all strat_i)
          ~rng:(Prng.Stream.split s) ~lateness:0 ~frac
      in
      let n = 512 in
      Core.Dos_adversary.observe adv ~group_of:(Array.init n (fun v -> v mod 64));
      let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
      let count = Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked in
      count <= int_of_float (Float.round (frac *. float_of_int n)))

let () =
  Alcotest.run "core-dos"
    [
      ( "structure",
        [
          Alcotest.test_case "dimensions" `Quick test_structure;
          Alcotest.test_case "groups partition" `Quick test_groups_partition;
          Alcotest.test_case "members sorted" `Quick test_members_sorted;
          Alcotest.test_case "sizes concentrate (Lemma 16)" `Quick
            test_group_sizes_concentrate;
        ] );
      ( "windows",
        [
          Alcotest.test_case "unattacked window" `Quick test_unattacked_rounds;
          Alcotest.test_case "reconfiguration reshuffles" `Quick
            test_reconfiguration_changes_groups;
          Alcotest.test_case "starved window aborted" `Quick
            test_starved_window_not_reconfigured;
          Alcotest.test_case "two-round availability" `Quick
            test_availability_needs_two_rounds;
          Alcotest.test_case "disconnect detection" `Quick
            test_disconnect_detection;
          Alcotest.test_case "connectivity matches brute force" `Slow
            test_connectivity_matches_brute_force;
        ] );
      ( "message-level-backend",
        [
          Alcotest.test_case "clean window" `Quick
            test_message_level_clean_window;
          Alcotest.test_case "survives 25% blocking" `Slow
            test_message_level_survives_blocking;
          Alcotest.test_case "starved window fails" `Quick
            test_message_level_starved_window_fails;
          Alcotest.test_case "assignment concentrates" `Quick
            test_message_level_assignment_uniform;
        ] );
      ( "adversaries",
        [
          Alcotest.test_case "budget exact" `Quick test_adversary_budget;
          Alcotest.test_case "frac guard" `Quick test_adversary_frac_guard;
          Alcotest.test_case "0-late group-kill starves" `Slow
            test_group_kill_0late_starves;
          Alcotest.test_case "period-late group-kill harmless (Thm 6)" `Slow
            test_group_kill_late_harmless;
          Alcotest.test_case "0-late isolate disconnects" `Slow
            test_isolate_0late_disconnects;
          Alcotest.test_case "random blocking harmless" `Slow
            test_random_blocking_harmless;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            qcheck_reconfigured_groups_still_partition;
            qcheck_blocked_set_within_budget;
          ] );
    ]
