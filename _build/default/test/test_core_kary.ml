(* Tests for the k-ary generalization of the rapid sampling primitive
   (Section 7.2's "straightforward extension" of Algorithm 2). *)

let rng () = Testutil.rng ()

let test_rounds () =
  let cube = Topology.Kary_hypercube.create ~k:4 ~d:4 in
  let r = Core.Rapid_kary.run ~rng:(rng ()) cube in
  Alcotest.(check int) "2 ceil(log2 d) rounds" 4 r.Core.Sampling_result.rounds;
  Alcotest.(check int) "walk length d" 4 r.Core.Sampling_result.walk_length

let test_uniform () =
  let cube = Topology.Kary_hypercube.create ~k:4 ~d:4 in
  let n = Topology.Kary_hypercube.node_count cube in
  let counts = Array.make n 0 in
  List.iter
    (fun seed ->
      let r = Core.Rapid_kary.run ~rng:(Prng.Stream.of_seed seed) cube in
      Array.iter
        (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
        r.Core.Sampling_result.samples)
    [ 1L; 2L; 3L ];
  Alcotest.(check bool) "uniform over k^d nodes" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_uniform_odd_arity_odd_dim () =
  (* k = 3 and d = 5 (not a power of two): the left-leaning segment tree
     and non-binary digits together. *)
  let cube = Topology.Kary_hypercube.create ~k:3 ~d:5 in
  let n = Topology.Kary_hypercube.node_count cube in
  let counts = Array.make n 0 in
  List.iter
    (fun seed ->
      let r =
        Core.Rapid_kary.run ~c:3.0 ~rng:(Prng.Stream.of_seed seed) cube
      in
      Array.iter
        (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
        r.Core.Sampling_result.samples)
    [ 4L; 5L; 6L ];
  Alcotest.(check bool) "uniform for k=3, d=5" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_samples_in_range () =
  let cube = Topology.Kary_hypercube.create ~k:5 ~d:3 in
  let n = Topology.Kary_hypercube.node_count cube in
  let r = Core.Rapid_kary.run ~rng:(rng ()) cube in
  Array.iter
    (Array.iter (fun s ->
         Alcotest.(check bool) "in range" true (s >= 0 && s < n)))
    r.Core.Sampling_result.samples

let test_plain_baseline () =
  let cube = Topology.Kary_hypercube.create ~k:4 ~d:4 in
  let n = Topology.Kary_hypercube.node_count cube in
  let p = Core.Rapid_kary.run_plain ~k:10 ~rng:(rng ()) cube in
  Alcotest.(check int) "d + 1 rounds" 5 p.Core.Sampling_result.rounds;
  let counts = Array.make n 0 in
  Array.iter
    (Array.iter (fun s -> counts.(s) <- counts.(s) + 1))
    p.Core.Sampling_result.samples;
  Alcotest.(check bool) "token walk uniform" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_separation () =
  let cube = Topology.Kary_hypercube.create ~k:4 ~d:6 in
  let fast = Core.Rapid_kary.run ~rng:(rng ()) cube in
  let slow = Core.Rapid_kary.run_plain ~k:2 ~rng:(rng ()) cube in
  Alcotest.(check bool) "fewer rounds" true
    (fast.Core.Sampling_result.rounds < slow.Core.Sampling_result.rounds)

let test_dht_reshuffle_balanced () =
  (* Robust_dht.reshuffle now scatters via the k-ary primitive; the new
     group sizes must look binomial, not clumped. *)
  let s = rng () in
  let dht = Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s) ~n:4096 () in
  Apps.Robust_dht.reshuffle dht;
  let sup = Apps.Robust_dht.supernode_count dht in
  let sizes = Array.make sup 0 in
  Array.iter
    (fun g -> sizes.(g) <- sizes.(g) + 1)
    (Apps.Robust_dht.group_of dht);
  let mean = 4096.0 /. float_of_int sup in
  let var =
    Array.fold_left (fun a c -> a +. ((float_of_int c -. mean) ** 2.0)) 0.0 sizes
    /. float_of_int sup
  in
  Alcotest.(check bool)
    (Printf.sprintf "variance %.1f within 2.5x of mean %.1f" var mean)
    true
    (var < 2.5 *. mean);
  Alcotest.(check int) "nobody unassigned" 4096 (Array.fold_left ( + ) 0 sizes)

let qcheck_kary_uniform_marginals =
  QCheck.Test.make ~name:"k-ary samples stay in range for random (k, d)"
    ~count:20
    QCheck.(triple int64 (int_range 2 5) (int_range 2 5))
    (fun (seed, k, d) ->
      let cube = Topology.Kary_hypercube.create ~k ~d in
      let n = Topology.Kary_hypercube.node_count cube in
      let r = Core.Rapid_kary.run ~c:1.0 ~rng:(Prng.Stream.of_seed seed) cube in
      Array.for_all
        (Array.for_all (fun v -> v >= 0 && v < n))
        r.Core.Sampling_result.samples)

let () =
  Alcotest.run "core-kary"
    [
      ( "rapid-kary",
        [
          Alcotest.test_case "rounds" `Quick test_rounds;
          Alcotest.test_case "uniform" `Slow test_uniform;
          Alcotest.test_case "odd arity and dim" `Slow
            test_uniform_odd_arity_odd_dim;
          Alcotest.test_case "samples in range" `Quick test_samples_in_range;
          Alcotest.test_case "plain baseline" `Quick test_plain_baseline;
          Alcotest.test_case "round separation" `Quick test_separation;
          Alcotest.test_case "dht reshuffle balanced" `Quick
            test_dht_reshuffle_balanced;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_kary_uniform_marginals ]
      );
    ]
