(* Tests for the message-level group simulation (Group_sim) and the
   supernode sampling protocol — the unabridged version of Section 5's
   machinery, validating the canonical-state shortcut in Dos_network. *)

let rng () = Testutil.rng ()

(* A trivial counting protocol: every supernode adds, at each step, the
   number of messages it received plus one, and pings all its hypercube
   neighbors.  Deterministic, so every replica proposes identically. *)
let counting_protocol ~cube ~steps =
  let neighbors x = Topology.Hypercube.neighbors cube x in
  {
    Core.Group_sim.init = (fun ~supernode:_ ~rng:_ -> 0);
    step =
      (fun ~supernode ~step_index:_ count ~inbox ~rng:_ ->
        let received = List.length inbox in
        (count + received + 1, Array.to_list (neighbors supernode) |> List.map (fun y -> (y, ()))));
    steps;
    state_bits = (fun _ -> 32);
    msg_bits = (fun () -> 8);
  }

let uniform_groups ~n ~supernodes = Array.init n (fun v -> v mod supernodes)

let test_counting_no_blocking () =
  (* With d-regular pings and no blocking, after s full steps every
     supernode's count is s + (s - 1) * d: the first step delivers no
     messages (none were in flight), later steps deliver d each. *)
  let cube = Topology.Hypercube.create 3 in
  let supernodes = Topology.Hypercube.node_count cube in
  let n = 64 in
  let proto = counting_protocol ~cube ~steps:4 in
  let gs =
    Core.Group_sim.create ~rng:(rng ()) ~n
      ~group_of:(uniform_groups ~n ~supernodes)
      proto
  in
  Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ -> Array.make n false);
  Alcotest.(check (list int)) "no losses" [] (Core.Group_sim.lost_groups gs);
  for x = 0 to supernodes - 1 do
    match Core.Group_sim.state_of gs x with
    | None -> Alcotest.fail "missing state"
    | Some count ->
        Alcotest.(check int) "deterministic count" (4 + (3 * 3)) count
  done

let test_rounds_accounting () =
  let cube = Topology.Hypercube.create 3 in
  let n = 32 in
  let proto = counting_protocol ~cube ~steps:5 in
  let gs =
    Core.Group_sim.create ~rng:(rng ()) ~n ~group_of:(uniform_groups ~n ~supernodes:8)
      proto
  in
  Alcotest.(check int) "2 rounds per step" 10
    (Core.Group_sim.network_rounds_total gs);
  Alcotest.(check bool) "not finished" false (Core.Group_sim.finished gs);
  for _ = 1 to 10 do
    Core.Group_sim.run_round gs ~blocked:(Array.make n false)
  done;
  Alcotest.(check bool) "finished" true (Core.Group_sim.finished gs);
  Alcotest.check_raises "running past the end"
    (Invalid_argument "Group_sim.run_round: already finished") (fun () ->
      Core.Group_sim.run_round gs ~blocked:(Array.make n false))

let test_blocked_member_resyncs () =
  let cube = Topology.Hypercube.create 2 in
  let n = 16 in
  let group_of = uniform_groups ~n ~supernodes:4 in
  let proto = counting_protocol ~cube ~steps:4 in
  let gs = Core.Group_sim.create ~rng:(rng ()) ~n ~group_of proto in
  (* Block node 0 (a member of group 0) for the first two rounds; the rest
     of its group carries the state, and node 0 re-syncs afterwards. *)
  for r = 0 to 7 do
    let blocked = Array.make n false in
    if r < 2 then blocked.(0) <- true;
    Core.Group_sim.run_round gs ~blocked
  done;
  Alcotest.(check (list int)) "no losses" [] (Core.Group_sim.lost_groups gs);
  Alcotest.(check int) "everyone back in sync" 4
    (Core.Group_sim.synced_members gs 0)

let test_whole_group_blocked_loses_state () =
  let cube = Topology.Hypercube.create 2 in
  let n = 16 in
  let group_of = uniform_groups ~n ~supernodes:4 in
  let proto = counting_protocol ~cube ~steps:4 in
  let gs = Core.Group_sim.create ~rng:(rng ()) ~n ~group_of proto in
  (* Block every member of group 2 across one full simulation+sync pair:
     nothing is proposed for it, so the supernode state is gone. *)
  for r = 0 to 7 do
    let blocked = Array.make n false in
    if r < 3 then Array.iteri (fun v g -> if g = 2 then blocked.(v) <- true) group_of;
    Core.Group_sim.run_round gs ~blocked
  done;
  Alcotest.(check (list int)) "group 2 lost" [ 2 ] (Core.Group_sim.lost_groups gs);
  Alcotest.(check bool) "state gone" true (Core.Group_sim.state_of gs 2 = None)

let test_lost_matches_canonical_model () =
  (* Differential check of the DESIGN.md fidelity claim: under the same
     blocking pattern, Group_sim loses a group iff the canonical
     availability criterion (some simulation round with no available
     member) fails for it. *)
  let cube = Topology.Hypercube.create 3 in
  let supernodes = Topology.Hypercube.node_count cube in
  let n = 96 in
  let group_of = uniform_groups ~n ~supernodes in
  let proto = counting_protocol ~cube ~steps:4 in
  let s = rng () in
  for _trial = 1 to 10 do
    let gs = Core.Group_sim.create ~rng:(Prng.Stream.split s) ~n ~group_of proto in
    (* random blocking pattern, drawn once per round *)
    let rounds = Core.Group_sim.network_rounds_total gs in
    let patterns =
      Array.init rounds (fun _ ->
          let b = Array.make n false in
          Array.iter
            (fun v -> b.(v) <- true)
            (Prng.Stream.sample_distinct s n ~k:(n * 2 / 5));
          b)
    in
    (* canonical prediction: group x is lost iff in some simulation round r
       (even r) every member is blocked at r, or was blocked at r-1 while
       staying in need of resync...  The exact criterion the simulation
       implements: a member can propose at simulation round r iff it is
       non-blocked at r and it adopted at sync round r-1, i.e. it was
       non-blocked at r-1 and r-2's proposals existed.  For the canonical
       model we replay exactly that recursion on availability bits. *)
    let lost_pred = Array.make supernodes false in
    let synced = Array.make n true in
    for r = 0 to rounds - 1 do
      let blocked = patterns.(r) in
      if r mod 2 = 0 then begin
        (* simulation round: does any synced non-blocked member exist? *)
        let proposed = Array.make supernodes false in
        for v = 0 to n - 1 do
          if synced.(v) && not blocked.(v) then proposed.(group_of.(v)) <- true
        done;
        Array.iteri
          (fun x p -> if not p then lost_pred.(x) <- true)
          proposed;
        (* sync round r+1: member v adopts iff non-blocked at r and r+1 and
           its group proposed *)
        if r + 1 <= rounds - 1 then begin
          let blocked' = patterns.(r + 1) in
          for v = 0 to n - 1 do
            synced.(v) <-
              proposed.(group_of.(v))
              && (not blocked.(v))
              && not blocked'.(v)
          done
        end
      end
    done;
    let r = ref 0 in
    while not (Core.Group_sim.finished gs) do
      Core.Group_sim.run_round gs ~blocked:patterns.(!r);
      incr r
    done;
    let actual = Array.make supernodes false in
    List.iter (fun x -> actual.(x) <- true) (Core.Group_sim.lost_groups gs);
    Alcotest.(check (array bool)) "lost sets agree" lost_pred actual
  done

let test_sampling_protocol_uniform () =
  let cube = Topology.Hypercube.create 5 in
  let supernodes = Topology.Hypercube.node_count cube in
  let n = 256 in
  let proto = Core.Supernode_sampling.protocol ~c:3.0 ~cube () in
  let counts = Array.make supernodes 0 in
  let underflows = ref 0 in
  List.iter
    (fun seed ->
      let gs =
        Core.Group_sim.create
          ~rng:(Prng.Stream.of_seed seed)
          ~n
          ~group_of:(uniform_groups ~n ~supernodes)
          proto
      in
      Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
          Array.make n false);
      Alcotest.(check (list int)) "no losses" [] (Core.Group_sim.lost_groups gs);
      for x = 0 to supernodes - 1 do
        match Core.Group_sim.state_of gs x with
        | None -> Alcotest.fail "state missing"
        | Some st ->
            underflows := !underflows + Core.Supernode_sampling.underflows st;
            Array.iter
              (fun v -> counts.(v) <- counts.(v) + 1)
              (Core.Supernode_sampling.samples st)
      done)
    [ 21L; 22L; 23L ];
  Alcotest.(check int) "no underflows" 0 !underflows;
  Alcotest.(check bool) "samples uniform over supernodes" true
    (Stats.Chi_square.test_uniform counts > 0.001)

let test_sampling_protocol_under_blocking () =
  (* 25% random blocking per round must not stop the simulated primitive:
     every group keeps an available member w.h.p. at these sizes. *)
  let cube = Topology.Hypercube.create 4 in
  let supernodes = Topology.Hypercube.node_count cube in
  let n = 512 in
  let proto = Core.Supernode_sampling.protocol ~c:2.0 ~cube () in
  let s = rng () in
  let gs =
    Core.Group_sim.create ~rng:(Prng.Stream.split s) ~n
      ~group_of:(uniform_groups ~n ~supernodes)
      proto
  in
  Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
      let b = Array.make n false in
      Array.iter
        (fun v -> b.(v) <- true)
        (Prng.Stream.sample_distinct s n ~k:(n / 4));
      b);
  Alcotest.(check (list int)) "no losses under 25% blocking" []
    (Core.Group_sim.lost_groups gs);
  for x = 0 to supernodes - 1 do
    match Core.Group_sim.state_of gs x with
    | None -> Alcotest.fail "state missing"
    | Some st ->
        Alcotest.(check bool) "samples delivered" true
          (Array.length (Core.Supernode_sampling.samples st) > 0)
  done

let test_sampling_matches_direct_round_count () =
  (* The group simulation costs exactly two network rounds per supernode
     round, and the supernode protocol runs 2 ceil(log2 d) + 1 rounds —
     matching the paper's Theta(log log n) claim for the whole rebuild. *)
  let cube = Topology.Hypercube.create 8 in
  let proto = Core.Supernode_sampling.protocol ~cube () in
  let n = 2048 in
  let gs =
    Core.Group_sim.create ~rng:(rng ()) ~n
      ~group_of:(uniform_groups ~n ~supernodes:256)
      proto
  in
  let direct = Core.Rapid_hypercube.run ~rng:(rng ()) cube in
  Alcotest.(check int) "2 * (2 ceil(log2 d) + 1) network rounds"
    (2 * (direct.Core.Sampling_result.rounds + 1))
    (Core.Group_sim.network_rounds_total gs)

let test_metrics_charged () =
  let cube = Topology.Hypercube.create 3 in
  let n = 64 in
  let proto = counting_protocol ~cube ~steps:3 in
  let gs =
    Core.Group_sim.create ~rng:(rng ()) ~n ~group_of:(uniform_groups ~n ~supernodes:8)
      proto
  in
  Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ -> Array.make n false);
  let m = Core.Group_sim.metrics gs in
  Alcotest.(check bool) "messages counted" true (Simnet.Metrics.total_msgs m > 0);
  Alcotest.(check bool) "bits counted" true (Simnet.Metrics.total_bits m > 0)

let test_virtual_sampling_weighted_distribution () =
  (* The Section 6 weighted primitive executed at message level: groups of
     a variable-dimension tree sample leaves with probability 2^-d(x). *)
  let tree = Core.Split_merge.create () in
  Core.Split_merge.add_leaf tree { Core.Split_merge.bits = 0b0; dim = 1 } ();
  Core.Split_merge.add_leaf tree { Core.Split_merge.bits = 0b01; dim = 2 } ();
  Core.Split_merge.add_leaf tree { Core.Split_merge.bits = 0b11; dim = 2 } ();
  (* the virtual cube has only 4 labels, so give the schedule plenty of
     slack; a few underflows would merely shorten the pools *)
  let proto = Core.Virtual_sampling.protocol ~eps:1.0 ~c:16.0 ~tree () in
  let n = 96 in
  (* 3 leaves; uniform_groups gives each a third of the nodes *)
  let counts = Array.make 3 0 in
  List.iter
    (fun seed ->
      let gs =
        Core.Group_sim.create
          ~rng:(Prng.Stream.of_seed seed)
          ~n
          ~group_of:(uniform_groups ~n ~supernodes:3)
          proto
      in
      Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
          Array.make n false);
      Alcotest.(check (list int)) "no losses" [] (Core.Group_sim.lost_groups gs);
      for x = 0 to 2 do
        match Core.Group_sim.state_of gs x with
        | None -> Alcotest.fail "state missing"
        | Some st ->
            Array.iter
              (fun leaf -> counts.(leaf) <- counts.(leaf) + 1)
              (Core.Virtual_sampling.samples st)
      done)
    [ 31L; 32L; 33L; 34L; 35L; 36L ];
  let total = float_of_int (Array.fold_left ( + ) 0 counts) in
  let p0 = float_of_int counts.(0) /. total in
  Alcotest.(check bool)
    (Printf.sprintf "P(dim-1 leaf) = %.3f ~ 0.5" p0)
    true
    (abs_float (p0 -. 0.5) < 0.06);
  let p1 = float_of_int counts.(1) /. total in
  Alcotest.(check bool)
    (Printf.sprintf "P(dim-2 leaf) = %.3f ~ 0.25" p1)
    true
    (abs_float (p1 -. 0.25) < 0.06)

let test_virtual_sampling_survives_blocking () =
  let tree = Core.Split_merge.create () in
  for bits = 0 to 7 do
    Core.Split_merge.add_leaf tree { Core.Split_merge.bits; dim = 3 } ()
  done;
  (* split one leaf so the tree is genuinely variable-dimension *)
  Core.Split_merge.split tree { Core.Split_merge.bits = 0; dim = 3 }
    (fun () -> ((), ()));
  let proto = Core.Virtual_sampling.protocol ~c:2.0 ~tree () in
  let k = Core.Split_merge.leaf_count tree in
  let n = 360 in
  let s = rng () in
  let gs =
    Core.Group_sim.create ~rng:(Prng.Stream.split s) ~n
      ~group_of:(uniform_groups ~n ~supernodes:k)
      proto
  in
  Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
      let b = Array.make n false in
      Array.iter
        (fun v -> b.(v) <- true)
        (Prng.Stream.sample_distinct s n ~k:(n / 4));
      b);
  Alcotest.(check (list int)) "no losses under 25% blocking" []
    (Core.Group_sim.lost_groups gs)

let qcheck_group_sim_deterministic =
  QCheck.Test.make ~name:"group simulation is deterministic given the seed"
    ~count:10 QCheck.int64 (fun seed ->
      let cube = Topology.Hypercube.create 3 in
      let run () =
        let gs =
          Core.Group_sim.create
            ~rng:(Prng.Stream.of_seed seed)
            ~n:64
            ~group_of:(uniform_groups ~n:64 ~supernodes:8)
            (Core.Supernode_sampling.protocol ~c:1.0 ~cube ())
        in
        Core.Group_sim.run_all gs ~blocked_for_round:(fun ~round:_ ->
            Array.make 64 false);
        List.init 8 (fun x ->
            match Core.Group_sim.state_of gs x with
            | None -> [||]
            | Some st -> Core.Supernode_sampling.samples st)
      in
      run () = run ())

let () =
  Alcotest.run "core-groupsim"
    [
      ( "engine",
        [
          Alcotest.test_case "counting protocol" `Quick test_counting_no_blocking;
          Alcotest.test_case "rounds accounting" `Quick test_rounds_accounting;
          Alcotest.test_case "blocked member resyncs" `Quick
            test_blocked_member_resyncs;
          Alcotest.test_case "whole group blocked loses state" `Quick
            test_whole_group_blocked_loses_state;
          Alcotest.test_case "lost set matches canonical model" `Slow
            test_lost_matches_canonical_model;
          Alcotest.test_case "metrics charged" `Quick test_metrics_charged;
        ] );
      ( "sampling-protocol",
        [
          Alcotest.test_case "uniform" `Slow test_sampling_protocol_uniform;
          Alcotest.test_case "survives 25% blocking" `Slow
            test_sampling_protocol_under_blocking;
          Alcotest.test_case "round count matches direct" `Quick
            test_sampling_matches_direct_round_count;
        ] );
      ( "virtual-sampling",
        [
          Alcotest.test_case "weighted distribution at message level" `Slow
            test_virtual_sampling_weighted_distribution;
          Alcotest.test_case "survives blocking" `Slow
            test_virtual_sampling_survives_blocking;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ qcheck_group_sim_deterministic ]
      );
    ]
