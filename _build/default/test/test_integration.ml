(* Long-haul integration tests: many windows/epochs of the full stack under
   sustained adversarial pressure, with the applications running on top.
   These are the "does it keep working for hours" soak checks a downstream
   user would want before deploying. *)

let test_soak_churn_network () =
  (* 40 epochs of heavy churn, alternating adversary strategies, sizes
     swinging by 35% per epoch. *)
  let s = Prng.Stream.of_seed 0x50AB1L in
  let net = Core.Churn_network.create ~rng:(Prng.Stream.split s) ~n:600 () in
  for e = 1 to 40 do
    let strategy =
      List.nth Core.Churn_adversary.all (e mod List.length Core.Churn_adversary.all)
    in
    let grow = e mod 2 = 0 in
    let plan =
      Core.Churn_adversary.plan strategy ~rng:(Prng.Stream.split s)
        ~graph:(Core.Churn_network.graph net)
        ~leave_frac:(if grow then 0.1 else 0.35)
        ~join_frac:(if grow then 0.35 else 0.1)
    in
    let r =
      Core.Churn_network.epoch net ~leaves:plan.Core.Churn_adversary.leaves
        ~join_introducers:plan.Core.Churn_adversary.join_introducers
    in
    Alcotest.(check bool)
      (Printf.sprintf "epoch %d valid+connected" e)
      true
      (r.Core.Churn_network.valid && r.Core.Churn_network.connected);
    Alcotest.(check bool)
      (Printf.sprintf "epoch %d rounds bounded" e)
      true
      (r.Core.Churn_network.rounds < 40)
  done;
  Alcotest.(check bool) "size stayed sane" true
    (Core.Churn_network.size net > 100 && Core.Churn_network.size net < 10_000)

let test_soak_dos_with_anonymizer () =
  (* 12 windows of the DoS network under a late group-kill attack, issuing
     anonymizer requests every round — the application must keep a 100%
     delivery rate throughout. *)
  let s = Prng.Stream.of_seed 0x50AB2L in
  let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n:2048 () in
  let n = Core.Dos_network.n net in
  let p = Core.Dos_network.period net in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let anon = Apps.Anonymizer.create ~net ~rng:(Prng.Stream.split s) in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s) ~lateness:(2 * p) ~frac:0.25
  in
  let delivered = ref 0 and total = ref 0 in
  for _ = 1 to 12 * p do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    for _ = 1 to 3 do
      incr total;
      if (Apps.Anonymizer.request anon ~blocked).Apps.Anonymizer.delivered then
        incr delivered
    done;
    let r = Core.Dos_network.run_round net ~blocked in
    Alcotest.(check bool) "never starved" true
      (r.Core.Dos_network.starved_groups = 0);
    Alcotest.(check bool) "always connected" true r.Core.Dos_network.connected
  done;
  Alcotest.(check int) "every request delivered" !total !delivered;
  Alcotest.(check int) "all windows completed" 12
    (Core.Dos_network.windows_completed net)

let test_soak_churndos_with_dht_pattern () =
  (* 30 windows of the combined network with alternating growth/shrink and
     a late attacker; Lemma 18's invariants must hold in every window. *)
  let s = Prng.Stream.of_seed 0x50AB3L in
  let net = Core.Churndos_network.create ~rng:(Prng.Stream.split s) ~n:2048 () in
  let cube = Topology.Hypercube.create 12 in
  let adv =
    Core.Dos_adversary.create Core.Dos_adversary.Group_kill
      ~rng:(Prng.Stream.split s)
      ~lateness:(2 * Core.Churndos_network.period net)
      ~frac:0.2
  in
  let blocked_for_round ~round:_ ~group_of ~n =
    Core.Dos_adversary.observe adv ~group_of;
    Core.Dos_adversary.blocked_set adv ~cube ~n
  in
  for w = 1 to 30 do
    let cur = Core.Churndos_network.n net in
    let joins, leave_frac =
      match w mod 3 with
      | 0 -> (cur / 2, 0.0) (* burst growth *)
      | 1 -> (0, 0.33) (* burst shrink *)
      | _ -> (cur / 10, 0.1) (* steady churn *)
    in
    let r = Core.Churndos_network.run_window net ~blocked_for_round ~joins ~leave_frac in
    Alcotest.(check bool)
      (Printf.sprintf "window %d reconfigured" w)
      true r.Core.Churndos_network.reconfigured;
    Alcotest.(check bool)
      (Printf.sprintf "window %d dim spread <= 2" w)
      true
      (r.Core.Churndos_network.dim_spread <= 2);
    Alcotest.(check int)
      (Printf.sprintf "window %d Eq(1)" w)
      0 r.Core.Churndos_network.eq1_violations;
    Alcotest.(check int)
      (Printf.sprintf "window %d connected" w)
      0 r.Core.Churndos_network.disconnected_rounds
  done

let test_soak_dht_reshuffles () =
  (* Write a working set, then alternate reshuffles with mixed read/write
     batches under light blocking for 20 rounds of reconfiguration. *)
  let s = Prng.Stream.of_seed 0x50AB4L in
  let dht = Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s) ~n:1024 () in
  let n = Apps.Robust_dht.n dht in
  let blocked = Array.make n false in
  for key = 0 to 199 do
    ignore
      (Apps.Robust_dht.execute dht ~blocked
         (Apps.Robust_dht.Write (key, Printf.sprintf "gen0-%d" key)))
  done;
  for gen = 1 to 20 do
    Apps.Robust_dht.reshuffle dht;
    let blocked = Array.make n false in
    Array.iter
      (fun v -> blocked.(v) <- true)
      (Prng.Stream.sample_distinct s n ~k:(n / 16));
    (* overwrite a rotating slice, read the rest *)
    for key = 0 to 199 do
      if key mod 20 = gen mod 20 then
        ignore
          (Apps.Robust_dht.execute dht ~blocked
             (Apps.Robust_dht.Write (key, Printf.sprintf "gen%d-%d" gen key)))
    done;
    let ok = ref 0 in
    for key = 0 to 199 do
      let r = Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read key) in
      match r.Apps.Robust_dht.value with Some _ -> incr ok | None -> ()
    done;
    Alcotest.(check int) (Printf.sprintf "gen %d: all keys readable" gen) 200 !ok
  done

let () =
  Alcotest.run "integration"
    [
      ( "soak",
        [
          Alcotest.test_case "40 epochs of churn" `Slow test_soak_churn_network;
          Alcotest.test_case "12 DoS windows + anonymizer" `Slow
            test_soak_dos_with_anonymizer;
          Alcotest.test_case "30 churn+DoS windows" `Slow
            test_soak_churndos_with_dht_pattern;
          Alcotest.test_case "20 DHT reshuffle generations" `Slow
            test_soak_dht_reshuffles;
        ] );
    ]
