test/test_integration.ml: Alcotest Apps Array Core List Printf Prng Topology
