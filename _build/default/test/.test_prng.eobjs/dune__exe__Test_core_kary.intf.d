test/test_core_kary.mli:
