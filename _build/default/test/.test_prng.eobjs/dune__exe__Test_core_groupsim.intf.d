test/test_core_groupsim.mli:
