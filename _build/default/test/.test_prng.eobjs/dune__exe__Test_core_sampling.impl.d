test/test_core_sampling.ml: Alcotest Array Core Float Int64 List Option Printf Prng QCheck QCheck_alcotest Stats Testutil Topology
