test/test_parallel.ml: Alcotest Array Atomic Int64 Parallel Prng
