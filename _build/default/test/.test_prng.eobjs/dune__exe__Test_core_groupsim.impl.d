test/test_core_groupsim.ml: Alcotest Array Core List Printf Prng QCheck QCheck_alcotest Simnet Stats Testutil Topology
