test/test_core_dos.mli:
