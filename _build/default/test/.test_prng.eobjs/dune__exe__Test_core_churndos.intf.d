test/test_core_churndos.mli:
