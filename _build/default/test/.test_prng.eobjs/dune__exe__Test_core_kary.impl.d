test/test_core_kary.ml: Alcotest Apps Array Core List Printf Prng QCheck QCheck_alcotest Stats Testutil Topology
