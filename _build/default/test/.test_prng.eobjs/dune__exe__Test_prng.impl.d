test/test_prng.ml: Alcotest Array Fun Hashtbl Int64 List Option Printf Prng QCheck QCheck_alcotest Stats
