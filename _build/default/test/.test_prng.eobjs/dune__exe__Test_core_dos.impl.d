test/test_core_dos.ml: Alcotest Array Core Float List Printf Prng QCheck QCheck_alcotest Topology
