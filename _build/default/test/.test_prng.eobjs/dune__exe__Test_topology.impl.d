test/test_topology.ml: Alcotest Array Float Hashtbl List Option Printf Prng QCheck QCheck_alcotest Seq Stats Testutil Topology
