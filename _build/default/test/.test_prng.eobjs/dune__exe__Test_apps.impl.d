test/test_apps.ml: Alcotest Apps Array Core Float Hashtbl List Option Printf Prng QCheck QCheck_alcotest Stats Testutil Topology
