test/test_core_sampling.mli:
