test/test_core_reconfig.mli:
