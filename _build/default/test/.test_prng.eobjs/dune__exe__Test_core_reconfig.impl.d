test/test_core_reconfig.ml: Alcotest Array Buffer Core Hashtbl List Option Printf Prng QCheck QCheck_alcotest Seq Stats Testutil Topology
