test/test_core_churndos.ml: Alcotest Array Core List Printf Prng QCheck QCheck_alcotest Stats Topology
