test/testutil.ml: Prng String
