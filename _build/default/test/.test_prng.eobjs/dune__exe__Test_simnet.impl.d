test/test_simnet.ml: Alcotest Array Hashtbl List Printf Prng QCheck QCheck_alcotest Simnet
