(* Small helpers shared by the test executables. *)

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* A fixed-seed stream per test, split so tests do not interfere. *)
let rng ?(seed = 0xC0FFEEL) () = Prng.Stream.of_seed seed
