  $ ../../bin/overlay_sim.exe sample -n 256 --seed 7
  $ ../../bin/overlay_sim.exe churn -n 128 --epochs 2 --seed 7
  $ ../../bin/overlay_sim.exe dos -n 1024 --windows 2 --lateness 0 --seed 7
  $ ../../bin/overlay_sim.exe churndos -n 512 --windows 2 --seed 7
  $ ../../bin/overlay_sim.exe anonymize -n 1024 --requests 100 --frac 0.25 --seed 7
  $ ../../bin/overlay_sim.exe dht -n 512 --ops 50 --seed 7
  $ ../../examples/quickstart.exe
  $ ../../bin/overlay_sim.exe groupsim -n 512 --seed 7
