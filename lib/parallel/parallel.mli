(** Minimal deterministic fork-join parallelism on OCaml 5 domains, used by
    the experiment harness to compute independent table cells on separate
    cores.

    Design constraints honoured by the callers in this repository:
    - every task derives all of its randomness from its own
      {!Prng.Stream} (seeded by task identity), so results are
      bit-identical whether run sequentially or on any number of domains;
    - tasks share no mutable state (tables are filled from the returned
      values, sequentially);
    - the number of live domains stays below the runtime's recommended
      count. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()], at least 1; the calling domain
    works alongside the spawned ones, so this is the total parallelism.
    The [OVERLAY_DOMAINS] environment variable, when set to an integer,
    overrides the recommendation (clamped to at least 1; unparsable
    values are ignored).  The variable is re-read on every call, so a
    test or harness can change it between runs. *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map f xs] applies [f] to every element, distributing elements across
    [domains] worker domains ([default_domains ()] by default) in stripes
    by index; the result array is in input order.  Exceptions raised by
    [f] are re-raised in the caller.

    Short-input degrade: with [domains = 1] or fewer than two elements no
    domain is spawned and the call is exactly [Array.map f xs] — same
    order, same exceptions — so callers never pay spawn overhead for
    trivial inputs and sequential reference runs use the same code
    path. *)

val map_list : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** List version of {!map}, including its short-input sequential
    degrade. *)

val iter : ?domains:int -> (int -> unit) -> int -> unit
(** [iter f count] runs [f 0 .. f (count - 1)], striping the indices
    across worker domains like {!map} but collecting no results — shaped
    for unit tasks over disjoint mutable state (the engine's per-shard
    round phases).  Tasks must not touch state owned by another index.
    Exceptions are re-raised in the caller; the same short-input
    sequential degrade as {!map} applies ([domains <= 1] or
    [count <= 1]). *)
