(* OVERLAY_DOMAINS overrides the runtime's recommendation (sweep runs on
   shared CI machines want a pinned worker count); anything unparsable or
   < 1 falls back / clamps so a bad value can never disable the harness. *)
let default_domains () =
  match Sys.getenv_opt "OVERLAY_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d -> max 1 d
      | None -> max 1 (Domain.recommended_domain_count ()))
  | None -> max 1 (Domain.recommended_domain_count ())

let map ?domains f xs =
  let n = Array.length xs in
  let workers = min n (match domains with Some d -> max 1 d | None -> default_domains ()) in
  if workers <= 1 || n <= 1 then Array.map f xs
  else begin
    (* Static block distribution: worker w handles indices with
       [i mod workers = w].  Tasks in this repository have similar costs
       per index, so striping balances well without a work queue. *)
    let results = Array.make n None in
    let failure = Atomic.make None in
    let run_stripe w =
      let i = ref w in
      while !i < n && Atomic.get failure = None do
        (try results.(!i) <- Some (f xs.(!i))
         with e ->
           (* Capture the backtrace together with the exception so the
              re-raise after the join can preserve it. *)
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        i := !i + workers
      done
    in
    let handles =
      Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> run_stripe (w + 1)))
    in
    run_stripe 0;
    Array.iter Domain.join handles;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    (* every index was visited by exactly one stripe *)
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ?domains f xs =
  Array.to_list (map ?domains f (Array.of_list xs))

(* Indexed fork-join without a result array: the engine's per-shard round
   phases (merge, inbox build, sharded compute) are unit tasks over a
   small dense index range, run every round, so this avoids [map]'s
   per-call option-array allocation on the hot path. *)
let iter ?domains f count =
  let workers =
    min count (match domains with Some d -> max 1 d | None -> default_domains ())
  in
  if workers <= 1 || count <= 1 then
    for i = 0 to count - 1 do
      f i
    done
  else begin
    let failure = Atomic.make None in
    let run_stripe w =
      let i = ref w in
      while !i < count && Atomic.get failure = None do
        (try f !i
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        i := !i + workers
      done
    in
    let handles =
      Array.init (workers - 1) (fun w -> Domain.spawn (fun () -> run_stripe (w + 1)))
    in
    run_stripe 0;
    Array.iter Domain.join handles;
    match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  end
