(** m-bit identifier ring arithmetic (Chord, Stoica et al. 2001).

    Identifiers live on the ring [0 .. 2^m - 1]; both nodes and keys hash
    into the same space (consistent hashing), and every interval test
    wraps.  All functions are pure; the hash is {!Prng.Splitmix64.mix} of
    a salted input, so id assignment is a deterministic function of the
    ring's salt. *)

val max_bits : int
(** Largest supported [m] (ids stay comfortably inside native [int]). *)

val space : int -> int
(** [space m] = [2^m].  Raises [Invalid_argument] outside [1..max_bits]. *)

val mask : int -> int
(** [space m - 1]. *)

val node_id : m:int -> salt:int64 -> ?attempt:int -> int -> int
(** Hash node index into the ring.  [attempt] is the collision-probe
    counter: re-hash with [attempt + 1] until the id is unused. *)

val key_id : m:int -> salt:int64 -> int -> int
(** Hash an application key into the ring (distinct tag from node ids). *)

val in_oc : int -> int -> int -> bool
(** [in_oc a b x]: x in the half-open arc (a, b] walked clockwise.
    [a = b] denotes the full ring (every x qualifies). *)

val in_oo : int -> int -> int -> bool
(** [in_oo a b x]: x in the open arc (a, b).  [a = b] denotes the full
    ring minus the endpoint. *)

val dist : m:int -> int -> int -> int
(** Clockwise distance from [a] to [b]: [(b - a) mod 2^m]. *)

val finger_start : m:int -> int -> int -> int
(** [finger_start ~m id i] = [(id + 2^i) mod 2^m], the start of finger
    interval [i].  Raises [Invalid_argument] if [i] is outside [0, m). *)
