type strategy = No_attack | Random_blocking | Succ_kill

let parse_strategy = function
  | "none" -> Ok No_attack
  | "random" -> Ok Random_blocking
  | "succ-kill" | "group-kill" -> Ok Succ_kill
  | s ->
      Error
        (Printf.sprintf "unknown attack %S (expected none|random|succ-kill)" s)

let strategy_to_string = function
  | No_attack -> "none"
  | Random_blocking -> "random"
  | Succ_kill -> "succ-kill"

type view = { v_alive : bool array; v_succs : int array array }

type t = {
  strategy : strategy;
  budget : int;
  rng : Prng.Stream.t;
  ring : Ring.t;
  snapshots : view Simnet.Snapshots.t;
  hot : int array;  (* key ids, hottest first *)
}

let create ?(lateness = 0) ?staleness ~strategy ~frac ~rng ~ring ~hot_ids () =
  if frac < 0.0 || frac >= 1.0 || not (Float.is_finite frac) then
    invalid_arg "Chord.Adversary: frac must be in [0, 1)";
  let snapshots =
    match staleness with
    | None -> Simnet.Snapshots.create ~lateness
    | Some staleness ->
        Simnet.Snapshots.create_drawn ~staleness ~rng:(Prng.Stream.split rng)
  in
  {
    strategy;
    budget = int_of_float (frac *. float_of_int (Ring.n ring));
    rng;
    ring;
    snapshots;
    hot = hot_ids;
  }

let observe t =
  match t.strategy with
  | Succ_kill ->
      let n = Ring.n t.ring in
      Simnet.Snapshots.push t.snapshots
        {
          v_alive = Array.copy (Ring.alive t.ring);
          v_succs =
            Array.init n (fun v -> Array.copy (Ring.node t.ring v).Ring.succs);
        }
  | No_attack | Random_blocking -> ()

let mark_random t ~into =
  let n = Ring.n t.ring in
  let chosen = Array.make n false in
  let picked = ref 0 in
  while !picked < t.budget do
    let v = Prng.Stream.int t.rng n in
    if not chosen.(v) then begin
      chosen.(v) <- true;
      into.(v) <- true;
      incr picked
    end
  done

let mark_succ_kill t ~into =
  match Simnet.Snapshots.view t.snapshots with
  | None -> ()
  | Some view ->
      let n = Ring.n t.ring in
      let chosen = Array.make n false in
      let left = ref t.budget in
      let block v =
        if !left > 0 && v >= 0 && v < n && not chosen.(v) then begin
          chosen.(v) <- true;
          into.(v) <- true;
          decr left
        end
      in
      Array.iter
        (fun kid ->
          if !left > 0 then begin
            let owner = Ring.owner_with t.ring ~alive:view.v_alive kid in
            if owner >= 0 then begin
              block owner;
              Array.iter block view.v_succs.(owner)
            end
          end)
        t.hot

let mark t ~into =
  if t.budget > 0 then
    match t.strategy with
    | No_attack -> ()
    | Random_blocking -> mark_random t ~into
    | Succ_kill -> mark_succ_kill t ~into
