type node = {
  idx : int;
  id : int;
  mutable pred : int;
  succs : int array;
  fingers : int array;
  mutable next_finger : int;
}

type t = {
  m : int;
  r : int;
  nf : int;
  salt : int64;
  nodes : node array;
  alive : bool array;
  sorted : int array;  (* node indices by ascending id *)
  pos : int array;  (* pos.(idx) = position of idx in sorted *)
}

let default_m n = max 8 ((2 * Simnet.Msg_size.id_bits n) + 2)
let default_succs n = max 2 (Simnet.Msg_size.id_bits n)

let create ?m ?fingers ?succs ~rng ~n () =
  if n < 2 then invalid_arg "Chord.Ring: n < 2";
  let m = Option.value m ~default:(default_m n) in
  if Id.space m < 2 * n then
    invalid_arg
      (Printf.sprintf "Chord.Ring: id space 2^%d too small for %d nodes" m n);
  let nf =
    match fingers with
    | None -> m
    | Some f -> if f < 1 then invalid_arg "Chord.Ring: fingers < 1" else min f m
  in
  let r =
    match succs with
    | None -> min (default_succs n) (n - 1)
    | Some r -> if r < 1 then invalid_arg "Chord.Ring: succs < 1" else min r (n - 1)
  in
  let salt = Prng.Stream.bits64 rng in
  let used = Hashtbl.create (2 * n) in
  let ids =
    Array.init n (fun idx ->
        let rec probe attempt =
          let id = Id.node_id ~m ~salt ~attempt idx in
          if Hashtbl.mem used id then probe (attempt + 1)
          else begin
            Hashtbl.add used id ();
            id
          end
        in
        probe 0)
  in
  let nodes =
    Array.init n (fun idx ->
        {
          idx;
          id = ids.(idx);
          pred = -1;
          succs = Array.make r (-1);
          fingers = Array.make nf (-1);
          next_finger = 0;
        })
  in
  let sorted = Array.init n Fun.id in
  Array.sort (fun a b -> compare ids.(a) ids.(b)) sorted;
  let pos = Array.make n 0 in
  Array.iteri (fun p idx -> pos.(idx) <- p) sorted;
  { m; r; nf; salt; nodes; alive = Array.make n true; sorted; pos }

let n t = Array.length t.nodes
let m t = t.m
let r t = t.r
let nf t = t.nf
let node t v = t.nodes.(v)
let id t v = t.nodes.(v).id
let key_id t key = Id.key_id ~m:t.m ~salt:t.salt key
let is_alive t v = t.alive.(v)
let set_alive t v b = t.alive.(v) <- b
let alive t = t.alive

let alive_count t =
  Array.fold_left (fun a b -> if b then a + 1 else a) 0 t.alive

(* first position p (cyclically, starting at the binary-search insertion
   point for [target]) whose node satisfies [alive]; -1 if none *)
let owner_with t ~alive target =
  let len = Array.length t.sorted in
  (* smallest position with id >= target, len if none *)
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.nodes.(t.sorted.(mid)).id >= target then hi := mid else lo := mid + 1
  done;
  let start = !lo mod len in
  let rec scan p left =
    if left = 0 then -1
    else
      let v = t.sorted.(p) in
      if alive.(v) then v else scan ((p + 1) mod len) (left - 1)
  in
  scan start len

let oracle_owner t target = owner_with t ~alive:t.alive target

let oracle_next t v =
  let len = Array.length t.sorted in
  let rec scan p left =
    if left = 0 then -1
    else
      let w = t.sorted.(p) in
      if w <> v && t.alive.(w) then w else scan ((p + 1) mod len) (left - 1)
  in
  scan ((t.pos.(v) + 1) mod len) len

let holds t v ~key_id =
  t.alive.(v)
  &&
  let len = Array.length t.sorted in
  let owner = oracle_owner t key_id in
  owner >= 0
  &&
  let rec walk p left copies =
    if copies = 0 || left = 0 then false
    else
      let w = t.sorted.(p) in
      if not t.alive.(w) then walk ((p + 1) mod len) (left - 1) copies
      else if w = v then true
      else walk ((p + 1) mod len) (left - 1) (copies - 1)
  in
  walk t.pos.(owner) len t.r

let live_in_order t =
  let out = ref [] in
  for p = Array.length t.sorted - 1 downto 0 do
    let v = t.sorted.(p) in
    if t.alive.(v) then out := v :: !out
  done;
  Array.of_list !out

let reset_ideal t =
  let live = live_in_order t in
  let k = Array.length live in
  Array.iteri
    (fun j v ->
      let nd = t.nodes.(v) in
      for i = 0 to t.r - 1 do
        nd.succs.(i) <- (if i < k - 1 then live.((j + 1 + i) mod k) else -1)
      done;
      nd.pred <- (if k > 1 then live.((j + k - 1) mod k) else -1);
      for i = 0 to t.nf - 1 do
        nd.fingers.(i) <- oracle_owner t (Id.finger_start ~m:t.m nd.id i)
      done;
      nd.next_finger <- 0)
    live

let succ_ok_fraction t =
  let members = alive_count t in
  if members < 2 then 1.0
  else begin
    let ok = ref 0 in
    Array.iter
      (fun nd ->
        if t.alive.(nd.idx) && nd.succs.(0) = oracle_next t nd.idx then incr ok)
      t.nodes;
    float_of_int !ok /. float_of_int members
  end

let ring_connected t =
  let members = alive_count t in
  if members < 2 then true
  else begin
    let start =
      let rec first p = if t.alive.(t.sorted.(p)) then t.sorted.(p) else first (p + 1) in
      first 0
    in
    let visited = Array.make (n t) false in
    let rec walk v count =
      if visited.(v) then count = members
      else begin
        visited.(v) <- true;
        let nd = t.nodes.(v) in
        let rec next i =
          if i >= t.r then -1
          else
            let s = nd.succs.(i) in
            if s >= 0 && t.alive.(s) then s else next (i + 1)
        in
        match next 0 with -1 -> false | s -> walk s (count + 1)
      end
    in
    walk start 0
  end

let pick rng ~ok n =
  let start = Prng.Stream.int rng n in
  let rec scan d left =
    if left = 0 then None else if ok d then Some d else scan ((d + 1) mod n) (left - 1)
  in
  scan start n
