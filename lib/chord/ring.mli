(** Whole-network Chord routing state plus the brute-force oracle.

    A {!t} holds every node's mutable routing tables (successor list of
    length [r], finger table, predecessor) over a static id assignment:
    node indices hash once into the m-bit space at {!create} and never
    move — the property the stale-view adversary exploits, and the
    structural contrast with the paper's reconfiguration networks, whose
    assignment is redrawn every period.

    [alive] is membership (churned-out nodes are not members and own no
    keys); transient unavailability (crash, DoS blocking) is the caller's
    [avail] predicate and does not move ownership.  The oracle functions
    ({!oracle_owner}, {!oracle_next}, {!holds}) compute ground truth from
    the sorted id order and the membership bitmap, independent of any
    node's believed tables — tests and the replica-placement model use
    them; routing never does. *)

type node = {
  idx : int;
  id : int;
  mutable pred : int;  (** node index, [-1] = unknown *)
  succs : int array;  (** node indices ascending clockwise; [-1] = empty *)
  fingers : int array;  (** [fingers.(i)] ~ successor(id + 2^i); [-1] = unknown *)
  mutable next_finger : int;  (** round-robin cursor for [fix_fingers] *)
}

type t

val create :
  ?m:int -> ?fingers:int -> ?succs:int -> rng:Prng.Stream.t -> n:int -> unit -> t
(** Hash [n] node indices into the [2^m] space (salt drawn from [rng];
    collisions probed deterministically).  Defaults: [m = default_m n],
    [fingers = m] (clamped to [m]), [succs = default_succs n] (clamped to
    [n - 1]).  All nodes start alive with empty routing state; call
    {!reset_ideal} or {!Net.join} to populate.  Raises [Invalid_argument]
    if [n < 2] or [2^m < 2 n]. *)

val default_m : int -> int
(** [max 8 (2 * ceil(log2 n) + 2)] — enough slack that collisions are
    rare and arcs are well separated. *)

val default_succs : int -> int
(** [max 2 (ceil(log2 n))] — the paper's O(log n) successor list. *)

val n : t -> int
val m : t -> int
val r : t -> int
(** Successor-list length. *)

val nf : t -> int
(** Finger-table length ([<= m]). *)

val node : t -> int -> node
val id : t -> int -> int
val key_id : t -> int -> int
(** Hash an application key with this ring's salt. *)

val is_alive : t -> int -> bool
val set_alive : t -> int -> bool -> unit
val alive_count : t -> int
val alive : t -> bool array
(** The live membership bitmap (not a copy). *)

val reset_ideal : t -> unit
(** Give every alive node the fully converged routing state (successor
    lists, predecessors and fingers all oracle-exact over the current
    membership).  Dead nodes keep their stale tables. *)

val owner_with : t -> alive:bool array -> int -> int
(** Brute-force successor of an identifier under an arbitrary membership
    mask: the first node in [alive] whose id is >= the identifier
    (cyclically); [-1] if the mask is empty. *)

val oracle_owner : t -> int -> int
(** {!owner_with} over the ring's own membership. *)

val oracle_next : t -> int -> int
(** The true successor {e node} of node [v]: first alive member strictly
    clockwise after [v] (excluding [v] itself); [-1] if none. *)

val holds : t -> int -> key_id:int -> bool
(** Whether node [v] stores a replica of [key_id]: [v] is alive and among
    the first [r] alive members starting at the key's oracle owner.
    Models Chord's transfer-on-membership-change replica placement. *)

val succ_ok_fraction : t -> float
(** Fraction of alive nodes whose believed successor equals the oracle's
    (1.0 when fewer than two members). *)

val ring_connected : t -> bool
(** Whether following each node's first live believed successor from the
    lowest-id member visits every member. *)

val pick : Prng.Stream.t -> ok:(int -> bool) -> int -> int option
(** One bounded-rejection draw (then deterministic scan fallback) of a
    node index in [0, n) satisfying [ok]; [None] if none qualifies.
    Mirrors [Robust_dht.random_entry_with]'s draw discipline. *)
