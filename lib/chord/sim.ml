type config = {
  n : int;
  rounds : int;
  m : int;
  fingers : int;
  succs : int;
  period : int;
  keys : int;
  lookups : int;
  zipf : float;
  strategy : Adversary.strategy;
  frac : float;
  lateness : int;
  staleness : Simnet.Snapshots.staleness option;
  churn : (float * int) option;
  faults : Simnet.Faults.plan option;
  retries : int;
}

let config ?(rounds = 64) ?(m = -1) ?(fingers = -1) ?(succs = -1) ?(period = -1)
    ?(keys = 256) ?(lookups = 8) ?(zipf = 1.1) ?(strategy = Adversary.No_attack)
    ?(frac = 0.1) ?(lateness = -1) ?staleness ?churn ?faults ?(retries = 0) ~n
    () =
  if n < 2 then invalid_arg "Chord.Sim: n < 2";
  if rounds <= 0 then invalid_arg "Chord.Sim: rounds <= 0";
  if keys <= 0 then invalid_arg "Chord.Sim: keys <= 0";
  if lookups < 0 then invalid_arg "Chord.Sim: negative lookups";
  if retries < 0 then invalid_arg "Chord.Sim: negative retries";
  (match churn with
  | None -> ()
  | Some (frac, epoch) ->
      if frac < 0.0 || frac >= 1.0 || not (Float.is_finite frac) then
        invalid_arg "Chord.Sim: churn frac outside [0, 1)";
      if epoch <= 0 then invalid_arg "Chord.Sim: churn epoch <= 0");
  { n; rounds; m; fingers; succs; period; keys; lookups; zipf; strategy; frac;
    lateness; staleness; churn; faults; retries }

type report = {
  config : config;
  m : int;
  fingers : int;
  succs : int;
  period : int;
  issued : int;
  ok : int;
  lookup_timeouts : int;
  max_hops : int;
  hist : Stats.Log_histogram.t;
  lookup_msgs : int;
  maint : Net.stats;
  total_bits : int;
  succ_ok : float;
  connected : bool;
  members : int;
}

let goodput r =
  if r.issued = 0 then 1.0 else float_of_int r.ok /. float_of_int r.issued

let percentile r p =
  if Stats.Log_histogram.total r.hist = 0 then 0
  else Stats.Log_histogram.percentile r.hist p

let run ?(trace = Simnet.Trace.null) ?domains ~seed (cfg : config) =
  (* fixed split order, mirroring Workload.Driver *)
  let root = Prng.Stream.of_seed seed in
  let ring_rng = Prng.Stream.split root in
  let service_rng = Prng.Stream.split root in
  let churn_rng = Prng.Stream.split root in
  let attack_rng = Prng.Stream.split root in
  let n = cfg.n in
  let ring =
    Ring.create
      ?m:(if cfg.m > 0 then Some cfg.m else None)
      ?fingers:(if cfg.fingers > 0 then Some cfg.fingers else None)
      ?succs:(if cfg.succs > 0 then Some cfg.succs else None)
      ~rng:ring_rng ~n ()
  in
  Ring.reset_ideal ring;
  let m = Ring.m ring in
  let period = if cfg.period > 0 then cfg.period else 8 in
  let lateness = if cfg.lateness >= 0 then cfg.lateness else period in
  (* zipf popularity is monotone decreasing in the key index, so the heat
     ranking is the identity (uniform ties break the same way) *)
  let hot_ids = Array.init cfg.keys (fun k -> Ring.key_id ring k) in
  let adv =
    Adversary.create ~lateness ?staleness:cfg.staleness ~strategy:cfg.strategy
      ~frac:cfg.frac ~rng:attack_rng ~ring ~hot_ids ()
  in
  let rt =
    Simnet.Runtime.create ~trace ?faults:cfg.faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
      ~who:"Chord.Sim" ?domains ~n ()
  in
  let retry =
    if cfg.retries = 0 then Core.Retry.fixed
    else Core.Retry.make ~max_retries:cfg.retries ()
  in
  let net = Net.create ring ~rt ~period ~retry () in
  let blocked = Array.make n false in
  let churn_down = Array.make n false in
  let lkp_bits =
    Simnet.Msg_size.ids_msg ~id_bits:m ~count:1 + 64
  and maint_bits =
    Simnet.Msg_size.ids_msg ~id_bits:m ~count:(Ring.r ring)
  in
  let issued = ref 0 and ok = ref 0 and lookup_timeouts = ref 0 in
  let max_hops = ref 0 and lookup_msgs = ref 0 and total_bits = ref 0 in
  let hist = Stats.Log_histogram.create () in
  let avail v = Ring.is_alive ring v && not blocked.(v) in
  Simnet.Runtime.note rt ~name:"chord/run"
    [
      ("n", Simnet.Trace.Int n);
      ("m", Simnet.Trace.Int m);
      ("fingers", Simnet.Trace.Int (Ring.nf ring));
      ("succs", Simnet.Trace.Int (Ring.r ring));
      ("period", Simnet.Trace.Int period);
      ("rounds", Simnet.Trace.Int cfg.rounds);
      ("attack", Simnet.Trace.String (Adversary.strategy_to_string cfg.strategy));
    ];
  for r = 0 to cfg.rounds - 1 do
    (* 1. the adversary's delayed observation *)
    Adversary.observe adv;
    (* 2. churn epoch boundary: redraw the down set; returning nodes
       re-join through a live introducer *)
    (match cfg.churn with
    | Some (frac, epoch) when r mod epoch = 0 ->
        let was_down = Array.copy churn_down in
        Array.fill churn_down 0 n false;
        let down = int_of_float (frac *. float_of_int n) in
        if down > 0 then begin
          let picks = Prng.Stream.sample_distinct churn_rng n ~k:down in
          Array.iter (fun v -> churn_down.(v) <- true) picks
        end;
        for v = 0 to n - 1 do
          Ring.set_alive ring v (not churn_down.(v))
        done;
        let join_avail v =
          Ring.is_alive ring v && not (Simnet.Runtime.crashed rt v)
        in
        for v = 0 to n - 1 do
          if was_down.(v) && not churn_down.(v) then
            match Ring.pick churn_rng ~ok:(fun u -> u <> v && join_avail u) n with
            | Some via -> ignore (Net.join net ~avail:join_avail ~via v)
            | None -> ()
        done;
        Simnet.Runtime.adversary rt ~kind:"churn"
          [ ("round", Simnet.Trace.Int r); ("down", Simnet.Trace.Int down) ]
    | _ -> ());
    (* 3. scheduled crash / recover transitions *)
    ignore (Simnet.Runtime.tick rt);
    (* 4. this round's blocked set: churn + crashes + adversary budget *)
    for v = 0 to n - 1 do
      blocked.(v) <- churn_down.(v) || Simnet.Runtime.crashed rt v
    done;
    Adversary.mark adv ~into:blocked;
    let blocked_count =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
    in
    (* 5. one staggered maintenance slice *)
    let maint_before = (Net.stats net).Net.msgs in
    Net.tick net ~avail;
    let maint_round = (Net.stats net).Net.msgs - maint_before in
    (* 6. probe lookups *)
    let round_lkp = ref 0 in
    for i = 0 to cfg.lookups - 1 do
      incr issued;
      let key =
        if cfg.zipf > 0.0 then
          Prng.Dist.zipf service_rng ~n:cfg.keys ~s:cfg.zipf - 1
        else Prng.Stream.int service_rng cfg.keys
      in
      let kid = Ring.key_id ring key in
      let status, latency, hops =
        match Ring.pick service_rng ~ok:avail n with
        | None -> ("failed", 1, 0)
        | Some from ->
            let o =
              Lookup.find ring ~rt ~avail
                ~accept:(fun v -> Ring.holds ring v ~key_id:kid)
                ~from ~id:kid ()
            in
            round_lkp := !round_lkp + o.Lookup.msgs;
            lookup_timeouts := !lookup_timeouts + o.Lookup.timeouts;
            let latency = 1 + o.Lookup.hops + o.Lookup.timeouts in
            if o.Lookup.ok then begin
              incr ok;
              if o.Lookup.hops > !max_hops then max_hops := o.Lookup.hops;
              Stats.Log_histogram.add hist latency;
              ("ok", latency, o.Lookup.hops)
            end
            else ("failed", latency, o.Lookup.hops)
      in
      Simnet.Runtime.request rt ~op:"lookup" ~round:r ~client:i ~latency ~hops
        ~status
    done;
    lookup_msgs := !lookup_msgs + !round_lkp;
    let round_bits = (!round_lkp * lkp_bits) + (maint_round * maint_bits) in
    total_bits := !total_bits + round_bits;
    Simnet.Runtime.emit_round rt
      ~msgs:(!round_lkp + maint_round)
      ~bits:round_bits ~max_node_bits:0 ~max_node_msgs:0 ~blocked:blocked_count;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  let succ_ok = Ring.succ_ok_fraction ring in
  let connected = Ring.ring_connected ring in
  let members = Ring.alive_count ring in
  Simnet.Runtime.note rt ~name:"chord/health"
    [
      ("succ_ok", Simnet.Trace.Float succ_ok);
      ("connected", Simnet.Trace.Bool connected);
      ("members", Simnet.Trace.Int members);
    ];
  {
    config = cfg;
    m;
    fingers = Ring.nf ring;
    succs = Ring.r ring;
    period;
    issued = !issued;
    ok = !ok;
    lookup_timeouts = !lookup_timeouts;
    max_hops = !max_hops;
    hist;
    lookup_msgs = !lookup_msgs;
    maint = Net.stats net;
    total_bits = !total_bits;
    succ_ok;
    connected;
    members;
  }

let summary_lines r =
  let st = r.maint in
  [
    Printf.sprintf "chord: n=%d m=%d fingers=%d succs=%d period=%d rounds=%d"
      r.config.n r.m r.fingers r.succs r.period r.config.rounds;
    Printf.sprintf
      "lookups: issued=%d ok=%d goodput=%.3f p50=%d p99=%d max-hops=%d timeouts=%d"
      r.issued r.ok (goodput r) (percentile r 0.50) (percentile r 0.99)
      r.max_hops r.lookup_timeouts;
    Printf.sprintf
      "maintenance: stabilize=%d adoptions=%d fallbacks=%d isolated=%d \
       finger-fixes=%d pred-clears=%d joins=%d join-failures=%d"
      st.Net.stabilize_runs st.Net.succ_adoptions st.Net.succ_fallbacks
      st.Net.isolated st.Net.finger_fixes st.Net.pred_clears st.Net.joins
      st.Net.join_failures;
    Printf.sprintf "traffic: lookup-msgs=%d maint-msgs=%d total-bits=%d"
      r.lookup_msgs st.Net.msgs r.total_bits;
    Printf.sprintf "health: succ-ok=%.3f connected=%b members=%d" r.succ_ok
      r.connected r.members;
  ]
