type stats = {
  mutable stabilize_runs : int;
  mutable succ_adoptions : int;
  mutable succ_fallbacks : int;
  mutable isolated : int;
  mutable finger_probes : int;
  mutable finger_fixes : int;
  mutable pred_clears : int;
  mutable notifies : int;
  mutable joins : int;
  mutable join_failures : int;
  mutable msgs : int;
  mutable timeouts : int;
}

type t = {
  ring : Ring.t;
  rt : Simnet.Runtime.t;
  period : int;
  attempts : int;  (* probes allowed per contact: 1 + retry budget *)
  mutable round : int;
  stats : stats;
}

let create ring ~rt ?(period = 8) ?(retry = Core.Retry.fixed) () =
  if period <= 0 then invalid_arg "Chord.Net: period <= 0";
  {
    ring;
    rt;
    period;
    attempts = 1 + retry.Core.Retry.max_retries;
    round = 0;
    stats =
      {
        stabilize_runs = 0;
        succ_adoptions = 0;
        succ_fallbacks = 0;
        isolated = 0;
        finger_probes = 0;
        finger_fixes = 0;
        pred_clears = 0;
        notifies = 0;
        joins = 0;
        join_failures = 0;
        msgs = 0;
        timeouts = 0;
      };
  }

let ring t = t.ring
let stats t = t.stats

(* request/reply probe of [v], re-tried within the slice's budget *)
let contact t ~avail v =
  let rec go k =
    if k >= t.attempts then false
    else begin
      t.stats.msgs <- t.stats.msgs + 1;
      let req = Simnet.Runtime.leg t.rt ~dst:v () in
      let ok =
        if not (req && avail v) then false
        else begin
          t.stats.msgs <- t.stats.msgs + 1;
          Simnet.Runtime.leg t.rt ~src:v ()
        end
      in
      if ok then true
      else begin
        t.stats.timeouts <- t.stats.timeouts + 1;
        go (k + 1)
      end
    end
  in
  go 0

(* v.succs := new_succ followed by new_succ's list (skipping v and holes) *)
let install_succs t v new_succ =
  let nd = Ring.node t.ring v in
  let src = (Ring.node t.ring new_succ).Ring.succs in
  nd.Ring.succs.(0) <- new_succ;
  let j = ref 1 in
  Array.iter
    (fun e ->
      if !j < Array.length nd.Ring.succs && e >= 0 && e <> v && e <> new_succ then begin
        nd.Ring.succs.(!j) <- e;
        incr j
      end)
    src;
  while !j < Array.length nd.Ring.succs do
    nd.Ring.succs.(!j) <- -1;
    incr j
  done

let notify t ~avail v target =
  t.stats.notifies <- t.stats.notifies + 1;
  t.stats.msgs <- t.stats.msgs + 1;
  if Simnet.Runtime.leg t.rt ~src:v ~dst:target () && avail target then begin
    let tn = Ring.node t.ring target in
    let vid = Ring.id t.ring v in
    if
      tn.Ring.pred < 0
      || Id.in_oo (Ring.id t.ring tn.Ring.pred) tn.Ring.id vid
    then tn.Ring.pred <- v
  end

let stabilize t ~avail v =
  let nd = Ring.node t.ring v in
  t.stats.stabilize_runs <- t.stats.stabilize_runs + 1;
  let first_responsive arr =
    let found = ref (-1) in
    Array.iter
      (fun e -> if !found < 0 && e >= 0 && e <> v && contact t ~avail e then found := e)
      arr;
    !found
  in
  let s = first_responsive nd.Ring.succs in
  if s < 0 then begin
    (* whole successor list dead: degrade to the finger table *)
    let f = first_responsive nd.Ring.fingers in
    if f < 0 then t.stats.isolated <- t.stats.isolated + 1
    else begin
      t.stats.succ_fallbacks <- t.stats.succ_fallbacks + 1;
      if nd.Ring.succs.(0) <> f then t.stats.succ_adoptions <- t.stats.succ_adoptions + 1;
      install_succs t v f;
      notify t ~avail v f
    end
  end
  else begin
    (* classic stabilize: adopt s.pred if it sits between us and s and
       answers a probe (the reply carries its successor list) *)
    let sp = (Ring.node t.ring s).Ring.pred in
    let adopt =
      sp >= 0 && sp <> v
      && Id.in_oo nd.Ring.id (Ring.id t.ring s) (Ring.id t.ring sp)
      && contact t ~avail sp
    in
    let new_succ = if adopt then sp else s in
    if nd.Ring.succs.(0) <> new_succ then
      t.stats.succ_adoptions <- t.stats.succ_adoptions + 1;
    install_succs t v new_succ;
    notify t ~avail v new_succ
  end

let fix_finger t ~avail v =
  if Ring.nf t.ring > 0 then begin
    let nd = Ring.node t.ring v in
    let i = nd.Ring.next_finger in
    nd.Ring.next_finger <- (i + 1) mod Ring.nf t.ring;
    t.stats.finger_probes <- t.stats.finger_probes + 1;
    let target = Id.finger_start ~m:(Ring.m t.ring) nd.Ring.id i in
    let o = Lookup.find t.ring ~rt:t.rt ~avail ~from:v ~id:target () in
    t.stats.msgs <- t.stats.msgs + o.Lookup.msgs;
    t.stats.timeouts <- t.stats.timeouts + o.Lookup.timeouts;
    if o.Lookup.ok then begin
      if nd.Ring.fingers.(i) <> o.Lookup.owner then
        t.stats.finger_fixes <- t.stats.finger_fixes + 1;
      nd.Ring.fingers.(i) <- o.Lookup.owner
    end
  end

let check_predecessor t ~avail v =
  let nd = Ring.node t.ring v in
  if nd.Ring.pred >= 0 && not (contact t ~avail nd.Ring.pred) then begin
    nd.Ring.pred <- -1;
    t.stats.pred_clears <- t.stats.pred_clears + 1
  end

let tick t ~avail =
  let n = Ring.n t.ring in
  let before_msgs = t.stats.msgs and before_to = t.stats.timeouts in
  let active = ref 0 in
  for v = 0 to n - 1 do
    if Ring.is_alive t.ring v && avail v && (t.round + v) mod t.period = 0 then begin
      incr active;
      stabilize t ~avail v;
      fix_finger t ~avail v;
      check_predecessor t ~avail v
    end
  done;
  if !active > 0 then
    Simnet.Runtime.span t.rt ~name:"chord/maintain" ~rounds:1
      [
        ("round", Simnet.Trace.Int t.round);
        ("active", Simnet.Trace.Int !active);
        ("msgs", Simnet.Trace.Int (t.stats.msgs - before_msgs));
        ("timeouts", Simnet.Trace.Int (t.stats.timeouts - before_to));
      ];
  t.round <- t.round + 1

let join t ~avail ~via idx =
  let nd = Ring.node t.ring idx in
  let m = Ring.m t.ring in
  let target = (nd.Ring.id + 1) land Id.mask m in
  let o = Lookup.find t.ring ~rt:t.rt ~avail ~from:via ~id:target () in
  t.stats.msgs <- t.stats.msgs + o.Lookup.msgs;
  t.stats.timeouts <- t.stats.timeouts + o.Lookup.timeouts;
  if o.Lookup.ok && o.Lookup.owner <> idx then begin
    t.stats.joins <- t.stats.joins + 1;
    install_succs t idx o.Lookup.owner;
    nd.Ring.pred <- -1;
    Array.fill nd.Ring.fingers 0 (Ring.nf t.ring) (-1);
    nd.Ring.fingers.(0) <- o.Lookup.owner;
    nd.Ring.next_finger <- 1 mod Ring.nf t.ring;
    Simnet.Runtime.note t.rt ~name:"chord/join"
      [
        ("node", Simnet.Trace.Int idx);
        ("succ", Simnet.Trace.Int o.Lookup.owner);
        ("via", Simnet.Trace.Int via);
      ];
    true
  end
  else begin
    t.stats.join_failures <- t.stats.join_failures + 1;
    false
  end
