(** Stale-view DoS strategies against the Chord ring, mirroring
    {!Workload.Attack} shape-for-shape so both backends face the same
    adversary plane.

    The succ-kill attacker is the Chord analogue of group-kill: from a
    t-late snapshot of membership and successor lists it blocks, hottest
    key first, the key's {e viewed} owner and every member of that owner's
    {e viewed} successor list — wiping the whole believed replica chain —
    until the budget [frac * n] is spent.  Because the id assignment is
    static, the snapshot's aim never goes stale: only membership changes
    age, which is exactly why Chord collapses where the reconfiguration
    networks (whose assignment is redrawn every period) shrug the same
    budget off. *)

type strategy = No_attack | Random_blocking | Succ_kill

val parse_strategy : string -> (strategy, string) result
(** ["none"], ["random"], ["succ-kill"] — plus ["group-kill"] as an alias
    for succ-kill, so one scenario spec drives both backends. *)

val strategy_to_string : strategy -> string

type view = { v_alive : bool array; v_succs : int array array }
(** One observation: membership bitmap and per-node successor lists. *)

type t

val create :
  ?lateness:int ->
  ?staleness:Simnet.Snapshots.staleness ->
  strategy:strategy ->
  frac:float ->
  rng:Prng.Stream.t ->
  ring:Ring.t ->
  hot_ids:int array ->
  unit ->
  t
(** [hot_ids] are key identifiers (already hashed) ranked hottest first.
    Drawn staleness splits a dedicated child off [rng], exactly as the
    workload attack plane does.  Raises [Invalid_argument] unless
    [0 <= frac < 1]. *)

val observe : t -> unit
(** Push this round's topology into the t-late snapshot buffer (succ-kill
    only; the other strategies keep no state). *)

val mark : t -> into:bool array -> unit
(** Spend the budget into the blocked set.  Each node costs one unit the
    first time this call blocks it, matching the workload attacker's
    budget discipline. *)
