(** Periodic Chord maintenance as a gossip-style driver on
    {!Simnet.Runtime}: unsolicited per-node legs on a staggered cadence,
    no global epochs.

    Each available node [v] runs one maintenance slice every [period]
    rounds (slices staggered by node index, so load is spread evenly):

    - {b stabilize}: walk the successor list for the first contactable
      entry [s] (each probe is a retry-budgeted request/reply pair); adopt
      [s]'s predecessor as the new successor when it sits in the arc
      [(v, s)] and answers a probe; rebuild the rest of the list from the
      successor's own list; then notify the successor so it can adopt [v]
      as predecessor.  A node whose whole list is dead falls back to its
      fingers, and is counted isolated if those fail too.
    - {b fix_fingers}: refresh one finger per slice (round-robin) with a
      bounded {!Lookup.find} for [finger_start v i].
    - {b check_predecessor}: probe the predecessor and clear it on
      timeout.

    Every active round emits one ["chord/maintain"] trace span carrying
    the slice's activity counters (the vocabulary
    [trace_check --require 'chord/*'] validates). *)

type stats = {
  mutable stabilize_runs : int;
  mutable succ_adoptions : int;  (** successor-list head changed *)
  mutable succ_fallbacks : int;  (** successor recovered through a finger *)
  mutable isolated : int;  (** slices that found no live pointer at all *)
  mutable finger_probes : int;
  mutable finger_fixes : int;
  mutable pred_clears : int;
  mutable notifies : int;
  mutable joins : int;
  mutable join_failures : int;
  mutable msgs : int;
  mutable timeouts : int;
}

type t

val create :
  Ring.t ->
  rt:Simnet.Runtime.t ->
  ?period:int ->
  ?retry:Core.Retry.policy ->
  unit ->
  t
(** [period] defaults to 8 rounds; [retry] (default {!Core.Retry.fixed})
    bounds re-probes of an unresponsive contact within one slice.  Raises
    [Invalid_argument] if [period <= 0]. *)

val ring : t -> Ring.t
val stats : t -> stats

val tick : t -> avail:(int -> bool) -> unit
(** Run one round of staggered maintenance over the nodes that are alive
    and [avail], then advance the internal round counter.  Call once per
    simulation round, before serving that round's requests. *)

val join : t -> avail:(int -> bool) -> via:int -> int -> bool
(** (Re)join node [idx] through introducer [via]: look up the successor
    of [idx]'s id, install it (successor list from the owner's list,
    predecessor and fingers reset) and report success.  On failure the
    node keeps its stale tables for stabilization to repair — the
    crash-recover degradation mode. *)
