(** Standalone Chord simulation: ring + maintenance + probe lookups under
    churn, crash plans, per-edge faults and the stale-view adversary.
    Backs [overlay_sim chord] and the [run=chord] sweep runner; the
    DHT-workload integration lives in {!Workload.Driver} instead.

    Each round: the adversary observes (t-late), churn epochs redraw the
    membership (returning nodes re-join through a live introducer),
    crash/recover transitions apply, the blocked set is assembled, one
    staggered maintenance slice runs ({!Net.tick}), and [lookups] probe
    lookups with zipf-ranked keys are issued from random available entry
    nodes, each accepted only by a true replica holder ({!Ring.holds}).
    Lookup latency is [1 + hops + timeouts] rounds. *)

type config = {
  n : int;
  rounds : int;
  m : int;  (** id bits; [-1] = {!Ring.default_m} *)
  fingers : int;  (** finger-table length; [-1] = [m] *)
  succs : int;  (** successor-list length; [-1] = {!Ring.default_succs} *)
  period : int;  (** maintenance period; [-1] = 8 *)
  keys : int;
  lookups : int;  (** probe lookups per round *)
  zipf : float;  (** key-popularity exponent; [<= 0] = uniform *)
  strategy : Adversary.strategy;
  frac : float;
  lateness : int;  (** adversary lateness; [-1] = the maintenance period *)
  staleness : Simnet.Snapshots.staleness option;
  churn : (float * int) option;  (** fraction down, epoch length *)
  faults : Simnet.Faults.plan option;
  retries : int;  (** maintenance contact retry budget *)
}

val config :
  ?rounds:int ->
  ?m:int ->
  ?fingers:int ->
  ?succs:int ->
  ?period:int ->
  ?keys:int ->
  ?lookups:int ->
  ?zipf:float ->
  ?strategy:Adversary.strategy ->
  ?frac:float ->
  ?lateness:int ->
  ?staleness:Simnet.Snapshots.staleness ->
  ?churn:float * int ->
  ?faults:Simnet.Faults.plan ->
  ?retries:int ->
  n:int ->
  unit ->
  config
(** Defaults: 64 rounds, 256 keys, 8 lookups/round, zipf 1.1, no attack,
    frac 0.1, derived ring parameters.  Raises [Invalid_argument] on
    non-positive counts or churn outside [0, 1). *)

type report = {
  config : config;
  m : int;  (** resolved ring parameters *)
  fingers : int;
  succs : int;
  period : int;
  issued : int;
  ok : int;
  lookup_timeouts : int;  (** failed contact attempts across all lookups *)
  max_hops : int;
  hist : Stats.Log_histogram.t;  (** latency of served lookups *)
  lookup_msgs : int;
  maint : Net.stats;
  total_bits : int;
  succ_ok : float;  (** final {!Ring.succ_ok_fraction} *)
  connected : bool;  (** final {!Ring.ring_connected} *)
  members : int;  (** final live membership *)
}

val goodput : report -> float
val percentile : report -> float -> int

val run :
  ?trace:Simnet.Trace.t -> ?domains:int -> seed:int64 -> config -> report
(** Deterministic in [seed] (fixed stream split order, same discipline as
    the workload driver): same seed, same config — byte-identical trace.
    [domains] bounds the runtime's worker domains and never affects the
    result. *)

val summary_lines : report -> string list
(** The [overlay_sim chord] table (also the cram golden). *)
