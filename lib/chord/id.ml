let max_bits = 30

let check_m m =
  if m < 1 || m > max_bits then
    invalid_arg (Printf.sprintf "Chord.Id: m must be in [1, %d]" max_bits)

let space m =
  check_m m;
  1 lsl m

let mask m = space m - 1

(* distinct odd tags keep node and key hashes statistically independent *)
let node_tag = 0x9e3779b97f4a7c15L
let key_tag = 0xbf58476d1ce4e5b9L

let of_mix ~m x = Int64.to_int (Int64.logand x (Int64.of_int (mask m)))

let node_id ~m ~salt ?(attempt = 0) idx =
  of_mix ~m
    (Prng.Splitmix64.mix
       (Int64.add (Int64.logxor salt node_tag)
          (Int64.logor (Int64.of_int idx)
             (Int64.shift_left (Int64.of_int attempt) 32))))

let key_id ~m ~salt key =
  of_mix ~m
    (Prng.Splitmix64.mix (Int64.add (Int64.logxor salt key_tag) (Int64.of_int key)))

let in_oc a b x = if a = b then true else if a < b then a < x && x <= b else x > a || x <= b

let in_oo a b x =
  if a = b then x <> a else if a < b then a < x && x < b else x > a || x < b

let dist ~m a b = (b - a) land mask m

let finger_start ~m id i =
  if i < 0 || i >= m then invalid_arg "Chord.Id.finger_start: index outside [0, m)";
  (id + (1 lsl i)) land mask m
