type outcome = { ok : bool; owner : int; hops : int; timeouts : int; msgs : int }

exception Done of int

let find ring ~rt ~avail ?(accept = fun _ -> true) ?max_hops ~from ~id () =
  let m = Ring.m ring in
  let max_hops = Option.value max_hops ~default:(4 * m) in
  let hops = ref 0 and timeouts = ref 0 and msgs = ref 0 in
  let budget_left () = !hops + !timeouts < max_hops in
  (* one request leg out, and if the target is reachable, one reply leg
     back; the request is charged even when it dies on the wire *)
  let contact v =
    incr msgs;
    let req = Simnet.Runtime.leg rt ~dst:v () in
    if not (req && avail v) then begin
      incr timeouts;
      false
    end
    else begin
      incr msgs;
      if Simnet.Runtime.leg rt ~src:v () then begin
        incr hops;
        true
      end
      else begin
        incr timeouts;
        false
      end
    end
  in
  let outcome ok owner =
    { ok; owner; hops = !hops; timeouts = !timeouts; msgs = !msgs }
  in
  try
    let cur = ref from in
    let progressing = ref true in
    while !progressing do
      let nd = Ring.node ring !cur in
      let cid = nd.Ring.id in
      let s0 =
        let rec first i =
          if i >= Array.length nd.Ring.succs then -1
          else if nd.Ring.succs.(i) >= 0 then nd.Ring.succs.(i)
          else first (i + 1)
        in
        first 0
      in
      if s0 >= 0 && Id.in_oc cid (Ring.id ring s0) id then begin
        (* [cur] believes the key falls to its successor list: the entries
           are exactly the believed replica chain, walked in order; if none
           is contactable and accepted, the lookup fails here *)
        progressing := false;
        Array.iter
          (fun cand ->
            if cand >= 0 && budget_left () && contact cand && accept cand then
              raise (Done cand))
          nd.Ring.succs
      end
      else begin
        (* greedy routing: every known pointer strictly inside (cur, id),
           farthest (closest preceding the target) first; successor
           entries ride along as the walking fallback *)
        let dtarget = Id.dist ~m cid id in
        let cands = ref [] in
        let consider v =
          if v >= 0 && not (List.mem v !cands) then begin
            let d = Id.dist ~m cid (Ring.id ring v) in
            if d > 0 && d < dtarget then cands := v :: !cands
          end
        in
        Array.iter consider nd.Ring.fingers;
        Array.iter consider nd.Ring.succs;
        let cands =
          List.sort
            (fun a b ->
              compare (Id.dist ~m cid (Ring.id ring b)) (Id.dist ~m cid (Ring.id ring a)))
            !cands
        in
        progressing := false;
        List.iter
          (fun cand ->
            if (not !progressing) && budget_left () && contact cand then begin
              cur := cand;
              progressing := true
            end)
          cands
      end;
      if !progressing && not (budget_left ()) then progressing := false
    done;
    outcome false (-1)
  with Done owner -> outcome true owner
