(** Iterative Chord lookup over believed routing state.

    The querier walks the ring itself: at each step it asks the current
    node for the next hop, so every contact is a request/reply pair rolled
    through the runtime's fault plan ({!Simnet.Runtime.leg}).  Routing is
    greedy through the finger table — candidates are every known finger or
    successor-list entry strictly inside the arc (current, target), tried
    farthest-first — which degrades gracefully to successor-walking when
    fingers are unknown or dead: the successor entries are always in the
    candidate list, just tried last.  Once the current node believes the
    target falls to its successor list, the entries are tried in order
    (replica walking) until one is contactable and [accept]ed. *)

type outcome = {
  ok : bool;
  owner : int;  (** the accepted node; [-1] on failure *)
  hops : int;  (** successful contacts (request and reply both arrived) *)
  timeouts : int;  (** contact attempts that got no reply *)
  msgs : int;  (** messages charged: every request, plus delivered replies *)
}

val find :
  Ring.t ->
  rt:Simnet.Runtime.t ->
  avail:(int -> bool) ->
  ?accept:(int -> bool) ->
  ?max_hops:int ->
  from:int ->
  id:int ->
  unit ->
  outcome
(** Resolve identifier [id] starting at node [from] (assumed available; it
    is the querier's entry point and is not contacted).  [avail] is the
    round's reachability (membership minus crashes, churn and DoS
    blocking); [accept] (default: everything) decides whether a contacted
    owner-candidate actually serves the request — pass a replica check to
    model data placement.  The contact budget [max_hops] (default [4 * m])
    caps successful and failed contacts together. *)
