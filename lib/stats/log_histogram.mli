(** Log-bucketed histograms for latency-like quantities.

    Unlike {!Histogram} (one exact cell per value, bounded domain), a
    log-histogram covers all non-negative integers with bounded relative
    error: values below [sub_buckets] get one exact cell each, and every
    further power-of-two octave is divided into [sub_buckets] linear cells,
    so a recorded value is attributed to a cell whose width is at most
    [value / sub_buckets] (HdrHistogram-style indexing, fixed precision).

    Everything is integer counts, so shard-and-merge is exact: merging
    per-domain (or per-class) shards yields byte-identical quantiles to
    sequential accumulation, in any shard split — the property the workload
    driver relies on to stay deterministic under [Parallel.map]. *)

type t

val create : unit -> t
(** Empty histogram.  [sub_buckets] is fixed at 32, giving <= 3.2% relative
    quantile error in every octave. *)

val sub_buckets : int
(** Cells per octave (32). *)

val add : t -> int -> unit
(** Record one observation.  Raises [Invalid_argument] on negatives. *)

val add_many : t -> int -> int -> unit
(** [add_many t v k] records value [v] [k] times ([k >= 0]). *)

val total : t -> int
val max_observed : t -> int
(** Largest value recorded so far (0 when empty). *)

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,1]: upper bound of the lowest
    non-empty cell at which the cumulative count reaches the rank
    [max 1 (ceil (p * total))] — an overestimate of the exact order
    statistic by at most one cell width, and never above
    {!max_observed}.  [p = 0.0] selects the first observation, [p = 1.0]
    the last.  Raises [Invalid_argument] if the histogram is empty or
    [p] is outside [0,1] (including nan). *)

val mean : t -> float
(** Mean of the cell midpoints, weighted by count (0 when empty): an
    unbiased-within-a-cell estimate of the sample mean, exact whenever
    every observation lands in a single-valued cell (values below
    [2 * sub_buckets]), and otherwise off by at most half a cell width
    per observation. *)

val buckets : t -> (int * int * int) list
(** Non-empty cells as [(lo, hi, count)] triples, increasing; exact
    representation of the histogram's state (used by tests and exporters). *)

val merge : t -> t -> t
(** Fresh histogram holding the exact cell-wise sum of both. *)

val merge_into : into:t -> t -> unit
(** In-place variant: add every cell of the second histogram to [into]. *)

val equal : t -> t -> bool
(** Cell-wise equality (same counts in every cell, same max). *)
