(** Named-metric accumulation: a small registry of {!Moments} keyed by
    string, so experiment drivers can record many metrics without plumbing
    accumulators everywhere. *)

type t

val create : unit -> t
val observe : t -> string -> float -> unit
val observe_int : t -> string -> int -> unit
val get : t -> string -> Moments.t option
val mean : t -> string -> float
(** Mean of a metric.  Raises [Not_found] if the name was never observed —
    a silent [0.0] here would fabricate data in experiment tables. *)

val max : t -> string -> float
(** Max of a metric.  Raises [Not_found] if the name was never observed. *)

val mean_opt : t -> string -> float option
(** Like {!mean} but [None] for a never-observed name. *)

val max_opt : t -> string -> float option
(** Like {!max} but [None] for a never-observed name. *)

val names : t -> string list
(** Sorted metric names. *)

val pp : Format.formatter -> t -> unit
(** One line per metric: name, count, mean, stddev, min, max. *)
