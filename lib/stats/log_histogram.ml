(* HdrHistogram-style indexing with a fixed precision: values below
   [sub_buckets] get exact cells; octave [o] >= sub_bits is split into
   [sub_buckets] linear cells of width 2^(o - sub_bits). *)

let sub_bits = 5
let sub_buckets = 1 lsl sub_bits

type t = {
  mutable counts : int array;  (* indexed by cell, grown on demand *)
  mutable total : int;
  mutable max_obs : int;
}

let create () = { counts = Array.make sub_buckets 0; total = 0; max_obs = 0 }

let msb v =
  (* position of the highest set bit; v >= 1 *)
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let cell_of v =
  if v < sub_buckets then v
  else
    let shift = msb v - sub_bits in
    (shift * sub_buckets) + (v lsr shift)

let bounds_of i =
  if i < sub_buckets then (i, i)
  else
    let shift = (i / sub_buckets) - 1 in
    let scaled = i - (shift * sub_buckets) in
    (scaled lsl shift, ((scaled + 1) lsl shift) - 1)

let ensure t i =
  let cap = Array.length t.counts in
  if i >= cap then begin
    let counts = Array.make (max (i + 1) (2 * cap)) 0 in
    Array.blit t.counts 0 counts 0 cap;
    t.counts <- counts
  end

let add_many t v k =
  if v < 0 then invalid_arg "Log_histogram.add: negative value";
  if k < 0 then invalid_arg "Log_histogram.add_many: negative count";
  if k > 0 then begin
    let i = cell_of v in
    ensure t i;
    t.counts.(i) <- t.counts.(i) + k;
    t.total <- t.total + k;
    if v > t.max_obs then t.max_obs <- v
  end

let add t v = add_many t v 1

let total t = t.total
let max_observed t = t.max_obs

let percentile t p =
  if t.total = 0 then invalid_arg "Log_histogram.percentile: empty histogram";
  if Float.is_nan p || p < 0.0 || p > 1.0 then
    invalid_arg "Log_histogram.percentile: p outside [0, 1]";
  (* Rank of the selected order statistic, clamped to [1, total]: p = 0
     must select the first observation (not an empty cell 0, whose upper
     bound is 0) and p = 1 the last, never a phantom past-the-end one. *)
  let target =
    Float.min (float_of_int t.total) (Float.max 1.0 (p *. float_of_int t.total))
  in
  let n = Array.length t.counts in
  let rec go i acc =
    if i >= n then n - 1 (* unreachable: target <= total; float safety net *)
    else
      let acc = acc + t.counts.(i) in
      if t.counts.(i) > 0 && float_of_int acc >= target then i
      else go (i + 1) acc
  in
  let _, hi = bounds_of (go 0 0) in
  min hi t.max_obs

let mean t =
  if t.total = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    Array.iteri
      (fun i c ->
        if c > 0 then
          let lo, hi = bounds_of i in
          let mid = (float_of_int lo +. float_of_int hi) /. 2.0 in
          sum := !sum +. (float_of_int c *. mid))
      t.counts;
    !sum /. float_of_int t.total
  end

let buckets t =
  let out = ref [] in
  Array.iteri
    (fun i c ->
      if c > 0 then
        let lo, hi = bounds_of i in
        out := (lo, hi, c) :: !out)
    t.counts;
  List.rev !out

let merge_into ~into src =
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        ensure into i;
        into.counts.(i) <- into.counts.(i) + c
      end)
    src.counts;
  into.total <- into.total + src.total;
  if src.max_obs > into.max_obs then into.max_obs <- src.max_obs

let merge a b =
  let out = create () in
  merge_into ~into:out a;
  merge_into ~into:out b;
  out

let equal a b =
  let len = max (Array.length a.counts) (Array.length b.counts) in
  let cell h i = if i < Array.length h.counts then h.counts.(i) else 0 in
  let rec cells i = i >= len || (cell a i = cell b i && cells (i + 1)) in
  a.total = b.total && a.max_obs = b.max_obs && cells 0
