(** The signature shared by every shard-mergeable accumulator in this
    library: {!Histogram}, {!Log_histogram} and {!Moments} all implement
    it (conformance is enforced at compile time in the implementation),
    and the sweep engine's aggregation layer is functorized over it.

    Laws every implementation satisfies, and that qcheck properties in
    [test/test_stats.ml] exercise:

    - {b associativity}: [merge a (merge b c)] and [merge (merge a b) c]
      describe the same accumulated state, so a parallel fold over shards
      may group them arbitrarily;
    - {b shard invariance}: feeding observations to one accumulator is
      indistinguishable from splitting them across shards in any way and
      merging — the property that makes per-domain accumulation exact;
    - {b empty compatibility}: merging with a fresh (empty) accumulator
      of a compatible shape is the identity, so [empty] is a usable fold
      seed.  "Compatible" matters for {!Histogram}, whose values carry a
      size: merging histograms of different sizes raises. *)

module type S = sig
  type t

  val merge : t -> t -> t
  (** Combine two accumulators as if every observation of both had been
      fed to a single one.  Never mutates its arguments unless the
      implementation documents an in-place variant separately. *)
end
