type t = (string, Moments.t) Hashtbl.t

let create () : t = Hashtbl.create 16

let find_or_add t name =
  match Hashtbl.find_opt t name with
  | Some m -> m
  | None ->
      let m = Moments.create () in
      Hashtbl.add t name m;
      m

let observe t name x = Moments.add (find_or_add t name) x
let observe_int t name x = Moments.add_int (find_or_add t name) x
let get t name = Hashtbl.find_opt t name

let mean_opt t name = Option.map Moments.mean (get t name)
let max_opt t name = Option.map Moments.max (get t name)

let mean t name =
  match get t name with Some m -> Moments.mean m | None -> raise Not_found

let max t name =
  match get t name with Some m -> Moments.max m | None -> raise Not_found

let names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t [] |> List.sort String.compare

let pp fmt t =
  List.iter
    (fun name ->
      match get t name with
      | None -> ()
      | Some m ->
          Format.fprintf fmt "%-32s n=%-7d mean=%-12.4g sd=%-12.4g min=%-10.4g max=%-10.4g@."
            name (Moments.count m) (Moments.mean m) (Moments.stddev m)
            (Moments.min m) (Moments.max m))
    (names t)
