(* The shared shard-merge contract.  Conformance of the three accumulator
   modules is checked right here, at compile time: if any of them drifts
   away from the signature the library stops building. *)

module type S = sig
  type t

  val merge : t -> t -> t
end

module _ : S with type t = Histogram.t = Histogram
module _ : S with type t = Log_histogram.t = Log_histogram
module _ : S with type t = Moments.t = Moments
