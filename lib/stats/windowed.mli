(** Streaming, windowed aggregation over any {!Mergeable.S} accumulator.

    [Make (M)] partitions the round axis into fixed-width windows and
    keeps one [M.t] per window, applying observations in place.  With
    [retain = false], windows the stream has moved past are folded into
    a running total so memory stays O(1) in the run length — per-window
    detail is traded away but the grand total is preserved exactly,
    because [M.merge] is associative and lossless.  The grand total is
    therefore independent of both the window width and the retain flag
    (qcheck-checked in [test_stats.ml]). *)

module Make (M : Mergeable.S) : sig
  type t

  val create : ?window:int -> ?retain:bool -> empty:(unit -> M.t) -> unit -> t
  (** [create ~empty ()] makes a windowed accumulator whose windows are
      [window] rounds wide (default 1).  [retain] (default [true]) keeps
      every closed window for {!windows}; [retain:false] folds closed
      windows into a running total and drops them.  [empty] must build a
      fresh identity accumulator (merging it in changes nothing).
      Raises [Invalid_argument] when [window <= 0]. *)

  val observe : t -> round:int -> (M.t -> unit) -> unit
  (** [observe t ~round f] applies [f] to the accumulator of the window
      owning [round] (window index [round / window]).  Rounds must be
      fed in non-decreasing order — moving to a later window closes the
      current one; raises [Invalid_argument] on a round regression or a
      negative round. *)

  val windows : t -> (int * M.t) list
  (** Retained windows as [(window_index, acc)] pairs, oldest first,
      including the still-open current window.  When [retain:false] only
      the current window appears. *)

  val total : t -> M.t
  (** Merge of everything observed so far — folded, retained and current
      windows.  Equals what a single unwindowed [M.t] would hold. *)

  val observations : t -> int
  (** Number of [observe] calls so far. *)

  val current_window : t -> int option
  (** Index of the open window, or [None] before the first observation. *)

  val window_width : t -> int

  val closed_windows : t -> int
  (** Number of windows the stream has moved past (retained or folded). *)
end
