(* Shortest decimal text that parses back to the exact same float.

   %.15g is enough for most doubles and gives the friendliest text
   ("0.1", not "0.100000000000000006"); when it is not exact we fall
   back to %.17g, which round-trips every IEEE-754 double.  This is the
   single shared implementation behind checkpoint records, trace lines,
   scenario specs and sweep axis labels — they must all agree so that
   artifacts written by one layer re-parse bit-for-bit in another. *)

let repr f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

(* JSON-flavoured variant: force a marker character so the text lexes
   back as a float, never an integer.  "%.15g 3." prints 3.0 as "3" and
   -0.0 as "-0"; a decoder keying the OCaml type off the token shape
   (as Simnet.Trace.parse_jsonl_line does) would resurrect those as
   ints, silently dropping the sign of -0.0.  Appending ".0" keeps the
   value identical and the type unambiguous.  nan/inf already contain
   marker letters and pass through untouched. *)

let is_float_looking s =
  let marker = function '.' | 'e' | 'E' | 'n' | 'i' -> true | _ -> false in
  String.exists marker s

let json_repr f =
  let s = repr f in
  if is_float_looking s then s else s ^ ".0"
