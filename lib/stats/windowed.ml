(* Streaming aggregation over any mergeable accumulator.

   A windowed accumulator partitions the round axis into fixed-width
   windows and keeps one M.t per window.  Observations are applied
   in-place to the window owning their round; when the stream moves past
   a window it is "closed".  With [retain = false] closed windows are
   immediately folded into a running total, so memory stays O(1) in the
   run length — the property that lets million-node sweeps keep summary
   statistics without multi-GB per-event state.  Because Mergeable.S
   demands an associative merge with no data loss, the grand total is
   independent of the window width and of the retain flag (checked by a
   qcheck property in test_stats.ml). *)

module Make (M : Mergeable.S) = struct
  type t = {
    window : int;
    retain : bool;
    empty : unit -> M.t;
    mutable current : M.t;
    mutable current_index : int; (* window index; -1 before any observation *)
    mutable closed : (int * M.t) list; (* newest first; only when retain *)
    mutable folded : M.t; (* merge of discarded windows when not retain *)
    mutable folded_windows : int;
    mutable observations : int;
    mutable last_round : int;
  }

  let create ?(window = 1) ?(retain = true) ~empty () =
    if window <= 0 then invalid_arg "Windowed.create: window must be positive";
    {
      window;
      retain;
      empty;
      current = empty ();
      current_index = -1;
      closed = [];
      folded = empty ();
      folded_windows = 0;
      observations = 0;
      last_round = -1;
    }

  let close_current t =
    if t.current_index >= 0 then
      if t.retain then t.closed <- (t.current_index, t.current) :: t.closed
      else begin
        t.folded <- M.merge t.folded t.current;
        t.folded_windows <- t.folded_windows + 1
      end

  let observe t ~round f =
    if round < 0 then invalid_arg "Windowed.observe: negative round";
    if round < t.last_round then
      invalid_arg "Windowed.observe: rounds must be non-decreasing";
    t.last_round <- round;
    let w = round / t.window in
    if t.current_index < 0 then t.current_index <- w
    else if w > t.current_index then begin
      close_current t;
      t.current <- t.empty ();
      t.current_index <- w
    end;
    f t.current;
    t.observations <- t.observations + 1

  let observations t = t.observations

  let current_window t =
    if t.current_index < 0 then None else Some t.current_index

  let window_width t = t.window

  let windows t =
    if t.current_index < 0 then []
    else List.rev ((t.current_index, t.current) :: t.closed)

  let closed_windows t =
    t.folded_windows + List.length t.closed

  let total t =
    let acc = List.fold_left (fun acc (_, m) -> M.merge acc m) t.folded t.closed in
    if t.current_index < 0 then acc else M.merge acc t.current
end
