(** Integer-valued histograms (exact counts per value) used for empirical
    distributions of sampled node indices, group sizes, segment lengths, and
    the like. *)

type t

val create : size:int -> t
(** [create ~size] tracks counts for values in [0, size). *)

val size : t -> int

val add : t -> int -> unit
(** Increment the count of a value.  Raises [Invalid_argument] if out of
    range. *)

val add_many : t -> int -> int -> unit
(** [add_many t v k] increments value [v] by [k]. *)

val count : t -> int -> int
val total : t -> int
(** Number of observations overall. *)

val counts : t -> int array
(** Copy of the raw counts. *)

val frequencies : t -> float array
(** Counts normalized to sum to 1 (all zeros if empty). *)

val max_count : t -> int
val nonzero_cells : t -> int

val percentile : t -> float -> int
(** [percentile t p] with [p] in [0,1]: smallest value v such that at least
    [p] of the mass is at values <= v.  Raises [Invalid_argument] if the
    histogram is empty. *)

val merge : t -> t -> t
(** [merge a b] is a fresh histogram holding the exact sum of both count
    arrays, so accumulating observations into per-domain shards and merging
    is indistinguishable from sequential accumulation.  Raises
    [Invalid_argument] if the sizes differ. *)

val merge_into : into:t -> t -> unit
(** In-place variant: add every count of the second histogram to [into]. *)
