(** Lossless shortest-roundtrip decimal rendering of floats.

    One shared implementation for every text artifact that must re-parse
    bit-for-bit: checkpoint records, trace lines, scenario specs, sweep
    axis labels.  [float_of_string (repr f)] equals [f] exactly for every
    float, including negative zero, subnormals and the extremes of the
    double range (nan maps to ["nan"], infinities to ["inf"]/["-inf"]). *)

val repr : float -> string
(** Shortest decimal form ([%.15g], falling back to [%.17g] when that is
    not exact) that parses back to the same float. *)

val json_repr : float -> string
(** Like {!repr} but guaranteed to contain a float marker character
    (['.'], ['e'], ['E'], or the letters of nan/inf), appending [".0"]
    when needed, so decoders that infer the numeric type from the token
    shape decode a float and not an integer.  [3.0] renders as ["3.0"],
    [-0.0] as ["-0.0"]. *)

val is_float_looking : string -> bool
(** [true] when the token contains a character that forces float
    interpretation under {!Simnet.Trace.parse_jsonl_line}'s rules. *)
