type t = { counts : int array; mutable total : int }

let create ~size =
  if size <= 0 then invalid_arg "Histogram.create: size <= 0";
  { counts = Array.make size 0; total = 0 }

let size t = Array.length t.counts

let add_many t v k =
  if v < 0 || v >= Array.length t.counts then
    invalid_arg "Histogram.add: value out of range";
  t.counts.(v) <- t.counts.(v) + k;
  t.total <- t.total + k

let add t v = add_many t v 1

let count t v = t.counts.(v)
let total t = t.total
let counts t = Array.copy t.counts

let frequencies t =
  if t.total = 0 then Array.make (Array.length t.counts) 0.0
  else
    let tf = float_of_int t.total in
    Array.map (fun c -> float_of_int c /. tf) t.counts

let max_count t = Array.fold_left Stdlib.max 0 t.counts

let nonzero_cells t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 t.counts

let merge_into ~into src =
  if Array.length into.counts <> Array.length src.counts then
    invalid_arg "Histogram.merge: size mismatch";
  Array.iteri (fun v c -> into.counts.(v) <- into.counts.(v) + c) src.counts;
  into.total <- into.total + src.total

let merge a b =
  let out = create ~size:(Array.length a.counts) in
  merge_into ~into:out a;
  merge_into ~into:out b;
  out

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  let target = p *. float_of_int t.total in
  let rec go i acc =
    if i >= Array.length t.counts - 1 then i
    else
      let acc = acc + t.counts.(i) in
      if float_of_int acc >= target then i else go (i + 1) acc
  in
  go 0 0
