module Hypercube = Topology.Hypercube
module Metrics = Simnet.Metrics
module Msg_size = Simnet.Msg_size
module Trace = Simnet.Trace

let finish_traced trace metrics =
  let s = Metrics.finish_round metrics in
  if Trace.enabled trace then Trace.emit trace (Trace.round_of_summary s)

(* Buckets are indexed by coordinate segment start.  At iteration i the
   segments are the intervals [s, min(s + 2^i, d)) for s a multiple of 2^i;
   the bucket of a segment lives at index s.  A segment whose right sibling
   start s + 2^(i-1) falls outside [0, d) has nothing to merge with and its
   bucket persists unchanged. *)

let run_attempt ~eps ~c ~trace ~rng cube =
  let d = Hypercube.dimension cube in
  let n = Hypercube.node_count cube in
  let iters = Params.iterations_hypercube ~d in
  let schedule = Params.schedule_hypercube ~eps ~c ~n ~iters in
  let id_bits = Msg_size.id_bits n in
  (* A request carries (requester id, segment index); a response carries
     (sampled id, segment index). *)
  let request_bits = Msg_size.ids_msg ~id_bits ~count:1 + Msg_size.id_bits (max 2 d) in
  let response_bits = request_bits in
  let metrics = Metrics.create ~n in
  let underflows = ref 0 in
  (* m.(u).(j): bucket j of node u. *)
  let m =
    Array.init n (fun _ ->
        Array.init d (fun _ -> Multiset.create ~capacity:schedule.(0) ()))
  in
  (* Phase 1: coordinate j randomized via a fair coin. *)
  for u = 0 to n - 1 do
    for j = 0 to d - 1 do
      for _ = 1 to schedule.(0) do
        let w = if Prng.Stream.bool rng then Hypercube.flip cube u j else u in
        Multiset.add m.(u).(j) w
      done
    done
  done;
  (* requesters.(v) collects (requester, segment) pairs addressed to v. *)
  let requesters = Array.init n (fun _ -> ref []) in
  let fresh = Array.init n (fun _ -> Array.init d (fun _ -> Multiset.create ())) in
  for i = 1 to iters do
    let mi = schedule.(i) in
    let step = 1 lsl i in
    let half = 1 lsl (i - 1) in
    (* Phase 2 (one round): for every left segment with a right sibling,
       send m_i requests to nodes drawn from the left bucket. *)
    for u = 0 to n - 1 do
      let s = ref 0 in
      while !s < d do
        if !s + half < d then
          for _ = 1 to mi do
            match Multiset.extract_random m.(u).(!s) rng with
            | None -> incr underflows
            | Some v ->
                Metrics.on_send metrics ~node:u ~bits:request_bits;
                Metrics.on_recv metrics ~node:v ~bits:request_bits;
                requesters.(v) := (u, !s) :: !(requesters.(v))
          done;
        s := !s + step
      done
    done;
    finish_traced trace metrics;
    (* Phase 3 + 4 (one round): serve from the right-sibling bucket. *)
    for v = 0 to n - 1 do
      List.iter
        (fun (u, s) ->
          match Multiset.extract_random m.(v).(s + half) rng with
          | None -> incr underflows
          | Some w ->
              Metrics.on_send metrics ~node:v ~bits:response_bits;
              Metrics.on_recv metrics ~node:u ~bits:response_bits;
              Multiset.add fresh.(u).(s) w)
        (List.rev !(requesters.(v)));
      requesters.(v) := []
    done;
    finish_traced trace metrics;
    (* Install merged buckets: left starts get their fresh contents; right
       siblings are consumed.  Untouched trailing buckets persist. *)
    for u = 0 to n - 1 do
      let s = ref 0 in
      while !s < d do
        if !s + half < d then begin
          Multiset.clear m.(u).(!s);
          Multiset.iter (fun w -> Multiset.add m.(u).(!s) w) fresh.(u).(!s);
          Multiset.clear fresh.(u).(!s);
          Multiset.clear m.(u).(!s + half)
        end;
        s := !s + step
      done
    done
  done;
  (* M is a multiset: expose it in uniformly random order (a free local
     permutation).  Responses arrive grouped by server, and same-server
     responses share the server's already-fixed coordinates; a consumer
     taking a prefix of the arrival order would see correlated samples. *)
  let samples =
    Array.map
      (fun buckets ->
        let a = Multiset.to_array buckets.(0) in
        Prng.Stream.shuffle_in_place rng a;
        a)
      m
  in
  {
    Sampling_result.samples;
    rounds = 2 * iters;
    walk_length = d;
    schedule;
    underflows = !underflows;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }

let run ?(eps = 0.5) ?(c = 2.0) ?(trace = Trace.null) ?(retry = Retry.fixed)
    ~rng cube =
  Retry.sampling_with_retry ~retry ~c ~trace ~attempt_fn:(fun ~c ->
      run_attempt ~eps ~c ~trace ~rng cube)

let run_plain ?(trace = Trace.null) ~k ~rng cube =
  let d = Hypercube.dimension cube in
  let n = Hypercube.node_count cube in
  let id_bits = Msg_size.id_bits n in
  let token_bits = Msg_size.ids_msg ~id_bits ~count:1 in
  let metrics = Metrics.create ~n in
  let origins = Array.init (n * k) (fun j -> j / k) in
  let positions = Array.copy origins in
  for dim = 0 to d - 1 do
    for j = 0 to Array.length positions - 1 do
      let cur = positions.(j) in
      if Prng.Stream.bool rng then begin
        let next = Hypercube.flip cube cur dim in
        Metrics.on_send metrics ~node:cur ~bits:token_bits;
        Metrics.on_recv metrics ~node:next ~bits:token_bits;
        positions.(j) <- next
      end
    done;
    finish_traced trace metrics
  done;
  let samples = Array.make n [] in
  for j = 0 to Array.length positions - 1 do
    let origin = origins.(j) and endpoint = positions.(j) in
    Metrics.on_send metrics ~node:endpoint ~bits:token_bits;
    Metrics.on_recv metrics ~node:origin ~bits:token_bits;
    samples.(origin) <- endpoint :: samples.(origin)
  done;
  finish_traced trace metrics;
  {
    Sampling_result.samples = Array.map Array.of_list samples;
    rounds = d + 1;
    walk_length = d;
    schedule = [| k |];
    underflows = 0;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }
