(** The churn- and DoS-resistant network of Section 6: the hypercube-of-
    groups design of Section 5 with variable-dimension supernodes that split
    and merge to keep every group size within Equation (1),
    c d(x) - c < |R(x)| < 2 c d(x).

    Windows work as in {!Dos_network}: the groups simulate the (now
    nonuniformly weighted: supernode x is sampled with probability
    2^(-d(x))) sampling primitive while the adversary blocks per round; at
    the window boundary the accumulated churn is applied — joiners were
    delegated to a member's group, leavers stayed to relay — every node is
    rescattered, and supernodes split/merge until Equation (1) holds again.

    Lemma 18's invariants are exposed per window so experiments can check
    them: all dimensions within a spread of 2 and inside
    (0.5 log2 n, log2 n + 2). *)

type window_report = {
  window : int;
  n_before : int;
  n_after : int;
  joined : int;
  left : int;
  reconfigured : bool;  (** false iff some group starved (state loss) *)
  starved_rounds : int;
  disconnected_rounds : int;
  min_group_size : int;
  max_group_size : int;
  min_dim : int;
  max_dim : int;
  dim_spread : int;  (** max_dim - min_dim; Lemma 18 says <= 2 *)
  eq1_violations : int;
      (** groups outside Equation (1) after the window's splits/merges *)
  splits : int;
  merges : int;
  supernodes : int;
}

type t

val create :
  ?c:int ->
  ?trace:Simnet.Trace.t ->
  ?faults:Simnet.Faults.plan ->
  ?domains:int ->
  rng:Prng.Stream.t ->
  n:int ->
  unit ->
  t
(** [c] (default 8) is the integral constant of Equation (1).  The initial
    tree is a uniform hypercube of the dimension d fixed by the proof of
    Lemma 18 (the unique d with 2^d * 2cd < n <= 2^(d+1) * 2c(d+1)), with
    nodes scattered uniformly and initial splits/merges applied.

    [trace] (default {!Simnet.Trace.null}) records one ["churndos/window"]
    note per window with the report's headline fields.  [faults] is applied
    through {!Simnet.Runtime}: only the crash schedule is supported (crashed
    nodes count as blocked every round until they recover) — groups exchange
    aggregate state rather than individual request/reply legs, so per-message
    link faults (drop/duplicate/delay/reorder) have no honest application
    point and are rejected with [Invalid_argument].  Fault streams are
    size-independently keyed, so windows that grow the network never alias
    them. *)

val n : t -> int
val c : t -> int
val period : t -> int
(** Rounds per window under the current size. *)

val supernode_count : t -> int
val group_of : t -> int array
(** Current node -> group assignment as dense group indices aligned with
    [group_labels]. *)

val group_labels : t -> Split_merge.label array
val dims : t -> int array

val run_window :
  t ->
  blocked_for_round:(round:int -> group_of:int array -> n:int -> bool array) ->
  joins:int ->
  leave_frac:float ->
  window_report
(** Run one full window.  [blocked_for_round] is called once per round with
    the absolute round number and the current assignment (so the caller's
    adversary can maintain its own lateness buffer); it must return a
    blocked array of size [n].  [joins] new nodes arrive during the window
    (delegated to uniformly random members); a [leave_frac] fraction departs
    at its end. *)
