module Hgraph = Topology.Hgraph

type plan = { leaves : int array; join_introducers : int array }

type strategy = Random_churn | Segment_leavers | Heavy_introducer

let all = [ Random_churn; Segment_leavers; Heavy_introducer ]

let to_string = function
  | Random_churn -> "random"
  | Segment_leavers -> "segment"
  | Heavy_introducer -> "heavy-introducer"

let clamp_counts ~n ~leave_frac ~join_frac =
  if leave_frac < 0.0 || leave_frac > 1.0 then
    invalid_arg "Churn_adversary: leave_frac out of [0,1]";
  if join_frac < 0.0 then invalid_arg "Churn_adversary: negative join_frac";
  let leave = min (int_of_float (leave_frac *. float_of_int n)) (n - 3) in
  let join = int_of_float (join_frac *. float_of_int n) in
  (max 0 leave, max 0 join)

let random_introducers rng ~n ~leaving ~count =
  Array.init count (fun _ ->
      let rec pick () =
        let p = Prng.Stream.int rng n in
        if leaving.(p) then pick () else p
      in
      pick ())

let leaving_flags n leaves =
  let f = Array.make n false in
  Array.iter (fun p -> f.(p) <- true) leaves;
  f

let plan ?(max_per_introducer = 8) ?(trace = Simnet.Trace.null) strategy ~rng
    ~graph ~leave_frac ~join_frac =
  if max_per_introducer < 1 then
    invalid_arg "Churn_adversary.plan: max_per_introducer < 1";
  let n = Hgraph.n graph in
  let leave, join = clamp_counts ~n ~leave_frac ~join_frac in
  let leaves =
    match strategy with
    | Random_churn | Heavy_introducer -> Prng.Stream.sample_distinct rng n ~k:leave
    | Segment_leavers ->
        (* A contiguous arc of cycle 0 starting at a random node. *)
        let start = Prng.Stream.int rng n in
        let arc = Array.make leave 0 in
        let v = ref start in
        for i = 0 to leave - 1 do
          arc.(i) <- !v;
          v := Hgraph.succ graph ~cycle:0 !v
        done;
        arc
  in
  let leaving = leaving_flags n leaves in
  let join_introducers =
    match strategy with
    | Random_churn | Segment_leavers ->
        let intros = random_introducers rng ~n ~leaving ~count:join in
        (* Random targets can collide; re-draw past the cap. *)
        let load = Hashtbl.create 64 in
        Array.map
          (fun p ->
            let rec settle p tries =
              let c = Option.value ~default:0 (Hashtbl.find_opt load p) in
              if c < max_per_introducer || tries > 50 then begin
                Hashtbl.replace load p (c + 1);
                p
              end
              else
                let rec fresh () =
                  let q = Prng.Stream.int rng n in
                  if leaving.(q) then fresh () else q
                in
                settle (fresh ()) (tries + 1)
            in
            settle p 0)
          intros
    | Heavy_introducer ->
        (* Fill staying members one after the other, each up to the cap. *)
        let stayers = Topology.Intvec.create () in
        for p = 0 to n - 1 do
          if not leaving.(p) then Topology.Intvec.push stayers p
        done;
        Array.init join (fun i ->
            Topology.Intvec.get stayers
              (i / max_per_introducer mod Topology.Intvec.length stayers))
  in
  if Simnet.Trace.enabled trace then
    Simnet.Trace.emit trace
      (Simnet.Trace.Adversary
         {
           kind = "churn";
           fields =
             [
               ("strategy", Simnet.Trace.String (to_string strategy));
               ("leaves", Simnet.Trace.Int (Array.length leaves));
               ("joins", Simnet.Trace.Int (Array.length join_introducers));
             ];
         });
  { leaves; join_introducers }
