module Sm = Split_merge
module Intvec = Topology.Intvec

let src = Logs.Src.create "overlay.churndos" ~doc:"Churn+DoS network events"

module Log = (val Logs.src_log src : Logs.LOG)

type window_report = {
  window : int;
  n_before : int;
  n_after : int;
  joined : int;
  left : int;
  reconfigured : bool;
  starved_rounds : int;
  disconnected_rounds : int;
  min_group_size : int;
  max_group_size : int;
  min_dim : int;
  max_dim : int;
  dim_spread : int;
  eq1_violations : int;
  splits : int;
  merges : int;
  supernodes : int;
}

type t = {
  rng : Prng.Stream.t;
  c : int;
  tree : Intvec.t Sm.t;
  runtime : Simnet.Runtime.t;
  mutable n : int;
  mutable labels : Sm.label array;
  mutable group_of : int array;
  mutable prev_blocked : bool array;
}

(* The dimension of the proof of Lemma 18: the unique d with
   2^d * 2cd < n <= 2^(d+1) * 2c(d+1). *)
let base_dimension ~c ~n =
  let fits d = (1 lsl d) * 2 * c * d < n in
  let rec go d = if fits (d + 1) then go (d + 1) else d in
  max 1 (go 1)

(* Rebuild the dense index (labels array and group_of) from the tree. *)
let densify t =
  let ls = Sm.leaves t.tree in
  let labels = Array.of_list (List.map fst ls) in
  let group_of = Array.make t.n (-1) in
  List.iteri
    (fun gi (_, members) ->
      Intvec.iter (fun v -> group_of.(v) <- gi) members)
    ls;
  t.labels <- labels;
  t.group_of <- group_of

let eq1_low c dim = (c * dim) - c
let eq1_high c dim = 2 * c * dim

(* Enforce Equation (1) by splitting oversized and merging undersized
   leaves; member division on split is uniform per node, as in the paper. *)
let enforce_eq1 t =
  let splits = ref 0 and merges = ref 0 in
  let changed = ref true and guard = ref 0 in
  while !changed && !guard < 64 do
    changed := false;
    incr guard;
    List.iter
      (fun (l, _) ->
        match Sm.find t.tree l with
        | Some members when Intvec.length members > eq1_high t.c l.Sm.dim ->
            Sm.split t.tree l (fun ms ->
                (* Balanced random equipartition: a random half goes to each
                   child.  Exact halving is what makes "too large for one"
                   and "too small for two" mutually exclusive (Lemma 18). *)
                let arr = Intvec.to_array ms in
                Prng.Stream.shuffle_in_place t.rng arr;
                let half = Array.length arr / 2 in
                let a = Intvec.create () and b = Intvec.create () in
                Array.iteri
                  (fun i v ->
                    if i < half then Intvec.push a v else Intvec.push b v)
                  arr;
                (a, b));
            incr splits;
            changed := true
        | _ -> ())
      (Sm.leaves t.tree);
    List.iter
      (fun (l, _) ->
        match Sm.find t.tree l with
        | Some members
          when l.Sm.dim > 1 && Intvec.length members < eq1_low t.c l.Sm.dim ->
            Sm.merge t.tree l (fun a b ->
                let m = Intvec.create () in
                Intvec.iter (fun v -> Intvec.push m v) a;
                Intvec.iter (fun v -> Intvec.push m v) b;
                m);
            incr merges;
            changed := true
        | _ -> ())
      (Sm.leaves t.tree)
  done;
  (!splits, !merges)

let create ?(c = 8) ?(trace = Simnet.Trace.null) ?faults ?domains ~rng ~n () =
  if c < 2 then invalid_arg "Churndos_network.create: c < 2";
  if n < 64 then invalid_arg "Churndos_network.create: n too small";
  let d = base_dimension ~c ~n in
  let tree = Sm.create () in
  for bits = 0 to (1 lsl d) - 1 do
    Sm.add_leaf tree { Sm.bits; dim = d } (Intvec.create ())
  done;
  (* Groups exchange aggregate state, not individual request/reply legs,
     so there is no honest place to apply per-message link faults: only
     the crash schedule (blocking whole nodes) is supported. *)
  let runtime =
    Simnet.Runtime.create ~trace ?faults
      ~supports:[ `Crash; `Recover ]
      ~who:"Churndos_network" ?domains ~n ()
  in
  let t =
    {
      rng;
      c;
      tree;
      runtime;
      n;
      labels = [||];
      group_of = [||];
      prev_blocked = Array.make n false;
    }
  in
  (* Initial scatter: uniform over the uniform-dimension tree (equivalently,
     weight 2^-d each), then restore Equation (1). *)
  for v = 0 to n - 1 do
    let l = Sm.sample tree t.rng in
    match Sm.find tree l with
    | Some members -> Intvec.push members v
    | None -> assert false
  done;
  ignore (enforce_eq1 t);
  densify t;
  t

let n t = t.n
let c t = t.c
let supernode_count t = Sm.leaf_count t.tree
let group_of t = Array.copy t.group_of
let group_labels t = Array.copy t.labels
let dims t = Array.map (fun (l : Sm.label) -> l.Sm.dim) t.labels

let period t =
  let iters = Params.log2i_ceil (max 2 (Sm.max_dim t.tree)) in
  (4 * iters) + 4

(* Occupied-leaf connectivity: like Dos_network, the non-blocked subgraph is
   connected iff the occupied leaves form a connected subgraph under the
   Section 6 adjacency rule. *)
let occupied_connected t ~blocked =
  let k = Array.length t.labels in
  let occupied = Array.make k false in
  Array.iteri
    (fun v gi -> if not blocked.(v) then occupied.(gi) <- true)
    t.group_of;
  let start = ref (-1) in
  for gi = k - 1 downto 0 do
    if occupied.(gi) then start := gi
  done;
  if !start < 0 then true
  else begin
    let seen = Array.make k false in
    let queue = Queue.create () in
    seen.(!start) <- true;
    Queue.push !start queue;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let gi = Queue.pop queue in
      incr visited;
      for gj = 0 to k - 1 do
        if
          occupied.(gj) && (not seen.(gj))
          && Sm.connected t.labels.(gi) t.labels.(gj)
        then begin
          seen.(gj) <- true;
          Queue.push gj queue
        end
      done
    done;
    let total = Array.fold_left (fun a o -> if o then a + 1 else a) 0 occupied in
    !visited = total
  end

let run_one_window t ~blocked_for_round ~joins ~leave_frac =
  if joins < 0 then invalid_arg "Churndos_network.run_window: joins < 0";
  if leave_frac < 0.0 || leave_frac > 1.0 then
    invalid_arg "Churndos_network.run_window: leave_frac out of [0,1]";
  let rt = t.runtime in
  let window = Simnet.Runtime.epoch rt in
  let n_before = t.n in
  let p = period t in
  let starved_rounds = ref 0 and disconnected_rounds = ref 0 in
  for _ = 1 to p do
    ignore (Simnet.Runtime.tick rt);
    let blocked =
      blocked_for_round ~round:(Simnet.Runtime.round rt) ~group_of:t.group_of
        ~n:t.n
    in
    if Array.length blocked <> t.n then
      invalid_arg "Churndos_network: blocked array size mismatch";
    (* Crashed nodes are unavailable exactly like adversary-blocked ones;
       copy the caller's array only when a plan is installed. *)
    let blocked =
      if Simnet.Runtime.faulty rt then begin
        let merged = Array.copy blocked in
        for v = 0 to t.n - 1 do
          if Simnet.Runtime.crashed rt v then merged.(v) <- true
        done;
        merged
      end
      else blocked
    in
    (* Availability per group: a member non-blocked in the previous and the
       current round. *)
    let k = Array.length t.labels in
    let avail = Array.make k false in
    for v = 0 to t.n - 1 do
      if (not blocked.(v)) && not t.prev_blocked.(v) then
        avail.(t.group_of.(v)) <- true
    done;
    let starved = Array.exists not avail in
    if starved then incr starved_rounds;
    if not (occupied_connected t ~blocked) then incr disconnected_rounds;
    t.prev_blocked <- Array.copy blocked;
    if Simnet.Runtime.traced rt then begin
      (* The canonical simulation exchanges no individual messages; the
         Round event carries the availability picture only. *)
      let blocked_count =
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
      in
      Simnet.Runtime.emit_round rt ~msgs:0 ~bits:0 ~max_node_bits:0
        ~max_node_msgs:0 ~blocked:blocked_count
    end;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  (* Window boundary: apply churn and reconfigure. *)
  let leave_count =
    min (int_of_float (leave_frac *. float_of_int t.n)) (t.n - 16)
  in
  let leaving = Array.make t.n false in
  Array.iter
    (fun v -> leaving.(v) <- true)
    (Prng.Stream.sample_distinct t.rng t.n ~k:(max 0 leave_count));
  let survivors = t.n - leave_count in
  let n_after = survivors + joins in
  let healthy = !starved_rounds = 0 in
  let splits = ref 0 and merges = ref 0 in
  let reconfigured =
    if healthy then begin
      (* Rescatter every survivor and joiner with the 2^-d(x) weights,
         using the weighted sampling primitive of Section 6 (Algorithm 2
         run on the virtual full cube the leaves cover): each current group
         samples destination supernodes and scatters its units, exactly as
         in Section 5. *)
      let ordered = Sm.leaves t.tree in
      let k = List.length ordered in
      (* Units per (old) leaf: surviving members stay attributed to their
         group; each joiner was delegated to a uniformly random current
         member, i.e. to a group with probability proportional to its
         size. *)
      let units = Array.make k 0 in
      List.iteri
        (fun i (_, members) ->
          let survivors_here =
            Intvec.fold
              (fun acc v -> if leaving.(v) then acc else acc + 1)
              0 members
          in
          units.(i) <- survivors_here)
        ordered;
      for _ = 1 to joins do
        let rec pick () =
          let v = Prng.Stream.int t.rng t.n in
          if leaving.(v) then pick () else v
        in
        let g = t.group_of.(pick ()) in
        units.(g) <- units.(g) + 1
      done;
      let max_units = Array.fold_left max 0 units in
      let d_max = Sm.max_dim t.tree in
      let c_sample =
        Float.max 2.0 ((float_of_int max_units /. float_of_int (max 1 d_max)) +. 1.0)
      in
      let rw = Rapid_weighted.run ~c:c_sample ~rng:(Prng.Stream.split t.rng) t.tree in
      (* Scatter: old leaf i sends its j-th unit to pools.(i).(j). *)
      let arrivals = Array.make k 0 in
      Array.iteri
        (fun i count ->
          let pool = rw.Rapid_weighted.pools.(i) in
          for j = 0 to count - 1 do
            let dest =
              if j < Array.length pool then pool.(j)
              else begin
                (* pool underflow: direct weighted fallback *)
                let l = Sm.sample t.tree t.rng in
                let rec index_of i = function
                  | [] -> assert false
                  | (l', _) :: rest -> if l' = l then i else index_of (i + 1) rest
                in
                index_of 0 ordered
              end
            in
            arrivals.(dest) <- arrivals.(dest) + 1
          done)
        units;
      (* Install the new membership with fresh node indices in a uniformly
         random order. *)
      let ids = Prng.Stream.permutation t.rng n_after in
      let counter = ref 0 in
      List.iteri
        (fun i (_, members) ->
          Intvec.clear members;
          for _ = 1 to arrivals.(i) do
            Intvec.push members ids.(!counter);
            incr counter
          done)
        ordered;
      t.n <- n_after;
      let s, m = enforce_eq1 t in
      splits := s;
      merges := m;
      densify t;
      Simnet.Runtime.resize rt ~n:t.n;
      t.prev_blocked <- Array.make t.n false;
      true
    end
    else begin
      (* State loss: leavers vanish, joiners cannot integrate; compact the
         survivors in place without rescattering. *)
      let remap = Array.make t.n (-1) in
      let next = ref 0 in
      for v = 0 to t.n - 1 do
        if not leaving.(v) then begin
          remap.(v) <- !next;
          incr next
        end
      done;
      Sm.iter
        (fun _ members ->
          let kept = Intvec.create () in
          Intvec.iter
            (fun v -> if remap.(v) >= 0 then Intvec.push kept (remap.(v)))
            members;
          Intvec.clear members;
          Intvec.iter (fun v -> Intvec.push members v) kept)
        t.tree;
      t.n <- survivors;
      densify t;
      Simnet.Runtime.resize rt ~n:t.n;
      t.prev_blocked <- Array.make t.n false;
      false
    end
  in
  (* Invariant measurements (Lemma 18 / Equation 1). *)
  let sizes = ref [] and violations = ref 0 in
  Sm.iter
    (fun l members ->
      let size = Intvec.length members in
      sizes := size :: !sizes;
      if size < eq1_low t.c l.Sm.dim || size > eq1_high t.c l.Sm.dim then
        incr violations)
    t.tree;
  let min_sz = List.fold_left min max_int !sizes
  and max_sz = List.fold_left max 0 !sizes in
  let min_dim = Sm.min_dim t.tree and max_dim = Sm.max_dim t.tree in
  let report =
    {
      window;
      n_before;
      n_after = t.n;
      joined = (if reconfigured then joins else 0);
      left = leave_count;
      reconfigured;
      starved_rounds = !starved_rounds;
      disconnected_rounds = !disconnected_rounds;
      min_group_size = min_sz;
      max_group_size = max_sz;
      min_dim;
      max_dim;
      dim_spread = max_dim - min_dim;
      eq1_violations = !violations;
      splits = !splits;
      merges = !merges;
      supernodes = Sm.leaf_count t.tree;
    }
  in
  Log.debug (fun k ->
      k "window %d: n %d -> %d, reconfigured=%b, splits=%d merges=%d dims=[%d..%d]"
        report.window report.n_before report.n_after report.reconfigured
        report.splits report.merges report.min_dim report.max_dim);
  Simnet.Runtime.note rt ~name:"churndos/window"
    [
      ("window", Simnet.Trace.Int report.window);
      ("n_before", Simnet.Trace.Int report.n_before);
      ("n_after", Simnet.Trace.Int report.n_after);
      ("joined", Simnet.Trace.Int report.joined);
      ("left", Simnet.Trace.Int report.left);
      ("reconfigured", Simnet.Trace.Bool report.reconfigured);
      ("starved_rounds", Simnet.Trace.Int report.starved_rounds);
      ("disconnected_rounds", Simnet.Trace.Int report.disconnected_rounds);
      ("dim_spread", Simnet.Trace.Int report.dim_spread);
      ("eq1_violations", Simnet.Trace.Int report.eq1_violations);
      ("splits", Simnet.Trace.Int report.splits);
      ("merges", Simnet.Trace.Int report.merges);
      ("supernodes", Simnet.Trace.Int report.supernodes);
    ];
  (report, p)

let run_window t ~blocked_for_round ~joins ~leave_frac =
  let ep =
    Simnet.Runtime.run_epoch t.runtime (fun _rt ->
        run_one_window t ~blocked_for_round ~joins ~leave_frac)
  in
  ep.Simnet.Runtime.result
