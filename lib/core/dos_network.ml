module Hypercube = Topology.Hypercube

let src = Logs.Src.create "overlay.dos" ~doc:"DoS-resistant network events"

module Log = (val Logs.src_log src : Logs.LOG)

type round_report = {
  round : int;
  blocked_count : int;
  connected : bool;
  reachable_fraction : float;
  min_group_available : int;
  starved_groups : int;
}

type window_report = {
  window : int;
  reconfigured : bool;
  failed_rounds : int;
  disconnected_rounds : int;
  sampling_underflows : int;
  sampling_fallbacks : int;
  sampling_retries : int;
  sampling_escalations : int;
  c_multiplier : float;
  min_group_size : int;
  max_group_size : int;
}

type backend = Canonical | Message_level

type t = {
  rng : Prng.Stream.t;
  n : int;
  cube : Hypercube.t;
  period : int;
  backend : backend;
  (* Round progression, trace emission and — for the [Canonical] backend —
     fault application and loss accounting.  The [Message_level] backend
     instead hands the plan to its engine-backed {!Group_sim} (the engine
     is the per-message fault boundary), so its runtime stays fault-free
     and nothing is double-applied. *)
  runtime : Simnet.Runtime.t;
  faults : Simnet.Faults.plan option;
  retry : Retry.policy;
  mutable group_of : int array;
  mutable members : int array array; (* supernode -> sorted member ids *)
  mutable prev_blocked : bool array;
  (* Cross-window escalation: after a window whose reorganization needed
     underflow recovery, the next windows provision sampling with
     [c * boost] (sticky; see [escalate_provisioning]). *)
  mutable boost_attempt : int;
  mutable boost : float;
  (* Message-level backend: the in-flight group simulation of the sampling
     primitive for this window (recreated every window). *)
  mutable gs :
    (Supernode_sampling.state, Supernode_sampling.msg) Group_sim.t option;
  (* Current-window accounting. *)
  mutable failed_rounds : int;
  mutable disconnected_rounds : int;
  mutable windows : int;
  mutable last_window : window_report option;
}

(* Provision the per-supernode sample pools to cover the largest group
   (the |R(x)| <= beta log n requirement of Lemma 15). *)
let sampling_c ~members ~d =
  let max_group =
    Array.fold_left (fun acc m -> max acc (Array.length m)) 0 members
  in
  Float.max 2.0 ((float_of_int max_group /. float_of_int (max 1 d)) +. 1.0)

let fresh_group_sim t =
  let trace = Simnet.Runtime.trace t.runtime in
  let c =
    t.boost *. sampling_c ~members:t.members ~d:(Hypercube.dimension t.cube)
  in
  let proto =
    Supernode_sampling.protocol ~c ~trace ~fallback:(Retry.enabled t.retry)
      ~cube:t.cube ()
  in
  Group_sim.create ~trace ?faults:t.faults
    ~domains:(Simnet.Runtime.domains t.runtime)
    ~rng:(Prng.Stream.split t.rng) ~n:t.n ~group_of:t.group_of proto

let rebuild_members ~supernodes group_of =
  let vecs = Array.init supernodes (fun _ -> Topology.Intvec.create ()) in
  Array.iteri (fun v x -> Topology.Intvec.push vecs.(x) v) group_of;
  (* Node indices are pushed in increasing order, so each member array is
     already sorted by id — the order the reorganization phase relies on. *)
  Array.map Topology.Intvec.to_array vecs

let create ?(c = 1.0) ?(backend = Canonical) ?(trace = Simnet.Trace.null)
    ?faults ?(retry = Retry.fixed) ?domains ~rng ~n () =
  if n < 16 then invalid_arg "Dos_network.create: n too small";
  let faults =
    match faults with
    | Some plan when not (Simnet.Faults.is_none plan) -> Some plan
    | _ -> None
  in
  let d = Params.dos_dimension ~c ~n in
  let cube = Hypercube.create d in
  let supernodes = Hypercube.node_count cube in
  let group_of = Array.init n (fun _ -> Prng.Stream.int rng supernodes) in
  let iters = Params.iterations_hypercube ~d in
  (* Canonical: the runtime applies the plan itself — reorder is vacuous
     on the single-message scatter legs and rejected rather than ignored.
     Message_level: the engine under Group_sim applies the full plan
     (reorder included), so the runtime installs nothing. *)
  let runtime =
    match backend with
    | Canonical ->
        Simnet.Runtime.create ~trace ?faults
          ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
          ~who:"Dos_network" ?domains ~n ()
    | Message_level -> Simnet.Runtime.create ~trace ?domains ~n ()
  in
  let t =
    {
      rng;
      n;
      cube;
      period = (4 * iters) + 4;
      backend;
      runtime;
      faults;
      retry;
      group_of;
      members = rebuild_members ~supernodes group_of;
      prev_blocked = Array.make n false;
      boost_attempt = 0;
      boost = 1.0;
      gs = None;
      failed_rounds = 0;
      disconnected_rounds = 0;
      windows = 0;
      last_window = None;
    }
  in
  if backend = Message_level then t.gs <- Some (fresh_group_sim t);
  t

let n t = t.n
let supernode_count t = Hypercube.node_count t.cube
let dimension t = Hypercube.dimension t.cube
let period t = t.period
let group_of t = Array.copy t.group_of
let group_members t x = Array.copy t.members.(x)
let last_window t = t.last_window
let windows_completed t = t.windows

(* Connectivity of the non-blocked subgraph.  Within a group the non-blocked
   nodes form a clique; occupied neighboring groups are joined completely;
   hence the subgraph is connected iff the subgraph of the supernode
   hypercube induced by the occupied supernodes is connected. *)
let occupied_connected t ~blocked =
  let supernodes = supernode_count t in
  let occupied = Array.make supernodes false in
  Array.iteri (fun v x -> if not blocked.(v) then occupied.(x) <- true) t.group_of;
  let start = ref (-1) in
  for x = supernodes - 1 downto 0 do
    if occupied.(x) then start := x
  done;
  if !start < 0 then (true, 1.0) (* vacuously connected: nobody is non-blocked *)
  else begin
    let seen = Array.make supernodes false in
    let queue = Queue.create () in
    seen.(!start) <- true;
    Queue.push !start queue;
    let visited = ref 0 in
    while not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      incr visited;
      Array.iter
        (fun y ->
          if occupied.(y) && not seen.(y) then begin
            seen.(y) <- true;
            Queue.push y queue
          end)
        (Hypercube.neighbors t.cube x)
    done;
    let total = Array.fold_left (fun a o -> if o then a + 1 else a) 0 occupied in
    (!visited = total, float_of_int !visited /. float_of_int total)
  end

(* Scatter group x's i-th member (in id order) to the i-th supernode of
   pool x — the final phase of the reorganization (Lemma 15). *)
let assign_from_pools t ~pools =
  let supernodes = supernode_count t in
  let new_group_of = Array.make t.n 0 in
  let fallbacks = ref 0 in
  for x = 0 to supernodes - 1 do
    let pool = pools.(x) in
    Array.iteri
      (fun i v ->
        if i < Array.length pool then
          (* One scatter message per member: a lost or delayed leg strands
             the member on its old supernode — a stale pointer the next
             window's reorganization repairs.  Fault-free this is exactly
             [pool.(i)]. *)
          new_group_of.(v) <-
            (if Simnet.Runtime.leg t.runtime ~dst:v () then pool.(i)
             else t.group_of.(v))
        else begin
          (* Underflow left the pool short; fall back to a direct uniform
             draw (counted — a correctly provisioned run never does this). *)
          incr fallbacks;
          new_group_of.(v) <- Prng.Stream.int t.rng supernodes
        end)
      t.members.(x)
  done;
  (!fallbacks, new_group_of)

(* Recovery accounting of one window's reorganization. *)
type reorg_stats = {
  underflows : int;
  fallback_draws : int;  (** pool shortfalls patched by direct uniform draws *)
  retries : int;
  escalations : int;
}

(* The reorganization computed at the end of a healthy window: the groups
   simulate the rapid hypercube sampling primitive over the supernode cube,
   then scatter their members to the supernodes they sampled. *)
let reorganize t =
  match t.backend with
  | Canonical ->
      let c_sample = sampling_c ~members:t.members ~d:(dimension t) in
      let sampling =
        Rapid_hypercube.run
          ~c:(t.boost *. c_sample)
          ~retry:t.retry
          ~rng:(Prng.Stream.split t.rng) t.cube
      in
      let fallbacks, new_group_of =
        assign_from_pools t ~pools:sampling.Sampling_result.samples
      in
      Some
        ( {
            underflows = sampling.Sampling_result.underflows;
            fallback_draws = fallbacks;
            retries = sampling.Sampling_result.retries;
            escalations = sampling.Sampling_result.escalations;
          },
          new_group_of )
  | Message_level -> (
      match t.gs with
      | None -> None
      | Some gs when not (Group_sim.finished gs) -> None
      | Some gs ->
          if Group_sim.lost_groups gs <> [] then None
          else begin
            let supernodes = supernode_count t in
            let underflows = ref 0 in
            let node_fallbacks = ref 0 in
            let pools =
              Array.init supernodes (fun x ->
                  match Group_sim.state_of gs x with
                  | None -> [||]
                  | Some st ->
                      underflows :=
                        !underflows + Supernode_sampling.underflows st;
                      node_fallbacks :=
                        !node_fallbacks + Supernode_sampling.fallbacks st;
                      (* expose the multiset in random order (cf. the same
                         shuffle in Rapid_hypercube.run) *)
                      let pool = Supernode_sampling.samples st in
                      Prng.Stream.shuffle_in_place t.rng pool;
                      pool)
            in
            let fallbacks, new_group_of = assign_from_pools t ~pools in
            Some
              ( {
                  underflows = !underflows;
                  fallback_draws = !node_fallbacks + fallbacks;
                  retries = 0;
                  escalations = 0;
                },
                new_group_of )
          end)

(* Sticky cross-window escalation: a window that needed any underflow
   recovery raises the provisioning multiplier for all subsequent windows
   (capped by the policy's [c_cap]).  The primitive's own within-window
   retries handle transient faults; this handles a systematically
   under-provisioned [c]. *)
let escalate_provisioning t ~trouble =
  if trouble && Retry.enabled t.retry then begin
    t.boost_attempt <- t.boost_attempt + 1;
    t.boost <- Retry.escalate t.retry ~c:1.0 ~attempt:t.boost_attempt
  end

let run_round t ~blocked =
  if Array.length blocked <> t.n then
    invalid_arg "Dos_network.run_round: blocked array size mismatch";
  let rt = t.runtime in
  let round = Simnet.Runtime.round rt in
  (* Crash/recover transitions fire at the round boundary; a crashed node
     behaves like a blocked one for the rest of the round (the fault-free
     path never copies the array). *)
  ignore (Simnet.Runtime.tick rt);
  let blocked =
    if Simnet.Runtime.faulty rt then begin
      let b = Array.copy blocked in
      for v = 0 to t.n - 1 do
        if Simnet.Runtime.crashed rt v then b.(v) <- true
      done;
      b
    end
    else blocked
  in
  (* Availability this round: non-blocked in the previous and this round. *)
  let supernodes = supernode_count t in
  let available = Array.make supernodes 0 in
  for v = 0 to t.n - 1 do
    if (not blocked.(v)) && not t.prev_blocked.(v) then
      available.(t.group_of.(v)) <- available.(t.group_of.(v)) + 1
  done;
  let min_avail = Array.fold_left min max_int available in
  let starved =
    Array.fold_left (fun a c -> if c = 0 then a + 1 else a) 0 available
  in
  if starved > 0 then t.failed_rounds <- t.failed_rounds + 1;
  (* Message-level backend: advance the in-flight group simulation under
     exactly this round's blocked set. *)
  (match t.gs with
  | Some gs when not (Group_sim.finished gs) -> Group_sim.run_round gs ~blocked
  | _ -> ());
  let connected, reachable_fraction = occupied_connected t ~blocked in
  if not connected then t.disconnected_rounds <- t.disconnected_rounds + 1;
  let blocked_count =
    Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
  in
  let report =
    {
      round;
      blocked_count;
      connected;
      reachable_fraction;
      min_group_available = min_avail;
      starved_groups = starved;
    }
  in
  (* Window boundary: apply (or abandon) the reconfiguration. *)
  if (round + 1) mod t.period = 0 then begin
    let healthy = t.failed_rounds = 0 in
    let stats, reconfigured =
      match (if healthy then reorganize t else None) with
      | Some (stats, new_group_of) ->
          t.group_of <- new_group_of;
          t.members <- rebuild_members ~supernodes new_group_of;
          (stats, true)
      | None ->
          ( { underflows = 0; fallback_draws = 0; retries = 0; escalations = 0 },
            false )
    in
    (* Combined count kept for the pre-existing [sampling_underflows] field
       and trace key (byte compatibility of fault-free runs). *)
    let underflows = stats.underflows + stats.fallback_draws in
    let used_boost = t.boost in
    escalate_provisioning t ~trouble:(reconfigured && underflows > 0);
    if t.backend = Message_level then t.gs <- Some (fresh_group_sim t);
    let sizes = Array.map Array.length t.members in
    t.last_window <-
      Some
        {
          window = t.windows;
          reconfigured;
          failed_rounds = t.failed_rounds;
          disconnected_rounds = t.disconnected_rounds;
          sampling_underflows = underflows;
          sampling_fallbacks = stats.fallback_draws;
          sampling_retries = stats.retries;
          sampling_escalations = stats.escalations;
          c_multiplier = used_boost;
          min_group_size = Array.fold_left min max_int sizes;
          max_group_size = Array.fold_left max 0 sizes;
        };
    Log.debug (fun k ->
        k "window %d: reconfigured=%b failed_rounds=%d disconnected=%d"
          t.windows reconfigured t.failed_rounds t.disconnected_rounds);
    Simnet.Runtime.span rt ~name:"dos/window" ~rounds:t.period
      [
        ("window", Simnet.Trace.Int t.windows);
        ("reconfigured", Simnet.Trace.Bool reconfigured);
        ("failed_rounds", Simnet.Trace.Int t.failed_rounds);
        ("disconnected_rounds", Simnet.Trace.Int t.disconnected_rounds);
        ("underflows", Simnet.Trace.Int underflows);
        ("fallback_draws", Simnet.Trace.Int stats.fallback_draws);
        ("retries", Simnet.Trace.Int stats.retries);
        ("escalations", Simnet.Trace.Int stats.escalations);
        ("c_multiplier", Simnet.Trace.Float used_boost);
      ];
    t.windows <- t.windows + 1;
    t.failed_rounds <- 0;
    t.disconnected_rounds <- 0
  end;
  Simnet.Runtime.advance rt ~rounds:1;
  Array.blit blocked 0 t.prev_blocked 0 t.n;
  report
