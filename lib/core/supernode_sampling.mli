(** Algorithm 2 (rapid hypercube sampling) expressed as a supernode
    protocol for {!Group_sim} — the exact computation the groups of the
    Section 5 network simulate for their supernodes.

    Supernode steps alternate: step 2k sends the requests of doubling
    iteration k+1 (installing iteration k's responses first); step 2k+1
    serves received requests from the right-sibling buckets.  After
    [steps = 2 ceil(log2 d) + 1] supernode steps the coordinate-0 bucket
    holds ceil(c log2 N) uniform supernode samples, exactly like
    {!Rapid_hypercube.run} does in the direct implementation.

    The protocol is written functionally (states are never mutated) because
    several group members step the same adopted state with their own
    randomness; divergent results are reconciled by {!Group_sim}'s
    lowest-id rule, as in the paper. *)

type state
type msg

val protocol :
  ?eps:float ->
  ?c:float ->
  ?trace:Simnet.Trace.t ->
  ?fallback:bool ->
  cube:Topology.Hypercube.t ->
  unit ->
  (state, msg) Group_sim.protocol
(** Defaults [eps = 0.5], [c = 2.0], as in the direct implementation.
    [trace] (default {!Simnet.Trace.null}) receives one
    ["sampling/request"] / ["sampling/serve"] / ["sampling/install"]
    [Span] per supernode step (emitted once per step, not per group
    member).

    [fallback] (default [false]) makes an under-provisioned run degrade
    gracefully instead of underflowing: an extraction that finds an empty
    bucket synthesizes a fresh uniform supernode (still a uniform sample,
    no longer walk-derived) and is counted in {!fallbacks}.  A run with
    [fallback] never underflows; use the count to judge how far the
    provisioning was from sufficient. *)

val samples : state -> int array
(** The uniform supernode samples accumulated in bucket 0; call on the
    final state. *)

val underflows : state -> int
(** Extraction attempts that found an empty bucket in the history of this
    state (0 in a correctly provisioned run). *)

val fallbacks : state -> int
(** Extraction attempts answered by a uniform fallback draw instead of an
    underflow (always 0 unless [protocol ~fallback:true]). *)
