(** Self-stabilization driver: detect-and-repair from a corrupted topology.

    The paper's guarantees start from a {e correct} overlay; this driver
    answers the recovery question its model leaves open (see Avatar and
    the self-stabilizing-overlay framework in PAPERS.md): starting from an
    adversarially corrupted successor-array family
    ({!Simnet.Corruption}), how many rounds and message bits until
    {!Simnet.Invariants.check_all} holds again?

    Each epoch runs three repair phases, all locally detectable and all
    charged through {!Simnet.Runtime} (so a {!Simnet.Faults} plan can
    drop/delay the repair traffic itself, bounded by a per-node
    {!Retry.policy} budget):

    + {b patch} — out-of-range pointers and collision losers (every
      over-subscribed target keeps only its lowest-indexed predecessor)
      are re-aimed at the uncovered targets; one full pass makes every
      cycle a permutation.
    + {b splice} — pairwise orbit merges (swapping two successors merges
      two orbits) in ceil(log2 orbits) waves until each cycle is a single
      Hamilton cycle.
    + {b reconfigure} — one pass of the paper's Algorithm 3
      ({!Reconfig.reconfigure} with identity relabeling) re-randomizes the
      repaired topology; not needed for convergence, so its failure under
      faults only defers re-randomization to the next epoch.

    Convergence is declared when {!Simnet.Invariants.check_all} returns
    [[]].  [Static] mode runs detection only — the baseline that must
    report residual violations forever.

    Trace vocabulary (consumed by [trace_check --require]): [Note]
    ["repair/detect"] per epoch with per-kind violation counts, [Span]s
    ["repair/patch"], ["repair/splice"], ["repair/reconfig"], [Note]s
    ["repair/reconfig-failed"], ["repair/residual"], and ["converged"]
    with the final rounds/bits totals. *)

type mode = Repair | Static

val mode_to_string : mode -> string
val mode_of_string : string -> (mode, string) result

type report = {
  mode : mode;
  converged : bool;  (** all invariants restored *)
  epochs : int;  (** detect-and-repair epochs run *)
  rounds : int;  (** communication rounds charged, detection included *)
  bits : int;  (** message bits spent on repair and re-randomization *)
  initial_violations : int;  (** defect count of the corrupted state *)
  residual : Simnet.Invariants.violation list;
      (** violations still standing at the end ([[]] iff [converged]) *)
  patches : int;  (** local pointer patches applied *)
  splices : int;  (** orbit merges applied *)
  reconfigs : int;  (** successful Algorithm-3 re-randomization passes *)
  retries : int;  (** repair legs and replies re-attempted after loss *)
}

val run :
  ?trace:Simnet.Trace.t ->
  ?mode:mode ->
  ?max_epochs:int ->
  ?retry:Retry.policy ->
  ?faults:Simnet.Faults.plan ->
  ?domains:int ->
  corruption:Simnet.Corruption.spec ->
  rng:Prng.Stream.t ->
  n:int ->
  d:int ->
  unit ->
  report
(** Build a correct [d/2]-cycle topology over [n] nodes from [rng],
    corrupt it with [corruption] (whose own keyed stream leaves [rng]
    untouched), then run detect-and-repair epochs (default [mode] =
    [Repair], at most [max_epochs] = 16) until convergence or the epoch
    budget is spent.  [retry] (default {!Retry.fixed}) bounds per-node
    re-attempts of lost repair legs; [faults] (drop/duplicate/delay
    features only) applies to the repair traffic itself.  Same seed ⇒
    byte-identical trace and report.  Raises [Invalid_argument] on
    [n < 4], [d < 2] or [max_epochs < 1]. *)
