type strategy = Random_blocking | Group_kill | Isolate_node

let all = [ Random_blocking; Group_kill; Isolate_node ]

let to_string = function
  | Random_blocking -> "random"
  | Group_kill -> "group-kill"
  | Isolate_node -> "isolate"

type t = {
  strategy : strategy;
  rng : Prng.Stream.t;
  frac : float;
  snapshots : int array Simnet.Snapshots.t;
  trace : Simnet.Trace.t;
}

let create ?(trace = Simnet.Trace.null) ?staleness strategy ~rng ~lateness
    ~frac =
  if frac < 0.0 || frac >= 1.0 then
    invalid_arg "Dos_adversary.create: frac out of [0, 1)";
  let snapshots =
    (* The drawn-staleness buffer gets its own child stream so observation
       jitter never perturbs the strategy's draws; the fixed-lateness path
       splits nothing, keeping pre-staleness runs byte-identical. *)
    match staleness with
    | None -> Simnet.Snapshots.create ~lateness
    | Some staleness ->
        Simnet.Snapshots.create_drawn ~staleness ~rng:(Prng.Stream.split rng)
  in
  { strategy; rng; frac; snapshots; trace }

let observe t ~group_of =
  Simnet.Snapshots.push t.snapshots (Array.copy group_of)

let budget t ~n = int_of_float (Float.round (t.frac *. float_of_int n))

let random_fill ?(avoid = -1) t blocked ~n ~budget =
  (* Block uniformly random not-yet-blocked nodes until the budget is met. *)
  let remaining = ref (min budget (n - 1)) in
  while !remaining > 0 do
    let v = Prng.Stream.int t.rng n in
    if (not blocked.(v)) && v <> avoid then begin
      blocked.(v) <- true;
      decr remaining
    end
  done

(* Group membership as recorded in a (possibly stale) view.  The view may
   describe an older node population: entries can be [-1] (departed) and the
   group index space can differ from the current one, so the group count is
   derived from the view itself and consumers clamp node ids to the current
   population. *)
let members_of view =
  let supernodes = Array.fold_left (fun a x -> max a (x + 1)) 1 view in
  let vecs = Array.init supernodes (fun _ -> Topology.Intvec.create ()) in
  Array.iteri (fun v x -> if x >= 0 then Topology.Intvec.push vecs.(x) v) view;
  Array.map Topology.Intvec.to_array vecs

let blocked_set t ~cube ~n =
  let blocked = Array.make n false in
  let b = budget t ~n in
  if b > 0 then begin
    match (t.strategy, Simnet.Snapshots.view t.snapshots) with
    | Random_blocking, _ | _, None -> random_fill t blocked ~n ~budget:b
    | Group_kill, Some view ->
        let members = members_of view in
        (* Smallest groups first: starving a group costs its whole size, so
           small groups are the cheapest kills. *)
        let order = Array.init (Array.length members) (fun x -> x) in
        Array.sort
          (fun x y -> compare (Array.length members.(x)) (Array.length members.(y)))
          order;
        let spent = ref 0 in
        (try
           Array.iter
             (fun x ->
               let size = Array.length members.(x) in
               if size > 0 then begin
                 if !spent + size > b then raise Exit;
                 Array.iter
                   (fun v -> if v < n then blocked.(v) <- true)
                   members.(x);
                 spent := !spent + size
               end)
             order
         with Exit -> ());
        if !spent < b then random_fill t blocked ~n ~budget:(b - !spent)
    | Isolate_node, Some view ->
        let members = members_of view in
        let victim = Prng.Stream.int t.rng (min n (Array.length view)) in
        let x = view.(victim) in
        let spent = ref 0 in
        let block v =
          if v <> victim && v < n && (not blocked.(v)) && !spent < b then begin
            blocked.(v) <- true;
            incr spent
          end
        in
        if x >= 0 then begin
          Array.iter block members.(x);
          Array.iter
            (fun y ->
              if y < Array.length members then Array.iter block members.(y))
            (Topology.Hypercube.neighbors cube x)
        end;
        if !spent < b then
          random_fill ~avoid:victim t blocked ~n ~budget:(b - !spent)
  end;
  if Simnet.Trace.enabled t.trace then begin
    let count = Array.fold_left (fun a x -> if x then a + 1 else a) 0 blocked in
    Simnet.Trace.emit t.trace
      (Simnet.Trace.Adversary
         {
           kind = "dos";
           fields =
             [
               ("strategy", Simnet.Trace.String (to_string t.strategy));
               ("blocked", Simnet.Trace.Int count);
               ("budget", Simnet.Trace.Int b);
               ( "has_view",
                 Simnet.Trace.Bool (Simnet.Snapshots.view t.snapshots <> None)
               );
             ];
         })
  end;
  blocked
