(** Message-level simulation of supernode protocols by representative
    groups (Section 5), on top of {!Simnet.Engine}.

    {!Dos_network} advances one canonical state per group and declares a
    window failed when a group starves — a behavioural shortcut justified
    in DESIGN.md.  This module is the unabridged version, used to validate
    that shortcut: every physical node really sends messages, blocked nodes
    really miss them, and divergent replicas really get reconciled.

    One supernode round costs two network rounds:

    - {e simulation round}: every in-sync available member of R(x) locally
      computes the supernode's step — with its {e own} coin flips, so
      proposals may differ (the paper allows this) — and sends its proposal
      (new state + outgoing supernode messages) to all members of R(x).
    - {e synchronization round}: every member that receives proposals
      adopts the one from the lowest-id sender (thereby (re)joining the
      simulation, which is how nodes recover after being blocked), forwards
      each outgoing supernode message to all members of the target group,
      and is in sync for the next simulation round.

    A supernode whose group produces no proposal in a simulation round has
    lost its state; the simulation marks it (and the run) failed, which is
    exactly the starvation criterion of Lemma 14. *)

type ('state, 'msg) protocol = {
  init : supernode:int -> rng:Prng.Stream.t -> 'state;
      (** local, round-free initialization (Phase 1 of Algorithm 2) *)
  step :
    supernode:int ->
    step_index:int ->
    'state ->
    inbox:(int * 'msg) list ->
    rng:Prng.Stream.t ->
    'state * (int * 'msg) list;
      (** one supernode round: consume messages from other supernodes
          (pairs of (source supernode, payload)), produce the new state and
          outgoing (destination supernode, payload) messages *)
  steps : int;  (** supernode rounds to execute *)
  state_bits : 'state -> int;  (** wire size of a state broadcast *)
  msg_bits : 'msg -> int;
}

type ('state, 'msg) t

val create :
  ?trace:Simnet.Trace.t ->
  ?faults:Simnet.Faults.plan ->
  ?domains:int ->
  rng:Prng.Stream.t ->
  n:int ->
  group_of:int array ->
  ('state, 'msg) protocol ->
  ('state, 'msg) t
(** [group_of] maps each of the [n] physical nodes to its supernode;
    supernodes are [0 .. max group_of].  Every group must be non-empty.
    [trace] (default {!Simnet.Trace.null}) is threaded into the underlying
    engine (one [Round] event per network round) and additionally receives
    a ["groupsim/sim"] / ["groupsim/sync"] [Span] per half of each
    supernode round.  [faults] is handed to the engine: dropped proposals
    or bundles degrade members out of sync exactly like blocking does, and
    crashed members stop proposing — the redundancy argument of Lemma 14
    then decides whether the group survives.  [domains] bounds the
    engine's worker domains (default {!Parallel.default_domains}); runs
    are byte-identical for every value. *)

val supernode_count : _ t -> int
val network_rounds_total : _ t -> int
(** 2 * steps. *)

val finished : _ t -> bool

val run_round : ('state, 'msg) t -> blocked:bool array -> unit
(** Advance one network round (simulation and synchronization rounds
    alternate).  Raises [Invalid_argument] after the run has finished. *)

val run_all : ('state, 'msg) t -> blocked_for_round:(round:int -> bool array) -> unit
(** Drive every remaining round, querying the blocked set per round. *)

val lost_groups : _ t -> int list
(** Supernodes whose state was lost (no available in-sync proposer in some
    simulation round); empty iff the simulation is faithful so far. *)

val state_of : ('state, 'msg) t -> int -> 'state option
(** Canonical adopted state of a supernode; [None] if the group lost it. *)

val synced_members : _ t -> int -> int
(** Members of the group currently holding the canonical state. *)

val metrics : _ t -> Simnet.Metrics.t
(** Communication-work accounting of the underlying engine (all proposal
    broadcasts, state broadcasts, and inter-group fan-outs are charged). *)
