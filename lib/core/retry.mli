(** Retry/escalation policies for the self-healing protocol drivers.

    A policy bounds how many times a driver may re-attempt a failed
    sub-protocol and how aggressively it escalates the provisioning
    constant [c] between attempts: attempt [k] (1-based) runs with
    [min c_cap (c * factor^k)].  The zero-retry {!fixed} policy reproduces
    the paper's fault-free drivers exactly — one attempt, typed failure on
    loss — so every retry knob defaults to off. *)

type policy = {
  max_retries : int;  (** re-attempts allowed beyond the first try *)
  factor : float;  (** multiplicative [c] escalation per attempt, >= 1 *)
  c_cap : float;  (** upper bound on the escalated [c] *)
}

val fixed : policy
(** No retries: [max_retries = 0].  The default everywhere. *)

val default : policy
(** A forgiving default for fault experiments:
    [max_retries = 3], [factor = 1.5], [c_cap = 8.0]. *)

val make : ?max_retries:int -> ?factor:float -> ?c_cap:float -> unit -> policy
(** Same defaults as {!default}.  Raises [Invalid_argument] on a negative
    retry count, [factor < 1] or a non-positive [c_cap]. *)

val enabled : policy -> bool
(** [max_retries > 0]. *)

val escalate : policy -> c:float -> attempt:int -> float
(** The provisioning constant for re-attempt [attempt] (1-based) of a run
    that started at [c]: [min c_cap (c * factor^attempt)], never below
    [c]. *)

val sampling_with_retry :
  retry:policy ->
  c:float ->
  trace:Simnet.Trace.t ->
  attempt_fn:(c:float -> Sampling_result.t) ->
  Sampling_result.t
(** Driver loop shared by the rapid samplers: run [attempt_fn] with an
    escalating [c] until it reports zero underflows or the retry budget is
    spent; fills the result's [retries]/[escalations] fields and emits one
    ["sampling/retry"] trace note per re-attempt. *)
