(** The DoS-resistant overlay of Section 5.

    The n nodes are organized around a d-dimensional hypercube of
    supernodes, d maximal with 2^d <= n / (c log2 n).  Every node belongs to
    exactly one group R(x) of representatives of supernode x; group members
    form a clique and neighboring groups complete bipartite graphs.  Every
    [period] rounds the groups are rebuilt from scratch: the groups jointly
    simulate the rapid hypercube sampling primitive for their supernodes
    (each simulated round costing two network rounds), then every group
    scatters its members to the supernodes it sampled.  An adversary whose
    topology view is at least [period] rounds old therefore never knows the
    current composition of any group (Theorem 6).

    Simulation fidelity: we keep one canonical supernode state per group
    (the paper reconciles replicas via the lowest-id rule, so all correct
    replicas agree) and advance it exactly when the group has an available
    node — non-blocked in the previous and current round — as Lemma 14
    requires.  If any group ever lacks an available node, the window is
    marked failed and the old assignment is kept: the real protocol would
    have lost that supernode's state. *)

type t

type round_report = {
  round : int;
  blocked_count : int;
  connected : bool;
      (** the subgraph induced by non-blocked nodes is connected (checked on
          the occupied-supernode quotient, which is equivalent here) *)
  reachable_fraction : float;
      (** fraction of occupied supernodes reachable from the first occupied
          one; 1.0 iff [connected] (and vacuously when everyone is blocked) *)
  min_group_available : int;
      (** min over groups of members available this round *)
  starved_groups : int;
      (** groups with no available member this round (> 0 dooms the window) *)
}

type window_report = {
  window : int;
  reconfigured : bool;  (** the fresh assignment was computed and applied *)
  failed_rounds : int;  (** rounds in the window with a starved group *)
  disconnected_rounds : int;
  sampling_underflows : int;
      (** total recovery events of the window's sampling: pool underflows
          plus direct-draw fallbacks (the historical combined count) *)
  sampling_fallbacks : int;
      (** of those, draws served by a direct uniform fallback because a
          sample pool ran dry (0 in a correctly provisioned run) *)
  sampling_retries : int;
      (** sampling re-attempts under the retry policy (Canonical backend;
          0 without a policy) *)
  sampling_escalations : int;
      (** sampling retries that raised the provisioning constant *)
  c_multiplier : float;
      (** sticky provisioning multiplier that was in effect for this
          window's sampling (1.0 until an escalation fires) *)
  min_group_size : int;  (** of the new assignment (Lemma 16) *)
  max_group_size : int;
}

type backend =
  | Canonical
      (** one canonical supernode state per group, advanced while the
          availability criterion holds (the default; see DESIGN.md) *)
  | Message_level
      (** the groups run the sampling primitive through {!Group_sim}: every
          proposal broadcast, state hand-off and inter-group message is a
          real {!Simnet.Engine} message subject to the same per-round
          blocked sets as the availability bookkeeping — the unabridged
          Section 5 execution *)

val create :
  ?c:float ->
  ?backend:backend ->
  ?trace:Simnet.Trace.t ->
  ?faults:Simnet.Faults.plan ->
  ?retry:Retry.policy ->
  ?domains:int ->
  rng:Prng.Stream.t ->
  n:int ->
  unit ->
  t
(** [c] (default 1.0) is the constant fixing the supernode count
    N = 2^d <= n / (c log2 n); expected group size is then >= c log2 n.
    Nodes are initially assigned to groups independently and uniformly.
    [backend] (default [Canonical]) selects how the group simulation of the
    sampling primitive is executed.  [trace] (default {!Simnet.Trace.null})
    records one ["dos/window"] [Span] per completed window and, with the
    [Message_level] backend, the group simulation's round events and phase
    spans.

    [faults] is applied in full through {!Simnet.Runtime}.  With the
    [Canonical] backend, drop/duplicate/delay rates fire on the per-node
    scatter legs of every reorganization (a lost leg leaves the node in
    its old group) and crashed nodes count as blocked until they recover;
    reorder (vacuous on single-message legs) is rejected with
    [Invalid_argument].  With the [Message_level] backend the plan is
    handed unchanged to the group simulation's engine, so proposal
    broadcasts and inter-group bundles are subject to drops, delays,
    duplicates and crashes on top of the blocked sets.  [retry] (default {!Retry.fixed}) arms the recovery ladder: the
    sampling primitive retries with escalated provisioning (Canonical
    backend), supernode states fall back to direct uniform draws instead of
    underflowing (Message_level backend), and any window that still needed
    underflow recovery stickily raises the provisioning multiplier for all
    subsequent windows (capped by the policy's [c_cap]). *)

val n : t -> int
val supernode_count : t -> int
val dimension : t -> int
val period : t -> int
(** Rounds per reconfiguration window: 4 ceil(log2 d) network rounds for
    the simulated sampling plus 4 for the reorganization phase. *)

val group_of : t -> int array
(** Copy of the current node -> supernode assignment (this is exactly the
    topological information a t-late adversary observes, with delay). *)

val group_members : t -> int -> int array

val run_round : t -> blocked:bool array -> round_report
(** Advance one network round under the given blocked set (size n).  The
    availability rule uses the previous round's blocked set as well, per
    the model.  When the round completes a window, the pending
    reconfiguration is applied (or abandoned if the window failed). *)

val last_window : t -> window_report option
(** Report of the most recently completed window. *)

val windows_completed : t -> int
