type stats = {
  active : int;
  max_chosen : int;
  max_empty_segment : int;
  doubling_steps : int;
  rounds : int;
  work_bits : int;
}

let validate_labels ~out_label ~joiner_labels ~m =
  let seen = Array.make m false in
  let record label =
    if label < 0 || label >= m then invalid_arg "Reconfig: label out of range";
    if seen.(label) then invalid_arg "Reconfig: duplicate label";
    seen.(label) <- true
  in
  Array.iter (fun l -> if l >= 0 then record l) out_label;
  Array.iter (Array.iter record) joiner_labels;
  Array.iteri
    (fun l present ->
      if not present then
        invalid_arg (Printf.sprintf "Reconfig: label %d never assigned" l))
    seen

(* Longest run of inactive nodes along the cycle, measured starting at an
   active node so no run is split by the starting point. *)
let longest_inactive_run_from ~succ ~active ~start =
  let n = Array.length succ in
  let best = ref 0 and cur = ref 0 in
  let v = ref succ.(start) in
  for _ = 1 to n - 1 do
    if active.(!v) then begin
      if !cur > !best then best := !cur;
      cur := 0
    end
    else incr cur;
    v := succ.(!v)
  done;
  if !cur > !best then best := !cur;
  !best

let reconfigure_cycle ?(trace = Simnet.Trace.null) ~rng ~succ ~out_label
    ~joiner_labels ~take_sample ~m () =
  let n = Array.length succ in
  if Array.length out_label <> n || Array.length joiner_labels <> n then
    invalid_arg "Reconfig: array size mismatch";
  validate_labels ~out_label ~joiner_labels ~m;
  if m = 0 then None
  else begin
    (* Phase 1: route every label to an (almost) uniformly sampled node. *)
    let received = Array.make n [] in
    for v = 0 to n - 1 do
      if out_label.(v) >= 0 then begin
        let u = take_sample v in
        received.(u) <- out_label.(v) :: received.(u)
      end;
      Array.iter
        (fun label ->
          let u = take_sample v in
          received.(u) <- label :: received.(u))
        joiner_labels.(v)
    done;
    if Simnet.Trace.enabled trace then
      Simnet.Trace.emit trace
        (Simnet.Trace.Span
           {
             name = "reconfig/sample";
             rounds = 1;
             fields = [ ("labels", Simnet.Trace.Int m) ];
           });
    (* Phase 2: active nodes permute their label lists. *)
    let active = Array.map (fun l -> l <> []) received
    and lists =
      Array.map
        (fun l ->
          let a = Array.of_list l in
          Prng.Stream.shuffle_in_place rng a;
          a)
        received
    in
    let active_count = ref 0 and max_chosen = ref 0 in
    Array.iteri
      (fun v is_active ->
        if is_active then begin
          incr active_count;
          let len = Array.length lists.(v) in
          if len > !max_chosen then max_chosen := len
        end)
      active;
    if !active_count = 0 then None
    else begin
      (* Phase 3: pointer doubling to find each node's closest active strict
         successor on the old cycle.  Invariant: every node strictly between
         v and ptr(v) is inactive. *)
      let ptr = Array.copy succ in
      let steps = ref 0 in
      let unresolved = ref true in
      while !unresolved do
        unresolved := false;
        let stale = Array.copy ptr in
        for v = 0 to n - 1 do
          if not active.(stale.(v)) then ptr.(v) <- stale.(stale.(v))
        done;
        for v = 0 to n - 1 do
          if not active.(ptr.(v)) then unresolved := true
        done;
        incr steps;
        if !steps > Params.log2i_ceil (max 2 n) + 1 then
          (* Cannot happen: doubling resolves any gap within ceil(log2 n)
             steps once at least one node is active. *)
          invalid_arg "Reconfig: pointer doubling failed to converge"
      done;
      (* Find an active anchor and measure empty segments from it. *)
      let anchor = ref 0 in
      while not active.(!anchor) do
        incr anchor
      done;
      let max_empty =
        if !active_count = n then 0
        else longest_inactive_run_from ~succ ~active ~start:!anchor
      in
      if Simnet.Trace.enabled trace then
        Simnet.Trace.emit trace
          (Simnet.Trace.Span
             {
               name = "reconfig/distribute";
               rounds = 2 * !steps;
               fields =
                 [
                   ("active", Simnet.Trace.Int !active_count);
                   ("max_chosen", Simnet.Trace.Int !max_chosen);
                   ("doubling_steps", Simnet.Trace.Int !steps);
                   ("max_empty_segment", Simnet.Trace.Int max_empty);
                 ];
             });
      (* Phases 3b/4: stitch the permuted lists along the active order. *)
      let new_succ = Array.make m (-1) in
      let v = ref !anchor in
      let continue = ref true in
      while !continue do
        let l = lists.(!v) in
        let len = Array.length l in
        for i = 0 to len - 2 do
          new_succ.(l.(i)) <- l.(i + 1)
        done;
        let next = ptr.(!v) in
        new_succ.(l.(len - 1)) <- lists.(next).(0);
        v := next;
        if next = !anchor then continue := false
      done;
      (* Communication-work accounting for Algorithm 3's own traffic. *)
      let id_bits = Simnet.Msg_size.id_bits (max 2 (max n m)) in
      let one_id = Simnet.Msg_size.ids_msg ~id_bits ~count:1 in
      let two_ids = Simnet.Msg_size.ids_msg ~id_bits ~count:2 in
      let work_bits =
        (* Phase 1: one label per new node; doubling: request + response per
           node per step; boundary: two sends per active node; Phase 4: a
           neighbor pair per new node. *)
        (m * one_id)
        + (2 * n * !steps * one_id)
        + (2 * !active_count * one_id)
        + (m * two_ids)
      in
      if Simnet.Trace.enabled trace then
        Simnet.Trace.emit trace
          (Simnet.Trace.Span
             {
               name = "reconfig/rewire";
               rounds = 2;
               fields = [ ("work_bits", Simnet.Trace.Int work_bits) ];
             });
      let stats =
        {
          active = !active_count;
          max_chosen = !max_chosen;
          max_empty_segment = max_empty;
          doubling_steps = !steps;
          rounds = 1 + (2 * !steps) + 1 + 1;
          work_bits;
        }
      in
      Some (new_succ, stats)
    end
  end
