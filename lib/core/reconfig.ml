type stats = {
  active : int;
  max_chosen : int;
  max_empty_segment : int;
  doubling_steps : int;
  rounds : int;
  work_bits : int;
  reply_retries : int;
}

type failure =
  | No_active_nodes
  | Replies_lost of {
      stalled : int;
      doubling_steps : int;
      retries : int;
      lost : int;
    }

let describe_failure = function
  | No_active_nodes -> "no node became active in Phase 1"
  | Replies_lost f ->
      Printf.sprintf
        "%d node(s) lost a pointer-doubling reply past their retry budget \
         (step %d, %d replies lost, %d retries spent)"
        f.stalled f.doubling_steps f.lost f.retries

let validate_labels ~out_label ~joiner_labels ~m =
  let seen = Array.make m false in
  let record label =
    if label < 0 || label >= m then invalid_arg "Reconfig: label out of range";
    if seen.(label) then invalid_arg "Reconfig: duplicate label";
    seen.(label) <- true
  in
  Array.iter (fun l -> if l >= 0 then record l) out_label;
  Array.iter (Array.iter record) joiner_labels;
  Array.iteri
    (fun l present ->
      if not present then
        invalid_arg (Printf.sprintf "Reconfig: label %d never assigned" l))
    seen

(* Longest run of inactive nodes along the cycle, measured starting at an
   active node so no run is split by the starting point. *)
let longest_inactive_run_from ~succ ~active ~start =
  let n = Array.length succ in
  let best = ref 0 and cur = ref 0 in
  let v = ref succ.(start) in
  for _ = 1 to n - 1 do
    if active.(!v) then begin
      if !cur > !best then best := !cur;
      cur := 0
    end
    else incr cur;
    v := succ.(!v)
  done;
  if !cur > !best then best := !cur;
  !best

let reconfigure ?(trace = Simnet.Trace.null) ?drop ?(max_retries = 0) ~rng
    ~succ ~out_label ~joiner_labels ~take_sample ~m () =
  let n = Array.length succ in
  if Array.length out_label <> n || Array.length joiner_labels <> n then
    invalid_arg "Reconfig: array size mismatch";
  if max_retries < 0 then invalid_arg "Reconfig: max_retries < 0";
  validate_labels ~out_label ~joiner_labels ~m;
  if m = 0 then Error No_active_nodes
  else begin
    (* Phase 1: route every label to an (almost) uniformly sampled node. *)
    let received = Array.make n [] in
    for v = 0 to n - 1 do
      if out_label.(v) >= 0 then begin
        let u = take_sample v in
        received.(u) <- out_label.(v) :: received.(u)
      end;
      Array.iter
        (fun label ->
          let u = take_sample v in
          received.(u) <- label :: received.(u))
        joiner_labels.(v)
    done;
    if Simnet.Trace.enabled trace then
      Simnet.Trace.emit trace
        (Simnet.Trace.Span
           {
             name = "reconfig/sample";
             rounds = 1;
             fields = [ ("labels", Simnet.Trace.Int m) ];
           });
    (* Phase 2: active nodes permute their label lists. *)
    let active = Array.map (fun l -> l <> []) received
    and lists =
      Array.map
        (fun l ->
          let a = Array.of_list l in
          Prng.Stream.shuffle_in_place rng a;
          a)
        received
    in
    let active_count = ref 0 and max_chosen = ref 0 in
    Array.iteri
      (fun v is_active ->
        if is_active then begin
          incr active_count;
          let len = Array.length lists.(v) in
          if len > !max_chosen then max_chosen := len
        end)
      active;
    if !active_count = 0 then Error No_active_nodes
    else begin
      (* Phase 3: pointer doubling to find each node's closest active strict
         successor on the old cycle.  Invariant: every node strictly between
         v and ptr(v) is inactive.

         Each step, a node with an unresolved pointer queries its current
         target for that target's pointer.  Under a fault plan the reply can
         be lost ([drop] fires): the node re-issues the query while its
         per-node [max_retries] budget lasts, and past the budget its
         pointer goes permanently stale — detected below and reported as
         {!Replies_lost} rather than silently stitching a wrong cycle. *)
      let ptr = Array.copy succ in
      let steps = ref 0 in
      let unresolved = ref true in
      let budget = Array.make n max_retries in
      let stale_forever = Array.make n false in
      let retries_total = ref 0 and lost_total = ref 0 in
      let reply_lost () = match drop with None -> false | Some f -> f () in
      while !unresolved do
        unresolved := false;
        let stale = Array.copy ptr in
        for v = 0 to n - 1 do
          if (not stale_forever.(v)) && not active.(stale.(v)) then begin
            let rec reply_arrives () =
              if not (reply_lost ()) then true
              else begin
                incr lost_total;
                if budget.(v) > 0 then begin
                  budget.(v) <- budget.(v) - 1;
                  incr retries_total;
                  reply_arrives ()
                end
                else begin
                  stale_forever.(v) <- true;
                  false
                end
              end
            in
            if reply_arrives () then ptr.(v) <- stale.(stale.(v))
          end
        done;
        for v = 0 to n - 1 do
          if (not stale_forever.(v)) && not active.(ptr.(v)) then
            unresolved := true
        done;
        incr steps;
        if !steps > Params.log2i_ceil (max 2 n) + 1 then
          (* Cannot happen: doubling resolves any gap within ceil(log2 n)
             steps once at least one node is active (stalled nodes are
             excluded from the convergence check and reported below). *)
          invalid_arg "Reconfig: pointer doubling failed to converge"
      done;
      let stalled =
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 stale_forever
      in
      if stalled > 0 then begin
        if Simnet.Trace.enabled trace then
          Simnet.Trace.emit trace
            (Simnet.Trace.Note
               {
                 name = "reconfig/stalled";
                 fields =
                   [
                     ("stalled", Simnet.Trace.Int stalled);
                     ("doubling_steps", Simnet.Trace.Int !steps);
                     ("lost", Simnet.Trace.Int !lost_total);
                     ("retries", Simnet.Trace.Int !retries_total);
                   ];
               });
        Error
          (Replies_lost
             {
               stalled;
               doubling_steps = !steps;
               retries = !retries_total;
               lost = !lost_total;
             })
      end
      else begin
      (* Find an active anchor and measure empty segments from it. *)
      let anchor = ref 0 in
      while not active.(!anchor) do
        incr anchor
      done;
      let max_empty =
        if !active_count = n then 0
        else longest_inactive_run_from ~succ ~active ~start:!anchor
      in
      if Simnet.Trace.enabled trace then
        Simnet.Trace.emit trace
          (Simnet.Trace.Span
             {
               name = "reconfig/distribute";
               rounds = 2 * !steps;
               fields =
                 [
                   ("active", Simnet.Trace.Int !active_count);
                   ("max_chosen", Simnet.Trace.Int !max_chosen);
                   ("doubling_steps", Simnet.Trace.Int !steps);
                   ("max_empty_segment", Simnet.Trace.Int max_empty);
                 ];
             });
      (* Phases 3b/4: stitch the permuted lists along the active order. *)
      let new_succ = Array.make m (-1) in
      let v = ref !anchor in
      let continue = ref true in
      while !continue do
        let l = lists.(!v) in
        let len = Array.length l in
        for i = 0 to len - 2 do
          new_succ.(l.(i)) <- l.(i + 1)
        done;
        let next = ptr.(!v) in
        new_succ.(l.(len - 1)) <- lists.(next).(0);
        v := next;
        if next = !anchor then continue := false
      done;
      (* Communication-work accounting for Algorithm 3's own traffic. *)
      let id_bits = Simnet.Msg_size.id_bits (max 2 (max n m)) in
      let one_id = Simnet.Msg_size.ids_msg ~id_bits ~count:1 in
      let two_ids = Simnet.Msg_size.ids_msg ~id_bits ~count:2 in
      let work_bits =
        (* Phase 1: one label per new node; doubling: request + response per
           node per step; boundary: two sends per active node; Phase 4: a
           neighbor pair per new node. *)
        (m * one_id)
        + (2 * n * !steps * one_id)
        + (2 * !active_count * one_id)
        + (m * two_ids)
      in
      if Simnet.Trace.enabled trace then
        Simnet.Trace.emit trace
          (Simnet.Trace.Span
             {
               name = "reconfig/rewire";
               rounds = 2;
               fields = [ ("work_bits", Simnet.Trace.Int work_bits) ];
             });
      let stats =
        {
          active = !active_count;
          max_chosen = !max_chosen;
          max_empty_segment = max_empty;
          doubling_steps = !steps;
          rounds = 1 + (2 * !steps) + 1 + 1;
          work_bits;
          reply_retries = !retries_total;
        }
      in
      Ok (new_succ, stats)
      end
    end
  end

let reconfigure_cycle ?trace ~rng ~succ ~out_label ~joiner_labels ~take_sample
    ~m () =
  match
    reconfigure ?trace ~rng ~succ ~out_label ~joiner_labels ~take_sample ~m ()
  with
  | Ok r -> Some r
  | Error _ -> None
