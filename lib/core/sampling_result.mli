(** Common result shape for the node sampling primitives (rapid and plain),
    so experiment harnesses can compare them uniformly. *)

type t = {
  samples : int array array;
      (** [samples.(v)] = node ids sampled by node [v]. *)
  rounds : int;  (** communication rounds consumed (final attempt only) *)
  walk_length : int;
      (** length of the (implicit) random walks behind the samples *)
  schedule : int array;
      (** multiset size schedule [m_0 .. m_T] (rapid) or [[|k|]] (plain) *)
  underflows : int;
      (** extractions that found an empty multiset in the final attempt;
          0 iff the run "succeeded" in the sense of Lemmas 7/9 *)
  retries : int;
      (** full re-attempts performed under a {!Retry.policy} (0 without
          one, or when the first attempt succeeded) *)
  escalations : int;
      (** retries that actually raised the provisioning constant [c]
          (a retry at the [c_cap] no longer escalates) *)
  max_round_node_bits : int;
      (** worst per-node communication work in any round, in bits *)
  total_bits : int;
}

val succeeded : t -> bool
val samples_per_node : t -> int
(** Minimum number of samples delivered to any node. *)

val flatten : t -> int array
(** All samples of all nodes in one array (for distribution tests). *)
