module Hypercube = Topology.Hypercube

type msg =
  | Req of int  (** segment start; the requester is the wire source *)
  | Resp of int * int  (** segment start, sampled supernode *)

type state = {
  d : int;
  iters : int;
  schedule : int array;
  buckets : int array array;  (** segment start -> bucket contents *)
  underflows : int;
  fallbacks : int;
  (* [Some n]: an extraction that finds an empty bucket synthesizes a
     uniform supernode from [0, n) instead of underflowing. *)
  fallback : int option;
}

let samples st =
  (* Bucket 0 after the final install; expose in random order is not
     possible here (no rng) — Group_sim consumers shuffle as needed, and
     the contents are already a uniform multiset. *)
  Array.copy st.buckets.(0)

let underflows st = st.underflows
let fallbacks st = st.fallbacks

(* Draw [count] elements without replacement from [bucket]; returns the
   drawn elements, the remainder, the underflow count and the fallback
   count, all functionally (the input state is shared between proposers).
   With [fallback = Some n], an empty extraction degrades to a fresh
   uniform supernode instead of underflowing — the sample stays uniform,
   it just stops being walk-derived. *)
let draw ?fallback rng bucket count =
  let ms = Multiset.of_array bucket in
  let drawn = ref [] and missing = ref 0 and degraded = ref 0 in
  for _ = 1 to count do
    match Multiset.extract_random ms rng with
    | Some v -> drawn := v :: !drawn
    | None -> (
        match fallback with
        | Some n ->
            incr degraded;
            drawn := Prng.Stream.int rng n :: !drawn
        | None -> incr missing)
  done;
  (!drawn, Multiset.to_array ms, !missing, !degraded)

let left_starts ~d ~iteration =
  let step = 1 lsl iteration and half = 1 lsl (iteration - 1) in
  let rec go s acc =
    if s >= d then List.rev acc
    else go (s + step) (if s + half < d then s :: acc else acc)
  in
  go 0 []

(* Emit the requests of doubling iteration [iteration] (1-based). *)
let send_requests st ~iteration ~rng =
  let mi = st.schedule.(iteration) in
  let buckets = Array.copy st.buckets in
  let underflows = ref st.underflows and degraded = ref st.fallbacks in
  let out = ref [] in
  List.iter
    (fun s ->
      let targets, rest, missing, fb =
        draw ?fallback:st.fallback rng buckets.(s) mi
      in
      buckets.(s) <- rest;
      underflows := !underflows + missing;
      degraded := !degraded + fb;
      List.iter (fun v -> out := (v, Req s) :: !out) targets)
    (left_starts ~d:st.d ~iteration);
  ({ st with buckets; underflows = !underflows; fallbacks = !degraded },
   List.rev !out)

(* Serve the requests of iteration [iteration] from right-sibling buckets. *)
let serve_requests st ~iteration ~inbox ~rng =
  let half = 1 lsl (iteration - 1) in
  let buckets = Array.copy st.buckets in
  let underflows = ref st.underflows and degraded = ref st.fallbacks in
  let out = ref [] in
  List.iter
    (fun (src, m) ->
      match m with
      | Req s -> (
          let drawn, rest, missing, fb =
            draw ?fallback:st.fallback rng buckets.(s + half) 1
          in
          buckets.(s + half) <- rest;
          underflows := !underflows + missing;
          degraded := !degraded + fb;
          match drawn with
          | [ w ] -> out := (src, Resp (s, w)) :: !out
          | _ -> ())
      | Resp _ -> ())
    inbox;
  ({ st with buckets; underflows = !underflows; fallbacks = !degraded },
   List.rev !out)

(* Install the responses of iteration [iteration]: left buckets are rebuilt
   from the received samples, right siblings are consumed. *)
let install_responses st ~iteration ~inbox =
  let half = 1 lsl (iteration - 1) in
  let buckets = Array.copy st.buckets in
  let fresh = Hashtbl.create 8 in
  List.iter
    (fun (_, m) ->
      match m with
      | Resp (s, w) ->
          Hashtbl.replace fresh s
            (w :: Option.value ~default:[] (Hashtbl.find_opt fresh s))
      | Req _ -> ())
    inbox;
  List.iter
    (fun s ->
      buckets.(s) <-
        Array.of_list (Option.value ~default:[] (Hashtbl.find_opt fresh s));
      buckets.(s + half) <- [||])
    (left_starts ~d:st.d ~iteration);
  { st with buckets }

let protocol ?(eps = 0.5) ?(c = 2.0) ?(trace = Simnet.Trace.null)
    ?(fallback = false) ~cube () =
  let d = Hypercube.dimension cube in
  let n = Hypercube.node_count cube in
  let iters = Params.iterations_hypercube ~d in
  let schedule = Params.schedule_hypercube ~eps ~c ~n ~iters in
  let id_bits = Simnet.Msg_size.id_bits n in
  (* [step] runs once per group member per step index; emit each phase span
     once, on the first call for its step index (member iteration order is
     deterministic, so the trace is too). *)
  let last_span = ref (-1) in
  let span_step step_index =
    if Simnet.Trace.enabled trace && !last_span < step_index then begin
      last_span := step_index;
      let name, iteration =
        if step_index = 0 then ("sampling/request", 1)
        else if step_index mod 2 = 1 then
          ("sampling/serve", (step_index + 1) / 2)
        else ("sampling/install", step_index / 2)
      in
      Simnet.Trace.emit trace
        (Simnet.Trace.Span
           {
             name;
             rounds = 1;
             fields =
               [
                 ("step_index", Simnet.Trace.Int step_index);
                 ("iteration", Simnet.Trace.Int iteration);
               ];
           })
    end
  in
  let init ~supernode ~rng =
    let buckets =
      Array.init d (fun j ->
          Array.init schedule.(0) (fun _ ->
              if Prng.Stream.bool rng then Hypercube.flip cube supernode j
              else supernode))
    in
    {
      d;
      iters;
      schedule;
      buckets;
      underflows = 0;
      fallbacks = 0;
      fallback = (if fallback then Some n else None);
    }
  in
  let step ~supernode:_ ~step_index st ~inbox ~rng =
    span_step step_index;
    if step_index = 0 then send_requests st ~iteration:1 ~rng
    else if step_index mod 2 = 1 then
      (* odd steps serve iteration (step_index + 1) / 2 *)
      serve_requests st ~iteration:((step_index + 1) / 2) ~inbox ~rng
    else begin
      (* even steps install iteration step_index / 2, then request the next *)
      let k = step_index / 2 in
      let st = install_responses st ~iteration:k ~inbox in
      if k >= st.iters then (st, [])
      else send_requests st ~iteration:(k + 1) ~rng
    end
  in
  {
    Group_sim.init;
    step;
    steps = (2 * iters) + 1;
    state_bits =
      (fun st ->
        let total =
          Array.fold_left (fun a b -> a + Array.length b) 0 st.buckets
        in
        Simnet.Msg_size.header_bits + (total * id_bits));
    msg_bits =
      (fun m ->
        match m with
        | Req _ -> Simnet.Msg_size.header_bits + Simnet.Msg_size.id_bits (max 2 d)
        | Resp _ ->
            Simnet.Msg_size.header_bits
            + Simnet.Msg_size.id_bits (max 2 d)
            + id_bits);
  }
