(** Network reconfiguration (Algorithm 3, Section 4): transforms one
    oriented Hamilton cycle into a fresh, uniformly random one, integrating
    joining nodes and dropping leaving nodes.

    Phase 1: every staying node sends its (new) label to a node drawn via
    rapid node sampling, plus one message per joiner delegated to it.
    Phase 2: a node that received labels ("active") permutes them uniformly.
    Phase 3: active nodes locate their closest active successor on the OLD
    cycle by pointer doubling across the empty segments (Lemma 12 keeps
    these polylogarithmic, so O(log log n) doubling steps suffice) and
    exchange boundary labels.
    Phase 4: every label learns its two neighbors in the new cycle.

    The new cycle is the concatenation, in old-cycle order of the active
    nodes, of their permuted label lists — uniformly random over all cycles
    on the new node set (Lemma 10 / Theorem 4). *)

type stats = {
  active : int;  (** nodes chosen at least once in Phase 1 *)
  max_chosen : int;  (** Lemma 11: max labels handled by one node *)
  max_empty_segment : int;  (** Lemma 12: longest inactive run on the old cycle *)
  doubling_steps : int;  (** pointer-doubling iterations in Phase 3 *)
  rounds : int;
      (** communication rounds of Algorithm 3 itself (Phase 1 send, 2 per
          doubling step, boundary exchange, Phase 4), excluding the sampling
          rounds already spent by the primitive *)
  work_bits : int;
      (** total bits Algorithm 3 itself moves (Phase-1 label sends, the
          pointer-doubling requests/responses, boundary exchange, Phase-4
          neighbor notifications) — small next to the sampling traffic *)
  reply_retries : int;
      (** pointer-doubling replies re-requested after a loss (0 in a
          fault-free run) *)
}

type failure =
  | No_active_nodes
      (** nobody received a label in Phase 1 (degenerate inputs, or
          [m = 0]) *)
  | Replies_lost of {
      stalled : int;  (** nodes whose pointer went permanently stale *)
      doubling_steps : int;
      retries : int;  (** re-issues spent across all nodes *)
      lost : int;  (** replies lost in total, retried or not *)
    }
      (** pointer doubling could not complete: some node lost a needed reply
          more times than its retry budget allowed.  The old cycle is left
          untouched; returning this instead of a wrong cycle is the whole
          point. *)

val describe_failure : failure -> string

val reconfigure :
  ?trace:Simnet.Trace.t ->
  ?drop:(unit -> bool) ->
  ?max_retries:int ->
  rng:Prng.Stream.t ->
  succ:int array ->
  out_label:int array ->
  joiner_labels:int array array ->
  take_sample:(int -> int) ->
  m:int ->
  unit ->
  (int array * stats, failure) result
(** [reconfigure ~rng ~succ ~out_label ~joiner_labels ~take_sample ~m]
    rebuilds the cycle [succ] (successor array over the current nodes
    [0 .. n-1]).  [out_label.(v)] is [v]'s label in the new node namespace
    [0 .. m-1], or [-1] if [v] is leaving; [joiner_labels.(v)] are the new
    labels of joiners delegated to [v]; [take_sample v] must return a fresh
    (almost) uniform current-node sample on behalf of [v] — one call per
    label sent in Phase 1.  [m] must equal the number of distinct labels
    overall.  Returns the successor array of the new cycle over [0 .. m-1],
    or a typed {!failure}.  Raises [Invalid_argument] on inconsistent
    labels.

    [drop] models reply loss in the Phase-3 pointer doubling: it is rolled
    once per needed reply (plus once per re-issue), typically
    [Simnet.Faults.bernoulli] on the run's fault stream.  A node whose
    reply is lost re-issues the query while its [max_retries] (default 0)
    per-node budget lasts; a node that exhausts the budget stalls and the
    call returns {!Replies_lost} — with the default budget, the first lost
    reply any node needs is fatal, which is exactly the fixed
    (non-self-healing) driver of the fault experiment.  Without [drop] no
    randomness is consumed and the behavior is byte-identical to the
    fault-free algorithm.

    [trace] receives one [Span] per phase group: ["reconfig/sample"]
    (Phase 1), ["reconfig/distribute"] (Phases 2–3, pointer doubling) and
    ["reconfig/rewire"] (boundary exchange + Phase 4), plus a
    ["reconfig/stalled"] [Note] before a {!Replies_lost} failure. *)

val reconfigure_cycle :
  ?trace:Simnet.Trace.t ->
  rng:Prng.Stream.t ->
  succ:int array ->
  out_label:int array ->
  joiner_labels:int array array ->
  take_sample:(int -> int) ->
  m:int ->
  unit ->
  (int array * stats) option
(** Fault-free convenience wrapper: {!reconfigure} without [drop], with
    failures collapsed to [None] (only {!No_active_nodes} can occur). *)
