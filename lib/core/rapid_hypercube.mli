(** Rapid node sampling in the hypercube (Algorithm 2, Section 3.2).

    Node u keeps one multiset M_j per coordinate j.  Initially M_j holds
    m_0 copies of "u with coordinate j randomized" (one step of the d-round
    sampling walk of Section 2.3, restricted to dimension j).  Iteration i
    merges the coordinate segment starting at j with the segment starting at
    j + 2^(i-1): u asks a node v drawn from M_j — whose coordinates in
    [j, j + 2^(i-1)) are already random — for an element of v's own bucket
    M_(j + 2^(i-1)), whose further 2^(i-1) coordinates are random relative
    to v (Lemma 8).  After ceil(log2 d) iterations the bucket of coordinate
    0 holds nodes all of whose coordinates are uniformly random, i.e. exact
    uniform samples over V (Theorem 3).

    The paper assumes d is a power of two for presentation; we support any
    d >= 1 by letting a trailing segment without a right sibling simply
    persist to the next iteration (the segment tree becomes left-leaning;
    the invariant of Lemma 8 is unaffected). *)

val run :
  ?eps:float ->
  ?c:float ->
  ?trace:Simnet.Trace.t ->
  ?retry:Retry.policy ->
  rng:Prng.Stream.t ->
  Topology.Hypercube.t ->
  Sampling_result.t
(** Defaults: [eps = 0.5], [c = 2.0] (the constant of Lemma 9).  [trace]
    (default {!Simnet.Trace.null}) receives one [Round] event per
    communication round.  Delivers
    [schedule.(R)] = ceil(c log2 n) exactly-uniform samples per node when no
    underflow occurs; [rounds = 2 ceil(log2 d)]; [walk_length] reports [d]
    (all coordinates randomized).  [retry] (default {!Retry.fixed}, off)
    re-runs an underflowing attempt with an escalated [c] exactly as in
    {!Rapid_hgraph.run}. *)

val run_plain :
  ?trace:Simnet.Trace.t ->
  k:int ->
  rng:Prng.Stream.t ->
  Topology.Hypercube.t ->
  Sampling_result.t
(** The baseline d-round token walk of Section 2.3: each node releases [k]
    tokens; in round i the holder flips a fair coin and either keeps the
    token or forwards it across dimension i; after d rounds the holder
    reports its id to the origin.  Exactly uniform as well, but needs
    [d + 1 = log2 n + 1] rounds. *)
