module Hgraph = Topology.Hgraph

let src = Logs.Src.create "overlay.churn" ~doc:"Churn-resistant network events"

module Log = (val Logs.src_log src : Logs.LOG)

type sampler = Rapid | Plain_walks

type t = {
  rng : Prng.Stream.t;
  sampler : sampler;
  (* Rounds, faults, losses, health and trace emission all live here: the
     reply channel of Algorithm 3 is rolled through [Runtime.leg] (via
     [Runtime.link_drop]), and crash victims become forced leaves at the
     next epoch boundary. *)
  runtime : Simnet.Runtime.t;
  retry : Retry.policy;
  mutable graph : Hgraph.t;
  mutable ids : int array;
  mutable next_id : int;
}

type epoch_report = {
  n_before : int;
  n_after : int;
  joined : int;
  left : int;
  rounds : int;
  sampling_underflows : int;
  sampling_retries : int;
  sampling_escalations : int;
  sample_shortfall : int;
  max_joiners_per_node : int;
  max_chosen : int;
  max_empty_segment : int;
  max_node_round_bits : int;
  reconfig_bits : int;
  reply_retries : int;
  stale_pointers : int;
  valid : bool;
  connected : bool;
  reachable_fraction : float;
  failure : string option;
}

let create ?(d = 8) ?(sampler = Rapid) ?(trace = Simnet.Trace.null) ?faults
    ?(retry = Retry.fixed) ?domains ~rng ~n () =
  let graph = Hgraph.random (Prng.Stream.split rng) ~n ~d in
  (* Reorder is vacuous on single-reply legs, and a recovered node cannot
     rejoin a network it was forced to leave — reject both rather than
     silently ignoring them. *)
  let runtime =
    Simnet.Runtime.create ~trace ?faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash ]
      ~who:"Churn_network" ?domains ~n ()
  in
  {
    rng;
    sampler;
    runtime;
    retry;
    graph;
    ids = Array.init n (fun i -> i);
    next_id = n;
  }

let size t = Hgraph.n t.graph
let degree t = Hgraph.degree t.graph
let graph t = t.graph
let ids t = Array.copy t.ids

(* Resolve introduction chains: a joiner introduced to another joiner
   inherits that joiner's (transitively resolved) member delegate. *)
let resolve_delegates ~n ~join_introducers =
  let k = Array.length join_introducers in
  let resolved = Array.make k (-1) in
  let rec resolve i seen =
    if resolved.(i) >= 0 then resolved.(i)
    else
      match join_introducers.(i) with
      | `Member p ->
          if p < 0 || p >= n then
            invalid_arg "Churn_network: bad introducer position";
          resolved.(i) <- p;
          p
      | `Joiner j ->
          if j < 0 || j >= k then
            invalid_arg "Churn_network: bad joiner reference";
          if List.mem j seen then
            invalid_arg "Churn_network: cyclic introduction chain";
          let p = resolve j (j :: seen) in
          resolved.(i) <- p;
          p
  in
  Array.init k (fun i -> resolve i [ i ])

let run_one_epoch t ~leaves ~join_introducers =
  let rt = t.runtime in
  let trace = Simnet.Runtime.trace rt in
  let n = size t in
  let cycles = Hgraph.cycles t.graph in
  let leaving = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n then invalid_arg "Churn_network.epoch: bad leave position";
      leaving.(p) <- true)
    leaves;
  (* Crash-stop at epoch granularity: a node crashed by the fault plan is
     forced to leave at the next epoch boundary (victims are positions in
     the current namespace; a victim index past the current size hits
     nobody). *)
  ignore (Simnet.Runtime.tick rt);
  for p = 0 to n - 1 do
    if Simnet.Runtime.crashed rt p then leaving.(p) <- true
  done;
  let left = Array.fold_left (fun acc l -> if l then acc + 1 else acc) 0 leaving in
  let joined = Array.length join_introducers in
  let stayers = n - left in
  let m = stayers + joined in
  if m < 3 then invalid_arg "Churn_network.epoch: surviving network too small";
  (* Labels in the new namespace: stayers first (position order), joiners
     after.  The labeling itself carries no randomness; uniformity of the
     new topology comes from Algorithm 3. *)
  let out_label = Array.make n (-1) in
  let next = ref 0 in
  for p = 0 to n - 1 do
    if not leaving.(p) then begin
      out_label.(p) <- !next;
      incr next
    end
  done;
  let joiners_of = Array.make n [] in
  Array.iter
    (fun p ->
      if p < 0 || p >= n then
        invalid_arg "Churn_network.epoch: bad introducer position";
      joiners_of.(p) <- !next :: joiners_of.(p);
      incr next)
    join_introducers;
  let joiner_labels = Array.map Array.of_list joiners_of in
  let max_joiners =
    Array.fold_left (fun acc a -> max acc (Array.length a)) 0 joiner_labels
  in
  (* Provision the sampling primitive: every node needs, per cycle, one
     sample for itself plus one per delegated joiner ("polylogarithmically
     many parallel instances" in the paper's terms). *)
  let needed_per_node = cycles * (1 + max_joiners) in
  let sampling =
    match t.sampler with
    | Rapid ->
        let logn = Float.max 1.0 (Params.log2f (float_of_int n)) in
        let c = Float.max 2.0 (float_of_int needed_per_node /. logn +. 1.0) in
        Rapid_hgraph.run ~c ~trace ~retry:t.retry
          ~rng:(Prng.Stream.split t.rng) t.graph
    | Plain_walks ->
        (* Ablation A1: same pipeline, but the Phase-1 samples come from
           plain token walks, costing Theta(log n) rounds per epoch. *)
        Rapid_hgraph.run_plain ~trace ~k:(needed_per_node + 2)
          ~rng:(Prng.Stream.split t.rng) t.graph
  in
  Simnet.Runtime.span rt ~name:"epoch/sampling"
    ~rounds:sampling.Sampling_result.rounds
    [
      ("underflows", Simnet.Trace.Int sampling.Sampling_result.underflows);
      ( "max_node_round_bits",
        Simnet.Trace.Int sampling.Sampling_result.max_round_node_bits );
    ];
  let cursors = Array.make n 0 in
  let shortfall = ref 0 in
  let take_sample v =
    let pool = sampling.Sampling_result.samples.(v) in
    if cursors.(v) < Array.length pool then begin
      let s = pool.(cursors.(v)) in
      cursors.(v) <- cursors.(v) + 1;
      s
    end
    else begin
      incr shortfall;
      Prng.Stream.int t.rng n
    end
  in
  (* Reconfigure every Hamilton cycle independently (they run in parallel;
     the epoch costs the slowest one). *)
  let reconf_rounds = ref 0 in
  let max_chosen = ref 0 and max_empty = ref 0 in
  let reconfig_bits = ref 0 in
  let reply_retries = ref 0 and stale_pointers = ref 0 in
  let failure = ref None in
  let fail reason = if !failure = None then failure := Some reason in
  let valid = ref true in
  let new_cycles =
    Array.init cycles (fun ci ->
        match
          Reconfig.reconfigure ~trace ?drop:(Simnet.Runtime.link_drop rt)
            ~max_retries:t.retry.Retry.max_retries ~rng:t.rng
            ~succ:(Hgraph.succ_array t.graph ~cycle:ci)
            ~out_label ~joiner_labels ~take_sample ~m ()
        with
        | Error f ->
            valid := false;
            (match f with
            | Reconfig.Replies_lost r ->
                stale_pointers := !stale_pointers + r.stalled;
                reply_retries := !reply_retries + r.retries
            | Reconfig.No_active_nodes -> ());
            fail (Reconfig.describe_failure f);
            [||]
        | Ok (new_succ, stats) ->
            if stats.Reconfig.rounds > !reconf_rounds then
              reconf_rounds := stats.Reconfig.rounds;
            if stats.Reconfig.max_chosen > !max_chosen then
              max_chosen := stats.Reconfig.max_chosen;
            if stats.Reconfig.max_empty_segment > !max_empty then
              max_empty := stats.Reconfig.max_empty_segment;
            reconfig_bits := !reconfig_bits + stats.Reconfig.work_bits;
            reply_retries := !reply_retries + stats.Reconfig.reply_retries;
            new_succ)
  in
  let valid, connected =
    if not !valid then (false, false)
    else
      match Simnet.Runtime.validate_cycles rt ~m new_cycles with
      | Error v ->
          (* A violating cycle is never installed: the old graph stands and
             the epoch reports the typed violation. *)
          fail (Simnet.Invariants.describe v);
          (false, false)
      | Ok () -> (
          match Hgraph.of_cycles new_cycles with
          | exception Invalid_argument _ ->
              fail "Hgraph.of_cycles rejected the reconfigured cycles";
              (false, false)
          | new_graph ->
              (* of_cycles re-verifies each successor array is a Hamilton
                 cycle over exactly the m new nodes; the union of Hamilton
                 cycles is connected by construction, but verify with BFS at
                 small n as a belt-and-braces end-to-end check. *)
              let connected =
                m > 8192
                || Topology.Bfs.is_connected (Hgraph.to_graph new_graph)
              in
              let new_ids = Array.make m 0 in
              for p = 0 to n - 1 do
                if out_label.(p) >= 0 then new_ids.(out_label.(p)) <- t.ids.(p)
              done;
              Array.iter
                (Array.iter (fun label ->
                     new_ids.(label) <- t.next_id;
                     t.next_id <- t.next_id + 1))
                joiner_labels;
              t.graph <- new_graph;
              t.ids <- new_ids;
              (true, connected))
  in
  (* Epoch health: fraction of the standing topology (new on success, old on
     a failed epoch) reachable from node 0. *)
  let reachable_fraction =
    let g = Hgraph.to_graph t.graph in
    let health =
      Simnet.Runtime.health rt ~n:(Hgraph.n t.graph)
        ~neighbors:(Topology.Graph.neighbors g)
    in
    health.Simnet.Runtime.reachable_fraction
  in
  Log.debug (fun k ->
      k "epoch: n %d -> %d (-%d +%d), %d+%d rounds, congestion %d, segment %d, valid %b"
        n m left joined sampling.Sampling_result.rounds !reconf_rounds
        !max_chosen !max_empty valid);
  Simnet.Runtime.span rt ~name:"epoch/reconfigure" ~rounds:!reconf_rounds
    [
      ("cycles", Simnet.Trace.Int cycles);
      ("max_chosen", Simnet.Trace.Int !max_chosen);
      ("max_empty_segment", Simnet.Trace.Int !max_empty);
      ("reconfig_bits", Simnet.Trace.Int !reconfig_bits);
    ];
  Simnet.Runtime.note rt ~name:"churn/epoch"
    [
      ("n_before", Simnet.Trace.Int n);
      ("n_after", Simnet.Trace.Int (if valid then m else n));
      ("left", Simnet.Trace.Int left);
      ("joined", Simnet.Trace.Int joined);
      ("valid", Simnet.Trace.Bool valid);
      ("connected", Simnet.Trace.Bool connected);
      ("retries", Simnet.Trace.Int sampling.Sampling_result.retries);
      ("escalations", Simnet.Trace.Int sampling.Sampling_result.escalations);
      ("reply_retries", Simnet.Trace.Int !reply_retries);
      ("stale_pointers", Simnet.Trace.Int !stale_pointers);
      ("reachable_fraction", Simnet.Trace.Float reachable_fraction);
    ];
  if valid then Simnet.Runtime.resize rt ~n:m;
  {
    n_before = n;
    n_after = (if valid then m else n);
    joined;
    left;
    rounds = sampling.Sampling_result.rounds + !reconf_rounds;
    sampling_underflows = sampling.Sampling_result.underflows;
    sampling_retries = sampling.Sampling_result.retries;
    sampling_escalations = sampling.Sampling_result.escalations;
    sample_shortfall = !shortfall;
    max_joiners_per_node = max_joiners;
    max_chosen = !max_chosen;
    max_empty_segment = !max_empty;
    max_node_round_bits = sampling.Sampling_result.max_round_node_bits;
    reconfig_bits = !reconfig_bits;
    reply_retries = !reply_retries;
    stale_pointers = !stale_pointers;
    valid;
    connected;
    reachable_fraction;
    failure = !failure;
  }

let epoch t ~leaves ~join_introducers =
  let ep =
    Simnet.Runtime.run_epoch t.runtime (fun _rt ->
        let r = run_one_epoch t ~leaves ~join_introducers in
        (r, r.rounds))
  in
  ep.Simnet.Runtime.result

let epoch_with_delegation t ~leaves ~join_introducers =
  let delegates = resolve_delegates ~n:(size t) ~join_introducers in
  epoch t ~leaves ~join_introducers:delegates
