(** Rapid node sampling in H-graphs (Algorithm 1, Section 3.1).

    Every node builds a multiset M of node ids that, after T doubling
    iterations, contains ids reached by independent random walks of length
    2^T >= ceil(2 alpha log_{d/4} n) — long enough to mix (Lemma 2), so the
    ids are distributed almost uniformly over the node set (Theorem 2).
    Each iteration costs two communication rounds (requests travel, then
    responses travel), for 2T = O(log log n) rounds in total.

    Messages are accounted per the paper's model: a request carries the
    requester's id, a response carries one sampled id; both are charged
    [Msg_size.header_bits] plus [Msg_size.id_bits n] per id. *)

val run :
  ?eps:float ->
  ?c:float ->
  ?alpha:float ->
  ?trace:Simnet.Trace.t ->
  ?retry:Retry.policy ->
  rng:Prng.Stream.t ->
  Topology.Hgraph.t ->
  Sampling_result.t
(** Defaults: [eps = 0.5], [c = 2.0], [alpha = 1.0].  [trace] (default
    {!Simnet.Trace.null}) receives one [Round] event per communication
    round.  [c] plays the role of
    the constant of Lemma 7 (it must satisfy [c >= beta] for the desired
    [beta log n] samples); the number of samples delivered per node is
    [schedule.(T)] = ceil(c log2 n) when no underflow occurs.

    [retry] (default {!Retry.fixed}, i.e. off) re-runs an underflowing
    attempt with an escalated [c] (see {!Retry.escalate}), up to
    [max_retries] times; re-attempts are counted in the result's [retries]
    and [escalations] fields and each emits a ["sampling/retry"] trace
    note.  With the fixed policy the run is byte-identical to the paper's
    single-attempt driver. *)

val run_on_engine :
  ?eps:float ->
  ?c:float ->
  ?alpha:float ->
  ?trace:Simnet.Trace.t ->
  ?faults:Simnet.Faults.plan ->
  ?domains:int ->
  rng:Prng.Stream.t ->
  Topology.Hgraph.t ->
  Sampling_result.t
(** The same algorithm executed message-by-message on {!Simnet.Engine}:
    every request and response is a real engine message delivered one round
    after it is sent.  Functionally equivalent to {!run} (same schedules,
    same round count, same distribution); exists as a differential check
    that the direct array implementation matches an actual synchronous
    message-passing execution, and as a harness for blocking and
    fault-injection experiments on the primitive itself ([faults] is handed
    to {!Simnet.Engine.create}; lost responses surface as underflows and
    short sample arrays, never as a crash). *)

val run_plain :
  ?alpha:float ->
  ?trace:Simnet.Trace.t ->
  k:int ->
  rng:Prng.Stream.t ->
  Topology.Hgraph.t ->
  Sampling_result.t
(** Ablation A1 (the paper's baseline, Section 2.3): every node releases [k]
    plain random-walk tokens of length ceil(2 alpha log_{d/4} n); each token
    hop is one message and one round, plus a final round reporting the
    endpoint to the origin.  [walk_length] is the token walk length,
    [schedule] is [[|k|]]. *)
