(** The churn-resistant expander network of Section 4: nodes organized into
    an H-graph that is completely re-drawn every epoch by running d/2
    independent instances of Algorithm 3 (one per Hamilton cycle) on top of
    the rapid sampling primitive.

    An epoch bundles the O(log log n) rounds of one reconfiguration: the
    adversary's prescriptions (joins, introduced each to one current member;
    leaves) accumulated over those rounds are all integrated/excluded when
    the reconfiguration completes, exactly the delay-T semantics of the
    model (Section 1.1).  Leaving nodes keep relaying until the epoch ends
    and are then dropped; joining nodes are delegated to their introducer,
    which samples an extra target for each of them in Phase 1. *)

type t

type epoch_report = {
  n_before : int;
  n_after : int;
  joined : int;
  left : int;
  rounds : int;
      (** total communication rounds of the epoch: sampling rounds plus the
          slowest cycle's Algorithm-3 rounds (cycles run in parallel) *)
  sampling_underflows : int;
  sampling_retries : int;
      (** sampling re-attempts under the retry policy (0 without one) *)
  sampling_escalations : int;
      (** sampling retries that raised the provisioning constant [c] *)
  sample_shortfall : int;
      (** Phase-1 draws served by a direct uniform fallback because the
          primitive's pool ran dry; 0 in a correctly provisioned run *)
  max_joiners_per_node : int;
  max_chosen : int;  (** Lemma 11 congestion, max over cycles *)
  max_empty_segment : int;  (** Lemma 12, max over cycles *)
  max_node_round_bits : int;  (** sampling communication work *)
  reconfig_bits : int;
      (** total bits of Algorithm-3 traffic, summed over the cycles *)
  reply_retries : int;
      (** pointer-doubling replies re-requested after a fault loss, summed
          over the cycles *)
  stale_pointers : int;
      (** nodes whose pointer-doubling stalled past the retry budget; > 0
          forces [valid = false] — a stale pointer never stitches a cycle *)
  valid : bool;
      (** every new cycle is a Hamilton cycle covering exactly the staying
          and joining nodes (checked constructively and by
          {!Simnet.Invariants.check_cycles}) *)
  connected : bool;  (** BFS-verified on the new topology *)
  reachable_fraction : float;
      (** fraction of the standing topology (new on success, old when the
          epoch failed) reachable from node 0 — per-epoch health *)
  failure : string option;
      (** human-readable reason for [valid = false] ([None] on success):
          a {!Reconfig.failure} or an {!Simnet.Invariants.violation} *)
}

type sampler = Rapid | Plain_walks
(** Which sampling primitive feeds Phase 1 of Algorithm 3.  [Rapid] is the
    paper's O(log log n)-round primitive; [Plain_walks] is ablation A1 —
    identical reconfiguration semantics, but the samples come from plain
    Theta(log n)-round token walks, so every epoch pays the walk length in
    rounds.  The measured gap is the paper's headline improvement. *)

val create :
  ?d:int ->
  ?sampler:sampler ->
  ?trace:Simnet.Trace.t ->
  ?faults:Simnet.Faults.plan ->
  ?retry:Retry.policy ->
  ?domains:int ->
  rng:Prng.Stream.t ->
  n:int ->
  unit ->
  t
(** Fresh network on [n] nodes with a uniformly random H-graph of degree
    [d] (default 8); [sampler] defaults to [Rapid].  [trace] (default
    {!Simnet.Trace.null}) records, per epoch, the sampling rounds, the
    reconfiguration phase spans, and a ["churn/epoch"] note with the
    outcome.

    [faults] is applied in full through {!Simnet.Runtime}: drop, duplicate
    and delay rates fire on the Phase-3 pointer-doubling reply legs of
    every epoch (see {!Reconfig.reconfigure}), and crash victims are
    forced to leave at the next epoch boundary.  Reorder (vacuous on
    single-reply legs) and crash-recover (a forced leaver cannot rejoin)
    are rejected with [Invalid_argument] rather than silently ignored.
    Fault streams are size-independently keyed, so the network growing
    past the initial [n] never aliases them.  [retry] (default
    {!Retry.fixed}) gives both the sampler (escalating re-runs) and the
    doubling replies (per-node re-issues) a recovery budget.  A reply loss
    past the budget fails the epoch with a typed reason in the report — the
    old topology stands, never a wrong cycle. *)

val size : t -> int
val degree : t -> int
val graph : t -> Topology.Hgraph.t
val ids : t -> int array
(** [ids t].(p) is the persistent global id of the node at position [p]. *)

val epoch :
  t -> leaves:int array -> join_introducers:int array -> epoch_report
(** Run one reconfiguration epoch.  [leaves] are current positions
    prescribed to leave (duplicates ignored); [join_introducers] holds one
    current position per joining node (the member it is introduced to).
    Raises [Invalid_argument] if the surviving membership would fall below
    3 nodes.  On success the network state is replaced by the new H-graph. *)

val epoch_with_delegation :
  t ->
  leaves:int array ->
  join_introducers:[ `Member of int | `Joiner of int ] array ->
  epoch_report
(** Like {!epoch}, but a joiner may be introduced to another joiner of the
    same epoch ([`Joiner i] refers to index [i] in this array): per the
    model (Section 1.1), "any new node v introduced to a node w not yet in
    V will be delegated to the node in V that w was delegated (or
    introduced) to itself".  Introduction chains are resolved transitively
    to a member before the epoch runs; cycles among joiners (which no
    execution of the model can produce, since each introduction happens
    after its target's) are rejected with [Invalid_argument]. *)
