(** DoS adversaries: (1/2 - eps)-bounded, t-late (Section 1.1).

    The adversary observes only topology — here, the node -> supernode
    assignment — and only with a delay of at least its lateness.  [observe]
    must be called once per network round with the *current* assignment; the
    internal {!Simnet.Snapshots} buffer enforces the delay, so strategy code
    can never touch fresher data.  With [lateness = 0] the adversary is
    fully informed, the regime in which the paper shows any low-degree
    network must die. *)

type strategy =
  | Random_blocking  (** budget spent on uniformly random nodes (control) *)
  | Group_kill
      (** blocks whole groups, smallest first, from the stale view —
          starves groups outright when the view is fresh *)
  | Isolate_node
      (** picks a victim and blocks its group fellows and all members of
          neighboring groups, isolating the victim when the view is fresh;
          leftover budget is spent randomly *)

val all : strategy list
val to_string : strategy -> string

type t

val create :
  ?trace:Simnet.Trace.t ->
  ?staleness:Simnet.Snapshots.staleness ->
  strategy ->
  rng:Prng.Stream.t ->
  lateness:int ->
  frac:float ->
  t
(** [frac] is the fraction of nodes blocked per round; the paper's bound is
    [frac = 1/2 - eps] for some [eps > 0].  Raises [Invalid_argument] if
    [frac] is outside [0, 1).  [trace] (default {!Simnet.Trace.null})
    receives one [Adversary] event per {!blocked_set} call with the
    strategy, budget, and realized blocked count.  [staleness], when given,
    replaces the fixed [lateness] with a per-round drawn lateness (on a
    dedicated child of [rng]); omitting it keeps runs byte-identical to
    the pre-staleness behavior. *)

val observe : t -> group_of:int array -> unit

val blocked_set : t -> cube:Topology.Hypercube.t -> n:int -> bool array
(** The blocked set for the current round.  Until a snapshot old enough to
    see exists, strategies fall back to random blocking. *)
