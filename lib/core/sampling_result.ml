type t = {
  samples : int array array;
  rounds : int;
  walk_length : int;
  schedule : int array;
  underflows : int;
  retries : int;
  escalations : int;
  max_round_node_bits : int;
  total_bits : int;
}

let succeeded t = t.underflows = 0

let samples_per_node t =
  Array.fold_left (fun acc s -> min acc (Array.length s)) max_int t.samples

let flatten t = Array.concat (Array.to_list t.samples)
