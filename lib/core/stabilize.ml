type mode = Repair | Static

let mode_to_string = function Repair -> "repair" | Static -> "static"

let mode_of_string = function
  | "repair" -> Ok Repair
  | "static" -> Ok Static
  | s -> Error (Printf.sprintf "unknown stabilize mode %S (repair|static)" s)

type report = {
  mode : mode;
  converged : bool;
  epochs : int;
  rounds : int;
  bits : int;
  initial_violations : int;
  residual : Simnet.Invariants.violation list;
  patches : int;
  splices : int;
  reconfigs : int;
  retries : int;
}

let kind_counts viols =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun v ->
      let k = Simnet.Invariants.kind_of v in
      match Hashtbl.find_opt tbl k with
      | None ->
          Hashtbl.add tbl k 1;
          order := k :: !order
      | Some c -> Hashtbl.replace tbl k (c + 1))
    viols;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

(* A uniformly random Hamilton cycle over [0..n-1] as a successor array. *)
let random_cycle rng n =
  let order = Prng.Stream.permutation rng n in
  let succ = Array.make n 0 in
  for i = 0 to n - 1 do
    succ.(order.(i)) <- order.((i + 1) mod n)
  done;
  succ

(* Phase A — local pointer patching.  Every node can detect locally that
   its pointer is out of range, and every over-subscribed target can
   detect the collision and keep only its lowest-indexed predecessor; the
   displaced pointers are re-aimed, in node order, at the targets nobody
   points to (also in order).  The two sets always have equal size (both
   equal m minus the number of covered targets), so one full patch pass
   turns any successor array into a permutation.  Each patch is one
   communication leg carrying one id, re-attempted within the per-node
   budget. *)
let patch_cycle rt ~attempts ~idb succ =
  let m = Array.length succ in
  let keeper = Array.make m (-1) in
  let victims = ref [] in
  Array.iteri
    (fun v s ->
      if s < 0 || s >= m then victims := v :: !victims
      else if keeper.(s) = -1 then keeper.(s) <- v
      else victims := v :: !victims)
    succ;
  let victims = List.rev !victims in
  let missing = ref [] in
  for s = m - 1 downto 0 do
    if keeper.(s) = -1 then missing := s :: !missing
  done;
  let patched = ref 0
  and failed = ref 0
  and waves = ref 0
  and bits = ref 0
  and retries = ref 0 in
  List.iter2
    (fun v target ->
      let rec attempt i =
        if i >= attempts then incr failed
        else begin
          bits := !bits + Simnet.Msg_size.ids_msg ~id_bits:idb ~count:1;
          if i > 0 then incr retries;
          if i + 1 > !waves then waves := i + 1;
          if Simnet.Runtime.leg rt ~dst:v () then begin
            succ.(v) <- target;
            incr patched
          end
          else attempt (i + 1)
        end
      in
      attempt 0)
    victims !missing;
  (!patched, !failed, !waves, !bits, !retries)

let orbit_reps succ =
  let m = Array.length succ in
  let visited = Array.make m false in
  let reps = ref [] in
  for v = 0 to m - 1 do
    if not visited.(v) then begin
      reps := v :: !reps;
      let u = ref v in
      while not visited.(!u) do
        visited.(!u) <- true;
        u := succ.(!u)
      done
    end
  done;
  List.rev !reps

(* Phase B — orbit splicing.  Swapping the successors of two nodes from
   different orbits of a permutation merges the orbits into one; waves of
   pairwise merges need ceil(log2 orbits) successful rounds.  Each merge
   is a two-leg pointer exchange; a lost exchange (budget exhausted)
   leaves both orbits for the next wave or epoch. *)
let splice_cycle rt ~attempts ~idb succ =
  let splices = ref 0
  and waves = ref 0
  and bits = ref 0
  and retries = ref 0 in
  let progress = ref true in
  let rec loop () =
    let reps = orbit_reps succ in
    if List.length reps > 1 && !progress then begin
      progress := false;
      incr waves;
      let rec pair = function
        | a :: b :: rest ->
            let rec attempt i =
              if i < attempts then begin
                bits := !bits + (2 * Simnet.Msg_size.ids_msg ~id_bits:idb ~count:1);
                if i > 0 then incr retries;
                if Simnet.Runtime.leg rt ~src:a ~dst:b ()
                   && Simnet.Runtime.leg rt ~src:b ~dst:a ()
                then begin
                  let sa = succ.(a) in
                  succ.(a) <- succ.(b);
                  succ.(b) <- sa;
                  incr splices;
                  progress := true
                end
                else attempt (i + 1)
              end
            in
            attempt 0;
            pair rest
        | _ -> ()
      in
      pair reps;
      loop ()
    end
  in
  loop ();
  (!splices, List.length (orbit_reps succ) - 1, !waves, !bits, !retries)

let run ?(trace = Simnet.Trace.null) ?(mode = Repair) ?(max_epochs = 16)
    ?(retry = Retry.fixed) ?faults ?domains ~corruption ~rng ~n ~d () =
  if n < 4 then invalid_arg "Stabilize.run: n must be >= 4";
  if d < 2 then invalid_arg "Stabilize.run: d must be >= 2";
  if max_epochs < 1 then invalid_arg "Stabilize.run: max_epochs must be >= 1";
  let k = max 1 (d / 2) in
  let succs =
    Simnet.Corruption.apply corruption
      (Array.init k (fun _ -> random_cycle rng n))
  in
  let rt =
    Simnet.Runtime.create ~trace ?faults
      ~supports:[ `Drop; `Duplicate; `Delay ]
      ~who:"Core.Stabilize" ?domains ~n ()
  in
  let idb = Simnet.Msg_size.id_bits n in
  let attempts = 1 + retry.Retry.max_retries in
  let total_rounds = ref 0
  and total_bits = ref 0
  and patches = ref 0
  and splices = ref 0
  and reconfigs = ref 0
  and retries = ref 0 in
  let initial = Simnet.Invariants.check_all ~m:n succs in
  let initial_violations = List.length initial in
  let residual = ref initial in
  let epochs = ref 0 in
  let detect_note epoch viols =
    Simnet.Runtime.note rt ~name:"repair/detect"
      (("epoch", Simnet.Trace.Int epoch)
      :: ("violations", Simnet.Trace.Int (List.length viols))
      :: List.map
           (fun (k, c) -> (k, Simnet.Trace.Int c))
           (kind_counts viols))
  in
  let repair_epoch rt =
    let epoch = !epochs in
    let viols = Simnet.Invariants.check_all ~m:n succs in
    detect_note epoch viols;
    (* Detection itself costs one round of local exchange. *)
    let rounds = ref 1 in
    if viols = [] then residual := []
    else if mode = Static then residual := viols
    else begin
      Array.iter
        (fun succ ->
          let p, _failed, waves, bits, r = patch_cycle rt ~attempts ~idb succ in
          if p > 0 || waves > 0 then begin
            patches := !patches + p;
            retries := !retries + r;
            total_bits := !total_bits + bits;
            rounds := !rounds + waves;
            Simnet.Runtime.span rt ~name:"repair/patch" ~rounds:waves
              [
                ("epoch", Simnet.Trace.Int epoch);
                ("patched", Simnet.Trace.Int p);
                ("bits", Simnet.Trace.Int bits);
              ]
          end)
        succs;
      Array.iter
        (fun succ ->
          (* Splicing is only meaningful on a permutation; a cycle that
             still has range/collision defects waits for the next epoch. *)
          if
            Simnet.Invariants.check_cycle_all succ
            |> List.for_all (function
                 | Simnet.Invariants.Not_single_cycle _ -> true
                 | _ -> false)
          then begin
            let s, left, waves, bits, r = splice_cycle rt ~attempts ~idb succ in
            if s > 0 || waves > 0 then begin
              splices := !splices + s;
              retries := !retries + r;
              total_bits := !total_bits + bits;
              rounds := !rounds + waves;
              Simnet.Runtime.span rt ~name:"repair/splice" ~rounds:waves
                [
                  ("epoch", Simnet.Trace.Int epoch);
                  ("spliced", Simnet.Trace.Int s);
                  ("orbits_left", Simnet.Trace.Int left);
                  ("bits", Simnet.Trace.Int bits);
                ]
            end
          end)
        succs;
      (* Once every cycle is well-formed again, one pass of the paper's
         reconfiguration path (Algorithm 3 with identity relabeling, the
         sampling oracle served from the run's stream) re-randomizes the
         repaired topology so the adversary keeps no knowledge of it. *)
      if Simnet.Invariants.check_cycles ~m:n succs = Ok () then begin
        let out_label = Array.init n Fun.id in
        let joiner_labels = Array.make n [||] in
        let sample_bits = ref 0 in
        let take_sample _ =
          sample_bits := !sample_bits + Simnet.Msg_size.ids_msg ~id_bits:idb ~count:1;
          Prng.Stream.int rng n
        in
        Array.iteri
          (fun ci succ ->
            match
              Reconfig.reconfigure ~trace:(Simnet.Runtime.trace rt)
                ?drop:(Simnet.Runtime.link_drop rt)
                ~max_retries:retry.Retry.max_retries ~rng ~succ ~out_label
                ~joiner_labels ~take_sample ~m:n ()
            with
            | Ok (new_succ, stats) ->
                incr reconfigs;
                retries := !retries + stats.Reconfig.reply_retries;
                total_bits := !total_bits + stats.Reconfig.work_bits;
                rounds := !rounds + stats.Reconfig.rounds;
                Simnet.Runtime.span rt ~name:"repair/reconfig"
                  ~rounds:stats.Reconfig.rounds
                  [
                    ("epoch", Simnet.Trace.Int epoch);
                    ("cycle", Simnet.Trace.Int ci);
                    ("bits", Simnet.Trace.Int stats.Reconfig.work_bits);
                  ];
                Array.blit new_succ 0 succ 0 n
            | Error f ->
                (* The repaired cycle stands; re-randomization is retried
                   next epoch (it is not needed for convergence). *)
                Simnet.Runtime.note rt ~name:"repair/reconfig-failed"
                  [
                    ("epoch", Simnet.Trace.Int epoch);
                    ("cycle", Simnet.Trace.Int ci);
                    ( "reason",
                      Simnet.Trace.String (Reconfig.describe_failure f) );
                  ])
          succs;
        total_bits := !total_bits + !sample_bits
      end;
      residual := Simnet.Invariants.check_all ~m:n succs
    end;
    ((), !rounds)
  in
  let continue = ref true in
  while !continue do
    let ep = Simnet.Runtime.run_epoch rt repair_epoch in
    incr epochs;
    total_rounds := !total_rounds + ep.Simnet.Runtime.rounds;
    if !residual = [] then begin
      continue := false;
      Simnet.Runtime.note rt ~name:"converged"
        [
          ("epochs", Simnet.Trace.Int !epochs);
          ("rounds", Simnet.Trace.Int !total_rounds);
          ("bits", Simnet.Trace.Int !total_bits);
          ("patches", Simnet.Trace.Int !patches);
          ("splices", Simnet.Trace.Int !splices);
        ]
    end
    else if !epochs >= max_epochs || mode = Static then begin
      continue := false;
      Simnet.Runtime.note rt ~name:"repair/residual"
        (("epochs", Simnet.Trace.Int !epochs)
        :: ("violations", Simnet.Trace.Int (List.length !residual))
        :: List.map
             (fun (k, c) -> (k, Simnet.Trace.Int c))
             (kind_counts !residual))
    end
  done;
  {
    mode;
    converged = !residual = [];
    epochs = !epochs;
    rounds = !total_rounds;
    bits = !total_bits;
    initial_violations;
    residual = !residual;
    patches = !patches;
    splices = !splices;
    reconfigs = !reconfigs;
    retries = !retries;
  }
