type policy = { max_retries : int; factor : float; c_cap : float }

let fixed = { max_retries = 0; factor = 1.0; c_cap = infinity }
let default = { max_retries = 3; factor = 1.5; c_cap = 8.0 }

let make ?(max_retries = 3) ?(factor = 1.5) ?(c_cap = 8.0) () =
  if max_retries < 0 then invalid_arg "Retry.make: max_retries < 0";
  if factor < 1.0 || Float.is_nan factor then
    invalid_arg "Retry.make: factor < 1";
  if c_cap <= 0.0 || Float.is_nan c_cap then
    invalid_arg "Retry.make: c_cap <= 0";
  { max_retries; factor; c_cap }

let enabled p = p.max_retries > 0

let escalate p ~c ~attempt =
  max c (min p.c_cap (c *. (p.factor ** float_of_int attempt)))

(* Re-attempt a sampling run under a policy, escalating c between attempts.
   The first attempt consumes the rng exactly like the bare attempt
   function, so zero-retry runs are byte-identical to the paper's
   fault-free drivers. *)
let sampling_with_retry ~retry ~c ~trace ~attempt_fn =
  let rec go attempt c_now retries escalations =
    let r = attempt_fn ~c:c_now in
    if r.Sampling_result.underflows = 0 || attempt >= retry.max_retries then
      { r with Sampling_result.retries; escalations }
    else begin
      let c' = escalate retry ~c ~attempt:(attempt + 1) in
      if Simnet.Trace.enabled trace then
        Simnet.Trace.emit trace
          (Simnet.Trace.Note
             {
               name = "sampling/retry";
               fields =
                 [
                   ("attempt", Simnet.Trace.Int (attempt + 1));
                   ("c", Simnet.Trace.Float c');
                   ("underflows", Simnet.Trace.Int r.Sampling_result.underflows);
                 ];
             });
      go (attempt + 1) c' (retries + 1)
        (escalations + if c' > c_now then 1 else 0)
    end
  in
  go 0 c 0 0
