(** Adversarial churn strategies (the "omniscient adversary" of Section 1.1
    made concrete).  A strategy inspects the full current network state and
    prescribes, for one epoch, which members leave and to whom each joiner
    is introduced.

    The model constrains the adversary's churn *rate*, not its choices: with
    rate r it may remove up to a (1 - 1/r) fraction and add up to an (r - 1)
    fraction of the nodes per round.  Harnesses express the accumulated
    per-epoch budget as fractions of n. *)

type plan = { leaves : int array; join_introducers : int array }

type strategy =
  | Random_churn
      (** leaves and introducers drawn uniformly — the stochastic control *)
  | Segment_leavers
      (** removes a contiguous arc of Hamilton cycle 0 — an omniscient
          attempt to tear one cycle open in a single place *)
  | Heavy_introducer
      (** introduces every joiner to the same (staying) member — maximal
          delegation load, stressing the Phase-1 sampling provisioning *)

val all : strategy list
val to_string : strategy -> string

val plan :
  ?max_per_introducer:int ->
  ?trace:Simnet.Trace.t ->
  strategy ->
  rng:Prng.Stream.t ->
  graph:Topology.Hgraph.t ->
  leave_frac:float ->
  join_frac:float ->
  plan
(** Builds an epoch plan against the given topology.  [trace] (default
    {!Simnet.Trace.null}) receives one [Adversary] event per plan with the
    strategy and leave/join counts.  [leave_frac] and
    [join_frac] are fractions of the current size n; the plan never removes
    so many nodes that fewer than 3 would remain, and introducers are always
    staying members.  [max_per_introducer] (default 8) caps how many joiners
    any single member receives, reflecting the model's bound of at most
    ceil(r) introductions per node per round accumulated over the epoch;
    [Heavy_introducer] saturates consecutive targets up to this cap. *)
