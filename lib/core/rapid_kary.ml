module Kary = Topology.Kary_hypercube
module Metrics = Simnet.Metrics
module Msg_size = Simnet.Msg_size

(* Structure identical to Rapid_hypercube: buckets indexed by coordinate
   segment start; iteration i merges [s, s+2^(i-1)) with its right sibling.
   Only Phase 1 (digit randomization) and the node arithmetic differ. *)

let redraw_digit cube rng u j =
  Kary.with_coord cube u j (Prng.Stream.int rng (Kary.k cube))

let run ?(eps = 0.5) ?(c = 2.0) ~rng cube =
  let d = Kary.d cube in
  let n = Kary.node_count cube in
  let iters = Params.iterations_hypercube ~d in
  let schedule = Params.schedule_hypercube ~eps ~c ~n ~iters in
  let id_bits = Msg_size.id_bits n in
  let request_bits =
    Msg_size.ids_msg ~id_bits ~count:1 + Msg_size.id_bits (max 2 d)
  in
  let response_bits = request_bits in
  let metrics = Metrics.create ~n in
  let underflows = ref 0 in
  let m =
    Array.init n (fun _ ->
        Array.init d (fun _ -> Multiset.create ~capacity:schedule.(0) ()))
  in
  for u = 0 to n - 1 do
    for j = 0 to d - 1 do
      for _ = 1 to schedule.(0) do
        Multiset.add m.(u).(j) (redraw_digit cube rng u j)
      done
    done
  done;
  let requesters = Array.init n (fun _ -> ref []) in
  let fresh = Array.init n (fun _ -> Array.init d (fun _ -> Multiset.create ())) in
  for i = 1 to iters do
    let mi = schedule.(i) in
    let step = 1 lsl i in
    let half = 1 lsl (i - 1) in
    for u = 0 to n - 1 do
      let s = ref 0 in
      while !s < d do
        if !s + half < d then
          for _ = 1 to mi do
            match Multiset.extract_random m.(u).(!s) rng with
            | None -> incr underflows
            | Some v ->
                Metrics.on_send metrics ~node:u ~bits:request_bits;
                Metrics.on_recv metrics ~node:v ~bits:request_bits;
                requesters.(v) := (u, !s) :: !(requesters.(v))
          done;
        s := !s + step
      done
    done;
    ignore (Metrics.finish_round metrics);
    for v = 0 to n - 1 do
      List.iter
        (fun (u, s) ->
          match Multiset.extract_random m.(v).(s + half) rng with
          | None -> incr underflows
          | Some w ->
              Metrics.on_send metrics ~node:v ~bits:response_bits;
              Metrics.on_recv metrics ~node:u ~bits:response_bits;
              Multiset.add fresh.(u).(s) w)
        (List.rev !(requesters.(v)));
      requesters.(v) := []
    done;
    ignore (Metrics.finish_round metrics);
    for u = 0 to n - 1 do
      let s = ref 0 in
      while !s < d do
        if !s + half < d then begin
          Multiset.clear m.(u).(!s);
          Multiset.iter (fun w -> Multiset.add m.(u).(!s) w) fresh.(u).(!s);
          Multiset.clear fresh.(u).(!s);
          Multiset.clear m.(u).(!s + half)
        end;
        s := !s + step
      done
    done
  done;
  let samples =
    Array.map
      (fun buckets ->
        let a = Multiset.to_array buckets.(0) in
        Prng.Stream.shuffle_in_place rng a;
        a)
      m
  in
  {
    Sampling_result.samples;
    rounds = 2 * iters;
    walk_length = d;
    schedule;
    underflows = !underflows;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }

let run_plain ~k ~rng cube =
  let d = Kary.d cube in
  let n = Kary.node_count cube in
  let id_bits = Msg_size.id_bits n in
  let token_bits = Msg_size.ids_msg ~id_bits ~count:1 in
  let metrics = Metrics.create ~n in
  let origins = Array.init (n * k) (fun j -> j / k) in
  let positions = Array.copy origins in
  for dim = 0 to d - 1 do
    for j = 0 to Array.length positions - 1 do
      let cur = positions.(j) in
      let next = redraw_digit cube rng cur dim in
      if next <> cur then begin
        Metrics.on_send metrics ~node:cur ~bits:token_bits;
        Metrics.on_recv metrics ~node:next ~bits:token_bits;
        positions.(j) <- next
      end
    done;
    ignore (Metrics.finish_round metrics)
  done;
  let samples = Array.make n [] in
  for j = 0 to Array.length positions - 1 do
    let origin = origins.(j) and endpoint = positions.(j) in
    Metrics.on_send metrics ~node:endpoint ~bits:token_bits;
    Metrics.on_recv metrics ~node:origin ~bits:token_bits;
    samples.(origin) <- endpoint :: samples.(origin)
  done;
  ignore (Metrics.finish_round metrics);
  {
    Sampling_result.samples = Array.map Array.of_list samples;
    rounds = d + 1;
    walk_length = d;
    schedule = [| k |];
    underflows = 0;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }
