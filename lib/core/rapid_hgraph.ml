module Hgraph = Topology.Hgraph
module Metrics = Simnet.Metrics
module Msg_size = Simnet.Msg_size
module Trace = Simnet.Trace

(* Close a metrics round and mirror its summary into the trace (used by the
   direct array implementations, which bypass the engine). *)
let finish_traced trace metrics =
  let s = Metrics.finish_round metrics in
  if Trace.enabled trace then Trace.emit trace (Trace.round_of_summary s)

let run_attempt ~eps ~c ~alpha ~trace ~rng g =
  let n = Hgraph.n g in
  let d = Hgraph.degree g in
  let t = Params.iterations_hgraph ~alpha ~d ~n in
  let schedule = Params.schedule_hgraph ~eps ~c ~n ~t in
  let id_bits = Msg_size.id_bits n in
  let request_bits = Msg_size.ids_msg ~id_bits ~count:1 in
  let response_bits = Msg_size.ids_msg ~id_bits ~count:1 in
  let metrics = Metrics.create ~n in
  let underflows = ref 0 in
  (* Phase 1: every node fills M with m_0 uniformly random neighbors, i.e.
     endpoints of independent walks of length 1. *)
  let m = Array.init n (fun _ -> Multiset.create ~capacity:schedule.(0) ()) in
  for v = 0 to n - 1 do
    for _ = 1 to schedule.(0) do
      Multiset.add m.(v) (Hgraph.random_neighbor g rng v)
    done
  done;
  (* Each iteration doubles the walk length behind the ids in M (Lemma 5):
     an id w in M(v) is the endpoint of a walk of length 2^(i-1) from v; v
     asks w for an endpoint of one of w's walks of the same length; the
     composition is a walk of length 2^i from v. *)
  let requesters = Array.init n (fun _ -> Topology.Intvec.create ()) in
  let fresh = Array.init n (fun _ -> Multiset.create ()) in
  for i = 1 to t do
    let mi = schedule.(i) in
    (* Phase 2 (one round): send m_i requests. *)
    for v = 0 to n - 1 do
      for _ = 1 to mi do
        match Multiset.extract_random m.(v) rng with
        | None -> incr underflows
        | Some u ->
            Metrics.on_send metrics ~node:v ~bits:request_bits;
            Metrics.on_recv metrics ~node:u ~bits:request_bits;
            Topology.Intvec.push requesters.(u) v
      done
    done;
    finish_traced trace metrics;
    (* Phase 3 + 4 (one round): serve each request from the remainder of M
       and deliver responses into the requesters' fresh multisets. *)
    for u = 0 to n - 1 do
      Topology.Intvec.iter
        (fun v ->
          match Multiset.extract_random m.(u) rng with
          | None -> incr underflows
          | Some w ->
              Metrics.on_send metrics ~node:u ~bits:response_bits;
              Metrics.on_recv metrics ~node:v ~bits:response_bits;
              Multiset.add fresh.(v) w)
        requesters.(u);
      Topology.Intvec.clear requesters.(u)
    done;
    finish_traced trace metrics;
    for v = 0 to n - 1 do
      Multiset.clear m.(v);
      Multiset.iter (fun w -> Multiset.add m.(v) w) fresh.(v);
      Multiset.clear fresh.(v)
    done
  done;
  (* M is a multiset: expose it in uniformly random order (a free local
     permutation) so prefix-consumers do not see the server-grouped arrival
     order of the responses. *)
  let samples =
    Array.map
      (fun ms ->
        let a = Multiset.to_array ms in
        Prng.Stream.shuffle_in_place rng a;
        a)
      m
  in
  {
    Sampling_result.samples;
    rounds = 2 * t;
    walk_length = 1 lsl t;
    schedule;
    underflows = !underflows;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }

let run ?(eps = 0.5) ?(c = 2.0) ?(alpha = 1.0) ?(trace = Trace.null)
    ?(retry = Retry.fixed) ~rng g =
  Retry.sampling_with_retry ~retry ~c ~trace ~attempt_fn:(fun ~c ->
      run_attempt ~eps ~c ~alpha ~trace ~rng g)

(* Wire format for the engine-backed execution. *)
type engine_msg = Request | Response of int

let run_on_engine ?(eps = 0.5) ?(c = 2.0) ?(alpha = 1.0)
    ?(trace = Trace.null) ?faults ?domains ~rng g =
  let n = Hgraph.n g in
  let d = Hgraph.degree g in
  let t = Params.iterations_hgraph ~alpha ~d ~n in
  let schedule = Params.schedule_hgraph ~eps ~c ~n ~t in
  let id_bits = Msg_size.id_bits n in
  let msg_bits = function
    | Request -> Msg_size.ids_msg ~id_bits ~count:1
    | Response _ -> Msg_size.ids_msg ~id_bits ~count:1
  in
  let eng = Simnet.Engine.create ~trace ?faults ?domains ~n ~msg_bits () in
  let node_rng = Prng.Stream.split_n rng n in
  let underflows = ref 0 in
  let m = Array.init n (fun _ -> Multiset.create ~capacity:schedule.(0) ()) in
  for v = 0 to n - 1 do
    for _ = 1 to schedule.(0) do
      Multiset.add m.(v) (Hgraph.random_neighbor g node_rng.(v) v)
    done
  done;
  let install me inbox =
    (* Phase 4 of the previous iteration: M is replaced by the responses. *)
    let any = List.exists (fun (_, w) -> w <> Request) inbox in
    if any then begin
      Multiset.clear m.(me);
      List.iter
        (fun (_, w) ->
          match w with Response x -> Multiset.add m.(me) x | Request -> ())
        inbox
    end
  in
  for i = 1 to t do
    let mi = schedule.(i) in
    (* Round A: install last iteration's responses, then send requests. *)
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
        if i > 1 then install me inbox;
        for _ = 1 to mi do
          match Multiset.extract_random m.(me) node_rng.(me) with
          | None -> incr underflows
          | Some u -> Simnet.Engine.send eng ~src:me ~dst:u Request
        done);
    (* Round B: serve the requests that just arrived. *)
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
        List.iter
          (fun (requester, w) ->
            match w with
            | Request -> (
                match Multiset.extract_random m.(me) node_rng.(me) with
                | None -> incr underflows
                | Some x ->
                    Simnet.Engine.send eng ~src:me ~dst:requester (Response x))
            | Response _ -> ())
          inbox)
  done;
  (* Delivery of the final responses (the receive step of the round after
     the last send; no further sends, so it adds no communication round in
     the paper's accounting). *)
  Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
      install me inbox);
  let metrics = Simnet.Engine.metrics eng in
  let samples =
    Array.mapi
      (fun v ms ->
        let a = Multiset.to_array ms in
        Prng.Stream.shuffle_in_place node_rng.(v) a;
        a)
      m
  in
  {
    Sampling_result.samples;
    rounds = 2 * t;
    walk_length = 1 lsl t;
    schedule;
    underflows = !underflows;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }

let run_plain ?(alpha = 1.0) ?(trace = Trace.null) ~k ~rng g =
  let n = Hgraph.n g in
  let d = Hgraph.degree g in
  let len = Params.walk_length ~alpha ~d ~n in
  let id_bits = Msg_size.id_bits n in
  (* A token carries its origin's id; the final report carries the endpoint
     id back to the origin. *)
  let token_bits = Msg_size.ids_msg ~id_bits ~count:1 in
  let metrics = Metrics.create ~n in
  (* positions.(j) = current node of token j; origins.(j) = its owner. *)
  let origins = Array.init (n * k) (fun j -> j / k) in
  let positions = Array.copy origins in
  for _ = 1 to len do
    for j = 0 to Array.length positions - 1 do
      let cur = positions.(j) in
      let next = Hgraph.random_neighbor g rng cur in
      Metrics.on_send metrics ~node:cur ~bits:token_bits;
      Metrics.on_recv metrics ~node:next ~bits:token_bits;
      positions.(j) <- next
    done;
    finish_traced trace metrics
  done;
  (* Final round: endpoints report to origins (overlay: the token carries
     the origin's id, so the holder can address it directly). *)
  let samples = Array.make n [] in
  for j = 0 to Array.length positions - 1 do
    let origin = origins.(j) and endpoint = positions.(j) in
    Metrics.on_send metrics ~node:endpoint ~bits:token_bits;
    Metrics.on_recv metrics ~node:origin ~bits:token_bits;
    samples.(origin) <- endpoint :: samples.(origin)
  done;
  finish_traced trace metrics;
  {
    Sampling_result.samples = Array.map Array.of_list samples;
    rounds = len + 1;
    walk_length = len;
    schedule = [| k |];
    underflows = 0;
    retries = 0;
    escalations = 0;
    max_round_node_bits = Metrics.max_node_bits_ever metrics;
    total_bits = Metrics.total_bits metrics;
  }
