type ('state, 'msg) protocol = {
  init : supernode:int -> rng:Prng.Stream.t -> 'state;
  step :
    supernode:int ->
    step_index:int ->
    'state ->
    inbox:(int * 'msg) list ->
    rng:Prng.Stream.t ->
    'state * (int * 'msg) list;
  steps : int;
  state_bits : 'state -> int;
  msg_bits : 'msg -> int;
}

(* Wire format.  A Proposal travels within a group during a simulation
   round; a Super bundle carries all of one supernode's messages for one
   destination supernode and travels between groups during a
   synchronization round. *)
type ('state, 'msg) wire =
  | Proposal of 'state * (int * 'msg) list
  | Super of int * 'msg list

type phase = Sim | Sync

type ('state, 'msg) t = {
  protocol : ('state, 'msg) protocol;
  engine : ('state, 'msg) wire Simnet.Engine.t;
  trace : Simnet.Trace.t;
  n : int;
  group_of : int array;
  members : int array array;
  node_rng : Prng.Stream.t array;
  node_state : 'state option array;
  canonical : 'state option array;
  lost : bool array;
  mutable phase : phase;
  mutable step_index : int;
}

let wire_bits protocol ~id_bits = function
  | Proposal (st, out) ->
      protocol.state_bits st
      + List.fold_left
          (fun acc (_, m) -> acc + protocol.msg_bits m + id_bits)
          Simnet.Msg_size.header_bits out
  | Super (_, msgs) ->
      List.fold_left
        (fun acc m -> acc + protocol.msg_bits m)
        (Simnet.Msg_size.header_bits + id_bits)
        msgs

let create ?(trace = Simnet.Trace.null) ?faults ?domains ~rng ~n ~group_of
    protocol =
  if Array.length group_of <> n then
    invalid_arg "Group_sim.create: group_of size mismatch";
  let supernodes = Array.fold_left (fun a x -> max a (x + 1)) 0 group_of in
  let vecs = Array.init supernodes (fun _ -> Topology.Intvec.create ()) in
  Array.iteri
    (fun v x ->
      if x < 0 then invalid_arg "Group_sim.create: negative supernode";
      Topology.Intvec.push vecs.(x) v)
    group_of;
  let members = Array.map Topology.Intvec.to_array vecs in
  Array.iteri
    (fun x m ->
      if Array.length m = 0 then
        invalid_arg (Printf.sprintf "Group_sim.create: empty group %d" x))
    members;
  let id_bits = Simnet.Msg_size.id_bits n in
  let engine =
    Simnet.Engine.create ~trace ?faults ?domains ~n
      ~msg_bits:(wire_bits protocol ~id_bits) ()
  in
  (* Every member starts in sync with the (per-supernode deterministic)
     initial state, as the paper assumes. *)
  let node_state = Array.make n None in
  let canonical = Array.make supernodes None in
  for x = 0 to supernodes - 1 do
    let st = protocol.init ~supernode:x ~rng:(Prng.Stream.split rng) in
    canonical.(x) <- Some st;
    Array.iter (fun v -> node_state.(v) <- Some st) members.(x)
  done;
  {
    protocol;
    engine;
    trace;
    n;
    group_of;
    members;
    node_rng = Prng.Stream.split_n rng n;
    node_state;
    canonical;
    lost = Array.make supernodes false;
    phase = Sim;
    step_index = 0;
  }

let supernode_count t = Array.length t.members
let network_rounds_total t = 2 * t.protocol.steps
let finished t = t.step_index >= t.protocol.steps
let lost_groups t =
  let out = ref [] in
  Array.iteri (fun x l -> if l then out := x :: !out) t.lost;
  List.rev !out

let state_of t x = if t.lost.(x) then None else t.canonical.(x)

let synced_members t x =
  Array.fold_left
    (fun acc v -> if t.node_state.(v) <> None then acc + 1 else acc)
    0 t.members.(x)

let metrics t = Simnet.Engine.metrics t.engine

(* Collapse the Super bundles a proposer received into the supernode-level
   inbox: all synced members of a source group send identical bundles, so
   keep the copy from the lowest-id physical sender per source supernode. *)
let supernode_inbox inbox =
  let best = Hashtbl.create 8 in
  List.iter
    (fun (sender, w) ->
      match w with
      | Super (src, msgs) -> (
          match Hashtbl.find_opt best src with
          | Some (s0, _) when s0 <= sender -> ()
          | _ -> Hashtbl.replace best src (sender, msgs))
      | Proposal _ -> ())
    inbox;
  Hashtbl.fold
    (fun src (_, msgs) acc -> List.fold_left (fun a m -> (src, m) :: a) acc msgs)
    best []

let sim_round t ~blocked =
  Simnet.Engine.set_blocked t.engine (fun v -> blocked.(v));
  let proposed = Array.make (supernode_count t) false in
  Simnet.Engine.deliver_and_step t.engine (fun ~round:_ ~me ~inbox ->
      match t.node_state.(me) with
      | None -> () (* out of sync: cannot simulate this step *)
      | Some st ->
          let x = t.group_of.(me) in
          let super_in = supernode_inbox inbox in
          let st', out =
            t.protocol.step ~supernode:x ~step_index:t.step_index st
              ~inbox:super_in ~rng:t.node_rng.(me)
          in
          proposed.(x) <- true;
          (* The proposer's own copy becomes stale; like everyone else it
             adopts a proposal in the synchronization round. *)
          let wire = Proposal (st', out) in
          Array.iter
            (fun u -> Simnet.Engine.send t.engine ~src:me ~dst:u wire)
            t.members.(x));
  (* A group whose members were all blocked or out of sync this round has
     lost the supernode's state: nothing was proposed, so nothing can be
     adopted (Lemma 14's precondition failed). *)
  Array.iteri
    (fun x p -> if (not p) && not t.lost.(x) then t.lost.(x) <- true)
    proposed;
  if Simnet.Trace.enabled t.trace then begin
    let proposing = Array.fold_left (fun a p -> if p then a + 1 else a) 0 proposed in
    Simnet.Trace.emit t.trace
      (Simnet.Trace.Span
         {
           name = "groupsim/sim";
           rounds = 1;
           fields =
             [
               ("step_index", Simnet.Trace.Int t.step_index);
               ("proposing_groups", Simnet.Trace.Int proposing);
             ];
         })
  end;
  t.phase <- Sync

let sync_round t ~blocked =
  Simnet.Engine.set_blocked t.engine (fun v -> blocked.(v));
  (* Any member that receives proposals adopts the lowest-id one and
     becomes synced; members that receive none (blocked around the
     simulation round, or the group is lost) fall out of sync. *)
  let new_states = Array.make t.n None in
  let adopted = Array.make (supernode_count t) None in
  Simnet.Engine.deliver_and_step t.engine (fun ~round:_ ~me ~inbox ->
      let winner = ref None in
      List.iter
        (fun (sender, w) ->
          match w with
          | Proposal (st, out) -> (
              match !winner with
              | Some (s0, _, _) when s0 <= sender -> ()
              | _ -> winner := Some (sender, st, out))
          | Super _ -> ())
        inbox;
      match !winner with
      | None -> ()
      | Some (_, st, out) ->
          let x = t.group_of.(me) in
          new_states.(me) <- Some st;
          if adopted.(x) = None then adopted.(x) <- Some st;
          (* Forward the supernode's outgoing messages: one bundle per
             destination supernode, sent to every member of its group. *)
          let per_dst = Hashtbl.create 8 in
          List.iter
            (fun (dst, m) ->
              Hashtbl.replace per_dst dst
                (m :: Option.value ~default:[] (Hashtbl.find_opt per_dst dst)))
            out;
          Hashtbl.iter
            (fun dst msgs ->
              if dst < 0 || dst >= supernode_count t then
                invalid_arg "Group_sim: protocol addressed unknown supernode";
              let bundle = Super (x, List.rev msgs) in
              Array.iter
                (fun u -> Simnet.Engine.send t.engine ~src:me ~dst:u bundle)
                t.members.(dst))
            per_dst);
  Array.blit new_states 0 t.node_state 0 t.n;
  Array.iteri
    (fun x st -> match st with Some _ -> t.canonical.(x) <- st | None -> ())
    adopted;
  if Simnet.Trace.enabled t.trace then begin
    let adopting =
      Array.fold_left
        (fun a st -> match st with Some _ -> a + 1 | None -> a)
        0 adopted
    in
    Simnet.Trace.emit t.trace
      (Simnet.Trace.Span
         {
           name = "groupsim/sync";
           rounds = 1;
           fields =
             [
               ("step_index", Simnet.Trace.Int t.step_index);
               ("adopting_groups", Simnet.Trace.Int adopting);
             ];
         })
  end;
  t.phase <- Sim;
  t.step_index <- t.step_index + 1

let run_round t ~blocked =
  if finished t then invalid_arg "Group_sim.run_round: already finished";
  if Array.length blocked <> t.n then
    invalid_arg "Group_sim.run_round: blocked size mismatch";
  match t.phase with
  | Sim -> sim_round t ~blocked
  | Sync -> sync_round t ~blocked

let run_all t ~blocked_for_round =
  while not (finished t) do
    let round = Simnet.Engine.round t.engine in
    run_round t ~blocked:(blocked_for_round ~round)
  done
