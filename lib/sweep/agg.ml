type bench = { rounds : int; total_bits : int; max_node_bits : int }

let bench_zero = { rounds = 0; total_bits = 0; max_node_bits = 0 }

let bench_add a b =
  {
    rounds = a.rounds + b.rounds;
    total_bits = a.total_bits + b.total_bits;
    max_node_bits = max a.max_node_bits b.max_node_bits;
  }

let bench_sum = List.fold_left bench_add bench_zero
let rounds k = { bench_zero with rounds = k }
let bits b = { bench_zero with total_bits = b }
let node_bits b = { bench_zero with max_node_bits = b }

let bench_pairs b =
  [
    ("rounds", Simnet.Trace.Int b.rounds);
    ("total_bits", Simnet.Trace.Int b.total_bits);
    ("max_node_bits", Simnet.Trace.Int b.max_node_bits);
  ]

let bench_of_pairs pairs =
  let int k =
    match List.assoc_opt k pairs with
    | Some (Simnet.Trace.Int i) -> Some i
    | _ -> None
  in
  match (int "rounds", int "total_bits", int "max_node_bits") with
  | Some rounds, Some total_bits, Some max_node_bits ->
      Some { rounds; total_bits; max_node_bits }
  | _ -> None

module Merge (M : Stats.Mergeable.S) = struct
  let fold ~empty shards = List.fold_left M.merge empty shards

  let fold_with ~empty f shards =
    List.fold_left (fun acc shard -> M.merge acc (f shard)) empty shards
end
