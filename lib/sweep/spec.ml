type t = {
  name : string;
  run : string;
  base : Simnet.Scenario.t;
  axes : Grid.axis list;
}

(* Everything from '#' to end of line is a comment; comments are
   stripped before segment splitting so they work in both spec files and
   one-line spec strings. *)
let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let segments text =
  String.split_on_char '\n' text
  |> List.concat_map (fun line -> String.split_on_char ';' (strip_comment line))
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

(* Split on the FIRST '=' only: axis values like [faults=drop=0.05]
   keep their nested '='s intact. *)
let split_eq seg =
  match String.index_opt seg '=' with
  | None ->
      Error (Printf.sprintf "sweep spec: segment %S is not KEY=VALUE" seg)
  | Some i ->
      Ok
        ( String.trim (String.sub seg 0 i),
          String.trim (String.sub seg (i + 1) (String.length seg - i - 1)) )

let axis_values key raw =
  let vs =
    String.split_on_char '|' raw |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if vs = [] then
    Error (Printf.sprintf "sweep spec: axis %S has no values" key)
  else Ok vs

let prefixed ~prefix seg =
  if String.starts_with ~prefix seg then
    Some
      (String.trim
         (String.sub seg (String.length prefix)
            (String.length seg - String.length prefix)))
  else None

let parse text =
  let rec go name run base_kvs axes = function
    | [] -> (
        match Simnet.Scenario.of_args (List.rev base_kvs) with
        | Error e -> Error e
        | Ok base ->
            Ok
              {
                name = Option.value name ~default:"sweep";
                run = Option.value run ~default:"sample";
                base;
                axes = List.rev axes;
              })
    | seg :: rest -> (
        match prefixed ~prefix:"axis:" seg with
        | Some body ->
            Result.bind (split_eq body) (fun (key, raw) ->
                Result.bind (axis_values key raw) (fun vs ->
                    go name run base_kvs (Grid.scenario_key key vs :: axes) rest))
        | None -> (
            match prefixed ~prefix:"var:" seg with
            | Some body ->
                Result.bind (split_eq body) (fun (key, raw) ->
                    Result.bind (axis_values key raw) (fun vs ->
                        go name run base_kvs (Grid.strings key vs :: axes) rest))
            | None ->
                Result.bind (split_eq seg) (fun (key, value) ->
                    match key with
                    | "sweep" -> go (Some value) run base_kvs axes rest
                    | "run" -> go name (Some value) base_kvs axes rest
                    | _ -> go name run ((key, value) :: base_kvs) axes rest)))
  in
  go None None [] [] (segments text)

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> parse text
  | exception Sys_error e -> Error (Printf.sprintf "sweep spec: %s" e)

let cells t = Grid.expand ~base:t.base ~sweep:t.name t.axes
