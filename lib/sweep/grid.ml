type binding = {
  label : string;
  apply : Simnet.Scenario.t -> (Simnet.Scenario.t, string) result;
}

type axis = { axis_name : string; values : binding list }

(* Float axis labels use the shared shortest-roundtrip repr, so they are
   both readable and lossless (same convention as Scenario.to_args). *)
let float_label = Stats.Float_text.repr

let free name labels =
  {
    axis_name = name;
    values = List.map (fun label -> { label; apply = Result.ok }) labels;
  }

let strings name labels = free name labels
let ints name vs = free name (List.map string_of_int vs)
let floats name vs = free name (List.map float_label vs)

let scenario_key key labels =
  {
    axis_name = key;
    values =
      List.map
        (fun label ->
          {
            label;
            apply = (fun sc -> Simnet.Scenario.of_args ~base:sc [ (key, label) ]);
          })
        labels;
  }

let mutators name pairs =
  {
    axis_name = name;
    values =
      List.map
        (fun (label, f) -> { label; apply = (fun sc -> Ok (f sc)) })
        pairs;
  }

type cell = {
  index : int;
  id : string;
  bindings : (string * string) list;
  scenario : Simnet.Scenario.t;
  seed : int64;
}

(* FNV-1a over the (sweep, cell id) pair, finished with the SplitMix64
   avalanche: a stable, implementation-independent seed derivation, so a
   cell's randomness is a pure function of its identity — the property
   resume and sharding rely on. *)
let seed_of ~sweep id =
  let h = ref 0xcbf29ce484222325L in
  let feed s =
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h 0x100000001b3L)
      s
  in
  feed sweep;
  feed "\x1f";
  feed id;
  Prng.Splitmix64.mix !h

let id_of_bindings = function
  | [] -> "default"
  | bindings ->
      String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) bindings)

let check_axes axes =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc ax ->
      Result.bind acc (fun () ->
          if Hashtbl.mem seen ax.axis_name then
            Error (Printf.sprintf "sweep: duplicate axis %S" ax.axis_name)
          else begin
            Hashtbl.add seen ax.axis_name ();
            if ax.values = [] then
              Error (Printf.sprintf "sweep: axis %S has no values" ax.axis_name)
            else
              let labels = Hashtbl.create 8 in
              List.fold_left
                (fun acc b ->
                  Result.bind acc (fun () ->
                      if Hashtbl.mem labels b.label then
                        Error
                          (Printf.sprintf
                             "sweep: axis %S repeats value %S" ax.axis_name
                             b.label)
                      else begin
                        Hashtbl.add labels b.label ();
                        Ok ()
                      end))
                (Ok ()) ax.values
          end))
    (Ok ()) axes

let expand ?(base = Simnet.Scenario.default) ~sweep axes =
  Result.bind (check_axes axes) (fun () ->
      (* Row-major over the axes in order: the first axis varies slowest,
         the last fastest — the nesting order of the hand-written loops
         the grids replace. *)
      let rec combos acc = function
        | [] -> Ok [ List.rev acc ]
        | ax :: rest ->
            let rec per_value out = function
              | [] -> Ok (List.concat (List.rev out))
              | b :: bs -> (
                  match combos ((ax.axis_name, b) :: acc) rest with
                  | Ok cs -> per_value (cs :: out) bs
                  | Error _ as e -> e)
            in
            per_value [] ax.values
      in
      Result.bind (combos [] axes) (fun combos ->
          let rec build index acc = function
            | [] -> Ok (List.rev acc)
            | combo :: rest ->
                let bindings = List.map (fun (k, b) -> (k, b.label)) combo in
                let id = id_of_bindings bindings in
                let scenario =
                  List.fold_left
                    (fun acc (_, b) -> Result.bind acc b.apply)
                    (Ok base) combo
                in
                (match scenario with
                | Error e -> Error (Printf.sprintf "sweep: cell %s: %s" id e)
                | Ok scenario ->
                    build (index + 1)
                      ({
                         index;
                         id;
                         bindings;
                         scenario;
                         seed = seed_of ~sweep id;
                       }
                      :: acc)
                      rest)
          in
          build 0 [] combos))

let cell_rng c = Prng.Stream.of_seed c.seed

let binding c name =
  match List.assoc_opt name c.bindings with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Sweep.Grid.binding: cell %S has no axis %S" c.id name)

let int_binding c name =
  let v = binding c name in
  match int_of_string_opt v with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "Sweep.Grid.int_binding: axis %S of cell %S holds %S"
           name c.id v)

let float_binding c name =
  let v = binding c name in
  match float_of_string_opt v with
  | Some f -> f
  | None ->
      invalid_arg
        (Printf.sprintf "Sweep.Grid.float_binding: axis %S of cell %S holds %S"
           name c.id v)
