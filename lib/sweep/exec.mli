(** Sharded execution with checkpoint/resume.

    [run] fans the cells of a grid out across domains with
    {!Parallel.map} and, when a [checkpoint] path is given, streams one
    flat JSONL record per completed cell.  On restart against the same
    file, cells whose records survive are {e not} recomputed — their
    values are decoded from the checkpoint — and the sweep continues
    from wherever it was interrupted.  After a successful run the file
    is rewritten in cell-expansion order (atomically, via a temporary
    file), so the finished artifact is byte-identical no matter how many
    domains ran the sweep or how many times it was interrupted.

    That guarantee leans on two properties callers must respect:

    - the [codec] must round-trip exactly ([decode (encode v) = Some v]
      and re-encoding a decoded value reproduces the same pairs) — the
      {!record_codec} and the float encoding below make this hold for
      plain records;
    - the cell function must be deterministic given its cell (seed its
      randomness from [cell.seed] / {!Grid.cell_rng}).

    Record layout: the reserved header keys [sweep], [cell], [index],
    [repro] (a copy-pasteable scenario spec rebuilding the cell) and —
    when per-cell tracing is on — [trace] come first, then the codec's
    payload pairs.  Floats are written in the shortest decimal form that
    parses back to the same value, with [".0"] appended when the text
    would otherwise lex as an integer (the {!Stats.Float_text.json_repr}
    rendering, now also the {!Simnet.Trace} default) — so
    {!Simnet.Trace.parse_jsonl_line} decodes every payload back to the
    [value] it was encoded from. *)

type record = (string * Simnet.Trace.value) list
(** One cell's payload: flat key/value pairs, JSONL-encodable by
    {!Simnet.Trace.jsonl_of_pairs}.  Keys must avoid the reserved header
    keys ([sweep], [cell], [index], [repro], [trace]); [run] raises
    [Invalid_argument] otherwise. *)

type 'a codec = { encode : 'a -> record; decode : record -> 'a option }
(** [decode] returning [None] marks a checkpoint record as stale (e.g.
    the payload schema changed); the cell is recomputed. *)

val record_codec : record codec
(** Identity codec for cells that already produce flat records. *)

type 'a outcome = { cell : Grid.cell; value : 'a; cached : bool }
(** [cached] is [true] when the value was decoded from the checkpoint
    rather than computed this run. *)

val cell_trace_path : dir:string -> Grid.cell -> string
(** Where a cell's binary trace lives under [dir]: the cell id with
    non-[[A-Za-z0-9._-]] characters mapped to ['_'], suffixed [.bin].
    A pure function of the cell identity, so resumed and re-sharded runs
    agree on it. *)

val run :
  ?domains:int ->
  ?checkpoint:string ->
  ?trace:Simnet.Trace.t ->
  ?cell_traces:string ->
  ?repro:(Grid.cell -> string) ->
  sweep:string ->
  codec:'a codec ->
  Grid.cell list ->
  (trace:Simnet.Trace.t -> Grid.cell -> 'a) ->
  'a outcome list
(** [run ~sweep ~codec cells f] evaluates [f] on every cell not already
    recorded in [checkpoint] and returns the outcomes in cell order.

    [domains] defaults to {!Parallel.default_domains} (which honours
    [OVERLAY_DOMAINS]); results and artifacts are independent of it.
    Each processed cell — cached or fresh — emits a
    {!Simnet.Trace.event.Progress} event on [trace] (default
    {!Simnet.Trace.null}) carrying cells-completed/total and the cell's
    wall time ([0.0] for cached cells).  [repro] (default
    {!Simnet.Scenario.to_spec} of the cell scenario) renders the
    record's reproduction string.

    [cell_traces] names a directory (created if missing, one level) of
    per-cell {e binary} traces: each freshly computed cell runs with
    [~trace] bound to a [Trace.Binary] sink at {!cell_trace_path} —
    closed before the cell's record is written — and its checkpoint
    record carries the path under the reserved [trace] key.  Without
    [cell_traces], [f] receives {!Simnet.Trace.null}.  Cells replayed
    from a checkpoint keep their deterministic path reference but are
    not re-traced, so a resume only (re)writes trace files for the cells
    it actually computes.

    Checkpoint reading is lenient: truncated or foreign lines are
    skipped, a later record for the same cell id wins, and records whose
    [sweep] field differs from [sweep] are ignored. *)
