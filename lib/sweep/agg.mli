(** Aggregation of per-cell results.

    Cells return plain values; the harness merges them {e after} the
    fan-out, in cell order.  Nothing here is mutable or global — this
    module replaces the [Exp_util.Bench] atomics the bench harness used
    to update from inside worker domains, which made sweeps impossible
    to resume or reproduce cell-by-cell. *)

type bench = {
  rounds : int;  (** simulated communication rounds *)
  total_bits : int;  (** bits sent, summed over nodes and rounds *)
  max_node_bits : int;  (** worst per-node round work observed *)
}
(** The headline counters of one experiment cell (the BENCH_e*.json
    quantities).  [bench_add] is commutative and associative — sums plus
    a max — so any merge order yields the same totals the old atomics
    accumulated. *)

val bench_zero : bench
val bench_add : bench -> bench -> bench
val bench_sum : bench list -> bench

val rounds : int -> bench
(** [rounds k] is [bench_zero] with [rounds = k]; composes with
    [bench_add] to translate the old imperative [add_rounds k] calls. *)

val bits : int -> bench
val node_bits : int -> bench
(** [node_bits b] contributes [b] to the running [max_node_bits] max. *)

val bench_pairs : bench -> (string * Simnet.Trace.value) list
(** Flat encoding for sweep checkpoint records. *)

val bench_of_pairs : (string * Simnet.Trace.value) list -> bench option
(** Inverse of {!bench_pairs}; [None] if any counter is missing. *)

(** Shard merging functorized over the {!Stats.Mergeable.S} contract
    ({!Stats.Histogram}, {!Stats.Log_histogram}, {!Stats.Moments}, or
    anything else satisfying its laws). *)
module Merge (M : Stats.Mergeable.S) : sig
  val fold : empty:M.t -> M.t list -> M.t
  (** Left fold of [M.merge] over the shards; by the merge laws the
      result equals feeding every observation to one accumulator. *)

  val fold_with : empty:M.t -> ('a -> M.t) -> 'a list -> M.t
  (** [fold_with ~empty f shards] extracts with [f] and merges. *)
end
