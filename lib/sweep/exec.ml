type record = (string * Simnet.Trace.value) list
type 'a codec = { encode : 'a -> record; decode : record -> 'a option }
type 'a outcome = { cell : Grid.cell; value : 'a; cached : bool }

let record_codec = { encode = Fun.id; decode = Option.some }

(* Reserved header keys of a checkpoint record; payload keys must not
   collide with them or resume could not split a parsed line back into
   header and payload. *)
let reserved = [ "sweep"; "cell"; "index"; "repro"; "trace" ]

(* Per-cell trace files live under the cell_traces directory, named
   after the cell id with non-portable characters mapped to '_' — a pure
   function of the cell's identity, so resumed or re-sharded runs
   reference the same paths and the canonical rewrite stays
   byte-identical. *)
let cell_trace_path ~dir (cell : Grid.cell) =
  let sanitized =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '-' | '_' -> c
        | _ -> '_')
      cell.id
  in
  Filename.concat dir (sanitized ^ ".bin")

let line_of ~sweep ~repro ?trace_file (cell : Grid.cell) payload =
  List.iter
    (fun (k, _) ->
      if List.mem k reserved then
        invalid_arg
          (Printf.sprintf
             "Sweep.Exec: cell %S payload uses reserved key %S" cell.id k))
    payload;
  let header =
    ("sweep", Simnet.Trace.String sweep)
    :: ("cell", Simnet.Trace.String cell.id)
    :: ("index", Simnet.Trace.Int cell.index)
    :: ("repro", Simnet.Trace.String (repro cell))
    ::
    (match trace_file with
    | None -> []
    | Some path -> [ ("trace", Simnet.Trace.String path) ])
  in
  (* The default float repr of jsonl_of_pairs is the lossless
     shortest-roundtrip form (Stats.Float_text.json_repr), which is
     exactly the rendering this module used to carry privately — codec
     round-trips stay byte-exact. *)
  Simnet.Trace.jsonl_of_pairs (header @ payload)

(* Read back whatever prefix of a checkpoint file survived: unparsable
   lines (a run killed mid-write leaves a truncated tail) and records of
   other sweeps are skipped; later records win over earlier ones, since
   a resumed run appends before the final canonical rewrite. *)
let load_checkpoint ~sweep path =
  let cached = Hashtbl.create 64 in
  (if Sys.file_exists path then
     let ic = open_in path in
     (try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match Simnet.Trace.parse_jsonl_line line with
            | None -> ()
            | Some pairs -> (
                match
                  ( List.assoc_opt "sweep" pairs,
                    List.assoc_opt "cell" pairs )
                with
                | Some (Simnet.Trace.String s), Some (Simnet.Trace.String id)
                  when s = sweep ->
                    let payload =
                      List.filter (fun (k, _) -> not (List.mem k reserved)) pairs
                    in
                    Hashtbl.replace cached id payload
                | _ -> ())
        done
      with End_of_file -> ());
     close_in ic);
  cached

let run ?domains ?checkpoint ?(trace = Simnet.Trace.null) ?cell_traces
    ?(repro = fun (c : Grid.cell) -> Simnet.Scenario.to_spec c.scenario)
    ~sweep ~codec cells f =
  let cells_arr = Array.of_list cells in
  let total = Array.length cells_arr in
  Option.iter
    (fun dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
    cell_traces;
  let trace_file cell =
    Option.map (fun dir -> cell_trace_path ~dir cell) cell_traces
  in
  let cached =
    match checkpoint with
    | None -> Hashtbl.create 0
    | Some path -> load_checkpoint ~sweep path
  in
  let oc =
    Option.map
      (fun path -> open_out_gen [ Open_append; Open_creat ] 0o644 path)
      checkpoint
  in
  let mutex = Mutex.create () in
  let completed = ref 0 in
  let progress (cell : Grid.cell) ~wall_s ~was_cached =
    incr completed;
    if Simnet.Trace.enabled trace then
      Simnet.Trace.emit trace
        (Simnet.Trace.Progress
           {
             sweep;
             cell = cell.id;
             index = cell.index;
             completed = !completed;
             total;
             wall_s;
             cached = was_cached;
           })
  in
  let fresh (cell : Grid.cell) =
    let t0 = Unix.gettimeofday () in
    let trace_file = trace_file cell in
    let ctrace =
      match trace_file with
      | None -> Simnet.Trace.null
      | Some path -> Simnet.Trace.open_file ~format:Simnet.Trace.Binary path
    in
    let value =
      Fun.protect
        ~finally:(fun () -> Simnet.Trace.close ctrace)
        (fun () -> f ~trace:ctrace cell)
    in
    let line = line_of ~sweep ~repro ?trace_file cell (codec.encode value) in
    let wall_s = Unix.gettimeofday () -. t0 in
    Mutex.lock mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        Option.iter
          (fun oc ->
            output_string oc line;
            output_char oc '\n';
            flush oc)
          oc;
        progress cell ~wall_s ~was_cached:false);
    { cell; value; cached = false }
  in
  let compute (cell : Grid.cell) =
    match Hashtbl.find_opt cached cell.id with
    | None -> fresh cell
    | Some payload -> (
        match codec.decode payload with
        | None -> fresh cell (* stale or foreign record: recompute *)
        | Some value ->
            Mutex.lock mutex;
            Fun.protect
              ~finally:(fun () -> Mutex.unlock mutex)
              (fun () -> progress cell ~wall_s:0.0 ~was_cached:true);
            { cell; value; cached = true })
  in
  let outcomes = Parallel.map ?domains compute cells_arr in
  Option.iter close_out oc;
  (* Canonical rewrite: the finished checkpoint is the sweep's artifact —
     one record per cell in expansion order, byte-identical however the
     run was sharded or interrupted (the codec round-trips exactly, so
     re-encoding a cached value reproduces its original line). *)
  Option.iter
    (fun path ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      Array.iter
        (fun o ->
          output_string oc
            (line_of ~sweep ~repro ?trace_file:(trace_file o.cell) o.cell
               (codec.encode o.value));
          output_char oc '\n')
        outcomes;
      close_out oc;
      Sys.rename tmp path)
    checkpoint;
  Array.to_list outcomes
