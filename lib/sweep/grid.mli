(** Declarative parameter grids.

    A grid is a list of {!axis} values; {!expand} takes their cartesian
    product — first axis slowest, matching the nesting order of the
    hand-written loops grids replace — and yields one {!cell} per
    combination.  Every cell carries:

    - a stable {b cell id}, the [;]-joined [axis=value] bindings (or
      ["default"] for an empty grid), which keys checkpoint records;
    - a {!Simnet.Scenario.t} built by applying the scenario-aware axes
      to the base scenario;
    - a {b seed} derived purely from (sweep name, cell id), so a cell's
      randomness does not depend on expansion order, sharding, or which
      other cells exist — the property checkpoint resume relies on.

    Axes come in three flavours: {!scenario_key} axes route their values
    through {!Simnet.Scenario.of_args} (so ["n"], ["faults"], ["retry"],
    ... validate exactly like the CLI); free axes ({!ints}, {!floats},
    {!strings}) only record a binding the cell function reads back with
    {!binding} and friends; {!mutators} apply arbitrary scenario
    transformations. *)

type axis

val scenario_key : string -> string list -> axis
(** [scenario_key key values]: each value is applied to the cell's
    scenario as [key=value] via {!Simnet.Scenario.of_args}; invalid
    values surface as an [Error] from {!expand} naming the cell. *)

val ints : string -> int list -> axis
(** Free axis over integers (recorded in the cell bindings only). *)

val floats : string -> float list -> axis
(** Free axis over floats; labels use the shortest decimal form that
    parses back to the same float. *)

val strings : string -> string list -> axis
(** Free axis over strings. *)

val mutators : string -> (string * (Simnet.Scenario.t -> Simnet.Scenario.t)) list -> axis
(** [mutators name [(label, f); ...]]: axis whose values transform the
    scenario with [f] and appear as [name=label] in the cell id. *)

type cell = {
  index : int;  (** position in expansion order, 0-based *)
  id : string;  (** stable cell id, e.g. ["drop=0.05;retry=3"] *)
  bindings : (string * string) list;  (** axis name -> value label *)
  scenario : Simnet.Scenario.t;
  seed : int64;  (** derived from (sweep name, cell id) *)
}

val expand :
  ?base:Simnet.Scenario.t ->
  sweep:string ->
  axis list ->
  (cell list, string) result
(** Cartesian product of the axes over [base] (default
    {!Simnet.Scenario.default}), in deterministic order.  Errors on a
    duplicate axis name, an empty axis, a repeated value within an axis
    (either would collide cell ids), or a scenario-key value the
    scenario parser rejects. *)

val cell_rng : cell -> Prng.Stream.t
(** Root PRNG stream of the cell, seeded from [cell.seed]. *)

val binding : cell -> string -> string
(** Value label of the named axis.  Raises [Invalid_argument] if the
    cell has no such axis. *)

val int_binding : cell -> string -> int
val float_binding : cell -> string -> float

val seed_of : sweep:string -> string -> int64
(** [seed_of ~sweep cell_id]: the seed derivation (FNV-1a over the pair,
    finished with the SplitMix64 avalanche), exposed for tests and for
    drivers that want cell-keyed child seeds. *)
