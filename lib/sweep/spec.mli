(** Textual grid specs for the [overlay_sim sweep] subcommand.

    A spec is a list of segments separated by [;] or newlines, with
    [#]-to-end-of-line comments:

    {v
    sweep=demo; run=sample        # sweep name and per-cell runner
    n=256; d=8                    # base-scenario overrides (Scenario.of_args)
    axis:seed=1|2|3               # scenario axis: values routed through of_args
    axis:faults=drop=0.01|drop=0.05
    var:c=1.5|2                   # free axis: recorded, read back by the runner
    v}

    Segments split on their {e first} [=], and axis values on [|], so
    fault sub-specs nest without quoting.  [axis:KEY] becomes a
    {!Grid.scenario_key} axis (values validated like the CLI flags);
    [var:KEY] a {!Grid.strings} axis the runner reads with
    {!Grid.binding} and friends; every other [KEY=VALUE] folds into the
    base scenario.  [sweep] defaults to ["sweep"], [run] to ["sample"]
    — runner names are interpreted by the subcommand, not here. *)

type t = {
  name : string;  (** sweep name; keys seeds and checkpoint records *)
  run : string;  (** per-cell runner name, e.g. ["sample"] *)
  base : Simnet.Scenario.t;
  axes : Grid.axis list;  (** in spec order (first = slowest-varying) *)
}

val parse : string -> (t, string) result
val load : string -> (t, string) result
(** [load path]: {!parse} the contents of [path]. *)

val cells : t -> (Grid.cell list, string) result
(** {!Grid.expand} over the spec's base and axes, keyed by its name. *)
