(** Robust DHT over a reconfigured k-ary hypercube (Section 7.2).

    Servers are organized into representative groups, one per supernode of a
    d-dimensional k-ary hypercube (Definition 1), exactly as the Section 5
    network is built over the binary hypercube.  Every key hashes to a
    supernode; the key's data is replicated at all members of that group
    (logarithmic redundancy).  A request enters at any non-blocked server
    and routes by dimension correction — each hop moves to a neighboring
    group that agrees with the target on one more coordinate — giving at
    most d = O(log n / log k) hops; a hop only needs one non-blocked member
    in the next group, and coordinates can be corrected in any order, so
    routing detours around starved groups.

    Substitution note (see DESIGN.md): the internals of RoBuSt [11] (coding,
    probing schedules) are replaced by plain replication; data is keyed to
    supernodes, so reconfiguring which *servers* represent a supernode never
    moves data between supernodes — the paper's reason the DHT tolerates
    continuous reconfiguration.  Group stores persist across reshuffles
    (members hand the store over during the reconfiguration broadcast). *)

type t

val create : ?c:float -> ?k:int -> rng:Prng.Stream.t -> n:int -> unit -> t
(** [k] (default 4) is the arity; [c] (default 1.0) fixes the supernode
    count k^d <= n / (c log2 n).  Servers are scattered uniformly. *)

val n : t -> int
val k : t -> int
val dimension : t -> int
val supernode_count : t -> int
val group_of : t -> int array
val cube : t -> Topology.Kary_hypercube.t
val supernode_of_key : t -> int -> int

val group_members : t -> int -> int array
(** Servers currently representing a supernode. *)

val peek : t -> int -> string option
(** Direct store lookup for a key at its owning supernode, bypassing
    routing — for harnesses and batch routers that have already done the
    routing themselves. *)

val random_entry : t -> blocked:bool array -> int option
(** A uniformly random non-blocked server, the entry point of a request;
    [None] when every server is blocked.  Costs O(1) draws except when
    almost every server is blocked (bounded rejection sampling with a
    single O(n) survivor-scan fallback). *)

val random_entry_with :
  t -> rng:Prng.Stream.t -> blocked:bool array -> int option
(** Same, drawing from the caller's stream instead of the DHT's own — used
    by workload generators that need entry picks to be a deterministic
    function of their own request stream. *)

val reshuffle : t -> unit
(** One reconfiguration: scatter all servers to uniformly random groups
    (the Section 5 machinery, extended to the k-ary cube as the paper
    sketches).  Data stays with its supernode. *)

type op = Read of int | Write of int * string

type op_result = {
  ok : bool;
      (** the request reached the responsible group (a read of an absent
          key is still [ok = true] with [value = None]) *)
  hops : int;  (** group-to-group hops used (<= d on success) *)
  value : string option;  (** for reads *)
}

val execute : t -> blocked:bool array -> op -> op_result
(** Execute one operation from a uniformly random non-blocked entry server.
    Fails only if no entry exists or routing hits a coordinate whose every
    remaining correction order is starved. *)

val execute_at :
  t -> blocked:bool array -> ?load:int array -> entry:int -> op -> op_result
(** Execute one operation from a caller-chosen entry server (a blocked
    entry yields [ok = false] without routing).  [load], if given, has one
    cell per supernode and accumulates per-group congestion as in
    {!execute_batch}.  Raises [Invalid_argument] if [entry] is out of
    range. *)

type batch_result = {
  served : int;
  failed : int;
  max_hops : int;
  max_group_load : int;
      (** messages handled by the busiest group — the congestion bound of
          Theorem 8 *)
}

val execute_batch : t -> blocked:bool array -> op list -> batch_result
(** Serve a whole batch (at most O(1) ops per non-blocked server in the
    intended regime), accounting per-group congestion. *)
