module Kary = Topology.Kary_hypercube

type t = {
  rng : Prng.Stream.t;
  cube : Kary.t;
  n : int;
  mutable group_of : int array;
  mutable members : int array array;
  stores : (int, string) Hashtbl.t array; (* per supernode *)
}

type op = Read of int | Write of int * string

type op_result = { ok : bool; hops : int; value : string option }

type batch_result = {
  served : int;
  failed : int;
  max_hops : int;
  max_group_load : int;
}

let rebuild_members ~supernodes group_of =
  let vecs = Array.init supernodes (fun _ -> Topology.Intvec.create ()) in
  Array.iteri (fun v x -> Topology.Intvec.push vecs.(x) v) group_of;
  Array.map Topology.Intvec.to_array vecs

let create ?(c = 1.0) ?(k = 4) ~rng ~n () =
  if n < 64 then invalid_arg "Robust_dht.create: n too small";
  if k < 2 then invalid_arg "Robust_dht.create: k < 2";
  let logn = Core.Params.log2f (float_of_int n) in
  let target = float_of_int n /. (c *. logn) in
  let rec dim d =
    if float_of_int (Kary.node_count (Kary.create ~k ~d:(d + 1))) <= target then
      dim (d + 1)
    else d
  in
  let d = max 1 (dim 1) in
  let cube = Kary.create ~k ~d in
  let supernodes = Kary.node_count cube in
  let group_of = Array.init n (fun _ -> Prng.Stream.int rng supernodes) in
  {
    rng;
    cube;
    n;
    group_of;
    members = rebuild_members ~supernodes group_of;
    stores = Array.init supernodes (fun _ -> Hashtbl.create 16);
  }

let n t = t.n
let k t = Kary.k t.cube
let dimension t = Kary.d t.cube
let supernode_count t = Kary.node_count t.cube
let group_of t = Array.copy t.group_of
let cube t = t.cube

let supernode_of_key t key =
  let h = Prng.Splitmix64.mix (Int64.of_int key) in
  Int64.to_int (Int64.rem (Int64.shift_right_logical h 1)
                  (Int64.of_int (supernode_count t)))

(* One reconfiguration of the server groups, exactly as in Section 5 but
   over the k-ary supernode cube: each group runs the rapid k-ary sampling
   primitive (Core.Rapid_kary) for its supernode and scatters its members
   (in id order) to the supernodes it sampled. *)
let reshuffle t =
  let supernodes = supernode_count t in
  let max_group =
    Array.fold_left (fun acc m -> max acc (Array.length m)) 0 t.members
  in
  let d = Kary.d t.cube in
  let c_sample =
    Float.max 2.0 ((float_of_int max_group /. float_of_int (max 1 d)) +. 1.0)
  in
  let sampling =
    Core.Rapid_kary.run ~c:c_sample ~rng:(Prng.Stream.split t.rng) t.cube
  in
  for x = 0 to supernodes - 1 do
    let pool = sampling.Core.Sampling_result.samples.(x) in
    Array.iteri
      (fun i v ->
        if i < Array.length pool then t.group_of.(v) <- pool.(i)
        else
          (* underflow shortfall: direct uniform fallback *)
          t.group_of.(v) <- Prng.Stream.int t.rng supernodes)
      t.members.(x)
  done;
  t.members <- rebuild_members ~supernodes t.group_of

let occupied t ~blocked x =
  Array.exists (fun v -> not blocked.(v)) t.members.(x)

(* Dimension-correction routing from supernode [src] to [dst]: repeatedly
   move to a neighboring occupied group that agrees with [dst] on one more
   coordinate.  Any correction order works, so the route detours around
   starved groups; it fails only when every remaining correction leads to a
   starved group. *)
let route t ~blocked ~load ~src ~dst =
  let d = dimension t in
  let cur = ref src and hops = ref 0 and stuck = ref false in
  while !cur <> dst && not !stuck do
    let moved = ref false in
    let i = ref 0 in
    while (not !moved) && !i < d do
      let ci = Kary.coord t.cube !cur !i and di = Kary.coord t.cube dst !i in
      if ci <> di then begin
        let next = Kary.with_coord t.cube !cur !i di in
        if occupied t ~blocked next then begin
          cur := next;
          incr hops;
          (match load with
          | Some counts -> counts.(next) <- counts.(next) + 1
          | None -> ());
          moved := true
        end
      end;
      incr i
    done;
    if not !moved then stuck := true
  done;
  if !stuck then None else Some !hops

let group_members t x = Array.copy t.members.(x)

let peek t key = Hashtbl.find_opt t.stores.(supernode_of_key t key) key

(* Bounded rejection sampling: each draw lands on a non-blocked server with
   probability (non-blocked / n), so unless nearly every server is blocked
   the loop exits within a couple of draws and costs O(1).  Only after
   [entry_attempts] consecutive misses — survivor fraction below ~50% with
   probability 2^-30 — do we fall back to one O(n) survivor scan, which is
   also what decides the all-blocked case.  (The previous implementation
   scanned the whole blocked array on *every* request, making a sustained
   request stream quadratic in n.) *)
let entry_attempts = 30

let random_entry_with t ~rng ~blocked =
  if Array.length blocked <> t.n then
    invalid_arg "Robust_dht.random_entry: blocked size mismatch";
  let scan () =
    let survivors = Topology.Intvec.create () in
    Array.iteri
      (fun v b -> if not b then Topology.Intvec.push survivors v)
      blocked;
    let len = Topology.Intvec.length survivors in
    if len = 0 then None
    else Some (Topology.Intvec.get survivors (Prng.Stream.int rng len))
  in
  let rec pick i =
    if i >= entry_attempts then scan ()
    else
      let v = Prng.Stream.int rng t.n in
      if blocked.(v) then pick (i + 1) else Some v
  in
  pick 0

let random_entry t ~blocked = random_entry_with t ~rng:t.rng ~blocked

let pick_entry = random_entry

let execute_from t ~blocked ~load ~entry op =
  let key = match op with Read key | Write (key, _) -> key in
  let dst = supernode_of_key t key in
  let src = t.group_of.(entry) in
  (match load with Some counts -> counts.(src) <- counts.(src) + 1 | None -> ());
  if not (occupied t ~blocked dst) then { ok = false; hops = 0; value = None }
  else
    match route t ~blocked ~load ~src ~dst with
    | None -> { ok = false; hops = 0; value = None }
    | Some hops -> (
        match op with
        | Read key ->
            let value = Hashtbl.find_opt t.stores.(dst) key in
            { ok = true; hops; value }
        | Write (key, v) ->
            Hashtbl.replace t.stores.(dst) key v;
            { ok = true; hops; value = None })

let execute t ~blocked op =
  if Array.length blocked <> t.n then
    invalid_arg "Robust_dht.execute: blocked size mismatch";
  match pick_entry t ~blocked with
  | None -> { ok = false; hops = 0; value = None }
  | Some entry -> execute_from t ~blocked ~load:None ~entry op

let execute_at t ~blocked ?load ~entry op =
  if Array.length blocked <> t.n then
    invalid_arg "Robust_dht.execute_at: blocked size mismatch";
  if entry < 0 || entry >= t.n then
    invalid_arg "Robust_dht.execute_at: entry out of range";
  if blocked.(entry) then { ok = false; hops = 0; value = None }
  else execute_from t ~blocked ~load ~entry op

let execute_batch t ~blocked ops =
  if Array.length blocked <> t.n then
    invalid_arg "Robust_dht.execute_batch: blocked size mismatch";
  let load = Array.make (supernode_count t) 0 in
  let served = ref 0 and failed = ref 0 and max_hops = ref 0 in
  List.iter
    (fun op ->
      match pick_entry t ~blocked with
      | None -> incr failed
      | Some entry ->
          let r = execute_from t ~blocked ~load:(Some load) ~entry op in
          if r.ok then begin
            incr served;
            if r.hops > !max_hops then max_hops := r.hops
          end
          else incr failed)
    ops;
  {
    served = !served;
    failed = !failed;
    max_hops = !max_hops;
    max_group_load = Array.fold_left max 0 load;
  }
