type t = { dht : Robust_dht.t }

let seq_bits = 20
let max_seq = (1 lsl seq_bits) - 1

exception Topic_full of { topic : int; seq : int }

let () =
  Printexc.register_printer (function
    | Topic_full { topic; seq } ->
        Some
          (Printf.sprintf
             "Apps.Pubsub.Topic_full(topic %d, seq %d > max %d)" topic seq
             max_seq)
    | _ -> None)

let create ~dht = { dht }

(* Composite keys pack as [topic * 2^20 + seq]; a sequence number past
   [max_seq] would carry into the topic bits and silently alias the next
   topic's key space, so the overflow is a typed error, checked before any
   write happens. *)
let composite topic seq =
  if topic < 0 || seq < 0 then invalid_arg "Pubsub: key out of range";
  if seq > max_seq then raise (Topic_full { topic; seq });
  (topic lsl seq_bits) lor seq

let counter_key topic = composite topic 0

(* The counter of a fresh topic is absent, which reads as zero; None means
   the DHT could not be reached at all. *)
let read_counter t ~blocked topic =
  let r = Robust_dht.execute t.dht ~blocked (Robust_dht.Read (counter_key topic)) in
  if not r.Robust_dht.ok then None
  else
    match r.Robust_dht.value with
    | Some s -> int_of_string_opt s
    | None -> Some 0

let last_seq t ~blocked ~topic = read_counter t ~blocked topic

let publish t ~blocked ~topic ~payload =
  match read_counter t ~blocked topic with
  | None -> None
  | Some m ->
      if m >= max_seq then raise (Topic_full { topic; seq = m + 1 });
      let seq = m + 1 in
      let w1 =
        Robust_dht.execute t.dht ~blocked
          (Robust_dht.Write (composite topic seq, payload))
      in
      if not w1.Robust_dht.ok then None
      else
        let w2 =
          Robust_dht.execute t.dht ~blocked
            (Robust_dht.Write (counter_key topic, string_of_int seq))
        in
        if w2.Robust_dht.ok then Some seq else None

let publish_batch t ~blocked items =
  (* Aggregate per topic: one counter read + one counter write per topic
     regardless of how many publications it receives. *)
  let per_topic = Hashtbl.create 16 in
  List.iter
    (fun (topic, payload) ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt per_topic topic)
      in
      Hashtbl.replace per_topic topic (payload :: existing))
    items;
  let published = ref 0 and failed = ref 0 in
  Hashtbl.iter
    (fun topic payloads ->
      let payloads = List.rev payloads in
      match read_counter t ~blocked topic with
      | None -> failed := !failed + List.length payloads
      | Some m ->
          if m + List.length payloads > max_seq then
            raise (Topic_full { topic; seq = m + List.length payloads });
          let seq = ref m in
          let all_ok = ref true in
          List.iter
            (fun payload ->
              incr seq;
              let w =
                Robust_dht.execute t.dht ~blocked
                  (Robust_dht.Write (composite topic !seq, payload))
              in
              if w.Robust_dht.ok then incr published
              else begin
                incr failed;
                all_ok := false
              end)
            payloads;
          if !all_ok || !seq > m then
            ignore
              (Robust_dht.execute t.dht ~blocked
                 (Robust_dht.Write (counter_key topic, string_of_int !seq))))
    per_topic;
  (!published, !failed)

let publish_batch_aggregated t ~blocked items =
  let dht = t.dht in
  let supernodes = Robust_dht.supernode_count dht in
  let group_of = Robust_dht.group_of dht in
  (* 1. Every publication enters at a random non-blocked server; collect
     per-origin-supernode topic counts (local pre-combining). *)
  let contributions = Array.make supernodes [] in
  let per_origin = Hashtbl.create 64 in
  let entered = ref [] and failed_entry = ref 0 in
  List.iter
    (fun (topic, payload) ->
      match Robust_dht.random_entry dht ~blocked with
      | None -> incr failed_entry
      | Some entry ->
          let origin = group_of.(entry) in
          entered := (topic, payload) :: !entered;
          let key = (origin, topic) in
          Hashtbl.replace per_origin key
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_origin key)))
    items;
  Hashtbl.iter
    (fun (origin, topic) count ->
      contributions.(origin) <- (topic, count) :: contributions.(origin))
    per_origin;
  (* 2. Butterfly aggregation of the counts to the counter owners. *)
  let dest_of_key topic = Robust_dht.supernode_of_key dht (counter_key topic) in
  let totals, stats =
    Butterfly.aggregate ~cube:(Robust_dht.cube dht) ~dest_of_key ~contributions
  in
  (* 3. Bulk sequence assignment: one counter read + one counter write per
     topic, performed by the owner. *)
  let base = Hashtbl.create 16 in
  let counter_failed = Hashtbl.create 16 in
  Array.iter
    (fun tbl ->
      Hashtbl.iter
        (fun topic total ->
          match read_counter t ~blocked topic with
          | None -> Hashtbl.replace counter_failed topic ()
          | Some m ->
              if m + total > max_seq then
                raise (Topic_full { topic; seq = m + total });
              Hashtbl.replace base topic m;
              let w =
                Robust_dht.execute dht ~blocked
                  (Robust_dht.Write (counter_key topic, string_of_int (m + total)))
              in
              if not w.Robust_dht.ok then Hashtbl.replace counter_failed topic ())
        tbl)
    totals;
  (* 4. Store the payloads under their assigned sequence numbers, in
     submission order per topic. *)
  let published = ref 0 and failed = ref !failed_entry in
  List.iter
    (fun (topic, payload) ->
      if Hashtbl.mem counter_failed topic || not (Hashtbl.mem base topic) then
        incr failed
      else begin
        let seq = 1 + Hashtbl.find base topic in
        Hashtbl.replace base topic seq;
        let w =
          Robust_dht.execute dht ~blocked
            (Robust_dht.Write (composite topic seq, payload))
        in
        if w.Robust_dht.ok then incr published else incr failed
      end)
    (List.rev !entered);
  ((!published, !failed), stats)

let fetch_batch t ~blocked subscribers =
  let subs = Array.of_list subscribers in
  (* Phase 1: combined read of the distinct topics' counters. *)
  let topics =
    List.sort_uniq compare (List.map fst subscribers) |> Array.of_list
  in
  let counter_keys = Array.map counter_key topics in
  let counter_values, _ =
    Staged_router.read_batch ~dht:t.dht ~blocked ~keys:counter_keys
  in
  let m_of = Hashtbl.create 16 in
  Array.iteri
    (fun i topic ->
      let m =
        match counter_values.(i) with
        | Some s -> int_of_string_opt s
        | None -> Some 0
        (* an absent counter means a fresh topic; a routing failure would
           also read as None here, so a fresh-vs-failed distinction needs
           stats.failed = 0, which callers get from the returned stats *)
      in
      Hashtbl.replace m_of topic m)
    topics;
  (* Phase 2: one combined read batch over every needed (topic, seq). *)
  let wanted = ref [] in
  Array.iter
    (fun (topic, since) ->
      match Hashtbl.find_opt m_of topic with
      | Some (Some m) ->
          for seq = since + 1 to m do
            wanted := composite topic seq :: !wanted
          done
      | _ -> ())
    subs;
  let keys = Array.of_list (List.sort_uniq compare !wanted) in
  let values, stats = Staged_router.read_batch ~dht:t.dht ~blocked ~keys in
  let value_of = Hashtbl.create 64 in
  Array.iteri (fun i key -> Hashtbl.replace value_of key values.(i)) keys;
  let results =
    Array.map
      (fun (topic, since) ->
        match Hashtbl.find_opt m_of topic with
        | Some (Some m) ->
            if m <= since then Some []
            else begin
              let out = ref [] and ok = ref true in
              for seq = since + 1 to m do
                match Hashtbl.find_opt value_of (composite topic seq) with
                | Some (Some payload) -> out := payload :: !out
                | _ -> ok := false
              done;
              if !ok then Some (List.rev !out) else None
            end
        | _ -> None)
      subs
  in
  (results, stats)

let fetch_since t ~blocked ~topic ~since =
  match read_counter t ~blocked topic with
  | None -> None
  | Some m ->
      if m <= since then Some []
      else begin
        let out = ref [] in
        let ok = ref true in
        for seq = since + 1 to m do
          let r =
            Robust_dht.execute t.dht ~blocked
              (Robust_dht.Read (composite topic seq))
          in
          match (r.Robust_dht.ok, r.Robust_dht.value) with
          | true, Some payload -> out := payload :: !out
          | _ -> ok := false
        done;
        if !ok then Some (List.rev !out) else None
      end
