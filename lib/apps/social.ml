type cls = Feed | Post | Comment | Vote | Dm

let classes = [ Feed; Post; Comment; Vote; Dm ]

let class_name = function
  | Feed -> "feed"
  | Post -> "post"
  | Comment -> "comment"
  | Vote -> "vote"
  | Dm -> "dm"

type budget = { slo : int; timeout : int; retries : int }

(* Interactive reads want the page now and give up early; posts carry
   their repost fan-out in one chain (several publishes of 3 + hops
   operations each), so their budget is an order looser; votes are cheap
   fire-and-forget; DMs must not be lost, so they tolerate latency and
   retry hardest. *)
let budget = function
  | Feed -> { slo = 6; timeout = 12; retries = 1 }
  | Post -> { slo = 36; timeout = 48; retries = 2 }
  | Comment -> { slo = 12; timeout = 24; retries = 2 }
  | Vote -> { slo = 8; timeout = 16; retries = 1 }
  | Dm -> { slo = 14; timeout = 28; retries = 3 }

type mix = {
  feed : float;
  post : float;
  comment : float;
  vote : float;
  dm : float;
}

let default_mix = { feed = 0.60; post = 0.15; comment = 0.12; vote = 0.10; dm = 0.03 }

type config = {
  users : int;
  topics : int;
  rounds : int;
  rate : float;
  fanout : int;
  zipf : float;
  mix : mix;
  session : (float * int) option;
}

let config ?(users = 64) ?(topics = 16) ?(rounds = 64) ?(rate = 0.25)
    ?(fanout = 2) ?(zipf = 1.1) ?(mix = default_mix) ?session () =
  if users <= 0 then invalid_arg "Apps.Social: users <= 0";
  if topics <= 0 then invalid_arg "Apps.Social: topics <= 0";
  if topics > Pubsub.max_seq then
    invalid_arg "Apps.Social: topics exceed the plain key space";
  if rounds <= 0 then invalid_arg "Apps.Social: rounds <= 0";
  if rate <= 0.0 || not (Float.is_finite rate) then
    invalid_arg "Apps.Social: rate <= 0";
  if fanout < 0 then invalid_arg "Apps.Social: negative fanout";
  if zipf <= 0.0 || not (Float.is_finite zipf) then
    invalid_arg "Apps.Social: zipf <= 0";
  let weights = [ mix.feed; mix.post; mix.comment; mix.vote; mix.dm ] in
  if List.exists (fun w -> w < 0.0 || not (Float.is_finite w)) weights then
    invalid_arg "Apps.Social: negative mix weight";
  let sum = List.fold_left ( +. ) 0.0 weights in
  if sum <= 0.0 then invalid_arg "Apps.Social: zero mix";
  let mix =
    {
      feed = mix.feed /. sum;
      post = mix.post /. sum;
      comment = mix.comment /. sum;
      vote = mix.vote /. sum;
      dm = mix.dm /. sum;
    }
  in
  (match session with
  | None -> ()
  | Some (online, epoch) ->
      if online <= 0.0 || online > 1.0 || not (Float.is_finite online) then
        invalid_arg "Apps.Social: session online outside (0, 1]";
      if epoch <= 0 then invalid_arg "Apps.Social: session epoch <= 0");
  { users; topics; rounds; rate; fanout; zipf; mix; session }

let content_topic _ t = 1 + t
let comment_topic cfg t = 1 + cfg.topics + t
let feed_topic cfg u = 1 + (2 * cfg.topics) + u
let dm_topic cfg u = 1 + (2 * cfg.topics) + cfg.users + u
let vote_key _ t = t

let hot_keys cfg =
  Array.init cfg.topics (fun t ->
      ( Pubsub.counter_key (content_topic cfg t),
        1.0 /. ((float_of_int t +. 1.0) ** cfg.zipf) ))

type op = Probe of int | Publish of int | Store of int

let base_ops = function Probe _ -> 1 | Store _ -> 1 | Publish _ -> 3

type request = {
  user : int;
  seq : int;
  arrival : int;
  cls : cls;
  ops : op list;
}

(* Keyed derivation (cf. {!Gen.client_stream}): user [u]'s stream is a
   pure function of (seed, u).  Even offsets, so the streams are disjoint
   from the workload generator's odd-offset client streams even under a
   shared seed.  Offset 0 is the session stream. *)
let user_stream ~seed ~user =
  Prng.Stream.of_seed
    (Prng.Splitmix64.mix
       (Int64.add (Prng.Splitmix64.mix seed) (Int64.of_int (2 * (user + 1)))))

let session_stream ~seed =
  Prng.Stream.of_seed (Prng.Splitmix64.mix (Prng.Splitmix64.mix seed))

let offline cfg ~seed =
  match cfg.session with
  | None -> [||]
  | Some (online, epoch) ->
      let s = session_stream ~seed in
      let epochs = (cfg.rounds + epoch - 1) / epoch in
      let off = int_of_float ((1.0 -. online) *. float_of_int cfg.users) in
      Array.init epochs (fun _ ->
          let set = Array.make cfg.users false in
          if off > 0 then
            Array.iter
              (fun u -> set.(u) <- true)
              (Prng.Stream.sample_distinct s cfg.users ~k:off);
          set)

let draw_topic cfg s = Prng.Dist.zipf s ~n:cfg.topics ~s:cfg.zipf - 1

let draw_class cfg s =
  let r = Prng.Stream.float s 1.0 in
  let m = cfg.mix in
  if r < m.feed then Feed
  else if r < m.feed +. m.post then Post
  else if r < m.feed +. m.post +. m.comment then Comment
  else if r < m.feed +. m.post +. m.comment +. m.vote then Vote
  else Dm

let draw_ops cfg s = function
  | Feed -> [ Probe (content_topic cfg (draw_topic cfg s)) ]
  | Post ->
      let t = draw_topic cfg s in
      (* the repost fan-out: one action, 1 + fanout chained publishes *)
      let followers =
        List.init cfg.fanout (fun _ -> Prng.Stream.int s cfg.users)
      in
      Publish (content_topic cfg t)
      :: List.map (fun u -> Publish (feed_topic cfg u)) followers
  | Comment -> [ Publish (comment_topic cfg (draw_topic cfg s)) ]
  | Vote -> [ Store (vote_key cfg (draw_topic cfg s)) ]
  | Dm -> [ Publish (dm_topic cfg (Prng.Stream.int s cfg.users)) ]

let user_schedule cfg ~seed ~offline user =
  let s = user_stream ~seed ~user in
  let epoch_len =
    match cfg.session with Some (_, e) -> e | None -> cfg.rounds
  in
  let out = ref [] and seq = ref 0 in
  for arrival = 0 to cfg.rounds - 1 do
    let away =
      Array.length offline > 0 && offline.(arrival / epoch_len).(user)
    in
    if not away then begin
      let burst = Prng.Dist.poisson s cfg.rate in
      for _ = 1 to burst do
        let cls = draw_class cfg s in
        let ops = draw_ops cfg s cls in
        out := { user; seq = !seq; arrival; cls; ops } :: !out;
        incr seq
      done
    end
  done;
  Array.of_list (List.rev !out)

let schedule ?domains cfg ~seed =
  let offline = offline cfg ~seed in
  let per_user =
    Parallel.map ?domains
      (user_schedule cfg ~seed ~offline)
      (Array.init cfg.users Fun.id)
  in
  let all = Array.concat (Array.to_list per_user) in
  Array.stable_sort (fun a b -> compare a.arrival b.arrival) all;
  all
