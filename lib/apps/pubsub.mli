(** Robust publish-subscribe (Section 7.3), emulated on the DHT.

    Every subscriber group is identified by a key [k]; the DHT stores a
    publication counter m(k) under the group's meta key, and publication
    number i under the composite key (k, i).  Publishing reads m(k),
    stores the payload under (k, m(k)+1) and updates the counter; a batch of
    publications is aggregated per key first (the paper's Ranade-style
    aggregation), so the counter is read and written once per key no matter
    how many publications arrive.  A subscriber fetches everything since its
    last-seen sequence number by reading m(k) and the missing (k, i).

    Composite keys are packed as [key * 2^20 + seq]; topics are limited to
    2^20 - 1 publications each, and exceeding the limit raises the typed
    {!Topic_full} (a larger sequence number would carry into the topic bits
    and silently collide with the next topic's key space). *)

type t

exception Topic_full of { topic : int; seq : int }
(** Raised by every publish path (and {!composite}) when an operation would
    need a sequence number past [2^20 - 1]; always raised before any write
    for the offending topic happens. *)

val max_seq : int
(** Largest sequence number a topic can hold: [2^20 - 1]. *)

val composite : int -> int -> int
(** [composite topic seq] is the packed DHT key of publication [seq] of
    [topic].  Raises {!Topic_full} if [seq > max_seq], [Invalid_argument]
    on negative arguments. *)

val counter_key : int -> int
(** The DHT key holding a topic's publication counter m(k)
    ([composite topic 0]). *)

val create : dht:Robust_dht.t -> t

val publish :
  t -> blocked:bool array -> topic:int -> payload:string -> int option
(** Returns the assigned sequence number (1-based), or [None] if the DHT
    could not serve the request. *)

val publish_batch :
  t -> blocked:bool array -> (int * string) list -> int * int
(** Aggregated bulk publish; returns (published, failed).  Aggregation here
    is logical (one counter read/write per topic); the counter owner still
    receives one routed message per topic. *)

val publish_batch_aggregated :
  t ->
  blocked:bool array ->
  (int * string) list ->
  (int * int) * Butterfly.stats
(** Network-level aggregation, the Section 7.3 construction: every
    publication enters at a random non-blocked server; the per-topic counts
    travel through the k-ary cube with Ranade-style combining
    ({!Butterfly.aggregate}), so each counter owner receives O(d) combined
    messages no matter how hot the topic; sequence ranges are assigned in
    bulk and the payloads stored under their (topic, seq) keys as usual.
    Returns (published, failed) plus the aggregation statistics. *)

val last_seq : t -> blocked:bool array -> topic:int -> int option
(** Current value of the publication counter m(k); [Some 0] for any topic
    that has never been published to; [None] if the counter could not be
    reached. *)

val fetch_since : t -> blocked:bool array -> topic:int -> since:int -> string list option
(** Publications with sequence numbers in (since, m(k)], oldest first;
    [None] if the counter or any publication could not be read. *)

val fetch_batch :
  t ->
  blocked:bool array ->
  (int * int) list ->
  string list option array * Staged_router.stats
(** [fetch_batch t ~blocked subscribers] serves many catch-up requests at
    once: entry [i] of the input is (topic, last seen sequence number) for
    subscriber [i], entry [i] of the output its backlog (as in
    {!fetch_since}).  All counter reads and publication reads travel
    through the combining butterfly ({!Staged_router}), so a thousand
    subscribers of one hot topic cost its owner O(k d) messages, not a
    thousand.  The returned stats cover the publication-read batch. *)
