(** A Reddit-style composite application modelled on the Section 7
    primitives: subreddit-like topics served by the pub-sub emulation
    ({!Pubsub}) over the robust DHT, plus plain DHT reads/writes for vote
    tallies.

    Five traffic classes, feed reads dominating writes (the social-media
    regime): {!Feed} probes a content topic's publication counter,
    {!Post} publishes to a content topic and reposts to [fanout] follower
    feed topics (one logical action, several chained DHT operations),
    {!Comment} publishes to the subreddit's comment topic, {!Vote} writes
    the subreddit's tally key, and {!Dm} publishes to the recipient's
    direct-message topic.  Topic popularity is Zipf — a few subreddits
    absorb most of the traffic — which is exactly the hot-spot profile a
    key-targeting adversary exploits ({!hot_keys}).

    Users cycle online/offline in sessions: every [epoch] rounds a fresh
    [1 - online] fraction of users goes offline for the whole epoch and
    issues nothing.  The same cycle is meant to be compiled onto the
    server-side coarse-churn plan by the runner ({!Workload.Social}), so
    client absence and server churn move together as they do when a
    participant's machine leaves the overlay.

    Everything here is pure schedule generation; execution, per-class
    accounting and tracing live in [Workload.Social].  Determinism: each
    user's randomness is a pure function of [(seed, user)]
    ({!schedule} is domain-count independent), and the offline sets of
    {!offline} are drawn from a dedicated session stream. *)

type cls = Feed | Post | Comment | Vote | Dm

val classes : cls list
(** All five, in reporting order: feed, post, comment, vote, dm. *)

val class_name : cls -> string
(** ["feed"], ["post"], ["comment"], ["vote"], ["dm"] — the [op] field of
    the emitted [Request] trace events. *)

type budget = {
  slo : int;  (** latency SLO in rounds *)
  timeout : int;  (** rounds after arrival before the request is abandoned *)
  retries : int;  (** re-attempts allowed beyond the first *)
}

val budget : cls -> budget
(** Per-class service budget.  Interactive feed reads get the tightest
    SLO and give up early; posts get the loosest SLO (their repost
    fan-out rides in one multi-publish chain); direct messages retry the
    hardest (they must not be lost). *)

type mix = {
  feed : float;
  post : float;
  comment : float;
  vote : float;
  dm : float;
}
(** Class arrival mix (fractions; normalized by {!config}). *)

val default_mix : mix
(** 0.60 / 0.15 / 0.12 / 0.10 / 0.03 — reads dominate writes. *)

type config = {
  users : int;
  topics : int;  (** subreddit count *)
  rounds : int;
  rate : float;  (** mean new requests per online user per round (Poisson) *)
  fanout : int;  (** follower-feed publishes triggered per post *)
  zipf : float;  (** topic popularity exponent (s > 0) *)
  mix : mix;
  session : (float * int) option;
      (** [(online, epoch)]: every [epoch] rounds a fresh [1 - online]
          fraction of users goes offline ([None] = always online) *)
}

val config :
  ?users:int ->
  ?topics:int ->
  ?rounds:int ->
  ?rate:float ->
  ?fanout:int ->
  ?zipf:float ->
  ?mix:mix ->
  ?session:float * int ->
  unit ->
  config
(** Defaults: 64 users, 16 topics, 64 rounds, rate 0.25, fanout 2,
    Zipf 1.1, {!default_mix}, no sessions.  Raises [Invalid_argument] on
    non-positive counts, [rate <= 0], [fanout < 0], [zipf <= 0], negative
    mix weights or a zero mix sum, [topics > Pubsub.max_seq] (vote tally
    keys live in the plain key space, which shares topic 0's composite
    range), or a session with [online] outside (0, 1] / [epoch <= 0]. *)

(** {2 Key spaces}

    All pub-sub topics are disjoint and start at 1 (topic 0's composite
    range doubles as the plain key space, where the vote tallies live). *)

val content_topic : config -> int -> int
(** Subreddit [t]'s post topic: [1 + t]. *)

val comment_topic : config -> int -> int
(** Subreddit [t]'s comment topic: [1 + topics + t]. *)

val feed_topic : config -> int -> int
(** User [u]'s follower-feed topic (repost target): [1 + 2*topics + u]. *)

val dm_topic : config -> int -> int
(** User [u]'s direct-message topic: [1 + 2*topics + users + u]. *)

val vote_key : config -> int -> int
(** Subreddit [t]'s vote tally: the plain DHT key [t]. *)

val hot_keys : config -> (int * float) array
(** The application's hottest DHT keys, hottest first, for the adversary's
    key-targeting ranking: subreddit content-topic publication counters
    ({!Pubsub.counter_key} of {!content_topic}), weighted by the Zipf
    popularity [1 / (t+1)^zipf]. *)

(** {2 Requests} *)

type op =
  | Probe of int  (** read a topic's publication counter *)
  | Publish of int  (** publish to a topic (3 chained DHT operations) *)
  | Store of int  (** write a plain DHT key *)

val base_ops : op -> int
(** DHT operations an [op] costs when served: 1 for {!Probe}/{!Store},
    3 for {!Publish} (counter read, payload write, counter write). *)

type request = {
  user : int;
  seq : int;  (** per-user issue number *)
  arrival : int;  (** round *)
  cls : cls;
  ops : op list;
      (** chained operations, all of which must succeed within one
          attempt ({!Post} carries [1 + fanout] publishes) *)
}

val offline : config -> seed:int64 -> bool array array
(** Epoch-indexed offline sets ([.(e).(u)] = user [u] is offline during
    epoch [e]); [[||]] when [session = None].  Drawn sequentially from a
    session stream keyed only by [seed], so the sets are independent of
    how the schedule itself is generated. *)

val schedule : ?domains:int -> config -> seed:int64 -> request array
(** The full open-loop request schedule, sorted by arrival round (stable:
    within a round, requests stay in (user, seq) order).  Offline users
    issue nothing during their offline epochs.  Each user's randomness is
    a pure function of [(seed, user)], so the result is byte-identical
    for every [domains] value. *)
