(** Request-plane adversaries for workload runs.

    The DoS-style adversary of Section 1.1, specialized to hurting the
    workload: it spends a budget of [frac * n] blocked servers per round,
    and — in the [Group_kill] strategy — aims it at the servers that (it
    believes) represent the supernodes owning the most popular keys, i.e.
    exactly the groups the Zipf head hammers.  Like every adversary in this
    repo it is t-late: it only sees the server-to-group assignment through a
    {!Simnet.Snapshots} window [lateness] rounds old, so periodic
    reconfiguration invalidates its aim while a static network leaves the
    stale view accurate forever. *)

type strategy =
  | No_attack
  | Random_blocking  (** budget spent on uniformly random servers *)
  | Group_kill
      (** budget spent on the (stale-view) members of the hottest
          supernodes, hottest first *)

val parse_strategy : string -> (strategy, string) result
(** ["none"], ["random"], or ["group-kill"]. *)

val strategy_to_string : strategy -> string

type t

val create :
  ?lateness:int ->
  ?staleness:Simnet.Snapshots.staleness ->
  ?hot_keys:(int * float) array ->
  strategy:strategy ->
  frac:float ->
  rng:Prng.Stream.t ->
  dht:Apps.Robust_dht.t ->
  spec:Spec.t ->
  unit ->
  t
(** [frac] in [0, 1) is the blocked-server budget as a fraction of [n];
    [lateness] (default 0) is the observation delay in rounds, replaced by
    a per-round seeded draw (on a dedicated child of [rng]) when
    [staleness] is given.  The hot
    supernode ranking is precomputed from the spec's popularity law: each
    supernode's heat is the summed popularity weight of the keys it owns
    (Zipf weight [1/(key+1)^s], uniform weight 1), ties broken by index.
    [hot_keys], if given, replaces that ranking input with explicit
    [(key, weight)] pairs — composite applications (whose hot keys are
    packed composites, not [0 .. keys-1]) pass their real heat map.
    Raises [Invalid_argument] on [frac] outside [0, 1). *)

val observe : t -> unit
(** Push the current server-to-group assignment into the adversary's
    delayed-snapshot window; call once per round, after any
    reconfiguration. *)

val mark : t -> into:bool array -> unit
(** Spend this round's budget: set [into.(v) <- true] for each server the
    adversary blocks.  [Group_kill] blocks nothing while no snapshot is old
    enough to see.  The budget counts the adversary's own picks, whether or
    not churn or faults already blocked the same server. *)
