(** Round-by-round execution of the Reddit-style composite application
    ({!Apps.Social}) against any overlay backend ({!Backend_intf.S}),
    under the full hostile environment: reconfiguration or a static
    baseline, the t-late blocking adversary, session churn, and ordinary
    faults.

    The request plane mirrors {!Driver.run_backend} (same stream split
    order, same round structure, same fault legs) but accounts the five
    social traffic classes separately: each class has its own arrival mix
    share, its own retry/timeout budget and SLO ({!Apps.Social.budget}),
    and its own {!Stats.Log_histogram}, reported per class and merged
    overall with {!Stats.Log_histogram.merge}.  A request is a chain of
    DHT operations (a post carries its repost fan-out); one attempt must
    serve the whole chain, and its service time is the sum of the chain's
    operation costs ([base_ops + hops + waits] each).

    The session cycle compiles onto the existing coarse-churn plan: with
    [session = (online, epoch)], every [epoch] rounds the offline users
    stop issuing (enforced at schedule generation) {e and} a fresh
    [1 - online] fraction of servers is down for the epoch, drawn from the
    churn stream exactly as {!Driver.run_backend} draws its churn set.

    Tracing adds one span family, [social/*]: a [social/run] header note,
    a [social/session] note per churn epoch, and a [social/health] note
    (the backend's {!Backend_intf.S.health} probe) per reconfiguration
    period.  Requests are ordinary typed [Request] events whose [op]
    field carries the class name.

    Determinism: every decision draws from a [(seed, purpose)]-keyed
    stream, so traces and reports are byte-identical for any [domains]. *)

type config = {
  app : Apps.Social.config;
  k : int;  (** cube arity of the underlying DHT *)
  mode : Driver.mode;
  period : int;  (** reshuffle / health-probe period in rounds *)
  backend : Driver.backend;
  attack : Attack.strategy;
  frac : float;  (** adversary budget as a fraction of [n] *)
  lateness : int;  (** adversary observation delay, in rounds *)
  staleness : Simnet.Snapshots.staleness option;
  faults : Simnet.Faults.plan option;
  domains : int option;
}

val config :
  ?k:int ->
  ?mode:Driver.mode ->
  ?period:int ->
  ?backend:Driver.backend ->
  ?attack:Attack.strategy ->
  ?frac:float ->
  ?lateness:int ->
  ?staleness:Simnet.Snapshots.staleness ->
  ?faults:Simnet.Faults.plan ->
  ?domains:int ->
  Apps.Social.config ->
  config
(** Defaults as {!Driver.config}: [k = 4], the [Robust] backend,
    [Reconfig] every [period = 8] rounds, [No_attack] with [frac = 0.1]
    and [lateness = period].  Raises [Invalid_argument] on the same bound
    violations. *)

type report = {
  config : config;
  n : int;
  classes : Driver.class_report list;
      (** feed, post, comment, vote, dm — in that order *)
  total : Driver.class_report;
  hop_msgs : int;
  max_group_load : int;
  total_bits : int;
}

val run : ?trace:Simnet.Trace.t -> seed:int64 -> n:int -> config -> report
(** Execute the social workload on a fresh [n]-server overlay.  The
    backend's adversary ranks the application's real hot keys — the
    subreddit publication counters ({!Apps.Social.hot_keys}) — so a
    [Group_kill] lands on the servers the feed reads actually hit. *)

val table_lines : report -> string list
(** Per-class result table ({!Driver.table_header} format), one string
    per line, printed by [overlay_sim social] and pinned by the cram
    test. *)
