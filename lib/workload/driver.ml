type mode = Backend_intf.mode = Reconfig | Static

type churn = { frac : float; epoch : int }

type chord_params = Backend_intf.chord_knobs = {
  fingers : int option;
  succs : int option;
  period : int option;
}

type backend = Robust | Chord of chord_params

let chord_defaults = { fingers = None; succs = None; period = None }

type config = {
  spec : Spec.t;
  k : int;
  mode : mode;
  period : int;
  backend : backend;
  attack : Attack.strategy;
  frac : float;
  lateness : int;
  staleness : Simnet.Snapshots.staleness option;
  churn : churn option;
  faults : Simnet.Faults.plan option;
  retries : int;
  domains : int option;
}

let config ?(k = 4) ?(mode = Reconfig) ?(period = 8) ?(backend = Robust)
    ?(attack = Attack.No_attack)
    ?(frac = 0.1) ?lateness ?staleness ?churn ?faults ?(retries = 0) ?domains
    spec =
  let lateness = Option.value lateness ~default:period in
  if k < 2 then invalid_arg "Workload.Driver: arity k < 2";
  if period <= 0 then invalid_arg "Workload.Driver: period <= 0";
  if retries < 0 then invalid_arg "Workload.Driver: negative retries";
  if lateness < 0 then invalid_arg "Workload.Driver: negative lateness";
  (match backend with
  | Robust -> ()
  | Chord { fingers; succs; period } ->
      let knob name = function
        | Some v when v <= 0 ->
            invalid_arg
              (Printf.sprintf "Workload.Driver: chord %s must be > 0" name)
        | _ -> ()
      in
      knob "fingers" fingers;
      knob "succs" succs;
      knob "period" period);
  (match churn with
  | None -> ()
  | Some { frac; epoch } ->
      if frac < 0.0 || frac >= 1.0 || not (Float.is_finite frac) then
        invalid_arg "Workload.Driver: churn frac outside [0, 1)";
      if epoch <= 0 then invalid_arg "Workload.Driver: churn epoch <= 0");
  { spec; k; mode; period; backend; attack; frac; lateness; staleness; churn;
    faults; retries; domains }

type class_report = {
  cls : string;
  issued : int;
  ok : int;
  slo_miss : int;
  timed_out : int;
  failed : int;
  max_hops : int;
  hist : Stats.Log_histogram.t;
}

let goodput r = if r.issued = 0 then 1.0 else float_of_int r.ok /. float_of_int r.issued

let percentile r p =
  if Stats.Log_histogram.total r.hist = 0 then 0
  else Stats.Log_histogram.percentile r.hist p

type report = {
  config : config;
  n : int;
  classes : class_report list;
  total : class_report;
  hop_msgs : int;
  max_group_load : int;
  total_bits : int;
}

(* mutable per-class accumulator; frozen into class_report at the end *)
type acc = {
  a_cls : string;
  mutable a_issued : int;
  mutable a_ok : int;
  mutable a_slo_miss : int;
  mutable a_timed_out : int;
  mutable a_failed : int;
  mutable a_max_hops : int;
  a_hist : Stats.Log_histogram.t;
}

let acc_create cls =
  { a_cls = cls; a_issued = 0; a_ok = 0; a_slo_miss = 0; a_timed_out = 0;
    a_failed = 0; a_max_hops = 0; a_hist = Stats.Log_histogram.create () }

let freeze a =
  { cls = a.a_cls; issued = a.a_issued; ok = a.a_ok; slo_miss = a.a_slo_miss;
    timed_out = a.a_timed_out; failed = a.a_failed; max_hops = a.a_max_hops;
    hist = a.a_hist }

let total_of classes =
  let sum f = List.fold_left (fun a c -> a + f c) 0 classes in
  {
    cls = "all";
    issued = sum (fun c -> c.issued);
    ok = sum (fun c -> c.ok);
    slo_miss = sum (fun c -> c.slo_miss);
    timed_out = sum (fun c -> c.timed_out);
    failed = sum (fun c -> c.failed);
    max_hops = List.fold_left (fun a c -> max a c.max_hops) 0 classes;
    hist =
      (match classes with
      | [] -> Stats.Log_histogram.create ()
      | c :: rest ->
          List.fold_left
            (fun h c' -> Stats.Log_histogram.merge c'.hist h)
            c.hist (List.rev rest));
  }

type pending = { req : Gen.request; mutable attempts : int }

type attempt_outcome =
  | Served of { service : int; hops : int }
  | Attempt_failed of { hops : int }

let payload_of req =
  Printf.sprintf "v%d.%d" req.Gen.client req.Gen.seq

(* The whole request plane — admissions, retries, latency/SLO accounting,
   churn draws, fault legs, round and trace emission — runs here, once,
   against any {!Backend_intf.S}.  Every backend-specific decision
   (routing cost, maintenance, adversary binding) goes through the hooks,
   and the hook call order reproduces the pre-refactor hard-coded paths
   draw-for-draw, so fault-free same-seed traces are byte-identical. *)
let run_backend (module B : Backend_intf.S) ?(trace = Simnet.Trace.null) ~seed
    ~n (cfg : config) =
  let spec = cfg.spec in
  (* fixed split order: every stream is a function of (seed, purpose) *)
  let root = Prng.Stream.of_seed seed in
  let backend_rng = Prng.Stream.split root in
  let service_rng = Prng.Stream.split root in
  let churn_rng = Prng.Stream.split root in
  let attack_rng = Prng.Stream.split root in
  (* All fault application, loss accounting and round/trace emission go
     through the runtime.  Reorder is vacuous on the single-message
     request/reply legs and rejected rather than silently ignored. *)
  let rt =
    Simnet.Runtime.create ~trace ?faults:cfg.faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
      ~who:"Workload.Driver" ?domains:cfg.domains ~n ()
  in
  let blocked = Array.make n false in
  let ctx =
    {
      Backend_intf.n;
      k = cfg.k;
      mode = cfg.mode;
      period = cfg.period;
      attack = cfg.attack;
      frac = cfg.frac;
      lateness = cfg.lateness;
      staleness = cfg.staleness;
      retries = cfg.retries;
      spec;
      hot_keys = None;
      chord = (match cfg.backend with Chord cp -> cp | Robust -> chord_defaults);
      rng = backend_rng;
      attack_rng;
      rt;
      blocked;
    }
  in
  let b = B.create ctx in
  let churn_down = Array.make n false in
  let read_acc = acc_create "read"
  and write_acc = acc_create "write"
  and pub_acc = acc_create "publish" in
  let acc_for = function
    | Gen.Read -> read_acc
    | Gen.Write -> write_acc
    | Gen.Publish -> pub_acc
  in
  let hop_msgs = ref 0 and total_bits = ref 0 in
  let queue : pending Queue.t = Queue.create () in
  (* closed-loop client state (unused arrays stay empty for open loop) *)
  let closed_think =
    match spec.Spec.arrivals with
    | Spec.Closed_loop { think } -> Some think
    | Spec.Open_loop _ -> None
  in
  let client_streams =
    match closed_think with
    | None -> [||]
    | Some _ ->
        Array.init spec.Spec.clients (fun client ->
            Gen.client_stream ~seed ~client)
  in
  let next_issue = Array.make spec.Spec.clients 0 in
  let next_seq = Array.make spec.Spec.clients 0 in
  let outstanding = Array.make spec.Spec.clients false in
  let schedule =
    match closed_think with
    | Some _ -> [||]
    | None -> Gen.open_schedule ?domains:cfg.domains ~spec ~seed ()
  in
  let sched_pos = ref 0 in
  Simnet.Runtime.note rt ~name:"workload/run"
    ((("n", Simnet.Trace.Int n) :: B.note_fields b)
    @ [
        ("clients", Simnet.Trace.Int spec.Spec.clients);
        ("rounds", Simnet.Trace.Int spec.Spec.rounds);
        ( "arrivals",
          Simnet.Trace.String (Spec.arrivals_to_string spec.Spec.arrivals) );
        ("mix", Simnet.Trace.String (Spec.mix_to_string spec.Spec.mix));
        ( "mode",
          Simnet.Trace.String
            (match cfg.mode with Reconfig -> "reconfig" | Static -> "static") );
        ("attack", Simnet.Trace.String (Attack.strategy_to_string cfg.attack));
      ]);
  let record_gave_up p ~round ~status ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival in
    (match status with
    | `Timeout -> a.a_timed_out <- a.a_timed_out + 1
    | `Failed -> a.a_failed <- a.a_failed + 1);
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops
      ~status:(match status with `Timeout -> "timeout" | `Failed -> "failed");
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + 1 + think
    | None -> ()
  in
  let record_served p ~round ~service ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival + service in
    a.a_ok <- a.a_ok + 1;
    if latency > spec.Spec.slo then a.a_slo_miss <- a.a_slo_miss + 1;
    if hops > a.a_max_hops then a.a_max_hops <- hops;
    Stats.Log_histogram.add a.a_hist latency;
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops ~status:"ok";
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + service + think
    | None -> ()
  in
  let attempt p =
    (* Request leg, then reply leg.  Both legs are always rolled (the seed
       driver drew both Bernoullis unconditionally, and drop-only plans
       must keep consuming the fault stream identically). *)
    let lost_req = not (Simnet.Runtime.leg rt ()) in
    let lost_rep = not (Simnet.Runtime.leg rt ()) in
    if lost_req || lost_rep then Attempt_failed { hops = 0 }
    else
      match B.entry b ~rng:service_rng with
      | None -> Attempt_failed { hops = 0 }
      | Some entry ->
          let res, base_ops =
            match p.req.Gen.op with
            | Gen.Read -> (B.get b ~entry p.req.Gen.key, 1)
            | Gen.Write -> (B.put b ~entry p.req.Gen.key (payload_of p.req), 1)
            | Gen.Publish ->
                (* topic = key + 1: composite (topic, seq) then never
                   collides with the plain key space the reads/writes use *)
                (B.publish b ~entry ~topic:(p.req.Gen.key + 1) (payload_of p.req), 3)
          in
          if res.Backend_intf.ok then
            Served
              {
                service = base_ops + res.Backend_intf.hops + res.Backend_intf.waits;
                hops = res.Backend_intf.hops;
              }
          else Attempt_failed { hops = res.Backend_intf.hops }
  in
  let issue req =
    (acc_for req.Gen.op).a_issued <- (acc_for req.Gen.op).a_issued + 1;
    Queue.add { req; attempts = 0 } queue
  in
  for r = 0 to spec.Spec.rounds - 1 do
    (* 1. reconfiguration (the robust reshuffle; Chord has none — its
       analogue is the per-round maintenance slice below) *)
    B.reconfigure b ~round:r;
    (* 2. the adversary's delayed observation of the new structure *)
    B.observe b;
    (* 3. churn epoch boundary: membership redraw; backend-specific
       follow-up (Chord re-joins returners through a live introducer) *)
    (match cfg.churn with
    | Some { frac; epoch } when r mod epoch = 0 ->
        let was_down = Array.copy churn_down in
        Array.fill churn_down 0 n false;
        let down = int_of_float (frac *. float_of_int n) in
        if down > 0 then begin
          let picks = Prng.Stream.sample_distinct churn_rng n ~k:down in
          Array.iter (fun v -> churn_down.(v) <- true) picks
        end;
        B.churn b ~rng:churn_rng ~was_down ~down:churn_down;
        Simnet.Runtime.adversary rt ~kind:"churn"
          [ ("round", Simnet.Trace.Int r); ("down", Simnet.Trace.Int down) ]
    | _ -> ());
    (* 4. scheduled crash / recover transitions *)
    ignore (Simnet.Runtime.tick rt);
    (* 5. this round's blocked set: churn + crashes + adversary budget *)
    for v = 0 to n - 1 do
      blocked.(v) <- churn_down.(v) || Simnet.Runtime.crashed rt v
    done;
    B.mark_attack b ~into:blocked;
    let blocked_count =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
    in
    (* 6. per-round counters, then one maintenance slice *)
    B.begin_round b;
    B.maintain b;
    (* 7. admissions *)
    (match closed_think with
    | None ->
        while
          !sched_pos < Array.length schedule
          && schedule.(!sched_pos).Gen.arrival = r
        do
          issue schedule.(!sched_pos);
          incr sched_pos
        done
    | Some _ ->
        for c = 0 to spec.Spec.clients - 1 do
          if (not outstanding.(c)) && next_issue.(c) <= r then begin
            let op, key = Gen.draw_request spec client_streams.(c) in
            issue { Gen.client = c; seq = next_seq.(c); arrival = r; op; key };
            next_seq.(c) <- next_seq.(c) + 1;
            outstanding.(c) <- true
          end
        done);
    (* 8. one service attempt per pending request; retries requeue behind
       this round's snapshot and wait for the next round *)
    let in_flight = Queue.length queue in
    for _ = 1 to in_flight do
      let p = Queue.pop queue in
      p.attempts <- p.attempts + 1;
      match attempt p with
      | Served { service; hops } -> record_served p ~round:r ~service ~hops
      | Attempt_failed { hops } ->
          if p.attempts > cfg.retries then
            record_gave_up p ~round:r ~status:`Failed ~hops
          else if r + 1 > p.req.Gen.arrival + spec.Spec.timeout then
            record_gave_up p ~round:r ~status:`Timeout ~hops
          else Queue.add p queue
    done;
    (* 9. round boundary *)
    let e = B.emit_round b in
    hop_msgs := !hop_msgs + e.Backend_intf.req_msgs;
    total_bits := !total_bits + e.Backend_intf.bits;
    Simnet.Runtime.emit_round rt ~msgs:e.Backend_intf.msgs
      ~bits:e.Backend_intf.bits ~max_node_bits:e.Backend_intf.max_node_bits
      ~max_node_msgs:e.Backend_intf.max_node_msgs ~blocked:blocked_count;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  (* drain: whatever is still pending never completed in time *)
  Queue.iter
    (fun p -> record_gave_up p ~round:spec.Spec.rounds ~status:`Timeout ~hops:0)
    queue;
  Queue.clear queue;
  let classes = [ freeze read_acc; freeze write_acc; freeze pub_acc ] in
  {
    config = cfg;
    n;
    classes;
    total = total_of classes;
    hop_msgs = !hop_msgs;
    max_group_load = B.max_group_load b;
    total_bits = !total_bits;
  }

let run ?trace ~seed ~n (cfg : config) =
  match cfg.backend with
  | Robust -> run_backend (module Backends.Robust) ?trace ~seed ~n cfg
  | Chord _ -> run_backend (module Backends.Chord_ring) ?trace ~seed ~n cfg

let row_format : _ format =
  "%-8s %6s %6s %8s %5s %5s %5s %9s %8s %7s %9s"

let table_row c =
  Printf.sprintf row_format c.cls
    (string_of_int c.issued)
    (string_of_int c.ok)
    (Printf.sprintf "%.3f" (goodput c))
    (string_of_int (percentile c 0.50))
    (string_of_int (percentile c 0.90))
    (string_of_int (percentile c 0.99))
    (string_of_int c.slo_miss)
    (string_of_int c.timed_out)
    (string_of_int c.failed)
    (string_of_int c.max_hops)

let table_header =
  Printf.sprintf row_format "class" "issued" "ok" "goodput" "p50" "p90" "p99"
    "slo-miss" "timeout" "failed" "max-hops"

let table_lines report =
  table_header
  :: (List.map table_row report.classes @ [ table_row report.total ])
