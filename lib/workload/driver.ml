type mode = Reconfig | Static

type churn = { frac : float; epoch : int }

type chord_params = { fingers : int; succs : int; period : int }

type backend = Robust | Chord of chord_params

let chord_defaults = { fingers = -1; succs = -1; period = -1 }

type config = {
  spec : Spec.t;
  k : int;
  mode : mode;
  period : int;
  backend : backend;
  attack : Attack.strategy;
  frac : float;
  lateness : int;
  staleness : Simnet.Snapshots.staleness option;
  churn : churn option;
  faults : Simnet.Faults.plan option;
  retries : int;
  domains : int option;
}

let config ?(k = 4) ?(mode = Reconfig) ?(period = 8) ?(backend = Robust)
    ?(attack = Attack.No_attack)
    ?(frac = 0.1) ?lateness ?staleness ?churn ?faults ?(retries = 0) ?domains
    spec =
  let lateness = Option.value lateness ~default:period in
  if k < 2 then invalid_arg "Workload.Driver: arity k < 2";
  if period <= 0 then invalid_arg "Workload.Driver: period <= 0";
  if retries < 0 then invalid_arg "Workload.Driver: negative retries";
  if lateness < 0 then invalid_arg "Workload.Driver: negative lateness";
  (match backend with
  | Robust -> ()
  | Chord { fingers; succs; period } ->
      let knob name v =
        if v = 0 || v < -1 then
          invalid_arg (Printf.sprintf "Workload.Driver: chord %s must be > 0" name)
      in
      knob "fingers" fingers;
      knob "succs" succs;
      knob "period" period);
  (match churn with
  | None -> ()
  | Some { frac; epoch } ->
      if frac < 0.0 || frac >= 1.0 || not (Float.is_finite frac) then
        invalid_arg "Workload.Driver: churn frac outside [0, 1)";
      if epoch <= 0 then invalid_arg "Workload.Driver: churn epoch <= 0");
  { spec; k; mode; period; backend; attack; frac; lateness; staleness; churn;
    faults; retries; domains }

type class_report = {
  cls : string;
  issued : int;
  ok : int;
  slo_miss : int;
  timed_out : int;
  failed : int;
  max_hops : int;
  hist : Stats.Log_histogram.t;
}

let goodput r = if r.issued = 0 then 1.0 else float_of_int r.ok /. float_of_int r.issued

let percentile r p =
  if Stats.Log_histogram.total r.hist = 0 then 0
  else Stats.Log_histogram.percentile r.hist p

type report = {
  config : config;
  n : int;
  classes : class_report list;
  total : class_report;
  hop_msgs : int;
  max_group_load : int;
  total_bits : int;
}

(* mutable per-class accumulator; frozen into class_report at the end *)
type acc = {
  a_cls : string;
  mutable a_issued : int;
  mutable a_ok : int;
  mutable a_slo_miss : int;
  mutable a_timed_out : int;
  mutable a_failed : int;
  mutable a_max_hops : int;
  a_hist : Stats.Log_histogram.t;
}

let acc_create cls =
  { a_cls = cls; a_issued = 0; a_ok = 0; a_slo_miss = 0; a_timed_out = 0;
    a_failed = 0; a_max_hops = 0; a_hist = Stats.Log_histogram.create () }

let freeze a =
  { cls = a.a_cls; issued = a.a_issued; ok = a.a_ok; slo_miss = a.a_slo_miss;
    timed_out = a.a_timed_out; failed = a.a_failed; max_hops = a.a_max_hops;
    hist = a.a_hist }

type pending = { req : Gen.request; mutable attempts : int }

type attempt_outcome =
  | Served of { service : int; hops : int }
  | Attempt_failed of { hops : int }

let payload_of req =
  Printf.sprintf "v%d.%d" req.Gen.client req.Gen.seq

let run_robust ?(trace = Simnet.Trace.null) ~seed ~n (cfg : config) =
  let spec = cfg.spec in
  (* fixed split order: every stream is a function of (seed, purpose) *)
  let root = Prng.Stream.of_seed seed in
  let dht_rng = Prng.Stream.split root in
  let service_rng = Prng.Stream.split root in
  let churn_rng = Prng.Stream.split root in
  let attack_rng = Prng.Stream.split root in
  let dht = Apps.Robust_dht.create ~k:cfg.k ~rng:dht_rng ~n () in
  let adv =
    Attack.create ~lateness:cfg.lateness ?staleness:cfg.staleness
      ~strategy:cfg.attack ~frac:cfg.frac
      ~rng:attack_rng ~dht ~spec ()
  in
  (* All fault application, loss accounting and round/trace emission go
     through the runtime.  Reorder is vacuous on the single-message
     request/reply legs and rejected rather than silently ignored. *)
  let rt =
    Simnet.Runtime.create ~trace ?faults:cfg.faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
      ~who:"Workload.Driver" ?domains:cfg.domains ~n ()
  in
  let sns = Apps.Robust_dht.supernode_count dht in
  let load = Array.make sns 0 in
  let blocked = Array.make n false in
  let churn_down = Array.make n false in
  let per_msg_bits =
    Simnet.Msg_size.ids_msg ~id_bits:(Simnet.Msg_size.id_bits n) ~count:1 + 64
  in
  let read_acc = acc_create "read"
  and write_acc = acc_create "write"
  and pub_acc = acc_create "publish" in
  let acc_for = function
    | Gen.Read -> read_acc
    | Gen.Write -> write_acc
    | Gen.Publish -> pub_acc
  in
  let hop_msgs = ref 0 and max_group_load = ref 0 in
  let round_msgs = ref 0 in
  let queue : pending Queue.t = Queue.create () in
  (* closed-loop client state (unused arrays stay empty for open loop) *)
  let closed_think =
    match spec.Spec.arrivals with
    | Spec.Closed_loop { think } -> Some think
    | Spec.Open_loop _ -> None
  in
  let client_streams =
    match closed_think with
    | None -> [||]
    | Some _ ->
        Array.init spec.Spec.clients (fun client ->
            Gen.client_stream ~seed ~client)
  in
  let next_issue = Array.make spec.Spec.clients 0 in
  let next_seq = Array.make spec.Spec.clients 0 in
  let outstanding = Array.make spec.Spec.clients false in
  let schedule =
    match closed_think with
    | Some _ -> [||]
    | None -> Gen.open_schedule ?domains:cfg.domains ~spec ~seed ()
  in
  let sched_pos = ref 0 in
  Simnet.Runtime.note rt ~name:"workload/run"
    [
      ("n", Simnet.Trace.Int n);
      ("clients", Simnet.Trace.Int spec.Spec.clients);
      ("rounds", Simnet.Trace.Int spec.Spec.rounds);
      ( "arrivals",
        Simnet.Trace.String (Spec.arrivals_to_string spec.Spec.arrivals) );
      ("mix", Simnet.Trace.String (Spec.mix_to_string spec.Spec.mix));
      ( "mode",
        Simnet.Trace.String
          (match cfg.mode with Reconfig -> "reconfig" | Static -> "static") );
      ("attack", Simnet.Trace.String (Attack.strategy_to_string cfg.attack));
    ];
  let record_gave_up p ~round ~status ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival in
    (match status with
    | `Timeout -> a.a_timed_out <- a.a_timed_out + 1
    | `Failed -> a.a_failed <- a.a_failed + 1);
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops
      ~status:(match status with `Timeout -> "timeout" | `Failed -> "failed");
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + 1 + think
    | None -> ()
  in
  let record_served p ~round ~service ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival + service in
    a.a_ok <- a.a_ok + 1;
    if latency > spec.Spec.slo then a.a_slo_miss <- a.a_slo_miss + 1;
    if hops > a.a_max_hops then a.a_max_hops <- hops;
    Stats.Log_histogram.add a.a_hist latency;
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops ~status:"ok";
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + service + think
    | None -> ()
  in
  (* one DHT operation of an attempt; accounts hop messages and congestion *)
  let sub_op ~entry op =
    let r = Apps.Robust_dht.execute_at dht ~blocked ~load ~entry op in
    round_msgs := !round_msgs + 1 + r.Apps.Robust_dht.hops;
    r
  in
  let attempt p =
    (* Request leg, then reply leg.  Both legs are always rolled (the seed
       driver drew both Bernoullis unconditionally, and drop-only plans
       must keep consuming the fault stream identically). *)
    let lost_req = not (Simnet.Runtime.leg rt ()) in
    let lost_rep = not (Simnet.Runtime.leg rt ()) in
    if lost_req || lost_rep then Attempt_failed { hops = 0 }
    else
      match Apps.Robust_dht.random_entry_with dht ~rng:service_rng ~blocked with
      | None -> Attempt_failed { hops = 0 }
      | Some entry -> (
          match p.req.Gen.op with
          | Gen.Read ->
              let r = sub_op ~entry (Apps.Robust_dht.Read p.req.Gen.key) in
              if r.Apps.Robust_dht.ok then
                Served
                  { service = 1 + r.Apps.Robust_dht.hops;
                    hops = r.Apps.Robust_dht.hops }
              else Attempt_failed { hops = r.Apps.Robust_dht.hops }
          | Gen.Write ->
              let r =
                sub_op ~entry
                  (Apps.Robust_dht.Write (p.req.Gen.key, payload_of p.req))
              in
              if r.Apps.Robust_dht.ok then
                Served
                  { service = 1 + r.Apps.Robust_dht.hops;
                    hops = r.Apps.Robust_dht.hops }
              else Attempt_failed { hops = r.Apps.Robust_dht.hops }
          | Gen.Publish -> (
              (* topic = key + 1: composite (topic, seq) then never collides
                 with the plain key space the reads/writes use *)
              let topic = p.req.Gen.key + 1 in
              let ckey = Apps.Pubsub.counter_key topic in
              let c = sub_op ~entry (Apps.Robust_dht.Read ckey) in
              if not c.Apps.Robust_dht.ok then
                Attempt_failed { hops = c.Apps.Robust_dht.hops }
              else
                let m =
                  match c.Apps.Robust_dht.value with
                  | None -> 0
                  | Some s -> Option.value (int_of_string_opt s) ~default:0
                in
                let seq = m + 1 in
                let pkey = Apps.Pubsub.composite topic seq in
                let w =
                  sub_op ~entry (Apps.Robust_dht.Write (pkey, payload_of p.req))
                in
                let hops_so_far =
                  c.Apps.Robust_dht.hops + w.Apps.Robust_dht.hops
                in
                if not w.Apps.Robust_dht.ok then
                  Attempt_failed { hops = hops_so_far }
                else
                  (* counter updated last: a retried attempt re-reads the same
                     m and overwrites (topic, seq) with the same payload *)
                  let u =
                    sub_op ~entry
                      (Apps.Robust_dht.Write (ckey, string_of_int seq))
                  in
                  let hops = hops_so_far + u.Apps.Robust_dht.hops in
                  if u.Apps.Robust_dht.ok then Served { service = 3 + hops; hops }
                  else Attempt_failed { hops }))
  in
  let issue req =
    (acc_for req.Gen.op).a_issued <- (acc_for req.Gen.op).a_issued + 1;
    Queue.add { req; attempts = 0 } queue
  in
  for r = 0 to spec.Spec.rounds - 1 do
    (* 1. reconfiguration *)
    if cfg.mode = Reconfig && r > 0 && r mod cfg.period = 0 then
      Apps.Robust_dht.reshuffle dht;
    (* 2. the adversary's delayed observation of the new assignment *)
    Attack.observe adv;
    (* 3. churn epoch boundary *)
    (match cfg.churn with
    | Some { frac; epoch } when r mod epoch = 0 ->
        Array.fill churn_down 0 n false;
        let down = int_of_float (frac *. float_of_int n) in
        if down > 0 then begin
          let picks = Prng.Stream.sample_distinct churn_rng n ~k:down in
          Array.iter (fun v -> churn_down.(v) <- true) picks
        end;
        Simnet.Runtime.adversary rt ~kind:"churn"
          [ ("round", Simnet.Trace.Int r); ("down", Simnet.Trace.Int down) ]
    | _ -> ());
    (* 4. scheduled crash / recover transitions *)
    ignore (Simnet.Runtime.tick rt);
    (* 5. this round's blocked set: churn + crashes + adversary budget *)
    for v = 0 to n - 1 do
      blocked.(v) <- churn_down.(v) || Simnet.Runtime.crashed rt v
    done;
    Attack.mark adv ~into:blocked;
    let blocked_count =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
    in
    (* 6. admissions *)
    (match closed_think with
    | None ->
        while
          !sched_pos < Array.length schedule
          && schedule.(!sched_pos).Gen.arrival = r
        do
          issue schedule.(!sched_pos);
          incr sched_pos
        done
    | Some _ ->
        for c = 0 to spec.Spec.clients - 1 do
          if (not outstanding.(c)) && next_issue.(c) <= r then begin
            let op, key = Gen.draw_request spec client_streams.(c) in
            issue { Gen.client = c; seq = next_seq.(c); arrival = r; op; key };
            next_seq.(c) <- next_seq.(c) + 1;
            outstanding.(c) <- true
          end
        done);
    (* 7. one service attempt per pending request; retries requeue behind
       this round's snapshot and wait for the next round *)
    round_msgs := 0;
    Array.fill load 0 sns 0;
    let in_flight = Queue.length queue in
    for _ = 1 to in_flight do
      let p = Queue.pop queue in
      p.attempts <- p.attempts + 1;
      match attempt p with
      | Served { service; hops } -> record_served p ~round:r ~service ~hops
      | Attempt_failed { hops } ->
          if p.attempts > cfg.retries then
            record_gave_up p ~round:r ~status:`Failed ~hops
          else if r + 1 > p.req.Gen.arrival + spec.Spec.timeout then
            record_gave_up p ~round:r ~status:`Timeout ~hops
          else Queue.add p queue
    done;
    hop_msgs := !hop_msgs + !round_msgs;
    let round_max_load = Array.fold_left max 0 load in
    if round_max_load > !max_group_load then max_group_load := round_max_load;
    (* 8. round boundary *)
    Simnet.Runtime.emit_round rt ~msgs:!round_msgs
      ~bits:(!round_msgs * per_msg_bits)
      ~max_node_bits:(round_max_load * per_msg_bits)
      ~max_node_msgs:round_max_load ~blocked:blocked_count;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  (* drain: whatever is still pending never completed in time *)
  Queue.iter
    (fun p -> record_gave_up p ~round:spec.Spec.rounds ~status:`Timeout ~hops:0)
    queue;
  Queue.clear queue;
  let classes = [ freeze read_acc; freeze write_acc; freeze pub_acc ] in
  let total =
    let sum f = List.fold_left (fun a c -> a + f c) 0 classes in
    {
      cls = "all";
      issued = sum (fun c -> c.issued);
      ok = sum (fun c -> c.ok);
      slo_miss = sum (fun c -> c.slo_miss);
      timed_out = sum (fun c -> c.timed_out);
      failed = sum (fun c -> c.failed);
      max_hops = List.fold_left (fun a c -> max a c.max_hops) 0 classes;
      hist =
        Stats.Log_histogram.merge read_acc.a_hist
          (Stats.Log_histogram.merge write_acc.a_hist pub_acc.a_hist);
    }
  in
  {
    config = cfg;
    n;
    classes;
    total;
    hop_msgs = !hop_msgs;
    max_group_load = !max_group_load;
    total_bits = !hop_msgs * per_msg_bits;
  }

(* The Chord backend: the same request plane (admissions, retries,
   latency accounting — all byte-for-byte the robust path's rules) bound
   onto iterative Chord lookups instead of supernode routing.  The
   reconfiguration step is replaced by one staggered maintenance slice per
   round ([Static] disables it: the no-maintenance ablation), churn
   returners re-join through a live introducer, and a request succeeds
   when its lookup reaches a true replica holder ({!Chord.Ring.holds}) of
   the key — so stale routing state costs real hops, timeouts and
   failures.  Messages are charged per contact leg (iterative lookups pay
   request and reply), maintenance traffic carries whole successor lists. *)
let run_chord ?(trace = Simnet.Trace.null) ~seed ~n (cfg : config) cp =
  let spec = cfg.spec in
  (* fixed split order: identical purposes to the robust path *)
  let root = Prng.Stream.of_seed seed in
  let ring_rng = Prng.Stream.split root in
  let service_rng = Prng.Stream.split root in
  let churn_rng = Prng.Stream.split root in
  let attack_rng = Prng.Stream.split root in
  let ring =
    Chord.Ring.create
      ?fingers:(if cp.fingers > 0 then Some cp.fingers else None)
      ?succs:(if cp.succs > 0 then Some cp.succs else None)
      ~rng:ring_rng ~n ()
  in
  Chord.Ring.reset_ideal ring;
  let m = Chord.Ring.m ring in
  let maint_period = if cp.period > 0 then cp.period else cfg.period in
  (* zipf popularity is monotone decreasing in the key index, so the
     hottest-first ranking is the identity (uniform ties break the same) *)
  let hot_ids = Array.init spec.Spec.keys (fun k -> Chord.Ring.key_id ring k) in
  let strategy =
    match cfg.attack with
    | Attack.No_attack -> Chord.Adversary.No_attack
    | Attack.Random_blocking -> Chord.Adversary.Random_blocking
    | Attack.Group_kill -> Chord.Adversary.Succ_kill
  in
  let adv =
    Chord.Adversary.create ~lateness:cfg.lateness ?staleness:cfg.staleness
      ~strategy ~frac:cfg.frac ~rng:attack_rng ~ring ~hot_ids ()
  in
  let rt =
    Simnet.Runtime.create ~trace ?faults:cfg.faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
      ~who:"Workload.Driver" ?domains:cfg.domains ~n ()
  in
  let retry =
    if cfg.retries = 0 then Core.Retry.fixed
    else Core.Retry.make ~max_retries:cfg.retries ()
  in
  let net = Chord.Net.create ring ~rt ~period:maint_period ~retry () in
  let blocked = Array.make n false in
  let churn_down = Array.make n false in
  let avail v = Chord.Ring.is_alive ring v && not blocked.(v) in
  let lkp_bits = Simnet.Msg_size.ids_msg ~id_bits:m ~count:1 + 64 in
  let maint_bits =
    Simnet.Msg_size.ids_msg ~id_bits:m ~count:(Chord.Ring.r ring)
  in
  let read_acc = acc_create "read"
  and write_acc = acc_create "write"
  and pub_acc = acc_create "publish" in
  let acc_for = function
    | Gen.Read -> read_acc
    | Gen.Write -> write_acc
    | Gen.Publish -> pub_acc
  in
  let hop_msgs = ref 0 and total_bits = ref 0 in
  let round_msgs = ref 0 in
  (* publish sequence counters (the robust path stores these in the DHT;
     here replica placement is checked against the oracle, so only the
     counter value needs tracking — still written last, so retried
     attempts reuse the same (topic, seq)) *)
  let counters : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let queue : pending Queue.t = Queue.create () in
  let closed_think =
    match spec.Spec.arrivals with
    | Spec.Closed_loop { think } -> Some think
    | Spec.Open_loop _ -> None
  in
  let client_streams =
    match closed_think with
    | None -> [||]
    | Some _ ->
        Array.init spec.Spec.clients (fun client ->
            Gen.client_stream ~seed ~client)
  in
  let next_issue = Array.make spec.Spec.clients 0 in
  let next_seq = Array.make spec.Spec.clients 0 in
  let outstanding = Array.make spec.Spec.clients false in
  let schedule =
    match closed_think with
    | Some _ -> [||]
    | None -> Gen.open_schedule ?domains:cfg.domains ~spec ~seed ()
  in
  let sched_pos = ref 0 in
  Simnet.Runtime.note rt ~name:"workload/run"
    [
      ("n", Simnet.Trace.Int n);
      ("backend", Simnet.Trace.String "chord");
      ("m", Simnet.Trace.Int m);
      ("fingers", Simnet.Trace.Int (Chord.Ring.nf ring));
      ("succs", Simnet.Trace.Int (Chord.Ring.r ring));
      ("period", Simnet.Trace.Int maint_period);
      ("clients", Simnet.Trace.Int spec.Spec.clients);
      ("rounds", Simnet.Trace.Int spec.Spec.rounds);
      ( "arrivals",
        Simnet.Trace.String (Spec.arrivals_to_string spec.Spec.arrivals) );
      ("mix", Simnet.Trace.String (Spec.mix_to_string spec.Spec.mix));
      ( "mode",
        Simnet.Trace.String
          (match cfg.mode with Reconfig -> "reconfig" | Static -> "static") );
      ("attack", Simnet.Trace.String (Attack.strategy_to_string cfg.attack));
    ];
  let record_gave_up p ~round ~status ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival in
    (match status with
    | `Timeout -> a.a_timed_out <- a.a_timed_out + 1
    | `Failed -> a.a_failed <- a.a_failed + 1);
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops
      ~status:(match status with `Timeout -> "timeout" | `Failed -> "failed");
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + 1 + think
    | None -> ()
  in
  let record_served p ~round ~service ~hops =
    let a = acc_for p.req.Gen.op in
    let latency = round - p.req.Gen.arrival + service in
    a.a_ok <- a.a_ok + 1;
    if latency > spec.Spec.slo then a.a_slo_miss <- a.a_slo_miss + 1;
    if hops > a.a_max_hops then a.a_max_hops <- hops;
    Stats.Log_histogram.add a.a_hist latency;
    Simnet.Runtime.request rt
      ~op:(Gen.class_name p.req.Gen.op)
      ~round ~client:p.req.Gen.client ~latency ~hops ~status:"ok";
    match closed_think with
    | Some think ->
        outstanding.(p.req.Gen.client) <- false;
        next_issue.(p.req.Gen.client) <- round + service + think
    | None -> ()
  in
  (* one iterative lookup of an attempt; a replica holder must accept *)
  let lookup ~entry key =
    let kid = Chord.Ring.key_id ring key in
    let o =
      Chord.Lookup.find ring ~rt ~avail
        ~accept:(fun v -> Chord.Ring.holds ring v ~key_id:kid)
        ~from:entry ~id:kid ()
    in
    round_msgs := !round_msgs + o.Chord.Lookup.msgs;
    o
  in
  let attempt p =
    (* client request and reply legs, rolled unconditionally as in the
       robust path *)
    let lost_req = not (Simnet.Runtime.leg rt ()) in
    let lost_rep = not (Simnet.Runtime.leg rt ()) in
    if lost_req || lost_rep then Attempt_failed { hops = 0 }
    else
      match Chord.Ring.pick service_rng ~ok:avail n with
      | None -> Attempt_failed { hops = 0 }
      | Some entry -> (
          match p.req.Gen.op with
          | Gen.Read | Gen.Write ->
              let o = lookup ~entry p.req.Gen.key in
              if o.Chord.Lookup.ok then
                Served
                  {
                    service = 1 + o.Chord.Lookup.hops + o.Chord.Lookup.timeouts;
                    hops = o.Chord.Lookup.hops;
                  }
              else Attempt_failed { hops = o.Chord.Lookup.hops }
          | Gen.Publish -> (
              let topic = p.req.Gen.key + 1 in
              let ckey = Apps.Pubsub.counter_key topic in
              let c = lookup ~entry ckey in
              if not c.Chord.Lookup.ok then
                Attempt_failed { hops = c.Chord.Lookup.hops }
              else
                let seq =
                  1 + Option.value (Hashtbl.find_opt counters topic) ~default:0
                in
                let pkey = Apps.Pubsub.composite topic seq in
                let w = lookup ~entry pkey in
                let hops_so_far = c.Chord.Lookup.hops + w.Chord.Lookup.hops in
                if not w.Chord.Lookup.ok then
                  Attempt_failed { hops = hops_so_far }
                else
                  let u = lookup ~entry ckey in
                  let hops = hops_so_far + u.Chord.Lookup.hops in
                  if u.Chord.Lookup.ok then begin
                    Hashtbl.replace counters topic seq;
                    let waits =
                      c.Chord.Lookup.timeouts + w.Chord.Lookup.timeouts
                      + u.Chord.Lookup.timeouts
                    in
                    Served { service = 3 + hops + waits; hops }
                  end
                  else Attempt_failed { hops }))
  in
  let issue req =
    (acc_for req.Gen.op).a_issued <- (acc_for req.Gen.op).a_issued + 1;
    Queue.add { req; attempts = 0 } queue
  in
  for r = 0 to spec.Spec.rounds - 1 do
    (* 1. the adversary's delayed observation of the ring *)
    Chord.Adversary.observe adv;
    (* 2. churn epoch boundary: membership redraw; returners re-join *)
    (match cfg.churn with
    | Some { frac; epoch } when r mod epoch = 0 ->
        let was_down = Array.copy churn_down in
        Array.fill churn_down 0 n false;
        let down = int_of_float (frac *. float_of_int n) in
        if down > 0 then begin
          let picks = Prng.Stream.sample_distinct churn_rng n ~k:down in
          Array.iter (fun v -> churn_down.(v) <- true) picks
        end;
        for v = 0 to n - 1 do
          Chord.Ring.set_alive ring v (not churn_down.(v))
        done;
        let join_avail v =
          Chord.Ring.is_alive ring v && not (Simnet.Runtime.crashed rt v)
        in
        for v = 0 to n - 1 do
          if was_down.(v) && not churn_down.(v) then
            match
              Chord.Ring.pick churn_rng ~ok:(fun u -> u <> v && join_avail u) n
            with
            | Some via -> ignore (Chord.Net.join net ~avail:join_avail ~via v)
            | None -> ()
        done;
        Simnet.Runtime.adversary rt ~kind:"churn"
          [ ("round", Simnet.Trace.Int r); ("down", Simnet.Trace.Int down) ]
    | _ -> ());
    (* 3. scheduled crash / recover transitions *)
    ignore (Simnet.Runtime.tick rt);
    (* 4. this round's blocked set: churn + crashes + adversary budget *)
    for v = 0 to n - 1 do
      blocked.(v) <- churn_down.(v) || Simnet.Runtime.crashed rt v
    done;
    Chord.Adversary.mark adv ~into:blocked;
    let blocked_count =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
    in
    (* 5. one staggered maintenance slice — Chord's analogue of the
       reshuffle; [Static] is the no-maintenance ablation *)
    round_msgs := 0;
    let maint_before = (Chord.Net.stats net).Chord.Net.msgs in
    if cfg.mode = Reconfig then Chord.Net.tick net ~avail;
    let maint_round = (Chord.Net.stats net).Chord.Net.msgs - maint_before in
    (* 6. admissions *)
    (match closed_think with
    | None ->
        while
          !sched_pos < Array.length schedule
          && schedule.(!sched_pos).Gen.arrival = r
        do
          issue schedule.(!sched_pos);
          incr sched_pos
        done
    | Some _ ->
        for c = 0 to spec.Spec.clients - 1 do
          if (not outstanding.(c)) && next_issue.(c) <= r then begin
            let op, key = Gen.draw_request spec client_streams.(c) in
            issue { Gen.client = c; seq = next_seq.(c); arrival = r; op; key };
            next_seq.(c) <- next_seq.(c) + 1;
            outstanding.(c) <- true
          end
        done);
    (* 7. one service attempt per pending request *)
    let in_flight = Queue.length queue in
    for _ = 1 to in_flight do
      let p = Queue.pop queue in
      p.attempts <- p.attempts + 1;
      match attempt p with
      | Served { service; hops } -> record_served p ~round:r ~service ~hops
      | Attempt_failed { hops } ->
          if p.attempts > cfg.retries then
            record_gave_up p ~round:r ~status:`Failed ~hops
          else if r + 1 > p.req.Gen.arrival + spec.Spec.timeout then
            record_gave_up p ~round:r ~status:`Timeout ~hops
          else Queue.add p queue
    done;
    hop_msgs := !hop_msgs + !round_msgs;
    (* 8. round boundary *)
    let round_bits = (!round_msgs * lkp_bits) + (maint_round * maint_bits) in
    total_bits := !total_bits + round_bits;
    Simnet.Runtime.emit_round rt
      ~msgs:(!round_msgs + maint_round)
      ~bits:round_bits ~max_node_bits:0 ~max_node_msgs:0 ~blocked:blocked_count;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  Queue.iter
    (fun p -> record_gave_up p ~round:spec.Spec.rounds ~status:`Timeout ~hops:0)
    queue;
  Queue.clear queue;
  let classes = [ freeze read_acc; freeze write_acc; freeze pub_acc ] in
  let total =
    let sum f = List.fold_left (fun a c -> a + f c) 0 classes in
    {
      cls = "all";
      issued = sum (fun c -> c.issued);
      ok = sum (fun c -> c.ok);
      slo_miss = sum (fun c -> c.slo_miss);
      timed_out = sum (fun c -> c.timed_out);
      failed = sum (fun c -> c.failed);
      max_hops = List.fold_left (fun a c -> max a c.max_hops) 0 classes;
      hist =
        Stats.Log_histogram.merge read_acc.a_hist
          (Stats.Log_histogram.merge write_acc.a_hist pub_acc.a_hist);
    }
  in
  {
    config = cfg;
    n;
    classes;
    total;
    hop_msgs = !hop_msgs;
    max_group_load = 0;
    total_bits = !total_bits;
  }

let run ?trace ~seed ~n (cfg : config) =
  match cfg.backend with
  | Robust -> run_robust ?trace ~seed ~n cfg
  | Chord cp -> run_chord ?trace ~seed ~n cfg cp

let row_format : _ format =
  "%-8s %6s %6s %8s %5s %5s %5s %9s %8s %7s %9s"

let table_row c =
  Printf.sprintf row_format c.cls
    (string_of_int c.issued)
    (string_of_int c.ok)
    (Printf.sprintf "%.3f" (goodput c))
    (string_of_int (percentile c 0.50))
    (string_of_int (percentile c 0.90))
    (string_of_int (percentile c 0.99))
    (string_of_int c.slo_miss)
    (string_of_int c.timed_out)
    (string_of_int c.failed)
    (string_of_int c.max_hops)

let table_lines report =
  let header =
    Printf.sprintf row_format "class" "issued" "ok" "goodput" "p50" "p90" "p99"
      "slo-miss" "timeout" "failed" "max-hops"
  in
  header :: (List.map table_row report.classes @ [ table_row report.total ])
