(** Deterministic request generation.

    Every client owns a private {!Prng.Stream} derived purely from
    [(seed, client id)] — not by sequential splitting — so a client's
    request stream is independent of how many clients exist, which domain
    generates it, and in what order: {!open_schedule} fans generation out
    with {!Parallel.map} and is byte-identical at any domain count. *)

type op_kind = Read | Write | Publish

val class_name : op_kind -> string
(** ["read"], ["write"], ["publish"] — the wire names used by
    {!Simnet.Trace.Request} events and report tables. *)

type request = {
  client : int;
  seq : int;  (** per-client issue index, 0-based *)
  arrival : int;  (** round the request enters the system *)
  op : op_kind;
  key : int;  (** key in [0, keys) (for publishes: the topic is key + 1) *)
}

val client_stream : seed:int64 -> client:int -> Prng.Stream.t
(** The client's private stream: a pure function of [(seed, client)]. *)

val draw_request : Spec.t -> Prng.Stream.t -> op_kind * int
(** One (op, key) draw: the operation class from the mix, then the key
    from the popularity distribution.  Exactly this order, so closed-loop
    clients and the open-loop scheduler consume streams identically. *)

val open_schedule :
  ?domains:int -> spec:Spec.t -> seed:int64 -> unit -> request array
(** All open-loop arrivals of the run, ordered by (arrival round, client,
    seq).  Generation is per-client-parallel ({!Parallel.map} with
    [domains] workers, default {!Parallel.default_domains}); the result is
    the same for every [domains] value.  Raises [Invalid_argument] if the
    spec is closed-loop. *)
