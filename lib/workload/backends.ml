(* The two built-in {!Backend_intf.S} implementations: the paper's
   reconfigurable supernode DHT and the Chord ring.  Both reproduce the
   pre-refactor hard-coded driver paths draw-for-draw: the same streams
   are consumed in the same order, the same messages are charged, and the
   same trace fields are emitted, so fault-free same-seed traces are
   byte-identical to the dispatch they replaced. *)

open Backend_intf

let ok_of_dht (r : Apps.Robust_dht.op_result) =
  { ok = r.Apps.Robust_dht.ok;
    hops = r.Apps.Robust_dht.hops;
    waits = 0;
    value = r.Apps.Robust_dht.value }

(* ---------- the reconfigurable supernode DHT ---------- *)

module Robust : S = struct
  type t = {
    ctx : ctx;
    dht : Apps.Robust_dht.t;
    adv : Attack.t;
    load : int array;  (* per-supernode congestion within the round *)
    per_msg_bits : int;
    mutable round_msgs : int;
    mutable max_group_load : int;
  }

  let create ctx =
    let dht = Apps.Robust_dht.create ~k:ctx.k ~rng:ctx.rng ~n:ctx.n () in
    let adv =
      Attack.create ~lateness:ctx.lateness ?staleness:ctx.staleness
        ?hot_keys:ctx.hot_keys ~strategy:ctx.attack ~frac:ctx.frac
        ~rng:ctx.attack_rng ~dht ~spec:ctx.spec ()
    in
    let sns = Apps.Robust_dht.supernode_count dht in
    let per_msg_bits =
      Simnet.Msg_size.ids_msg ~id_bits:(Simnet.Msg_size.id_bits ctx.n) ~count:1
      + 64
    in
    { ctx; dht; adv; load = Array.make sns 0; per_msg_bits; round_msgs = 0;
      max_group_load = 0 }

  let note_fields _ = []

  let reconfigure t ~round =
    if t.ctx.mode = Reconfig && round > 0 && round mod t.ctx.period = 0 then
      Apps.Robust_dht.reshuffle t.dht

  let observe t = Attack.observe t.adv
  let churn _ ~rng:_ ~was_down:_ ~down:_ = ()
  let mark_attack t ~into = Attack.mark t.adv ~into

  let begin_round t =
    t.round_msgs <- 0;
    Array.fill t.load 0 (Array.length t.load) 0

  let maintain _ = ()

  let entry t ~rng =
    Apps.Robust_dht.random_entry_with t.dht ~rng ~blocked:t.ctx.blocked

  (* one DHT operation; accounts hop messages and per-group congestion *)
  let sub_op t ~entry op =
    let r =
      Apps.Robust_dht.execute_at t.dht ~blocked:t.ctx.blocked ~load:t.load
        ~entry op
    in
    t.round_msgs <- t.round_msgs + 1 + r.Apps.Robust_dht.hops;
    r

  let get t ~entry key = ok_of_dht (sub_op t ~entry (Apps.Robust_dht.Read key))

  let put t ~entry key payload =
    ok_of_dht (sub_op t ~entry (Apps.Robust_dht.Write (key, payload)))

  let publish t ~entry ~topic payload =
    let ckey = Apps.Pubsub.counter_key topic in
    let c = sub_op t ~entry (Apps.Robust_dht.Read ckey) in
    if not c.Apps.Robust_dht.ok then
      { ok = false; hops = c.Apps.Robust_dht.hops; waits = 0; value = None }
    else
      let m =
        match c.Apps.Robust_dht.value with
        | None -> 0
        | Some s -> Option.value (int_of_string_opt s) ~default:0
      in
      let seq = m + 1 in
      let pkey = Apps.Pubsub.composite topic seq in
      let w = sub_op t ~entry (Apps.Robust_dht.Write (pkey, payload)) in
      let hops_so_far = c.Apps.Robust_dht.hops + w.Apps.Robust_dht.hops in
      if not w.Apps.Robust_dht.ok then
        { ok = false; hops = hops_so_far; waits = 0; value = None }
      else
        (* counter updated last: a retried attempt re-reads the same m and
           overwrites (topic, seq) with the same payload *)
        let u = sub_op t ~entry (Apps.Robust_dht.Write (ckey, string_of_int seq)) in
        let hops = hops_so_far + u.Apps.Robust_dht.hops in
        { ok = u.Apps.Robust_dht.ok; hops; waits = 0;
          value = (if u.Apps.Robust_dht.ok then Some (string_of_int seq) else None) }

  let last_seq t ~entry ~topic =
    get t ~entry (Apps.Pubsub.counter_key topic)

  let emit_round t =
    let round_max_load = Array.fold_left max 0 t.load in
    if round_max_load > t.max_group_load then t.max_group_load <- round_max_load;
    {
      req_msgs = t.round_msgs;
      msgs = t.round_msgs;
      bits = t.round_msgs * t.per_msg_bits;
      max_node_bits = round_max_load * t.per_msg_bits;
      max_node_msgs = round_max_load;
    }

  let health t =
    [
      ("backend", Simnet.Trace.String "robust");
      ( "supernodes",
        Simnet.Trace.Int (Apps.Robust_dht.supernode_count t.dht) );
      ("max_group_load", Simnet.Trace.Int t.max_group_load);
    ]

  let max_group_load t = t.max_group_load
end

(* ---------- the Chord ring ---------- *)

(* The same request plane bound onto iterative Chord lookups: the
   reconfiguration step becomes one staggered maintenance slice per round
   ([Static] disables it — the no-maintenance ablation), churn returners
   re-join through a live introducer, and a request succeeds when its
   lookup reaches a true replica holder ({!Chord.Ring.holds}) of the key —
   so stale routing state costs real hops, timeouts and failures.
   Messages are charged per contact leg (iterative lookups pay request and
   reply), maintenance traffic carries whole successor lists. *)
module Chord_ring : S = struct
  type t = {
    ctx : ctx;
    ring : Chord.Ring.t;
    net : Chord.Net.t;
    adv : Chord.Adversary.t;
    maint_period : int;
    lkp_bits : int;
    maint_bits : int;
    (* publish sequence counters (the robust backend stores these in the
       DHT; here replica placement is checked against the oracle, so only
       the counter value needs tracking — still written last, so retried
       attempts reuse the same (topic, seq)) *)
    counters : (int, int) Hashtbl.t;
    mutable round_msgs : int;
    mutable maint_before : int;
    mutable maint_round : int;
  }

  let create ctx =
    let ring =
      Chord.Ring.create ?fingers:ctx.chord.fingers ?succs:ctx.chord.succs
        ~rng:ctx.rng ~n:ctx.n ()
    in
    Chord.Ring.reset_ideal ring;
    let m = Chord.Ring.m ring in
    let maint_period = Option.value ctx.chord.period ~default:ctx.period in
    (* zipf popularity is monotone decreasing in the key index, so the
       hottest-first ranking is the identity (uniform ties break the same);
       composite applications pass their own hottest-first key list *)
    let hot_ids =
      match ctx.hot_keys with
      | Some pairs -> Array.map (fun (k, _) -> Chord.Ring.key_id ring k) pairs
      | None ->
          Array.init ctx.spec.Spec.keys (fun k -> Chord.Ring.key_id ring k)
    in
    let strategy =
      match ctx.attack with
      | Attack.No_attack -> Chord.Adversary.No_attack
      | Attack.Random_blocking -> Chord.Adversary.Random_blocking
      | Attack.Group_kill -> Chord.Adversary.Succ_kill
    in
    let adv =
      Chord.Adversary.create ~lateness:ctx.lateness ?staleness:ctx.staleness
        ~strategy ~frac:ctx.frac ~rng:ctx.attack_rng ~ring ~hot_ids ()
    in
    let retry =
      if ctx.retries = 0 then Core.Retry.fixed
      else Core.Retry.make ~max_retries:ctx.retries ()
    in
    let net = Chord.Net.create ring ~rt:ctx.rt ~period:maint_period ~retry () in
    {
      ctx;
      ring;
      net;
      adv;
      maint_period;
      lkp_bits = Simnet.Msg_size.ids_msg ~id_bits:m ~count:1 + 64;
      maint_bits = Simnet.Msg_size.ids_msg ~id_bits:m ~count:(Chord.Ring.r ring);
      counters = Hashtbl.create 64;
      round_msgs = 0;
      maint_before = 0;
      maint_round = 0;
    }

  let avail t v = Chord.Ring.is_alive t.ring v && not t.ctx.blocked.(v)

  let note_fields t =
    [
      ("backend", Simnet.Trace.String "chord");
      ("m", Simnet.Trace.Int (Chord.Ring.m t.ring));
      ("fingers", Simnet.Trace.Int (Chord.Ring.nf t.ring));
      ("succs", Simnet.Trace.Int (Chord.Ring.r t.ring));
      ("period", Simnet.Trace.Int t.maint_period);
    ]

  let reconfigure _ ~round:_ = ()
  let observe t = Chord.Adversary.observe t.adv

  let churn t ~rng ~was_down ~down =
    let n = t.ctx.n in
    for v = 0 to n - 1 do
      Chord.Ring.set_alive t.ring v (not down.(v))
    done;
    let join_avail v =
      Chord.Ring.is_alive t.ring v && not (Simnet.Runtime.crashed t.ctx.rt v)
    in
    for v = 0 to n - 1 do
      if was_down.(v) && not down.(v) then
        match
          Chord.Ring.pick rng ~ok:(fun u -> u <> v && join_avail u) n
        with
        | Some via -> ignore (Chord.Net.join t.net ~avail:join_avail ~via v)
        | None -> ()
    done

  let mark_attack t ~into = Chord.Adversary.mark t.adv ~into

  let begin_round t =
    t.round_msgs <- 0;
    t.maint_before <- (Chord.Net.stats t.net).Chord.Net.msgs

  let maintain t =
    (* one staggered maintenance slice — Chord's analogue of the
       reshuffle; [Static] is the no-maintenance ablation *)
    if t.ctx.mode = Reconfig then Chord.Net.tick t.net ~avail:(avail t);
    t.maint_round <- (Chord.Net.stats t.net).Chord.Net.msgs - t.maint_before

  let entry t ~rng = Chord.Ring.pick rng ~ok:(avail t) t.ctx.n

  (* one iterative lookup; a replica holder must accept *)
  let lookup t ~entry key =
    let kid = Chord.Ring.key_id t.ring key in
    let o =
      Chord.Lookup.find t.ring ~rt:t.ctx.rt ~avail:(avail t)
        ~accept:(fun v -> Chord.Ring.holds t.ring v ~key_id:kid)
        ~from:entry ~id:kid ()
    in
    t.round_msgs <- t.round_msgs + o.Chord.Lookup.msgs;
    o

  let ok_of_lookup ?value (o : Chord.Lookup.outcome) =
    { ok = o.Chord.Lookup.ok; hops = o.Chord.Lookup.hops;
      waits = o.Chord.Lookup.timeouts;
      value = (if o.Chord.Lookup.ok then value else None) }

  let get t ~entry key = ok_of_lookup (lookup t ~entry key)
  let put t ~entry key _payload = ok_of_lookup (lookup t ~entry key)

  let publish t ~entry ~topic _payload =
    let ckey = Apps.Pubsub.counter_key topic in
    let c = lookup t ~entry ckey in
    if not c.Chord.Lookup.ok then
      { ok = false; hops = c.Chord.Lookup.hops; waits = 0; value = None }
    else
      let seq = 1 + Option.value (Hashtbl.find_opt t.counters topic) ~default:0 in
      let pkey = Apps.Pubsub.composite topic seq in
      let w = lookup t ~entry pkey in
      let hops_so_far = c.Chord.Lookup.hops + w.Chord.Lookup.hops in
      if not w.Chord.Lookup.ok then
        { ok = false; hops = hops_so_far; waits = 0; value = None }
      else
        let u = lookup t ~entry ckey in
        let hops = hops_so_far + u.Chord.Lookup.hops in
        if u.Chord.Lookup.ok then begin
          Hashtbl.replace t.counters topic seq;
          let waits =
            c.Chord.Lookup.timeouts + w.Chord.Lookup.timeouts
            + u.Chord.Lookup.timeouts
          in
          { ok = true; hops; waits; value = Some (string_of_int seq) }
        end
        else { ok = false; hops; waits = 0; value = None }

  let last_seq t ~entry ~topic =
    let value =
      Some (string_of_int (Option.value (Hashtbl.find_opt t.counters topic) ~default:0))
    in
    ok_of_lookup ?value (lookup t ~entry (Apps.Pubsub.counter_key topic))

  let emit_round t =
    let bits = (t.round_msgs * t.lkp_bits) + (t.maint_round * t.maint_bits) in
    {
      req_msgs = t.round_msgs;
      msgs = t.round_msgs + t.maint_round;
      bits;
      max_node_bits = 0;
      max_node_msgs = 0;
    }

  let health t =
    [
      ("backend", Simnet.Trace.String "chord");
      ("succ_ok", Simnet.Trace.Float (Chord.Ring.succ_ok_fraction t.ring));
      ("connected", Simnet.Trace.Bool (Chord.Ring.ring_connected t.ring));
    ]

  let max_group_load _ = 0
end
