type strategy = No_attack | Random_blocking | Group_kill

let parse_strategy = function
  | "none" -> Ok No_attack
  | "random" -> Ok Random_blocking
  | "group-kill" -> Ok Group_kill
  | s ->
      Error
        (Printf.sprintf "unknown attack %S (expected none|random|group-kill)" s)

let strategy_to_string = function
  | No_attack -> "none"
  | Random_blocking -> "random"
  | Group_kill -> "group-kill"

type t = {
  strategy : strategy;
  budget : int;
  rng : Prng.Stream.t;
  dht : Apps.Robust_dht.t;
  snapshots : int array Simnet.Snapshots.t;
  hot : int array;  (* supernode indices, hottest first *)
}

let key_weight (spec : Spec.t) key =
  match spec.Spec.popularity with
  | Spec.Uniform -> 1.0
  | Spec.Zipf s -> 1.0 /. Float.pow (float_of_int (key + 1)) s

let hot_supernodes ?hot_keys ~dht ~spec () =
  let sns = Apps.Robust_dht.supernode_count dht in
  let heat = Array.make sns 0.0 in
  (match hot_keys with
  | Some pairs ->
      (* a composite application's real hot keys, weights supplied *)
      Array.iter
        (fun (key, w) ->
          let sn = Apps.Robust_dht.supernode_of_key dht key in
          heat.(sn) <- heat.(sn) +. w)
        pairs
  | None ->
      for key = 0 to spec.Spec.keys - 1 do
        let sn = Apps.Robust_dht.supernode_of_key dht key in
        heat.(sn) <- heat.(sn) +. key_weight spec key
      done);
  let order = Array.init sns Fun.id in
  Array.sort
    (fun a b ->
      match compare heat.(b) heat.(a) with 0 -> compare a b | c -> c)
    order;
  order

let create ?(lateness = 0) ?staleness ?hot_keys ~strategy ~frac ~rng ~dht
    ~spec () =
  if frac < 0.0 || frac >= 1.0 || not (Float.is_finite frac) then
    invalid_arg "Workload.Attack: frac must be in [0, 1)";
  let n = Apps.Robust_dht.n dht in
  let snapshots =
    (* Drawn staleness gets a dedicated child stream so observation jitter
       never perturbs the attack draws; the fixed path splits nothing,
       keeping pre-staleness runs byte-identical. *)
    match staleness with
    | None -> Simnet.Snapshots.create ~lateness
    | Some staleness ->
        Simnet.Snapshots.create_drawn ~staleness ~rng:(Prng.Stream.split rng)
  in
  {
    strategy;
    budget = int_of_float (frac *. float_of_int n);
    rng;
    dht;
    snapshots;
    hot = hot_supernodes ?hot_keys ~dht ~spec ();
  }

let observe t =
  match t.strategy with
  | Group_kill ->
      Simnet.Snapshots.push t.snapshots
        (Array.copy (Apps.Robust_dht.group_of t.dht))
  | No_attack | Random_blocking -> ()

let mark_random t ~into =
  let n = Apps.Robust_dht.n t.dht in
  let chosen = Array.make n false in
  let picked = ref 0 in
  (* distinct-draw rejection: budget < n, so this terminates, and the draw
     sequence is a deterministic function of the adversary's stream *)
  while !picked < t.budget do
    let v = Prng.Stream.int t.rng n in
    if not chosen.(v) then begin
      chosen.(v) <- true;
      into.(v) <- true;
      incr picked
    end
  done

let mark_group_kill t ~into =
  match Simnet.Snapshots.view t.snapshots with
  | None -> ()
  | Some view ->
      let sns = Apps.Robust_dht.supernode_count t.dht in
      (* invert the (stale) assignment once: members.(sn) = servers the
         adversary believes represent supernode sn, ascending *)
      let members = Array.make sns [] in
      for v = Array.length view - 1 downto 0 do
        let sn = view.(v) in
        if sn >= 0 && sn < sns then members.(sn) <- v :: members.(sn)
      done;
      let left = ref t.budget in
      let hot_i = ref 0 in
      while !left > 0 && !hot_i < Array.length t.hot do
        let sn = t.hot.(!hot_i) in
        List.iter
          (fun v ->
            if !left > 0 then begin
              into.(v) <- true;
              decr left
            end)
          members.(sn);
        incr hot_i
      done

let mark t ~into =
  if t.budget > 0 then
    match t.strategy with
    | No_attack -> ()
    | Random_blocking -> mark_random t ~into
    | Group_kill -> mark_group_kill t ~into
