(** Round-by-round workload execution against the robust DHT / pub-sub
    stack, under the full hostile environment: reconfiguration (or a static
    baseline), a t-late blocking adversary ({!Attack}), coarse churn, and
    ordinary faults ({!Simnet.Faults}).

    Time is rounds.  Each round the driver (1) reshuffles the network if the
    reconfiguration period elapsed, (2) redraws the churned-out server set at
    epoch boundaries, (3) applies scheduled crash/recover transitions,
    (4) lets the adversary observe and spend its blocking budget, (5) admits
    new arrivals, and (6) gives every pending request one service attempt.

    An attempt costs [1 + hops] service rounds per DHT operation (a publish
    is three chained operations: counter read, payload write, counter
    write, and is idempotent under retry because the counter is written
    last).  A failed attempt retries next round until the retry budget is
    spent (["failed"]) or the next attempt would start past
    [arrival + timeout] (["timeout"]).  Latency of a served request is
    (attempt round - arrival) + service rounds; it misses the SLO when it
    exceeds [spec.slo].  Served latencies feed one {!Stats.Log_histogram}
    per request class, merged into the overall histogram with
    {!Stats.Log_histogram.merge}.

    Determinism: every random decision draws from a stream that is a pure
    function of [(seed, purpose)] — per-client request streams
    ({!Gen.client_stream}), a service stream for entry picks, dedicated
    churn/attack/topology streams, and the fault plan's own stream — so a
    run is byte-identical for any [domains] value (the only parallel part,
    open-loop schedule generation, is keyed per client). *)

type mode = Backend_intf.mode = Reconfig | Static

type churn = { frac : float; epoch : int }
(** Every [epoch] rounds, a fresh uniformly random [frac * n] servers are
    down for the whole epoch (coarse churn at the request-plane
    granularity). *)

type chord_params = Backend_intf.chord_knobs = {
  fingers : int option;
  succs : int option;
  period : int option;
}
(** Chord ring knobs; [None] takes the backend default
    ({!Chord.Ring.default_succs}, fingers = [m], maintenance period =
    the config [period]), resolved in one place — the Chord backend's
    [create]. *)

type backend = Robust | Chord of chord_params
(** Which overlay serves the requests.  [Robust] is the paper's
    reconfigurable supernode DHT.  [Chord of _] binds the same request
    plane (admissions, retries, latency accounting) onto iterative Chord
    lookups: [mode = Reconfig] runs one staggered {!Chord.Net.tick}
    maintenance slice per round, [mode = Static] disables maintenance
    (the ablation), [attack = Group_kill] becomes the stale-view
    successor-list attack ({!Chord.Adversary.Succ_kill}), and a request
    succeeds when its lookup is accepted by a true replica holder
    ({!Chord.Ring.holds}).  Messages are charged per contact leg, so
    iterative lookups pay request + reply where the robust path pays one
    message per hop. *)

val chord_defaults : chord_params
(** All [None]: every knob at its backend default. *)

type config = {
  spec : Spec.t;
  k : int;  (** cube arity of the underlying DHT *)
  mode : mode;
  period : int;  (** reshuffle every [period] rounds (ignored by [Static]) *)
  backend : backend;
  attack : Attack.strategy;
  frac : float;  (** adversary budget as a fraction of [n] *)
  lateness : int;  (** adversary observation delay, in rounds *)
  staleness : Simnet.Snapshots.staleness option;
      (** per-round drawn observation delay, replacing [lateness] *)
  churn : churn option;
  faults : Simnet.Faults.plan option;
      (** applied in full through {!Simnet.Runtime}: drop/duplicate/delay
          are rolled once per request leg and once per reply leg, and
          crashed servers count as blocked until they recover.  Reorder
          (vacuous on single-message legs) raises [Invalid_argument]. *)
  retries : int;  (** re-attempts allowed beyond the first *)
  domains : int option;
      (** worker domains for schedule generation and the runtime
          ([None] = {!Parallel.default_domains}); results are identical
          for every value *)
}

val config :
  ?k:int ->
  ?mode:mode ->
  ?period:int ->
  ?backend:backend ->
  ?attack:Attack.strategy ->
  ?frac:float ->
  ?lateness:int ->
  ?staleness:Simnet.Snapshots.staleness ->
  ?churn:churn ->
  ?faults:Simnet.Faults.plan ->
  ?retries:int ->
  ?domains:int ->
  Spec.t ->
  config
(** Defaults: [k = 4], the [Robust] backend, [Reconfig] every
    [period = 8] rounds, [No_attack] with [frac = 0.1] and
    [lateness = period], no churn, no faults, no retries.  Raises
    [Invalid_argument] on a non-positive period or arity, negative
    retries or lateness, a churn fraction outside [0, 1) / non-positive
    epoch, or a chord knob that is neither positive nor [-1]. *)

type class_report = {
  cls : string;  (** ["read"], ["write"], ["publish"] or ["all"] *)
  issued : int;
  ok : int;
  slo_miss : int;  (** served, but later than [spec.slo] *)
  timed_out : int;
  failed : int;  (** retry budget exhausted *)
  max_hops : int;  (** worst routing hops over served attempts *)
  hist : Stats.Log_histogram.t;  (** served latencies, in rounds *)
}

val goodput : class_report -> float
(** [ok / issued] (1.0 when nothing was issued). *)

val percentile : class_report -> float -> int
(** Latency percentile over served requests; 0 when nothing was served. *)

val total_of : class_report list -> class_report
(** Aggregate a class list into an ["all"] row; the histogram is the
    {!Stats.Log_histogram.merge} of the class histograms (exact cell-wise
    sums, so the merge order cannot matter). *)

type report = {
  config : config;
  n : int;
  classes : class_report list;  (** read, write, publish — in that order *)
  total : class_report;
      (** aggregate; its histogram is the {!Stats.Log_histogram.merge} of
          the class histograms *)
  hop_msgs : int;
      (** total request-plane messages ([Robust]: 1 + hops per DHT
          operation; [Chord]: contact legs across all lookups) *)
  max_group_load : int;
      (** busiest supernode's messages within a single round — the
          congestion quantity of Theorem 8 (0 on the Chord backend,
          which has no supernodes) *)
  total_bits : int;
      (** total message bits: request-plane traffic plus, on the Chord
          backend, maintenance traffic (successor-list sized) *)
}

val run : ?trace:Simnet.Trace.t -> seed:int64 -> n:int -> config -> report
(** Execute the workload on a fresh [n]-server DHT.  Emits, when [trace] is
    given: one [Note] run header, one [Round] per round (messages, bits,
    busiest-node load, blocked-set size), one [Request] per request at
    completion or abandonment, [Adversary]/[Fault] events for churn draws
    and crash transitions.  Requests still pending when the run ends are
    abandoned as timeouts at round [spec.rounds]. *)

val run_backend :
  (module Backend_intf.S) ->
  ?trace:Simnet.Trace.t ->
  seed:int64 ->
  n:int ->
  config ->
  report
(** [run] generalized over the overlay: the whole request plane
    (admissions, retries, SLO/latency accounting, churn draws, fault legs,
    round and trace emission) runs against any {!Backend_intf.S}, so new
    overlays plug in without editing the driver.  [cfg.backend] is only
    consulted for the Chord knobs ([ctx.chord]); the module argument
    decides the overlay.  [run] is
    [run_backend (module Backends.Robust)] / [(module Backends.Chord_ring)]. *)

val table_lines : report -> string list
(** The default per-class result table (fixed-width, one string per line,
    no trailing newline) printed by [overlay_sim workload] and pinned by the
    cram test. *)

val table_header : string
(** The table's header line, shared with any driver reporting
    {!class_report} rows (e.g. {!Social}). *)

val table_row : class_report -> string
(** One formatted table row. *)
