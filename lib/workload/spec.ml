type arrivals = Open_loop of { rate : float } | Closed_loop of { think : int }

type popularity = Uniform | Zipf of float

type mix = { read : float; write : float; publish : float }

type t = {
  clients : int;
  rounds : int;
  keys : int;
  arrivals : arrivals;
  mix : mix;
  popularity : popularity;
  slo : int;
  timeout : int;
}

let normalize_mix m =
  if m.read < 0.0 || m.write < 0.0 || m.publish < 0.0 then
    invalid_arg "Workload.Spec: negative mix weight";
  let sum = m.read +. m.write +. m.publish in
  if sum <= 0.0 then invalid_arg "Workload.Spec: mix sums to zero";
  { read = m.read /. sum; write = m.write /. sum; publish = m.publish /. sum }

let make ?(clients = 128) ?(rounds = 64) ?(keys = 256)
    ?(arrivals = Open_loop { rate = 0.25 })
    ?(mix = { read = 0.7; write = 0.2; publish = 0.1 })
    ?(popularity = Zipf 1.1) ?(slo = 8) ?(timeout = 16) () =
  if clients <= 0 then invalid_arg "Workload.Spec: clients <= 0";
  if rounds <= 0 then invalid_arg "Workload.Spec: rounds <= 0";
  if keys <= 0 then invalid_arg "Workload.Spec: keys <= 0";
  if keys >= 1 lsl 20 then
    invalid_arg "Workload.Spec: keys must stay below 2^20 (pub-sub packing)";
  (match arrivals with
  | Open_loop { rate } ->
      if rate <= 0.0 || not (Float.is_finite rate) then
        invalid_arg "Workload.Spec: open-loop rate must be positive"
  | Closed_loop { think } ->
      if think < 0 then invalid_arg "Workload.Spec: negative think time");
  (match popularity with
  | Uniform -> ()
  | Zipf s ->
      if s <= 0.0 || not (Float.is_finite s) then
        invalid_arg "Workload.Spec: zipf exponent must be positive");
  if slo <= 0 then invalid_arg "Workload.Spec: slo <= 0";
  if timeout <= 0 then invalid_arg "Workload.Spec: timeout <= 0";
  {
    clients;
    rounds;
    keys;
    arrivals;
    mix = normalize_mix mix;
    popularity;
    slo;
    timeout;
  }

let parse_arrivals s =
  match String.split_on_char ':' (String.trim s) with
  | [ "open"; r ] -> (
      match float_of_string_opt r with
      | Some rate when rate > 0.0 -> Ok (Open_loop { rate })
      | _ -> Error (Printf.sprintf "bad open-loop rate %S" r))
  | [ "closed" ] -> Ok (Closed_loop { think = 0 })
  | [ "closed"; t ] -> (
      match int_of_string_opt t with
      | Some think when think >= 0 -> Ok (Closed_loop { think })
      | _ -> Error (Printf.sprintf "bad think time %S" t))
  | _ ->
      Error
        (Printf.sprintf "bad arrivals %S (expected open:RATE or closed:THINK)"
           s)

let arrivals_to_string = function
  | Open_loop { rate } -> Printf.sprintf "open:%g" rate
  | Closed_loop { think } -> Printf.sprintf "closed:%d" think

let parse_mix s =
  let parts = String.split_on_char ',' (String.trim s) in
  let rec go acc = function
    | [] -> Ok acc
    | part :: rest -> (
        match String.split_on_char '=' (String.trim part) with
        | [ cls; w ] -> (
            match float_of_string_opt w with
            | Some weight when weight >= 0.0 -> (
                match cls with
                | "read" -> go { acc with read = weight } rest
                | "write" -> go { acc with write = weight } rest
                | "publish" -> go { acc with publish = weight } rest
                | _ -> Error (Printf.sprintf "unknown request class %S" cls))
            | _ -> Error (Printf.sprintf "bad weight %S" w))
        | _ -> Error (Printf.sprintf "bad mix component %S" part))
  in
  match go { read = 0.0; write = 0.0; publish = 0.0 } parts with
  | Error _ as e -> e
  | Ok m ->
      if m.read +. m.write +. m.publish <= 0.0 then
        Error "mix sums to zero"
      else Ok (normalize_mix m)

let mix_to_string m =
  Printf.sprintf "read=%.2f write=%.2f publish=%.2f" m.read m.write m.publish
