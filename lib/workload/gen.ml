type op_kind = Read | Write | Publish

let class_name = function
  | Read -> "read"
  | Write -> "write"
  | Publish -> "publish"

type request = {
  client : int;
  seq : int;
  arrival : int;
  op : op_kind;
  key : int;
}

(* Keyed derivation, not sequential splitting: the stream of client [c] is
   a pure function of (seed, c), so generating clients in any order, on any
   domain, or for any total client count yields the same per-client
   randomness. *)
let client_stream ~seed ~client =
  Prng.Stream.of_seed
    (Prng.Splitmix64.mix
       (Int64.add (Prng.Splitmix64.mix seed) (Int64.of_int (2 * client + 1))))

let draw_request (spec : Spec.t) s =
  let r = Prng.Stream.float s 1.0 in
  let op =
    if r < spec.Spec.mix.Spec.read then Read
    else if r < spec.Spec.mix.Spec.read +. spec.Spec.mix.Spec.write then Write
    else Publish
  in
  let key =
    match spec.Spec.popularity with
    | Spec.Uniform -> Prng.Stream.int s spec.Spec.keys
    | Spec.Zipf z -> Prng.Dist.zipf s ~n:spec.Spec.keys ~s:z - 1
  in
  (op, key)

let client_schedule ~spec ~seed ~rate client =
  let s = client_stream ~seed ~client in
  let out = ref [] and seq = ref 0 in
  for arrival = 0 to spec.Spec.rounds - 1 do
    let burst = Prng.Dist.poisson s rate in
    for _ = 1 to burst do
      let op, key = draw_request spec s in
      out := { client; seq = !seq; arrival; op; key } :: !out;
      incr seq
    done
  done;
  Array.of_list (List.rev !out)

let open_schedule ?domains ~spec ~seed () =
  let rate =
    match spec.Spec.arrivals with
    | Spec.Open_loop { rate } -> rate
    | Spec.Closed_loop _ ->
        invalid_arg "Gen.open_schedule: closed-loop spec"
  in
  let per_client =
    Parallel.map ?domains
      (client_schedule ~spec ~seed ~rate)
      (Array.init spec.Spec.clients Fun.id)
  in
  let all = Array.concat (Array.to_list per_client) in
  (* stable on the per-client concatenation: within a round, requests stay
     in (client, seq) order *)
  Array.stable_sort (fun a b -> compare a.arrival b.arrival) all;
  all
