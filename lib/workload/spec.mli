(** Workload shapes: who issues requests, when, and for what.

    A {!t} fully describes a request stream against the Section 7
    applications — everything else (attack, churn, faults, recovery) is the
    driver's concern ({!Driver.config}).  Two arrival disciplines:

    - {b open loop}: every client issues a Poisson number of new requests
      each round regardless of completions — the arrival rate is an
      exogenous fact of the environment, so queueing delay shows up in the
      latency distribution (the coordinated-omission-free regime);
    - {b closed loop}: every client keeps exactly one request outstanding
      and waits [think] rounds between a completion and its next issue, so
      the offered load adapts to the system's speed.

    Key popularity is uniform or Zipf over [keys] distinct keys; the
    operation mix splits requests into DHT reads, DHT writes, and pub-sub
    publications (a publication to topic [k] costs a counter read plus two
    writes, see {!Driver}). *)

type arrivals =
  | Open_loop of { rate : float }
      (** mean new requests per client per round (Poisson) *)
  | Closed_loop of { think : int }
      (** one outstanding request per client; [think] idle rounds between
          completion and next issue *)

type popularity = Uniform | Zipf of float  (** Zipf exponent s > 0 *)

type mix = { read : float; write : float; publish : float }
(** Fractions summing to 1 (normalized by {!make}). *)

type t = {
  clients : int;
  rounds : int;
  keys : int;
  arrivals : arrivals;
  mix : mix;
  popularity : popularity;
  slo : int;  (** latency SLO in rounds: a served request misses its SLO
                  when latency exceeds this *)
  timeout : int;  (** rounds after arrival before a request is abandoned *)
}

val make :
  ?clients:int ->
  ?rounds:int ->
  ?keys:int ->
  ?arrivals:arrivals ->
  ?mix:mix ->
  ?popularity:popularity ->
  ?slo:int ->
  ?timeout:int ->
  unit ->
  t
(** Defaults: 128 clients, 64 rounds, 256 keys, [Open_loop {rate = 0.25}],
    mix 0.7/0.2/0.1, [Zipf 1.1], SLO 8, timeout 16.  Raises
    [Invalid_argument] on non-positive counts, [rate <= 0], [think < 0],
    negative mix weights or a zero mix sum, Zipf [s <= 0], or
    [keys >= 2^20] (publish topics must fit the pub-sub packing). *)

val parse_arrivals : string -> (arrivals, string) result
(** ["open:R"] or ["closed:T"] (["closed"] alone means think 0). *)

val arrivals_to_string : arrivals -> string

val parse_mix : string -> (mix, string) result
(** Comma-separated [class=weight] pairs over [read]/[write]/[publish],
    e.g. ["read=0.7,write=0.2,publish=0.1"]; omitted classes weigh 0;
    weights are normalized. *)

val mix_to_string : mix -> string
