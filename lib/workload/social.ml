type config = {
  app : Apps.Social.config;
  k : int;
  mode : Driver.mode;
  period : int;
  backend : Driver.backend;
  attack : Attack.strategy;
  frac : float;
  lateness : int;
  staleness : Simnet.Snapshots.staleness option;
  faults : Simnet.Faults.plan option;
  domains : int option;
}

let config ?(k = 4) ?(mode = Backend_intf.Reconfig) ?(period = 8)
    ?(backend = Driver.Robust) ?(attack = Attack.No_attack) ?(frac = 0.1)
    ?lateness ?staleness ?faults ?domains app =
  let lateness = Option.value lateness ~default:period in
  if k < 2 then invalid_arg "Workload.Social: arity k < 2";
  if period <= 0 then invalid_arg "Workload.Social: period <= 0";
  if lateness < 0 then invalid_arg "Workload.Social: negative lateness";
  (match backend with
  | Driver.Robust -> ()
  | Driver.Chord { fingers; succs; period } ->
      let knob name = function
        | Some v when v <= 0 ->
            invalid_arg
              (Printf.sprintf "Workload.Social: chord %s must be > 0" name)
        | _ -> ()
      in
      knob "fingers" fingers;
      knob "succs" succs;
      knob "period" period);
  { app; k; mode; period; backend; attack; frac; lateness; staleness; faults;
    domains }

type report = {
  config : config;
  n : int;
  classes : Driver.class_report list;
  total : Driver.class_report;
  hop_msgs : int;
  max_group_load : int;
  total_bits : int;
}

(* mutable per-class accumulator; frozen into Driver.class_report *)
type acc = {
  a_cls : Apps.Social.cls;
  mutable a_issued : int;
  mutable a_ok : int;
  mutable a_slo_miss : int;
  mutable a_timed_out : int;
  mutable a_failed : int;
  mutable a_max_hops : int;
  a_hist : Stats.Log_histogram.t;
}

let acc_create cls =
  { a_cls = cls; a_issued = 0; a_ok = 0; a_slo_miss = 0; a_timed_out = 0;
    a_failed = 0; a_max_hops = 0; a_hist = Stats.Log_histogram.create () }

let freeze a =
  {
    Driver.cls = Apps.Social.class_name a.a_cls;
    issued = a.a_issued;
    ok = a.a_ok;
    slo_miss = a.a_slo_miss;
    timed_out = a.a_timed_out;
    failed = a.a_failed;
    max_hops = a.a_max_hops;
    hist = a.a_hist;
  }

let cls_index = function
  | Apps.Social.Feed -> 0
  | Apps.Social.Post -> 1
  | Apps.Social.Comment -> 2
  | Apps.Social.Vote -> 3
  | Apps.Social.Dm -> 4

type pending = { req : Apps.Social.request; mutable attempts : int }

type attempt_outcome =
  | Served of { service : int; hops : int }
  | Attempt_failed of { hops : int }

let payload_of (req : Apps.Social.request) =
  Printf.sprintf "u%d.%d" req.Apps.Social.user req.Apps.Social.seq

let mix_to_string (m : Apps.Social.mix) =
  String.concat ","
    (List.map2
       (fun name w -> Printf.sprintf "%s=%s" name (Stats.Float_text.repr w))
       [ "feed"; "post"; "comment"; "vote"; "dm" ]
       [ m.Apps.Social.feed; m.post; m.comment; m.vote; m.dm ])

(* The social request plane: {!Driver.run_backend}'s structure (same
   stream split order, same round steps, same fault legs) with five
   per-class budgets/histograms, chained-operation attempts, session
   churn, and the [social/*] span family. *)
let run_backend (module B : Backend_intf.S) ?(trace = Simnet.Trace.null) ~seed
    ~n (cfg : config) =
  let app = cfg.app in
  (* fixed split order, as in {!Driver.run_backend} *)
  let root = Prng.Stream.of_seed seed in
  let backend_rng = Prng.Stream.split root in
  let service_rng = Prng.Stream.split root in
  let churn_rng = Prng.Stream.split root in
  let attack_rng = Prng.Stream.split root in
  let rt =
    Simnet.Runtime.create ~trace ?faults:cfg.faults
      ~supports:[ `Drop; `Duplicate; `Delay; `Crash; `Recover ]
      ~who:"Workload.Social" ?domains:cfg.domains ~n ()
  in
  let blocked = Array.make n false in
  (* The chord backend's internal lookup-retry policy gets the most
     patient class's budget; per-request retries are per-class below. *)
  let max_retries =
    List.fold_left
      (fun a c -> max a (Apps.Social.budget c).Apps.Social.retries)
      0 Apps.Social.classes
  in
  let spec =
    Spec.make ~clients:app.Apps.Social.users ~rounds:app.Apps.Social.rounds
      ~keys:app.Apps.Social.topics
      ~arrivals:(Spec.Open_loop { rate = app.Apps.Social.rate })
      ~popularity:(Spec.Zipf app.Apps.Social.zipf) ()
  in
  let ctx =
    {
      Backend_intf.n;
      k = cfg.k;
      mode = cfg.mode;
      period = cfg.period;
      attack = cfg.attack;
      frac = cfg.frac;
      lateness = cfg.lateness;
      staleness = cfg.staleness;
      retries = max_retries;
      spec;
      (* the adversary targets the application's real hot spots: the
         subreddit publication counters, hottest first *)
      hot_keys = Some (Apps.Social.hot_keys app);
      chord =
        (match cfg.backend with
        | Driver.Chord cp -> cp
        | Driver.Robust -> Driver.chord_defaults);
      rng = backend_rng;
      attack_rng;
      rt;
      blocked;
    }
  in
  let b = B.create ctx in
  let churn_down = Array.make n false in
  let offline = Apps.Social.offline app ~seed in
  let schedule = Apps.Social.schedule ?domains:cfg.domains app ~seed in
  let sched_pos = ref 0 in
  let accs = Array.of_list (List.map acc_create Apps.Social.classes) in
  let acc_for cls = accs.(cls_index cls) in
  let hop_msgs = ref 0 and total_bits = ref 0 in
  let queue : pending Queue.t = Queue.create () in
  Simnet.Runtime.note rt ~name:"social/run"
    ((("n", Simnet.Trace.Int n) :: B.note_fields b)
    @ [
        ("users", Simnet.Trace.Int app.Apps.Social.users);
        ("topics", Simnet.Trace.Int app.Apps.Social.topics);
        ("rounds", Simnet.Trace.Int app.Apps.Social.rounds);
        ("fanout", Simnet.Trace.Int app.Apps.Social.fanout);
        ("rate", Simnet.Trace.Float app.Apps.Social.rate);
        ("mix", Simnet.Trace.String (mix_to_string app.Apps.Social.mix));
        ( "session",
          Simnet.Trace.String
            (match app.Apps.Social.session with
            | None -> "-"
            | Some (online, epoch) ->
                Printf.sprintf "%s:%d" (Stats.Float_text.repr online) epoch) );
        ( "mode",
          Simnet.Trace.String
            (match cfg.mode with
            | Backend_intf.Reconfig -> "reconfig"
            | Backend_intf.Static -> "static") );
        ("attack", Simnet.Trace.String (Attack.strategy_to_string cfg.attack));
      ]);
  let record_gave_up p ~round ~status ~hops =
    let a = acc_for p.req.Apps.Social.cls in
    let latency = round - p.req.Apps.Social.arrival in
    (match status with
    | `Timeout -> a.a_timed_out <- a.a_timed_out + 1
    | `Failed -> a.a_failed <- a.a_failed + 1);
    Simnet.Runtime.request rt
      ~op:(Apps.Social.class_name p.req.Apps.Social.cls)
      ~round ~client:p.req.Apps.Social.user ~latency ~hops
      ~status:(match status with `Timeout -> "timeout" | `Failed -> "failed")
  in
  let record_served p ~round ~service ~hops =
    let a = acc_for p.req.Apps.Social.cls in
    let budget = Apps.Social.budget p.req.Apps.Social.cls in
    let latency = round - p.req.Apps.Social.arrival + service in
    a.a_ok <- a.a_ok + 1;
    if latency > budget.Apps.Social.slo then a.a_slo_miss <- a.a_slo_miss + 1;
    if hops > a.a_max_hops then a.a_max_hops <- hops;
    Stats.Log_histogram.add a.a_hist latency;
    Simnet.Runtime.request rt
      ~op:(Apps.Social.class_name p.req.Apps.Social.cls)
      ~round ~client:p.req.Apps.Social.user ~latency ~hops ~status:"ok"
  in
  let attempt p =
    let lost_req = not (Simnet.Runtime.leg rt ()) in
    let lost_rep = not (Simnet.Runtime.leg rt ()) in
    if lost_req || lost_rep then Attempt_failed { hops = 0 }
    else
      match B.entry b ~rng:service_rng with
      | None -> Attempt_failed { hops = 0 }
      | Some entry ->
          let payload = payload_of p.req in
          (* the whole chain must succeed within this attempt; a post's
             repost fan-out rides in the same chain *)
          let rec exec ops ~service ~hops =
            match ops with
            | [] -> Served { service; hops }
            | op :: rest ->
                let res =
                  match op with
                  | Apps.Social.Probe topic -> B.last_seq b ~entry ~topic
                  | Apps.Social.Publish topic -> B.publish b ~entry ~topic payload
                  | Apps.Social.Store key -> B.put b ~entry key payload
                in
                let hops = hops + res.Backend_intf.hops in
                if res.Backend_intf.ok then
                  exec rest
                    ~service:
                      (service + Apps.Social.base_ops op
                     + res.Backend_intf.hops + res.Backend_intf.waits)
                    ~hops
                else Attempt_failed { hops }
          in
          exec p.req.Apps.Social.ops ~service:0 ~hops:0
  in
  let issue req =
    let a = acc_for req.Apps.Social.cls in
    a.a_issued <- a.a_issued + 1;
    Queue.add { req; attempts = 0 } queue
  in
  let rounds = app.Apps.Social.rounds in
  for r = 0 to rounds - 1 do
    B.reconfigure b ~round:r;
    B.observe b;
    (* session epoch boundary: the offline users already issue nothing
       (schedule generation); here the same cycle churns the servers *)
    (match app.Apps.Social.session with
    | Some (online, epoch) when r mod epoch = 0 ->
        let was_down = Array.copy churn_down in
        Array.fill churn_down 0 n false;
        let down = int_of_float ((1.0 -. online) *. float_of_int n) in
        if down > 0 then begin
          let picks = Prng.Stream.sample_distinct churn_rng n ~k:down in
          Array.iter (fun v -> churn_down.(v) <- true) picks
        end;
        B.churn b ~rng:churn_rng ~was_down ~down:churn_down;
        Simnet.Runtime.adversary rt ~kind:"churn"
          [ ("round", Simnet.Trace.Int r); ("down", Simnet.Trace.Int down) ];
        let e = r / epoch in
        let off_users =
          if e < Array.length offline then
            Array.fold_left
              (fun a o -> if o then a + 1 else a)
              0
              offline.(e)
          else 0
        in
        Simnet.Runtime.note rt ~name:"social/session"
          [
            ("round", Simnet.Trace.Int r);
            ("epoch", Simnet.Trace.Int e);
            ("offline_users", Simnet.Trace.Int off_users);
            ("down_servers", Simnet.Trace.Int down);
          ]
    | _ -> ());
    ignore (Simnet.Runtime.tick rt);
    for v = 0 to n - 1 do
      blocked.(v) <- churn_down.(v) || Simnet.Runtime.crashed rt v
    done;
    B.mark_attack b ~into:blocked;
    let blocked_count =
      Array.fold_left (fun a b -> if b then a + 1 else a) 0 blocked
    in
    B.begin_round b;
    B.maintain b;
    if r > 0 && r mod cfg.period = 0 then
      Simnet.Runtime.note rt ~name:"social/health"
        (("round", Simnet.Trace.Int r) :: B.health b);
    while
      !sched_pos < Array.length schedule
      && schedule.(!sched_pos).Apps.Social.arrival = r
    do
      issue schedule.(!sched_pos);
      incr sched_pos
    done;
    let in_flight = Queue.length queue in
    for _ = 1 to in_flight do
      let p = Queue.pop queue in
      p.attempts <- p.attempts + 1;
      let budget = Apps.Social.budget p.req.Apps.Social.cls in
      match attempt p with
      | Served { service; hops } -> record_served p ~round:r ~service ~hops
      | Attempt_failed { hops } ->
          if p.attempts > budget.Apps.Social.retries then
            record_gave_up p ~round:r ~status:`Failed ~hops
          else if
            r + 1 > p.req.Apps.Social.arrival + budget.Apps.Social.timeout
          then record_gave_up p ~round:r ~status:`Timeout ~hops
          else Queue.add p queue
    done;
    let e = B.emit_round b in
    hop_msgs := !hop_msgs + e.Backend_intf.req_msgs;
    total_bits := !total_bits + e.Backend_intf.bits;
    Simnet.Runtime.emit_round rt ~msgs:e.Backend_intf.msgs
      ~bits:e.Backend_intf.bits ~max_node_bits:e.Backend_intf.max_node_bits
      ~max_node_msgs:e.Backend_intf.max_node_msgs ~blocked:blocked_count;
    Simnet.Runtime.advance rt ~rounds:1
  done;
  Queue.iter
    (fun p -> record_gave_up p ~round:rounds ~status:`Timeout ~hops:0)
    queue;
  Queue.clear queue;
  let classes = Array.to_list (Array.map freeze accs) in
  {
    config = cfg;
    n;
    classes;
    total = Driver.total_of classes;
    hop_msgs = !hop_msgs;
    max_group_load = B.max_group_load b;
    total_bits = !total_bits;
  }

let run ?trace ~seed ~n (cfg : config) =
  match cfg.backend with
  | Driver.Robust -> run_backend (module Backends.Robust) ?trace ~seed ~n cfg
  | Driver.Chord _ ->
      run_backend (module Backends.Chord_ring) ?trace ~seed ~n cfg

let table_lines report =
  Driver.table_header
  :: (List.map Driver.table_row report.classes
     @ [ Driver.table_row report.total ])
