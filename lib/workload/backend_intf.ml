(** The request-plane contract between {!Driver} (and {!Social}) and an
    overlay backend.

    The driver owns the workload: admissions, retries, timeout/SLO
    accounting, the churn draw, the fault legs, and round/trace emission.
    A backend owns the overlay: how requests route and what they cost
    ({!S.get}/{!S.put}/{!S.publish}), what periodic structure change means
    ({!S.reconfigure}/{!S.maintain}), how the adversary binds to the
    topology ({!S.observe}/{!S.mark_attack}), and what a health probe
    reports ({!S.health}).  New overlays (Kademlia, per ROADMAP) plug in by
    implementing {!S}; the driver never pattern-matches on a concrete
    backend.

    Determinism contract: a backend must draw randomness only from the
    streams the driver hands it ([ctx.rng], [ctx.attack_rng], and the
    per-call [rng] arguments), must consume those streams identically for
    identical inputs, and must route every fault roll and trace event
    through [ctx.rt]. *)

type mode = Reconfig | Static

type chord_knobs = {
  fingers : int option;  (** finger-table length; [None] = id-space width m *)
  succs : int option;  (** successor-list length; [None] = backend default *)
  period : int option;  (** maintenance period; [None] = the driver period *)
}
(** Chord ring knobs.  [None] everywhere means "backend default", resolved
    in the Chord backend's [create] — the only place defaults are applied. *)

type ctx = {
  n : int;
  k : int;  (** cube arity of the robust DHT *)
  mode : mode;
  period : int;  (** reconfiguration / default maintenance period *)
  attack : Attack.strategy;
  frac : float;
  lateness : int;
  staleness : Simnet.Snapshots.staleness option;
  retries : int;  (** the driver's retry budget (Chord maintenance reuses it) *)
  spec : Spec.t;  (** request spec; [spec.keys] bounds the plain key space *)
  hot_keys : (int * float) array option;
      (** overrides the adversary's hot-key ranking: [(key, weight)] pairs,
          hottest first ([None] = rank [0 .. spec.keys-1] by [spec]
          popularity).  Composite applications pass their real hot keys. *)
  chord : chord_knobs;  (** ring knobs (ignored by non-Chord backends) *)
  rng : Prng.Stream.t;  (** backend topology stream (DHT scatter / ring ids) *)
  attack_rng : Prng.Stream.t;  (** the adversary's stream *)
  rt : Simnet.Runtime.t;  (** fault legs, crash state, trace emission *)
  blocked : bool array;
      (** the driver-owned per-round blocked set; backends read it during
          request execution and write it in {!S.mark_attack} *)
}

type op_result = {
  ok : bool;
  hops : int;  (** routing hops used (accumulated over a chained op) *)
  waits : int;  (** timeout rounds spent on dead contacts (0 on robust) *)
  value : string option;  (** for reads / sequence probes *)
}

type round_emit = {
  req_msgs : int;  (** request-plane messages this round (drives hop_msgs) *)
  msgs : int;  (** total messages incl. maintenance (drives the Round event) *)
  bits : int;  (** total bits this round *)
  max_node_bits : int;
  max_node_msgs : int;
}

module type S = sig
  type t

  val create : ctx -> t

  val note_fields : t -> (string * Simnet.Trace.value) list
  (** Backend-specific fields of the run-header note, spliced between the
      ["n"] field and the workload fields (empty on the robust backend so
      pre-refactor traces stay byte-identical). *)

  val reconfigure : t -> round:int -> unit
  (** Start-of-round structure change (robust: reshuffle when the period
      elapsed under [Reconfig]; chord: nothing — its analogue is
      {!maintain}). *)

  val observe : t -> unit
  (** The adversary's (delayed) observation of the current structure. *)

  val churn : t -> rng:Prng.Stream.t -> was_down:bool array -> down:bool array -> unit
  (** Epoch-boundary membership change: [down] is the freshly drawn churn
      set, [was_down] the previous epoch's.  Chord flips ring liveness and
      re-joins returners through a live introducer (consuming [rng]
      identically to the pre-refactor driver); robust needs nothing. *)

  val mark_attack : t -> into:bool array -> unit
  (** Spend the adversary's blocking budget into the blocked set. *)

  val begin_round : t -> unit
  (** Reset per-round counters (message tallies, congestion loads). *)

  val maintain : t -> unit
  (** One maintenance slice (chord: a staggered {!Chord.Net.tick} under
      [Reconfig], nothing under [Static]; robust: nothing). *)

  val entry : t -> rng:Prng.Stream.t -> int option
  (** A uniformly random available entry server drawn from [rng]. *)

  val get : t -> entry:int -> int -> op_result
  val put : t -> entry:int -> int -> string -> op_result

  val publish : t -> entry:int -> topic:int -> string -> op_result
  (** The three-op publish chain (counter read, payload write, counter
      write — counter last, so a retried attempt reuses the same
      sequence number). *)

  val last_seq : t -> entry:int -> topic:int -> op_result
  (** Probe a topic's publication counter ([value] holds the count). *)

  val emit_round : t -> round_emit
  (** Close the round's accounting (also folds the round's congestion into
      {!max_group_load}). *)

  val health : t -> (string * Simnet.Trace.value) list
  (** A cheap structural health probe (robust: supernode census; chord:
      successor-list integrity).  Only emitted by drivers that ask for it,
      so the pre-refactor trace goldens never see it. *)

  val max_group_load : t -> int
  (** Busiest supernode's messages within a single round so far (0 where
      the notion does not apply). *)
end
