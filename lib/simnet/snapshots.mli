(** Delayed observation for t-late adversaries (Section 1.1): the adversary
    may only use topological information that is at least [lateness] rounds
    old.  The simulation pushes one topology snapshot per round; [view]
    returns the newest snapshot old enough for the adversary to see.

    Beyond the paper's fixed integer t, lateness can be a per-round seeded
    {e draw} from a {!staleness} distribution ({!create_drawn}), making
    "almost up-to-date" (expected t < 1) a real experimental axis: with
    [Mixed 0.25] the adversary sees the current round's topology three
    rounds out of four. *)

type staleness =
  | Fixed of int  (** the paper's t-late adversary *)
  | Mixed of float
      (** expected lateness [f]: [floor f] plus a Bernoulli([f - floor f])
          extra round, drawn per push *)
  | Uniform of int * int  (** uniform on the inclusive range [lo..hi] *)

val staleness_max : staleness -> int
(** Largest lateness the distribution can draw (sizing for the ring). *)

val staleness_of_string : string -> (staleness, string) result
(** ["3"] → [Fixed 3]; ["2.5"] → [Mixed 2.5] (any float literal with a
    ['.'] or exponent); ["1..4"] → [Uniform (1, 4)]. *)

val staleness_to_string : staleness -> string
(** Inverse of {!staleness_of_string} ([Mixed] keeps its ['.'], so
    [Mixed 3.] renders as ["3.0"], distinct from [Fixed 3]). *)

type 'a t

val create : lateness:int -> 'a t
(** [lateness = 0] models the 0-late (fully informed) adversary.  Consumes
    no randomness, ever — byte-compatible with pre-staleness behavior. *)

val create_drawn : staleness:staleness -> rng:Prng.Stream.t -> 'a t
(** Lateness redrawn from [staleness] on every {!push}.  [Fixed n] keeps
    [rng] untouched (identical to [create ~lateness:n]); the other
    distributions consume draws only from [rng], which the caller should
    dedicate (split) to this buffer. *)

val lateness : 'a t -> int
(** Maximum lateness the buffer can exhibit ({!staleness_max} of its
    distribution); for {!create} this is the constructor argument. *)

val staleness : 'a t -> staleness

val current_lateness : 'a t -> int
(** The lateness in force for the current round (last draw). *)

val push : 'a t -> 'a -> unit
(** Record the snapshot for the next round (first push = round 0), then
    redraw the round's lateness. *)

val pushed : 'a t -> int
(** Number of snapshots recorded so far. *)

val view : 'a t -> 'a option
(** Newest snapshot that is at least the current drawn lateness rounds
    old, i.e. if [k] snapshots have been pushed (rounds [0..k-1], current
    round [k-1]), the snapshot of round [k - 1 - current]; [None] while no
    snapshot is old enough. *)

val view_at : 'a t -> int -> 'a option
(** [view_at t r] is the snapshot of round [r] if the adversary may see it
    (i.e. it is old enough under the current draw) and it is still
    retained. *)
