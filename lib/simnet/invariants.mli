(** Structural invariant checking for reconfigurable overlays.

    The reconfiguration drivers promise two things after every epoch or
    window: each rebuilt Hamilton cycle is well-formed (a single cycle
    covering exactly the new node set), and the surviving topology is
    connected.  Under the paper's fault-free model both hold by
    construction; under an injected fault plan ({!Faults}) they are exactly
    the properties that must *never* fail silently — a driver that cannot
    guarantee them reports a typed {!violation} instead of handing out a
    wrong topology.

    The checkers are pure and topology-agnostic (successor arrays and
    neighbor functions), so they live in [simnet] below the protocol
    layer. *)

type violation =
  | Successor_out_of_range of { cycle : int; node : int; succ : int }
      (** [succ] is not a node of the new network *)
  | Successor_not_injective of { cycle : int; node : int; succ : int }
      (** two nodes share a successor: the "cycle" branches *)
  | Not_single_cycle of { cycle : int; reached : int; size : int }
      (** following successors from node 0 closes after [reached] < [size]
          hops: the permutation splits into several orbits *)
  | Size_mismatch of { cycle : int; got : int; expected : int }
  | Disconnected of { reachable : int; total : int }
      (** BFS from the lowest live node reaches only [reachable] of
          [total] *)

val describe : violation -> string
(** One-line human-readable rendering. *)

val kind_of : violation -> string
(** Stable wire name of the violation's constructor
    ([successor_out_of_range], [successor_not_injective],
    [not_single_cycle], [size_mismatch], [disconnected]) — the [kind]
    field of {!event} and the vocabulary of {!Corruption.advertised}. *)

val event : violation -> Trace.event
(** The typed trace event for a violation: a [Note] named
    ["invariant/violation"] carrying the violation kind and its numbers. *)

val check_cycle : ?cycle:int -> int array -> (unit, violation) result
(** Validate one successor array: every entry in range, injective, and a
    single cycle through all nodes.  [cycle] (default 0) only labels the
    violation. *)

val check_cycles : m:int -> int array array -> (unit, violation) result
(** Validate a family of successor arrays over the same [m] nodes (the
    H-graph shape rebuilt by Algorithm 3): sizes match and each array
    passes {!check_cycle}. *)

val fold_cycle :
  ?cycle:int -> init:'a -> f:('a -> violation -> 'a) -> int array -> 'a
(** Fold over {e every} defect of one successor array, in deterministic
    order: each out-of-range entry and each successor collision in node
    order first; then — only when the array is a clean permutation, since
    orbit-chasing a broken map is meaningless — one [Not_single_cycle] per
    orbit beyond the one containing node 0 ([reached] is that orbit's
    length).  {!check_cycle} stops at the first of these; this API exists
    so corruption triage can report all of them. *)

val check_cycle_all : ?cycle:int -> int array -> violation list
(** All defects of one successor array ({!fold_cycle} collected in order);
    [[]] iff {!check_cycle} returns [Ok ()]. *)

val check_cycles_all : m:int -> int array array -> violation list
(** All defects of a cycle family: per cycle, a [Size_mismatch] when its
    length differs from [m] plus its {!check_cycle_all} list. *)

val check_succs_connected :
  m:int -> int array array -> (unit, violation) result
(** BFS connectivity of the union multigraph of the successor arrays over
    [m] nodes, following only in-range pointers (both directions) — the
    part of a corrupted topology a node can still route over. *)

val check_all : m:int -> int array array -> violation list
(** {!check_cycles_all} followed by the {!check_succs_connected}
    violation, if any — the complete defect list of a (possibly
    corrupted) topology, and the convergence oracle of
    {!Core.Stabilize}: a state is repaired exactly when this is [[]]. *)

val reachable : n:int -> start:int -> neighbors:(int -> int array) -> int
(** Number of nodes reachable from [start] (including it) following
    [neighbors]. *)

val check_connected :
  n:int -> neighbors:(int -> int array) -> (unit, violation) result
(** BFS connectivity over an arbitrary adjacency function ([n = 0] is
    vacuously connected). *)
