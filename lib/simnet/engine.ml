type losses = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_lost : int;
  subset_lost : int;
}

(* Reusable flat mailbox: parallel [srcs]/[msgs] arrays with a fill
   pointer, grown by doubling and reused across rounds (reset is
   [len <- 0], keeping capacity).  Replaces the per-message
   [(int * 'msg) list] cells: a steady-state send writes two array slots
   and allocates nothing, where the list representation allocated a
   tuple + cons per send and another cons per message at delivery
   ([List.rev]).  Slots past [len] may retain stale ['msg] values until
   overwritten; simulation messages are small and short-lived, so we
   trade that retention for not paying a clear per round. *)
type 'msg mailbox = {
  mutable srcs : int array;
  mutable msgs : 'msg array;
  mutable len : int;
}

let mailbox_create () = { srcs = [||]; msgs = [||]; len = 0 }

let mailbox_push mb ~src msg =
  let cap = Array.length mb.msgs in
  if mb.len = cap then begin
    let cap' = if cap = 0 then 8 else 2 * cap in
    let srcs' = Array.make cap' 0 in
    Array.blit mb.srcs 0 srcs' 0 mb.len;
    (* [msg] doubles as the filler element, so no dummy value of type
       ['msg] is ever needed. *)
    let msgs' = Array.make cap' msg in
    Array.blit mb.msgs 0 msgs' 0 mb.len;
    mb.srcs <- srcs';
    mb.msgs <- msgs'
  end;
  mb.srcs.(mb.len) <- src;
  mb.msgs.(mb.len) <- msg;
  mb.len <- mb.len + 1

(* The queued messages as an oldest-first [(src, msg)] list — the order
   the list-based engine produced after its [List.rev]. *)
let mailbox_to_list mb =
  let acc = ref [] in
  for i = mb.len - 1 downto 0 do
    acc := (mb.srcs.(i), mb.msgs.(i)) :: !acc
  done;
  !acc

type 'msg t = {
  n : int;
  msg_bits : 'msg -> int;
  mutable round : int;
  mutable blocked : int -> bool;
  (* Messages queued during the current round, keyed by destination; each
     entry passed the send-time checks (src and dst non-blocked at send). *)
  pending : 'msg mailbox array;
  (* Messages held back by a delay fault, keyed by destination:
     (due_round, src, msg), newest first.  Always empty without faults. *)
  mutable delayed : (int * int * 'msg) list array;
  (* Whether any [send] was attempted this round; a [set_blocked] after that
     point would mis-apply the blocking rule to already-queued messages. *)
  mutable sent_this_round : bool;
  faults : Faults.t option;
  mutable lost_dropped : int;
  mutable lost_duplicated : int;
  mutable lost_delayed : int;
  mutable lost_crash : int;
  mutable lost_subset : int;
  metrics : Metrics.t option;
  trace : Trace.t;
}

let nobody_blocked _ = false

let create ?(metrics = true) ?(trace = Trace.null) ?faults ~n ~msg_bits () =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  let faults =
    match faults with
    | Some plan when not (Faults.is_none plan) -> Some (Faults.install plan ~n)
    | _ -> None
  in
  {
    n;
    msg_bits;
    round = 0;
    blocked = nobody_blocked;
    pending = Array.init n (fun _ -> mailbox_create ());
    delayed = Array.make n [];
    sent_this_round = false;
    faults;
    lost_dropped = 0;
    lost_duplicated = 0;
    lost_delayed = 0;
    lost_crash = 0;
    lost_subset = 0;
    metrics = (if metrics then Some (Metrics.create ~n) else None);
    trace;
  }

let n t = t.n
let round t = t.round

let losses t =
  {
    dropped = t.lost_dropped;
    duplicated = t.lost_duplicated;
    delayed = t.lost_delayed;
    crash_lost = t.lost_crash;
    subset_lost = t.lost_subset;
  }

let fault_plan t = Option.map Faults.plan t.faults

let is_crashed t v =
  match t.faults with Some f -> Faults.crashed f v | None -> false

let set_blocked t f =
  if t.sent_this_round then
    invalid_arg "Engine.set_blocked: called after sends in this round";
  t.blocked <- f

let is_blocked t v = t.blocked v

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg ("Engine." ^ name ^ ": node out of range")

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent_this_round <- true;
  if is_crashed t src || is_crashed t dst then
    (* A crashed endpoint behaves like a permanently blocked one, except the
       loss is observable in [losses]. *)
    t.lost_crash <- t.lost_crash + 1
  else if
    (* Send-time half of the blocking rule: src non-blocked in the send round
       and dst non-blocked in the send round. *)
    not (t.blocked src) && not (t.blocked dst)
  then begin
    (match t.metrics with
    | Some m -> Metrics.on_send m ~node:src ~bits:(t.msg_bits msg)
    | None -> ());
    mailbox_push t.pending.(dst) ~src msg
  end

(* Apply per-message fault rolls to an inbox (oldest first), returning the
   surviving messages in order.  Rolls are drawn in arrival order so the
   fault stream's consumption is a pure function of the traffic. *)
let apply_message_faults t f ~dst inbox =
  let traced = Trace.enabled t.trace in
  let out = ref [] in
  List.iter
    (fun (src, msg) ->
      if Faults.roll_drop f then begin
        t.lost_dropped <- t.lost_dropped + 1;
        if traced then
          Trace.emit t.trace
            (Trace.Fault
               {
                 kind = "drop";
                 round = t.round;
                 fields = [ ("src", Trace.Int src); ("dst", Trace.Int dst) ];
               })
      end
      else
        let hold = Faults.roll_delay f in
        if hold > 0 then begin
          let due = t.round + hold in
          t.lost_delayed <- t.lost_delayed + 1;
          t.delayed.(dst) <- (due, src, msg) :: t.delayed.(dst);
          if traced then
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = "delay";
                   round = t.round;
                   fields =
                     [
                       ("src", Trace.Int src);
                       ("dst", Trace.Int dst);
                       ("until", Trace.Int due);
                     ];
                 })
        end
        else if Faults.roll_duplicate f then begin
          t.lost_duplicated <- t.lost_duplicated + 1;
          out := (src, msg) :: (src, msg) :: !out;
          if traced then
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = "duplicate";
                   round = t.round;
                   fields = [ ("src", Trace.Int src); ("dst", Trace.Int dst) ];
                 })
        end
        else out := (src, msg) :: !out)
    inbox;
  List.rev !out

let apply_reorder t f ~dst inbox =
  match inbox with
  | [] | [ _ ] -> inbox
  | _ ->
      let arr = Array.of_list inbox in
      if Faults.roll_reorder f arr then begin
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Fault
               {
                 kind = "reorder";
                 round = t.round;
                 fields =
                   [
                     ("dst", Trace.Int dst);
                     ("msgs", Trace.Int (Array.length arr));
                   ];
               });
        Array.to_list arr
      end
      else inbox

let deliver t computes =
  (* Crash/recover transitions fire at the round boundary, before this
     round's deliveries. *)
  (match t.faults with
  | None -> ()
  | Some f ->
      let transitions = Faults.tick f ~round:t.round in
      if Trace.enabled t.trace then
        List.iter
          (fun (node, kind) ->
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = (match kind with `Crash -> "crash" | `Recover -> "recover");
                   round = t.round;
                   fields = [ ("node", Trace.Int node) ];
                 }))
          transitions);
  (* Delivery-time half of the rule: dst must also be non-blocked in the
     delivery round.  [computes dst] says whether dst runs its compute step
     this round; if not, the inbox content is lost (and counted). *)
  let inboxes = Array.make t.n [] in
  let subset_lost_now = ref 0 in
  for dst = 0 to t.n - 1 do
    let mb = t.pending.(dst) in
    let queued_len = mb.len in
    (* Messages whose delay expired this round re-enter ahead of fresh
       traffic; they already passed their fault rolls when first delayed. *)
    let matured =
      match t.faults with
      | None -> []
      | Some _ ->
          let held = t.delayed.(dst) in
          if held = [] then []
          else begin
            let due, still =
              List.partition (fun (d, _, _) -> d <= t.round) held
            in
            t.delayed.(dst) <- still;
            List.rev_map (fun (_, src, msg) -> (src, msg)) due
          end
    in
    if queued_len > 0 || matured <> [] then begin
      if is_crashed t dst then
        t.lost_crash <- t.lost_crash + queued_len + List.length matured
      else if t.blocked dst then
        (* Lost per the Section 1.1 blocking rule; not a fault, not counted. *)
        ()
      else if not (computes dst) then begin
        let k = queued_len + List.length matured in
        t.lost_subset <- t.lost_subset + k;
        subset_lost_now := !subset_lost_now + k
      end
      else begin
        let fresh = mailbox_to_list mb in
        let inbox =
          match t.faults with
          | None -> fresh
          | Some f ->
              apply_reorder t f ~dst
                (matured @ apply_message_faults t f ~dst fresh)
        in
        (match t.metrics with
        | Some m ->
            List.iter
              (fun (_, msg) -> Metrics.on_recv m ~node:dst ~bits:(t.msg_bits msg))
              inbox
        | None -> ());
        inboxes.(dst) <- inbox
      end
    end;
    mb.len <- 0
  done;
  if !subset_lost_now > 0 && Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Note
         {
           name = "engine/subset_lost";
           fields =
             [
               ("round", Trace.Int t.round);
               ("msgs", Trace.Int !subset_lost_now);
             ];
         });
  inboxes

let end_round t =
  let summary =
    match t.metrics with Some m -> Some (Metrics.finish_round m) | None -> None
  in
  if Trace.enabled t.trace then begin
    let blocked = ref 0 in
    for v = 0 to t.n - 1 do
      if t.blocked v then incr blocked
    done;
    let ev =
      match summary with
      | Some s -> Trace.round_of_summary ~blocked:!blocked s
      | None ->
          Trace.Round
            {
              round = t.round;
              msgs = 0;
              bits = 0;
              max_node_bits = 0;
              max_node_msgs = 0;
              blocked = !blocked;
            }
    in
    Trace.emit t.trace ev
  end;
  t.round <- t.round + 1;
  t.blocked <- nobody_blocked;
  t.sent_this_round <- false

let deliver_and_step t f =
  let inboxes = deliver t (fun _ -> true) in
  let r = t.round in
  for v = 0 to t.n - 1 do
    if not (t.blocked v) && not (is_crashed t v) then
      f ~round:r ~me:v ~inbox:inboxes.(v)
  done;
  end_round t

let deliver_and_step_subset t ~nodes f =
  let member = Array.make t.n false in
  Array.iter
    (fun v ->
      check_node t v "deliver_and_step_subset";
      member.(v) <- true)
    nodes;
  let inboxes = deliver t (fun v -> member.(v)) in
  let r = t.round in
  Array.iter
    (fun v ->
      if not (t.blocked v) && not (is_crashed t v) then
        f ~round:r ~me:v ~inbox:inboxes.(v))
    nodes;
  end_round t

let metrics t =
  match t.metrics with
  | Some m -> m
  | None -> invalid_arg "Engine.metrics: metrics disabled"
