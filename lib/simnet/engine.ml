type losses = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_lost : int;
  subset_lost : int;
}

(* ---------- sharded struct-of-arrays round core ----------

   Nodes are split into K = ceil(n / 2^shard_bits) destination shards.
   A send is appended to the staging lane for its (sender-shard,
   dest-shard) pair: three parallel planes (srcs, dsts, msgs) with a fill
   pointer, grown by doubling and reused across rounds.  The int planes
   are Bigarrays — unboxed, outside the scanned heap, and safely shared
   across domains; the msgs plane is an [Obj.t array] so one immediate
   dummy ([Obj.repr 0]) serves every message type (a polymorphic ['msg]
   dummy would tempt the compiler into flat float arrays) and clearing a
   consumed slot is a plain fill, so no round retains message payloads it
   already delivered.

   Delivery merges each dest shard's column of K lanes with a counting
   sort: count per-destination arrivals, prefix-sum into offsets, then
   scatter into one contiguous (srcs, msgs) run per shard.  A node's
   inbox is then the slice [offs.(d) .. offs.(d+1)) of its shard — a
   linear sweep instead of n random mailbox hops.

   Determinism: the scatter walks lanes in (sender-shard asc, push-order
   asc) order, so a destination's inbox order is "sender shard first,
   then send order".  Every driver in this repository sends only from the
   compute step with [~src:me], and compute runs over ascending node ids,
   so this equals the historical global send order at ANY shard count and
   ANY domain count — same-seed traces are byte-identical whether the
   round ran on 1 domain or 8.  (A manual out-of-compute send with
   descending [src] across shard boundaries is the one case where the
   order differs from strict chronology; the .mli documents the order
   contract as sender-shard-major.)

   Domain parallelism: with [domains > 1] the merge phase (and, on the
   fault-free fast paths, inbox construction / sharded compute) runs one
   shard per task via [Parallel.iter].  Each task touches only its own
   shard's planes and its own row of lanes, so the phases are data-race
   free, and the merged order above is position-determined — parallelism
   cannot reorder anything.  Fault rolls, metrics, and trace emission
   stay sequential: the fault stream's consumption must remain a pure
   function of the traffic, in global destination order. *)

type iplane = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let iplane len : iplane =
  Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max len 1)

let obj_nil : Obj.t = Obj.repr 0

type lane = {
  mutable l_srcs : iplane;
  mutable l_dsts : iplane;
  mutable l_msgs : Obj.t array;
  mutable l_len : int;
  mutable l_cap : int;
}

type shard = {
  sh_base : int;
  sh_size : int;
  sh_counts : iplane; (* per-dst arrival counts, reused as scatter cursors *)
  sh_offs : iplane; (* sh_size + 1 prefix offsets into the merged planes *)
  mutable sh_srcs : iplane; (* merged arrivals, grouped by destination *)
  mutable sh_msgs : Obj.t array;
  mutable sh_cap : int;
  mutable sh_len : int;
}

(* A node's merged inbox as a zero-allocation window over its shard's
   planes; reused across nodes, valid only during the compute callback. *)
type 'msg slice = {
  mutable s_srcs : iplane;
  mutable s_msgs : Obj.t array;
  mutable s_lo : int;
  mutable s_hi : int;
}

type 'msg t = {
  n : int;
  msg_bits : 'msg -> int;
  shard_bits : int;
  shard_count : int;
  shards : shard array;
  lanes : lane array; (* shard_count^2, row-major by sender shard *)
  domains : int;
  (* Hosted engines (Runtime.engine) share the runtime's fault handle and
     leave crash/recover ticking to it. *)
  owns_tick : bool;
  mutable round : int;
  mutable blocked : int -> bool;
  (* Messages held back by a delay fault, keyed by destination:
     (due_round, src, msg), newest first.  [[||]] until the first delay
     fault fires, so fault-free million-node runs never pay n empty
     lists. *)
  mutable delayed : (int * int * 'msg) list array;
  (* Reusable inbox-list cells for the list-based delivery path; [[||]]
     until that path first runs (the flat path never allocates them). *)
  mutable inboxes : (int * 'msg) list array;
  (* Destinations whose [inboxes] cell was set this round (slow path), so
     the post-compute clear touches exactly those. *)
  mutable touched : int array;
  mutable touched_len : int;
  mutable cleanup : [ `None | `Offs | `Touched ];
  (* Whether any [send] was attempted this round; a [set_blocked] after that
     point would mis-apply the blocking rule to already-queued messages. *)
  mutable sent_this_round : bool;
  faults : Faults.t option;
  mutable lost_dropped : int;
  mutable lost_duplicated : int;
  mutable lost_delayed : int;
  mutable lost_crash : int;
  mutable lost_subset : int;
  metrics : Metrics.t option;
  trace : Trace.t;
}

let nobody_blocked _ = false

(* 2^14 destinations per shard keeps a shard's merged planes and offset
   table L2-resident while bounding the lane table at K^2 = 4096 records
   for n = 10^6.  OVERLAY_SHARD_BITS overrides for tests that want many
   shards at small n. *)
let default_shard_bits () =
  let bits =
    match Sys.getenv_opt "OVERLAY_SHARD_BITS" with
    | Some s -> ( match int_of_string_opt (String.trim s) with Some b -> b | None -> 14)
    | None -> 14
  in
  min 20 (max 4 bits)

let make ?(metrics = true) ?(trace = Trace.null) ?shard_bits ~domains ~faults
    ~owns_tick ~n ~msg_bits () =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  let shard_bits =
    match shard_bits with
    | Some b -> min 20 (max 4 b)
    | None -> default_shard_bits ()
  in
  let size = 1 lsl shard_bits in
  let shard_count = (n + size - 1) / size in
  let shards =
    Array.init shard_count (fun s ->
        let base = s * size in
        let sz = min size (n - base) in
        {
          sh_base = base;
          sh_size = sz;
          sh_counts = iplane sz;
          sh_offs = iplane (sz + 1);
          sh_srcs = iplane 0;
          sh_msgs = [||];
          sh_cap = 0;
          sh_len = 0;
        })
  in
  let lanes =
    Array.init (shard_count * shard_count) (fun _ ->
        { l_srcs = iplane 0; l_dsts = iplane 0; l_msgs = [||]; l_len = 0; l_cap = 0 })
  in
  {
    n;
    msg_bits;
    shard_bits;
    shard_count;
    shards;
    lanes;
    domains = max 1 domains;
    owns_tick;
    round = 0;
    blocked = nobody_blocked;
    delayed = [||];
    inboxes = [||];
    touched = [||];
    touched_len = 0;
    cleanup = `None;
    sent_this_round = false;
    faults;
    lost_dropped = 0;
    lost_duplicated = 0;
    lost_delayed = 0;
    lost_crash = 0;
    lost_subset = 0;
    metrics = (if metrics then Some (Metrics.create ~n) else None);
    trace;
  }

let create ?metrics ?trace ?faults ?domains ?shard_bits ~n ~msg_bits () =
  let faults =
    match faults with
    | Some plan when not (Faults.is_none plan) -> Some (Faults.install plan ~n)
    | _ -> None
  in
  let domains =
    match domains with Some d -> d | None -> Parallel.default_domains ()
  in
  make ?metrics ?trace ?shard_bits ~domains ~faults ~owns_tick:true ~n ~msg_bits ()

let create_hosted ?metrics ?shard_bits ~trace ~domains ~faults ~n ~msg_bits () =
  make ?metrics ~trace ?shard_bits ~domains ~faults ~owns_tick:false ~n ~msg_bits
    ()

let n t = t.n
let round t = t.round
let domains t = t.domains
let shard_count t = t.shard_count

let losses t =
  {
    dropped = t.lost_dropped;
    duplicated = t.lost_duplicated;
    delayed = t.lost_delayed;
    crash_lost = t.lost_crash;
    subset_lost = t.lost_subset;
  }

let fault_plan t = Option.map Faults.plan t.faults

let is_crashed t v =
  match t.faults with Some f -> Faults.crashed f v | None -> false

let set_blocked t f =
  if t.sent_this_round then
    invalid_arg "Engine.set_blocked: called after sends in this round";
  t.blocked <- f

let is_blocked t v = t.blocked v

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg ("Engine." ^ name ^ ": node out of range")

let grow_lane lane =
  let cap' = max 64 (2 * lane.l_cap) in
  let srcs' = iplane cap' and dsts' = iplane cap' in
  if lane.l_len > 0 then begin
    Bigarray.Array1.blit
      (Bigarray.Array1.sub lane.l_srcs 0 lane.l_len)
      (Bigarray.Array1.sub srcs' 0 lane.l_len);
    Bigarray.Array1.blit
      (Bigarray.Array1.sub lane.l_dsts 0 lane.l_len)
      (Bigarray.Array1.sub dsts' 0 lane.l_len)
  end;
  let msgs' = Array.make cap' obj_nil in
  Array.blit lane.l_msgs 0 msgs' 0 lane.l_len;
  lane.l_srcs <- srcs';
  lane.l_dsts <- dsts';
  lane.l_msgs <- msgs';
  lane.l_cap <- cap'

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent_this_round <- true;
  if is_crashed t src || is_crashed t dst then
    (* A crashed endpoint behaves like a permanently blocked one, except the
       loss is observable in [losses]. *)
    t.lost_crash <- t.lost_crash + 1
  else if
    (* Send-time half of the blocking rule: src non-blocked in the send round
       and dst non-blocked in the send round. *)
    not (t.blocked src) && not (t.blocked dst)
  then begin
    (match t.metrics with
    | Some m -> Metrics.on_send m ~node:src ~bits:(t.msg_bits msg)
    | None -> ());
    let lane =
      Array.unsafe_get t.lanes
        (((src lsr t.shard_bits) * t.shard_count) + (dst lsr t.shard_bits))
    in
    let len = lane.l_len in
    if len = lane.l_cap then grow_lane lane;
    Bigarray.Array1.unsafe_set lane.l_srcs len src;
    Bigarray.Array1.unsafe_set lane.l_dsts len dst;
    Array.unsafe_set lane.l_msgs len (Obj.repr msg);
    lane.l_len <- len + 1
  end

(* ---------- merge phase ---------- *)

(* Merge dest shard [ki]'s column of lanes into its contiguous planes and
   reset the lanes.  Pure per-shard work: safe to run one task per shard. *)
let merge_shard t ki =
  let sh = Array.unsafe_get t.shards ki in
  let k = t.shard_count in
  let counts = sh.sh_counts and offs = sh.sh_offs in
  let base = sh.sh_base and sz = sh.sh_size in
  Bigarray.Array1.fill counts 0;
  let total = ref 0 in
  for si = 0 to k - 1 do
    let lane = Array.unsafe_get t.lanes ((si * k) + ki) in
    let dsts = lane.l_dsts in
    for i = 0 to lane.l_len - 1 do
      let d = Bigarray.Array1.unsafe_get dsts i - base in
      Bigarray.Array1.unsafe_set counts d (Bigarray.Array1.unsafe_get counts d + 1)
    done;
    total := !total + lane.l_len
  done;
  let acc = ref 0 in
  for d = 0 to sz - 1 do
    Bigarray.Array1.unsafe_set offs d !acc;
    acc := !acc + Bigarray.Array1.unsafe_get counts d
  done;
  Bigarray.Array1.unsafe_set offs sz !acc;
  (* counts become the scatter cursors *)
  Bigarray.Array1.blit (Bigarray.Array1.sub offs 0 sz) counts;
  if !total > sh.sh_cap then begin
    let cap' = max 1024 (max !total (2 * sh.sh_cap)) in
    sh.sh_srcs <- iplane cap';
    sh.sh_msgs <- Array.make cap' obj_nil;
    sh.sh_cap <- cap'
  end;
  sh.sh_len <- !total;
  let m_srcs = sh.sh_srcs and m_msgs = sh.sh_msgs in
  (* Scatter in (sender-shard, push-order) order — the engine's inbox
     order contract — and clear each lane's payload refs behind us. *)
  for si = 0 to k - 1 do
    let lane = Array.unsafe_get t.lanes ((si * k) + ki) in
    let dsts = lane.l_dsts and srcs = lane.l_srcs and msgs = lane.l_msgs in
    for i = 0 to lane.l_len - 1 do
      let d = Bigarray.Array1.unsafe_get dsts i - base in
      let pos = Bigarray.Array1.unsafe_get counts d in
      Bigarray.Array1.unsafe_set counts d (pos + 1);
      Bigarray.Array1.unsafe_set m_srcs pos (Bigarray.Array1.unsafe_get srcs i);
      Array.unsafe_set m_msgs pos (Array.unsafe_get msgs i)
    done;
    Array.fill msgs 0 lane.l_len obj_nil;
    lane.l_len <- 0
  done

let staged_total t =
  let total = ref 0 in
  Array.iter (fun lane -> total := !total + lane.l_len) t.lanes;
  !total

(* Per-round domain spawning only pays for itself on real work; below
   this many staged messages even an 8-domain merge runs sequentially. *)
let parallel_threshold = 1 lsl 15

let use_parallel t ~staged =
  t.domains > 1 && t.shard_count > 1 && staged >= parallel_threshold

let each_shard t ~parallel f =
  if parallel then Parallel.iter ~domains:t.domains f t.shard_count
  else
    for ki = 0 to t.shard_count - 1 do
      f ki
    done

(* ---------- list-based delivery (the compatibility path) ---------- *)

let ensure_inboxes t =
  if Array.length t.inboxes = 0 then t.inboxes <- Array.make t.n []

let ensure_delayed t =
  if Array.length t.delayed = 0 then t.delayed <- Array.make t.n []

let touch t dst =
  if t.touched_len = Array.length t.touched then begin
    let cap' = max 64 (2 * t.touched_len) in
    let touched' = Array.make cap' 0 in
    Array.blit t.touched 0 touched' 0 t.touched_len;
    t.touched <- touched'
  end;
  t.touched.(t.touched_len) <- dst;
  t.touched_len <- t.touched_len + 1

(* The merged slice as an oldest-first [(src, msg)] list — the order the
   list-based engine produced after its [List.rev]. *)
let slice_to_list sh lo hi : (int * _) list =
  let m_srcs = sh.sh_srcs and m_msgs = sh.sh_msgs in
  let acc = ref [] in
  for i = hi - 1 downto lo do
    acc :=
      (Bigarray.Array1.unsafe_get m_srcs i, Obj.obj (Array.unsafe_get m_msgs i))
      :: !acc
  done;
  !acc

(* Apply per-message fault rolls to an inbox (oldest first), returning the
   surviving messages in order.  Rolls are drawn in arrival order so the
   fault stream's consumption is a pure function of the traffic. *)
let apply_message_faults t f ~dst inbox =
  let traced = Trace.enabled t.trace in
  let out = ref [] in
  List.iter
    (fun (src, msg) ->
      if Faults.roll_drop f then begin
        t.lost_dropped <- t.lost_dropped + 1;
        if traced then
          Trace.emit t.trace
            (Trace.Fault
               {
                 kind = "drop";
                 round = t.round;
                 fields = [ ("src", Trace.Int src); ("dst", Trace.Int dst) ];
               })
      end
      else
        let hold = Faults.roll_delay f in
        if hold > 0 then begin
          let due = t.round + hold in
          t.lost_delayed <- t.lost_delayed + 1;
          ensure_delayed t;
          t.delayed.(dst) <- (due, src, msg) :: t.delayed.(dst);
          if traced then
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = "delay";
                   round = t.round;
                   fields =
                     [
                       ("src", Trace.Int src);
                       ("dst", Trace.Int dst);
                       ("until", Trace.Int due);
                     ];
                 })
        end
        else if Faults.roll_duplicate f then begin
          t.lost_duplicated <- t.lost_duplicated + 1;
          out := (src, msg) :: (src, msg) :: !out;
          if traced then
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = "duplicate";
                   round = t.round;
                   fields = [ ("src", Trace.Int src); ("dst", Trace.Int dst) ];
                 })
        end
        else out := (src, msg) :: !out)
    inbox;
  List.rev !out

let apply_reorder t f ~dst inbox =
  match inbox with
  | [] | [ _ ] -> inbox
  | _ ->
      let arr = Array.of_list inbox in
      if Faults.roll_reorder f arr then begin
        if Trace.enabled t.trace then
          Trace.emit t.trace
            (Trace.Fault
               {
                 kind = "reorder";
                 round = t.round;
                 fields =
                   [
                     ("dst", Trace.Int dst);
                     ("msgs", Trace.Int (Array.length arr));
                   ];
               });
        Array.to_list arr
      end
      else inbox

(* Fast-path inbox construction for dest shard [ki]: no faults, no
   metrics, every node computes — only the delivery-time blocked check
   remains.  Writes only this shard's [inboxes] cells, so shards can run
   in parallel. *)
let build_lists_shard t ki =
  let sh = Array.unsafe_get t.shards ki in
  let offs = sh.sh_offs in
  let inboxes = t.inboxes in
  for d = 0 to sh.sh_size - 1 do
    let lo = Bigarray.Array1.unsafe_get offs d in
    let hi = Bigarray.Array1.unsafe_get offs (d + 1) in
    if hi > lo then begin
      let dst = sh.sh_base + d in
      (* Lost per the Section 1.1 blocking rule; not a fault, not counted. *)
      if not (t.blocked dst) then
        Array.unsafe_set inboxes dst (slice_to_list sh lo hi)
    end
  done;
  Array.fill sh.sh_msgs 0 sh.sh_len obj_nil

(* Full per-destination delivery: crash / blocked / subset accounting,
   matured delays, fault rolls and metrics, in global destination order so
   the fault stream consumption is unchanged from the unsharded engine.
   Sequential by construction. *)
let deliver_slow t computes =
  let subset_lost_now = ref 0 in
  let have_delayed = Array.length t.delayed > 0 in
  for dst = 0 to t.n - 1 do
    let ki = dst lsr t.shard_bits in
    let sh = Array.unsafe_get t.shards ki in
    let d = dst - sh.sh_base in
    let lo = Bigarray.Array1.unsafe_get sh.sh_offs d in
    let hi = Bigarray.Array1.unsafe_get sh.sh_offs (d + 1) in
    let queued_len = hi - lo in
    (* Messages whose delay expired this round re-enter ahead of fresh
       traffic; they already passed their fault rolls when first delayed. *)
    let matured =
      match t.faults with
      | None -> []
      | Some _ ->
          if not have_delayed then []
          else
            let held = t.delayed.(dst) in
            if held = [] then []
            else begin
              let due, still =
                List.partition (fun (due, _, _) -> due <= t.round) held
              in
              t.delayed.(dst) <- still;
              List.rev_map (fun (_, src, msg) -> (src, msg)) due
            end
    in
    if queued_len > 0 || matured <> [] then begin
      if is_crashed t dst then
        t.lost_crash <- t.lost_crash + queued_len + List.length matured
      else if t.blocked dst then
        (* Lost per the Section 1.1 blocking rule; not a fault, not counted. *)
        ()
      else if not (computes dst) then begin
        let k = queued_len + List.length matured in
        t.lost_subset <- t.lost_subset + k;
        subset_lost_now := !subset_lost_now + k
      end
      else begin
        let fresh = slice_to_list sh lo hi in
        let inbox =
          match t.faults with
          | None -> fresh
          | Some f ->
              apply_reorder t f ~dst
                (matured @ apply_message_faults t f ~dst fresh)
        in
        (match t.metrics with
        | Some m ->
            List.iter
              (fun (_, msg) -> Metrics.on_recv m ~node:dst ~bits:(t.msg_bits msg))
              inbox
        | None -> ());
        t.inboxes.(dst) <- inbox;
        touch t dst
      end
    end
  done;
  if !subset_lost_now > 0 && Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Note
         {
           name = "engine/subset_lost";
           fields =
             [
               ("round", Trace.Int t.round);
               ("msgs", Trace.Int !subset_lost_now);
             ];
         });
  (* Inbox lists hold their own (src, msg) cells; drop the merged planes'
     payload refs now so the round retains nothing it delivered. *)
  Array.iter (fun sh -> Array.fill sh.sh_msgs 0 sh.sh_len obj_nil) t.shards

let tick_faults t =
  (* Crash/recover transitions fire at the round boundary, before this
     round's deliveries.  Hosted engines leave this to their runtime. *)
  match t.faults with
  | None -> ()
  | Some f when not t.owns_tick -> ignore f
  | Some f ->
      let transitions = Faults.tick f ~round:t.round in
      if Trace.enabled t.trace then
        List.iter
          (fun (node, kind) ->
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind = (match kind with `Crash -> "crash" | `Recover -> "recover");
                   round = t.round;
                   fields = [ ("node", Trace.Int node) ];
                 }))
          transitions

(* Merge the staged lanes and fill [t.inboxes] for this round.
   [computes dst] says whether dst runs its compute step this round; if
   not, the inbox content is lost (and counted). *)
let deliver_lists t ~all_compute computes =
  tick_faults t;
  let staged = staged_total t in
  let parallel = use_parallel t ~staged in
  each_shard t ~parallel (merge_shard t);
  ensure_inboxes t;
  let fast =
    all_compute
    && (match t.faults with None -> true | Some _ -> false)
    && match t.metrics with None -> true | Some _ -> false
  in
  if fast then begin
    each_shard t ~parallel (build_lists_shard t);
    t.cleanup <- `Offs
  end
  else begin
    deliver_slow t computes;
    t.cleanup <- `Touched
  end

(* Reset the inbox cells set this round, after compute consumed them.
   Must run before the next merge overwrites the offset tables. *)
let clear_inboxes t =
  (match t.cleanup with
  | `None -> ()
  | `Touched ->
      for i = 0 to t.touched_len - 1 do
        t.inboxes.(t.touched.(i)) <- []
      done;
      t.touched_len <- 0
  | `Offs ->
      Array.iter
        (fun sh ->
          let offs = sh.sh_offs in
          for d = 0 to sh.sh_size - 1 do
            if
              Bigarray.Array1.unsafe_get offs (d + 1)
              > Bigarray.Array1.unsafe_get offs d
            then t.inboxes.(sh.sh_base + d) <- []
          done)
        t.shards);
  t.cleanup <- `None

let end_round t =
  let summary =
    match t.metrics with Some m -> Some (Metrics.finish_round m) | None -> None
  in
  if Trace.enabled t.trace then begin
    let blocked = ref 0 in
    for v = 0 to t.n - 1 do
      if t.blocked v then incr blocked
    done;
    let ev =
      match summary with
      | Some s -> Trace.round_of_summary ~blocked:!blocked s
      | None ->
          Trace.Round
            {
              round = t.round;
              msgs = 0;
              bits = 0;
              max_node_bits = 0;
              max_node_msgs = 0;
              blocked = !blocked;
            }
    in
    Trace.emit t.trace ev
  end;
  t.round <- t.round + 1;
  t.blocked <- nobody_blocked;
  t.sent_this_round <- false

let deliver_and_step t f =
  deliver_lists t ~all_compute:true (fun _ -> true);
  let r = t.round in
  let inboxes = t.inboxes in
  for v = 0 to t.n - 1 do
    if not (t.blocked v) && not (is_crashed t v) then
      f ~round:r ~me:v ~inbox:inboxes.(v)
  done;
  clear_inboxes t;
  end_round t

let deliver_and_step_subset t ~nodes f =
  let member = Array.make t.n false in
  Array.iter
    (fun v ->
      check_node t v "deliver_and_step_subset";
      member.(v) <- true)
    nodes;
  deliver_lists t ~all_compute:false (fun v -> member.(v));
  let r = t.round in
  let inboxes = t.inboxes in
  Array.iter
    (fun v ->
      if not (t.blocked v) && not (is_crashed t v) then
        f ~round:r ~me:v ~inbox:inboxes.(v))
    nodes;
  clear_inboxes t;
  end_round t

(* ---------- flat delivery (the scale path) ---------- *)

let slice_len s = s.s_hi - s.s_lo

let slice_src s i =
  if i < 0 || i >= slice_len s then invalid_arg "Engine.slice_src: index";
  Bigarray.Array1.unsafe_get s.s_srcs (s.s_lo + i)

let slice_msg s i =
  if i < 0 || i >= slice_len s then invalid_arg "Engine.slice_msg: index";
  Obj.obj (Array.unsafe_get s.s_msgs (s.s_lo + i))

let slice_iter f s =
  for i = s.s_lo to s.s_hi - 1 do
    f
      ~src:(Bigarray.Array1.unsafe_get s.s_srcs i)
      (Obj.obj (Array.unsafe_get s.s_msgs i))
  done

let slice_fold f init s =
  let acc = ref init in
  for i = s.s_lo to s.s_hi - 1 do
    acc :=
      f !acc
        ~src:(Bigarray.Array1.unsafe_get s.s_srcs i)
        (Obj.obj (Array.unsafe_get s.s_msgs i))
  done;
  !acc

let deliver_and_step_flat t f =
  (match t.faults with
  | Some _ ->
      invalid_arg
        "Engine.deliver_and_step_flat: fault plans need the list delivery path"
  | None -> ());
  (match t.metrics with
  | Some _ -> invalid_arg "Engine.deliver_and_step_flat: requires ~metrics:false"
  | None -> ());
  let staged = staged_total t in
  let parallel = use_parallel t ~staged in
  each_shard t ~parallel (merge_shard t);
  let r = t.round in
  each_shard t ~parallel (fun ki ->
      let sh = Array.unsafe_get t.shards ki in
      let offs = sh.sh_offs in
      let view = { s_srcs = sh.sh_srcs; s_msgs = sh.sh_msgs; s_lo = 0; s_hi = 0 } in
      for d = 0 to sh.sh_size - 1 do
        let me = sh.sh_base + d in
        (* A blocked node neither computes nor receives; its slice is lost
           per the blocking rule (uncounted, as on the list paths). *)
        if not (t.blocked me) then begin
          view.s_lo <- Bigarray.Array1.unsafe_get offs d;
          view.s_hi <- Bigarray.Array1.unsafe_get offs (d + 1);
          f ~round:r ~me ~inbox:view
        end
      done;
      Array.fill sh.sh_msgs 0 sh.sh_len obj_nil);
  end_round t

let metrics t =
  match t.metrics with
  | Some m -> m
  | None -> invalid_arg "Engine.metrics: metrics disabled"
