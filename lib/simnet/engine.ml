type 'msg t = {
  n : int;
  msg_bits : 'msg -> int;
  mutable round : int;
  mutable blocked : int -> bool;
  (* Messages queued during the current round, keyed by destination; each
     entry passed the send-time checks (src and dst non-blocked at send). *)
  mutable pending : (int * 'msg) list array; (* newest first *)
  (* Whether any [send] was attempted this round; a [set_blocked] after that
     point would mis-apply the blocking rule to already-queued messages. *)
  mutable sent_this_round : bool;
  metrics : Metrics.t option;
  trace : Trace.t;
}

let nobody_blocked _ = false

let create ?(metrics = true) ?(trace = Trace.null) ~n ~msg_bits () =
  if n <= 0 then invalid_arg "Engine.create: n <= 0";
  {
    n;
    msg_bits;
    round = 0;
    blocked = nobody_blocked;
    pending = Array.make n [];
    sent_this_round = false;
    metrics = (if metrics then Some (Metrics.create ~n) else None);
    trace;
  }

let n t = t.n
let round t = t.round

let set_blocked t f =
  if t.sent_this_round then
    invalid_arg "Engine.set_blocked: called after sends in this round";
  t.blocked <- f

let is_blocked t v = t.blocked v

let check_node t v name =
  if v < 0 || v >= t.n then invalid_arg ("Engine." ^ name ^ ": node out of range")

let send t ~src ~dst msg =
  check_node t src "send";
  check_node t dst "send";
  t.sent_this_round <- true;
  (* Send-time half of the blocking rule: src non-blocked in the send round
     and dst non-blocked in the send round. *)
  if not (t.blocked src) && not (t.blocked dst) then begin
    (match t.metrics with
    | Some m -> Metrics.on_send m ~node:src ~bits:(t.msg_bits msg)
    | None -> ());
    t.pending.(dst) <- (src, msg) :: t.pending.(dst)
  end

let deliver t computes =
  (* Delivery-time half of the rule: dst must also be non-blocked in the
     delivery round.  [computes dst] says whether dst runs its compute step
     this round; if not, the inbox content is lost either way. *)
  let inboxes = Array.make t.n [] in
  for dst = 0 to t.n - 1 do
    let queued = t.pending.(dst) in
    t.pending.(dst) <- [];
    if queued <> [] && not (t.blocked dst) && computes dst then begin
      let inbox = List.rev queued in
      (match t.metrics with
      | Some m ->
          List.iter
            (fun (_, msg) -> Metrics.on_recv m ~node:dst ~bits:(t.msg_bits msg))
            inbox
      | None -> ());
      inboxes.(dst) <- inbox
    end
  done;
  inboxes

let end_round t =
  let summary =
    match t.metrics with Some m -> Some (Metrics.finish_round m) | None -> None
  in
  if Trace.enabled t.trace then begin
    let blocked = ref 0 in
    for v = 0 to t.n - 1 do
      if t.blocked v then incr blocked
    done;
    let ev =
      match summary with
      | Some s -> Trace.round_of_summary ~blocked:!blocked s
      | None ->
          Trace.Round
            {
              round = t.round;
              msgs = 0;
              bits = 0;
              max_node_bits = 0;
              max_node_msgs = 0;
              blocked = !blocked;
            }
    in
    Trace.emit t.trace ev
  end;
  t.round <- t.round + 1;
  t.blocked <- nobody_blocked;
  t.sent_this_round <- false

let deliver_and_step t f =
  let inboxes = deliver t (fun _ -> true) in
  let r = t.round in
  for v = 0 to t.n - 1 do
    if not (t.blocked v) then f ~round:r ~me:v ~inbox:inboxes.(v)
  done;
  end_round t

let deliver_and_step_subset t ~nodes f =
  let member = Array.make t.n false in
  Array.iter
    (fun v ->
      check_node t v "deliver_and_step_subset";
      member.(v) <- true)
    nodes;
  let inboxes = deliver t (fun v -> member.(v)) in
  let r = t.round in
  Array.iter
    (fun v -> if not (t.blocked v) then f ~round:r ~me:v ~inbox:inboxes.(v))
    nodes;
  end_round t

let metrics t =
  match t.metrics with
  | Some m -> m
  | None -> invalid_arg "Engine.metrics: metrics disabled"
