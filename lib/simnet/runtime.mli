(** Driver-level simulation runtime: the one place where a message can be
    lost, traced, or charged.

    {!Engine} applies the paper's Section 1.1 blocking rule and the
    {!Faults} plan at per-message granularity for protocols that run
    *inside* the synchronous network (rapid sampling, group simulation).
    The protocol drivers above it — churn/DoS/churn+DoS networks,
    reconfiguration's reply-retry path, and the workload driver — model
    whole request/reply {e legs} rather than individual inbox messages.
    Before this module existed each of them hand-rolled its own round
    counter, its own [Faults.bernoulli] calls (silently ignoring the
    duplicate/delay/reorder/crash parts of the plan), and its own trace
    plumbing.

    A {!t} owns, for one driver run:
    - round and epoch progression ({!advance}, {!run_epoch});
    - the installed fault plan and its crash schedule ({!tick},
      {!crashed}), size-independently keyed so the network may grow past
      the install-time [n] ({!resize});
    - full-plan fault application on communication legs ({!leg},
      {!link_drop}) with the same roll order as the engine's delivery
      boundary (drop → delay → duplicate; see [docs/fault_model.md]);
    - loss accounting ({!losses}) mirroring {!Engine.losses};
    - health/invariant re-validation ({!health}, {!validate_cycles});
    - typed trace emission ({!span}, {!note}, {!adversary},
      {!emit_round}) so drivers never touch {!Trace} constructors.

    Determinism contract: with the same plan and seed, a runtime consumes
    the fault stream exactly as the seed drivers did on their supported
    paths (one Bernoulli per leg for drop-only plans), so fault-free and
    drop-only same-seed runs are byte-identical to pre-runtime traces. *)

type t

type feature = [ `Drop | `Duplicate | `Delay | `Reorder | `Crash | `Recover ]
(** The independently supportable parts of a {!Faults.plan}. *)

val all_features : feature list

val features_of_plan : Faults.plan -> feature list
(** The features a plan actually uses (empty for {!Faults.none}). *)

val create :
  ?trace:Trace.t ->
  ?faults:Faults.plan ->
  ?supports:feature list ->
  ?who:string ->
  ?domains:int ->
  n:int ->
  unit ->
  t
(** Build a runtime for a network of [n] nodes.  [supports] (default: all
    features) declares which plan features the calling driver can honor;
    a plan using an unsupported feature raises [Invalid_argument] naming
    [who] and the offending field, so users are never silently served a
    partial plan.  An inert plan ({!Faults.is_none}) is not installed and
    costs one [option] check per call.  [domains] (default
    {!Parallel.default_domains}, so [OVERLAY_DOMAINS] applies; clamped to
    at least 1) bounds the worker domains of engines hosted via
    {!engine}; all results are byte-identical for every value.  Raises
    [Invalid_argument] if [n <= 0]. *)

val trace : t -> Trace.t
val traced : t -> bool

val plan : t -> Faults.plan option
(** The installed plan, if any ([None] for inert plans). *)

val faulty : t -> bool

val n : t -> int

val domains : t -> int
(** The runtime's worker-domain bound (at least 1), inherited by hosted
    engines. *)

val engine :
  ?metrics:bool ->
  ?shard_bits:int ->
  t ->
  msg_bits:('msg -> int) ->
  unit ->
  'msg Engine.t
(** Host a sharded {!Engine} on this runtime: the engine shares the
    runtime's trace, [domains], and — crucially — its installed fault
    handle, so engine deliveries and runtime {!leg} rolls consume one
    fault stream in program order, and a single plan spec drives both
    granularities deterministically.  The hosted engine never ticks
    crash/recover transitions itself; call {!tick} once per round (the
    engine's crash checks observe the shared schedule either way).  The
    engine's {!Engine.losses} are folded into this runtime's {!losses}
    and epoch accounting.  The engine is sized at the current {!n};
    create it after any initial {!resize}. *)

val round : t -> int

val epoch : t -> int
(** Number of completed {!run_epoch} calls. *)

val advance : t -> rounds:int -> unit
(** Account [rounds] communication rounds (raises [Invalid_argument] on a
    negative count). *)

val resize : t -> n:int -> unit
(** The network grew or shrank to [n] nodes.  Fault streams are
    size-independently keyed ({!Faults.resize}), so this never re-seeds
    or re-draws anything: joins past the install-time [n] are simply
    never crash victims. *)

val tick : t -> (int * [ `Crash | `Recover ]) list
(** Apply the crash/recover transitions scheduled up to the current
    round, emit one typed [Fault] event per transition, and return them
    (oldest first).  Call once per round (or once per epoch for
    epoch-granular drivers), with non-decreasing rounds. *)

val crashed : t -> int -> bool
(** Whether the node is currently crashed (always [false] for nodes
    beyond the install-time range and without a plan). *)

type losses = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_lost : int;
  subset_lost : int;
}
(** Loss counters, mirroring {!Engine.losses}.  Leg rolls never charge
    [subset_lost] (drivers have no subset delivery); it is non-zero only
    when a hosted engine ({!engine}) used subset delivery. *)

val losses : t -> losses
(** Leg-level losses plus the {!Engine.losses} of every hosted engine. *)

val leg : t -> ?src:int -> ?dst:int -> unit -> bool
(** Roll the fault plan for one communication leg (a request or a reply
    travelling one way); returns whether it arrives.  Roll order matches
    the engine's delivery boundary: a crashed endpoint loses the leg
    before any stream draw; then drop → delay → duplicate, each traced
    and charged to {!losses}.  A delayed leg misses its attempt's round
    and counts as lost to the attempt ([delayed]); a duplicated leg still
    arrives (the extra copy is benign at leg granularity, [duplicated]).
    Inbox reordering cannot fire on a single-leg inbox and consumes no
    randomness, exactly as in the engine.  Without a plan: [true], no
    draws.  For drop-only plans this consumes exactly one Bernoulli draw
    per leg — the same consumption as the seed drivers. *)

val link_drop : t -> (unit -> bool) option
(** [Some f] when the plan has per-message link faults (drop, delay or
    duplicate), where [f () = not (leg t ())]; [None] otherwise.  Shaped
    for {!Core.Reconfig}'s [?drop] reply-loss hook. *)

type health = { reachable : int; reachable_fraction : float; connected : bool }

val health : t -> n:int -> neighbors:(int -> int array) -> health
(** BFS reachability from node 0 over [neighbors] ({!Invariants.reachable}). *)

val validate_cycles :
  t -> m:int -> int array array -> (unit, Invariants.violation) result
(** Re-validate reconfigured cycles ({!Invariants.check_cycles}),
    emitting the violation's typed trace event on failure. *)

val request :
  t ->
  op:string ->
  round:int ->
  client:int ->
  latency:int ->
  hops:int ->
  status:string ->
  unit
(** Emit one typed per-request outcome event ({!Trace.Request}).  [round]
    is the round the request left the system — usually the current round,
    but explicit because drains may complete requests at the horizon. *)

val span : t -> name:string -> rounds:int -> (string * Trace.value) list -> unit
val note : t -> name:string -> (string * Trace.value) list -> unit
val adversary : t -> kind:string -> (string * Trace.value) list -> unit

val emit_round :
  t ->
  msgs:int ->
  bits:int ->
  max_node_bits:int ->
  max_node_msgs:int ->
  blocked:int ->
  unit
(** Emit the [Round] event for the current round (call before
    {!advance}). *)

type 'a epoch_report = {
  result : 'a;
  index : int;  (** 0-based epoch index *)
  rounds : int;  (** communication rounds the epoch accounted *)
  epoch_losses : losses;  (** losses charged during this epoch *)
}

val run_epoch : t -> (t -> 'a * int) -> 'a epoch_report
(** Run one epoch: the driver callback performs its work against the
    runtime and returns [(result, rounds)]; [run_epoch] snapshots
    {!losses} around it, advances the round counter by [rounds], and
    increments the epoch counter. *)
