(** Seeded corrupted-topology injection.

    The paper's resilience theorems assume the adversary starts from a
    {e correct} topology; this module manufactures the states outside that
    envelope so {!Core.Stabilize} can measure recovery from them.  A
    {!spec} names a corruption {!cls}, a severity (fraction of pointers
    per cycle to damage) and a seed; {!apply} is a pure function of the
    spec and the input topology — all randomness comes from a dedicated
    {!Prng.Stream} keyed by (seed, class, severity), so the same spec
    yields byte-identical corrupted states and never perturbs the repair
    run's own streams.

    Every class guarantees that its output exhibits the
    {!Invariants.violation} kind named by {!advertised} (pinned by qcheck
    in [test/test_simnet_corruption.ml]):

    {ul
     {- [branch] — victims point at a non-victim's successor: a
        successor collision ([successor_not_injective]).}
     {- [split] — the Hamilton orbit is cut into ≥ 2 closed segments
        ([not_single_cycle]); the array stays a permutation.}
     {- [range] — victims point outside [[0, m)] on either side
        ([successor_out_of_range]).}
     {- [crosslink] — victims borrow the pointer of the {e next} cycle in
        the family; collisions are forced if borrowing happens to keep
        every cycle a permutation ([successor_not_injective]).}
     {- [partition] — every cycle is rewired so a random node bipartition
        never crosses sides: the union graph splits ([disconnected]).}
     {- [stale] — victims point at identifiers in [[m, 2m)], the shape
        left by departed nodes ([successor_out_of_range]).}}

    Spec strings (parsed by {!parse_spec}, emitted by {!to_spec}) are
    comma-separated [KEY=VALUE] pairs in the {!Faults} idiom:
    [class=branch,severity=0.3,seed=7].  [class] is mandatory; [severity]
    defaults to [0.25] and must lie in [(0, 1]]; [seed] defaults to a
    fixed constant. *)

type cls =
  | Branch
  | Split
  | Out_of_range
  | Cross_link
  | Partition
  | Stale_pointer

val all : cls list
(** Every class, in a stable order (the sweep-axis order of e17). *)

val class_to_string : cls -> string
val class_of_string : string -> (cls, string) result

val advertised : cls -> string
(** The {!Invariants.kind_of} string this class guarantees to produce. *)

type spec = { cls : cls; severity : float; seed : int64 }

val default_seed : int64

val make : ?severity:float -> ?seed:int64 -> cls -> spec
(** Raises [Invalid_argument] unless [severity] is in [(0, 1]]. *)

val parse_spec : string -> (spec, string) result
val to_spec : spec -> string
(** Inverse of {!parse_spec}: omits values equal to the defaults. *)

val stream : spec -> Prng.Stream.t
(** The dedicated stream {!apply} draws from — exposed so tests can pin
    the keying. *)

val apply : spec -> int array array -> int array array
(** [apply spec succs] returns a corrupted copy of the cycle family
    [succs] (the input is not modified).  The input must be a valid
    family of ≥ 1 Hamilton cycles over the same [m ≥ 4] nodes; raises
    [Invalid_argument] otherwise.  The output exhibits the violation
    kind [advertised spec.cls] under {!Invariants.check_all}. *)
