type plan = {
  drop : float;
  duplicate : float;
  delay_p : float;
  delay_max : int;
  reorder : float;
  crash : int;
  crash_round : int;
  recover_after : int;
  seed : int64;
}

let default_seed = 0xFA17_5EEDL

let none =
  {
    drop = 0.0;
    duplicate = 0.0;
    delay_p = 0.0;
    delay_max = 0;
    reorder = 0.0;
    crash = 0;
    crash_round = 1;
    recover_after = 0;
    seed = default_seed;
  }

let is_none p =
  p.drop = 0.0 && p.duplicate = 0.0
  && (p.delay_p = 0.0 || p.delay_max = 0)
  && p.reorder = 0.0 && p.crash = 0

let check_prob name x =
  if x < 0.0 || x > 1.0 || Float.is_nan x then
    invalid_arg (Printf.sprintf "Faults.make: %s must be in [0, 1]" name)

let make ?(drop = 0.0) ?(duplicate = 0.0) ?delay_p ?(delay_max = 0)
    ?(reorder = 0.0) ?(crash = 0) ?(crash_round = 1) ?(recover_after = 0)
    ?(seed = default_seed) () =
  let delay_p =
    match delay_p with Some p -> p | None -> if delay_max > 0 then 0.05 else 0.0
  in
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "delay_p" delay_p;
  check_prob "reorder" reorder;
  if delay_max < 0 then invalid_arg "Faults.make: delay_max < 0";
  if crash < 0 then invalid_arg "Faults.make: crash < 0";
  if crash_round < 0 then invalid_arg "Faults.make: crash_round < 0";
  if recover_after < 0 then invalid_arg "Faults.make: recover_after < 0";
  { drop; duplicate; delay_p; delay_max; reorder; crash; crash_round;
    recover_after; seed }

let parse_spec s =
  let parse_float k v =
    match float_of_string_opt v with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | _ -> Error (Printf.sprintf "faults: %s wants a probability in [0,1], got %S" k v)
  in
  let parse_int k v =
    match int_of_string_opt v with
    | Some i when i >= 0 -> Ok i
    | _ -> Error (Printf.sprintf "faults: %s wants a non-negative integer, got %S" k v)
  in
  let rec go plan = function
    | [] -> Ok plan
    | kv :: rest -> (
        match String.index_opt kv '=' with
        | None -> Error (Printf.sprintf "faults: expected key=value, got %S" kv)
        | Some i -> (
            let k = String.sub kv 0 i
            and v = String.sub kv (i + 1) (String.length kv - i - 1) in
            let ( let* ) = Result.bind in
            match k with
            | "drop" ->
                let* f = parse_float k v in
                go { plan with drop = f } rest
            | "dup" | "duplicate" ->
                let* f = parse_float k v in
                go { plan with duplicate = f } rest
            | "delayp" ->
                let* f = parse_float k v in
                go { plan with delay_p = f } rest
            | "delay" ->
                let* i = parse_int k v in
                (* `delay=K` alone means "delays happen, held <= K rounds";
                   give it the default probability unless delayp is set. *)
                let plan =
                  if plan.delay_p = 0.0 then { plan with delay_p = 0.05 }
                  else plan
                in
                go { plan with delay_max = i } rest
            | "reorder" ->
                let* f = parse_float k v in
                go { plan with reorder = f } rest
            | "crash" ->
                let* i = parse_int k v in
                go { plan with crash = i } rest
            | "crashround" ->
                let* i = parse_int k v in
                go { plan with crash_round = i } rest
            | "recover" ->
                let* i = parse_int k v in
                go { plan with recover_after = i } rest
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some s -> go { plan with seed = s } rest
                | None -> Error (Printf.sprintf "faults: bad seed %S" v))
            | _ -> Error (Printf.sprintf "faults: unknown key %S" k)))
  in
  let parts =
    String.split_on_char ',' (String.trim s)
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "faults: empty spec" else go none parts

let to_spec p =
  let out = ref [] in
  let addf k v = if v > 0.0 then out := Printf.sprintf "%s=%g" k v :: !out in
  if Int64.compare p.seed default_seed <> 0 then
    out := Printf.sprintf "seed=%Ld" p.seed :: !out;
  if p.recover_after > 0 then
    out := Printf.sprintf "recover=%d" p.recover_after :: !out;
  if p.crash > 0 && p.crash_round <> 1 then
    out := Printf.sprintf "crashround=%d" p.crash_round :: !out;
  if p.crash > 0 then out := Printf.sprintf "crash=%d" p.crash :: !out;
  addf "reorder" p.reorder;
  if p.delay_max > 0 then begin
    if p.delay_p <> 0.05 then addf "delayp" p.delay_p;
    out := Printf.sprintf "delay=%d" p.delay_max :: !out
  end;
  addf "dup" p.duplicate;
  addf "drop" p.drop;
  if !out = [] then "none" else String.concat "," !out

type t = {
  plan : plan;
  stream : Prng.Stream.t;
  mutable crashed_now : bool array;
  (* Upcoming transitions, soonest first (rounds are strictly increasing
     per node; the whole list is sorted at install). *)
  mutable upcoming : (int * int * [ `Crash | `Recover ]) list;
}

let install plan ~n =
  if n <= 0 then invalid_arg "Faults.install: n <= 0";
  let stream = Prng.Stream.of_seed plan.seed in
  let k = min plan.crash n in
  let victims = if k > 0 then Prng.Stream.sample_distinct stream n ~k else [||] in
  let upcoming = ref [] in
  Array.iteri
    (fun i v ->
      let at = plan.crash_round + i in
      upcoming := (at, v, `Crash) :: !upcoming;
      if plan.recover_after > 0 then
        upcoming := (at + plan.recover_after, v, `Recover) :: !upcoming)
    victims;
  {
    plan;
    stream;
    crashed_now = Array.make n false;
    upcoming =
      List.sort
        (fun (r1, n1, _) (r2, n2, _) -> compare (r1, n1) (r2, n2))
        !upcoming;
  }

let plan t = t.plan

(* Size-independently keyed: a node index outside the install-time range is
   simply never crashed, so a network that grew past its initial n can keep
   querying without re-installing (and without aliasing the Bernoulli
   stream, which never depends on n). *)
let crashed t v = v >= 0 && v < Array.length t.crashed_now && t.crashed_now.(v)

let resize t ~n =
  if n <= 0 then invalid_arg "Faults.resize: n <= 0";
  let len = Array.length t.crashed_now in
  if n > len then begin
    let grown = Array.make n false in
    Array.blit t.crashed_now 0 grown 0 len;
    t.crashed_now <- grown
  end

let tick t ~round =
  let rec go acc = function
    | (r, node, kind) :: rest when r <= round ->
        t.crashed_now.(node) <- (kind = `Crash);
        go ((node, kind) :: acc) rest
    | rest ->
        t.upcoming <- rest;
        List.rev acc
  in
  go [] t.upcoming

let bernoulli t p = p > 0.0 && Prng.Stream.bernoulli t.stream p

let roll_drop t = bernoulli t t.plan.drop
let roll_duplicate t = bernoulli t t.plan.duplicate

let roll_delay t =
  if t.plan.delay_max = 0 || not (bernoulli t t.plan.delay_p) then 0
  else 1 + Prng.Stream.int t.stream t.plan.delay_max

let roll_reorder t arr =
  if Array.length arr > 1 && bernoulli t t.plan.reorder then begin
    Prng.Stream.shuffle_in_place t.stream arr;
    true
  end
  else false
