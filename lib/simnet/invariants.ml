type violation =
  | Successor_out_of_range of { cycle : int; node : int; succ : int }
  | Successor_not_injective of { cycle : int; node : int; succ : int }
  | Not_single_cycle of { cycle : int; reached : int; size : int }
  | Size_mismatch of { cycle : int; got : int; expected : int }
  | Disconnected of { reachable : int; total : int }

let describe = function
  | Successor_out_of_range v ->
      Printf.sprintf "cycle %d: succ(%d) = %d is out of range" v.cycle v.node
        v.succ
  | Successor_not_injective v ->
      Printf.sprintf "cycle %d: node %d shares successor %d" v.cycle v.node
        v.succ
  | Not_single_cycle v ->
      Printf.sprintf "cycle %d: closes after %d of %d hops" v.cycle v.reached
        v.size
  | Size_mismatch v ->
      Printf.sprintf "cycle %d: %d nodes, expected %d" v.cycle v.got v.expected
  | Disconnected v ->
      Printf.sprintf "disconnected: %d of %d reachable" v.reachable v.total

let kind_of = function
  | Successor_out_of_range _ -> "successor_out_of_range"
  | Successor_not_injective _ -> "successor_not_injective"
  | Not_single_cycle _ -> "not_single_cycle"
  | Size_mismatch _ -> "size_mismatch"
  | Disconnected _ -> "disconnected"

let event v =
  Trace.Note
    {
      name = "invariant/violation";
      fields =
        [
          ("kind", Trace.String (kind_of v));
          ("detail", Trace.String (describe v));
        ];
    }

let check_cycle ?(cycle = 0) succ =
  let size = Array.length succ in
  if size = 0 then Ok ()
  else begin
    let seen = Array.make size false in
    let violation = ref None in
    (try
       Array.iteri
         (fun node s ->
           if s < 0 || s >= size then begin
             violation := Some (Successor_out_of_range { cycle; node; succ = s });
             raise Exit
           end;
           if seen.(s) then begin
             violation := Some (Successor_not_injective { cycle; node; succ = s });
             raise Exit
           end;
           seen.(s) <- true)
         succ
     with Exit -> ());
    match !violation with
    | Some v -> Error v
    | None ->
        (* An injective total map on a finite set is a permutation; it is a
           single Hamilton cycle iff the orbit of node 0 covers everything. *)
        let reached = ref 1 in
        let v = ref succ.(0) in
        while !v <> 0 && !reached <= size do
          incr reached;
          v := succ.(!v)
        done;
        if !reached = size then Ok ()
        else Error (Not_single_cycle { cycle; reached = !reached; size })
  end

let check_cycles ~m succs =
  let rec go i =
    if i >= Array.length succs then Ok ()
    else begin
      let got = Array.length succs.(i) in
      if got <> m then Error (Size_mismatch { cycle = i; got; expected = m })
      else
        match check_cycle ~cycle:i succs.(i) with
        | Ok () -> go (i + 1)
        | Error v -> Error v
    end
  in
  go 0

let reachable ~n ~start ~neighbors =
  if n = 0 then 0
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.push start queue;
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      Array.iter
        (fun u ->
          if not seen.(u) then begin
            seen.(u) <- true;
            Queue.push u queue
          end)
        (neighbors v)
    done;
    !count
  end

let check_connected ~n ~neighbors =
  if n = 0 then Ok ()
  else
    let r = reachable ~n ~start:0 ~neighbors in
    if r = n then Ok () else Error (Disconnected { reachable = r; total = n })
