type violation =
  | Successor_out_of_range of { cycle : int; node : int; succ : int }
  | Successor_not_injective of { cycle : int; node : int; succ : int }
  | Not_single_cycle of { cycle : int; reached : int; size : int }
  | Size_mismatch of { cycle : int; got : int; expected : int }
  | Disconnected of { reachable : int; total : int }

let describe = function
  | Successor_out_of_range v ->
      Printf.sprintf "cycle %d: succ(%d) = %d is out of range" v.cycle v.node
        v.succ
  | Successor_not_injective v ->
      Printf.sprintf "cycle %d: node %d shares successor %d" v.cycle v.node
        v.succ
  | Not_single_cycle v ->
      Printf.sprintf "cycle %d: closes after %d of %d hops" v.cycle v.reached
        v.size
  | Size_mismatch v ->
      Printf.sprintf "cycle %d: %d nodes, expected %d" v.cycle v.got v.expected
  | Disconnected v ->
      Printf.sprintf "disconnected: %d of %d reachable" v.reachable v.total

let kind_of = function
  | Successor_out_of_range _ -> "successor_out_of_range"
  | Successor_not_injective _ -> "successor_not_injective"
  | Not_single_cycle _ -> "not_single_cycle"
  | Size_mismatch _ -> "size_mismatch"
  | Disconnected _ -> "disconnected"

let event v =
  Trace.Note
    {
      name = "invariant/violation";
      fields =
        [
          ("kind", Trace.String (kind_of v));
          ("detail", Trace.String (describe v));
        ];
    }

let check_cycle ?(cycle = 0) succ =
  let size = Array.length succ in
  if size = 0 then Ok ()
  else begin
    let seen = Array.make size false in
    let violation = ref None in
    (try
       Array.iteri
         (fun node s ->
           if s < 0 || s >= size then begin
             violation := Some (Successor_out_of_range { cycle; node; succ = s });
             raise Exit
           end;
           if seen.(s) then begin
             violation := Some (Successor_not_injective { cycle; node; succ = s });
             raise Exit
           end;
           seen.(s) <- true)
         succ
     with Exit -> ());
    match !violation with
    | Some v -> Error v
    | None ->
        (* An injective total map on a finite set is a permutation; it is a
           single Hamilton cycle iff the orbit of node 0 covers everything. *)
        let reached = ref 1 in
        let v = ref succ.(0) in
        while !v <> 0 && !reached <= size do
          incr reached;
          v := succ.(!v)
        done;
        if !reached = size then Ok ()
        else Error (Not_single_cycle { cycle; reached = !reached; size })
  end

(* All-violations traversal of one successor array, in deterministic order:
   every out-of-range entry and every collision in node order first, then —
   only when the array is a clean permutation — one [Not_single_cycle] per
   orbit beyond the one containing node 0.  Orbit analysis on a broken map
   would chase garbage, so it is skipped exactly when the first-violation
   API would have stopped earlier. *)
let fold_cycle ?(cycle = 0) ~init ~f succ =
  let size = Array.length succ in
  if size = 0 then init
  else begin
    let seen = Array.make size false in
    let acc = ref init in
    let clean = ref true in
    Array.iteri
      (fun node s ->
        if s < 0 || s >= size then begin
          clean := false;
          acc := f !acc (Successor_out_of_range { cycle; node; succ = s })
        end
        else if seen.(s) then begin
          clean := false;
          acc := f !acc (Successor_not_injective { cycle; node; succ = s })
        end
        else seen.(s) <- true)
      succ;
    if !clean then begin
      (* A permutation: walk each orbit once (smallest member first). *)
      let visited = Array.make size false in
      for v = 0 to size - 1 do
        if not visited.(v) then begin
          let len = ref 0 in
          let u = ref v in
          while not visited.(!u) do
            visited.(!u) <- true;
            incr len;
            u := succ.(!u)
          done;
          if v <> 0 then
            acc := f !acc (Not_single_cycle { cycle; reached = !len; size })
        end
      done
    end;
    !acc
  end

let check_cycle_all ?cycle succ =
  List.rev (fold_cycle ?cycle ~init:[] ~f:(fun acc v -> v :: acc) succ)

let check_cycles ~m succs =
  let rec go i =
    if i >= Array.length succs then Ok ()
    else begin
      let got = Array.length succs.(i) in
      if got <> m then Error (Size_mismatch { cycle = i; got; expected = m })
      else
        match check_cycle ~cycle:i succs.(i) with
        | Ok () -> go (i + 1)
        | Error v -> Error v
    end
  in
  go 0

let reachable ~n ~start ~neighbors =
  if n = 0 then 0
  else begin
    let seen = Array.make n false in
    let queue = Queue.create () in
    seen.(start) <- true;
    Queue.push start queue;
    let count = ref 0 in
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      incr count;
      Array.iter
        (fun u ->
          if not seen.(u) then begin
            seen.(u) <- true;
            Queue.push u queue
          end)
        (neighbors v)
    done;
    !count
  end

let check_connected ~n ~neighbors =
  if n = 0 then Ok ()
  else
    let r = reachable ~n ~start:0 ~neighbors in
    if r = n then Ok () else Error (Disconnected { reachable = r; total = n })

let check_cycles_all ~m succs =
  let acc = ref [] in
  Array.iteri
    (fun i succ ->
      let got = Array.length succ in
      if got <> m then
        acc := Size_mismatch { cycle = i; got; expected = m } :: !acc;
      acc := fold_cycle ~cycle:i ~init:!acc ~f:(fun a v -> v :: a) succ)
    succs;
  List.rev !acc

(* Adjacency of the union multigraph of the successor arrays, keeping only
   in-range pointers: v's neighbors are its (valid) successors plus every
   node that (validly) points at it.  This is exactly the part of a
   corrupted topology a node can still route over. *)
let succs_neighbors ~m succs =
  let fwd = Array.make m [] and bwd = Array.make m [] in
  Array.iter
    (fun succ ->
      Array.iteri
        (fun v s ->
          if v < m && s >= 0 && s < m then begin
            fwd.(v) <- s :: fwd.(v);
            bwd.(s) <- v :: bwd.(s)
          end)
        succ)
    succs;
  let adj = Array.init m (fun v -> Array.of_list (List.rev_append bwd.(v) fwd.(v))) in
  fun v -> adj.(v)

let check_succs_connected ~m succs =
  check_connected ~n:m ~neighbors:(succs_neighbors ~m succs)

let check_all ~m succs =
  let cycle_viols = check_cycles_all ~m succs in
  match check_succs_connected ~m succs with
  | Ok () -> cycle_viols
  | Error v -> cycle_viols @ [ v ]
