(** Deterministic fault injection for the simulation engine.

    A {!plan} describes *ordinary* infrastructure faults — per-message drop,
    duplication, bounded delay, inbox reordering, and node-level
    crash-stop / crash-recover schedules — none of which the paper's model
    covers (its only failure modes are the omniscient churner and the t-late
    DoS blocker).  The plan is installed on {!Engine.create} via its
    [?faults] parameter; faults then apply at the delivery boundary, *after*
    the Section 1.1 blocking rule, and are charged independently of it (a
    blocked message is never also rolled for faults; see
    [docs/fault_model.md] for the exact composition).

    All randomness is drawn from a dedicated {!Prng.Stream} keyed by
    [plan.seed], never from a node's or an adversary's stream, so a fault
    plan perturbs *which* messages survive but not the protocol's own coin
    flips: two runs with the same seed and the same plan produce
    byte-identical traces, and installing a zero-rate plan leaves every
    metric identical to a run without faults.  Each applied fault emits one
    typed {!Trace.Fault} event. *)

type plan = {
  drop : float;  (** per-message Bernoulli loss probability *)
  duplicate : float;  (** per-message probability of one extra copy *)
  delay_p : float;  (** per-message probability of being held back *)
  delay_max : int;
      (** bound on the hold, in rounds: a delayed message is re-delivered
          after a uniform 1..[delay_max] rounds (0 disables delays) *)
  reorder : float;  (** per-inbox probability of a uniform shuffle *)
  crash : int;  (** number of distinct nodes to crash *)
  crash_round : int;
      (** the i-th crashed node (0-based) stops at round [crash_round + i] *)
  recover_after : int;
      (** rounds until a crashed node recovers; 0 = crash-stop forever *)
  seed : int64;  (** seed of the dedicated fault stream *)
}

val none : plan
(** The null plan: every rate 0, no crashes.  Engines reject it at
    installation time ({!install} is never called on it), so a run under
    [none] costs one boolean check per delivery and nothing else. *)

val is_none : plan -> bool
(** Whether the plan can never fire a fault. *)

val make :
  ?drop:float ->
  ?duplicate:float ->
  ?delay_p:float ->
  ?delay_max:int ->
  ?reorder:float ->
  ?crash:int ->
  ?crash_round:int ->
  ?recover_after:int ->
  ?seed:int64 ->
  unit ->
  plan
(** All rates default to 0 / off; [delay_p] defaults to 0.05 when
    [delay_max > 0] is given without an explicit probability;
    [crash_round] defaults to 1; [seed] to a fixed constant.  Raises
    [Invalid_argument] on probabilities outside [0, 1] or negative
    counts. *)

val parse_spec : string -> (plan, string) result
(** Parse a CLI spec like ["drop=0.05,dup=0.01,delay=2,crash=3"].
    Keys: [drop], [dup], [delayp], [delay] (= [delay_max]), [reorder],
    [crash], [crashround], [recover], [seed].  Unknown keys and malformed
    values yield [Error]. *)

val to_spec : plan -> string
(** Render a plan back into {!parse_spec} syntax (only non-default
    fields). *)

type t
(** An installed plan: the plan plus its dedicated random stream and the
    materialized crash schedule for a network of a given size. *)

val install : plan -> n:int -> t
(** Materialize the plan for [n] nodes: the crashed node set
    ([min plan.crash n] distinct nodes) is drawn from the fault stream
    here, so it is a pure function of [(plan, n)]. *)

val plan : t -> plan

val crashed : t -> int -> bool
(** Whether the node is currently crashed.  Size-independently keyed:
    indices outside the install-time range (nodes that joined after
    {!install}, or after the last {!resize}) are never crashed, so a
    growing network needs no re-install and the Bernoulli stream is
    never re-seeded. *)

val resize : t -> n:int -> unit
(** Widen the crash bookkeeping to [n] nodes (grow-only; shrinking is a
    no-op so that a node that crashed, left, and re-joined under the same
    index stays crashed until its scheduled recovery).  Consumes no
    randomness: the crash victim set stays the pure function of
    [(plan, install-time n)] it was drawn as.  Raises [Invalid_argument]
    if [n <= 0]. *)

val tick : t -> round:int -> (int * [ `Crash | `Recover ]) list
(** Apply the crash/recover transitions scheduled at [round] (call once
    per round, at the delivery boundary, with non-decreasing rounds) and
    return them, oldest first. *)

val roll_drop : t -> bool
val roll_duplicate : t -> bool

val roll_delay : t -> int
(** [0] = deliver now; otherwise the number of rounds to hold the
    message, in [1, delay_max]. *)

val roll_reorder : t -> 'a array -> bool
(** Maybe shuffle the inbox in place; returns whether it did. *)

val bernoulli : t -> float -> bool
(** A raw draw from the fault stream, for drivers that simulate message
    loss outside the engine (e.g. {!Core.Reconfig} pointer-doubling
    replies).  [bernoulli t 0.] never fires and consumes nothing. *)
