(* Seeded generators of adversarial initial topologies.

   Every generator is a pure function of (seed, class, severity) and the
   correct topology it corrupts: the random draws come from a dedicated
   Prng.Stream keyed by exactly those three values, never from a protocol
   or adversary stream, so the same spec reproduces the same corrupted
   state byte for byte and corrupting a topology never perturbs the
   repair run's own randomness.  Each class guarantees — pinned by
   test/test_simnet_corruption.ml — that its output exhibits the
   Invariants violation kind named by [advertised]. *)

type cls =
  | Branch
  | Split
  | Out_of_range
  | Cross_link
  | Partition
  | Stale_pointer

let all = [ Branch; Split; Out_of_range; Cross_link; Partition; Stale_pointer ]

let class_to_string = function
  | Branch -> "branch"
  | Split -> "split"
  | Out_of_range -> "range"
  | Cross_link -> "crosslink"
  | Partition -> "partition"
  | Stale_pointer -> "stale"

let class_of_string = function
  | "branch" -> Ok Branch
  | "split" -> Ok Split
  | "range" -> Ok Out_of_range
  | "crosslink" -> Ok Cross_link
  | "partition" -> Ok Partition
  | "stale" -> Ok Stale_pointer
  | s ->
      Error
        (Printf.sprintf
           "unknown corruption class %S \
            (branch|split|range|crosslink|partition|stale)"
           s)

let advertised = function
  | Branch | Cross_link -> "successor_not_injective"
  | Split -> "not_single_cycle"
  | Out_of_range | Stale_pointer -> "successor_out_of_range"
  | Partition -> "disconnected"

type spec = { cls : cls; severity : float; seed : int64 }

let default_seed = 0x5e1f_57ab_1e00_c0deL

let make ?(severity = 0.25) ?(seed = default_seed) cls =
  if (not (Float.is_finite severity)) || severity <= 0.0 || severity > 1.0
  then invalid_arg "Corruption.make: severity must be in (0, 1]";
  { cls; severity; seed }

let to_spec t =
  let b = Buffer.create 32 in
  Buffer.add_string b ("class=" ^ class_to_string t.cls);
  if t.severity <> 0.25 then
    Buffer.add_string b
      (Printf.sprintf ",severity=%s" (Stats.Float_text.repr t.severity));
  if t.seed <> default_seed then
    Buffer.add_string b (Printf.sprintf ",seed=%Ld" t.seed);
  Buffer.contents b

let parse_spec s =
  let err fmt = Printf.ksprintf (fun m -> Error ("corruption: " ^ m)) fmt in
  let parts =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  let saw_class = ref false in
  let rec go acc = function
    | [] -> if !saw_class then Ok acc else err "missing class=CLASS"
    | p :: rest -> (
        match String.index_opt p '=' with
        | None -> err "expected KEY=VALUE, got %S" p
        | Some i -> (
            let key = String.sub p 0 i
            and v = String.sub p (i + 1) (String.length p - i - 1) in
            match key with
            | "class" -> (
                match class_of_string v with
                | Ok cls ->
                    saw_class := true;
                    go { acc with cls } rest
                | Error e -> Error ("corruption: " ^ e))
            | "severity" -> (
                match float_of_string_opt v with
                | Some f when Float.is_finite f && f > 0.0 && f <= 1.0 ->
                    go { acc with severity = f } rest
                | Some _ -> err "severity must be in (0, 1]"
                | None -> err "severity expects a number, got %S" v)
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some seed -> go { acc with seed } rest
                | None -> err "seed expects an integer, got %S" v)
            | other -> err "unknown key %S (class|severity|seed)" other))
  in
  go { cls = Split; severity = 0.25; seed = default_seed } parts

(* The dedicated stream: keyed by (seed, class, severity) so two specs
   differing in any component draw independent randomness. *)
let class_index = function
  | Branch -> 1
  | Split -> 2
  | Out_of_range -> 3
  | Cross_link -> 4
  | Partition -> 5
  | Stale_pointer -> 6

let stream t =
  let s = Prng.Splitmix64.mix (Int64.logxor t.seed 0x7061_7065_7263_7574L) in
  let s =
    Prng.Splitmix64.mix (Int64.logxor s (Int64.of_int (class_index t.cls)))
  in
  let s = Prng.Splitmix64.mix (Int64.logxor s (Int64.bits_of_float t.severity)) in
  Prng.Stream.of_seed s

(* severity |-> how many pointers of an m-node cycle to corrupt: at least
   one, and at most m - 2 so a repairable remnant (and a clean donor for
   the Branch construction) always exists. *)
let count_of ~m severity =
  max 1 (min (m - 2) (int_of_float (Float.round (severity *. float_of_int m))))

(* Orbit of node 0 through a well-formed cycle, in visit order.  The input
   must be a single Hamilton cycle — corrupting an already-broken state is
   not meaningful. *)
let orbit_order succ =
  let m = Array.length succ in
  let order = Array.make m 0 in
  let visited = Array.make m false in
  let u = ref 0 in
  for i = 0 to m - 1 do
    if !u < 0 || !u >= m || visited.(!u) then
      invalid_arg "Corruption.apply: input is not a single Hamilton cycle";
    order.(i) <- !u;
    visited.(!u) <- true;
    u := succ.(!u)
  done;
  if !u <> 0 then
    invalid_arg "Corruption.apply: input is not a single Hamilton cycle";
  order

let draw_victims rng ~m ~cnt =
  let victims = Prng.Stream.sample_distinct rng m ~k:cnt in
  Array.sort compare victims;
  victims

(* Point each victim at the successor of a random non-victim: that donor's
   own entry is untouched, so its successor value now appears at two
   distinct nodes — a guaranteed collision. *)
let branch_cycle rng ~cnt succ =
  let m = Array.length succ in
  let victims = draw_victims rng ~m ~cnt in
  let is_victim = Array.make m false in
  Array.iter (fun v -> is_victim.(v) <- true) victims;
  let donors =
    Array.of_seq
      (Seq.filter (fun v -> not is_victim.(v)) (Seq.init m Fun.id))
  in
  Array.iter
    (fun v -> succ.(v) <- succ.(Prng.Stream.choose rng donors))
    victims

(* Cut the Hamilton orbit into [segments] contiguous runs and close each
   into its own cycle.  The result is still a permutation (the set of
   segment heads is re-distributed among segment tails), so the only
   defect is the guaranteed orbit split. *)
let split_cycle rng ~segments succ =
  let m = Array.length succ in
  let order = orbit_order succ in
  let cuts = Prng.Stream.sample_distinct rng (m - 1) ~k:(segments - 1) in
  Array.sort compare cuts;
  let starts = Array.append [| 0 |] (Array.map (fun c -> c + 1) cuts) in
  let nseg = Array.length starts in
  for s = 0 to nseg - 1 do
    let first = starts.(s) in
    let last = (if s = nseg - 1 then m else starts.(s + 1)) - 1 in
    succ.(order.(last)) <- order.(first)
  done

(* ghost:false draws from both sides of the valid range; ghost:true only
   from [m, 2m) — identifiers of departed nodes, the stale-pointer
   shape left behind by churn. *)
let range_cycle rng ~cnt ~ghost succ =
  let m = Array.length succ in
  let victims = draw_victims rng ~m ~cnt in
  Array.iter
    (fun v ->
      succ.(v) <-
        (if ghost || Prng.Stream.bool rng then m + Prng.Stream.int rng m
         else -1 - Prng.Stream.int rng m))
    victims

(* Rewire every cycle so each side of a random node bipartition chains
   only through itself (next same-side node in orbit order): no pointer
   crosses the divide in any cycle, so the union graph is disconnected. *)
let partition_all rng ~p out =
  let m = Array.length out.(0) in
  let side_a = Prng.Stream.sample_distinct rng m ~k:p in
  let in_a = Array.make m false in
  Array.iter (fun v -> in_a.(v) <- true) side_a;
  Array.iter
    (fun succ ->
      let order = orbit_order succ in
      for i = 0 to m - 1 do
        let v = order.(i) in
        let j = ref ((i + 1) mod m) in
        while in_a.(order.(!j)) <> in_a.(v) do
          j := (!j + 1) mod m
        done;
        succ.(v) <- order.(!j)
      done)
    out

let has_collision ~m out =
  List.exists
    (function Invariants.Successor_not_injective _ -> true | _ -> false)
    (Invariants.check_cycles_all ~m out)

let apply t succs =
  let k = Array.length succs in
  if k = 0 then invalid_arg "Corruption.apply: empty topology";
  let m = Array.length succs.(0) in
  if m < 4 then invalid_arg "Corruption.apply: need at least 4 nodes";
  (match Invariants.check_cycles ~m succs with
  | Ok () -> ()
  | Error v ->
      invalid_arg
        (Printf.sprintf "Corruption.apply: input already broken (%s)"
           (Invariants.describe v)));
  let rng = stream t in
  let out = Array.map Array.copy succs in
  let cnt = count_of ~m t.severity in
  (match t.cls with
  | Branch -> Array.iter (branch_cycle rng ~cnt) out
  | Split ->
      let segments = min m (max 2 cnt) in
      Array.iter (split_cycle rng ~segments) out
  | Out_of_range -> Array.iter (range_cycle rng ~cnt ~ghost:false) out
  | Stale_pointer -> Array.iter (range_cycle rng ~cnt ~ghost:true) out
  | Cross_link ->
      if k = 1 then
        (* A single cycle has no neighbor to borrow pointers from; the
           class degenerates to Branch (same advertised violation). *)
        Array.iter (branch_cycle rng ~cnt) out
      else begin
        for c = 0 to k - 1 do
          let donor = succs.((c + 1) mod k) in
          Array.iter
            (fun v -> out.(c).(v) <- donor.(v))
            (draw_victims rng ~m ~cnt)
        done;
        (* Borrowed pointers can in freak cases keep every cycle a
           permutation; the advertised collision is then forced
           deterministically. *)
        if not (has_collision ~m out) then branch_cycle rng ~cnt:1 out.(0)
      end
  | Partition ->
      let p = max 1 (min (m - 1) cnt) in
      partition_all rng ~p out);
  out
