type t = {
  n : int;
  d : int;
  seed : int;
  sampler : string option;
  adversary : string option;
  frac : float;
  lateness : int;
  staleness : Snapshots.staleness option;
  corruption : Corruption.spec option;
  faults : Faults.plan option;
  retry : int;
  workload : string option;
  backend : string option;
  chord_fingers : int option;
  chord_succs : int option;
  chord_period : int option;
  app : string option;
  topics : int option;
  fanout : int option;
  session : (float * int) option;
  rounds : int;
  domains : int;
  trace : string option;
  trace_format : Trace.format option;
}

let default =
  {
    n = 1024;
    d = 8;
    seed = 42;
    sampler = None;
    adversary = None;
    frac = 0.0;
    lateness = -1;
    staleness = None;
    corruption = None;
    faults = None;
    retry = 0;
    workload = None;
    backend = None;
    chord_fingers = None;
    chord_succs = None;
    chord_period = None;
    app = None;
    topics = None;
    fanout = None;
    session = None;
    rounds = -1;
    domains = 0;
    trace = None;
    trace_format = None;
  }

let format_of_string = function
  | "jsonl" -> Ok Trace.Jsonl
  | "csv" -> Ok Trace.Csv
  | "bin" | "binary" -> Ok Trace.Binary
  | other -> Error other

let string_of_format = function
  | Trace.Jsonl -> "jsonl"
  | Trace.Csv -> "csv"
  | Trace.Binary -> "bin"

let err key what = Error (Printf.sprintf "scenario: %s %s" key what)

let parse_int key v k =
  match int_of_string_opt (String.trim v) with
  | Some i -> k i
  | None -> err key (Printf.sprintf "expects an integer, got %S" v)

let parse_float key v k =
  match float_of_string_opt (String.trim v) with
  | Some f -> k f
  | None -> err key (Printf.sprintf "expects a number, got %S" v)

(* A chord knob is [None] (the backend default) or a positive length;
   "-1" keeps parsing as the historical default sentinel. *)
let parse_chord_knob key v k =
  parse_int key v (fun i ->
      if i = -1 then k None
      else if i <= 0 then err key "must be > 0 (or -1 for the default)"
      else k (Some i))

let keys =
  [
    "n"; "d"; "seed"; "sampler"; "adversary"; "frac"; "lateness"; "staleness";
    "corruption"; "faults"; "retry"; "workload"; "backend"; "chord-fingers";
    "chord-succs"; "chord-period"; "app"; "topics"; "fanout"; "session";
    "rounds"; "domains"; "trace"; "trace-format";
  ]

(* Plain Levenshtein distance, for the unknown-key suggestion.  Key names
   are short, so the quadratic table is nothing. *)
let edit_distance a b =
  let la = String.length a and lb = String.length b in
  let row = Array.init (lb + 1) Fun.id in
  for i = 1 to la do
    let prev_diag = ref row.(0) in
    row.(0) <- i;
    for j = 1 to lb do
      let d = !prev_diag + if a.[i - 1] = b.[j - 1] then 0 else 1 in
      prev_diag := row.(j);
      row.(j) <- min d (1 + min row.(j) row.(j - 1))
    done
  done;
  row.(lb)

let nearest_key other =
  let best, dist =
    List.fold_left
      (fun (best, dist) k ->
        let d = edit_distance other k in
        if d < dist then (k, d) else (best, dist))
      ("", max_int) keys
  in
  (* only suggest when the typo is plausibly the key: at most half the
     candidate's length away *)
  if dist * 2 <= String.length best then Some best else None

let unknown_key other =
  match nearest_key other with
  | Some k -> err other (Printf.sprintf "is not a scenario key (did you mean %s?)" k)
  | None -> err other "is not a scenario key"

let apply t (key, v) =
  match key with
  | "n" ->
      parse_int key v (fun n ->
          if n <= 0 then err key "must be > 0" else Ok { t with n })
  | "d" ->
      parse_int key v (fun d ->
          if d < 2 then err key "must be >= 2" else Ok { t with d })
  | "seed" -> parse_int key v (fun seed -> Ok { t with seed })
  | "sampler" -> Ok { t with sampler = Some (String.trim v) }
  | "adversary" -> Ok { t with adversary = Some (String.trim v) }
  | "frac" ->
      parse_float key v (fun frac ->
          if frac < 0.0 || frac > 1.0 then err key "must be in [0, 1]"
          else Ok { t with frac })
  | "lateness" ->
      parse_int key v (fun lateness ->
          if lateness < -1 then err key "must be >= -1"
          else Ok { t with lateness })
  | "staleness" -> (
      (* The sub-parser errors already name the key. *)
      match Snapshots.staleness_of_string (String.trim v) with
      | Ok s -> Ok { t with staleness = Some s }
      | Error e -> Error ("scenario: " ^ e))
  | "corruption" -> (
      match Corruption.parse_spec v with
      | Ok spec -> Ok { t with corruption = Some spec }
      | Error e -> Error ("scenario: " ^ e))
  | "faults" -> (
      match Faults.parse_spec v with
      | Ok plan -> Ok { t with faults = Some plan }
      | Error e -> err key e)
  | "retry" ->
      parse_int key v (fun retry ->
          if retry < 0 then err key "must be >= 0" else Ok { t with retry })
  | "workload" -> Ok { t with workload = Some (String.trim v) }
  | "backend" -> Ok { t with backend = Some (String.trim v) }
  | "chord-fingers" ->
      parse_chord_knob key v (fun chord_fingers -> Ok { t with chord_fingers })
  | "chord-succs" ->
      parse_chord_knob key v (fun chord_succs -> Ok { t with chord_succs })
  | "chord-period" ->
      parse_chord_knob key v (fun chord_period -> Ok { t with chord_period })
  | "app" -> Ok { t with app = Some (String.trim v) }
  | "topics" ->
      parse_int key v (fun topics ->
          if topics <= 0 then err key "must be > 0"
          else Ok { t with topics = Some topics })
  | "fanout" ->
      parse_int key v (fun fanout ->
          if fanout < 0 then err key "must be >= 0"
          else Ok { t with fanout = Some fanout })
  | "session" -> (
      match String.split_on_char ':' (String.trim v) with
      | [ online; epoch ] -> (
          match (float_of_string_opt online, int_of_string_opt epoch) with
          | Some online, Some epoch ->
              if
                (not (Float.is_finite online)) || online <= 0.0 || online > 1.0
              then err key "online fraction must be in (0, 1]"
              else if epoch <= 0 then err key "epoch must be > 0"
              else Ok { t with session = Some (online, epoch) }
          | _ -> err key (Printf.sprintf "expects ONLINE:EPOCH, got %S" v))
      | _ -> err key (Printf.sprintf "expects ONLINE:EPOCH, got %S" v))
  | "rounds" ->
      parse_int key v (fun rounds ->
          if rounds < -1 then err key "must be >= -1" else Ok { t with rounds })
  | "domains" ->
      parse_int key v (fun domains ->
          if domains < 0 then err key "must be >= 0 (0 = runtime default)"
          else Ok { t with domains })
  | "trace" -> Ok { t with trace = Some (String.trim v) }
  | "trace-format" -> (
      match format_of_string (String.trim v) with
      | Ok f -> Ok { t with trace_format = Some f }
      | Error other ->
          err key (Printf.sprintf "expects jsonl, csv or bin, got %S" other))
  | other -> unknown_key other

let of_args ?(base = default) kvs =
  List.fold_left
    (fun acc kv -> Result.bind acc (fun t -> apply t kv))
    (Ok base) kvs

let parse ?base s =
  let segments = String.split_on_char ';' s in
  let rec to_kvs acc = function
    | [] -> Ok (List.rev acc)
    | seg :: rest -> (
        let seg = String.trim seg in
        if seg = "" then to_kvs acc rest
        else
          match String.index_opt seg '=' with
          | None ->
              Error
                (Printf.sprintf "scenario: expected KEY=VALUE, got %S" seg)
          | Some i ->
              let key = String.trim (String.sub seg 0 i) in
              let v = String.sub seg (i + 1) (String.length seg - i - 1) in
              to_kvs ((key, v) :: acc) rest)
  in
  Result.bind (to_kvs [] segments) (fun kvs -> of_args ?base kvs)

let to_args t =
  let kvs = ref [] in
  let add key v = kvs := Printf.sprintf "%s=%s" key v :: !kvs in
  if t.n <> default.n then add "n" (string_of_int t.n);
  if t.d <> default.d then add "d" (string_of_int t.d);
  if t.seed <> default.seed then add "seed" (string_of_int t.seed);
  Option.iter (add "sampler") t.sampler;
  Option.iter (add "adversary") t.adversary;
  if t.frac <> 0.0 then add "frac" (Stats.Float_text.repr t.frac);
  if t.lateness <> -1 then add "lateness" (string_of_int t.lateness);
  Option.iter
    (fun s -> add "staleness" (Snapshots.staleness_to_string s))
    t.staleness;
  Option.iter (fun c -> add "corruption" (Corruption.to_spec c)) t.corruption;
  Option.iter (fun p -> add "faults" (Faults.to_spec p)) t.faults;
  if t.retry <> 0 then add "retry" (string_of_int t.retry);
  Option.iter (add "workload") t.workload;
  Option.iter (add "backend") t.backend;
  Option.iter (fun v -> add "chord-fingers" (string_of_int v)) t.chord_fingers;
  Option.iter (fun v -> add "chord-succs" (string_of_int v)) t.chord_succs;
  Option.iter (fun v -> add "chord-period" (string_of_int v)) t.chord_period;
  Option.iter (add "app") t.app;
  Option.iter (fun v -> add "topics" (string_of_int v)) t.topics;
  Option.iter (fun v -> add "fanout" (string_of_int v)) t.fanout;
  Option.iter
    (fun (online, epoch) ->
      add "session"
        (Printf.sprintf "%s:%d" (Stats.Float_text.repr online) epoch))
    t.session;
  if t.rounds <> -1 then add "rounds" (string_of_int t.rounds);
  if t.domains <> 0 then add "domains" (string_of_int t.domains);
  Option.iter (add "trace") t.trace;
  Option.iter (fun f -> add "trace-format" (string_of_format f)) t.trace_format;
  List.rev !kvs

let to_spec t = String.concat ";" (to_args t)

let trace_sink t =
  match t.trace with
  | None -> Trace.null
  | Some path -> Trace.open_file ?format:t.trace_format path

let fault_model_active t = t.faults <> None || t.retry > 0

let rng t = Prng.Stream.of_seed (Int64.of_int t.seed)
