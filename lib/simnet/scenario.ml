type t = {
  n : int;
  d : int;
  seed : int;
  sampler : string option;
  adversary : string option;
  frac : float;
  lateness : int;
  staleness : Snapshots.staleness option;
  corruption : Corruption.spec option;
  faults : Faults.plan option;
  retry : int;
  workload : string option;
  backend : string option;
  chord_fingers : int;
  chord_succs : int;
  chord_period : int;
  rounds : int;
  domains : int;
  trace : string option;
  trace_format : Trace.format option;
}

let default =
  {
    n = 1024;
    d = 8;
    seed = 42;
    sampler = None;
    adversary = None;
    frac = 0.0;
    lateness = -1;
    staleness = None;
    corruption = None;
    faults = None;
    retry = 0;
    workload = None;
    backend = None;
    chord_fingers = -1;
    chord_succs = -1;
    chord_period = -1;
    rounds = -1;
    domains = 0;
    trace = None;
    trace_format = None;
  }

let format_of_string = function
  | "jsonl" -> Ok Trace.Jsonl
  | "csv" -> Ok Trace.Csv
  | "bin" | "binary" -> Ok Trace.Binary
  | other -> Error other

let string_of_format = function
  | Trace.Jsonl -> "jsonl"
  | Trace.Csv -> "csv"
  | Trace.Binary -> "bin"

let err key what = Error (Printf.sprintf "scenario: %s %s" key what)

let parse_int key v k =
  match int_of_string_opt (String.trim v) with
  | Some i -> k i
  | None -> err key (Printf.sprintf "expects an integer, got %S" v)

let parse_float key v k =
  match float_of_string_opt (String.trim v) with
  | Some f -> k f
  | None -> err key (Printf.sprintf "expects a number, got %S" v)

let apply t (key, v) =
  match key with
  | "n" ->
      parse_int key v (fun n ->
          if n <= 0 then err key "must be > 0" else Ok { t with n })
  | "d" ->
      parse_int key v (fun d ->
          if d < 2 then err key "must be >= 2" else Ok { t with d })
  | "seed" -> parse_int key v (fun seed -> Ok { t with seed })
  | "sampler" -> Ok { t with sampler = Some (String.trim v) }
  | "adversary" -> Ok { t with adversary = Some (String.trim v) }
  | "frac" ->
      parse_float key v (fun frac ->
          if frac < 0.0 || frac > 1.0 then err key "must be in [0, 1]"
          else Ok { t with frac })
  | "lateness" ->
      parse_int key v (fun lateness ->
          if lateness < -1 then err key "must be >= -1"
          else Ok { t with lateness })
  | "staleness" -> (
      (* The sub-parser errors already name the key. *)
      match Snapshots.staleness_of_string (String.trim v) with
      | Ok s -> Ok { t with staleness = Some s }
      | Error e -> Error ("scenario: " ^ e))
  | "corruption" -> (
      match Corruption.parse_spec v with
      | Ok spec -> Ok { t with corruption = Some spec }
      | Error e -> Error ("scenario: " ^ e))
  | "faults" -> (
      match Faults.parse_spec v with
      | Ok plan -> Ok { t with faults = Some plan }
      | Error e -> err key e)
  | "retry" ->
      parse_int key v (fun retry ->
          if retry < 0 then err key "must be >= 0" else Ok { t with retry })
  | "workload" -> Ok { t with workload = Some (String.trim v) }
  | "backend" -> Ok { t with backend = Some (String.trim v) }
  | "chord-fingers" ->
      parse_int key v (fun chord_fingers ->
          if chord_fingers < -1 || chord_fingers = 0 then
            err key "must be > 0 (or -1 for the default)"
          else Ok { t with chord_fingers })
  | "chord-succs" ->
      parse_int key v (fun chord_succs ->
          if chord_succs < -1 || chord_succs = 0 then
            err key "must be > 0 (or -1 for the default)"
          else Ok { t with chord_succs })
  | "chord-period" ->
      parse_int key v (fun chord_period ->
          if chord_period < -1 || chord_period = 0 then
            err key "must be > 0 (or -1 for the default)"
          else Ok { t with chord_period })
  | "rounds" ->
      parse_int key v (fun rounds ->
          if rounds < -1 then err key "must be >= -1" else Ok { t with rounds })
  | "domains" ->
      parse_int key v (fun domains ->
          if domains < 0 then err key "must be >= 0 (0 = runtime default)"
          else Ok { t with domains })
  | "trace" -> Ok { t with trace = Some (String.trim v) }
  | "trace-format" -> (
      match format_of_string (String.trim v) with
      | Ok f -> Ok { t with trace_format = Some f }
      | Error other ->
          err key (Printf.sprintf "expects jsonl, csv or bin, got %S" other))
  | other -> err other "is not a scenario key"

let of_args ?(base = default) kvs =
  List.fold_left
    (fun acc kv -> Result.bind acc (fun t -> apply t kv))
    (Ok base) kvs

let parse ?base s =
  let segments = String.split_on_char ';' s in
  let rec to_kvs acc = function
    | [] -> Ok (List.rev acc)
    | seg :: rest -> (
        let seg = String.trim seg in
        if seg = "" then to_kvs acc rest
        else
          match String.index_opt seg '=' with
          | None ->
              Error
                (Printf.sprintf "scenario: expected KEY=VALUE, got %S" seg)
          | Some i ->
              let key = String.trim (String.sub seg 0 i) in
              let v = String.sub seg (i + 1) (String.length seg - i - 1) in
              to_kvs ((key, v) :: acc) rest)
  in
  Result.bind (to_kvs [] segments) (fun kvs -> of_args ?base kvs)

let to_args t =
  let kvs = ref [] in
  let add key v = kvs := Printf.sprintf "%s=%s" key v :: !kvs in
  if t.n <> default.n then add "n" (string_of_int t.n);
  if t.d <> default.d then add "d" (string_of_int t.d);
  if t.seed <> default.seed then add "seed" (string_of_int t.seed);
  Option.iter (add "sampler") t.sampler;
  Option.iter (add "adversary") t.adversary;
  if t.frac <> 0.0 then add "frac" (Stats.Float_text.repr t.frac);
  if t.lateness <> -1 then add "lateness" (string_of_int t.lateness);
  Option.iter
    (fun s -> add "staleness" (Snapshots.staleness_to_string s))
    t.staleness;
  Option.iter (fun c -> add "corruption" (Corruption.to_spec c)) t.corruption;
  Option.iter (fun p -> add "faults" (Faults.to_spec p)) t.faults;
  if t.retry <> 0 then add "retry" (string_of_int t.retry);
  Option.iter (add "workload") t.workload;
  Option.iter (add "backend") t.backend;
  if t.chord_fingers <> -1 then add "chord-fingers" (string_of_int t.chord_fingers);
  if t.chord_succs <> -1 then add "chord-succs" (string_of_int t.chord_succs);
  if t.chord_period <> -1 then add "chord-period" (string_of_int t.chord_period);
  if t.rounds <> -1 then add "rounds" (string_of_int t.rounds);
  if t.domains <> 0 then add "domains" (string_of_int t.domains);
  Option.iter (add "trace") t.trace;
  Option.iter (fun f -> add "trace-format" (string_of_format f)) t.trace_format;
  List.rev !kvs

let to_spec t = String.concat ";" (to_args t)

let trace_sink t =
  match t.trace with
  | None -> Trace.null
  | Some path -> Trace.open_file ?format:t.trace_format path

let fault_model_active t = t.faults <> None || t.retry > 0

let rng t = Prng.Stream.of_seed (Int64.of_int t.seed)
