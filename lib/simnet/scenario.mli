(** One value describing a simulation run.

    Every entry point used to re-parse the same knobs independently:
    [bin/overlay_sim] duplicated [--faults]/[--retry]/[--trace] plumbing
    across five subcommands, and bench/test drivers hard-coded their own
    [(n, seed, plan)] tuples.  A {!t} is the single spec they all build
    runs from: construct one with {!of_args} (key/value pairs, e.g. from
    command-line flags) or {!parse} (a [;]-separated spec string), then
    hand its fields to the driver and its {!trace_sink} to the tracer.

    The spec is deliberately driver-agnostic: [retry] is a plain budget
    (drivers map it to their own policy type), [sampler]/[adversary]/
    [workload] are uninterpreted strings validated by the consumer, and
    unknown keys are rejected rather than ignored so a typo never
    silently drops a knob. *)

type t = {
  n : int;  (** number of nodes (default 1024) *)
  d : int;  (** H-graph degree (default 8) *)
  seed : int;  (** PRNG seed (default 42) *)
  sampler : string option;  (** e.g. ["rapid"] or ["plain"] *)
  adversary : string option;  (** e.g. ["random"], ["group-kill"] *)
  frac : float;  (** adversary blocking/churn fraction (default 0) *)
  lateness : int;  (** adversary lateness in rounds; -1 = driver default *)
  staleness : Snapshots.staleness option;
      (** per-round drawn adversary lateness; overrides [lateness] in
          drivers that support it ([None] = fixed [lateness]) *)
  corruption : Corruption.spec option;
      (** corrupted initial topology for {!Core.Stabilize} runs *)
  faults : Faults.plan option;  (** installed fault plan, if any *)
  retry : int;  (** recovery budget; 0 reproduces the fault-free drivers *)
  workload : string option;  (** workload arrival spec, e.g. ["open:0.25"] *)
  backend : string option;
      (** overlay backend, e.g. ["reconfig"] or ["chord"]; uninterpreted
          here — the workload driver and sweep runners validate it *)
  chord_fingers : int option;
      (** Chord finger-table length; [None] = backend default (the spec
          value [-1] parses to [None]) *)
  chord_succs : int option;
      (** Chord successor-list length; [None] = backend default *)
  chord_period : int option;
      (** Chord maintenance period; [None] = backend default *)
  app : string option;
      (** composite application, e.g. ["social"]; uninterpreted here *)
  topics : int option;  (** app topic count ([None] = app default) *)
  fanout : int option;
      (** app repost fan-out: follower-topic publishes triggered per post
          ([None] = app default) *)
  session : (float * int) option;
      (** user session cycle [ONLINE:EPOCH]: every [epoch] rounds a fresh
          [1 - online] fraction of users goes offline ([None] = always
          online) *)
  rounds : int;  (** rounds/epochs/windows to run; -1 = driver default *)
  domains : int;
      (** worker domains for intra-round engine parallelism and parallel
          schedule generation; 0 = runtime default
          ({!Parallel.default_domains}, so [OVERLAY_DOMAINS] applies).
          Results are byte-identical for every value. *)
  trace : string option;  (** trace sink path ([None] = no tracing) *)
  trace_format : Trace.format option;
      (** trace sink format; [None] = by [trace] path suffix
          ([.csv] → CSV, [.bin] → binary, else JSONL) *)
}

val default : t
(** [n = 1024; d = 8; seed = 42], everything else off. *)

val of_args : ?base:t -> (string * string) list -> (t, string) result
(** Fold key/value pairs over [base] (default {!default}).  Keys: [n],
    [d], [seed], [sampler], [adversary], [frac], [lateness], [staleness]
    (a {!Snapshots.staleness_of_string} value), [corruption] (a
    {!Corruption.parse_spec} sub-spec), [faults]
    (a {!Faults.parse_spec} sub-spec), [retry], [workload], [backend],
    [chord-fingers], [chord-succs], [chord-period] ([-1] = default, i.e.
    [None]), [app], [topics], [fanout], [session] ([ONLINE:EPOCH]),
    [rounds], [domains], [trace], [trace-format] ([jsonl], [csv] or
    [bin]).  Later pairs override earlier ones.  Returns [Error] on an
    unknown key (suggesting the nearest valid key when the typo is
    close), an unparsable value, or a violated bound ([n <= 0],
    [retry < 0], ...) — with a message naming the key. *)

val parse : ?base:t -> string -> (t, string) result
(** Parse a [;]-separated spec string, e.g.
    ["n=4096;seed=7;faults=drop=0.05,crash=2;retry=3"].  The [faults]
    value is everything after its [=] up to the next [;], so the
    comma-separated fault sub-spec nests without quoting.  Empty
    segments are ignored. *)

val to_args : t -> string list
(** Inverse of {!of_args}: the list of [KEY=VALUE] segments (in a fixed
    key order) that rebuild [t] from {!default}.  Only fields differing
    from {!default} are emitted; floats use the shortest decimal form
    that parses back to the same value, so
    [of_args (segments split on their first '=')] — and equally
    [parse (String.concat ";" (to_args t))] — returns exactly [t].
    Sweep checkpoint records embed this as the cell's copy-pasteable
    reproduction command line. *)

val to_spec : t -> string
(** Round-trippable inverse of {!parse}:
    [String.concat ";" (to_args t)]. *)

val trace_sink : t -> Trace.t
(** {!Trace.open_file} on the [trace] path ([Trace.null] when unset),
    honoring [trace_format] when set.  The caller owns the sink and must
    {!Trace.close} it. *)

val fault_model_active : t -> bool
(** Whether the run leaves the paper's fault-free model: a plan is
    installed or a retry budget armed. *)

val rng : t -> Prng.Stream.t
(** Root PRNG stream for the run, derived from [seed]. *)
