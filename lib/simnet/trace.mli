(** Structured tracing for simulation runs.

    A trace is a stream of typed events — round boundaries with their
    {!Metrics.round_summary}, protocol-phase spans, and adversary actions —
    written to a pluggable sink (null, JSONL file, CSV file, or a custom
    callback).  Drivers thread an optional trace through
    {!Engine.create} and the protocol entry points; when the trace is
    {!null} (the default everywhere) instrumentation reduces to one boolean
    check per emission site, so runs without tracing pay nothing.

    Events are deterministic functions of the simulation state: no wall
    clocks, no pids.  Two runs with the same seed produce byte-identical
    JSONL traces.  The one exception is the {!Progress} event of the
    sweep engine, which exists to report wall-clock pacing and says so in
    its documentation.  The event schema is documented in
    [docs/observability.md]. *)

type value = Int of int | Float of float | Bool of bool | String of string

type event =
  | Round of {
      round : int;  (** round index, starting at 0 *)
      msgs : int;  (** messages delivered this round *)
      bits : int;  (** bits sent + received this round, summed over nodes *)
      max_node_bits : int;
      max_node_msgs : int;
      blocked : int;  (** size of the round's blocked set *)
    }  (** one per simulated round, emitted at the round boundary *)
  | Span of { name : string; rounds : int; fields : (string * value) list }
      (** a protocol phase covering [rounds] communication rounds, e.g.
          ["reconfig/sample"] or ["sampling/serve"] *)
  | Adversary of { kind : string; fields : (string * value) list }
      (** an adversary action, e.g. a churn plan or a DoS blocked set *)
  | Note of { name : string; fields : (string * value) list }
      (** free-form annotation (run headers, epoch outcomes, ...) *)
  | Fault of { kind : string; round : int; fields : (string * value) list }
      (** one injected fault fired ({!Faults}): kind is ["drop"],
          ["duplicate"], ["delay"], ["reorder"], ["crash"] or ["recover"];
          fields carry the affected endpoints *)
  | Request of {
      op : string;  (** request class: ["read"], ["write"] or ["publish"] *)
      round : int;  (** round the request left the system (done or given up) *)
      client : int;  (** issuing workload client *)
      latency : int;
          (** rounds from arrival to completion (for ["timeout"]/["failed"],
              rounds spent before giving up) *)
      hops : int;  (** routing hops of the serving attempt (0 if unserved) *)
      status : string;  (** ["ok"], ["timeout"] or ["failed"] *)
    }
      (** end-to-end outcome of one workload request ({!Workload} driver);
          emitted once per request, at its completion or abandonment *)
  | Progress of {
      sweep : string;  (** sweep name *)
      cell : string;  (** stable cell id, e.g. ["drop=0.05;retry=3"] *)
      index : int;  (** cell position in expansion order *)
      completed : int;  (** cells finished so far, this one included *)
      total : int;  (** cells in the sweep *)
      wall_s : float;  (** wall-clock seconds this cell took (0 if cached) *)
      cached : bool;  (** true if replayed from a checkpoint, not re-run *)
    }
      (** one sweep cell finished ({!Sweep} engine).  The only event kind
          carrying wall-clock time: progress streams exist to make long
          sweeps observable and are exempt from the byte-identical-trace
          guarantee above (the checkpoint artifact, not the progress
          stream, is the deterministic record of a sweep). *)

type format = Jsonl | Csv | Binary

type t

val null : t
(** Swallows every event; [enabled null = false]. *)

val enabled : t -> bool
(** [false] only for {!null}.  Emission sites use this to skip building
    event values when nobody is listening. *)

val make : emit:(event -> unit) -> close:(unit -> unit) -> t
(** Custom sink; [emit] must be safe to call until [close]. *)

val of_channel : ?format:format -> out_channel -> t
(** Sink writing to the channel ([format] defaults to [Jsonl]).  [Jsonl]
    and [Csv] write one line per event; [Binary] writes the compact
    record stream described below (header eagerly, records through a
    64 KiB buffer).  {!close} flushes but does not close the channel. *)

val open_file : ?format:format -> string -> t
(** Sink writing to a fresh file (truncated).  Without [format], a path
    ending in [.csv] selects [Csv], one ending in [.bin] selects
    [Binary], anything else [Jsonl].  {!close} flushes and closes the
    file. *)

val emit : t -> event -> unit
(** No-op on {!null} and after {!close}. *)

val close : t -> unit

val round_of_summary : ?blocked:int -> Metrics.round_summary -> event
(** Convenience: the [Round] event for a metrics summary ([blocked]
    defaults to 0). *)

val jsonl_of_event : event -> string
(** One-line JSON object, no trailing newline. *)

val jsonl_of_pairs :
  ?float_repr:(float -> string) -> (string * value) list -> string
(** One-line flat JSON object from explicit key/value pairs — the writer
    {!jsonl_of_event} is built on, exposed for sibling JSONL formats
    (sweep checkpoint records) that must stay parseable by
    {!parse_jsonl_line}.  Finite floats default to the lossless
    shortest-roundtrip rendering of {!Stats.Float_text.json_repr}, so a
    [Float] survives write → {!parse_jsonl_line} bit-for-bit (negative
    zero included); [float_repr] overrides that rendering and is only
    consulted for finite floats (nan and infinities keep their string
    encoding). *)

val csv_header : string
val csv_of_event : event -> string

val kind_of_event : event -> string
(** The wire discriminator of the event: ["round"], ["span"],
    ["adversary"], ["note"], ["fault"], ["request"] or ["progress"]. *)

val parse_jsonl_line : string -> (string * value) list option
(** Minimal parser for the flat JSON objects this module writes: returns
    the key/value pairs in order, or [None] if the line is not a flat JSON
    object of strings, numbers and booleans.  Intended for tests and the
    [trace_check] validation tool, not as a general JSON parser. *)

(** {1 Binary traces}

    The [Binary] format stores the same events as JSONL in fixed-width
    little-endian records: a header (magic ["OVTRACE\x00"], u16 version,
    a tag → kind-name table), interleaved symbol-definition records
    (names interned in first-appearance order) and per-kind event
    records with compact layouts plus wide fallbacks.  Decoding then
    re-encoding through {!jsonl_of_event} reproduces the JSONL sink's
    bytes exactly — [trace_check --export-jsonl] relies on this.  The
    full record layout and the versioning rules are documented in
    [docs/observability.md]. *)

val binary_magic : string
(** First 8 bytes of every binary trace file. *)

val binary_version : int

val is_binary_file : string -> bool
(** [true] when the file starts with {!binary_magic} ([false] on short
    or unreadable files). *)

val fold_binary_file : string -> init:'a -> f:('a -> event -> 'a) -> 'a
(** Decode a binary trace file, folding over its events in order.
    Raises [Failure] with a descriptive message on a bad magic,
    unsupported version, or truncated/corrupt record. *)

val read_binary_file : string -> event list
(** All events of a binary trace file, in emission order.  Same failure
    behavior as {!fold_binary_file}; prefer the fold for large files. *)
