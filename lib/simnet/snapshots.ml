type staleness =
  | Fixed of int
  | Mixed of float
  | Uniform of int * int

let staleness_max = function
  | Fixed n -> n
  | Mixed f -> int_of_float (Float.ceil f)
  | Uniform (_, hi) -> hi

let staleness_of_string s =
  let err fmt = Printf.ksprintf (fun m -> Error ("staleness: " ^ m)) fmt in
  let is_range =
    match String.index_opt s '.' with
    | Some i -> i + 1 < String.length s && s.[i + 1] = '.'
    | None -> false
  in
  if is_range then
    match String.index_opt s '.' with
    | None -> assert false
    | Some i -> (
        let lo = String.sub s 0 i
        and hi = String.sub s (i + 2) (String.length s - i - 2) in
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some lo, Some hi when 0 <= lo && lo <= hi -> Ok (Uniform (lo, hi))
        | Some _, Some _ -> err "range needs 0 <= LO <= HI, got %S" s
        | _ -> err "range expects LO..HI integers, got %S" s)
  else
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok (Fixed n)
    | Some _ -> err "must be >= 0, got %S" s
    | None -> (
        match float_of_string_opt s with
        | Some f when Float.is_finite f && f >= 0.0 -> Ok (Mixed f)
        | Some _ -> err "must be finite and >= 0, got %S" s
        | None -> err "expects T, T.F or LO..HI, got %S" s)

let staleness_to_string = function
  | Fixed n -> string_of_int n
  | Mixed f -> Stats.Float_text.json_repr f
  | Uniform (lo, hi) -> Printf.sprintf "%d..%d" lo hi

type 'a t = {
  dist : staleness;
  rng : Prng.Stream.t option;
  (* Ring of the last [max lateness + 1] snapshots; older ones can never be
     the newest-visible again but [view_at] may still want a small window,
     so we keep exactly max lateness + 1. *)
  mutable ring : 'a option array;
  mutable count : int;
  (* Lateness in force for the current round, redrawn on every [push]. *)
  mutable current : int;
}

let create ~lateness =
  if lateness < 0 then invalid_arg "Snapshots.create: negative lateness";
  {
    dist = Fixed lateness;
    rng = None;
    ring = Array.make (lateness + 1) None;
    count = 0;
    current = lateness;
  }

let create_drawn ~staleness ~rng =
  (match staleness with
  | Fixed n when n < 0 -> invalid_arg "Snapshots.create_drawn: negative"
  | Mixed f when (not (Float.is_finite f)) || f < 0.0 ->
      invalid_arg "Snapshots.create_drawn: bad expected lateness"
  | Uniform (lo, hi) when lo < 0 || lo > hi ->
      invalid_arg "Snapshots.create_drawn: bad range"
  | _ -> ());
  let max_l = staleness_max staleness in
  {
    dist = staleness;
    rng = (match staleness with Fixed _ -> None | _ -> Some rng);
    ring = Array.make (max_l + 1) None;
    count = 0;
    current = max_l;
  }

let lateness t = staleness_max t.dist
let staleness t = t.dist
let current_lateness t = t.current

let draw t =
  match (t.dist, t.rng) with
  | Fixed n, _ -> n
  | Mixed f, Some rng ->
      let base = int_of_float (Float.floor f) in
      let frac = f -. Float.of_int base in
      base + (if frac > 0.0 && Prng.Stream.bernoulli rng frac then 1 else 0)
  | Uniform (lo, hi), Some rng -> Prng.Stream.int_in rng lo hi
  | _, None -> staleness_max t.dist

let push t snap =
  t.ring.(t.count mod Array.length t.ring) <- Some snap;
  t.count <- t.count + 1;
  t.current <- draw t

let pushed t = t.count

let view_at t r =
  if r < 0 || r >= t.count then None
  else if
    (* Visible iff at least [current] rounds old relative to the current
       round (count - 1). *)
    t.count - 1 - r < t.current
  then None
  else if t.count - r > Array.length t.ring then None
  else t.ring.(r mod Array.length t.ring)

let view t =
  let r = t.count - 1 - t.current in
  if r < 0 then None else view_at t r
