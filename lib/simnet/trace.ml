type value = Int of int | Float of float | Bool of bool | String of string

type event =
  | Round of {
      round : int;
      msgs : int;
      bits : int;
      max_node_bits : int;
      max_node_msgs : int;
      blocked : int;
    }
  | Span of { name : string; rounds : int; fields : (string * value) list }
  | Adversary of { kind : string; fields : (string * value) list }
  | Note of { name : string; fields : (string * value) list }
  | Fault of { kind : string; round : int; fields : (string * value) list }
  | Request of {
      op : string;
      round : int;
      client : int;
      latency : int;
      hops : int;
      status : string;
    }
  | Progress of {
      sweep : string;
      cell : string;
      index : int;
      completed : int;
      total : int;
      wall_s : float;
      cached : bool;
    }

type format = Jsonl | Csv | Binary

type t = {
  enabled : bool;
  emit_fn : event -> unit;
  close_fn : unit -> unit;
  mutable closed : bool;
}

let null =
  { enabled = false; emit_fn = ignore; close_fn = ignore; closed = false }

let enabled t = t.enabled

let make ~emit ~close =
  { enabled = true; emit_fn = emit; close_fn = close; closed = false }

let emit t ev = if t.enabled && not t.closed then t.emit_fn ev

let close t =
  if t.enabled && not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let round_of_summary ?(blocked = 0) (s : Metrics.round_summary) =
  Round
    {
      round = s.Metrics.round;
      msgs = s.Metrics.msgs;
      bits = s.Metrics.bits;
      max_node_bits = s.Metrics.max_node_bits;
      max_node_msgs = s.Metrics.max_node_msgs;
      blocked;
    }

(* ---------- serialization ---------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Finite floats render via the shared shortest-roundtrip repr (forced
   to contain a float marker so parse_jsonl_line decodes a Float, not an
   Int — "-0.0" must not come back as Int 0).  The previous %.12g default
   silently lost low-order bits, so the byte-identity guarantee held for
   checkpoints but not traces; now both layers share one repr. *)
let add_json_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f then add_json_string buf "nan"
      else if f = Float.infinity then add_json_string buf "inf"
      else if f = Float.neg_infinity then add_json_string buf "-inf"
      else Buffer.add_string buf (Stats.Float_text.json_repr f)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | String s -> add_json_string buf s

(* The wire pairs of an event: a fixed discriminator first, then the
   event's own fields.  Field names never collide with the fixed keys. *)
let pairs_of_event = function
  | Round r ->
      [
        ("ev", String "round");
        ("round", Int r.round);
        ("msgs", Int r.msgs);
        ("bits", Int r.bits);
        ("max_node_bits", Int r.max_node_bits);
        ("max_node_msgs", Int r.max_node_msgs);
        ("blocked", Int r.blocked);
      ]
  | Span s ->
      ("ev", String "span") :: ("name", String s.name)
      :: ("rounds", Int s.rounds) :: s.fields
  | Adversary a -> ("ev", String "adversary") :: ("kind", String a.kind) :: a.fields
  | Note n -> ("ev", String "note") :: ("name", String n.name) :: n.fields
  | Fault f ->
      ("ev", String "fault") :: ("kind", String f.kind)
      :: ("round", Int f.round) :: f.fields
  | Request r ->
      [
        ("ev", String "request");
        ("op", String r.op);
        ("round", Int r.round);
        ("client", Int r.client);
        ("latency", Int r.latency);
        ("hops", Int r.hops);
        ("status", String r.status);
      ]
  | Progress p ->
      [
        ("ev", String "progress");
        ("sweep", String p.sweep);
        ("cell", String p.cell);
        ("index", Int p.index);
        ("completed", Int p.completed);
        ("total", Int p.total);
        ("wall_s", Float p.wall_s);
        ("cached", Bool p.cached);
      ]

let jsonl_of_pairs ?float_repr pairs =
  let add_value =
    match float_repr with
    | None -> add_json_value
    | Some repr -> (
        fun buf -> function
          | Float f when Float.is_nan f -> add_json_string buf "nan"
          | Float f when f = Float.infinity -> add_json_string buf "inf"
          | Float f when f = Float.neg_infinity -> add_json_string buf "-inf"
          | Float f -> Buffer.add_string buf (repr f)
          | v -> add_json_value buf v)
  in
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    pairs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl_of_event ev = jsonl_of_pairs (pairs_of_event ev)

let csv_header = "ev,name,round,rounds,msgs,bits,max_node_bits,max_node_msgs,blocked,fields"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Stats.Float_text.repr f
  | Bool b -> string_of_bool b
  | String s -> s

let csv_fields fields =
  csv_escape
    (String.concat ";"
       (List.map (fun (k, v) -> k ^ "=" ^ string_of_value v) fields))

let csv_of_event = function
  | Round r ->
      Printf.sprintf "round,,%d,1,%d,%d,%d,%d,%d," r.round r.msgs r.bits
        r.max_node_bits r.max_node_msgs r.blocked
  | Span s ->
      Printf.sprintf "span,%s,,%d,,,,,,%s" (csv_escape s.name) s.rounds
        (csv_fields s.fields)
  | Adversary a ->
      Printf.sprintf "adversary,%s,,,,,,,,%s" (csv_escape a.kind)
        (csv_fields a.fields)
  | Note n ->
      Printf.sprintf "note,%s,,,,,,,,%s" (csv_escape n.name)
        (csv_fields n.fields)
  | Fault f ->
      Printf.sprintf "fault,%s,%d,,,,,,,%s" (csv_escape f.kind) f.round
        (csv_fields f.fields)
  | Request r ->
      Printf.sprintf "request,%s,%d,,,,,,,%s" (csv_escape r.op) r.round
        (csv_fields
           [
             ("client", Int r.client);
             ("latency", Int r.latency);
             ("hops", Int r.hops);
             ("status", String r.status);
           ])
  | Progress p ->
      Printf.sprintf "progress,%s,,,,,,,,%s" (csv_escape p.sweep)
        (csv_fields
           [
             ("cell", String p.cell);
             ("index", Int p.index);
             ("completed", Int p.completed);
             ("total", Int p.total);
             ("wall_s", Float p.wall_s);
             ("cached", Bool p.cached);
           ])

let kind_of_event = function
  | Round _ -> "round"
  | Span _ -> "span"
  | Adversary _ -> "adversary"
  | Note _ -> "note"
  | Fault _ -> "fault"
  | Request _ -> "request"
  | Progress _ -> "progress"

(* ---------- binary sink ----------

   Fixed-width little-endian records behind a small self-describing
   header.  The design goal is not generality but exactness at scale:
   the decoder reconstructs the *same* event values the writer saw, so
   exporting a binary trace through jsonl_of_event reproduces the text
   sink's bytes verbatim.  Strings are interned into a symbol table
   (ids assigned in first-appearance order, so same-seed runs produce
   byte-identical files); hot event kinds get compact layouts with a
   wide fallback when a field overflows its width.  Layout details and
   versioning rules live in docs/observability.md. *)

let binary_magic = "OVTRACE\x00"
let binary_version = 1

(* Record tags.  Compact/wide pairs decode to the same event kind. *)
let tag_symbol = 0x00
let tag_round = 0x01
let tag_round_wide = 0x02
let tag_span = 0x03
let tag_adversary = 0x04
let tag_note = 0x05
let tag_fault = 0x06
let tag_request = 0x07
let tag_request_wide = 0x08
let tag_progress = 0x09

let binary_kind_table =
  [
    (tag_symbol, "symbol");
    (tag_round, "round");
    (tag_round_wide, "round");
    (tag_span, "span");
    (tag_adversary, "adversary");
    (tag_note, "note");
    (tag_fault, "fault");
    (tag_request, "request");
    (tag_request_wide, "request");
    (tag_progress, "progress");
  ]

let add_u8 buf v = Buffer.add_uint8 buf v
let add_u16 buf v = Buffer.add_uint16_le buf v
let add_u32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_i32 buf v = Buffer.add_int32_le buf (Int32.of_int v)
let add_i64 buf v = Buffer.add_int64_le buf (Int64.of_int v)
let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)
let fits_u8 v = v >= 0 && v < 0x100
let fits_u16 v = v >= 0 && v < 0x10000
let fits_u32 v = v >= 0 && v < 0x1_0000_0000
let fits_i32 v = v >= -0x8000_0000 && v < 0x8000_0000

(* Value-string interning rule (deterministic, mirrored by nothing: the
   reader just replays symbol-def records): intern strings of <= 64
   bytes while the u16 id space lasts, inline everything else.  Fixed
   vocabulary strings (event names, fault kinds, field keys) must
   intern; running out of id space for those is a hard error rather
   than a silent layout change. *)
let max_interned_value_len = 64

type binary_writer = {
  wbuf : Buffer.t;
  woc : out_channel;
  wsymbols : (string, int) Hashtbl.t;
  mutable wnext : int;
}

let binary_flush_threshold = 1 lsl 16

let intern w s =
  match Hashtbl.find_opt w.wsymbols s with
  | Some id -> Some id
  | None ->
      if w.wnext < 0x10000 && String.length s <= 0xffff then begin
        let id = w.wnext in
        w.wnext <- id + 1;
        Hashtbl.add w.wsymbols s id;
        add_u8 w.wbuf tag_symbol;
        add_u16 w.wbuf (String.length s);
        Buffer.add_string w.wbuf s;
        Some id
      end
      else None

let intern_exn w s =
  match intern w s with
  | Some id -> id
  | None ->
      failwith
        ("Trace: binary symbol table cannot hold name " ^ String.escaped s
       ^ " (65536 ids, 65535-byte names); use the JSONL sink")

let sym_of w s = Hashtbl.find_opt w.wsymbols s

let sym_get w s =
  match sym_of w s with Some id -> id | None -> assert false (* interned *)

(* Interning appends whole symbol-def records to the stream, so it must
   happen *before* the event record's first byte: phase 1 interns every
   name the event needs, phase 2 appends the record using lookups only. *)
let intern_str w s = if String.length s <= max_interned_value_len then ignore (intern w s)

let intern_fields w fields =
  List.iter
    (fun (k, v) ->
      ignore (intern_exn w k);
      match v with String s -> intern_str w s | _ -> ())
    fields

(* value := u8 tag, payload.  0 i32 | 1 i64 | 2 f64 bits | 3 bool u8 |
   4 symbol u16 | 5 inline u32 length + bytes. *)
let write_value w = function
  | Int i ->
      if fits_i32 i then begin
        add_u8 w.wbuf 0;
        add_i32 w.wbuf i
      end
      else begin
        add_u8 w.wbuf 1;
        add_i64 w.wbuf i
      end
  | Float f ->
      add_u8 w.wbuf 2;
      add_f64 w.wbuf f
  | Bool b ->
      add_u8 w.wbuf 3;
      add_u8 w.wbuf (if b then 1 else 0)
  | String s -> (
      match sym_of w s with
      | Some id ->
          add_u8 w.wbuf 4;
          add_u16 w.wbuf id
      | None ->
          add_u8 w.wbuf 5;
          add_u32 w.wbuf (String.length s);
          Buffer.add_string w.wbuf s)

let write_str w s = write_value w (String s)

let write_fields w fields =
  let nf = List.length fields in
  if nf > 0xff then failwith "Trace: too many fields for a binary record";
  add_u8 w.wbuf nf;
  List.iter
    (fun (k, v) ->
      add_u16 w.wbuf (sym_get w k);
      write_value w v)
    fields

let binary_emit w ev =
  (* phase 1: symbol definitions *)
  (match ev with
  | Round _ -> ()
  | Span s ->
      ignore (intern_exn w s.name);
      intern_fields w s.fields
  | Adversary a ->
      ignore (intern_exn w a.kind);
      intern_fields w a.fields
  | Note n ->
      ignore (intern_exn w n.name);
      intern_fields w n.fields
  | Fault f ->
      ignore (intern_exn w f.kind);
      intern_fields w f.fields
  | Request r ->
      intern_str w r.op;
      intern_str w r.status
  | Progress p ->
      intern_str w p.sweep;
      intern_str w p.cell);
  (* phase 2: the event record *)
  (match ev with
  | Round r ->
      if
        fits_u32 r.round && fits_u32 r.msgs && r.bits >= 0
        && fits_u32 r.max_node_bits && fits_u16 r.max_node_msgs
        && fits_u32 r.blocked
      then begin
        add_u8 w.wbuf tag_round;
        add_u32 w.wbuf r.round;
        add_u32 w.wbuf r.msgs;
        add_i64 w.wbuf r.bits;
        add_u32 w.wbuf r.max_node_bits;
        add_u16 w.wbuf r.max_node_msgs;
        add_u32 w.wbuf r.blocked
      end
      else begin
        add_u8 w.wbuf tag_round_wide;
        add_i64 w.wbuf r.round;
        add_i64 w.wbuf r.msgs;
        add_i64 w.wbuf r.bits;
        add_i64 w.wbuf r.max_node_bits;
        add_i64 w.wbuf r.max_node_msgs;
        add_i64 w.wbuf r.blocked
      end
  | Span s ->
      add_u8 w.wbuf tag_span;
      add_u16 w.wbuf (sym_get w s.name);
      add_i64 w.wbuf s.rounds;
      write_fields w s.fields
  | Adversary a ->
      add_u8 w.wbuf tag_adversary;
      add_u16 w.wbuf (sym_get w a.kind);
      write_fields w a.fields
  | Note n ->
      add_u8 w.wbuf tag_note;
      add_u16 w.wbuf (sym_get w n.name);
      write_fields w n.fields
  | Fault f ->
      if not (fits_u32 f.round) then
        failwith "Trace: fault round exceeds the binary u32 width";
      add_u8 w.wbuf tag_fault;
      add_u16 w.wbuf (sym_get w f.kind);
      add_u32 w.wbuf f.round;
      write_fields w f.fields
  | Request r -> (
      match (sym_of w r.op, sym_of w r.status) with
      | Some op_id, Some status_id
        when fits_u8 op_id && fits_u8 status_id && fits_u32 r.round
             && fits_u32 r.client && fits_u16 r.latency && fits_u16 r.hops ->
          add_u8 w.wbuf tag_request;
          add_u8 w.wbuf op_id;
          add_u32 w.wbuf r.round;
          add_u32 w.wbuf r.client;
          add_u16 w.wbuf r.latency;
          add_u16 w.wbuf r.hops;
          add_u8 w.wbuf status_id
      | _ ->
          add_u8 w.wbuf tag_request_wide;
          write_str w r.op;
          add_i64 w.wbuf r.round;
          add_i64 w.wbuf r.client;
          add_i64 w.wbuf r.latency;
          add_i64 w.wbuf r.hops;
          write_str w r.status)
  | Progress p ->
      add_u8 w.wbuf tag_progress;
      write_str w p.sweep;
      write_str w p.cell;
      add_i64 w.wbuf p.index;
      add_i64 w.wbuf p.completed;
      add_i64 w.wbuf p.total;
      add_f64 w.wbuf p.wall_s;
      add_u8 w.wbuf (if p.cached then 1 else 0));
  if Buffer.length w.wbuf >= binary_flush_threshold then begin
    Buffer.output_buffer w.woc w.wbuf;
    Buffer.clear w.wbuf
  end

let binary_writer_of_channel oc =
  set_binary_mode_out oc true;
  let w =
    {
      wbuf = Buffer.create binary_flush_threshold;
      woc = oc;
      wsymbols = Hashtbl.create 64;
      wnext = 0;
    }
  in
  Buffer.add_string w.wbuf binary_magic;
  add_u16 w.wbuf binary_version;
  add_u8 w.wbuf (List.length binary_kind_table);
  List.iter
    (fun (tag, name) ->
      add_u8 w.wbuf tag;
      add_u8 w.wbuf (String.length name);
      Buffer.add_string w.wbuf name)
    binary_kind_table;
  w

(* ---------- binary reader ---------- *)

let read_exact ic len =
  let b = Bytes.create len in
  really_input ic b 0 len;
  b

let r_u8 ic = Char.code (input_char ic)
let r_u16 ic = Bytes.get_uint16_le (read_exact ic 2) 0
let r_i32 ic = Int32.to_int (Bytes.get_int32_le (read_exact ic 4) 0)
let r_u32 ic = r_i32 ic land 0xffff_ffff
let r_i64 ic = Int64.to_int (Bytes.get_int64_le (read_exact ic 8) 0)
let r_f64 ic = Int64.float_of_bits (Bytes.get_int64_le (read_exact ic 8) 0)
let r_str ic len = Bytes.to_string (read_exact ic len)

type binary_reader = {
  ric : in_channel;
  mutable rsyms : string array;
  mutable rcount : int;
}

let r_add_sym r s =
  if r.rcount >= Array.length r.rsyms then begin
    let ns = Array.make (2 * Array.length r.rsyms) "" in
    Array.blit r.rsyms 0 ns 0 r.rcount;
    r.rsyms <- ns
  end;
  r.rsyms.(r.rcount) <- s;
  r.rcount <- r.rcount + 1

let r_sym r id =
  if id < r.rcount then r.rsyms.(id)
  else
    failwith
      (Printf.sprintf "Trace: corrupt binary trace (symbol %d of %d)" id
         r.rcount)

let r_value r =
  match r_u8 r.ric with
  | 0 -> Int (r_i32 r.ric)
  | 1 -> Int (r_i64 r.ric)
  | 2 -> Float (r_f64 r.ric)
  | 3 -> Bool (r_u8 r.ric <> 0)
  | 4 -> String (r_sym r (r_u16 r.ric))
  | 5 ->
      let len = r_u32 r.ric in
      String (r_str r.ric len)
  | t -> failwith (Printf.sprintf "Trace: corrupt binary trace (value tag %d)" t)

let r_strval r =
  match r_value r with
  | String s -> s
  | _ -> failwith "Trace: corrupt binary trace (expected a string value)"

let r_fields r =
  let nf = r_u8 r.ric in
  let rec go i acc =
    if i = nf then List.rev acc
    else
      let k = r_sym r (r_u16 r.ric) in
      let v = r_value r in
      go (i + 1) ((k, v) :: acc)
  in
  go 0 []

let fold_binary_channel ic ~init ~f =
  set_binary_mode_in ic true;
  (try
     if r_str ic (String.length binary_magic) <> binary_magic then
       failwith "Trace: not a binary trace (bad magic)"
   with End_of_file -> failwith "Trace: not a binary trace (short header)");
  let version = r_u16 ic in
  if version <> binary_version then
    failwith
      (Printf.sprintf "Trace: unsupported binary trace version %d (expected %d)"
         version binary_version);
  let nkinds = r_u8 ic in
  for _ = 1 to nkinds do
    let _tag = r_u8 ic in
    let len = r_u8 ic in
    ignore (r_str ic len)
  done;
  let r = { ric = ic; rsyms = Array.make 64 ""; rcount = 0 } in
  let decode tag =
    if tag = tag_symbol then begin
      let len = r_u16 ic in
      r_add_sym r (r_str ic len);
      None
    end
    else if tag = tag_round then begin
      let round = r_u32 ic in
      let msgs = r_u32 ic in
      let bits = r_i64 ic in
      let max_node_bits = r_u32 ic in
      let max_node_msgs = r_u16 ic in
      let blocked = r_u32 ic in
      Some (Round { round; msgs; bits; max_node_bits; max_node_msgs; blocked })
    end
    else if tag = tag_round_wide then begin
      let round = r_i64 ic in
      let msgs = r_i64 ic in
      let bits = r_i64 ic in
      let max_node_bits = r_i64 ic in
      let max_node_msgs = r_i64 ic in
      let blocked = r_i64 ic in
      Some (Round { round; msgs; bits; max_node_bits; max_node_msgs; blocked })
    end
    else if tag = tag_span then begin
      let name = r_sym r (r_u16 ic) in
      let rounds = r_i64 ic in
      let fields = r_fields r in
      Some (Span { name; rounds; fields })
    end
    else if tag = tag_adversary then begin
      let kind = r_sym r (r_u16 ic) in
      let fields = r_fields r in
      Some (Adversary { kind; fields })
    end
    else if tag = tag_note then begin
      let name = r_sym r (r_u16 ic) in
      let fields = r_fields r in
      Some (Note { name; fields })
    end
    else if tag = tag_fault then begin
      let kind = r_sym r (r_u16 ic) in
      let round = r_u32 ic in
      let fields = r_fields r in
      Some (Fault { kind; round; fields })
    end
    else if tag = tag_request then begin
      let op = r_sym r (r_u8 ic) in
      let round = r_u32 ic in
      let client = r_u32 ic in
      let latency = r_u16 ic in
      let hops = r_u16 ic in
      let status = r_sym r (r_u8 ic) in
      Some (Request { op; round; client; latency; hops; status })
    end
    else if tag = tag_request_wide then begin
      let op = r_strval r in
      let round = r_i64 ic in
      let client = r_i64 ic in
      let latency = r_i64 ic in
      let hops = r_i64 ic in
      let status = r_strval r in
      Some (Request { op; round; client; latency; hops; status })
    end
    else if tag = tag_progress then begin
      let sweep = r_strval r in
      let cell = r_strval r in
      let index = r_i64 ic in
      let completed = r_i64 ic in
      let total = r_i64 ic in
      let wall_s = r_f64 ic in
      let cached = r_u8 ic <> 0 in
      Some (Progress { sweep; cell; index; completed; total; wall_s; cached })
    end
    else
      failwith
        (Printf.sprintf "Trace: corrupt binary trace (unknown record tag %d)"
           tag)
  in
  let rec loop acc =
    match input_char ic with
    | exception End_of_file -> acc
    | c -> (
        let decoded =
          try decode (Char.code c)
          with End_of_file ->
            failwith "Trace: corrupt binary trace (truncated record)"
        in
        match decoded with None -> loop acc | Some ev -> loop (f acc ev))
  in
  loop init

let fold_binary_file path ~init ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> fold_binary_channel ic ~init ~f)

let read_binary_file path =
  List.rev (fold_binary_file path ~init:[] ~f:(fun acc ev -> ev :: acc))

let is_binary_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match r_str ic (String.length binary_magic) with
          | magic -> magic = binary_magic
          | exception End_of_file -> false)

(* ---------- sinks ---------- *)

let of_channel ?(format = Jsonl) oc =
  match format with
  | Binary ->
      let w = binary_writer_of_channel oc in
      make
        ~emit:(fun ev -> binary_emit w ev)
        ~close:(fun () ->
          Buffer.output_buffer oc w.wbuf;
          Buffer.clear w.wbuf;
          flush oc)
  | Jsonl | Csv ->
      (match format with
      | Csv ->
          output_string oc csv_header;
          output_char oc '\n'
      | _ -> ());
      let line =
        match format with Csv -> csv_of_event | _ -> jsonl_of_event
      in
      make
        ~emit:(fun ev ->
          output_string oc (line ev);
          output_char oc '\n')
        ~close:(fun () -> flush oc)

let open_file ?format path =
  let format =
    match format with
    | Some f -> f
    | None ->
        if Filename.check_suffix path ".csv" then Csv
        else if Filename.check_suffix path ".bin" then Binary
        else Jsonl
  in
  let oc = open_out_bin path in
  let inner = of_channel ~format oc in
  make ~emit:inner.emit_fn ~close:(fun () ->
      inner.close_fn ();
      close_out oc)

(* ---------- parsing (flat objects only) ---------- *)

exception Bad

let parse_jsonl_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= n then raise Bad;
              let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
              pos := !pos + 4;
              if code < 256 then Buffer.add_char buf (Char.chr code)
              else raise Bad
          | _ -> raise Bad);
          advance ();
          go ())
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    match peek () with
    | '"' -> String (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else raise Bad
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else raise Bad
    | _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !pos < n && is_num line.[!pos] do
          advance ()
        done;
        if !pos = start then raise Bad;
        let tok = String.sub line start (!pos - start) in
        if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> raise Bad
        else (
          match int_of_string_opt tok with
          | Some i -> Int i
          | None -> raise Bad)
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    if peek () = '}' then Some []
    else begin
      let out = ref [] in
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        out := (k, v) :: !out;
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ();
      skip_ws ();
      if !pos <> n then raise Bad;
      Some (List.rev !out)
    end
  with Bad | Invalid_argument _ | Failure _ -> None
