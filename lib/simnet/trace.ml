type value = Int of int | Float of float | Bool of bool | String of string

type event =
  | Round of {
      round : int;
      msgs : int;
      bits : int;
      max_node_bits : int;
      max_node_msgs : int;
      blocked : int;
    }
  | Span of { name : string; rounds : int; fields : (string * value) list }
  | Adversary of { kind : string; fields : (string * value) list }
  | Note of { name : string; fields : (string * value) list }
  | Fault of { kind : string; round : int; fields : (string * value) list }
  | Request of {
      op : string;
      round : int;
      client : int;
      latency : int;
      hops : int;
      status : string;
    }
  | Progress of {
      sweep : string;
      cell : string;
      index : int;
      completed : int;
      total : int;
      wall_s : float;
      cached : bool;
    }

type format = Jsonl | Csv

type t = {
  enabled : bool;
  emit_fn : event -> unit;
  close_fn : unit -> unit;
  mutable closed : bool;
}

let null =
  { enabled = false; emit_fn = ignore; close_fn = ignore; closed = false }

let enabled t = t.enabled

let make ~emit ~close =
  { enabled = true; emit_fn = emit; close_fn = close; closed = false }

let emit t ev = if t.enabled && not t.closed then t.emit_fn ev

let close t =
  if t.enabled && not t.closed then begin
    t.closed <- true;
    t.close_fn ()
  end

let round_of_summary ?(blocked = 0) (s : Metrics.round_summary) =
  Round
    {
      round = s.Metrics.round;
      msgs = s.Metrics.msgs;
      bits = s.Metrics.bits;
      max_node_bits = s.Metrics.max_node_bits;
      max_node_msgs = s.Metrics.max_node_msgs;
      blocked;
    }

(* ---------- serialization ---------- *)

let add_json_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_json_value buf = function
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_nan f then add_json_string buf "nan"
      else if f = Float.infinity then add_json_string buf "inf"
      else if f = Float.neg_infinity then add_json_string buf "-inf"
      else Buffer.add_string buf (Printf.sprintf "%.12g" f)
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | String s -> add_json_string buf s

(* The wire pairs of an event: a fixed discriminator first, then the
   event's own fields.  Field names never collide with the fixed keys. *)
let pairs_of_event = function
  | Round r ->
      [
        ("ev", String "round");
        ("round", Int r.round);
        ("msgs", Int r.msgs);
        ("bits", Int r.bits);
        ("max_node_bits", Int r.max_node_bits);
        ("max_node_msgs", Int r.max_node_msgs);
        ("blocked", Int r.blocked);
      ]
  | Span s ->
      ("ev", String "span") :: ("name", String s.name)
      :: ("rounds", Int s.rounds) :: s.fields
  | Adversary a -> ("ev", String "adversary") :: ("kind", String a.kind) :: a.fields
  | Note n -> ("ev", String "note") :: ("name", String n.name) :: n.fields
  | Fault f ->
      ("ev", String "fault") :: ("kind", String f.kind)
      :: ("round", Int f.round) :: f.fields
  | Request r ->
      [
        ("ev", String "request");
        ("op", String r.op);
        ("round", Int r.round);
        ("client", Int r.client);
        ("latency", Int r.latency);
        ("hops", Int r.hops);
        ("status", String r.status);
      ]
  | Progress p ->
      [
        ("ev", String "progress");
        ("sweep", String p.sweep);
        ("cell", String p.cell);
        ("index", Int p.index);
        ("completed", Int p.completed);
        ("total", Int p.total);
        ("wall_s", Float p.wall_s);
        ("cached", Bool p.cached);
      ]

let jsonl_of_pairs ?float_repr pairs =
  let add_value =
    match float_repr with
    | None -> add_json_value
    | Some repr -> (
        fun buf -> function
          | Float f when Float.is_nan f -> add_json_string buf "nan"
          | Float f when f = Float.infinity -> add_json_string buf "inf"
          | Float f when f = Float.neg_infinity -> add_json_string buf "-inf"
          | Float f -> Buffer.add_string buf (repr f)
          | v -> add_json_value buf v)
  in
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      add_json_string buf k;
      Buffer.add_char buf ':';
      add_value buf v)
    pairs;
  Buffer.add_char buf '}';
  Buffer.contents buf

let jsonl_of_event ev = jsonl_of_pairs (pairs_of_event ev)

let csv_header = "ev,name,round,rounds,msgs,bits,max_node_bits,max_node_msgs,blocked,fields"

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let string_of_value = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%.12g" f
  | Bool b -> string_of_bool b
  | String s -> s

let csv_fields fields =
  csv_escape
    (String.concat ";"
       (List.map (fun (k, v) -> k ^ "=" ^ string_of_value v) fields))

let csv_of_event = function
  | Round r ->
      Printf.sprintf "round,,%d,1,%d,%d,%d,%d,%d," r.round r.msgs r.bits
        r.max_node_bits r.max_node_msgs r.blocked
  | Span s ->
      Printf.sprintf "span,%s,,%d,,,,,,%s" (csv_escape s.name) s.rounds
        (csv_fields s.fields)
  | Adversary a ->
      Printf.sprintf "adversary,%s,,,,,,,,%s" (csv_escape a.kind)
        (csv_fields a.fields)
  | Note n ->
      Printf.sprintf "note,%s,,,,,,,,%s" (csv_escape n.name)
        (csv_fields n.fields)
  | Fault f ->
      Printf.sprintf "fault,%s,%d,,,,,,,%s" (csv_escape f.kind) f.round
        (csv_fields f.fields)
  | Request r ->
      Printf.sprintf "request,%s,%d,,,,,,,%s" (csv_escape r.op) r.round
        (csv_fields
           [
             ("client", Int r.client);
             ("latency", Int r.latency);
             ("hops", Int r.hops);
             ("status", String r.status);
           ])
  | Progress p ->
      Printf.sprintf "progress,%s,,,,,,,,%s" (csv_escape p.sweep)
        (csv_fields
           [
             ("cell", String p.cell);
             ("index", Int p.index);
             ("completed", Int p.completed);
             ("total", Int p.total);
             ("wall_s", Float p.wall_s);
             ("cached", Bool p.cached);
           ])

let of_channel ?(format = Jsonl) oc =
  (match format with
  | Jsonl -> ()
  | Csv ->
      output_string oc csv_header;
      output_char oc '\n');
  let line = match format with Jsonl -> jsonl_of_event | Csv -> csv_of_event in
  make
    ~emit:(fun ev ->
      output_string oc (line ev);
      output_char oc '\n')
    ~close:(fun () -> flush oc)

let open_file ?format path =
  let format =
    match format with
    | Some f -> f
    | None -> if Filename.check_suffix path ".csv" then Csv else Jsonl
  in
  let oc = open_out path in
  let inner = of_channel ~format oc in
  make ~emit:inner.emit_fn ~close:(fun () ->
      inner.close_fn ();
      close_out oc)

(* ---------- parsing (flat objects only) ---------- *)

exception Bad

let parse_jsonl_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else line.[!pos] in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c = if peek () <> c then raise Bad else advance () in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' -> (
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
              if !pos + 4 >= n then raise Bad;
              let code = int_of_string ("0x" ^ String.sub line (!pos + 1) 4) in
              pos := !pos + 4;
              if code < 256 then Buffer.add_char buf (Char.chr code)
              else raise Bad
          | _ -> raise Bad);
          advance ();
          go ())
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_value () =
    match peek () with
    | '"' -> String (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else raise Bad
    | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else raise Bad
    | _ ->
        let start = !pos in
        let is_num c =
          (c >= '0' && c <= '9')
          || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
        in
        while !pos < n && is_num line.[!pos] do
          advance ()
        done;
        if !pos = start then raise Bad;
        let tok = String.sub line start (!pos - start) in
        if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> raise Bad
        else (
          match int_of_string_opt tok with
          | Some i -> Int i
          | None -> raise Bad)
  in
  try
    skip_ws ();
    expect '{';
    skip_ws ();
    if peek () = '}' then Some []
    else begin
      let out = ref [] in
      let rec members () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        skip_ws ();
        let v = parse_value () in
        out := (k, v) :: !out;
        skip_ws ();
        match peek () with
        | ',' ->
            advance ();
            members ()
        | '}' -> advance ()
        | _ -> raise Bad
      in
      members ();
      skip_ws ();
      if !pos <> n then raise Bad;
      Some (List.rev !out)
    end
  with Bad | Invalid_argument _ | Failure _ -> None
