(** Synchronous message-passing engine (the model of Section 1.1).

    A round has three steps: every node (1) receives the messages sent to it
    in the previous round, (2) computes locally, (3) sends one message per
    destination it chooses.  The engine drives the mailbox plumbing; a
    protocol driver supplies the compute step.

    Blocking semantics under DoS-attacks (Section 1.1): a message sent from
    [v] to [w] in round [i] is received and processed by [w] iff [v] is
    non-blocked in round [i] and [w] is non-blocked in rounds [i] and
    [i + 1].  The engine enforces all three conditions; drivers only need to
    refrain from computing on behalf of currently blocked nodes (and
    [deliver_and_step] below does even that for you).

    On top of the blocking rule the engine can apply a deterministic
    {!Faults.plan}: per-message drop, duplication, bounded delay and inbox
    reordering, plus node-level crash-stop / crash-recover schedules.
    Faults fire at the delivery boundary, after the blocking rule, and draw
    from the plan's own random stream, so the protocol's coin flips are
    unperturbed and same-seed runs stay byte-identical.  Each applied fault
    emits a typed {!Trace.Fault} event; without a plan the overhead is one
    [option] check per delivery.

    {2 Sharded round core}

    Internally nodes are split into K destination shards of [2^shard_bits]
    nodes; sends stage into per-(sender-shard × dest-shard) lanes backed by
    contiguous grow-once planes (Bigarrays for the int columns), and
    delivery merges each dest shard's lanes with a counting sort — a linear
    sweep per shard instead of n random mailbox hops.  With [domains > 1]
    the merge (and the fault-free delivery paths) runs one shard per
    worker domain.

    Inbox order contract: a destination receives its messages grouped by
    sender shard (ascending), in send order within each sender shard.
    Sends issued from the compute step with [~src:me] — every driver in
    this repository — arrive in exactly the historical global send order,
    so same-seed traces are byte-identical at any shard count and any
    domain count.  Only manual out-of-compute sends interleaving multiple
    sender shards can observe the shard grouping.

    Typical use:
    {[
      let eng = Engine.create ~n ~msg_bits () in
      for _ = 1 to rounds do
        Engine.set_blocked eng (adversary ());
        Engine.deliver_and_step eng (fun ~round ~me ~inbox -> ... sends ...)
      done
    ]} *)

type 'msg t

type losses = {
  dropped : int;  (** messages killed by a drop fault *)
  duplicated : int;  (** duplicate copies injected by a duplication fault *)
  delayed : int;  (** messages held back by a delay fault (later delivered) *)
  crash_lost : int;  (** messages lost to a crashed endpoint *)
  subset_lost : int;
      (** inbox messages discarded because the destination did not compute in
          the delivery round ({!deliver_and_step_subset}) *)
}

val create :
  ?metrics:bool ->
  ?trace:Trace.t ->
  ?faults:Faults.plan ->
  ?domains:int ->
  ?shard_bits:int ->
  n:int ->
  msg_bits:('msg -> int) ->
  unit ->
  'msg t
(** [msg_bits] prices each message for communication-work accounting.
    [metrics] defaults to [true].  [trace] (default {!Trace.null}) receives
    one [Round] event per completed round, carrying the round's metrics
    summary and the size of its blocked set; with the null trace the
    instrumentation is a single boolean check per round.  [faults] installs
    a fault plan ({!Faults.install}); omitting it, or passing a plan for
    which {!Faults.is_none} holds, runs the fault-free engine.

    [domains] (default {!Parallel.default_domains}, so [OVERLAY_DOMAINS]
    applies) bounds the worker domains used for intra-round shard
    parallelism; results are byte-identical for every value.  [shard_bits]
    (default 14, clamped to [4, 20]; the [OVERLAY_SHARD_BITS] environment
    variable overrides the default) sets the destination-shard width —
    results are independent of it for compute-driven sends, so it is a
    tuning/testing knob, not a semantic one. *)

val create_hosted :
  ?metrics:bool ->
  ?shard_bits:int ->
  trace:Trace.t ->
  domains:int ->
  faults:Faults.t option ->
  n:int ->
  msg_bits:('msg -> int) ->
  unit ->
  'msg t
(** Build an engine that shares an already-installed fault handle —
    {!Runtime.engine} uses this so an engine and its hosting runtime draw
    from one fault stream in program order.  The hosted engine never calls
    {!Faults.tick}: crash/recover transitions (and their trace events) are
    the host's responsibility, once per round. *)

val n : _ t -> int
val round : _ t -> int
(** Index of the current round, starting at 0. *)

val domains : _ t -> int
(** The engine's worker-domain bound (at least 1). *)

val shard_count : _ t -> int
(** Number of destination shards, [ceil (n / 2^shard_bits)].  A function
    of [n] and [shard_bits] only — never of [domains]. *)

val losses : _ t -> losses
(** Running totals of injected faults and lost inboxes since creation. *)

val fault_plan : _ t -> Faults.plan option
(** The installed plan, if any ([None] when fault-free). *)

val set_blocked : _ t -> (int -> bool) -> unit
(** Install the blocked-set for the current round.  Must be called before
    the round's delivery/compute.  The predicate applies to this round only:
    after the round completes it resets to "nobody blocked", so an adversary
    that attacks every round must call this every round.

    Raises [Invalid_argument] if any [send] already happened this round:
    queued messages were filtered against the old blocked-set, so swapping
    it mid-round would silently mis-apply the blocking rule. *)

val is_blocked : _ t -> int -> bool

val is_crashed : _ t -> int -> bool
(** Whether the node is currently crash-stopped by the fault plan (always
    [false] without one).  Crashed nodes neither send, receive, nor
    compute; unlike blocking, every message lost to a crash is counted in
    {!losses}. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message during the current round; it is delivered at the start
    of the next round, subject to the blocking rule.  Sends from a currently
    blocked [src] are dropped immediately (and not charged); sends touching
    a crashed endpoint are dropped and counted as [crash_lost]. *)

val deliver_and_step :
  'msg t ->
  (round:int -> me:int -> inbox:(int * 'msg) list -> unit) ->
  unit
(** Run one full round: deliver last round's messages, invoke the compute
    function for every non-blocked, non-crashed node (inbox pairs are
    [(sender, msg)] in arrival order per the inbox order contract above;
    messages released from a delay fault come first), then advance the
    round counter.  The compute function performs its sends via [send].
    Compute runs sequentially over ascending node ids, so the callback may
    freely share state. *)

val deliver_and_step_subset :
  'msg t ->
  nodes:int array ->
  (round:int -> me:int -> inbox:(int * 'msg) list -> unit) ->
  unit
(** Same, but only the given nodes compute.  Messages delivered to a node
    that does not compute this round are lost, matching the synchronous
    model where an unprocessed inbox is overwritten next round; each such
    loss is counted as [subset_lost] and summarized per round in an
    ["engine/subset_lost"] trace note. *)

(** {2 Flat delivery — the million-node path}

    [deliver_and_step_flat] exposes each inbox as a {!slice}: a reused
    window over the engine's merged per-shard planes.  A round allocates
    nothing per message — no list cells, no tuples — and with
    [domains > 1] the compute step itself runs one dest shard per worker
    domain.  Same inbox contents and order as {!deliver_and_step},
    verified by the sharded-engine equivalence tests. *)

type 'msg slice
(** A borrowed view of one node's inbox.  Valid only for the duration of
    the compute callback it was passed to; do not store it. *)

val slice_len : _ slice -> int
val slice_src : _ slice -> int -> int
val slice_msg : 'msg slice -> int -> 'msg
val slice_iter : (src:int -> 'msg -> unit) -> 'msg slice -> unit
val slice_fold : ('a -> src:int -> 'msg -> 'a) -> 'a -> 'msg slice -> 'a

val deliver_and_step_flat :
  'msg t ->
  (round:int -> me:int -> inbox:'msg slice -> unit) ->
  unit
(** Run one full round on the flat path.  Requires a fault-free engine
    created with [~metrics:false] (raises [Invalid_argument] otherwise):
    fault rolls and metrics accounting are inherently sequential and list
    shaped, so they live on {!deliver_and_step}.  Blocking is honored
    exactly as on the list path.

    When the engine has [domains > 1] and more than one shard, compute
    callbacks run concurrently (one dest shard per worker).  The callback
    must then confine itself to [me]-local state and send with [~src:me]
    — true of every round-based protocol in this repository.  Determinism
    is unaffected: inbox order and send order are position-determined
    regardless of the domain count. *)

val metrics : _ t -> Metrics.t
(** Raises [Invalid_argument] if the engine was created with
    [~metrics:false]. *)
