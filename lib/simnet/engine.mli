(** Synchronous message-passing engine (the model of Section 1.1).

    A round has three steps: every node (1) receives the messages sent to it
    in the previous round, (2) computes locally, (3) sends one message per
    destination it chooses.  The engine drives the mailbox plumbing; a
    protocol driver supplies the compute step.

    Blocking semantics under DoS-attacks (Section 1.1): a message sent from
    [v] to [w] in round [i] is received and processed by [w] iff [v] is
    non-blocked in round [i] and [w] is non-blocked in rounds [i] and
    [i + 1].  The engine enforces all three conditions; drivers only need to
    refrain from computing on behalf of currently blocked nodes (and
    [deliver_and_step] below does even that for you).

    On top of the blocking rule the engine can apply a deterministic
    {!Faults.plan}: per-message drop, duplication, bounded delay and inbox
    reordering, plus node-level crash-stop / crash-recover schedules.
    Faults fire at the delivery boundary, after the blocking rule, and draw
    from the plan's own random stream, so the protocol's coin flips are
    unperturbed and same-seed runs stay byte-identical.  Each applied fault
    emits a typed {!Trace.Fault} event; without a plan the overhead is one
    [option] check per delivery.

    Typical use:
    {[
      let eng = Engine.create ~n ~msg_bits () in
      for _ = 1 to rounds do
        Engine.set_blocked eng (adversary ());
        Engine.deliver_and_step eng (fun ~round ~me ~inbox -> ... sends ...)
      done
    ]} *)

type 'msg t

type losses = {
  dropped : int;  (** messages killed by a drop fault *)
  duplicated : int;  (** duplicate copies injected by a duplication fault *)
  delayed : int;  (** messages held back by a delay fault (later delivered) *)
  crash_lost : int;  (** messages lost to a crashed endpoint *)
  subset_lost : int;
      (** inbox messages discarded because the destination did not compute in
          the delivery round ({!deliver_and_step_subset}) *)
}

val create :
  ?metrics:bool ->
  ?trace:Trace.t ->
  ?faults:Faults.plan ->
  n:int ->
  msg_bits:('msg -> int) ->
  unit ->
  'msg t
(** [msg_bits] prices each message for communication-work accounting.
    [metrics] defaults to [true].  [trace] (default {!Trace.null}) receives
    one [Round] event per completed round, carrying the round's metrics
    summary and the size of its blocked set; with the null trace the
    instrumentation is a single boolean check per round.  [faults] installs
    a fault plan ({!Faults.install}); omitting it, or passing a plan for
    which {!Faults.is_none} holds, runs the fault-free engine. *)

val n : _ t -> int
val round : _ t -> int
(** Index of the current round, starting at 0. *)

val losses : _ t -> losses
(** Running totals of injected faults and lost inboxes since creation. *)

val fault_plan : _ t -> Faults.plan option
(** The installed plan, if any ([None] when fault-free). *)

val set_blocked : _ t -> (int -> bool) -> unit
(** Install the blocked-set for the current round.  Must be called before
    the round's delivery/compute.  The predicate applies to this round only:
    after the round completes it resets to "nobody blocked", so an adversary
    that attacks every round must call this every round.

    Raises [Invalid_argument] if any [send] already happened this round:
    queued messages were filtered against the old blocked-set, so swapping
    it mid-round would silently mis-apply the blocking rule. *)

val is_blocked : _ t -> int -> bool

val is_crashed : _ t -> int -> bool
(** Whether the node is currently crash-stopped by the fault plan (always
    [false] without one).  Crashed nodes neither send, receive, nor
    compute; unlike blocking, every message lost to a crash is counted in
    {!losses}. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit
(** Queue a message during the current round; it is delivered at the start
    of the next round, subject to the blocking rule.  Sends from a currently
    blocked [src] are dropped immediately (and not charged); sends touching
    a crashed endpoint are dropped and counted as [crash_lost]. *)

val deliver_and_step :
  'msg t ->
  (round:int -> me:int -> inbox:(int * 'msg) list -> unit) ->
  unit
(** Run one full round: deliver last round's messages, invoke the compute
    function for every non-blocked, non-crashed node (inbox pairs are
    [(sender, msg)] in arrival order; messages released from a delay fault
    come first), then advance the round counter.  The compute function
    performs its sends via [send]. *)

val deliver_and_step_subset :
  'msg t ->
  nodes:int array ->
  (round:int -> me:int -> inbox:(int * 'msg) list -> unit) ->
  unit
(** Same, but only the given nodes compute.  Messages delivered to a node
    that does not compute this round are lost, matching the synchronous
    model where an unprocessed inbox is overwritten next round; each such
    loss is counted as [subset_lost] and summarized per round in an
    ["engine/subset_lost"] trace note. *)

val metrics : _ t -> Metrics.t
(** Raises [Invalid_argument] if the engine was created with
    [~metrics:false]. *)
