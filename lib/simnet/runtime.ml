type feature = [ `Drop | `Duplicate | `Delay | `Reorder | `Crash | `Recover ]

let all_features : feature list =
  [ `Drop; `Duplicate; `Delay; `Reorder; `Crash; `Recover ]

let feature_name = function
  | `Drop -> "drop"
  | `Duplicate -> "duplicate"
  | `Delay -> "delay"
  | `Reorder -> "reorder"
  | `Crash -> "crash"
  | `Recover -> "recover"

let features_of_plan (p : Faults.plan) : feature list =
  List.filter
    (fun f ->
      match f with
      | `Drop -> p.Faults.drop > 0.0
      | `Duplicate -> p.Faults.duplicate > 0.0
      | `Delay -> p.Faults.delay_p > 0.0 && p.Faults.delay_max > 0
      | `Reorder -> p.Faults.reorder > 0.0
      | `Crash -> p.Faults.crash > 0
      | `Recover -> p.Faults.crash > 0 && p.Faults.recover_after > 0)
    all_features

type losses = {
  dropped : int;
  duplicated : int;
  delayed : int;
  crash_lost : int;
  subset_lost : int;
}

type t = {
  trace : Trace.t;
  faults : Faults.t option;
  domains : int;
  mutable n : int;
  mutable round : int;
  mutable epoch : int;
  mutable lost_dropped : int;
  mutable lost_duplicated : int;
  mutable lost_delayed : int;
  mutable lost_crash : int;
  (* Loss readers of the engines this runtime hosts ({!engine}); folded
     into {!losses} so epoch accounting covers leg and message losses
     alike. *)
  mutable engine_losses : (unit -> Engine.losses) list;
}

let create ?(trace = Trace.null) ?faults ?(supports = all_features)
    ?(who = "Simnet.Runtime") ?domains ~n () =
  if n <= 0 then invalid_arg (who ^ ": n <= 0");
  let faults =
    match faults with
    | Some plan when not (Faults.is_none plan) ->
        (match
           List.find_opt
             (fun f -> not (List.mem f supports))
             (features_of_plan plan)
         with
        | Some f ->
            invalid_arg
              (Printf.sprintf
                 "%s: fault plan field `%s' is not supported by this driver"
                 who (feature_name f))
        | None -> ());
        Some (Faults.install plan ~n)
    | _ -> None
  in
  let domains =
    max 1 (match domains with Some d -> d | None -> Parallel.default_domains ())
  in
  {
    trace;
    faults;
    domains;
    n;
    round = 0;
    epoch = 0;
    lost_dropped = 0;
    lost_duplicated = 0;
    lost_delayed = 0;
    lost_crash = 0;
    engine_losses = [];
  }

let trace t = t.trace
let traced t = Trace.enabled t.trace
let plan t = Option.map Faults.plan t.faults
let faulty t = t.faults <> None
let n t = t.n
let domains t = t.domains
let round t = t.round
let epoch t = t.epoch

let engine ?metrics ?shard_bits t ~msg_bits () =
  let eng =
    Engine.create_hosted ?metrics ?shard_bits ~trace:t.trace ~domains:t.domains
      ~faults:t.faults ~n:t.n ~msg_bits ()
  in
  t.engine_losses <- t.engine_losses @ [ (fun () -> Engine.losses eng) ];
  eng

let advance t ~rounds =
  if rounds < 0 then invalid_arg "Runtime.advance: rounds < 0";
  t.round <- t.round + rounds

let resize t ~n =
  if n <= 0 then invalid_arg "Runtime.resize: n <= 0";
  (match t.faults with Some f -> Faults.resize f ~n | None -> ());
  t.n <- n

let tick t =
  match t.faults with
  | None -> []
  | Some f ->
      let transitions = Faults.tick f ~round:t.round in
      if Trace.enabled t.trace then
        List.iter
          (fun (node, kind) ->
            Trace.emit t.trace
              (Trace.Fault
                 {
                   kind =
                     (match kind with `Crash -> "crash" | `Recover -> "recover");
                   round = t.round;
                   fields = [ ("node", Trace.Int node) ];
                 }))
          transitions;
      transitions

let crashed t v =
  match t.faults with Some f -> Faults.crashed f v | None -> false

let losses t =
  List.fold_left
    (fun acc read ->
      let e = read () in
      {
        dropped = acc.dropped + e.Engine.dropped;
        duplicated = acc.duplicated + e.Engine.duplicated;
        delayed = acc.delayed + e.Engine.delayed;
        crash_lost = acc.crash_lost + e.Engine.crash_lost;
        subset_lost = acc.subset_lost + e.Engine.subset_lost;
      })
    {
      dropped = t.lost_dropped;
      duplicated = t.lost_duplicated;
      delayed = t.lost_delayed;
      crash_lost = t.lost_crash;
      subset_lost = 0;
    }
    t.engine_losses

let fault_event t ~kind fields =
  if Trace.enabled t.trace then
    Trace.emit t.trace (Trace.Fault { kind; round = t.round; fields })

let leg t ?src ?dst () =
  match t.faults with
  | None -> true
  | Some f ->
      let endpoint_crashed = function
        | Some v -> Faults.crashed f v
        | None -> false
      in
      if endpoint_crashed src || endpoint_crashed dst then begin
        (* Mirrors [Engine.send]: a crashed endpoint loses the leg before
           any fault roll, observable in [losses] but not traced as an
           injected fault. *)
        t.lost_crash <- t.lost_crash + 1;
        false
      end
      else begin
        let endpoints =
          (match src with Some v -> [ ("src", Trace.Int v) ] | None -> [])
          @ (match dst with Some v -> [ ("dst", Trace.Int v) ] | None -> [])
        in
        if Faults.roll_drop f then begin
          t.lost_dropped <- t.lost_dropped + 1;
          fault_event t ~kind:"drop" endpoints;
          false
        end
        else
          let hold = Faults.roll_delay f in
          if hold > 0 then begin
            (* A leg that arrives [hold] rounds late misses its attempt's
               round: lost to the attempt, charged as delayed. *)
            t.lost_delayed <- t.lost_delayed + 1;
            fault_event t ~kind:"delay"
              (endpoints @ [ ("until", Trace.Int (t.round + hold)) ]);
            false
          end
          else begin
            if Faults.roll_duplicate f then begin
              (* The extra copy is benign at leg granularity; charge and
                 trace it so the plan's consumption stays observable. *)
              t.lost_duplicated <- t.lost_duplicated + 1;
              fault_event t ~kind:"duplicate" endpoints
            end;
            true
          end
      end

let link_drop t =
  match t.faults with
  | None -> None
  | Some f ->
      let p = Faults.plan f in
      if
        p.Faults.drop > 0.0 || p.Faults.duplicate > 0.0
        || (p.Faults.delay_p > 0.0 && p.Faults.delay_max > 0)
      then Some (fun () -> not (leg t ()))
      else None

type health = { reachable : int; reachable_fraction : float; connected : bool }

let health _t ~n ~neighbors =
  let reachable = Invariants.reachable ~n ~start:0 ~neighbors in
  {
    reachable;
    reachable_fraction = float_of_int reachable /. float_of_int n;
    connected = reachable = n;
  }

let validate_cycles t ~m cycles =
  match Invariants.check_cycles ~m cycles with
  | Ok () -> Ok ()
  | Error v ->
      if Trace.enabled t.trace then Trace.emit t.trace (Invariants.event v);
      Error v

let span t ~name ~rounds fields =
  if Trace.enabled t.trace then
    Trace.emit t.trace (Trace.Span { name; rounds; fields })

let note t ~name fields =
  if Trace.enabled t.trace then
    Trace.emit t.trace (Trace.Note { name; fields })

let adversary t ~kind fields =
  if Trace.enabled t.trace then
    Trace.emit t.trace (Trace.Adversary { kind; fields })

let request t ~op ~round ~client ~latency ~hops ~status =
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Request { op; round; client; latency; hops; status })

let emit_round t ~msgs ~bits ~max_node_bits ~max_node_msgs ~blocked =
  if Trace.enabled t.trace then
    Trace.emit t.trace
      (Trace.Round
         { round = t.round; msgs; bits; max_node_bits; max_node_msgs; blocked })

type 'a epoch_report = {
  result : 'a;
  index : int;
  rounds : int;
  epoch_losses : losses;
}

let run_epoch t driver =
  let before = losses t in
  let round_before = t.round in
  let result, rounds = driver t in
  if rounds < 0 then invalid_arg "Runtime.run_epoch: driver returned rounds < 0";
  (* The driver may have advanced rounds itself (per-round drivers do);
     only account the remainder. *)
  let accounted = t.round - round_before in
  if accounted < rounds then advance t ~rounds:(rounds - accounted);
  let after = losses t in
  let index = t.epoch in
  t.epoch <- index + 1;
  {
    result;
    index;
    rounds;
    epoch_losses =
      {
        dropped = after.dropped - before.dropped;
        duplicated = after.duplicated - before.duplicated;
        delayed = after.delayed - before.delayed;
        crash_lost = after.crash_lost - before.crash_lost;
        subset_lost = after.subset_lost - before.subset_lost;
      };
  }
