(* Shared helpers for the experiment harness. *)

let master_seed = 0x2016_5AAAL

let seed_for label trial =
  (* Derive a stable seed per (experiment, trial). *)
  let h = Hashtbl.hash (label, trial) in
  Prng.Splitmix64.mix (Int64.add master_seed (Int64.of_int h))

let rng_for label trial = Prng.Stream.of_seed (seed_for label trial)

let ns_pow2 lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let mean_of_int_list l =
  if l = [] then 0.0
  else
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let max_of_int_list l = List.fold_left max min_int l

let pct x = Stats.Table.cell_pct x
let flt ?decimals x = Stats.Table.cell_float ?decimals x
let int_c = Stats.Table.cell_int
let bool_c = Stats.Table.cell_bool

let growth_of_series series =
  Stats.Fit.growth_to_string (Stats.Fit.classify_growth (Array.of_list series))

(* ---------- machine-readable per-experiment summaries ---------- *)

(* Accumulates the headline quantities of the experiment currently running
   and renders them as one BENCH_e<k>.json object.  Counters are atomics:
   several experiments fan their trials out via [Parallel.map_list], so
   recording must be safe from any domain (the final totals are
   deterministic — addition and max are commutative). *)
module Bench = struct
  let rounds = Atomic.make 0
  let total_bits = Atomic.make 0
  let max_node_bits = Atomic.make 0

  let reset () =
    Atomic.set rounds 0;
    Atomic.set total_bits 0;
    Atomic.set max_node_bits 0

  let add_rounds k = ignore (Atomic.fetch_and_add rounds k)
  let add_bits b = ignore (Atomic.fetch_and_add total_bits b)

  let observe_max_node_bits b =
    let rec go () =
      let cur = Atomic.get max_node_bits in
      if b > cur && not (Atomic.compare_and_set max_node_bits cur b) then go ()
    in
    go ()

  let record (r : Core.Sampling_result.t) =
    add_rounds r.Core.Sampling_result.rounds;
    add_bits r.Core.Sampling_result.total_bits;
    observe_max_node_bits r.Core.Sampling_result.max_round_node_bits

  let record_metrics (m : Simnet.Metrics.t) =
    add_rounds (Simnet.Metrics.rounds m);
    add_bits (Simnet.Metrics.total_bits m);
    observe_max_node_bits (Simnet.Metrics.max_node_bits_ever m)

  let to_json ~name ~wall_s =
    Printf.sprintf
      {|{"experiment":"%s","rounds":%d,"total_bits":%d,"max_node_bits":%d,"wall_s":%.3f}|}
      name (Atomic.get rounds) (Atomic.get total_bits)
      (Atomic.get max_node_bits) wall_s
end

(* The trace sink of the current harness invocation (installed by main.ml
   from --trace; Trace.null otherwise).  Experiments pass [trace ()] to the
   sequential protocol runs they want recorded; parallel fan-outs keep the
   null trace, since interleaved emission would not be deterministic. *)
let trace_sink = ref Simnet.Trace.null
let set_trace t = trace_sink := t
let trace () = !trace_sink
