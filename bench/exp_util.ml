(* Shared helpers for the experiment harness. *)

let master_seed = 0x2016_5AAAL

let seed_for label trial =
  (* Derive a stable seed per (experiment, trial). *)
  let h = Hashtbl.hash (label, trial) in
  Prng.Splitmix64.mix (Int64.add master_seed (Int64.of_int h))

let rng_for label trial = Prng.Stream.of_seed (seed_for label trial)

let ns_pow2 lo hi = List.init (hi - lo + 1) (fun i -> 1 lsl (lo + i))

let mean_of_int_list l =
  if l = [] then 0.0
  else
    float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)

let max_of_int_list l = List.fold_left max min_int l

let pct x = Stats.Table.cell_pct x
let flt ?decimals x = Stats.Table.cell_float ?decimals x
let int_c = Stats.Table.cell_int
let bool_c = Stats.Table.cell_bool

let growth_of_series series =
  Stats.Fit.growth_to_string (Stats.Fit.classify_growth (Array.of_list series))

(* ---------- machine-readable per-experiment summaries ---------- *)

(* The headline quantities of one experiment as a plain Sweep.Agg.bench
   value.  Experiments return their record (each [unit -> Bench.t] in
   main.ml's index); parallel fan-outs return one record per cell and the
   harness sums them — [Agg.bench_add] is commutative and associative, so
   the totals are identical to what the retired global atomics
   accumulated, in any merge order. *)
module Bench = struct
  type t = Sweep.Agg.bench

  let zero = Sweep.Agg.bench_zero
  let add = Sweep.Agg.bench_add
  let sum = Sweep.Agg.bench_sum
  let rounds = Sweep.Agg.rounds
  let bits = Sweep.Agg.bits
  let node_bits = Sweep.Agg.node_bits

  let of_result (r : Core.Sampling_result.t) =
    {
      Sweep.Agg.rounds = r.Core.Sampling_result.rounds;
      total_bits = r.Core.Sampling_result.total_bits;
      max_node_bits = r.Core.Sampling_result.max_round_node_bits;
    }

  let of_metrics (m : Simnet.Metrics.t) =
    {
      Sweep.Agg.rounds = Simnet.Metrics.rounds m;
      total_bits = Simnet.Metrics.total_bits m;
      max_node_bits = Simnet.Metrics.max_node_bits_ever m;
    }

  let to_json ~name ~wall_s (b : t) =
    Printf.sprintf
      {|{"experiment":"%s","rounds":%d,"total_bits":%d,"max_node_bits":%d,"wall_s":%.3f}|}
      name b.Sweep.Agg.rounds b.Sweep.Agg.total_bits b.Sweep.Agg.max_node_bits
      wall_s
end

(* Single-domain accumulator for the sequential experiments: [note]
   folds a record in, [total] reads the running sum.  A plain ref, not
   an atomic — never share one across domains (parallel experiments
   return per-cell records instead). *)
let tally () =
  let acc = ref Bench.zero in
  ((fun b -> acc := Bench.add !acc b), fun () -> !acc)

(* ---------- Sweep plumbing for the ported fan-outs ---------- *)

(* Checkpoint codec for experiments whose cells produce one printed
   table row plus their bench counters: row cells become col0..colN
   string fields, the counters ride along as Agg.bench_pairs. *)
let row_codec : (string list * Sweep.Agg.bench) Sweep.Exec.codec =
  {
    Sweep.Exec.encode =
      (fun (row, b) ->
        List.mapi
          (fun i s -> (Printf.sprintf "col%d" i, Simnet.Trace.String s))
          row
        @ Sweep.Agg.bench_pairs b);
    decode =
      (fun pairs ->
        let row =
          List.filter_map
            (fun (k, v) ->
              match v with
              | Simnet.Trace.String s when String.starts_with ~prefix:"col" k ->
                  Some s
              | _ -> None)
            pairs
        in
        Option.map (fun b -> (row, b)) (Sweep.Agg.bench_of_pairs pairs))
  }

(* Fan a grid of table cells out through Sweep.Exec and return the rows
   (in cell order, as Parallel.map_list did) plus the summed counters. *)
let sweep_rows ?domains ~sweep cells f =
  let outcomes =
    Sweep.Exec.run ?domains ~sweep ~codec:row_codec cells
      (fun ~trace:_ cell -> f cell)
  in
  ( List.map (fun (o : _ Sweep.Exec.outcome) -> fst o.Sweep.Exec.value) outcomes,
    Bench.sum (List.map (fun (o : _ Sweep.Exec.outcome) -> snd o.Sweep.Exec.value) outcomes) )

(* Expand a grid or die: experiment grids are static, so an expansion
   error is a programming error, not an input error. *)
let grid ~sweep axes =
  match Sweep.Grid.expand ~sweep axes with
  | Ok cells -> cells
  | Error e -> failwith e

(* Extra headline fields for the current experiment's BENCH_<name>.json
   summary: [set_extra key json] queues a `"key":json` pair (the value is
   a raw JSON fragment, e.g. a number or a quoted string) that main.ml
   splices into the summary object and clears after writing.  Use for
   derived quantities a downstream consumer should not have to re-parse
   out of the printed table — e.g. E18's resilience-cliff location. *)
let extras : (string * string) list ref = ref []
let set_extra key json = extras := (key, json) :: !extras

let take_extras () =
  let e = List.rev !extras in
  extras := [];
  e

(* The trace sink of the current harness invocation (installed by main.ml
   from --trace; Trace.null otherwise).  Experiments pass [trace ()] to the
   sequential protocol runs they want recorded; parallel fan-outs keep the
   null trace, since interleaved emission would not be deterministic. *)
let trace_sink = ref Simnet.Trace.null
let set_trace t = trace_sink := t
let trace () = !trace_sink
