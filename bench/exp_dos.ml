(* Experiments E8-E10: the DoS-resistant networks of Sections 5 and 6.

   E8 regenerates the concentration statements (Lemma 16: group sizes;
   Lemma 17: a (1/2-eps)-bounded attack leaves every group
   majority-available).  E9 regenerates Theorem 6 as a lateness sweep: the
   survival crossover sits at the reconfiguration period (ablation A4).
   E10 regenerates Theorem 7 / Lemma 18 for the combined churn+DoS
   network. *)

open Exp_util

(* ---------- E8: group concentration (Lemmas 16/17) ---------- *)

let e8 () =
  let table =
    Stats.Table.create
      ~title:"E8 (Lemmas 16/17) - group sizes and attack exposure"
      ~columns:
        [
          "n"; "groups"; "size min/mean/max"; "eps"; "attack draws";
          "min avail frac"; "groups < half avail"; "groups starved";
        ]
  in
  let note, bench_total = tally () in
  List.iter
    (fun n ->
      let s = rng_for "e8" n in
      let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n () in
      (* run one clean window so the sizes come from the sampling primitive,
         not the initial scatter *)
      for _ = 1 to Core.Dos_network.period net do
        ignore (Core.Dos_network.run_round net ~blocked:(Array.make n false))
      done;
      note (Bench.rounds (Core.Dos_network.period net));
      let supernodes = Core.Dos_network.supernode_count net in
      let sizes =
        Array.init supernodes (fun x ->
            Array.length (Core.Dos_network.group_members net x))
      in
      let min_sz = Array.fold_left min max_int sizes in
      let max_sz = Array.fold_left max 0 sizes in
      let mean_sz = float_of_int n /. float_of_int supernodes in
      List.iter
        (fun eps ->
          let draws = 300 in
          let frac = 0.5 -. eps in
          let budget = int_of_float (frac *. float_of_int n) in
          let min_avail = ref 1.0 in
          let below_half = ref 0 and starved = ref 0 in
          for _ = 1 to draws do
            let blocked = Array.make n false in
            Array.iter
              (fun v -> blocked.(v) <- true)
              (Prng.Stream.sample_distinct s n ~k:budget);
            for x = 0 to supernodes - 1 do
              let members = Core.Dos_network.group_members net x in
              let avail =
                Array.fold_left
                  (fun a v -> if blocked.(v) then a else a + 1)
                  0 members
              in
              let fraction =
                float_of_int avail /. float_of_int (Array.length members)
              in
              if fraction < !min_avail then min_avail := fraction;
              if 2 * avail < Array.length members then incr below_half;
              if avail = 0 then incr starved
            done
          done;
          Stats.Table.add_row table
            [
              int_c n;
              int_c supernodes;
              Printf.sprintf "%d/%.1f/%d" min_sz mean_sz max_sz;
              flt ~decimals:2 eps;
              int_c draws;
              flt ~decimals:3 !min_avail;
              int_c !below_half;
              int_c !starved;
            ])
        [ 0.1; 0.25; 0.4 ])
    [ 4096; 16384 ];
  Stats.Table.note table
    "paper: for suitable c, a (1/2-eps)-bounded attacker blocks strictly \
     less than half of every group, w.h.p. (Lemma 17); group sizes are \
     within (1 +- delta) n/N (Lemma 16)";
  Stats.Table.print table;
  bench_total ()

(* ---------- E9: lateness crossover (Theorem 6, ablation A4) ---------- *)

let run_dos_scenario ~n ~strategy ~lateness ~frac ~windows =
  let s =
    rng_for
      (Printf.sprintf "e9-%s-%d" (Core.Dos_adversary.to_string strategy) lateness)
      n
  in
  let net =
    Core.Dos_network.create ~c:2.0 ~trace:(trace ())
      ~rng:(Prng.Stream.split s) ~n ()
  in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create ~trace:(trace ()) strategy
      ~rng:(Prng.Stream.split s) ~lateness ~frac
  in
  let starved = ref 0 and disconnected = ref 0 in
  let rounds = windows * Core.Dos_network.period net in
  for _ = 1 to rounds do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if r.Core.Dos_network.starved_groups > 0 then incr starved;
    if not r.Core.Dos_network.connected then incr disconnected
  done;
  (Core.Dos_network.period net, rounds, !starved, !disconnected)

let e9 () =
  let n = 4096 in
  let probe = Core.Dos_network.create ~c:2.0 ~rng:(rng_for "e9p" 0) ~n () in
  let p = Core.Dos_network.period probe in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E9 (Theorem 6, ablation A4) - survival vs adversary lateness, \
            n=%d, (1/2-eps)=25%% blocked/round, period=%d"
           n p)
      ~columns:
        [
          "adversary"; "lateness"; "rounds"; "starved rounds";
          "disconnected rounds"; "verdict";
        ]
  in
  let note, bench_total = tally () in
  List.iter
    (fun strategy ->
      List.iter
        (fun lateness ->
          let _, rounds, starved, disconnected =
            run_dos_scenario ~n ~strategy ~lateness ~frac:0.25 ~windows:8
          in
          note (Bench.rounds rounds);
          Stats.Table.add_row table
            [
              Core.Dos_adversary.to_string strategy;
              int_c lateness;
              int_c rounds;
              int_c starved;
              int_c disconnected;
              (if starved = 0 && disconnected = 0 then "survives" else "KILLED");
            ])
        [ 0; p / 2; p; 2 * p ])
    Core.Dos_adversary.all;
  Stats.Table.note table
    "paper: any low-degree network dies against a 0-late adversary (Sec \
     1.1); with lateness >= the reconfiguration period = Theta(log log n) \
     rounds, connectivity holds w.h.p. (Theorem 6) - the crossover sits at \
     the period";
  Stats.Table.print table;
  bench_total ()

(* ---------- E10: combined churn + DoS (Theorem 7 / Lemma 18) ---------- *)

let e10 () =
  let table =
    Stats.Table.create
      ~title:
        "E10 (Theorem 7 / Lemma 18) - combined churn + DoS, n0=4096, 20 \
         windows, group-kill adversary (late), 25% blocked/round"
      ~columns:
        [
          "churn gamma"; "windows ok"; "starved rounds"; "disc rounds";
          "dim spread max"; "Eq(1) violations"; "splits"; "merges";
          "final n"; "final supernodes";
        ]
  in
  let note, bench_total = tally () in
  List.iter
    (fun gamma ->
      let s = rng_for "e10" (int_of_float (gamma *. 100.)) in
      let net =
        Core.Churndos_network.create ~rng:(Prng.Stream.split s) ~n:4096 ()
      in
      let cube = Topology.Hypercube.create 12 in
      let adv =
        Core.Dos_adversary.create Core.Dos_adversary.Group_kill
          ~rng:(Prng.Stream.split s)
          ~lateness:(2 * Core.Churndos_network.period net)
          ~frac:0.25
      in
      let blocked_for_round ~round:_ ~group_of ~n =
        Core.Dos_adversary.observe adv ~group_of;
        Core.Dos_adversary.blocked_set adv ~cube ~n
      in
      let ok = ref 0 and starved = ref 0 and disc = ref 0 in
      let spread = ref 0 and viol = ref 0 and splits = ref 0 and merges = ref 0 in
      let windows = 20 in
      for w = 1 to windows do
        let n = Core.Churndos_network.n net in
        (* alternate growth and shrink by a factor gamma per window *)
        let joins, leave_frac =
          if w mod 2 = 1 then (int_of_float ((gamma -. 1.0) *. float_of_int n), 0.0)
          else (0, 1.0 -. (1.0 /. gamma))
        in
        let r =
          Core.Churndos_network.run_window net ~blocked_for_round ~joins
            ~leave_frac
        in
        note (Bench.rounds (Core.Churndos_network.period net));
        if r.Core.Churndos_network.reconfigured then incr ok;
        starved := !starved + r.Core.Churndos_network.starved_rounds;
        disc := !disc + r.Core.Churndos_network.disconnected_rounds;
        spread := max !spread r.Core.Churndos_network.dim_spread;
        viol := !viol + r.Core.Churndos_network.eq1_violations;
        splits := !splits + r.Core.Churndos_network.splits;
        merges := !merges + r.Core.Churndos_network.merges
      done;
      Stats.Table.add_row table
        [
          flt ~decimals:1 gamma;
          Printf.sprintf "%d/%d" !ok windows;
          int_c !starved;
          int_c !disc;
          int_c !spread;
          int_c !viol;
          int_c !splits;
          int_c !merges;
          int_c (Core.Churndos_network.n net);
          int_c (Core.Churndos_network.supernode_count net);
        ])
    [ 1.3; 2.0 ];
  Stats.Table.note table
    "paper: connectivity is maintained under simultaneous churn (rate \
     gamma^(1/Theta(log log n)) per round = factor gamma per window) and a \
     (1/2-eps)-bounded late attack (Theorem 7); dimensions stay within a \
     spread of 2 and Equation (1) holds (Lemma 18)";
  Stats.Table.print table;
  bench_total ()
