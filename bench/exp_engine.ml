(* Engine mailbox micro-benchmark: flat buffers vs the seed's lists.

   The engine's per-destination mailboxes used to be [(src, msg) list]
   cells, re-consed and reversed every round; they are now grow-once flat
   buffers (see Simnet.Engine).  This bench pits the real engine against
   an in-bench replica of the seed's list-based delivery path on an
   identical deterministic workload, and writes BENCH_engine.json with
   messages/sec and Gc.allocated_bytes per round for both, plus the
   speedup.  The replica performs the same per-message checks (blocked
   src/dst, message pricing) as the engine's fault-free hot path, so the
   difference measured is the mailbox representation, not bookkeeping. *)

let scenario =
  match Simnet.Scenario.parse "n=1024;seed=7;rounds=120" with
  | Ok sc -> sc
  | Error e -> failwith e

let n = scenario.Simnet.Scenario.n
let rounds = scenario.Simnet.Scenario.rounds
let fanout = 16
let msg_bits _ = 32

(* Fixed fan-out offsets: node [me] sends to [(me + offsets.(j)) mod n]
   every round.  No PRNG in the hot loop, identical traffic both sides. *)
let offsets =
  let rng = Simnet.Scenario.rng scenario in
  Array.init fanout (fun _ -> 1 + Prng.Stream.int rng (n - 1))

(* A transliteration of the seed engine's fault-free path with the old
   [(src, msg) list] mailboxes: same two-phase round (deliver every inbox,
   then compute), same per-send crash/blocked/metrics option checks, same
   round bookkeeping — only the mailbox representation differs. *)
module List_replica = struct
  type t = {
    n : int;
    mutable round : int;
    mutable blocked : int -> bool;
    pending : (int * int) list array;
    mutable sent_this_round : bool;
    faults : unit option;
    metrics : unit option;
  }

  let nobody_blocked _ = false

  let create () =
    {
      n;
      round = 0;
      blocked = nobody_blocked;
      pending = Array.make n [];
      sent_this_round = false;
      faults = None;
      metrics = None;
    }

  let is_crashed t _v = match t.faults with Some _ -> assert false | None -> false

  let check_node t v = if v < 0 || v >= t.n then invalid_arg "replica: node"

  let send t ~src ~dst msg =
    check_node t src;
    check_node t dst;
    t.sent_this_round <- true;
    if is_crashed t src || is_crashed t dst then ()
    else if (not (t.blocked src)) && not (t.blocked dst) then begin
      (match t.metrics with Some _ -> ignore (msg_bits msg) | None -> ());
      t.pending.(dst) <- (src, msg) :: t.pending.(dst)
    end

  let deliver_and_step t f =
    let inboxes = Array.make t.n [] in
    for dst = 0 to t.n - 1 do
      let queued = t.pending.(dst) in
      t.pending.(dst) <- [];
      if queued <> [] then begin
        if is_crashed t dst then ()
        else if t.blocked dst then ()
        else begin
          let fresh = List.rev queued in
          (match t.metrics with Some _ -> () | None -> ());
          inboxes.(dst) <- fresh
        end
      end
    done;
    let r = t.round in
    for v = 0 to t.n - 1 do
      if (not (t.blocked v)) && not (is_crashed t v) then
        f ~round:r ~me:v ~inbox:inboxes.(v)
    done;
    t.round <- t.round + 1;
    t.blocked <- nobody_blocked;
    t.sent_this_round <- false
end

(* One measured run: returns (messages/sec, allocated bytes/round) and a
   checksum so the work cannot be dead-code-eliminated. *)
let measure run =
  let wall0 = Unix.gettimeofday () in
  let alloc0 = Gc.allocated_bytes () in
  let checksum = run () in
  let alloc = Gc.allocated_bytes () -. alloc0 in
  let wall = Unix.gettimeofday () -. wall0 in
  let msgs = n * fanout * rounds in
  (float_of_int msgs /. wall, alloc /. float_of_int rounds, checksum)

let run_replica () =
  let t = List_replica.create () in
  let sum = ref 0 in
  for _ = 1 to rounds do
    List_replica.deliver_and_step t (fun ~round:_ ~me ~inbox ->
        List.iter (fun (_, msg) -> sum := !sum + msg) inbox;
        for j = 0 to fanout - 1 do
          List_replica.send t ~src:me ~dst:((me + offsets.(j)) mod n) me
        done)
  done;
  !sum

let run_engine () =
  let eng = Simnet.Engine.create ~metrics:false ~n ~msg_bits () in
  let sum = ref 0 in
  for _ = 1 to rounds do
    Simnet.Engine.deliver_and_step eng (fun ~round:_ ~me ~inbox ->
        List.iter (fun (_, msg) -> sum := !sum + msg) inbox;
        for j = 0 to fanout - 1 do
          Simnet.Engine.send eng ~src:me ~dst:((me + offsets.(j)) mod n) me
        done)
  done;
  !sum

let best side run =
  (* Warm caches and buffer growth once, then keep the fastest of three
     measured runs (allocation is identical across runs; rate is noisy). *)
  ignore (run ());
  let rate, bytes, checksum = ref 0.0, ref infinity, ref 0 in
  for _ = 1 to 3 do
    let r, b, c = measure run in
    if r > !rate then begin
      rate := r;
      bytes := b;
      checksum := c
    end
  done;
  let rate, bytes, checksum = (!rate, !bytes, !checksum) in
  Printf.printf "  %-12s %10.2f Mmsg/s  %12.0f bytes/round\n%!" side
    (rate /. 1e6) bytes;
  (rate, bytes, checksum)

(* ---------- scaling curve ----------

   The mailbox A/B above fixes n=1024; the ROADMAP target is evidence the
   engine itself scales to overlay-network sizes.  The curve runs the
   sharded engine's flat delivery path ({!Simnet.Engine.deliver_and_step_flat})
   at n up to 10^6 with a fixed fan-out, sweeping the worker-domain count,
   and records throughput plus the engine's resident heap per node (live
   words after a major GC, minus the pre-creation baseline — the
   steady-state footprint of the grown-once planes).

   Two guards keep the numbers honest: every point runs the same total
   message budget (never fewer than 4 timed rounds, so large-n points are
   not a single noisy round), and one untimed warm-up round grows every
   lane and shard plane to steady state before the clock starts.  The
   delivered-payload checksum must agree across all domain counts at each
   n — the determinism contract, spot-checked on every bench run. *)

let curve_ns = [ 4096; 16384; 65536; 262144; 1048576 ]
let curve_domains = [ 1; 2; 4; 8 ]
let curve_fanout = 8
let curve_budget = 16 * 1024 * 1024

(* (rate, resident bytes/node, checksum) for one (n, domains) point. *)
let curve_point ~domains:dd cn =
  let crounds = max 4 (curve_budget / (cn * curve_fanout)) in
  let coffsets =
    let rng = Simnet.Scenario.rng scenario in
    Array.init curve_fanout (fun _ -> 1 + Prng.Stream.int rng (cn - 1))
  in
  Gc.full_major ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let eng =
    Simnet.Engine.create ~metrics:false ~domains:dd ~n:cn ~msg_bits ()
  in
  (* Per-node accumulators: the flat path runs compute shard-parallel, so
     a shared ref would race; acc.(me) is owned by exactly one domain. *)
  let acc = Array.make cn 0 in
  let step () =
    Simnet.Engine.deliver_and_step_flat eng (fun ~round:_ ~me ~inbox ->
        Simnet.Engine.slice_iter
          (fun ~src:_ msg -> acc.(me) <- acc.(me) + msg)
          inbox;
        for j = 0 to curve_fanout - 1 do
          Simnet.Engine.send eng ~src:me ~dst:((me + coffsets.(j)) mod cn) me
        done)
  in
  (* one untimed warmup round grows the buffers to steady state *)
  step ();
  Gc.full_major ();
  let live = (Gc.stat ()).Gc.live_words in
  let resident_per_node =
    float_of_int ((live - live0) * (Sys.word_size / 8)) /. float_of_int cn
  in
  let wall0 = Unix.gettimeofday () in
  for _ = 1 to crounds do
    step ()
  done;
  let wall = Unix.gettimeofday () -. wall0 in
  let rate = float_of_int (cn * curve_fanout * crounds) /. wall in
  let checksum = Array.fold_left ( + ) 0 acc in
  Printf.printf
    "  n=%-8d domains=%d shards=%-3d rounds=%-5d %10.2f Mmsg/s  %8.1f \
     bytes/node\n\
     %!"
    cn dd
    (Simnet.Engine.shard_count eng)
    crounds (rate /. 1e6) resident_per_node;
  (rate, resident_per_node, checksum)

let curve_points cn =
  let entries =
    List.map
      (fun dd ->
        let rate, resident, checksum = curve_point ~domains:dd cn in
        ( Printf.sprintf
            {|{"n":%d,"domains":%d,"rounds":%d,"msgs_per_sec":%.0f,"resident_bytes_per_node":%.1f}|}
            cn dd
            (max 4 (curve_budget / (cn * curve_fanout)))
            rate resident,
          checksum ))
      curve_domains
  in
  (match entries with
  | (_, reference) :: rest ->
      List.iter
        (fun (_, c) ->
          if c <> reference then
            failwith
              (Printf.sprintf
                 "engine bench: checksum diverged across domains at n=%d" cn))
        rest
  | [] -> ());
  List.map fst entries

let run () =
  Printf.printf
    "engine mailbox bench: n=%d fanout=%d rounds=%d (best of 3 after warmup)\n%!"
    n fanout rounds;
  let list_rate, list_bytes, list_sum = best "list (seed)" run_replica in
  let flat_rate, flat_bytes, flat_sum = best "flat buffers" run_engine in
  if list_sum <> flat_sum then
    failwith "engine bench: checksum mismatch between list and flat runs";
  let speedup = flat_rate /. list_rate in
  let bytes_ratio = flat_bytes /. list_bytes in
  Printf.printf "  speedup: %.2fx msgs/sec, %.2fx bytes/round\n%!" speedup
    bytes_ratio;
  Printf.printf
    "engine scaling curve: fanout=%d, ~%d msgs per point, domains in \
     {%s}\n\
     %!"
    curve_fanout curve_budget
    (String.concat "," (List.map string_of_int curve_domains));
  let curve = List.concat_map curve_points curve_ns in
  let json =
    Printf.sprintf
      {|{"name":"engine","n":%d,"fanout":%d,"rounds":%d,"list":{"msgs_per_sec":%.0f,"bytes_per_round":%.0f},"flat":{"msgs_per_sec":%.0f,"bytes_per_round":%.0f},"speedup":%.4f,"bytes_ratio":%.4f,"curve":[%s]}|}
      n fanout rounds list_rate list_bytes flat_rate flat_bytes speedup
      bytes_ratio (String.concat "," curve)
  in
  let oc = open_out "BENCH_engine.json" in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  print_endline json
