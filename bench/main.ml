(* Benchmark harness entry point.

   Usage:  dune exec bench/main.exe [-- [--trace FILE] [--json] [e1 e2 ... | all | micro]]

   Each `eK` regenerates the table of experiment K from the experiment
   index in DESIGN.md (the paper has no tables of its own; each experiment
   reproduces the quantitative content of a theorem or lemma).  `all` runs
   every table; `micro` runs the Bechamel wall-clock benches.

   Every experiment additionally writes a machine-readable BENCH_<name>.json
   summary (rounds, total bits, max per-node round bits, wall time) to the
   current directory; `--json` echoes it to stdout as well.  `--trace FILE`
   streams structured events (round summaries, protocol phases) from the
   traced protocol runs to FILE — JSONL, or CSV if FILE ends in `.csv`;
   see docs/observability.md for the schema. *)

let experiments =
  [
    ("e1", "Thm 2: rapid sampling rounds/work on H-graphs", Exp_sampling.e1);
    ("e2", "Thm 3: rapid sampling rounds/work on the hypercube", Exp_sampling.e2);
    ("e3", "Lemmas 2/3: sampling distribution vs uniform", Exp_sampling.e3);
    ("e4", "Lemmas 7/9: schedule-constant failure threshold", Exp_sampling.e4);
    ("e5", "Lemmas 11-13: reconfiguration internals vs n", Exp_reconfig.e5);
    ("e6", "Lemma 10: uniformity over Hamilton cycles", Exp_reconfig.e6);
    ("e7", "Thm 5: connectivity under adversarial churn", Exp_reconfig.e7);
    ("e8", "Lemmas 16/17: group concentration under attack", Exp_dos.e8);
    ("e9", "Thm 6: survival vs adversary lateness", Exp_dos.e9);
    ("e10", "Thm 7 / Lemma 18: combined churn + DoS", Exp_dos.e10);
    ("e11", "Cor 2: robust anonymous routing", Exp_apps.e11);
    ("e12", "Thm 8: robust DHT and pub-sub", Exp_apps.e12);
    ("e13", "Lemmas 14/15: message-level group simulation", Exp_groupsim.e13);
    ("e14", "Cor 1: expansion preserved across reconfigurations", Exp_expansion.e14);
    ("e15", "Fault model: reply-drop rate x recovery policy", Exp_faults.e15);
    ("e16", "Thm 8 client view: workload latency/goodput under attack", Exp_workload.e16);
    ("e17", "Self-stabilization: recovery from corrupted topologies", Exp_stabilize.e17);
    ("e18", "Staleness sweep: the resilience cliff as t -> 0", Exp_stabilize.e18);
    ("e19", "Backends head to head: reconfiguration vs Chord under attack", Exp_chord.e19);
    ("e20", "Social application: per-class SLOs under attack and sessions", Exp_social.e20);
  ]

let emit_json = ref false

let write_bench_summary name bench wall_s =
  let json = Exp_util.Bench.to_json ~name ~wall_s bench in
  let json =
    match Exp_util.take_extras () with
    | [] -> json
    | extras ->
        (* splice the experiment's extra fields before the closing brace *)
        String.sub json 0 (String.length json - 1)
        ^ String.concat ""
            (List.map (fun (k, v) -> Printf.sprintf ",%S:%s" k v) extras)
        ^ "}"
  in
  let path = Printf.sprintf "BENCH_%s.json" name in
  let oc = open_out path in
  output_string oc json;
  output_char oc '\n';
  close_out oc;
  if !emit_json then print_endline json

let run_one name =
  match List.find_opt (fun (n, _, _) -> n = name) experiments with
  | Some (_, descr, f) ->
      Printf.printf "\n[%s] %s\n%!" name descr;
      let t0 = Unix.gettimeofday () in
      let bench = f () in
      let wall_s = Unix.gettimeofday () -. t0 in
      Printf.printf "  (%s took %.1fs)\n%!" name wall_s;
      write_bench_summary name bench wall_s
  | None ->
      Printf.eprintf "unknown experiment %S\n" name;
      exit 2

let usage () =
  print_endline
    "usage: main.exe [--trace FILE] [--json] [e1 .. e20 | all | micro | \
     engine | trace]   (default: all)";
  print_endline "experiments:";
  List.iter
    (fun (n, descr, _) -> Printf.printf "  %-4s %s\n" n descr)
    experiments

(* Peel --trace FILE / --json off the argument list; what remains are
   experiment names (or all/micro/help). *)
let rec parse_flags = function
  | "--trace" :: path :: rest ->
      Exp_util.set_trace (Simnet.Trace.open_file path);
      parse_flags rest
  | [ "--trace" ] ->
      prerr_endline "--trace requires a FILE argument";
      exit 2
  | "--json" :: rest ->
      emit_json := true;
      parse_flags rest
  | rest -> rest

let () =
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  let args = parse_flags args in
  (match args with
  | [] | [ "all" ] ->
      List.iter (fun (n, _, _) -> run_one n) experiments;
      print_endline "\nAll experiment tables regenerated.";
      print_endline "Run with `micro` for the Bechamel wall-clock benches."
  | [ "micro" ] -> Micro.run ()
  | [ "engine" ] -> Exp_engine.run ()
  | [ "trace" ] -> Exp_trace.run ()
  | [ "help" ] | [ "--help" ] | [ "-h" ] -> usage ()
  | names -> List.iter run_one names);
  Simnet.Trace.close (Exp_util.trace ())
