(* Experiments E11-E12: the Section 7 applications.

   E11 regenerates Corollary 2 (robust anonymous routing: delivery in O(1)
   rounds with a near-uniform exit distribution, against a late adversary;
   a 0-late control degrades).  E12 regenerates the qualitative content of
   Theorem 8 (the DHT serves every request with bounded hops and congestion
   while the blocked-server count respects the gamma n^(1/log log n)
   budget) plus pub-sub correctness. *)

open Exp_util

(* ---------- E11: anonymizer (Corollary 2) ---------- *)

let run_anonymizer ~n ~strategy ~lateness ~frac ~windows ~requests_per_round =
  let s =
    rng_for
      (Printf.sprintf "e11-%s-%d-%f" (Core.Dos_adversary.to_string strategy)
         lateness frac)
      n
  in
  let net =
    Core.Dos_network.create ~c:2.0 ~trace:(trace ())
      ~rng:(Prng.Stream.split s) ~n ()
  in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let anon = Apps.Anonymizer.create ~net ~rng:(Prng.Stream.split s) in
  let adv =
    Core.Dos_adversary.create ~trace:(trace ()) strategy
      ~rng:(Prng.Stream.split s) ~lateness ~frac
  in
  let delivered = ref 0 and total = ref 0 in
  let exit_counts = Array.make (Core.Dos_network.supernode_count net) 0 in
  let relays = Stats.Moments.create () in
  for _ = 1 to windows * Core.Dos_network.period net do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    for _ = 1 to requests_per_round do
      incr total;
      let r = Apps.Anonymizer.request anon ~blocked in
      if r.Apps.Anonymizer.delivered then begin
        incr delivered;
        Stats.Moments.add_int relays r.Apps.Anonymizer.relays_used;
        match r.Apps.Anonymizer.exit_group with
        | Some g -> exit_counts.(g) <- exit_counts.(g) + 1
        | None -> ()
      end
    done;
    ignore (Core.Dos_network.run_round net ~blocked)
  done;
  let rate = float_of_int !delivered /. float_of_int !total in
  let entropy = Stats.Entropy.normalized_of_counts exit_counts in
  (rate, entropy, Stats.Moments.mean relays,
   Bench.rounds (windows * Core.Dos_network.period net))

let e11 () =
  let n = 4096 in
  let probe = Core.Dos_network.create ~c:2.0 ~rng:(rng_for "e11p" 0) ~n () in
  let p = Core.Dos_network.period probe in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E11 (Corollary 2) - anonymous routing under DoS, n=%d servers, 4 \
            rounds/request" n)
      ~columns:
        [
          "adversary"; "lateness"; "blocked frac"; "delivery rate";
          "exit entropy (norm.)"; "mean relays";
        ]
  in
  let scenarios =
    [
      (Core.Dos_adversary.Random_blocking, 0, 0.0);
      (Core.Dos_adversary.Random_blocking, 0, 0.25);
      (Core.Dos_adversary.Random_blocking, 0, 0.4);
      (Core.Dos_adversary.Group_kill, 2 * p, 0.25);
      (Core.Dos_adversary.Group_kill, 0, 0.25);
    ]
  in
  let note, bench_total = tally () in
  List.iter
    (fun (strategy, lateness, frac) ->
      let rate, entropy, mean_relays, b =
        run_anonymizer ~n ~strategy ~lateness ~frac ~windows:4
          ~requests_per_round:20
      in
      note b;
      Stats.Table.add_row table
        [
          Core.Dos_adversary.to_string strategy;
          int_c lateness;
          pct frac;
          pct rate;
          flt ~decimals:4 entropy;
          flt ~decimals:1 mean_relays;
        ])
    scenarios;
  Stats.Table.note table
    "paper: requests are delivered reliably and anonymously (exit point \
     uniform w.r.t. the attacker's knowledge) in O(1) rounds against a \
     (1/2-eps)-bounded Omega(log log n)-late adversary; the 0-late \
     group-kill row is the impossibility control";
  Stats.Table.print table;
  (* E11b: the anonymity guarantee made quantitative.  A passive observer
     sees which server a user contacts and wants to monitor the relays that
     will carry the message out.  Its best guess is the entry's group in
     its (stale) topology view; we measure how often the actual exit server
     falls inside that guessed set, as a function of lateness. *)
  let table_b =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E11b (Corollary 2, anonymity) - observer's chance of having \
            monitored the exit relay, vs view lateness (n=%d, period=%d)"
           n p)
      ~columns:
        [
          "view lateness"; "requests"; "guess-set size (mean)"; "hit rate";
          "blind-guess baseline";
        ]
  in
  List.iter
    (fun lateness ->
      let s = rng_for "e11b" lateness in
      let net = Core.Dos_network.create ~c:2.0 ~rng:(Prng.Stream.split s) ~n () in
      let anon = Apps.Anonymizer.create ~net ~rng:(Prng.Stream.split s) in
      let snaps = Simnet.Snapshots.create ~lateness in
      let hits = ref 0 and total = ref 0 in
      let guess_sizes = Stats.Moments.create () in
      let blocked = Array.make n false in
      let requests_per_round = 10 in
      for _ = 1 to 6 * p do
        Simnet.Snapshots.push snaps (Core.Dos_network.group_of net);
        (match Simnet.Snapshots.view snaps with
        | None -> ()
        | Some view ->
            let current = Core.Dos_network.group_of net in
            for _ = 1 to requests_per_round do
              (* the observer sees the entry server of this request *)
              let entry = Prng.Stream.int s n in
              let r = Apps.Anonymizer.request_via anon ~blocked ~entry in
              match r.Apps.Anonymizer.exit_server with
              | None -> ()
              | Some exit ->
                  incr total;
                  (* guess: all servers that shared the entry's group in the
                     stale view *)
                  let guessed_group = view.(entry) in
                  let size = ref 0 and hit = ref false in
                  Array.iteri
                    (fun v g ->
                      if g = guessed_group then begin
                        incr size;
                        if v = exit then hit := true
                      end)
                    view;
                  ignore current;
                  Stats.Moments.add_int guess_sizes !size;
                  if !hit then incr hits
            done);
        ignore (Core.Dos_network.run_round net ~blocked)
      done;
      note (Bench.rounds (6 * p));
      let baseline =
        Stats.Moments.mean guess_sizes /. float_of_int n
      in
      Stats.Table.add_row table_b
        [
          int_c lateness;
          int_c !total;
          flt ~decimals:1 (Stats.Moments.mean guess_sizes);
          pct (if !total = 0 then 0.0 else float_of_int !hits /. float_of_int !total);
          pct baseline;
        ])
    [ 0; p / 2; p; 2 * p ];
  Stats.Table.note table_b
    "paper: with lateness >= the reconfiguration period the observer's view \
     of the groups is always stale, so monitoring the guessed group catches \
     the exit no more often than monitoring an equally sized random set; a \
     fresh view catches it essentially always";
  Stats.Table.print table_b;
  bench_total ()

(* ---------- E12: robust DHT + pub-sub (Theorem 8) ---------- *)

let dht_scenario ~k ~n ~blocked_count label =
  let s = rng_for ("e12" ^ label) (n + k) in
  let dht = Apps.Robust_dht.create ~k ~rng:(Prng.Stream.split s) ~n () in
  let blocked = Array.make n false in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Prng.Stream.sample_distinct s n ~k:blocked_count);
  (* one request per non-blocked server, alternating writes and reads *)
  let ops = ref [] in
  let key = ref 0 in
  for v = 0 to n - 1 do
    if not blocked.(v) then begin
      incr key;
      ops :=
        (if !key mod 2 = 0 then Apps.Robust_dht.Read (!key / 2)
         else Apps.Robust_dht.Write (!key / 2, string_of_int !key))
        :: !ops
    end
  done;
  let b = Apps.Robust_dht.execute_batch dht ~blocked (List.rev !ops) in
  Apps.Robust_dht.reshuffle dht;
  (* after a reconfiguration the data must still be readable *)
  let post_ok = ref true in
  for probe = 1 to 20 do
    let r =
      Apps.Robust_dht.execute dht ~blocked (Apps.Robust_dht.Read probe)
    in
    if not r.Apps.Robust_dht.ok then post_ok := false
  done;
  (b, Apps.Robust_dht.dimension dht, !post_ok)

let e12 () =
  let n = 4096 in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E12 (Theorem 8) - robust DHT over the k-ary hypercube, n=%d, one \
            request per non-blocked server" n)
      ~columns:
        [
          "k"; "diameter d"; "blocked"; "served"; "failed"; "max hops";
          "max group load"; "reads ok after reshuffle";
        ]
  in
  (* Theorem 8 budget: gamma n^(1/log log n); loglog 4096 ~ 3.58 *)
  let budget =
    int_of_float (2.0 *. Float.pow (float_of_int n) (1.0 /. 3.58))
  in
  List.iter
    (fun k ->
      List.iter
        (fun (blocked_count, label) ->
          let b, d, post_ok =
            dht_scenario ~k ~n ~blocked_count (Printf.sprintf "%s%d" label k)
          in
          Stats.Table.add_row table
            [
              int_c k;
              int_c d;
              Printf.sprintf "%d (%s)" blocked_count label;
              int_c b.Apps.Robust_dht.served;
              int_c b.Apps.Robust_dht.failed;
              int_c b.Apps.Robust_dht.max_hops;
              int_c b.Apps.Robust_dht.max_group_load;
              bool_c post_ok;
            ])
        [ (0, "none"); (budget, "Thm8 budget"); (n / 4, "control: 25%") ])
    [ 4; 8 ];
  Stats.Table.note table
    "paper: with at most gamma n^(1/log log n) blocked servers, every \
     request is served with polylog congestion (Theorem 8); the 25% row \
     shows the budget matters but plain replication + adaptive routing \
     still degrades gracefully";
  (* pub-sub correctness sub-table *)
  let table2 =
    Stats.Table.create
      ~title:"E12b (Section 7.3) - publish-subscribe over the DHT"
      ~columns:
        [
          "topics"; "publications"; "published"; "fetch ok";
          "in order & exactly once";
        ]
  in
  let s = rng_for "e12b" 0 in
  let dht = Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s) ~n:2048 () in
  let ps = Apps.Pubsub.create ~dht in
  let blocked = Array.make 2048 false in
  Array.iter
    (fun v -> blocked.(v) <- true)
    (Prng.Stream.sample_distinct s 2048 ~k:40);
  let topics = 50 and per_topic = 20 in
  let items =
    List.concat_map
      (fun t -> List.init per_topic (fun i -> (t, Printf.sprintf "%d:%d" t i)))
      (List.init topics (fun t -> t))
  in
  let published, _failed = Apps.Pubsub.publish_batch ps ~blocked items in
  let fetch_ok = ref 0 and ordered = ref true in
  for t = 0 to topics - 1 do
    match Apps.Pubsub.fetch_since ps ~blocked ~topic:t ~since:0 with
    | Some msgs when List.length msgs = per_topic ->
        incr fetch_ok;
        List.iteri
          (fun i msg -> if msg <> Printf.sprintf "%d:%d" t i then ordered := false)
          msgs
    | _ -> ordered := false
  done;
  Stats.Table.add_row table2
    [
      int_c topics;
      int_c (topics * per_topic);
      int_c published;
      Printf.sprintf "%d/%d" !fetch_ok topics;
      bool_c !ordered;
    ];
  Stats.Table.note table2
    "paper: publications are aggregated per key, numbered m(k)+1.., and \
     retrievable by sequence number - exactly-once, ordered delivery";
  (* E12c: the point of the Ranade-style combining - a hot topic's counter
     owner sees O(d) combined messages instead of one per publication. *)
  let table3 =
    Stats.Table.create
      ~title:
        "E12c (Section 7.3) - hot-topic counter congestion: naive routing \
         vs butterfly combining, n=2048, k=4"
      ~columns:
        [
          "workload"; "publications"; "naive owner load";
          "butterfly max load/phase"; "combines"; "published";
        ]
  in
  let s3 = rng_for "e12c" 0 in
  List.iter
    (fun (label, mk_items) ->
      let dht3 =
        Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s3) ~n:2048 ()
      in
      let ps3 = Apps.Pubsub.create ~dht:dht3 in
      let blocked3 = Array.make 2048 false in
      let items = mk_items (Prng.Stream.split s3) in
      (* measure the naive load of the same contribution pattern *)
      let supernodes = Apps.Robust_dht.supernode_count dht3 in
      let group_of = Apps.Robust_dht.group_of dht3 in
      let contributions = Array.make supernodes [] in
      List.iter
        (fun (topic, _) ->
          match Apps.Robust_dht.random_entry dht3 ~blocked:blocked3 with
          | Some entry ->
              let x = group_of.(entry) in
              contributions.(x) <- (topic, 1) :: contributions.(x)
          | None -> ())
        items;
      let dest_of_key topic =
        Apps.Robust_dht.supernode_of_key dht3 (topic * 1048576)
      in
      let naive =
        Apps.Butterfly.naive_max_load
          ~cube:(Apps.Robust_dht.cube dht3)
          ~dest_of_key ~contributions
      in
      let (published, _failed), stats =
        Apps.Pubsub.publish_batch_aggregated ps3 ~blocked:blocked3 items
      in
      Stats.Table.add_row table3
        [
          label;
          int_c (List.length items);
          int_c naive;
          int_c stats.Apps.Butterfly.max_phase_load;
          int_c stats.Apps.Butterfly.combines;
          int_c published;
        ])
    [
      ( "1 hot topic",
        fun _ -> List.init 4000 (fun i -> (9, Printf.sprintf "p%d" i)) );
      ( "zipf over 64 topics",
        fun s ->
          List.init 4000 (fun i ->
              (Prng.Dist.zipf s ~n:64 ~s:1.2, Printf.sprintf "p%d" i)) );
      ( "uniform over 256 topics",
        fun s ->
          List.init 4000 (fun i ->
              (Prng.Stream.int s 256, Printf.sprintf "p%d" i)) );
    ];
  Stats.Table.note table3
    "paper: aggregating keys before touching the counters is what keeps \
     per-server congestion polylogarithmic under skewed publication \
     workloads (Ranade-style combining in the k-ary cube)";
  (* E12d: the butterfly batch router with read combining - the service
     time of one read per server when everyone wants the same key. *)
  let table4 =
    Stats.Table.create
      ~title:
        "E12d (Section 7.2) - lockstep butterfly read batches with \
         combining, n=2048, k=4"
      ~columns:
        [
          "workload"; "reads"; "naive service rounds";
          "combined service rounds"; "max stage load"; "failed";
        ]
  in
  let s4 = rng_for "e12d" 0 in
  let dht4 = Apps.Robust_dht.create ~k:4 ~rng:(Prng.Stream.split s4) ~n:2048 () in
  let blocked4 = Array.make 2048 false in
  for key = 0 to 255 do
    ignore
      (Apps.Robust_dht.execute dht4 ~blocked:blocked4
         (Apps.Robust_dht.Write (key, string_of_int key)))
  done;
  List.iter
    (fun (label, keys) ->
      let naive = Apps.Staged_router.naive_service_rounds ~dht:dht4 ~keys in
      let _, st =
        Apps.Staged_router.read_batch ~dht:dht4 ~blocked:blocked4 ~keys
      in
      Stats.Table.add_row table4
        [
          label;
          int_c (Array.length keys);
          int_c naive;
          int_c st.Apps.Staged_router.service_rounds;
          int_c st.Apps.Staged_router.max_stage_load;
          int_c st.Apps.Staged_router.failed;
        ])
    [
      ("1 hot key", Array.make 2048 7);
      ( "zipf over 256 keys",
        Array.init 2048 (fun _ ->
            Prng.Dist.zipf (Prng.Stream.split s4) ~n:256 ~s:1.2 - 1) );
      ( "uniform over 256 keys",
        Array.init 2048 (fun _ -> Prng.Stream.int s4 256) );
    ];
  Stats.Table.note table4
    "paper: emulating the k-ary butterfly with combining is what lets the \
     DHT serve a batch with one request per server in polylog time even \
     when every request targets the same key (Theorem 8 via Ranade [28])";
  Stats.Table.print table;
  Stats.Table.print table2;
  Stats.Table.print table3;
  Stats.Table.print table4;
  (* E12 never fed the counters: its summary is all zeros by design *)
  Bench.zero
