(* Experiment E19: the two backends head to head under the same attacks.

   The paper's central claim is comparative: overlays that periodically
   redraw their structure (Sections 5-7) survive adversaries that
   classical static-assignment DHTs do not.  E19 makes the comparison
   explicit by running the identical client workload — same spec, same
   per-cell seed, same churn/attack/fault axes — against both backends of
   {!Workload.Driver}: the reconfigurable supernode DHT and a Chord ring
   with successor lists and finger tables.  Only the [backend=] scenario
   key differs between paired cells.

   Expected shape (checked by test/test_workload.ml on a smaller grid):
   - without an adversary both backends serve essentially everything;
     Chord pays more hops (iterative O(log n) routing vs the hypercube's
     d) but stays correct under churn thanks to successor-list repair;
   - under the stale-view group-kill adversary the reconfiguration
     backend holds goodput near 1.0 (its supernode assignment is redrawn
     every period, so the adversary's view ages out), while Chord
     collapses: its key-to-node assignment is static, so a t-late view of
     the successor lists still aims perfectly, and the believed replica
     chains of the hottest keys are wiped every round.

   The grid runs through Sweep.Exec (per-cell seeds derived from the cell
   id), so the table, the BENCH_e19.json cells array, and any checkpoint
   artifact are byte-identical at every domain count. *)

open Exp_util

let n = 512
let clients = 64
let rounds = 24
let period = 8
let retries = 3
let attack_frac = 0.2

let spec =
  Workload.Spec.make ~clients ~rounds ~keys:256
    ~arrivals:(Workload.Spec.Open_loop { rate = 0.5 })
    ~mix:{ Workload.Spec.read = 0.7; write = 0.2; publish = 0.1 }
    ~popularity:(Workload.Spec.Zipf 1.1) ~slo:8 ~timeout:16 ()

let cells =
  match
    Sweep.Grid.expand
      ~base:{ Simnet.Scenario.default with n; retry = retries }
      ~sweep:"e19"
      [
        Sweep.Grid.scenario_key "backend" [ "reconfig"; "chord" ];
        Sweep.Grid.scenario_key "adversary" [ "none"; "group-kill" ];
        Sweep.Grid.floats "churn" [ 0.0; 0.15 ];
        Sweep.Grid.floats "drop" [ 0.0; 0.05 ];
      ]
  with
  | Ok cells -> cells
  | Error e -> failwith e

(* Seed from the cell id with the backend binding stripped: paired cells
   (same environment, different backend) get identical workload schedules
   and environment draws, so the backends face the very same requests. *)
let paired_seed (cell : Sweep.Grid.cell) =
  let env_id =
    cell.Sweep.Grid.id |> String.split_on_char ';'
    |> List.filter (fun s -> not (String.starts_with ~prefix:"backend=" s))
    |> String.concat ";"
  in
  Sweep.Grid.seed_of ~sweep:"e19" env_id

let run_cell (cell : Sweep.Grid.cell) =
  let sc = cell.Sweep.Grid.scenario in
  let churn = Sweep.Grid.float_binding cell "churn" in
  let drop = Sweep.Grid.float_binding cell "drop" in
  let attack =
    match sc.Simnet.Scenario.adversary with
    | None -> Workload.Attack.No_attack
    | Some s -> (
        match Workload.Attack.parse_strategy s with
        | Ok a -> a
        | Error e -> invalid_arg e)
  in
  let backend =
    match sc.Simnet.Scenario.backend with
    | Some "chord" ->
        Workload.Driver.Chord
          {
            Workload.Driver.fingers = sc.Simnet.Scenario.chord_fingers;
            succs = sc.Simnet.Scenario.chord_succs;
            period = sc.Simnet.Scenario.chord_period;
          }
    | _ -> Workload.Driver.Robust
  in
  let faults =
    if drop > 0.0 then Some (Simnet.Faults.make ~drop ()) else None
  in
  let cfg =
    Workload.Driver.config ~period ~backend ~attack ~frac:attack_frac
      ~lateness:period
      ?churn:
        (if churn > 0.0 then
           Some { Workload.Driver.frac = churn; epoch = period }
         else None)
      ?faults ~retries:sc.Simnet.Scenario.retry spec
  in
  let report =
    Workload.Driver.run ~seed:(paired_seed cell) ~n:sc.Simnet.Scenario.n cfg
  in
  let t = report.Workload.Driver.total in
  let row =
    [
      Option.value sc.Simnet.Scenario.backend ~default:"reconfig";
      Option.value sc.Simnet.Scenario.adversary ~default:"none";
      flt ~decimals:2 churn;
      flt ~decimals:2 drop;
      int_c t.Workload.Driver.issued;
      flt ~decimals:3 (Workload.Driver.goodput t);
      int_c (Workload.Driver.percentile t 0.50);
      int_c (Workload.Driver.percentile t 0.99);
      int_c t.Workload.Driver.timed_out;
      int_c t.Workload.Driver.failed;
      int_c report.Workload.Driver.total_bits;
    ]
  in
  let bench =
    {
      Sweep.Agg.rounds;
      total_bits = report.Workload.Driver.total_bits;
      max_node_bits = 0;
    }
  in
  (row, bench)

(* One JSON object per cell, rebuilt from the printed row so the summary
   is a pure function of the same domain-count-invariant artifact. *)
let cells_json rows =
  let obj row =
    match row with
    | [ backend; attack; churn; drop; issued; goodput; p50; p99; timeout;
        failed; bits ] ->
        Printf.sprintf
          {|{"backend":"%s","attack":"%s","churn":%s,"drop":%s,"issued":%s,"goodput":%s,"p50":%s,"p99":%s,"timeout":%s,"failed":%s,"total_bits":%s}|}
          backend attack churn drop issued goodput p50 p99 timeout failed bits
    | _ -> failwith "e19: unexpected row shape"
  in
  "[" ^ String.concat "," (List.map obj rows) ^ "]"

let min_goodput rows ~backend =
  List.fold_left
    (fun acc row ->
      match row with
      | b :: _ :: _ :: _ :: _ :: g :: _ when b = backend ->
          Float.min acc (float_of_string g)
      | _ -> acc)
    1.0 rows

let e19 () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E19 - reconfiguration vs Chord under the same workload: open \
            loop rate 0.5, zipf 1.1, mix 70/20/10, n=%d, %d clients, %d \
            rounds, period=%d, retry=%d, attack frac=%.2f"
           n clients rounds period retries attack_frac)
      ~columns:
        [
          "backend"; "attack"; "churn"; "drop"; "issued"; "goodput"; "p50";
          "p99"; "timeout"; "failed"; "total bits";
        ]
  in
  let rows, bench = sweep_rows ~sweep:"e19" cells run_cell in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "paired cells share the per-cell seed and the full scenario spec; only \
     backend= differs, so the environments are draw-for-draw identical";
  Stats.Table.note table
    "group-kill aims through a period-late view: reconfiguration redraws \
     the supernode assignment every period so the view ages out, while \
     Chord's static key-to-node assignment keeps the stale successor-list \
     view accurate and its believed replica chains get wiped";
  Stats.Table.print table;
  set_extra "cells" (cells_json rows);
  set_extra "reconfig_min_goodput"
    (Printf.sprintf "%.3f" (min_goodput rows ~backend:"reconfig"));
  set_extra "chord_min_goodput"
    (Printf.sprintf "%.3f" (min_goodput rows ~backend:"chord"));
  bench
