(* Experiments E17/E18: self-stabilization and the staleness cliff.

   Both are extensions of the paper's model (like E15/E16), not
   reproductions: the paper assumes the overlay starts from a valid
   configuration and its adversary's lateness is a fixed integer t.

   E17 starts the Section 4 topology from adversarially corrupted
   successor arrays — every Simnet.Corruption class at three severities —
   and runs the Core.Stabilize detect-and-repair loop next to the static
   baseline that only detects.  Expected shape (pinned by
   test/test_core_stabilize.ml): repair recovers from every class at
   severity <= 0.5 within a handful of epochs; the static baseline always
   ends with residual violations.

   E18 makes the DoS adversary's view-lateness a continuous per-round
   draw (Snapshots.Mixed with expected value t, Bernoulli on the
   fractional part) and sweeps t down into the fractional regime t < 1 to
   locate the resilience cliff: the least expected lateness at which the
   group-kill attack no longer starves or disconnects the network.  The
   cliff location lands in BENCH_e18.json as "cliff_t".

   Cells run through the sweep engine with domains:1 on purpose: the
   shared trace sink stays ordered and the BENCH summaries are
   byte-identical across runs of the same build. *)

open Exp_util

(* ---------- E17: corrupted-topology recovery ---------- *)

let e17_n = 256
let e17_d = 8
let severities = [ 0.1; 0.25; 0.5 ]

let run_e17_cell ~cls ~severity ~mode =
  (* One seed per (class, severity) shared by both modes: repair and
     static start from the identical corrupted state, so the static row
     is a true ablation of the repair row. *)
  let s =
    rng_for
      (Printf.sprintf "e17-%s" (Simnet.Corruption.class_to_string cls))
      (int_of_float (severity *. 1000.))
  in
  let corruption = Simnet.Corruption.make ~severity cls in
  let r =
    Core.Stabilize.run ~trace:(trace ()) ~mode ~corruption
      ~rng:(Prng.Stream.split s) ~n:e17_n ~d:e17_d ()
  in
  let bench =
    {
      Sweep.Agg.rounds = r.Core.Stabilize.rounds;
      total_bits = r.Core.Stabilize.bits;
      max_node_bits = 0;
    }
  in
  (r, bench)

let e17 () =
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E17 (self-stabilization extension) - corruption class x severity \
            x mode, n=%d, d=%d"
           e17_n e17_d)
      ~columns:
        [
          "class"; "severity"; "mode"; "recovered"; "epochs"; "rounds";
          "bits"; "initial viol"; "residual"; "patches"; "splices";
        ]
  in
  let cells =
    grid ~sweep:"e17"
      [
        Sweep.Grid.strings "class"
          (List.map Simnet.Corruption.class_to_string Simnet.Corruption.all);
        Sweep.Grid.floats "severity" severities;
        Sweep.Grid.strings "mode"
          (List.map Core.Stabilize.mode_to_string
             [ Core.Stabilize.Repair; Core.Stabilize.Static ]);
      ]
  in
  let stuck = ref 0 and static_clean = ref 0 in
  let rows, bench_total =
    sweep_rows ~domains:1 ~sweep:"e17" cells (fun cell ->
        let cls =
          match
            Simnet.Corruption.class_of_string (Sweep.Grid.binding cell "class")
          with
          | Ok c -> c
          | Error e -> failwith e
        in
        let severity = Sweep.Grid.float_binding cell "severity" in
        let mode_name = Sweep.Grid.binding cell "mode" in
        let mode =
          match Core.Stabilize.mode_of_string mode_name with
          | Ok m -> m
          | Error e -> failwith e
        in
        let r, b = run_e17_cell ~cls ~severity ~mode in
        (match mode with
        | Core.Stabilize.Repair ->
            if not r.Core.Stabilize.converged then incr stuck
        | Core.Stabilize.Static ->
            if r.Core.Stabilize.residual = [] then incr static_clean);
        ( [
            Sweep.Grid.binding cell "class";
            flt ~decimals:2 severity;
            mode_name;
            bool_c r.Core.Stabilize.converged;
            int_c r.Core.Stabilize.epochs;
            int_c r.Core.Stabilize.rounds;
            int_c r.Core.Stabilize.bits;
            int_c r.Core.Stabilize.initial_violations;
            int_c (List.length r.Core.Stabilize.residual);
            int_c r.Core.Stabilize.patches;
            int_c r.Core.Stabilize.splices;
          ],
          b ))
  in
  List.iter (Stats.Table.add_row table) rows;
  Stats.Table.note table
    "repair detects violations locally (Simnet.Invariants), patches \
     non-permutation pointers, splices disjoint orbits, then re-randomizes \
     through the Section 4 reconfiguration path; static only detects, so \
     its residual count equals the damage that persists forever";
  Stats.Table.note table
    (Printf.sprintf
       "verdict: %d/%d repair cells stuck (expect 0), %d/%d static cells \
        accidentally clean (expect 0)"
       !stuck
       (List.length rows / 2)
       !static_clean
       (List.length rows / 2));
  Stats.Table.print table;
  set_extra "repair_stuck_cells" (string_of_int !stuck);
  set_extra "static_clean_cells" (string_of_int !static_clean);
  bench_total

(* ---------- E18: the staleness resilience cliff ---------- *)

let e18_windows = 8

let run_e18_cell ~n ~strategy ~staleness ~frac =
  let s =
    rng_for
      (Printf.sprintf "e18-%s-%s"
         (Core.Dos_adversary.to_string strategy)
         (Simnet.Snapshots.staleness_to_string staleness))
      n
  in
  let net =
    Core.Dos_network.create ~c:2.0 ~trace:(trace ()) ~rng:(Prng.Stream.split s)
      ~n ()
  in
  let cube = Topology.Hypercube.create (Core.Dos_network.dimension net) in
  let adv =
    Core.Dos_adversary.create ~trace:(trace ()) ~staleness strategy
      ~rng:(Prng.Stream.split s)
      ~lateness:(Simnet.Snapshots.staleness_max staleness)
      ~frac
  in
  let ok = ref 0 in
  let rounds = e18_windows * Core.Dos_network.period net in
  for _ = 1 to rounds do
    Core.Dos_adversary.observe adv ~group_of:(Core.Dos_network.group_of net);
    let blocked = Core.Dos_adversary.blocked_set adv ~cube ~n in
    let r = Core.Dos_network.run_round net ~blocked in
    if r.Core.Dos_network.starved_groups = 0 && r.Core.Dos_network.connected
    then incr ok
  done;
  (rounds, !ok)

let e18 () =
  let n = 4096 in
  let probe = Core.Dos_network.create ~c:2.0 ~rng:(rng_for "e18p" 0) ~n () in
  let p = Core.Dos_network.period probe in
  (* Expected lateness, densest in the fractional regime where the cliff's
     approach is invisible to an integer-lateness sweep like E9's. *)
  let ts =
    [ 0.0; 0.25; 0.5; 1.0; 2.0; float_of_int (p / 2); float_of_int p;
      float_of_int (2 * p) ]
  in
  let table =
    Stats.Table.create
      ~title:
        (Printf.sprintf
           "E18 (staleness extension) - goodput vs expected view-lateness t, \
            n=%d, 25%% blocked/round, %d windows, period=%d"
           n e18_windows p)
      ~columns:
        [ "adversary"; "expected t"; "rounds"; "rounds ok"; "goodput"; "verdict" ]
  in
  let strategies =
    [ Core.Dos_adversary.Group_kill; Core.Dos_adversary.Random_blocking ]
  in
  let cells =
    grid ~sweep:"e18"
      [
        Sweep.Grid.strings "adversary"
          (List.map Core.Dos_adversary.to_string strategies);
        Sweep.Grid.floats "t" ts;
      ]
  in
  let goodputs = Hashtbl.create 16 in
  let rows, bench_total =
    sweep_rows ~domains:1 ~sweep:"e18" cells (fun cell ->
        let name = Sweep.Grid.binding cell "adversary" in
        let strategy =
          List.find
            (fun st -> Core.Dos_adversary.to_string st = name)
            strategies
        in
        let t = Sweep.Grid.float_binding cell "t" in
        let staleness = Simnet.Snapshots.Mixed t in
        let rounds, ok = run_e18_cell ~n ~strategy ~staleness ~frac:0.25 in
        let goodput = float_of_int ok /. float_of_int rounds in
        Hashtbl.replace goodputs (name, t) goodput;
        ( [
            name;
            flt ~decimals:2 t;
            int_c rounds;
            int_c ok;
            flt ~decimals:3 goodput;
            (if ok = rounds then "survives" else "degraded");
          ],
          { Sweep.Agg.rounds; total_bits = 0; max_node_bits = 0 } ))
  in
  List.iter (Stats.Table.add_row table) rows;
  (* The cliff: least swept t at which the group-kill attack never starves
     or disconnects the network.  -1 if it always bites. *)
  let kill = Core.Dos_adversary.to_string Core.Dos_adversary.Group_kill in
  let cliff_t =
    List.fold_left
      (fun acc t ->
        if acc < 0.0 && Hashtbl.find goodputs (kill, t) >= 1.0 then t else acc)
      (-1.0) ts
  in
  Stats.Table.note table
    "expected t draws per-round lateness as floor(t) + Bernoulli(frac t): \
     t=0.25 means one round in four the adversary's view is one round old, \
     otherwise current - the fractional regime an integer sweep (E9) \
     cannot resolve";
  Stats.Table.note table
    (Printf.sprintf
       "paper (Theorem 6): survival needs lateness >= the reconfiguration \
        period; cliff located at expected t = %s"
       (Stats.Float_text.repr cliff_t));
  Stats.Table.print table;
  set_extra "cliff_t" (Stats.Float_text.json_repr cliff_t);
  set_extra "period" (string_of_int p);
  bench_total
